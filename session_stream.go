package sap

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/perturb"
	"repro/internal/protocol"
	"repro/internal/stream"
)

// Streaming types, re-exported so stream-fed deployments can be written
// entirely against the facade.
type (
	// StreamSource yields successive slices of clear, labeled records;
	// Next returns io.EOF when the stream ends.
	StreamSource = stream.Source
	// StreamChunk is one emitted unit of perturbed, target-space data.
	StreamChunk = stream.Chunk
)

// Streaming errors, re-exported from the protocol layer.
var (
	// ErrBadChunk flags a malformed stream chunk.
	ErrBadChunk = protocol.ErrBadChunk
	// ErrRefit means a pushed chunk WAS folded into the served training set
	// but the model refresh failed; do not re-push the chunk.
	ErrRefit = protocol.ErrRefit
)

// DatasetSource adapts an in-memory dataset into a StreamSource, letting
// batch data flow through the streaming pipeline.
func DatasetSource(d *Dataset) StreamSource { return stream.DatasetSource(d) }

// streamConfig is the resolved option set of one Session.Stream call.
type streamConfig struct {
	chunkSize   int
	drift       float64
	driftWindow int
	buffer      int
}

// StreamOption configures Session.Stream and Session.StreamTo.
type StreamOption func(*streamConfig) error

// WithChunkSize sets the records-per-chunk target of the streaming pipeline
// (default 256). Source slices of any size are re-cut to it.
func WithChunkSize(n int) StreamOption {
	return func(c *streamConfig) error {
		if n < 0 {
			return fmt.Errorf("%w: negative chunk size %d", ErrBadInput, n)
		}
		c.chunkSize = n
		return nil
	}
}

// WithDriftThreshold sets the relative covariance drift (Frobenius) at which
// the pipeline re-derives its perturbation transform; 0 — the default —
// disables re-derivation, making the streamed output exactly equivalent to
// batch perturbation.
func WithDriftThreshold(x float64) StreamOption {
	return func(c *streamConfig) error {
		if x < 0 {
			return fmt.Errorf("%w: negative drift threshold %v", ErrBadInput, x)
		}
		c.drift = x
		return nil
	}
}

// WithDriftWindow bounds how many recent records the drift statistic of
// WithDriftThreshold is computed over (default 4096; chunk-granular, so up
// to one extra chunk is retained). A windowed statistic keeps late drift
// detectable on long-lived streams; negative n restores the unbounded
// lifetime accumulator of earlier releases.
func WithDriftWindow(n int) StreamOption {
	return func(c *streamConfig) error {
		if n == 0 {
			return nil // keep the default, like the zero Config field
		}
		c.driftWindow = n
		return nil
	}
}

// WithBufferDepth sets the emitted-chunk buffer capacity (default 4). A full
// buffer backpressures the producer instead of growing memory.
func WithBufferDepth(n int) StreamOption {
	return func(c *streamConfig) error {
		if n < 0 {
			return fmt.Errorf("%w: negative buffer depth %d", ErrBadInput, n)
		}
		c.buffer = n
		return nil
	}
}

// streamSeedSalt decorrelates the stream-space perturbation draws from the
// session's protocol randomness while staying deterministic in the seed.
const streamSeedSalt int64 = 0x53_54_52_4d // "STRM"

// Stream is one running streaming-perturbation pipeline, created by
// Session.Stream. Consume Chunks until it closes, then check Err.
type Stream struct {
	pipe *stream.Pipeline

	mu   sync.Mutex
	err  error
	done chan struct{}
}

// Chunks returns the emitted-chunk channel; it closes when the source is
// exhausted, the context is cancelled, or the pipeline fails.
func (st *Stream) Chunks() <-chan StreamChunk { return st.pipe.Out() }

// Err blocks until the pipeline has stopped and returns its terminal error
// (nil after a clean drain).
func (st *Stream) Err() error {
	<-st.done
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.err
}

// Records returns the number of records emitted so far; safe to call while
// the stream is running.
func (st *Stream) Records() int { return st.pipe.Records() }

// Epoch returns the number of drift-triggered transform re-derivations so
// far; safe to call while the stream is running.
func (st *Stream) Epoch() int { return st.pipe.Epoch() }

// Stream opens the continuous-ingestion path of a completed session: it
// perturbs records arriving incrementally from source and emits them as
// target-space chunks, so they can be appended to a serving miner's training
// set (Client.Push) or consumed locally. Each chunk is perturbed with a
// stream-local perturbation (drawn deterministically from the session seed,
// with the session's noise σ) and adapted into the session's target space
// with the §3 space adaptor. With WithDriftThreshold set, the pipeline
// watches the covariance of the most recent window of clear input
// (Welford/rank-1 accumulators over a sliding record window, see
// WithDriftWindow) and re-derives its transform when the distribution
// drifts.
//
// Privacy note: the stream-space perturbation is a seed-derived random
// draw, not an output of the attack-suite optimizer, so streamed records
// carry the baseline guarantee of a random geometric perturbation rather
// than a party's optimized ρ_i. Rotation-invariant distance relationships
// (what the miner consumes) are preserved either way; parties whose
// contracts demand an optimizer-vetted guarantee for streamed data should
// re-optimize out of band (see the ROADMAP open item).
//
// The pipeline runs in a background goroutine owned by the returned Stream;
// cancelling ctx stops it.
func (s *Session) Stream(ctx context.Context, source StreamSource, opts ...StreamOption) (*Stream, error) {
	if err := s.requireRun(); err != nil {
		return nil, err
	}
	var cfg streamConfig
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	s.mu.Lock()
	s.streamSeq++
	seq := s.streamSeq
	s.mu.Unlock()
	rng := rand.New(rand.NewSource(s.cfg.seed + streamSeedSalt*seq))
	pert, err := perturb.NewRandom(rng, s.Target().Dim(), s.cfg.noiseSigma)
	if err != nil {
		return nil, err
	}
	pipe, err := stream.New(stream.Config{
		Perturbation:   pert,
		Target:         s.Target(),
		Rng:            rng,
		ChunkSize:      cfg.chunkSize,
		DriftThreshold: cfg.drift,
		DriftWindow:    cfg.driftWindow,
		BufferDepth:    cfg.buffer,
		Metrics:        s.cfg.metrics,
	})
	if err != nil {
		return nil, err
	}
	st := &Stream{pipe: pipe, done: make(chan struct{})}
	go func() {
		err := pipe.Run(ctx, source)
		st.mu.Lock()
		st.err = err
		st.mu.Unlock()
		close(st.done)
	}()
	return st, nil
}

// Push streams one target-space chunk into the mining service, which folds
// its records into the served training set and refits on the cadence
// configured with WithServiceRefitEvery. It returns the service's total
// training-set size after the push. A busy rejection (the group's bounded
// ingest queue was full; the chunk did not land) is retried with capped
// exponential backoff before ErrBusy is surfaced. Safe for concurrent use.
func (c *Client) Push(ctx context.Context, chunk StreamChunk) (int, error) {
	if chunk.Data == nil || chunk.Data.Len() == 0 {
		return 0, fmt.Errorf("%w: empty chunk", ErrBadChunk)
	}
	return c.inner.PushChunk(ctx, chunk.Data.X, chunk.Data.Y)
}

// StreamTo is the one-call provider side of continuous ingestion: it runs a
// streaming pipeline over source and pushes every emitted chunk into the
// mining service named miner over conn, returning the number of records
// delivered. The stream options tune the pipeline exactly as in
// Session.Stream.
//
// An ErrRefit from the service is not fatal: the chunk was folded into the
// training set (it counts toward the returned total) and streaming
// continues — but the served model may lag the training set, so the last
// such failure is returned alongside the full count after the source
// drains.
func (s *Session) StreamTo(ctx context.Context, conn Conn, miner string, source StreamSource, opts ...StreamOption) (int, error) {
	client, err := s.NewClient(conn, ClientConfig{Miner: miner})
	if err != nil {
		return 0, err
	}
	defer client.Close()
	// The pipeline gets its own cancellable context so an early return (a
	// rejected push) stops the producer goroutine instead of leaving it
	// blocked on the bounded buffer forever.
	streamCtx, stopStream := context.WithCancel(ctx)
	defer stopStream()
	st, err := s.Stream(streamCtx, source, opts...)
	if err != nil {
		return 0, err
	}
	pushed := 0
	var refitErr error
	for chunk := range st.Chunks() {
		_, err := client.Push(ctx, chunk)
		switch {
		case errors.Is(err, ErrRefit):
			// The chunk landed; only the model refresh failed. Keep
			// streaming (the next cadence may refit cleanly) and surface
			// the most recent refit failure at the end.
			refitErr = err
		case err != nil:
			return pushed, err
		}
		pushed += chunk.Data.Len()
	}
	if err := st.Err(); err != nil {
		return pushed, err
	}
	return pushed, refitErr
}
