// Package sap is a from-scratch reproduction of "Space Adaptation:
// Privacy-preserving Multiparty Collaborative Mining with Geometric
// Perturbation" (Chen & Liu, PODC 2007).
//
// It provides, as a single importable facade:
//
//   - Geometric data perturbation G(X) = RX + Ψ + Δ with random orthogonal
//     rotations, random translations and i.i.d. noise (the paper's §2).
//   - A privacy evaluator running the attack models of the companion work
//     (naive re-normalization, PCA re-alignment, FastICA reconstruction,
//     known-sample Procrustes) and the "minimum privacy guarantee" metric.
//   - A randomized perturbation optimizer maximizing that guarantee.
//   - The Space Adaptation Protocol (§3): k data providers and a mining
//     service provider securely unify their perturbations via space
//     adaptors, random exchange and a coordinator that never touches data.
//   - Rotation-invariant classifiers (KNN, SMO-trained SVM with RBF
//     kernel) for mining the unified data.
//   - Risk accounting: the paper's Eq. 1 and Eq. 2 plus the party-count
//     bounds behind its Figure 4.
//
// # Quickstart
//
//	pool, _ := sap.GenerateDataset("Diabetes", 1)
//	parties, _ := sap.Split(pool, 4, sap.PartitionUniform, 1)
//	result, _ := sap.Run(context.Background(), sap.RunConfig{
//		Parties: parties,
//		Seed:    1,
//	})
//	model := sap.NewKNN(5)
//	_ = model.Fit(result.Unified)
//
// See examples/ for complete programs and DESIGN.md for the system
// inventory and experiment index.
package sap
