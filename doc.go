// Package sap is a from-scratch reproduction of "Space Adaptation:
// Privacy-preserving Multiparty Collaborative Mining with Geometric
// Perturbation" (Chen & Liu, PODC 2007).
//
// It provides, as a single importable facade:
//
//   - Geometric data perturbation G(X) = RX + Ψ + Δ with random orthogonal
//     rotations, random translations and i.i.d. noise (the paper's §2).
//   - A privacy evaluator running the attack models of the companion work
//     (naive re-normalization, PCA re-alignment, FastICA reconstruction,
//     known-sample Procrustes) and the "minimum privacy guarantee" metric.
//   - A randomized perturbation optimizer maximizing that guarantee.
//   - The Space Adaptation Protocol (§3): k data providers and a mining
//     service provider securely unify their perturbations via space
//     adaptors, random exchange and a coordinator that never touches data.
//   - Rotation-invariant classifiers (KNN, SMO-trained SVM with RBF
//     kernel) for mining the unified data.
//   - A long-lived mining service: the miner keeps a model trained on the
//     unified data online and answers batched classification queries over
//     pluggable transports (in-memory hub, AES-GCM-sealed TCP).
//   - Streaming ingestion: providers keep feeding freshly collected records
//     through a chunked perturbation pipeline into the live service, which
//     grows its training set and refits on a cadence — with drift-watched
//     transform re-derivation when the arriving distribution shifts.
//     Refits run in the background: a fresh model instance is fitted off
//     to the side and atomically swapped in, so ingest and queries never
//     wait on a retrain, and a failed refit leaves the previous fit
//     serving (reported once as ErrRefit).
//   - Sharded multi-group serving: one miner process hosts many contract
//     groups (ServeGroups), each a session with its own target space,
//     model shard, prediction pool, batch cap, refit cadence and optional
//     member list; wire frames carry a group ID and the router keeps
//     groups isolated — per-group queues are bounded and fail fast, so a
//     saturated group is answered with a typed ErrBusy (clients retry
//     with capped exponential backoff) instead of stalling anyone else.
//   - Cluster serving: ServeCluster partitions the group set across
//     several miner processes by rendezvous hashing (WithClusterNodes /
//     WithClusterReplicas), with leaders replicating refits to read
//     replicas and NewClusterClient routing every call itself. The
//     cluster self-heals: restarted leaders handshake their sequence
//     state back from replicas, an anti-entropy gossip re-pushes models
//     to replicas that fell behind, and when a leader stays silent past
//     WithFailoverGrace the next-ranked replica assumes leadership —
//     clients follow the freshest routing-table epoch and skip downed
//     nodes for WithDownFor.
//   - Multi-level trust serving: WithTrustViews splits a group into
//     ordered trust views — one model per level, each trained on the
//     shared records blurred to the view's noise, with a correlated noise
//     ladder (every view is the view above plus independent noise) so
//     colluding recipients pooling their views learn no more than the
//     least-noisy member alone. Clients pin a view with ClientConfig.View
//     or are routed to the best view their endpoint is on; views answer
//     outsiders with ErrNotMember and unserved levels with the typed
//     ErrUnknownView.
//   - A dynamic control plane: with WithAdminToken armed, an Admin client
//     (NewAdmin) registers, evicts, reconfigures and lists serving groups
//     on a live miner — no restart — with per-group records/s ingest
//     quotas (WithQuota, typed ErrQuota answered in one round trip) and a
//     registered group immediately discoverable by cluster clients.
//   - Operational metrics: WithMetrics plugs a registry of atomic
//     counters, gauges and timing histograms into the serving and
//     streaming layers — per-group requests, batch sizes, ingest volume,
//     queue depth, refit counts and durations, rejections, stream chunks
//     and drift re-derivations — exportable as a JSON snapshot
//     (Metrics.Snapshot, or over HTTP via sapnode -metrics-addr, which
//     also answers /healthz liveness probes).
//   - Negotiated wire formats: WithCompression DEFLATE-compresses service
//     frames and WithFloat32Payloads halves record payloads (float32
//     packing, ~7 significant digits — far inside the perturbation noise
//     floor), each engaging per peer only after that peer advertises the
//     capability in band, so mixed-version fleets keep exchanging classic
//     frames with zero errors. Encode buffers and flate coders are pooled,
//     keeping the frame hot path allocation-free.
//   - Risk accounting: the paper's Eq. 1 and Eq. 2 plus the party-count
//     bounds behind its Figure 4.
//
// # Lifecycle: run → serve → query → stream
//
// The unit of the API is the Session, created with the functional-options
// constructor New (or configured and executed in one call with Run). A
// session moves through four phases, mirroring the paper's
// service-oriented framing in which the miner "offers their data mining
// services to the contracted parties" for the contract's lifetime:
//
//  1. Run: each party's perturbation is optimized against the attack suite
//     and the Space Adaptation Protocol unifies the perturbed shards at the
//     miner. Session.Unified, Session.Target, Session.LocalGuarantees and
//     Session.Identifiability expose the outcome.
//  2. Serve: the miner trains a classifier on the unified data and answers
//     queries on a transport endpoint until its context is cancelled.
//     Predictions run on a configurable worker pool (WithServiceWorkers),
//     and each request carries a whole batch, so one round trip classifies
//     N records.
//  3. Query: each contracted provider holds a Client (Session.NewClient)
//     whose background demultiplexer correlates responses by request ID —
//     any number of goroutines may call Classify or ClassifyBatch
//     concurrently over one connection. Clients transform clear-space
//     queries into the target space with G_t before sending, so the miner
//     never sees clear data.
//  4. Stream: data keeps arriving after unification. Session.Stream runs a
//     chunked perturbation pipeline over a StreamSource — records are
//     perturbed with a stream-local transform, adapted into the target
//     space, and emitted through a bounded buffer — and Session.StreamTo
//     pushes every chunk into the serving miner, whose model refits every
//     WithServiceRefitEvery records. The pipeline tracks the running
//     covariance of the clear input (Welford/rank-1 accumulators) and,
//     when WithDriftThreshold is set, re-derives its transform as the
//     distribution drifts.
//
// # Streaming quickstart
//
//	// Miner side: serve with a refit cadence.
//	sess, _ := sap.Run(ctx, sap.WithParties(parties...),
//		sap.WithServiceRefitEvery(64))
//	go sess.Serve(ctx, svcConn, sap.NewKNN(5))
//
//	// Provider side: push freshly collected records as they arrive.
//	pushed, _ := sess.StreamTo(ctx, provConn, "mining-service",
//		sap.DatasetSource(fresh),
//		sap.WithChunkSize(64), sap.WithDriftThreshold(0.5))
//
// # Multi-group serving
//
//	// Two contracts, two target spaces, one miner process.
//	hospitals, _ := sap.Run(ctx, sap.WithParties(wards...),
//		sap.WithGroupID("hospitals"))
//	vintners, _ := sap.Run(ctx, sap.WithParties(cellars...),
//		sap.WithGroupID("vintners"))
//	go sap.ServeGroups(ctx, svcConn,
//		sap.Group{Session: hospitals, Model: sap.NewKNN(5), Members: []string{"clinic"}},
//		sap.Group{Session: vintners, Model: sap.NewKNN(5), Members: []string{"cellar"}},
//	)
//	// Each session's clients stamp its group; foreign peers get
//	// ErrNotMember, unregistered groups ErrUnknownGroup.
//	client, _ := hospitals.NewClient(clinicConn,
//		sap.ClientConfig{Miner: "mining-service"})
//
// # Operating a live miner
//
//	// Miner side: arm the control plane with a shared token.
//	sess, _ := sap.Run(ctx, sap.WithParties(parties...),
//		sap.WithAdminToken("hunter2"))
//	go sess.Serve(ctx, svcConn, sap.NewKNN(5))
//
//	// Operator side: register a new group on the running service —
//	// fitted locally, quota-limited, serving the moment the call returns.
//	admin, _ := sap.NewAdmin(opConn, "mining-service", "hunter2")
//	_ = admin.RegisterGroup(ctx, sap.GroupConfig{
//		ID: "ward-c", Data: unified, Model: sap.NewKNN(5),
//		Quota: sap.Quota{RecordsPerSec: 100, Burst: 200},
//	})
//	// ... and later retire it; its clients get ErrUnknownGroup.
//	_ = admin.EvictGroup(ctx, "ward-c")
//
// Over-quota ingest bounces with a typed ErrQuota in a single round trip
// (quota is policy — clients do not retry it) and counts under the group's
// rejects.quota instrument. The same plane is scriptable as
// `sapnode -admin register|evict|list`.
//
// # Watching a deployment
//
//	// One registry for the miner process; groups stay apart by namespace.
//	reg := sap.NewMetrics()
//	sess, _ := sap.Run(ctx, sap.WithParties(parties...), sap.WithMetrics(reg))
//	go sess.Serve(ctx, svcConn, sap.NewKNN(5))
//	// ... later, from an ops handler or test:
//	snap := reg.Snapshot() // counters["service.default.requests"], ...
//
// Or from the command line: `sapnode -role miner ... -serve 1h
// -metrics-addr :9090` serves the same snapshot as JSON at
// http://localhost:9090/metrics. See the Metrics section of
// ARCHITECTURE.md for the full instrument catalogue.
//
// # Quickstart
//
//	pool, _ := sap.GenerateDataset("Diabetes", 1)
//	parties, _ := sap.Split(pool, 4, sap.PartitionUniform, 1)
//	sess, _ := sap.Run(context.Background(),
//		sap.WithParties(parties...),
//		sap.WithSeed(1),
//	)
//
//	// Miner side: keep a model online.
//	net := sap.NewMemNetwork()
//	svcConn, _ := net.Endpoint("mining-service")
//	go sess.Serve(ctx, svcConn, sap.NewKNN(5))
//
//	// Provider side: batched queries, one round trip.
//	cliConn, _ := net.Endpoint("clinic")
//	client, _ := sess.NewClient(cliConn, sap.ClientConfig{Miner: "mining-service"})
//	labels, _ := client.ClassifyBatch(ctx, queries)
//
// See examples/ for complete programs and ARCHITECTURE.md for the layer
// diagram, message flows and experiment index.
package sap
