package sap_test

// Table-driven validation tests for the facade's option sets, asserting the
// exact error text a misconfigured deployment sees.

import (
	"context"
	"errors"
	"io"
	"testing"
	"time"

	sap "repro"
)

// TestSessionOptionValidationMessages drives every rejecting session option
// through sap.New and asserts the exact message.
func TestSessionOptionValidationMessages(t *testing.T) {
	for _, tc := range []struct {
		name string
		opt  sap.Option
		want string
	}{
		{"negative noise sigma", sap.WithNoiseSigma(-0.1),
			"sap: bad input: negative noise sigma -0.1"},
		{"negative workers", sap.WithServiceWorkers(-1),
			"sap: bad input: negative worker count -1"},
		{"negative batch cap", sap.WithServiceMaxBatch(-2),
			"sap: bad input: negative batch cap -2"},
		{"invalid refit cadence", sap.WithServiceRefitEvery(-3),
			"sap: bad input: refit cadence -3 (0 keeps the default, -1 disables)"},
		{"empty group id", sap.WithGroupID(""),
			"sap: bad input: empty group id"},
		{"nil metrics sink", sap.WithMetrics(nil),
			"sap: bad input: nil metrics sink"},
		{"zero down-mark window", sap.WithDownFor(0),
			"sap: bad input: non-positive down-mark window 0s"},
		{"negative down-mark window", sap.WithDownFor(-time.Second),
			"sap: bad input: non-positive down-mark window -1s"},
		{"zero failover grace", sap.WithFailoverGrace(0),
			"sap: bad input: zero failover grace (omit the option for the default, negative disables)"},
		{"zero anti-entropy cadence", sap.WithAntiEntropyEvery(0),
			"sap: bad input: zero anti-entropy cadence (omit the option for the default, negative disables)"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := sap.New(tc.opt)
			if err == nil {
				t.Fatal("option accepted")
			}
			if !errors.Is(err, sap.ErrBadInput) {
				t.Fatalf("err = %v, want ErrBadInput", err)
			}
			if err.Error() != tc.want {
				t.Fatalf("err = %q, want %q", err.Error(), tc.want)
			}
		})
	}

	// The refit-cadence sentinel -1 (disable) and positive cadences pass
	// validation; only the ambiguous negatives are refused.
	for _, ok := range []int{-1, 1, 256} {
		if _, err := sap.New(sap.WithServiceRefitEvery(ok)); err != nil &&
			err.Error() != "sap: bad input: no parties (use WithParties)" {
			t.Fatalf("WithServiceRefitEvery(%d) rejected: %v", ok, err)
		}
	}

	// Positive down-mark windows and the negative disable sentinels of the
	// durability cadences all pass validation.
	for name, opt := range map[string]sap.Option{
		"WithDownFor(1s)":          sap.WithDownFor(time.Second),
		"WithFailoverGrace(2s)":    sap.WithFailoverGrace(2 * time.Second),
		"WithFailoverGrace(-1)":    sap.WithFailoverGrace(-1),
		"WithAntiEntropyEvery(5s)": sap.WithAntiEntropyEvery(5 * time.Second),
		"WithAntiEntropyEvery(-1)": sap.WithAntiEntropyEvery(-1),
	} {
		if _, err := sap.New(opt); err != nil &&
			err.Error() != "sap: bad input: no parties (use WithParties)" {
			t.Fatalf("%s rejected: %v", name, err)
		}
	}
}

// emptySource is a stream source that ends immediately; option validation
// fires before the source is ever pulled.
type emptySource struct{}

func (emptySource) Next(context.Context) (*sap.Dataset, error) { return nil, io.EOF }

// TestStreamOptionValidationMessages drives every rejecting stream option
// through Session.Stream on a completed session and asserts the exact
// message.
func TestStreamOptionValidationMessages(t *testing.T) {
	sess, _ := runSmallSession(t)
	for _, tc := range []struct {
		name string
		opt  sap.StreamOption
		want string
	}{
		{"negative chunk size", sap.WithChunkSize(-1),
			"sap: bad input: negative chunk size -1"},
		{"negative drift threshold", sap.WithDriftThreshold(-0.5),
			"sap: bad input: negative drift threshold -0.5"},
		{"negative buffer depth", sap.WithBufferDepth(-2),
			"sap: bad input: negative buffer depth -2"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := sess.Stream(runCtx(t), emptySource{}, tc.opt)
			if err == nil {
				t.Fatal("option accepted")
			}
			if !errors.Is(err, sap.ErrBadInput) {
				t.Fatalf("err = %v, want ErrBadInput", err)
			}
			if err.Error() != tc.want {
				t.Fatalf("err = %q, want %q", err.Error(), tc.want)
			}
		})
	}
}

// TestServeGroupsValidationMessages covers the group-set validation of
// ServeGroups: empty sets, missing sessions or models, and duplicate or
// defaulted-into-collision group IDs — all checked before any session state
// is touched, so misconfiguration surfaces even on unrun sessions.
func TestServeGroupsValidationMessages(t *testing.T) {
	d, err := sap.GenerateDataset("Iris", 63)
	if err != nil {
		t.Fatal(err)
	}
	parties, err := sap.Split(d, 3, sap.PartitionUniform, 64)
	if err != nil {
		t.Fatal(err)
	}
	newSession := func(opts ...sap.Option) *sap.Session {
		s, err := sap.New(append([]sap.Option{sap.WithParties(parties...), sap.WithOptimizer(2, 1)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	net := sap.NewMemNetwork()
	conn, err := net.Endpoint("svc")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	model := sap.NewKNN(5)
	ctx := runCtx(t)

	for _, tc := range []struct {
		name   string
		groups []sap.Group
		want   string
	}{
		{"no groups", nil,
			"sap: bad input: no serving groups"},
		{"nil session", []sap.Group{{Model: model}},
			"sap: bad input: group 0 has no session"},
		{"nil model", []sap.Group{{Session: newSession(sap.WithGroupID("a"))}},
			`sap: bad input: group "a" has no model`},
		{"duplicate group id", []sap.Group{
			{Session: newSession(sap.WithGroupID("a")), Model: model},
			{Session: newSession(sap.WithGroupID("a")), Model: model}},
			`sap: bad input: duplicate group id "a"`},
		{"defaulted ids collide", []sap.Group{
			{Session: newSession(), Model: model},
			{Session: newSession(), Model: model}},
			`sap: bad input: duplicate group id "default"`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := sap.ServeGroups(ctx, conn, tc.groups...)
			if err == nil {
				t.Fatal("groups accepted")
			}
			if !errors.Is(err, sap.ErrBadInput) {
				t.Fatalf("err = %v, want ErrBadInput", err)
			}
			if err.Error() != tc.want {
				t.Fatalf("err = %q, want %q", err.Error(), tc.want)
			}
		})
	}

	// Unrun sessions pass the group-set checks but fail the ran-state
	// check, scoped to the offending group.
	err = sap.ServeGroups(ctx, conn, sap.Group{Session: newSession(sap.WithGroupID("a")), Model: model})
	if !errors.Is(err, sap.ErrBadInput) {
		t.Fatalf("unrun session err = %v, want ErrBadInput", err)
	}
	if want := `group "a": sap: bad input: session has not run`; err.Error() != want {
		t.Fatalf("err = %q, want %q", err.Error(), want)
	}
}
