package sap_test

// Tests for multi-group serving through the public facade: one miner
// process hosting several contract groups with distinct target spaces,
// cross-group isolation, and the group option set.

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	sap "repro"
)

// runGroupSession runs a quick 3-party session on the named dataset under
// the given group ID.
func runGroupSession(t *testing.T, datasetName string, seed int64, groupID string, extra ...sap.Option) (*sap.Session, *sap.Dataset) {
	t.Helper()
	pool, err := sap.GenerateDataset(datasetName, seed)
	if err != nil {
		t.Fatal(err)
	}
	train, holdout, err := sap.TrainTestSplit(pool, 0.2, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	parties, err := sap.Split(train, 3, sap.PartitionUniform, seed+2)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := sap.Run(runCtx(t), append([]sap.Option{
		sap.WithParties(parties...),
		sap.WithSeed(seed + 3),
		sap.WithOptimizer(2, 1),
		sap.WithGroupID(groupID),
	}, extra...)...)
	if err != nil {
		t.Fatal(err)
	}
	return sess, holdout
}

// queryGroup classifies a holdout through one group's client and reports
// the agreement count.
func queryGroup(t *testing.T, client *sap.Client, holdout *sap.Dataset) int {
	t.Helper()
	labels, err := client.ClassifyBatch(runCtx(t), holdout.X)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != holdout.Len() {
		t.Fatalf("%d labels for %d records", len(labels), holdout.Len())
	}
	correct := 0
	for i, label := range labels {
		if label == holdout.Y[i] {
			correct++
		}
	}
	return correct
}

// TestServeGroupsTwoGroups hosts two independently unified groups — with
// distinct target spaces — on one in-memory miner and checks each group's
// clients are served by their own model while cross-group access is
// refused.
func TestServeGroupsTwoGroups(t *testing.T) {
	sessA, holdoutA := runGroupSession(t, "Iris", 71, "ward-a")
	sessB, holdoutB := runGroupSession(t, "Iris", 83, "ward-b")

	// Same dataset family, independent runs: the groups' target spaces
	// must genuinely differ, or the isolation below would be vacuous.
	xa, err := sessA.TransformForInference(holdoutA)
	if err != nil {
		t.Fatal(err)
	}
	xb, err := sessB.TransformForInference(holdoutA)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for j := range xa.X[0] {
		if xa.X[0][j] != xb.X[0][j] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("the two sessions derived identical target spaces")
	}

	net := sap.NewMemNetwork()
	svcConn, err := net.Endpoint("mining-service")
	if err != nil {
		t.Fatal(err)
	}
	defer svcConn.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- sap.ServeGroups(ctx, svcConn,
			sap.Group{Session: sessA, Model: sap.NewKNN(5), Members: []string{"client-a"}},
			sap.Group{Session: sessB, Model: sap.NewKNN(5), Members: []string{"client-b"}},
		)
	}()
	defer func() {
		cancel()
		if err := <-done; err != nil {
			t.Error(err)
		}
	}()

	connA, err := net.Endpoint("client-a")
	if err != nil {
		t.Fatal(err)
	}
	defer connA.Close()
	clientA, err := sessA.NewClient(connA, sap.ClientConfig{Miner: "mining-service"})
	if err != nil {
		t.Fatal(err)
	}
	connB, err := net.Endpoint("client-b")
	if err != nil {
		t.Fatal(err)
	}
	defer connB.Close()
	clientB, err := sessB.NewClient(connB, sap.ClientConfig{Miner: "mining-service"})
	if err != nil {
		t.Fatal(err)
	}
	defer clientB.Close()

	// Each group is served by its own shard, in its own target space.
	if correct := queryGroup(t, clientA, holdoutA); correct < holdoutA.Len()*6/10 {
		t.Errorf("group ward-a accuracy %d/%d too low", correct, holdoutA.Len())
	}
	if correct := queryGroup(t, clientB, holdoutB); correct < holdoutB.Len()*6/10 {
		t.Errorf("group ward-b accuracy %d/%d too low", correct, holdoutB.Len())
	}

	// Cross-group isolation: client-a is not a ward-b member, so the
	// router refuses it before anything reaches ward-b's model; a group
	// nobody registered is refused as unknown.
	clientA.Close()
	foreign, err := sessA.NewClient(connA, sap.ClientConfig{Miner: "mining-service", Group: "ward-b"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := foreign.Classify(runCtx(t), holdoutA.X[0]); !errors.Is(err, sap.ErrNotMember) {
		t.Fatalf("cross-group err = %v, want ErrNotMember", err)
	}
	foreign.Close()
	ghost, err := sessA.NewClient(connA, sap.ClientConfig{Miner: "mining-service", Group: "ward-z"})
	if err != nil {
		t.Fatal(err)
	}
	defer ghost.Close()
	if _, err := ghost.Classify(runCtx(t), holdoutA.X[0]); !errors.Is(err, sap.ErrUnknownGroup) {
		t.Fatalf("unknown-group err = %v, want ErrUnknownGroup", err)
	}
}

// TestServeGroupsOverTCP is the end-to-end acceptance path: one miner
// process serves two groups with distinct target spaces (different feature
// dimensions, even) over real TCP with AES-sealed frames; each group's
// client gets its own model and cross-group queries are refused.
func TestServeGroupsOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets")
	}
	sessA, holdoutA := runGroupSession(t, "Iris", 91, "flowers")
	sessB, holdoutB := runGroupSession(t, "Wine", 92, "cellars")
	if sessA.Target().Dim() == sessB.Target().Dim() {
		t.Fatalf("expected distinct dimensions, both %d", sessA.Target().Dim())
	}

	svcNode, err := sap.NewTCPNode("mining-service", "127.0.0.1:0", "group-key")
	if err != nil {
		t.Fatal(err)
	}
	defer svcNode.Close()
	nodeA, err := sap.NewTCPNode("client-a", "127.0.0.1:0", "group-key")
	if err != nil {
		t.Fatal(err)
	}
	defer nodeA.Close()
	nodeB, err := sap.NewTCPNode("client-b", "127.0.0.1:0", "group-key")
	if err != nil {
		t.Fatal(err)
	}
	defer nodeB.Close()
	svcNode.AddPeer("client-a", nodeA.Addr())
	svcNode.AddPeer("client-b", nodeB.Addr())
	nodeA.AddPeer("mining-service", svcNode.Addr())
	nodeB.AddPeer("mining-service", svcNode.Addr())

	ctx, cancel := context.WithCancel(runCtx(t))
	done := make(chan error, 1)
	go func() {
		done <- sessA.ServeGroups(ctx, svcNode, sap.NewKNN(5),
			sap.Group{Session: sessB, Model: sap.NewKNN(5), Members: []string{"client-b"}})
	}()
	defer func() {
		cancel()
		if err := <-done; err != nil {
			t.Error(err)
		}
	}()

	clientA, err := sessA.NewClient(nodeA, sap.ClientConfig{Miner: "mining-service"})
	if err != nil {
		t.Fatal(err)
	}
	clientB, err := sessB.NewClient(nodeB, sap.ClientConfig{Miner: "mining-service"})
	if err != nil {
		t.Fatal(err)
	}
	defer clientB.Close()

	if correct := queryGroup(t, clientA, holdoutA); correct < holdoutA.Len()*6/10 {
		t.Errorf("group flowers accuracy %d/%d too low over TCP", correct, holdoutA.Len())
	}
	if correct := queryGroup(t, clientB, holdoutB); correct < holdoutB.Len()*6/10 {
		t.Errorf("group cellars accuracy %d/%d too low over TCP", correct, holdoutB.Len())
	}

	// client-a is not on the cellars member list.
	clientA.Close()
	foreign, err := sessA.NewClient(nodeA, sap.ClientConfig{Miner: "mining-service", Group: "cellars"})
	if err != nil {
		t.Fatal(err)
	}
	defer foreign.Close()
	if _, err := foreign.Classify(runCtx(t), holdoutA.X[0]); !errors.Is(err, sap.ErrNotMember) {
		t.Fatalf("cross-group err over TCP = %v, want ErrNotMember", err)
	}
}

// opaqueModel is a Classifier that deliberately does not implement
// classify.Cloner, standing in for a user-supplied custom model.
type opaqueModel struct{ inner sap.Classifier }

func (m *opaqueModel) Fit(d *sap.Dataset) error         { return m.inner.Fit(d) }
func (m *opaqueModel) Predict(x []float64) (int, error) { return m.inner.Predict(x) }

// TestServeGroupsModelFactoryContract pins the background-refit model
// contract at the facade: with refits enabled a non-cloneable custom model
// is rejected up front (a refit could otherwise never fit a fresh
// instance), while pairing it with a NewModel factory — or disabling
// refits — serves fine.
func TestServeGroupsModelFactoryContract(t *testing.T) {
	sess, _ := runGroupSession(t, "Iris", 104, "custom")
	net := sap.NewMemNetwork()
	svcConn, err := net.Endpoint("mining-service")
	if err != nil {
		t.Fatal(err)
	}
	defer svcConn.Close()

	// Refits enabled (default) + opaque model, no factory: rejected.
	err = sap.ServeGroups(context.Background(), svcConn,
		sap.Group{Session: sess, Model: &opaqueModel{inner: sap.NewKNN(3)}})
	if err == nil || !strings.Contains(err.Error(), "cannot refit in the background") {
		t.Fatalf("ServeGroups with an uncloneable model = %v, want a background-refit config error", err)
	}

	// The same model with a factory serves — and the factory's fresh
	// instances carry refits through to a live swap.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	sessRefit, _ := runGroupSession(t, "Iris", 105, "custom-refit", sap.WithServiceRefitEvery(2))
	go func() {
		done <- sap.ServeGroups(ctx, svcConn, sap.Group{
			Session:  sessRefit,
			Model:    &opaqueModel{inner: sap.NewKNN(1)},
			NewModel: func() sap.Classifier { return &opaqueModel{inner: sap.NewKNN(1)} },
		})
	}()
	defer func() {
		cancel()
		if err := <-done; err != nil {
			t.Error(err)
		}
	}()

	cliConn, err := net.Endpoint("client")
	if err != nil {
		t.Fatal(err)
	}
	defer cliConn.Close()
	client, err := sessRefit.NewClient(cliConn, sap.ClientConfig{Miner: "mining-service"})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	probe := make([]float64, sessRefit.Target().Dim())
	for j := range probe {
		probe[j] = 30.0
	}
	fresh, err := sessRefit.TransformForInference(mustDataset(t, [][]float64{probe, probe}, []int{8, 8}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Push(runCtx(t), sap.StreamChunk{Data: fresh}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		label, err := client.Classify(runCtx(t), probe)
		if err != nil {
			t.Fatal(err)
		}
		if label == 8 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("label = %d, want 8 (factory-built refit never swapped in)", label)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestServeGroupsPerGroupRefitCadence checks each group refits on its OWN
// session's cadence: a group with refits disabled keeps its original fit
// while a co-hosted group with a tight cadence learns pushed records —
// the first group's setting must not leak into the second's.
func TestServeGroupsPerGroupRefitCadence(t *testing.T) {
	// The FIRST group disables refits; the second sets a tight cadence on
	// its own session — it must not inherit the first group's -1.
	sessFrozen, holdoutFrozen := runGroupSession(t, "Iris", 101, "frozen", sap.WithServiceRefitEvery(-1))
	sessLive, _ := runGroupSession(t, "Iris", 102, "live", sap.WithServiceRefitEvery(2))

	net := sap.NewMemNetwork()
	svcConn, err := net.Endpoint("mining-service")
	if err != nil {
		t.Fatal(err)
	}
	defer svcConn.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- sap.ServeGroups(ctx, svcConn,
			sap.Group{Session: sessFrozen, Model: sap.NewKNN(5)},
			sap.Group{Session: sessLive, Model: sap.NewKNN(1)},
		)
	}()
	defer func() {
		cancel()
		if err := <-done; err != nil {
			t.Error(err)
		}
	}()

	// Stream two far-out records into the live group; its cadence of 2
	// fires a refit, so a query near the new region answers the new label.
	pushConn, err := net.Endpoint("pusher")
	if err != nil {
		t.Fatal(err)
	}
	defer pushConn.Close()
	liveClient, err := sessLive.NewClient(pushConn, sap.ClientConfig{Miner: "mining-service"})
	if err != nil {
		t.Fatal(err)
	}
	defer liveClient.Close()
	probe := make([]float64, sessLive.Target().Dim())
	for j := range probe {
		probe[j] = 40.0
	}
	reachable, err := sessLive.TransformForInference(mustDataset(t, [][]float64{probe, probe}, []int{9, 9}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := liveClient.Push(runCtx(t), sap.StreamChunk{Data: reachable}); err != nil {
		t.Fatal(err)
	}
	// The cadence-triggered refit fits and swaps in the background; poll
	// until the fresh fit is live.
	deadline := time.Now().Add(10 * time.Second)
	for {
		label, err := liveClient.Classify(runCtx(t), probe)
		if err != nil {
			t.Fatal(err)
		}
		if label == 9 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("live group label = %d, want 9 (its own cadence must fire)", label)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The frozen group still answers sensibly from its original fit.
	cliConn, err := net.Endpoint("client-frozen")
	if err != nil {
		t.Fatal(err)
	}
	defer cliConn.Close()
	frozenClient, err := sessFrozen.NewClient(cliConn, sap.ClientConfig{Miner: "mining-service"})
	if err != nil {
		t.Fatal(err)
	}
	defer frozenClient.Close()
	if correct := queryGroup(t, frozenClient, holdoutFrozen); correct < holdoutFrozen.Len()*6/10 {
		t.Errorf("frozen group accuracy %d/%d", correct, holdoutFrozen.Len())
	}
}

// mustDataset builds a dataset or fails the test.
func mustDataset(t *testing.T, x [][]float64, y []int) *sap.Dataset {
	t.Helper()
	d, err := sap.NewDataset("probe", x, y)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestServeGroupsStreamIsolation streams into one group of a two-group
// miner and checks the other group's model and counters stay untouched
// while the fed group learns the new region.
func TestServeGroupsStreamIsolation(t *testing.T) {
	sessA, _ := runGroupSession(t, "Iris", 95, "fed")
	sessB, holdoutB := runGroupSession(t, "Iris", 96, "starved")

	net := sap.NewMemNetwork()
	svcConn, err := net.Endpoint("mining-service")
	if err != nil {
		t.Fatal(err)
	}
	defer svcConn.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- sap.ServeGroups(ctx, svcConn,
			sap.Group{Session: sessA, Model: sap.NewKNN(5)},
			sap.Group{Session: sessB, Model: sap.NewKNN(5)},
		)
	}()
	defer func() {
		cancel()
		if err := <-done; err != nil {
			t.Error(err)
		}
	}()

	// Stream a fresh batch into the fed group only.
	fresh, err := sap.GenerateDataset("Iris", 97)
	if err != nil {
		t.Fatal(err)
	}
	pushConn, err := net.Endpoint("pusher")
	if err != nil {
		t.Fatal(err)
	}
	defer pushConn.Close()
	pushed, err := sessA.StreamTo(runCtx(t), pushConn, "mining-service",
		sap.DatasetSource(fresh), sap.WithChunkSize(64))
	if err != nil {
		t.Fatal(err)
	}
	if pushed != fresh.Len() {
		t.Fatalf("streamed %d records, want %d", pushed, fresh.Len())
	}

	// The starved group still answers from its original fit.
	cliConn, err := net.Endpoint("client-b")
	if err != nil {
		t.Fatal(err)
	}
	defer cliConn.Close()
	clientB, err := sessB.NewClient(cliConn, sap.ClientConfig{Miner: "mining-service"})
	if err != nil {
		t.Fatal(err)
	}
	defer clientB.Close()
	if correct := queryGroup(t, clientB, holdoutB); correct < holdoutB.Len()*6/10 {
		t.Errorf("starved group accuracy %d/%d after foreign stream", correct, holdoutB.Len())
	}
}
