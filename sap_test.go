package sap_test

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	sap "repro"
)

func runCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestDatasetNames(t *testing.T) {
	names := sap.DatasetNames()
	if len(names) != 12 {
		t.Fatalf("%d datasets, want 12", len(names))
	}
}

func TestGenerateDatasetNormalized(t *testing.T) {
	d, err := sap.GenerateDataset("Iris", 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 150 || d.Dim() != 4 {
		t.Fatalf("Iris dims %dx%d", d.Len(), d.Dim())
	}
	for i := range d.X {
		for _, v := range d.X[i] {
			if v < 0 || v > 1 {
				t.Fatalf("value %v outside [0,1]; GenerateDataset must normalize", v)
			}
		}
	}
	if _, err := sap.GenerateDataset("Nope", 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestOptimizePerturbation(t *testing.T) {
	d, err := sap.GenerateDataset("Iris", 2)
	if err != nil {
		t.Fatal(err)
	}
	p, rho, err := sap.OptimizePerturbation(d, 3, sap.WithOptimizer(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	if p.Dim() != d.Dim() {
		t.Fatalf("perturbation dim %d, want %d", p.Dim(), d.Dim())
	}
	if rho <= 0 {
		t.Fatalf("guarantee %v, want > 0", rho)
	}
	if _, _, err := sap.OptimizePerturbation(nil, 1); !errors.Is(err, sap.ErrBadInput) {
		t.Fatalf("nil err = %v", err)
	}
}

func TestEvaluatePrivacy(t *testing.T) {
	d, _ := sap.GenerateDataset("Iris", 4)
	p, _, err := sap.OptimizePerturbation(d, 5, sap.WithOptimizer(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sap.EvaluatePrivacy(d, p, 6, 8)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MinGuarantee <= 0 {
		t.Fatalf("guarantee %v", rep.MinGuarantee)
	}
	if len(rep.Attacks) != 4 {
		t.Fatalf("%d attacks, want 4", len(rep.Attacks))
	}
	if _, err := sap.EvaluatePrivacy(d, p, 6, -1); !errors.Is(err, sap.ErrBadInput) {
		t.Fatalf("bad pairs err = %v", err)
	}
}

func TestRunEndToEnd(t *testing.T) {
	pool, err := sap.GenerateDataset("Diabetes", 7)
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := sap.TrainTestSplit(pool, 0.3, 8)
	if err != nil {
		t.Fatal(err)
	}
	parties, err := sap.Split(train, 4, sap.PartitionUniform, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sap.Run(runCtx(t),
		sap.WithParties(parties...),
		sap.WithSeed(10),
		sap.WithOptimizer(2, 1),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Unified().Len() != train.Len() {
		t.Fatalf("unified %d records, want %d", res.Unified().Len(), train.Len())
	}
	if res.Identifiability() != 1.0/3 {
		t.Fatalf("identifiability %v, want 1/3", res.Identifiability())
	}
	if len(res.LocalGuarantees()) != 4 {
		t.Fatalf("%d guarantees, want 4", len(res.LocalGuarantees()))
	}

	// Train on unified, score on the transformed test set; must be close
	// to the clear baseline.
	model := sap.NewKNN(5)
	if err := model.Fit(res.Unified()); err != nil {
		t.Fatal(err)
	}
	testT, err := res.TransformForInference(test)
	if err != nil {
		t.Fatal(err)
	}
	accPerturbed, err := sap.Accuracy(model, testT)
	if err != nil {
		t.Fatal(err)
	}
	base := sap.NewKNN(5)
	if err := base.Fit(train); err != nil {
		t.Fatal(err)
	}
	accClear, err := sap.Accuracy(base, test)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(accClear-accPerturbed) > 0.12 {
		t.Errorf("accuracy deviated too much: clear %v vs perturbed %v", accClear, accPerturbed)
	}
}

func TestRunValidation(t *testing.T) {
	ctx := runCtx(t)
	d, _ := sap.GenerateDataset("Iris", 11)
	if _, err := sap.Run(ctx, sap.WithParties(d, d)); !errors.Is(err, sap.ErrBadInput) {
		t.Fatalf("k=2 err = %v", err)
	}
	if _, err := sap.Run(ctx, sap.WithParties(d, d, nil)); !errors.Is(err, sap.ErrBadInput) {
		t.Fatalf("nil party err = %v", err)
	}
	if _, err := sap.Run(ctx); !errors.Is(err, sap.ErrBadInput) {
		t.Fatalf("no parties err = %v", err)
	}
}

func TestTransformForInferenceEmpty(t *testing.T) {
	pool, _ := sap.GenerateDataset("Iris", 12)
	parties, err := sap.Split(pool, 3, sap.PartitionUniform, 13)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sap.Run(runCtx(t),
		sap.WithParties(parties...),
		sap.WithSeed(14),
		sap.WithOptimizer(2, 1),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.TransformForInference(nil); !errors.Is(err, sap.ErrBadInput) {
		t.Fatalf("nil err = %v", err)
	}
}

func TestRiskReexports(t *testing.T) {
	r, err := sap.RiskEq1(0.5, 0.9, 0.8, 1)
	if err != nil || r <= 0 {
		t.Fatalf("RiskEq1 = %v, %v", r, err)
	}
	r2, err := sap.RiskSAP(5, 0.9, 0.8, 1)
	if err != nil || r2 <= 0 {
		t.Fatalf("RiskSAP = %v, %v", r2, err)
	}
	k, err := sap.MinParties(0.95, 0.9)
	if err != nil || k < 2 {
		t.Fatalf("MinParties = %v, %v", k, err)
	}
}

func TestClassifierConstructors(t *testing.T) {
	d, _ := sap.GenerateDataset("Iris", 15)
	train, test, _ := sap.TrainTestSplit(d, 0.3, 16)
	for name, clf := range map[string]sap.Classifier{
		"knn":      sap.NewKNN(5),
		"svm":      sap.NewSVM(sap.SVMConfig{}),
		"centroid": sap.NewNearestCentroid(),
	} {
		if err := clf.Fit(train); err != nil {
			t.Fatalf("%s fit: %v", name, err)
		}
		acc, err := sap.Accuracy(clf, test)
		if err != nil {
			t.Fatalf("%s accuracy: %v", name, err)
		}
		if acc < 0.6 {
			t.Errorf("%s accuracy %v too low", name, acc)
		}
	}
}
