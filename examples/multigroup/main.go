// Multigroup: one miner process serving several contract groups. Two
// independent consortia — hospitals pooling Diabetes records and vintners
// pooling Wine assays — each run their own SAP session, ending with their
// own target space and unified training set. A single mining service hosts
// both as model shards (sap.ServeGroups): wire v4 frames carry a group ID,
// the router maps each query to its group's model, and member lists stop
// one consortium's clients from probing the other's model. This is the
// many-contract deployment: the service provider sells mining to any number
// of disjoint contracts from one process.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	sap "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// runGroup executes one consortium's SAP session over its own parties.
func runGroup(ctx context.Context, groupID, dataset string, seed int64) (*sap.Session, *sap.Dataset, error) {
	pool, err := sap.GenerateDataset(dataset, seed)
	if err != nil {
		return nil, nil, err
	}
	train, holdout, err := sap.TrainTestSplit(pool, 0.2, seed+1)
	if err != nil {
		return nil, nil, err
	}
	parties, err := sap.Split(train, 3, sap.PartitionUniform, seed+2)
	if err != nil {
		return nil, nil, err
	}
	sess, err := sap.Run(ctx,
		sap.WithParties(parties...),
		sap.WithSeed(seed+3),
		sap.WithOptimizer(4, 4),
		sap.WithGroupID(groupID),
	)
	if err != nil {
		return nil, nil, err
	}
	return sess, holdout, nil
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Phase 1: two disjoint consortia unify independently. Distinct seeds
	// mean distinct target spaces — nothing is shared between the groups.
	hospitals, diabHoldout, err := runGroup(ctx, "hospitals", "Diabetes", 11)
	if err != nil {
		return err
	}
	vintners, wineHoldout, err := runGroup(ctx, "vintners", "Wine", 22)
	if err != nil {
		return err
	}
	fmt.Printf("two contracts unified: hospitals (%d records), vintners (%d records)\n",
		hospitals.Unified().Len(), vintners.Unified().Len())

	// Phase 2: ONE miner process serves both groups. Each group gets its
	// own model shard; member lists pin each group to its own clients.
	net := sap.NewMemNetwork()
	svcConn, err := net.Endpoint("mining-service")
	if err != nil {
		return err
	}
	defer svcConn.Close()
	serveCtx, stopServe := context.WithCancel(ctx)
	defer stopServe()
	serveDone := make(chan error, 1)
	go func() {
		serveDone <- sap.ServeGroups(serveCtx, svcConn,
			sap.Group{Session: hospitals, Model: sap.NewKNN(5), Members: []string{"clinic"}},
			sap.Group{Session: vintners, Model: sap.NewKNN(5), Members: []string{"cellar"}},
		)
	}()

	// Phase 3: each consortium's client queries its own group. Clients
	// transform clear queries with their own session's G_t and stamp their
	// group ID on every frame.
	clinicConn, err := net.Endpoint("clinic")
	if err != nil {
		return err
	}
	defer clinicConn.Close()
	clinic, err := hospitals.NewClient(clinicConn, sap.ClientConfig{Miner: "mining-service"})
	if err != nil {
		return err
	}
	defer clinic.Close()

	cellarConn, err := net.Endpoint("cellar")
	if err != nil {
		return err
	}
	defer cellarConn.Close()
	cellar, err := vintners.NewClient(cellarConn, sap.ClientConfig{Miner: "mining-service"})
	if err != nil {
		return err
	}
	defer cellar.Close()

	for _, q := range []struct {
		name    string
		client  *sap.Client
		holdout *sap.Dataset
	}{
		{"hospitals", clinic, diabHoldout},
		{"vintners", cellar, wineHoldout},
	} {
		labels, err := q.client.ClassifyBatch(ctx, q.holdout.X)
		if err != nil {
			return err
		}
		agree := 0
		for i, label := range labels {
			if label == q.holdout.Y[i] {
				agree++
			}
		}
		fmt.Printf("group %q: %d/%d holdout labels agree\n", q.name, agree, len(labels))
	}

	// Phase 4: isolation. The clinic tries the vintners' group: it is not
	// on that group's member list, so the router refuses before a single
	// record reaches the model. (The first client is closed first — a
	// connection's receive side belongs to one client at a time.)
	clinic.Close()
	trespass, err := hospitals.NewClient(clinicConn, sap.ClientConfig{Miner: "mining-service", Group: "vintners"})
	if err != nil {
		return err
	}
	defer trespass.Close()
	if _, err := trespass.Classify(ctx, diabHoldout.X[0]); errors.Is(err, sap.ErrNotMember) {
		fmt.Println("cross-group query refused: clinic is not a vintners member")
	} else {
		return fmt.Errorf("cross-group query was not refused (err = %v)", err)
	}

	stopServe()
	return <-serveDone
}
