// Tcpcluster: a full SAP deployment over real TCP sockets with AES-GCM
// encrypted frames, all in one process for demonstration: three data
// providers, a coordinating provider, and the mining service provider, each
// on its own loopback port. The same wiring runs across machines with
// cmd/sapnode.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	sap "repro"
	"repro/internal/privacy"
	"repro/internal/protocol"
	"repro/internal/transport"
)

const sessionKey = "demo-session-key"

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Four banks share a credit-scoring dataset shard each.
	pool, err := sap.GenerateDataset("Credit_a", 1)
	if err != nil {
		return err
	}
	shards, err := sap.Split(pool, 4, sap.PartitionUniform, 2)
	if err != nil {
		return err
	}

	// Bring up one encrypted TCP node per party. bank4 coordinates.
	codec, err := transport.NewAESCodec(sessionKey)
	if err != nil {
		return err
	}
	names := []string{"bank1", "bank2", "bank3", "bank4", "miner"}
	nodes := make(map[string]*transport.TCPNode, len(names))
	for _, name := range names {
		node, err := transport.NewTCPNode(name, "127.0.0.1:0", codec)
		if err != nil {
			return err
		}
		defer node.Close()
		nodes[name] = node
		fmt.Printf("%-6s listening on %s\n", name, node.Addr())
	}
	for _, a := range names {
		for _, b := range names {
			if a != b {
				nodes[a].AddPeer(b, nodes[b].Addr())
			}
		}
	}

	// Each bank optimizes its local perturbation.
	fmt.Println("\noptimizing local perturbations…")
	opt := privacy.NewOptimizer(privacy.OptimizerConfig{Candidates: 6, LocalSteps: 6})
	perts := make([]*sap.Perturbation, 4)
	for i := range shards {
		rng := rand.New(rand.NewSource(int64(100 + i)))
		p, res, err := opt.Optimize(rng, shards[i].FeaturesT())
		if err != nil {
			return err
		}
		perts[i] = p
		fmt.Printf("bank%d local guarantee ρ = %.4f\n", i+1, res.Guarantee)
	}

	// Wire the roles: bank1..3 are providers, bank4 coordinates, miner mines.
	coord, err := protocol.NewCoordinator(nodes["bank4"], protocol.CoordinatorConfig{
		Providers:    []string{"bank1", "bank2", "bank3"},
		Miner:        "miner",
		Data:         shards[3],
		Perturbation: perts[3],
		Rng:          rand.New(rand.NewSource(7)),
	})
	if err != nil {
		return err
	}
	miner, err := protocol.NewMiner(nodes["miner"], protocol.MinerConfig{
		Coordinator: "bank4",
		Parties:     4,
	})
	if err != nil {
		return err
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for i := 0; i < 3; i++ {
		prov, err := protocol.NewProvider(nodes[names[i]], protocol.ProviderConfig{
			Coordinator:  "bank4",
			Miner:        "miner",
			Data:         shards[i],
			Perturbation: perts[i],
			Rng:          rand.New(rand.NewSource(int64(200 + i))),
		})
		if err != nil {
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := prov.Run(ctx); err != nil {
				errCh <- err
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := coord.Run(ctx); err != nil {
			errCh <- err
		}
	}()

	fmt.Println("\nrunning SAP over TCP…")
	res, err := miner.Run(ctx)
	wg.Wait()
	close(errCh)
	if err != nil {
		return err
	}
	for e := range errCh {
		if e != nil {
			return e
		}
	}

	fmt.Printf("miner unified %d records × %d features\n", res.Unified.Len(), res.Unified.Dim())
	fmt.Println("forwarder per slot (all the miner knows about provenance):")
	for slot, from := range res.Submissions {
		fmt.Printf("  slot %d ← %s\n", slot, from)
	}

	// The miner keeps a model online: the serving phase of the contract.
	// Queries and responses travel over the same AES-sealed TCP links.
	svc, err := protocol.NewMiningService(nodes["miner"], res, sap.NewKNN(5),
		protocol.ServiceConfig{Workers: 4})
	if err != nil {
		return err
	}
	serveCtx, stopServe := context.WithCancel(ctx)
	defer stopServe()
	serveDone := make(chan error, 1)
	go func() { serveDone <- svc.Serve(serveCtx) }()
	fmt.Println("\nmining service online over TCP")

	// bank4 (the coordinator) queries a batch of fresh records. It holds
	// G_t from the run and transforms the queries noiselessly first.
	target := coord.Plan().Target
	queries := shards[3]
	yq, err := target.ApplyNoiseless(queries.FeaturesT())
	if err != nil {
		return err
	}
	batch := yq.Columns()
	client, err := protocol.NewServiceClient(nodes["bank4"], "miner")
	if err != nil {
		return err
	}
	defer client.Close()
	labels, err := client.ClassifyBatch(ctx, batch)
	if err != nil {
		return err
	}
	correct := 0
	for i, label := range labels {
		if label == queries.Y[i] {
			correct++
		}
	}
	fmt.Printf("bank4 classified %d records in one round trip: %d/%d match\n",
		len(labels), correct, len(labels))

	stopServe()
	if err := <-serveDone; err != nil {
		return err
	}
	fmt.Println("service stopped cleanly — done")
	return nil
}
