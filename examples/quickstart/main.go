// Quickstart: perturb one provider's data, check its privacy guarantee
// against the full attack suite, and verify a KNN model trained on the
// perturbed data matches the clear-data baseline.
package main

import (
	"fmt"
	"log"

	sap "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Load a dataset (synthetic stand-in for UCI Diabetes, normalized).
	pool, err := sap.GenerateDataset("Diabetes", 1)
	if err != nil {
		return err
	}
	train, test, err := sap.TrainTestSplit(pool, 0.3, 2)
	if err != nil {
		return err
	}
	fmt.Printf("dataset: %d train / %d test records, %d features\n",
		train.Len(), test.Len(), train.Dim())

	// 2. Optimize a geometric perturbation for the training data.
	pert, rho, err := sap.OptimizePerturbation(train, 3)
	if err != nil {
		return err
	}
	fmt.Printf("optimized perturbation: minimum privacy guarantee ρ = %.4f\n", rho)

	// 3. Evaluate privacy under the full attack suite, granting the
	// known-sample attack 10 matched records.
	report, err := sap.EvaluatePrivacy(train, pert, 4, 10)
	if err != nil {
		return err
	}
	fmt.Println("attack suite results:")
	for _, atk := range report.Attacks {
		if atk.Skipped {
			fmt.Printf("  %-12s skipped (%s)\n", atk.Attack, atk.Err)
			continue
		}
		fmt.Printf("  %-12s per-dimension min ρ = %.4f\n", atk.Attack, atk.Min)
	}
	fmt.Printf("overall minimum privacy guarantee: %.4f\n", report.MinGuarantee)

	// 4. Train on perturbed data; classify perturbed queries. Accuracy
	// should track the clear baseline because KNN is rotation-invariant.
	perturbedTrain := train.Clone()
	y, _, err := pert.Apply(newRand(5), train.FeaturesT())
	if err != nil {
		return err
	}
	if err := perturbedTrain.ReplaceFeaturesT(y); err != nil {
		return err
	}
	perturbedTest := test.Clone()
	yTest, err := pert.ApplyNoiseless(test.FeaturesT())
	if err != nil {
		return err
	}
	if err := perturbedTest.ReplaceFeaturesT(yTest); err != nil {
		return err
	}

	base := sap.NewKNN(5)
	if err := base.Fit(train); err != nil {
		return err
	}
	clearAcc, err := sap.Accuracy(base, test)
	if err != nil {
		return err
	}
	model := sap.NewKNN(5)
	if err := model.Fit(perturbedTrain); err != nil {
		return err
	}
	perturbedAcc, err := sap.Accuracy(model, perturbedTest)
	if err != nil {
		return err
	}
	fmt.Printf("KNN accuracy: clear %.3f vs perturbed %.3f (deviation %+.1f pp)\n",
		clearAcc, perturbedAcc, (perturbedAcc-clearAcc)*100)
	return nil
}
