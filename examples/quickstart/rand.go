package main

import "math/rand"

// newRand builds a deterministic noise source for the example.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
