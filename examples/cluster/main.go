// Cluster: contract groups partitioned across several miner processes. Two
// consortia — hospitals pooling Diabetes records and vintners pooling Wine
// assays — unify as usual, but instead of one miner hosting every group,
// three miner nodes share the load: a rendezvous-hashed routing table
// assigns each group a leader plus one read replica, leaders stream every
// refit's model to their replicas, and a cluster client discovers the table
// and routes per group — classifies fan out over leader and replica, pushes
// go to the leader only. Stopping a replica degrades that group to
// leader-only serving with no client-visible errors.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	sap "repro"
)

var nodeNames = []string{"n1", "n2", "n3"}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// runGroup executes one consortium's SAP session over its own parties. The
// first session carries the cluster layout; the option set is shared.
func runGroup(ctx context.Context, groupID, dataset string, seed int64, extra ...sap.Option) (*sap.Session, *sap.Dataset, error) {
	pool, err := sap.GenerateDataset(dataset, seed)
	if err != nil {
		return nil, nil, err
	}
	train, holdout, err := sap.TrainTestSplit(pool, 0.2, seed+1)
	if err != nil {
		return nil, nil, err
	}
	parties, err := sap.Split(train, 3, sap.PartitionUniform, seed+2)
	if err != nil {
		return nil, nil, err
	}
	opts := append([]sap.Option{
		sap.WithParties(parties...),
		sap.WithSeed(seed + 3),
		sap.WithOptimizer(4, 4),
		sap.WithGroupID(groupID),
	}, extra...)
	sess, err := sap.Run(ctx, opts...)
	if err != nil {
		return nil, nil, err
	}
	return sess, holdout, nil
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Phase 1: two disjoint consortia unify independently. The hospitals
	// session declares the cluster layout — three nodes, one read replica
	// per group; ServeCluster reads it from the first session that has one.
	hospitals, diabHoldout, err := runGroup(ctx, "hospitals", "Diabetes", 11,
		sap.WithClusterNodes(nodeNames...), sap.WithClusterReplicas(1))
	if err != nil {
		return err
	}
	vintners, wineHoldout, err := runGroup(ctx, "vintners", "Wine", 22)
	if err != nil {
		return err
	}
	fmt.Printf("two contracts unified: hospitals (%d records), vintners (%d records)\n",
		hospitals.Unified().Len(), vintners.Unified().Len())

	// Phase 2: three miner nodes each run ServeCluster with the full group
	// list. Every node derives the same rendezvous table locally and hosts
	// only the shards assigned to it — as leader or as read replica.
	net := sap.NewMemNetwork()
	stop := make(map[string]func() error)
	for _, name := range nodeNames {
		conn, err := net.Endpoint(name)
		if err != nil {
			return err
		}
		nodeCtx, stopNode := context.WithCancel(ctx)
		done := make(chan error, 1)
		go func(name string) {
			done <- sap.ServeCluster(nodeCtx, conn, name,
				sap.Group{Session: hospitals, Model: sap.NewKNN(5)},
				sap.Group{Session: vintners, Model: sap.NewKNN(5)},
			)
		}(name)
		stop[name] = func() error {
			stopNode()
			err := <-done
			conn.Close()
			return err
		}
	}

	// Phase 3: a cluster client discovers the routing table from a seed node
	// and routes every call by group. Reads round-robin over leader and
	// replica; pushes go to the leader alone.
	cliConn, err := net.Endpoint("cli")
	if err != nil {
		return err
	}
	defer cliConn.Close()
	client, err := sap.NewClusterClient(cliConn, []string{nodeNames[0]}, hospitals, vintners)
	if err != nil {
		return err
	}
	defer client.Close()

	routes, err := client.Routes(ctx)
	if err != nil {
		return err
	}
	for _, r := range routes {
		fmt.Printf("group %q: leader %s, replicas %v\n", r.Group, r.Node, r.Replicas)
	}

	for _, q := range []struct {
		group   string
		holdout *sap.Dataset
	}{
		{"hospitals", diabHoldout},
		{"vintners", wineHoldout},
	} {
		labels, err := client.ClassifyBatch(ctx, q.group, q.holdout.X)
		if err != nil {
			return err
		}
		agree := 0
		for i, label := range labels {
			if label == q.holdout.Y[i] {
				agree++
			}
		}
		fmt.Printf("group %q: %d/%d holdout labels agree\n", q.group, agree, len(labels))
	}

	// Phase 4: a push lands on the hospitals leader; once enough records
	// accumulate the shard refits in the background and streams the swapped
	// model to its replica, so reads stay consistent on every assignee.
	if _, err := client.Push(ctx, "hospitals", diabHoldout.X[:4], diabHoldout.Y[:4]); err != nil {
		return err
	}
	fmt.Println("pushed 4 records to the hospitals leader")

	// Phase 5: failover. Stop the hospitals replica — classifies keep
	// succeeding against the leader with no client-visible errors.
	var hospitalsRoute sap.RouteEntry
	for _, r := range routes {
		if r.Group == "hospitals" {
			hospitalsRoute = r
		}
	}
	replica := hospitalsRoute.Replicas[0]
	if err := stop[replica](); err != nil {
		return err
	}
	fmt.Printf("stopped replica %s\n", replica)
	for i := 0; i < 4; i++ {
		if _, err := client.Classify(ctx, "hospitals", diabHoldout.X[i]); err != nil {
			return err
		}
	}
	fmt.Println("hospitals classifies degraded to leader-only serving: 4/4 answered")

	for _, name := range nodeNames {
		if name == replica {
			continue
		}
		if err := stop[name](); err != nil {
			return err
		}
	}
	return nil
}
