// Streaming: continuous ingestion into a live mining service. After SAP
// unifies the initial batch (session.Run) and the miner stands its model up
// (session.Serve), a provider keeps feeding freshly collected records
// through the streaming perturbation pipeline (session.StreamTo): each chunk
// is perturbed locally, adapted into the target space, and pushed into the
// service's training set, which refits on a cadence — the batch-only
// contract of the paper extended to data streams. A second provider watches
// the model improve on the newly covered region by querying before and
// after. The whole deployment is instrumented: one metrics registry
// (sap.WithMetrics) counts serving and streaming traffic, and its snapshot
// is printed at the end — the same JSON a production miner would expose via
// `sapnode -metrics-addr`.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"math/rand"
	"time"

	sap "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// trickleSource simulates a live collection pipe: it yields small irregular
// slices of a dataset with a tiny delay between yields, like a clinic
// submitting cases as they arrive.
type trickleSource struct {
	data *sap.Dataset
	rng  *rand.Rand
	next int
}

func (s *trickleSource) Next(ctx context.Context) (*sap.Dataset, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.next >= s.data.Len() {
		return nil, io.EOF
	}
	time.Sleep(2 * time.Millisecond)
	n := 5 + s.rng.Intn(20)
	hi := s.next + n
	if hi > s.data.Len() {
		hi = s.data.Len()
	}
	idx := make([]int, 0, hi-s.next)
	for i := s.next; i < hi; i++ {
		idx = append(idx, i)
	}
	s.next = hi
	return s.data.Subset(idx), nil
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Phase 1: four labs unify a first batch of Wine-like assay data.
	pool, err := sap.GenerateDataset("Wine", 1)
	if err != nil {
		return err
	}
	initial, incoming, err := sap.TrainTestSplit(pool, 0.5, 2)
	if err != nil {
		return err
	}
	labs, err := sap.Split(initial, 4, sap.PartitionUniform, 3)
	if err != nil {
		return err
	}
	reg := sap.NewMetrics()
	sess, err := sap.Run(ctx,
		sap.WithParties(labs...),
		sap.WithSeed(4),
		sap.WithOptimizer(4, 4),
		sap.WithServiceRefitEvery(32),
		sap.WithMetrics(reg),
	)
	if err != nil {
		return err
	}
	fmt.Printf("SAP unified %d records from %d labs; %d more will arrive as a stream\n",
		sess.Unified().Len(), len(labs), incoming.Len())

	// Phase 2: the mining service goes online on the initial unified batch.
	net := sap.NewMemNetwork()
	svcConn, err := net.Endpoint("mining-service")
	if err != nil {
		return err
	}
	defer svcConn.Close()
	serveCtx, stopServe := context.WithCancel(ctx)
	defer stopServe()
	serveDone := make(chan error, 1)
	go func() { serveDone <- sess.Serve(serveCtx, svcConn, sap.NewKNN(5)) }()

	// Phase 3: one lab streams its newly collected cases into the service.
	// Chunks are cut to 32 records; the drift watcher re-derives the
	// stream's perturbation if the arriving distribution shifts.
	provConn, err := net.Endpoint("lab-0")
	if err != nil {
		return err
	}
	defer provConn.Close()
	start := time.Now()
	pushed, err := sess.StreamTo(ctx, provConn, "mining-service",
		&trickleSource{data: incoming, rng: rand.New(rand.NewSource(9))},
		sap.WithChunkSize(32),
		sap.WithDriftThreshold(0.5),
		sap.WithBufferDepth(4),
	)
	if err != nil {
		return err
	}
	fmt.Printf("streamed %d records into the live service in %v\n", pushed, time.Since(start).Round(time.Millisecond))

	// Phase 4: another contracted lab queries the grown model. Its client
	// still transforms clear queries with G_t — streaming changed the
	// service's training set, not the query contract.
	cliConn, err := net.Endpoint("lab-1")
	if err != nil {
		return err
	}
	defer cliConn.Close()
	client, err := sess.NewClient(cliConn, sap.ClientConfig{Miner: "mining-service"})
	if err != nil {
		return err
	}
	defer client.Close()
	labels, err := client.ClassifyBatch(ctx, incoming.X)
	if err != nil {
		return err
	}
	agree := 0
	for i, label := range labels {
		if label == incoming.Y[i] {
			agree++
		}
	}
	fmt.Printf("grown model labels the streamed region: %d/%d agree with the held-out labels\n",
		agree, len(labels))

	stopServe()
	if err := <-serveDone; err != nil {
		return err
	}

	// The registry watched all of it: queries, stream ingest, refits and
	// the pipeline's own chunk/drift counters, each group under its own
	// namespace.
	snap := reg.Snapshot()
	fmt.Printf("metrics: %d classify frames, %d ingested records, %d refits, %d stream chunks, %d re-derivations\n",
		snap.Counters["service.default.requests"],
		snap.Counters["service.default.ingest.records"],
		snap.Counters["service.default.refit.count"],
		snap.Counters["stream.chunks"],
		snap.Counters["stream.rederivations"])
	return nil
}
