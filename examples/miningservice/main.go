// Miningservice: the paper's service-oriented deployment end to end. After
// SAP unifies the perturbed data, the mining service provider keeps a
// trained model online and answers classification requests from the
// contracted data providers — who transform each query into the target
// space before asking, so the service never sees clear data.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	sap "repro"
	"repro/internal/classify"
	"repro/internal/protocol"
	"repro/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Phase 1: five clinics pool an Ecoli-like screening dataset via SAP.
	pool, err := sap.GenerateDataset("Ecoli", 1)
	if err != nil {
		return err
	}
	train, holdout, err := sap.TrainTestSplit(pool, 0.25, 2)
	if err != nil {
		return err
	}
	clinics, err := sap.Split(train, 5, sap.PartitionUniform, 3)
	if err != nil {
		return err
	}
	res, err := sap.Run(ctx, sap.RunConfig{
		Parties:  clinics,
		Seed:     4,
		Optimize: sap.OptimizeOptions{Candidates: 4, LocalSteps: 4},
	})
	if err != nil {
		return err
	}
	fmt.Printf("SAP unified %d records from %d clinics (identifiability %.2f)\n",
		res.Unified.Len(), len(clinics), res.Identifiability)

	// Phase 2: the miner stands up a classification service on the
	// unified perturbed data.
	net := transport.NewMemNetwork()
	svcConn, err := net.Endpoint("mining-service")
	if err != nil {
		return err
	}
	defer svcConn.Close()
	cliConn, err := net.Endpoint("clinic-1")
	if err != nil {
		return err
	}
	defer cliConn.Close()

	svc, err := protocol.NewMiningService(svcConn,
		&protocol.MinerResult{Unified: res.Unified}, classify.NewKNN(5))
	if err != nil {
		return err
	}
	serveCtx, stopServe := context.WithCancel(ctx)
	defer stopServe()
	serveDone := make(chan error, 1)
	go func() { serveDone <- svc.Serve(serveCtx) }()

	// Phase 3: a clinic classifies held-out patients through the service.
	client, err := protocol.NewServiceClient(cliConn, "mining-service")
	if err != nil {
		return err
	}
	queries, err := res.TransformForInference(holdout)
	if err != nil {
		return err
	}
	correct := 0
	for i := range queries.X {
		label, err := client.Classify(ctx, queries.X[i])
		if err != nil {
			return err
		}
		if label == holdout.Y[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(holdout.Len())
	fmt.Printf("remote classification over %d held-out records: accuracy %.3f\n",
		holdout.Len(), acc)

	// Reference: the clear-data baseline for the same classifier.
	base := sap.NewKNN(5)
	if err := base.Fit(train); err != nil {
		return err
	}
	clearAcc, err := sap.Accuracy(base, holdout)
	if err != nil {
		return err
	}
	fmt.Printf("clear-data baseline: %.3f (deviation %+.1f pp)\n",
		clearAcc, (acc-clearAcc)*100)

	stopServe()
	if err := <-serveDone; err != nil {
		return err
	}
	fmt.Println("service stopped cleanly")
	return nil
}
