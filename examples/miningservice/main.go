// Miningservice: the paper's service-oriented deployment end to end, driven
// entirely through the sap.Session facade. After SAP unifies the perturbed
// data (session.Run), the mining service provider keeps a trained model
// online (session.Serve) and answers batched classification requests from
// the contracted data providers, whose session clients transform each query
// into the target space before asking — so the service never sees clear
// data.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	sap "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Phase 1: five clinics pool an Ecoli-like screening dataset via SAP.
	pool, err := sap.GenerateDataset("Ecoli", 1)
	if err != nil {
		return err
	}
	train, holdout, err := sap.TrainTestSplit(pool, 0.25, 2)
	if err != nil {
		return err
	}
	clinics, err := sap.Split(train, 5, sap.PartitionUniform, 3)
	if err != nil {
		return err
	}
	sess, err := sap.Run(ctx,
		sap.WithParties(clinics...),
		sap.WithSeed(4),
		sap.WithOptimizer(4, 4),
		sap.WithServiceWorkers(4),
	)
	if err != nil {
		return err
	}
	fmt.Printf("SAP unified %d records from %d clinics (identifiability %.2f)\n",
		sess.Unified().Len(), len(clinics), sess.Identifiability())

	// Phase 2: the miner stands up the classification service on the
	// unified perturbed data — the serving half of the session lifecycle.
	net := sap.NewMemNetwork()
	svcConn, err := net.Endpoint("mining-service")
	if err != nil {
		return err
	}
	defer svcConn.Close()
	serveCtx, stopServe := context.WithCancel(ctx)
	defer stopServe()
	serveDone := make(chan error, 1)
	go func() { serveDone <- sess.Serve(serveCtx, svcConn, sap.NewKNN(5)) }()

	// Phase 3: two clinics classify held-out patients concurrently through
	// one shared connection each. Queries are clear-space records; the
	// session client transforms them with G_t before they leave the clinic.
	cliConn, err := net.Endpoint("clinic-1")
	if err != nil {
		return err
	}
	defer cliConn.Close()
	client, err := sess.NewClient(cliConn, sap.ClientConfig{Miner: "mining-service"})
	if err != nil {
		return err
	}
	defer client.Close()

	// One bulk batch: N records, one round trip.
	half := holdout.Len() / 2
	labels, err := client.ClassifyBatch(ctx, holdout.X[:half])
	if err != nil {
		return err
	}
	correct := 0
	for i, label := range labels {
		if label == holdout.Y[i] {
			correct++
		}
	}

	// The rest as concurrent single queries from many goroutines — the
	// client's demultiplexer correlates the responses.
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	errCh := make(chan error, holdout.Len()-half)
	for i := half; i < holdout.Len(); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			label, err := client.Classify(ctx, holdout.X[i])
			if err != nil {
				errCh <- err
				return
			}
			if label == holdout.Y[i] {
				mu.Lock()
				correct++
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return err
	}
	acc := float64(correct) / float64(holdout.Len())
	fmt.Printf("remote classification over %d held-out records (1 batch + %d concurrent singles): accuracy %.3f\n",
		holdout.Len(), holdout.Len()-half, acc)

	// Reference: the clear-data baseline for the same classifier.
	base := sap.NewKNN(5)
	if err := base.Fit(train); err != nil {
		return err
	}
	clearAcc, err := sap.Accuracy(base, holdout)
	if err != nil {
		return err
	}
	fmt.Printf("clear-data baseline: %.3f (deviation %+.1f pp)\n",
		clearAcc, (acc-clearAcc)*100)

	stopServe()
	if err := <-serveDone; err != nil {
		return err
	}
	fmt.Println("service stopped cleanly")
	return nil
}
