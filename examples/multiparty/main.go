// Multiparty: the paper's headline scenario. Six hospitals hold shards of a
// diabetes screening dataset and want a mining service provider to train a
// shared classifier without any of them revealing raw records — or even
// which perturbed records are theirs. The Space Adaptation Protocol unifies
// their individually-optimized perturbations.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	sap "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Six hospitals with class-skewed local populations (each clinic sees
	// a different patient mix — the paper's "Class" partition).
	pool, err := sap.GenerateDataset("Diabetes", 1)
	if err != nil {
		return err
	}
	train, test, err := sap.TrainTestSplit(pool, 0.3, 2)
	if err != nil {
		return err
	}
	hospitals, err := sap.Split(train, 6, sap.PartitionClass, 3)
	if err != nil {
		return err
	}
	for i, h := range hospitals {
		counts := h.ClassCounts()
		fmt.Printf("hospital %d: %3d records, class mix %v\n", i+1, h.Len(), counts)
	}

	// Run SAP: each hospital optimizes its own perturbation; the protocol
	// unifies them at the miner without identifiable sources.
	sess, err := sap.Run(ctx, sap.WithParties(hospitals...), sap.WithSeed(4))
	if err != nil {
		return err
	}
	fmt.Printf("\nSAP complete: unified %d records; miner-side source identifiability %.3f\n",
		sess.Unified().Len(), sess.Identifiability())
	for i, rho := range sess.LocalGuarantees() {
		fmt.Printf("hospital %d local privacy guarantee ρ = %.4f\n", i+1, rho)
	}

	// The miner trains an SVM(RBF) on the unified perturbed data.
	model := sap.NewSVM(sap.SVMConfig{})
	if err := model.Fit(sess.Unified()); err != nil {
		return err
	}

	// A hospital scores new patients by transforming them into the target
	// space first (hospitals know G_t; the miner never sees clear data).
	testT, err := sess.TransformForInference(test)
	if err != nil {
		return err
	}
	acc, err := sap.Accuracy(model, testT)
	if err != nil {
		return err
	}

	// Baseline for reference: what a clear-data model would have scored.
	base := sap.NewSVM(sap.SVMConfig{})
	if err := base.Fit(train); err != nil {
		return err
	}
	clearAcc, err := sap.Accuracy(base, test)
	if err != nil {
		return err
	}
	fmt.Printf("\nSVM(RBF) accuracy: clear %.3f vs SAP-unified %.3f (deviation %+.1f pp)\n",
		clearAcc, acc, (acc-clearAcc)*100)

	// Risk accounting (Eq. 2): each hospital's overall breach risk under
	// SAP with k=6, demanding satisfaction 0.9 of its local optimum.
	risk, err := sap.RiskSAP(len(hospitals), 0.9, 0.8, 1.0)
	if err != nil {
		return err
	}
	fmt.Printf("Eq.2 risk at k=6, s=0.9, ρ/b=0.8: %.4f\n", risk)
	kMin, err := sap.MinParties(0.95, 0.89)
	if err != nil {
		return err
	}
	fmt.Printf("Figure-4 bound: demanding s0=0.95 at optimality 0.89 needs ≥ %d parties\n", kMin)
	return nil
}
