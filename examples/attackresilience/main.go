// Attackresilience: reproduces the intuition behind the paper's Figure 2.
// A random geometric perturbation is sometimes weak against reconstruction
// attacks; the randomized optimizer reliably lands in the strong tail.
// This example attacks both and prints the guarantee distributions.
package main

import (
	"fmt"
	"log"

	sap "repro"
)

const rounds = 25

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	data, err := sap.GenerateDataset("Wine", 1)
	if err != nil {
		return err
	}
	fmt.Printf("dataset: Wine stand-in, %d records × %d features\n\n", data.Len(), data.Dim())

	var randomRhos, optimizedRhos []float64
	for i := 0; i < rounds; i++ {
		// Random perturbation: a single Haar draw, no optimization.
		randomPert, _, err := sap.OptimizePerturbation(data, int64(1000+i),
			sap.WithOptimizer(1, -1)) // -1 disables refinement
		if err != nil {
			return err
		}
		randomRep, err := sap.EvaluatePrivacy(data, randomPert, int64(i), 8)
		if err != nil {
			return err
		}
		randomRhos = append(randomRhos, randomRep.MinGuarantee)

		// Optimized perturbation: restarts + refinement.
		optPert, _, err := sap.OptimizePerturbation(data, int64(2000+i),
			sap.WithOptimizer(8, 8))
		if err != nil {
			return err
		}
		optRep, err := sap.EvaluatePrivacy(data, optPert, int64(i), 8)
		if err != nil {
			return err
		}
		optimizedRhos = append(optimizedRhos, optRep.MinGuarantee)
	}

	rMean, rMin := summarize(randomRhos)
	oMean, oMin := summarize(optimizedRhos)
	fmt.Printf("random    perturbations: mean ρ = %.4f, worst ρ = %.4f\n", rMean, rMin)
	fmt.Printf("optimized perturbations: mean ρ = %.4f, worst ρ = %.4f\n", oMean, oMin)
	fmt.Printf("\noptimization lifts the mean guarantee by %+.1f%% and the worst case by %+.1f%%\n",
		(oMean/rMean-1)*100, (oMin/rMin-1)*100)
	fmt.Println("\n(the paper's Figure 2: the optimized distribution dominates the random one)")
	return nil
}

func summarize(xs []float64) (mean, min float64) {
	min = xs[0]
	for _, x := range xs {
		mean += x
		if x < min {
			min = x
		}
	}
	return mean / float64(len(xs)), min
}
