// Multitrust: one serving group split into multi-level trust views. A
// consortium unifies its data once, then serves three models of the same
// training set — an inner circle's unblurred fit, a partner tier trained
// under moderate noise, and a public tier under heavy noise
// (sap.WithTrustViews). Every lower tier's training noise is derived from
// the tier above plus an independent increment, so partners and the public
// pooling their views together still learn no more than the partner view
// alone — the diversity attack of multi-level trust serving gains nothing.
// Clients pick their tier with ClientConfig.View or are routed to the best
// tier their endpoint is authorized for; tiers they are not on refuse them.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	sap "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Phase 1: one consortium unifies its data — a single SAP run, a single
	// target space, a single unified training set.
	pool, err := sap.GenerateDataset("Iris", 7)
	if err != nil {
		return err
	}
	train, holdout, err := sap.TrainTestSplit(pool, 0.25, 8)
	if err != nil {
		return err
	}
	parties, err := sap.Split(train, 3, sap.PartitionUniform, 9)
	if err != nil {
		return err
	}
	sess, err := sap.Run(ctx,
		sap.WithParties(parties...),
		sap.WithSeed(10),
		sap.WithOptimizer(4, 4),
		sap.WithGroupID("consortium"),
		// Three trust tiers over the same data: the level-1 view serves the
		// unblurred fit to the inner circle, level 2 a moderately noised fit
		// to partners, level 3 a heavily noised fit to anyone else listed.
		sap.WithTrustViews(
			sap.ViewConfig{Level: 1, NoiseSigma: 0, Members: []string{"analyst"}},
			sap.ViewConfig{Level: 2, NoiseSigma: 0.25, Members: []string{"analyst", "partner"}},
			sap.ViewConfig{Level: 3, NoiseSigma: 0.6, Members: []string{"analyst", "partner", "public"}},
		),
	)
	if err != nil {
		return err
	}
	fmt.Printf("consortium unified: %d records, 3 trust views\n", sess.Unified().Len())

	// Phase 2: one miner serves all three views of the group.
	net := sap.NewMemNetwork()
	svcConn, err := net.Endpoint("mining-service")
	if err != nil {
		return err
	}
	defer svcConn.Close()
	serveCtx, stopServe := context.WithCancel(ctx)
	defer stopServe()
	serveDone := make(chan error, 1)
	go func() { serveDone <- sess.Serve(serveCtx, svcConn, sap.NewKNN(5)) }()

	// Phase 3: each tier queries. Unpinned clients are routed to the best
	// view their endpoint is on, so the analyst gets the unblurred model and
	// the public endpoint the heavily noised one — same wire, same group.
	score := func(endpoint string, view int) (float64, error) {
		conn, err := net.Endpoint(endpoint)
		if err != nil {
			return 0, err
		}
		defer conn.Close()
		client, err := sess.NewClient(conn, sap.ClientConfig{Miner: "mining-service", View: view})
		if err != nil {
			return 0, err
		}
		defer client.Close()
		labels, err := client.ClassifyBatch(ctx, holdout.X)
		if err != nil {
			return 0, err
		}
		agree := 0
		for i, label := range labels {
			if label == holdout.Y[i] {
				agree++
			}
		}
		return float64(agree) / float64(len(labels)), nil
	}

	inner, err := score("analyst", 0) // routed to view 1
	if err != nil {
		return err
	}
	public, err := score("public", 0) // routed to view 3
	if err != nil {
		return err
	}
	fmt.Printf("holdout accuracy: inner circle %.3f, public tier %.3f (noise costs accuracy, by design)\n",
		inner, public)

	// Phase 4: authorization. The public endpoint asking for the inner
	// view is refused; a view nobody serves is a typed unknown-view error.
	conn, err := net.Endpoint("public")
	if err != nil {
		return err
	}
	defer conn.Close()
	client, err := sess.NewClient(conn, sap.ClientConfig{Miner: "mining-service", View: 1})
	if err != nil {
		return err
	}
	if _, err := client.Classify(ctx, holdout.X[0]); errors.Is(err, sap.ErrNotMember) {
		fmt.Println("public query for the inner view refused: not a member")
	} else {
		client.Close()
		return fmt.Errorf("inner-view query was not refused (err = %v)", err)
	}
	client.Close()
	probe, err := sess.NewClient(conn, sap.ClientConfig{Miner: "mining-service", View: 9})
	if err != nil {
		return err
	}
	defer probe.Close()
	if _, err := probe.Classify(ctx, holdout.X[0]); errors.Is(err, sap.ErrUnknownView) {
		fmt.Println("query for an unserved view refused: unknown view")
	} else {
		return fmt.Errorf("unknown-view query was not refused (err = %v)", err)
	}

	stopServe()
	return <-serveDone
}
