package sap

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/metrics"
	"repro/internal/perturb"
	"repro/internal/privacy"
	"repro/internal/protocol"
	"repro/internal/transport"
)

// Metrics types, re-exported so deployments can instrument the serving and
// streaming layers entirely through the facade. Plug a registry in with
// WithMetrics; read it back with Metrics.Snapshot (or serve it over HTTP —
// *Metrics is an http.Handler, and cmd/sapnode mounts it under
// -metrics-addr).
type (
	// Metrics is the default in-memory metrics registry: atomic counters,
	// gauges and timing histograms, exportable with Snapshot.
	Metrics = metrics.Registry
	// MetricsSink is the pluggable instrumentation interface a session
	// updates; *Metrics implements it, and so may any custom backend.
	MetricsSink = metrics.Metrics
	// MetricsSnapshot is a point-in-time export of every instrument.
	MetricsSnapshot = metrics.Snapshot
)

// NewMetrics returns an empty in-memory metrics registry.
func NewMetrics() *Metrics { return metrics.NewRegistry() }

// Transport types, re-exported so a deployment can be wired entirely against
// the facade: an in-memory hub for single-process serving and a TCP network
// with AES-GCM-sealed frames for real clusters.
type (
	// Conn is one endpoint's connection to the network.
	Conn = transport.Conn
	// Network hands out named endpoints.
	Network = transport.Network
	// TCPNode is one endpoint of a TCP network.
	TCPNode = transport.TCPNode
)

// Serving errors, re-exported from the protocol layer.
var (
	// ErrServiceClosed means the mining service or the link to it is gone.
	ErrServiceClosed = protocol.ErrServiceClosed
	// ErrBadQuery flags an empty batch or a dimension mismatch.
	ErrBadQuery = protocol.ErrBadQuery
	// ErrBatchTooLarge flags a batch exceeding the service's cap.
	ErrBatchTooLarge = protocol.ErrBatchTooLarge
	// ErrUnknownGroup flags a query for a serving group the miner does not
	// host.
	ErrUnknownGroup = protocol.ErrUnknownGroup
	// ErrNotMember flags a peer addressing a serving group whose member
	// list does not include it.
	ErrNotMember = protocol.ErrNotMember
	// ErrBusy flags a request rejected because the addressed group's
	// bounded ingest or prediction queue was full. The request had no
	// effect, and clients retry it automatically with capped exponential
	// backoff before surfacing this error — seeing it means the group
	// stayed saturated through the whole retry budget.
	ErrBusy = protocol.ErrBusy
	// ErrQuota flags an ingest chunk rejected by the group's records-per-
	// second quota (WithQuota, Admin.UpdateGroup). Unlike ErrBusy it is not
	// retried automatically — the quota is policy, not transient load — so
	// it surfaces within one round trip.
	ErrQuota = protocol.ErrQuota
	// ErrAdminDenied flags an admin call that failed authentication: wrong
	// token, or the service has no admin token configured at all.
	ErrAdminDenied = protocol.ErrAdminDenied
	// ErrGroupExists flags an Admin.RegisterGroup naming a group the service
	// already hosts.
	ErrGroupExists = protocol.ErrGroupExists
	// ErrUnknownView flags a request addressing a trust view the group does
	// not serve (ClientConfig.View naming a level outside the group's
	// WithTrustViews list).
	ErrUnknownView = protocol.ErrUnknownView
)

// DefaultGroupID is the serving group a session uses when WithGroupID is
// not given, and the group legacy (pre-v4) wire frames route to.
const DefaultGroupID = protocol.DefaultGroup

// NewMemNetwork returns an in-process network for single-process serving,
// tests and benchmarks.
func NewMemNetwork() Network { return transport.NewMemNetwork() }

// NewTCPNode starts a TCP endpoint named name listening on addr (use
// "127.0.0.1:0" to pick a free port). A non-empty key seals every frame with
// AES-GCM. The caller must Close it and register peers with AddPeer.
func NewTCPNode(name, addr, key string) (*TCPNode, error) {
	var codec transport.Codec
	if key != "" {
		aes, err := transport.NewAESCodec(key)
		if err != nil {
			return nil, err
		}
		codec = aes
	}
	return transport.NewTCPNode(name, addr, codec)
}

// config is the resolved option set of a Session.
type config struct {
	parties      []*Dataset
	seed         int64
	noiseSigma   float64
	candidates   int
	localSteps   int
	scoreSamples int
	fullSuite    bool
	workers      int
	maxBatch     int
	refitEvery   int
	group        string
	metrics      MetricsSink
	// clusterNodes/clusterReplicas feed ServeCluster's derived routing table
	// (WithClusterNodes / WithClusterReplicas).
	clusterNodes    []string
	clusterReplicas int
	// downFor tunes NewClusterClient's down-mark window; failoverGrace and
	// antiEntropyEvery tune the cluster nodes' durability gossip (WithDownFor
	// / WithFailoverGrace / WithAntiEntropyEvery).
	downFor          time.Duration
	failoverGrace    time.Duration
	antiEntropyEvery time.Duration
	// compress/float32Payloads tune the session's wire format
	// (WithCompression / WithFloat32Payloads). Both are capability-gated:
	// a peer that never advertised them keeps receiving classic frames.
	compress        bool
	float32Payloads bool
	// adminToken arms the served process's admin control plane
	// (WithAdminToken); quotaRate/quotaBurst rate-limit this session's
	// group's ingest (WithQuota).
	adminToken string
	quotaRate  float64
	quotaBurst int
	// views splits this session's serving group into an ordered multi-level
	// trust view list (WithTrustViews); empty serves the classic single
	// view.
	views []ViewConfig
}

// Option configures New, Run and OptimizePerturbation. Options replace the
// former RunConfig/OptimizeOptions structs.
type Option func(*config) error

// WithParties sets the providers' local datasets (k ≥ 3). The last party
// doubles as the coordinator.
func WithParties(parties ...*Dataset) Option {
	return func(c *config) error {
		for i, d := range parties {
			if d == nil || d.Len() == 0 {
				return fmt.Errorf("%w: party %d has no data", ErrBadInput, i)
			}
		}
		c.parties = parties
		return nil
	}
}

// WithSeed sets the seed driving all randomness (default 0).
func WithSeed(seed int64) Option {
	return func(c *config) error { c.seed = seed; return nil }
}

// WithNoiseSigma sets the common noise component σ (default 0.05).
func WithNoiseSigma(sigma float64) Option {
	return func(c *config) error {
		if sigma < 0 {
			return fmt.Errorf("%w: negative noise sigma %v", ErrBadInput, sigma)
		}
		c.noiseSigma = sigma
		return nil
	}
}

// WithOptimizer tunes the per-party perturbation search: candidates random
// restarts refined by localSteps annealed Givens steps (defaults: 8 and 12).
func WithOptimizer(candidates, localSteps int) Option {
	return func(c *config) error {
		c.candidates = candidates
		c.localSteps = localSteps
		return nil
	}
}

// WithScoreSamples averages each candidate's score over n noise draws
// (default 1); higher values reduce selection bias toward lucky noise at
// proportional cost.
func WithScoreSamples(n int) Option {
	return func(c *config) error { c.scoreSamples = n; return nil }
}

// WithFullAttackSuite also runs the (slower) ICA attack during optimization;
// otherwise ICA is reserved for final evaluation.
func WithFullAttackSuite() Option {
	return func(c *config) error { c.fullSuite = true; return nil }
}

// WithServiceWorkers sets the serving worker-pool size used by
// Session.Serve (default: GOMAXPROCS).
func WithServiceWorkers(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("%w: negative worker count %d", ErrBadInput, n)
		}
		c.workers = n
		return nil
	}
}

// WithServiceMaxBatch caps the records the served model accepts per request
// (default 4096).
func WithServiceMaxBatch(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("%w: negative batch cap %d", ErrBadInput, n)
		}
		c.maxBatch = n
		return nil
	}
}

// WithServiceRefitEvery sets how many stream-ingested records the served
// model accumulates before retraining on the grown training set (default
// 256; -1 disables automatic refits).
func WithServiceRefitEvery(n int) Option {
	return func(c *config) error {
		if n < -1 {
			return fmt.Errorf("%w: refit cadence %d (0 keeps the default, -1 disables)", ErrBadInput, n)
		}
		if n == 0 {
			return nil
		}
		c.refitEvery = n
		return nil
	}
}

// WithMetrics plugs an instrumentation sink into the session's serving and
// streaming layers: Serve/ServeGroups count requests, batch sizes, ingest,
// queue depth, refits and rejections per group (under "service.<group>."),
// and Session.Stream counts chunks, records, re-derivations and buffer
// occupancy (under "stream."). Use NewMetrics for the default in-memory
// registry and read it with Snapshot; see ARCHITECTURE.md for the full
// instrument catalogue.
func WithMetrics(m MetricsSink) Option {
	return func(c *config) error {
		if m == nil {
			return fmt.Errorf("%w: nil metrics sink", ErrBadInput)
		}
		c.metrics = m
		return nil
	}
}

// WithGroupID names the serving group (contract) this session serves under
// and its clients query. Sessions sharing one miner process must carry
// distinct group IDs (see ServeGroups); the default is DefaultGroupID, so
// single-group deployments never need this option.
func WithGroupID(id string) Option {
	return func(c *config) error {
		if id == "" {
			return fmt.Errorf("%w: empty group id", ErrBadInput)
		}
		c.group = id
		return nil
	}
}

// WithCompression enables DEFLATE compression of this session's service
// frames (classify batches, stream ingest, model replication). Compression
// is negotiated per peer: both sides must carry the option, and the first
// exchange with a peer that does not advertise it falls back to classic
// uncompressed frames, so mixed-version deployments keep working. It rides
// the serving session for the miner side and the querying session for the
// client side.
func WithCompression() Option {
	return func(c *config) error {
		c.compress = true
		return nil
	}
}

// WithFloat32Payloads halves this session's record payloads on the wire
// (stream chunks, classify batches, replicated model blobs) by packing
// features as float32 instead of float64. Precision narrows to ~7
// significant digits — well inside the paper's perturbation noise floor —
// and the mode is negotiated per peer exactly like WithCompression: peers
// that never advertised it keep receiving float64 frames. On the serving
// side it is per group, riding each group's own session.
func WithFloat32Payloads() Option {
	return func(c *config) error {
		c.float32Payloads = true
		return nil
	}
}

// WithAdminToken arms the admin control plane of the mining service this
// session stands up (Serve, ServeGroups, ServeCluster): Admin clients
// presenting this token may register, evict, update and list serving groups
// at runtime. Without the option the admin interface is disabled — every
// admin frame is refused with ErrAdminDenied. Like WithMetrics it is a
// property of the miner process: the first session carrying it provides the
// token.
func WithAdminToken(token string) Option {
	return func(c *config) error {
		if token == "" {
			return fmt.Errorf("%w: empty admin token", ErrBadInput)
		}
		c.adminToken = token
		return nil
	}
}

// WithQuota rate-limits this session's group's stream ingest: pushed chunks
// beyond recordsPerSec (with bursts up to burst records; 0 sizes the burst
// at one second's refill) are rejected with a typed ErrQuota within one
// round trip, before they occupy any queue space. Per group — it rides this
// session's spec like WithServiceRefitEvery — and updatable at runtime
// through Admin.UpdateGroup.
func WithQuota(recordsPerSec float64, burst int) Option {
	return func(c *config) error {
		if recordsPerSec <= 0 {
			return fmt.Errorf("%w: non-positive quota rate %v", ErrBadInput, recordsPerSec)
		}
		if burst < 0 {
			return fmt.Errorf("%w: negative quota burst %d", ErrBadInput, burst)
		}
		c.quotaRate = recordsPerSec
		c.quotaBurst = burst
		return nil
	}
}

// ViewConfig describes one trust view of a multi-level serving group
// (WithTrustViews): the trust level it serves, the absolute additive noise
// σ its model is trained under, and optionally the transport endpoints
// allowed to query it.
type ViewConfig struct {
	// Level is the view's trust rank: positive, unique within the group,
	// listed in strictly increasing order. Smaller levels are more trusted
	// and see models trained under less noise.
	Level int
	// NoiseSigma is the absolute per-element σ of the view's training
	// noise. Sigmas must be non-decreasing across the list — lower trust
	// never gets less noise. Level 1 with σ 0 serves the unblurred fit.
	NoiseSigma float64
	// Members optionally restricts the view to the named transport
	// endpoints, on top of the group's own member list. Empty admits every
	// peer the group admits.
	Members []string
}

// WithTrustViews splits the session's serving group into ordered
// multi-level trust views: one served model per trust level, every level
// fitted on the same unified training set under its own slice of a jointly
// drawn correlated noise ladder. Because each lower-trust view's noise is
// derived from the next-higher view's plus an independent increment — never
// drawn independently — any coalition of views that pools its models'
// training data learns no more than the coalition's most-trusted member
// already knew: the diversity attack of the multi-level trust literature
// gains nothing (see internal/privacy's coalition evaluator). Clients pick
// their view with ClientConfig.View, or are routed to their
// highest-authorized view by default. Views ride the session's group spec:
// they apply to Serve, ServeGroups and ServeCluster alike.
func WithTrustViews(views ...ViewConfig) Option {
	return func(c *config) error {
		if len(views) == 0 {
			return fmt.Errorf("%w: no trust views", ErrBadInput)
		}
		for i, v := range views {
			if v.Level <= 0 {
				return fmt.Errorf("%w: trust view %d has non-positive level %d", ErrBadInput, i, v.Level)
			}
			if i > 0 && v.Level <= views[i-1].Level {
				return fmt.Errorf("%w: trust view levels must be strictly increasing (%d after %d)",
					ErrBadInput, v.Level, views[i-1].Level)
			}
			if v.NoiseSigma < 0 {
				return fmt.Errorf("%w: trust view level %d has negative noise sigma %v",
					ErrBadInput, v.Level, v.NoiseSigma)
			}
			if i > 0 && v.NoiseSigma < views[i-1].NoiseSigma {
				return fmt.Errorf("%w: trust view noise must be non-decreasing (%v after %v at level %d)",
					ErrBadInput, v.NoiseSigma, views[i-1].NoiseSigma, v.Level)
			}
		}
		c.views = append([]ViewConfig(nil), views...)
		return nil
	}
}

// Session is the unit of the facade's lifecycle: configure with New, execute
// the Space Adaptation Protocol once with Run, then serve the unified model
// for the contract's lifetime with Serve while contracted parties query it
// through NewClient. A Session is safe for concurrent use after Run.
type Session struct {
	cfg config

	mu              sync.Mutex
	ran             bool
	unified         *Dataset
	target          *Perturbation
	localGuarantees []float64
	identifiability float64
	streamSeq       int64
}

// New validates the options and returns an unstarted session.
func New(opts ...Option) (*Session, error) {
	cfg := config{noiseSigma: 0.05}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	if len(cfg.parties) == 0 {
		return nil, fmt.Errorf("%w: no parties (use WithParties)", ErrBadInput)
	}
	return &Session{cfg: cfg}, nil
}

// Run executes the full SAP pipeline: optimize each party's perturbation,
// run the protocol over an in-memory network, and store the unified result.
// It may be called once per session.
func (s *Session) Run(ctx context.Context) error {
	s.mu.Lock()
	if s.ran {
		s.mu.Unlock()
		return fmt.Errorf("%w: session already ran", ErrBadInput)
	}
	s.ran = true
	s.mu.Unlock()

	optCfg := privacyOptimizerConfig(&s.cfg)
	res, err := core.Run(ctx, core.PipelineConfig{
		Parties:    s.cfg.parties,
		Seed:       s.cfg.seed,
		NoiseSigma: s.cfg.noiseSigma,
		Optimizer:  optCfg,
	})
	if err != nil {
		// A failed run (e.g. ctx cancellation) does not burn the session;
		// it may be retried.
		s.mu.Lock()
		s.ran = false
		s.mu.Unlock()
		if errors.Is(err, core.ErrBadPipeline) {
			return fmt.Errorf("%w: %v", ErrBadInput, err)
		}
		return err
	}
	guarantees := make([]float64, len(res.Parties))
	for i, p := range res.Parties {
		guarantees[i] = p.LocalGuarantee
	}
	s.mu.Lock()
	s.unified = res.Unified
	s.target = res.Target
	s.localGuarantees = guarantees
	s.identifiability = res.Identifiability
	s.mu.Unlock()
	return nil
}

// Run configures a session and executes it in one call. It is the canonical
// entry point: partition, run, serve.
func Run(ctx context.Context, opts ...Option) (*Session, error) {
	s, err := New(opts...)
	if err != nil {
		return nil, err
	}
	if err := s.Run(ctx); err != nil {
		return nil, err
	}
	return s, nil
}

// requireRun guards accessors that need a completed run.
func (s *Session) requireRun() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.unified == nil {
		return fmt.Errorf("%w: session has not run", ErrBadInput)
	}
	return nil
}

// Unified returns the miner's merged training set in the target space.
func (s *Session) Unified() *Dataset {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.unified
}

// Target returns the unified target perturbation G_t. Classification
// requests must be transformed with it (noiselessly) before reaching the
// miner's model; Session clients do this automatically.
func (s *Session) Target() *Perturbation {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.target
}

// LocalGuarantees returns each party's locally optimized ρ_i, in party
// order.
func (s *Session) LocalGuarantees() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.localGuarantees
}

// Identifiability returns the miner-side source identifiability 1/(k−1).
func (s *Session) Identifiability() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.identifiability
}

// TransformForInference maps a clear dataset into the target space so it can
// be scored by a model trained on Unified.
func (s *Session) TransformForInference(d *Dataset) (*Dataset, error) {
	if err := s.requireRun(); err != nil {
		return nil, err
	}
	if d == nil || d.Len() == 0 {
		return nil, fmt.Errorf("%w: empty dataset", ErrBadInput)
	}
	y, err := s.Target().ApplyNoiseless(d.FeaturesT())
	if err != nil {
		return nil, err
	}
	out := d.Clone()
	if err := out.ReplaceFeaturesT(y); err != nil {
		return nil, err
	}
	return out, nil
}

// Serve is the miner side of the serving lifecycle: it trains model on the
// unified dataset and answers batched classification queries on conn until
// ctx is cancelled or the transport closes. Predictions run on the session's
// configured worker pool (WithServiceWorkers), so many clients — and many
// goroutines per client — are served concurrently. The service also accepts
// streamed training chunks (Session.StreamTo, Client.Push), folding them
// into its training set and refitting the model every WithServiceRefitEvery
// records. Refits happen in the background: a fresh model instance is
// fitted off to the side and atomically swapped in, so queries and ingest
// keep flowing — on the previous fit — while the retrain runs. That
// requires fresh instances: with refits enabled, model must implement
// classify.Cloner (facade-constructed classifiers do) or be served through
// ServeGroups with a Group.NewModel factory.
func (s *Session) Serve(ctx context.Context, conn Conn, model Classifier) error {
	return s.ServeGroups(ctx, conn, model)
}

// GroupID returns the serving group this session serves under and its
// clients query (DefaultGroupID unless WithGroupID was given).
func (s *Session) GroupID() string {
	if s.cfg.group == "" {
		return DefaultGroupID
	}
	return s.cfg.group
}

// ClientConfig addresses a session client at a mining service. The zero
// value of every optional field selects the session's own defaults, so most
// callers set only Miner.
type ClientConfig struct {
	// Miner is the mining service's transport endpoint name. Required.
	Miner string
	// Group overrides the serving group the client addresses (default: the
	// session's own GroupID). Queries are still transformed with this
	// session's G_t, so a foreign group only makes sense when it shares that
	// target space — the main use is proving a foreign group rejects you
	// (ErrNotMember / ErrUnknownGroup).
	Group string
	// View pins the trust view (WithTrustViews level) the client's queries
	// and pushes address. Zero — the default — routes each request to the
	// client's highest-authorized view, which on single-view groups is the
	// classic behavior. A level the group does not serve answers
	// ErrUnknownView; a served level whose member list excludes this client
	// answers ErrNotMember.
	View int
}

// NewClient is the provider side of the serving lifecycle: a handle for
// querying the configured mining service over conn. The client owns the
// connection's receive side (a background demultiplexer correlates
// responses), so any number of goroutines may classify concurrently through
// one client. Queries are given in clear space; the client transforms them
// into the target space with the session's G_t before they leave the
// provider, so the service never sees clear data. Close the client to
// release it.
func (s *Session) NewClient(conn Conn, cfg ClientConfig) (*Client, error) {
	if err := s.requireRun(); err != nil {
		return nil, err
	}
	if cfg.Miner == "" {
		return nil, fmt.Errorf("%w: no miner endpoint", ErrBadInput)
	}
	group := cfg.Group
	if group == "" {
		group = s.GroupID()
	}
	inner, err := protocol.NewGroupServiceClient(conn, cfg.Miner, group)
	if err != nil {
		return nil, err
	}
	inner.SetWireOptions(protocol.WireOptions{
		Compress: s.cfg.compress, Float32: s.cfg.float32Payloads})
	if cfg.View < 0 {
		return nil, fmt.Errorf("%w: negative trust view %d", ErrBadInput, cfg.View)
	}
	inner.SetView(cfg.View)
	return &Client{inner: inner, target: s.Target()}, nil
}

// Client queries a mining service stood up by Session.Serve. Safe for
// concurrent use.
type Client struct {
	inner  *protocol.ServiceClient
	target *Perturbation
}

// Classify predicts the label of one clear-space record in one round trip.
func (c *Client) Classify(ctx context.Context, features []float64) (int, error) {
	labels, err := c.ClassifyBatch(ctx, [][]float64{features})
	if err != nil {
		return 0, err
	}
	return labels[0], nil
}

// ClassifyBatch predicts labels for a whole batch of clear-space records in
// a single round trip.
func (c *Client) ClassifyBatch(ctx context.Context, batch [][]float64) ([]int, error) {
	transformed, err := transformRecords(c.target, batch)
	if err != nil {
		return nil, err
	}
	return c.inner.ClassifyBatch(ctx, transformed)
}

// Close releases the client's demultiplexer and fails in-flight requests.
func (c *Client) Close() error { return c.inner.Close() }

// transformRecords applies G_t noiselessly to a batch of records.
func transformRecords(target *perturb.Perturbation, batch [][]float64) ([][]float64, error) {
	if len(batch) == 0 {
		return nil, fmt.Errorf("%w: empty batch", ErrBadQuery)
	}
	dim := target.Dim()
	for i, rec := range batch {
		if len(rec) != dim {
			return nil, fmt.Errorf("%w: record %d has %d features, want %d", ErrBadQuery, i, len(rec), dim)
		}
	}
	y, err := target.ApplyNoiseless(matrix.NewFromRows(batch).T())
	if err != nil {
		return nil, err
	}
	return y.Columns(), nil
}

// privacyOptimizerConfig maps the facade option set to the internal
// optimizer configuration.
func privacyOptimizerConfig(c *config) privacy.OptimizerConfig {
	cfg := privacy.OptimizerConfig{
		Candidates:   c.candidates,
		LocalSteps:   c.localSteps,
		NoiseSigma:   c.noiseSigma,
		ScoreSamples: c.scoreSamples,
	}
	if c.fullSuite {
		cfg.Evaluator = privacy.DefaultEvaluator()
	}
	return cfg
}
