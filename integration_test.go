package sap_test

// End-to-end integration tests exercising the public facade the way the
// examples and a downstream user would, across datasets, partition schemes
// and classifiers.

import (
	"math"
	"testing"

	sap "repro"
)

func TestIntegrationSVMOnClassSkewedWine(t *testing.T) {
	pool, err := sap.GenerateDataset("Wine", 21)
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := sap.TrainTestSplit(pool, 0.3, 22)
	if err != nil {
		t.Fatal(err)
	}
	parties, err := sap.Split(train, 3, sap.PartitionClass, 23)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sap.Run(runCtx(t),
		sap.WithParties(parties...),
		sap.WithSeed(24),
		sap.WithOptimizer(3, 2),
	)
	if err != nil {
		t.Fatal(err)
	}

	model := sap.NewSVM(sap.SVMConfig{})
	if err := model.Fit(res.Unified()); err != nil {
		t.Fatal(err)
	}
	testT, err := res.TransformForInference(test)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := sap.Accuracy(model, testT)
	if err != nil {
		t.Fatal(err)
	}
	base := sap.NewSVM(sap.SVMConfig{})
	if err := base.Fit(train); err != nil {
		t.Fatal(err)
	}
	clearAcc, err := sap.Accuracy(base, test)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(clearAcc-acc) > 0.15 {
		t.Errorf("SVM deviation too large on class-skewed Wine: clear %v vs perturbed %v", clearAcc, acc)
	}
}

func TestIntegrationDistancePreservationThroughTargetSpace(t *testing.T) {
	// The whole scheme rests on G_t preserving geometry: pairwise
	// distances of transformed queries must match the originals exactly.
	pool, err := sap.GenerateDataset("Iris", 25)
	if err != nil {
		t.Fatal(err)
	}
	parties, err := sap.Split(pool, 3, sap.PartitionUniform, 26)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sap.Run(runCtx(t),
		sap.WithParties(parties...),
		sap.WithSeed(27),
		sap.WithOptimizer(2, 1),
	)
	if err != nil {
		t.Fatal(err)
	}
	queries := parties[0]
	transformed, err := res.TransformForInference(queries)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			dOrig := rowDist(queries.X[i], queries.X[j])
			dTrans := rowDist(transformed.X[i], transformed.X[j])
			if math.Abs(dOrig-dTrans) > 1e-9 {
				t.Fatalf("distance (%d,%d) changed: %v vs %v", i, j, dOrig, dTrans)
			}
		}
	}
}

func TestIntegrationOptimizedBeatsRandomUnderFullSuite(t *testing.T) {
	// The paper's Figure-2 claim is about the guarantee the optimization
	// procedure reports: optimized rounds dominate single random draws.
	d, err := sap.GenerateDataset("Heart", 28)
	if err != nil {
		t.Fatal(err)
	}
	var randomSum, optSum float64
	const trials = 4
	for i := int64(0); i < trials; i++ {
		_, randomRho, err := sap.OptimizePerturbation(d, 100+i,
			sap.WithOptimizer(1, -1), sap.WithFullAttackSuite())
		if err != nil {
			t.Fatal(err)
		}
		randomSum += randomRho

		_, optRho, err := sap.OptimizePerturbation(d, 300+i,
			sap.WithOptimizer(6, 6), sap.WithFullAttackSuite())
		if err != nil {
			t.Fatal(err)
		}
		optSum += optRho
	}
	if optSum <= randomSum {
		t.Errorf("optimized guarantees (sum %v) did not beat random (sum %v)", optSum, randomSum)
	}
}

func TestIntegrationOptimizationDoesNotDegradeOutOfSample(t *testing.T) {
	// Out-of-sample (fresh noise draws, full attack suite) the rotation
	// choice has little headroom — the known-sample Procrustes attacker
	// strips rotation entirely, a weakness later work formalized. We
	// assert non-degradation: the optimized perturbation's re-evaluated
	// guarantee stays within 10% of a random perturbation's. See
	// EXPERIMENTS.md "Out-of-sample note".
	d, err := sap.GenerateDataset("Heart", 28)
	if err != nil {
		t.Fatal(err)
	}
	score := func(p *sap.Perturbation) float64 {
		var sum float64
		const evals = 4
		for s := int64(0); s < evals; s++ {
			rep, err := sap.EvaluatePrivacy(d, p, 200+s, 10)
			if err != nil {
				t.Fatal(err)
			}
			sum += rep.MinGuarantee
		}
		return sum / evals
	}
	var randomSum, optSum float64
	const trials = 3
	for i := int64(0); i < trials; i++ {
		randomPert, _, err := sap.OptimizePerturbation(d, 100+i, sap.WithOptimizer(1, -1))
		if err != nil {
			t.Fatal(err)
		}
		randomSum += score(randomPert)
		optPert, _, err := sap.OptimizePerturbation(d, 300+i,
			sap.WithOptimizer(6, 6), sap.WithScoreSamples(2))
		if err != nil {
			t.Fatal(err)
		}
		optSum += score(optPert)
	}
	if optSum < randomSum*0.9 {
		t.Errorf("optimization degraded out-of-sample guarantees: %v vs %v", optSum, randomSum)
	}
}

func TestIntegrationAllDatasetsGenerateAndSplit(t *testing.T) {
	// Every built-in profile must survive the full preprocessing path the
	// experiments use: generate → normalize → split → partition both ways.
	for _, name := range sap.DatasetNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			pool, err := sap.GenerateDataset(name, 29)
			if err != nil {
				t.Fatal(err)
			}
			train, test, err := sap.TrainTestSplit(pool, 0.3, 30)
			if err != nil {
				t.Fatal(err)
			}
			if train.Len()+test.Len() != pool.Len() {
				t.Fatalf("split lost records: %d + %d != %d", train.Len(), test.Len(), pool.Len())
			}
			for _, scheme := range []sap.PartitionScheme{sap.PartitionUniform, sap.PartitionClass} {
				parts, err := sap.Split(train, 5, scheme, 31)
				if err != nil {
					t.Fatalf("%v: %v", scheme, err)
				}
				total := 0
				for _, p := range parts {
					total += p.Len()
				}
				if total != train.Len() {
					t.Fatalf("%v: partitions cover %d of %d rows", scheme, total, train.Len())
				}
			}
		})
	}
}

func TestIntegrationIdentifiabilityScalesWithK(t *testing.T) {
	pool, err := sap.GenerateDataset("Credit_g", 32)
	if err != nil {
		t.Fatal(err)
	}
	prev := 1.0
	for _, k := range []int{3, 5, 8} {
		parties, err := sap.Split(pool, k, sap.PartitionUniform, 33)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sap.Run(runCtx(t),
			sap.WithParties(parties...),
			sap.WithSeed(34),
			sap.WithOptimizer(2, 1),
		)
		if err != nil {
			t.Fatal(err)
		}
		want := 1 / float64(k-1)
		if math.Abs(res.Identifiability()-want) > 1e-12 {
			t.Errorf("k=%d: identifiability %v, want %v", k, res.Identifiability(), want)
		}
		if res.Identifiability() >= prev {
			t.Errorf("identifiability did not shrink at k=%d", k)
		}
		prev = res.Identifiability()
	}
}

func rowDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
