package sap_test

// Benchmark harness: one benchmark per paper artifact (Figures 2-6) plus
// the repository's ablations and component micro-benchmarks. The figure
// benchmarks run reduced-size configurations so `go test -bench=.` finishes
// on a laptop; cmd/sapexp exposes the paper-scale knobs (e.g. -rounds 100).
// Each figure benchmark logs the same series the paper plots and reports
// its headline quantity as a custom metric.

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	sap "repro"
	"repro/internal/classify"
	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/experiment"
	"repro/internal/matrix"
	"repro/internal/perturb"
	"repro/internal/privacy"
	"repro/internal/protocol"
	"repro/internal/stream"
	"repro/internal/transport"
)

// benchCfg keeps figure benchmarks laptop-sized.
func benchCfg() experiment.Config {
	return experiment.Config{
		Seed:          1,
		Rounds:        8,
		Parties:       4,
		Repeats:       1,
		OptCandidates: 3,
		OptLocalSteps: 2,
	}
}

func BenchmarkFigure2OptimizedVsRandom(b *testing.B) {
	var lift float64
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFig2(benchCfg(), "Diabetes")
		if err != nil {
			b.Fatal(err)
		}
		lift = res.Optimized.Mean - res.Random.Mean
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
	b.ReportMetric(lift, "mean-guarantee-lift")
}

func BenchmarkFigure3OptimalityRates(b *testing.B) {
	var meanRate float64
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFig3(benchCfg(), []int{5, 7, 10})
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, p := range res.Points {
			sum += p.Rate
		}
		meanRate = sum / float64(len(res.Points))
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
	b.ReportMetric(meanRate, "mean-optimality-rate")
}

func BenchmarkFigure4PartyBounds(b *testing.B) {
	var maxParties int
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFig4(benchCfg(), nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		maxParties = 0
		for _, p := range res.Points {
			if p.MinParties > maxParties {
				maxParties = p.MinParties
			}
		}
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
	b.ReportMetric(float64(maxParties), "max-min-parties")
}

// benchAccuracySubset keeps the per-iteration cost of the Figure 5/6
// benches bounded; sapexp runs all twelve datasets.
var benchAccuracySubset = []string{"Diabetes", "Iris", "Votes"}

func BenchmarkFigure5KNNDeviation(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFig5(benchCfg(), benchAccuracySubset)
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, p := range res.Points {
			if dev := -p.Deviation; dev > worst {
				worst = dev
			}
		}
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
	b.ReportMetric(worst, "worst-accuracy-drop-pp")
}

func BenchmarkFigure6SVMDeviation(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFig6(benchCfg(), benchAccuracySubset)
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, p := range res.Points {
			if dev := -p.Deviation; dev > worst {
				worst = dev
			}
		}
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
	b.ReportMetric(worst, "worst-accuracy-drop-pp")
}

func BenchmarkAblationRisk(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiment.AblationRisk(0.95, 0.9, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiment.RenderRiskAblation(points))
		}
	}
}

func BenchmarkAblationAttacks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.AblationAttacks(benchCfg(), []string{"Diabetes"})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiment.RenderAttackAblation(rows))
		}
	}
}

func BenchmarkAblationNoiseSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiment.AblationNoiseSweep(benchCfg(), "Iris", []float64{0.02, 0.1, 0.3})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiment.RenderNoiseSweep(points))
		}
	}
}

func BenchmarkAblationIdentifiability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunIdentifiability(benchCfg(), "Iris", 4, 20)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Render())
		}
		b.ReportMetric(res.MaxDeviation, "max-deviation-from-uniform")
	}
}

// --- Component micro-benchmarks ---

func BenchmarkPerturbApply(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := matrix.RandomUniform(rng, 16, 1000, 0, 1)
	p, err := perturb.NewRandom(rng, 16, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.Apply(rng, x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAdaptorApply(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := matrix.RandomUniform(rng, 16, 1000, 0, 1)
	gi, _ := perturb.NewRandom(rng, 16, 0.05)
	gt, _ := perturb.NewRandom(rng, 16, 0)
	a, err := perturb.NewAdaptor(gi, gt)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Apply(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRandomOrthogonal(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matrix.RandomOrthogonal(rng, 16)
	}
}

func BenchmarkOptimizerRound(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	d, err := dataset.GenerateByName("Diabetes", rng)
	if err != nil {
		b.Fatal(err)
	}
	norm, _, err := dataset.Normalize(d)
	if err != nil {
		b.Fatal(err)
	}
	x := norm.FeaturesT()
	opt := privacy.NewOptimizer(privacy.OptimizerConfig{Candidates: 4, LocalSteps: 4})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := opt.Optimize(rng, x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAttackSuiteEvaluation(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	d, _ := dataset.GenerateByName("Diabetes", rng)
	norm, _, _ := dataset.Normalize(d)
	x := norm.FeaturesT()
	p, _ := perturb.NewRandom(rng, x.Rows(), 0.05)
	y, _, err := p.Apply(rng, x)
	if err != nil {
		b.Fatal(err)
	}
	know := privacy.Knowledge{
		Original:       x,
		KnownOriginal:  x.Slice(0, x.Rows(), 0, 8),
		KnownPerturbed: y.Slice(0, y.Rows(), 0, 8),
	}
	ev := privacy.DefaultEvaluator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Evaluate(x, y, know); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSAPSession(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	d, _ := dataset.GenerateByName("Diabetes", rng)
	norm, _, _ := dataset.Normalize(d)
	parts, err := dataset.Partition(norm, rng, 5, dataset.PartitionUniform)
	if err != nil {
		b.Fatal(err)
	}
	parties := make([]protocol.PartyInput, len(parts))
	for i, part := range parts {
		p, _ := perturb.NewRandom(rng, norm.Dim(), 0.05)
		parties[i] = protocol.PartyInput{Name: partyBenchName(i), Data: part, Perturbation: p}
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := protocol.RunLocal(ctx, protocol.SessionConfig{Parties: parties, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func partyBenchName(i int) string { return string(rune('a'+i)) + "-bench" }

func BenchmarkSVMTrainRBF(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	d, _ := dataset.GenerateByName("Heart", rng)
	norm, _, _ := dataset.Normalize(d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svm := classify.NewSVM(classify.SVMConfig{})
		if err := svm.Fit(norm); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKNNPredictKDTree(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	d, _ := dataset.GenerateByName("Shuttle", rng)
	norm, _, _ := dataset.Normalize(d)
	knn := classify.NewKNN(5)
	if err := knn.Fit(norm); err != nil {
		b.Fatal(err)
	}
	query := norm.X[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := knn.Predict(query); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPerturbCompose(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	g1, _ := perturb.NewRandom(rng, 16, 0.05)
	g2, _ := perturb.NewRandom(rng, 16, 0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := perturb.Compose(g1, g2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistanceInferenceAttack(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	d, _ := dataset.GenerateByName("Iris", rng)
	norm, _, _ := dataset.Normalize(d)
	x := norm.FeaturesT()
	p, _ := perturb.NewRandom(rng, x.Rows(), 0.05)
	y, _, err := p.Apply(rng, x)
	if err != nil {
		b.Fatal(err)
	}
	atk := privacy.NewDistanceInferenceAttack(privacy.DistanceInferenceConfig{})
	know := privacy.Knowledge{Original: x, KnownOriginal: x.Slice(0, x.Rows(), 0, 8)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := atk.Estimate(y, know); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatrixCholesky(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	g := matrix.RandomGaussian(rng, 16, 16, 1)
	a := g.Mul(g.T()).Add(matrix.Identity(16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := matrix.Cholesky(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAESCodecSeal(b *testing.B) {
	codec, err := transport.NewAESCodec("bench-key")
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 64<<10)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sealed, err := codec.Seal(payload)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := codec.Open(sealed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceThroughput tracks serving QPS across worker-pool sizes
// and batch shapes: single-record queries issued from concurrent goroutines
// versus batched queries answered in one round trip. The records/s metric
// is the headline serving-throughput number for future PRs to compare.
func BenchmarkServiceThroughput(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	d, err := dataset.GenerateByName("Diabetes", rng)
	if err != nil {
		b.Fatal(err)
	}
	norm, _, err := dataset.Normalize(d)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4, 16} {
		for _, batch := range []int{1, 64} {
			b.Run(fmt.Sprintf("workers=%d/batch=%d", workers, batch), func(b *testing.B) {
				net := transport.NewMemNetwork()
				svcConn, err := net.Endpoint("svc")
				if err != nil {
					b.Fatal(err)
				}
				defer svcConn.Close()
				cliConn, err := net.Endpoint("cli")
				if err != nil {
					b.Fatal(err)
				}
				defer cliConn.Close()
				svc, err := protocol.NewMiningService(svcConn,
					&protocol.MinerResult{Unified: norm}, classify.NewKNN(5),
					protocol.ServiceConfig{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				ctx, cancel := context.WithCancel(context.Background())
				done := make(chan error, 1)
				go func() { done <- svc.Serve(ctx) }()
				client, err := protocol.NewServiceClient(cliConn, "svc")
				if err != nil {
					b.Fatal(err)
				}
				queries := make([][]float64, batch)
				for i := range queries {
					queries[i] = norm.X[i%norm.Len()]
				}
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						if batch == 1 {
							if _, err := client.Classify(ctx, queries[0]); err != nil {
								b.Error(err)
								return
							}
						} else if _, err := client.ClassifyBatch(ctx, queries); err != nil {
							b.Error(err)
							return
						}
					}
				})
				b.StopTimer()
				records := float64(b.N) * float64(batch)
				b.ReportMetric(records/b.Elapsed().Seconds(), "records/s")
				client.Close()
				cancel()
				if err := <-done; err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}

// slowRefitModel is a KNN whose every fit after the first also burns a
// fixed wall-clock cost, emulating the expensive retrains of a production
// model. Clones share the fit counter so background refits pay the cost.
type slowRefitModel struct {
	inner *classify.KNN
	fits  *atomic.Int64
	cost  time.Duration
}

func (m *slowRefitModel) Fit(d *dataset.Dataset) error {
	if m.fits.Add(1) > 1 {
		time.Sleep(m.cost)
	}
	return m.inner.Fit(d)
}

func (m *slowRefitModel) Predict(x []float64) (int, error) { return m.inner.Predict(x) }

func (m *slowRefitModel) Clone() classify.Classifier {
	return &slowRefitModel{inner: classify.NewKNN(1), fits: m.fits, cost: m.cost}
}

// BenchmarkIngestUnderRefit measures ingest round-trip throughput while the
// served model is constantly refitting, with a deliberately slow (5ms) Fit.
// Before the background-refit swap, every cadence crossing stalled the
// ingest lane for the whole fit — records/s was bounded by the refit cost;
// with fit-aside-and-swap the pusher's latency stays flat, so this metric
// tracks the swap's effect alongside BenchmarkStreamThroughput in CI.
func BenchmarkIngestUnderRefit(b *testing.B) {
	const chunkRecords, refitEvery, dim = 16, 64, 4
	rng := rand.New(rand.NewSource(41))
	x := make([][]float64, 256)
	y := make([]int, 256)
	for i := range x {
		row := make([]float64, dim)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		x[i] = row
		y[i] = i % 4
	}
	base, err := dataset.New("bench", x, y)
	if err != nil {
		b.Fatal(err)
	}

	net := transport.NewMemNetwork()
	svcConn, err := net.Endpoint("svc")
	if err != nil {
		b.Fatal(err)
	}
	defer svcConn.Close()
	cliConn, err := net.Endpoint("cli")
	if err != nil {
		b.Fatal(err)
	}
	defer cliConn.Close()
	model := &slowRefitModel{inner: classify.NewKNN(1), fits: &atomic.Int64{}, cost: 5 * time.Millisecond}
	svc, err := protocol.NewGroupedMiningService(svcConn,
		[]protocol.GroupSpec{{ID: "bench", Unified: base, Model: model, RefitEvery: refitEvery}},
		protocol.ServiceConfig{Workers: 2})
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- svc.Serve(ctx) }()
	client, err := protocol.NewGroupServiceClient(cliConn, "svc", "bench")
	if err != nil {
		b.Fatal(err)
	}

	chunk := make([][]float64, chunkRecords)
	labels := make([]int, chunkRecords)
	for i := range chunk {
		chunk[i] = base.X[i%base.Len()]
		labels[i] = base.Y[i%base.Len()]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.PushChunk(ctx, chunk, labels); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*chunkRecords/b.Elapsed().Seconds(), "records/s")
	client.Close()
	cancel()
	if err := <-done; err != nil {
		b.Fatal(err)
	}
}

// BenchmarkStreamThroughput measures the streaming ingestion pipeline's
// hot path — chunking, running covariance updates, perturbation and space
// adaptation — as perturbed records per second, across chunk sizes and with
// drift watching on and off.
func BenchmarkStreamThroughput(b *testing.B) {
	const n, d = 4096, 8
	rng := rand.New(rand.NewSource(1))
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		x[i] = row
		y[i] = i % 4
	}
	data, err := dataset.New("bench", x, y)
	if err != nil {
		b.Fatal(err)
	}
	pert, err := perturb.NewRandom(rng, d, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	targetNoisy, err := perturb.NewRandom(rng, d, 0)
	if err != nil {
		b.Fatal(err)
	}
	target := targetNoisy.WithoutNoise()

	for _, cfg := range []struct {
		name  string
		chunk int
		drift float64
	}{
		{"chunk64", 64, 0},
		{"chunk256", 256, 0},
		{"chunk256-drift", 256, 0.25},
		{"chunk1024", 1024, 0},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			ctx := context.Background()
			for i := 0; i < b.N; i++ {
				pipe, err := stream.New(stream.Config{
					Perturbation:   pert,
					Target:         target,
					Rng:            rand.New(rand.NewSource(int64(i))),
					ChunkSize:      cfg.chunk,
					DriftThreshold: cfg.drift,
				})
				if err != nil {
					b.Fatal(err)
				}
				done := make(chan error, 1)
				go func() { done <- pipe.Run(ctx, stream.DatasetSource(data)) }()
				for range pipe.Out() {
				}
				if err := <-done; err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)*n/b.Elapsed().Seconds(), "records/s")
		})
	}
}

// BenchmarkMultiGroupThroughput tracks the sharded router's serving QPS as
// queries fan out across 1, 4 and 16 co-hosted groups, each with its own
// model shard and client. Comparing the records/s metric against
// BenchmarkServiceThroughput shows what per-group locking and routing cost
// on top of single-group serving.
func BenchmarkMultiGroupThroughput(b *testing.B) {
	const recordsPerGroup, dim, batch = 64, 4, 16
	rng := rand.New(rand.NewSource(29))
	for _, nGroups := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("groups=%d", nGroups), func(b *testing.B) {
			net := transport.NewMemNetwork()
			svcConn, err := net.Endpoint("svc")
			if err != nil {
				b.Fatal(err)
			}
			defer svcConn.Close()
			specs := make([]protocol.GroupSpec, nGroups)
			for g := range specs {
				x := make([][]float64, recordsPerGroup)
				y := make([]int, recordsPerGroup)
				for i := range x {
					row := make([]float64, dim)
					for j := range row {
						row[j] = rng.NormFloat64()
					}
					x[i] = row
					y[i] = i % 4
				}
				d, err := dataset.New(fmt.Sprintf("g%d", g), x, y)
				if err != nil {
					b.Fatal(err)
				}
				specs[g] = protocol.GroupSpec{ID: fmt.Sprintf("g%d", g), Unified: d, Model: classify.NewKNN(1)}
			}
			svc, err := protocol.NewGroupedMiningService(svcConn, specs, protocol.ServiceConfig{Workers: 8})
			if err != nil {
				b.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan error, 1)
			go func() { done <- svc.Serve(ctx) }()
			clients := make([]*protocol.ServiceClient, nGroups)
			for g := range clients {
				conn, err := net.Endpoint(fmt.Sprintf("cli%d", g))
				if err != nil {
					b.Fatal(err)
				}
				defer conn.Close()
				clients[g], err = protocol.NewGroupServiceClient(conn, "svc", specs[g].ID)
				if err != nil {
					b.Fatal(err)
				}
			}
			queries := make([][]float64, batch)
			for i := range queries {
				queries[i] = specs[0].Unified.X[i%recordsPerGroup]
			}
			var next atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					client := clients[int(next.Add(1))%nGroups]
					if _, err := client.ClassifyBatch(ctx, queries); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "records/s")
			for _, client := range clients {
				client.Close()
			}
			cancel()
			if err := <-done; err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkMultiViewClassify tracks one group's serving QPS as its model
// set deepens from 1 to 2 to 4 trust views, with clients pinned round-robin
// across the levels. Comparing against BenchmarkMultiGroupThroughput's
// groups=1 case shows what the per-view resolution and per-view model
// pointers cost on top of flat single-model serving.
func BenchmarkMultiViewClassify(b *testing.B) {
	const records, dim, batch = 64, 4, 16
	rng := rand.New(rand.NewSource(31))
	x := make([][]float64, records)
	y := make([]int, records)
	for i := range x {
		row := make([]float64, dim)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		x[i] = row
		y[i] = i % 4
	}
	d, err := dataset.New("views", x, y)
	if err != nil {
		b.Fatal(err)
	}
	for _, nViews := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("views=%d", nViews), func(b *testing.B) {
			net := transport.NewMemNetwork()
			svcConn, err := net.Endpoint("svc")
			if err != nil {
				b.Fatal(err)
			}
			defer svcConn.Close()
			views := make([]protocol.ViewSpec, nViews)
			for v := range views {
				views[v] = protocol.ViewSpec{
					Level:      v + 1,
					NoiseSigma: 0.1 * float64(v),
					Model:      classify.NewKNN(1),
				}
			}
			spec := protocol.GroupSpec{ID: "g", Unified: d, Views: views}
			svc, err := protocol.NewGroupedMiningService(svcConn, []protocol.GroupSpec{spec}, protocol.ServiceConfig{Workers: 8})
			if err != nil {
				b.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan error, 1)
			go func() { done <- svc.Serve(ctx) }()
			clients := make([]*protocol.ServiceClient, nViews)
			for v := range clients {
				conn, err := net.Endpoint(fmt.Sprintf("cli%d", v))
				if err != nil {
					b.Fatal(err)
				}
				defer conn.Close()
				clients[v], err = protocol.NewGroupServiceClient(conn, "svc", "g")
				if err != nil {
					b.Fatal(err)
				}
				clients[v].SetView(v + 1)
			}
			queries := make([][]float64, batch)
			for i := range queries {
				queries[i] = x[i%records]
			}
			var next atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					client := clients[int(next.Add(1))%nViews]
					if _, err := client.ClassifyBatch(ctx, queries); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "records/s")
			for _, client := range clients {
				client.Close()
			}
			cancel()
			if err := <-done; err != nil {
				b.Fatal(err)
			}
		})
	}
}

// latencyModel is a KNN whose every Predict also burns a fixed wall-clock
// cost, emulating a production model whose inference latency — not CPU —
// bounds a single node's serving rate. It makes the cluster benchmark
// meaningful on small CI machines: aggregate throughput then scales with
// how many nodes share the classify fan-out, which is exactly the routing
// property under test, rather than with host core count.
type latencyModel struct {
	inner *classify.KNN
	cost  time.Duration
}

func (m *latencyModel) Fit(d *dataset.Dataset) error { return m.inner.Fit(d) }

func (m *latencyModel) Predict(x []float64) (int, error) {
	time.Sleep(m.cost)
	return m.inner.Predict(x)
}

func (m *latencyModel) Clone() classify.Classifier {
	return &latencyModel{inner: classify.NewKNN(1), cost: m.cost}
}

// BenchmarkClusterThroughput measures aggregate classify throughput as one
// group's read fan-out widens from a single node to 8 replicas. A static
// table pins the group's leader and N-1 read replicas; the cluster client
// round-robins classifies over all assignees. With a 1ms simulated predict
// latency and 4 workers per node, each node saturates at ~4k records/s, so
// the records/s series should grow near-linearly in the node count; the
// scale-vs-1node metric reports each size's speedup over the single-node
// baseline measured in the same run.
func BenchmarkClusterThroughput(b *testing.B) {
	const dim, records, workers = 4, 64, 4
	const predictCost = 2 * time.Millisecond
	rng := rand.New(rand.NewSource(53))
	x := make([][]float64, records)
	y := make([]int, records)
	for i := range x {
		row := make([]float64, dim)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		x[i] = row
		y[i] = i % 4
	}
	data, err := dataset.New("bench", x, y)
	if err != nil {
		b.Fatal(err)
	}

	var baseline float64
	for _, nodes := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			names := make([]string, nodes)
			for i := range names {
				names[i] = fmt.Sprintf("bn%d", i+1)
			}
			table, err := cluster.NewStaticTable([]protocol.RouteEntry{
				{Group: "bench", Node: names[0], Replicas: names[1:]},
			})
			if err != nil {
				b.Fatal(err)
			}
			net := transport.NewMemNetwork()
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan error, nodes)
			for _, name := range names {
				conn, err := net.Endpoint(name)
				if err != nil {
					b.Fatal(err)
				}
				defer conn.Close()
				node, err := cluster.NewNode(cluster.NodeConfig{
					Name: name, Conn: conn, Table: table,
					Groups: []protocol.GroupSpec{{
						ID: "bench", Unified: data,
						Model: &latencyModel{inner: classify.NewKNN(1), cost: predictCost},
					}},
					Service: protocol.ServiceConfig{Workers: workers},
				})
				if err != nil {
					b.Fatal(err)
				}
				go func() { done <- node.Serve(ctx) }()
			}
			cliConn, err := net.Endpoint("cli")
			if err != nil {
				b.Fatal(err)
			}
			defer cliConn.Close()
			client, err := cluster.NewClient(cluster.ClientConfig{
				Conn: cliConn, Seeds: names[:1],
				// Round-robin skew can momentarily stack the whole fleet's
				// in-flight calls on one node; absorb the resulting busy
				// rejections instead of failing the benchmark.
				Backoff: protocol.Backoff{Tries: 12, Base: predictCost / 2, Max: 8 * predictCost},
			})
			if err != nil {
				b.Fatal(err)
			}
			query := data.X[0]
			// Keep enough calls in flight to saturate every node's worker
			// pool even on a single-core runner: RunParallel spawns
			// p×GOMAXPROCS goroutines, and at p<1 falls back to GOMAXPROCS,
			// which already exceeds the in-flight target on wide hosts.
			b.SetParallelism(2 * nodes * workers / runtime.GOMAXPROCS(0))
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := client.Classify(ctx, "bench", query); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			throughput := float64(b.N) / b.Elapsed().Seconds()
			b.ReportMetric(throughput, "records/s")
			if nodes == 1 {
				baseline = throughput
			} else if baseline > 0 {
				b.ReportMetric(throughput/baseline, "scale-vs-1node")
			}
			client.Close()
			cancel()
			for range names {
				if err := <-done; err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEndToEndPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pool, err := sap.GenerateDataset("Iris", 1)
		if err != nil {
			b.Fatal(err)
		}
		parties, err := sap.Split(pool, 3, sap.PartitionUniform, 2)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sap.Run(context.Background(),
			sap.WithParties(parties...),
			sap.WithSeed(3),
			sap.WithOptimizer(2, 1),
		)
		if err != nil {
			b.Fatal(err)
		}
		model := sap.NewKNN(5)
		if err := model.Fit(res.Unified()); err != nil {
			b.Fatal(err)
		}
	}
}
