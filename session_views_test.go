package sap_test

// End-to-end multi-level trust serving: one group split into ordered trust
// views (sap.WithTrustViews), served over real TCP sockets. The acceptance
// contract: every view serves its own model of the shared training set,
// higher trust is measurably more accurate (less training noise), a view
// refuses endpoints outside its member list with ErrNotMember, and a view
// nobody serves answers ErrUnknownView — all end to end through the wire.

import (
	"context"
	"errors"
	"testing"

	sap "repro"
)

func TestMultiViewServeOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets")
	}
	sess, holdout := runSmallSession(t,
		sap.WithGroupID("consortium"),
		sap.WithTrustViews(
			sap.ViewConfig{Level: 1, NoiseSigma: 0, Members: []string{"analyst"}},
			sap.ViewConfig{Level: 2, NoiseSigma: 0.3, Members: []string{"analyst", "partner"}},
			sap.ViewConfig{Level: 3, NoiseSigma: 1.5, Members: []string{"analyst", "partner", "public"}},
		),
	)

	svcNode, err := sap.NewTCPNode("mining-service", "127.0.0.1:0", "view-key")
	if err != nil {
		t.Fatal(err)
	}
	defer svcNode.Close()
	nodes := map[string]*sap.TCPNode{}
	for _, name := range []string{"analyst", "public"} {
		n, err := sap.NewTCPNode(name, "127.0.0.1:0", "view-key")
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		svcNode.AddPeer(name, n.Addr())
		n.AddPeer("mining-service", svcNode.Addr())
		nodes[name] = n
	}

	ctx, cancel := context.WithCancel(runCtx(t))
	done := make(chan error, 1)
	go func() { done <- sess.Serve(ctx, svcNode, sap.NewKNN(5)) }()

	// classify scores the holdout from one endpoint, pinned to one view
	// (0: routed to the best view the endpoint is on).
	classifyAs := func(endpoint string, view int) ([]int, error) {
		client, err := sess.NewClient(nodes[endpoint], sap.ClientConfig{Miner: "mining-service", View: view})
		if err != nil {
			return nil, err
		}
		defer client.Close()
		return client.ClassifyBatch(runCtx(t), holdout.X)
	}
	accuracy := func(labels []int) float64 {
		agree := 0
		for i, label := range labels {
			if label == holdout.Y[i] {
				agree++
			}
		}
		return float64(agree) / float64(len(labels))
	}

	// Routing: unpinned clients land on the best view their endpoint is on —
	// the analyst on the unblurred level 1, the public endpoint on the
	// heavily noised level 3.
	innerLabels, err := classifyAs("analyst", 0)
	if err != nil {
		t.Fatal(err)
	}
	outerLabels, err := classifyAs("public", 0)
	if err != nil {
		t.Fatal(err)
	}
	inner, outer := accuracy(innerLabels), accuracy(outerLabels)
	if inner < 0.6 {
		t.Errorf("inner-view accuracy %.3f too low for an unblurred model", inner)
	}
	if outer >= inner {
		t.Errorf("outer view (σ=1.5) accuracy %.3f not below inner view %.3f; views are not serving distinct models", outer, inner)
	}
	distinct := false
	for i := range innerLabels {
		if innerLabels[i] != outerLabels[i] {
			distinct = true
			break
		}
	}
	if !distinct {
		t.Error("inner and outer views answered identically on every record")
	}

	// A pinned middle view answers its own members.
	midLabels, err := classifyAs("analyst", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(midLabels) != holdout.Len() {
		t.Fatalf("view 2 answered %d labels for %d records", len(midLabels), holdout.Len())
	}

	// Authorization: the public endpoint is not on the inner views.
	for _, view := range []int{1, 2} {
		if _, err := classifyAs("public", view); !errors.Is(err, sap.ErrNotMember) {
			t.Errorf("public query for view %d: err = %v, want ErrNotMember", view, err)
		}
	}
	// A view nobody serves is a typed unknown-view rejection, even for the
	// best-placed member.
	if _, err := classifyAs("analyst", 9); !errors.Is(err, sap.ErrUnknownView) {
		t.Errorf("unserved view: err = %v, want ErrUnknownView", err)
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
