package metrics

// Prometheus text-format export. The JSON snapshot is the registry's native
// form; WritePrometheus renders the same instruments in the Prometheus
// exposition format (text version 0.0.4) so standard scrape-and-dashboard
// tooling can watch a deployment — cluster scaling in particular — without a
// translation sidecar. Instrument names are sanitized to the Prometheus
// charset (every run of illegal characters, dots included, becomes one
// underscore: "service.alpha.refit.count" → service_alpha_refit_count) and
// counters additionally get the conventional "_total" suffix.

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
)

// promName sanitizes one instrument name to the Prometheus metric-name
// charset [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		legal := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !legal {
			r = '_'
		}
		b.WriteRune(r)
	}
	return b.String()
}

// sortedKeys returns m's keys in ascending order, for deterministic output.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WritePrometheus renders the current snapshot in the Prometheus text
// exposition format: counters as "<name>_total", gauges verbatim, and
// histograms as the conventional cumulative _bucket/_sum/_count series (the
// registry's per-bucket counts are accumulated into le-labelled cumulative
// counts, with the top bucket folded into le="+Inf"). Output is
// deterministic for a fixed set of observations: one family per instrument,
// sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	for _, name := range sortedKeys(snap.Counters) {
		n := promName(name) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, snap.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(snap.Gauges) {
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", n, n, snap.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(snap.Histograms) {
		h := snap.Histograms[name]
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
			return err
		}
		cum := int64(0)
		for _, b := range h.Buckets {
			cum += b.Count
			// The registry's top bucket is unbounded (Upper MaxInt64), which
			// is Prometheus's +Inf bucket; every histogram must end with it.
			if b.Upper == math.MaxInt64 {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", n, b.Upper, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", n, h.Sum, n, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// promContentType is the exposition-format content type Prometheus scrapers
// expect.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// servePrometheus answers one scrape with the text-format snapshot.
func (r *Registry) servePrometheus(w http.ResponseWriter) {
	w.Header().Set("Content-Type", promContentType)
	_ = r.WritePrometheus(w)
}
