package metrics

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the exact exposition output for a registry
// with one of everything: counters gain _total, gauges (pushed and derived)
// export verbatim, histograms become cumulative le-labelled buckets ending
// in +Inf, and families appear in sorted name order. Any format drift breaks
// scrapers, so the full output is compared byte for byte.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("service.alpha.requests").Add(5)
	r.Counter("cluster.route_misses").Add(2)
	r.Gauge("service.alpha.staleness_records").Set(3)
	r.GaugeFunc("cluster.replica_lag_records", func() int64 { return 7 })
	h := r.Histogram("service.alpha.refit.ns")
	h.Observe(0)    // bucket le="0"
	h.Observe(3)    // bucket le="3"
	h.Observe(1000) // bucket le="1023"

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE cluster_route_misses_total counter
cluster_route_misses_total 2
# TYPE service_alpha_requests_total counter
service_alpha_requests_total 5
# TYPE cluster_replica_lag_records gauge
cluster_replica_lag_records 7
# TYPE service_alpha_staleness_records gauge
service_alpha_staleness_records 3
# TYPE service_alpha_refit_ns histogram
service_alpha_refit_ns_bucket{le="0"} 1
service_alpha_refit_ns_bucket{le="3"} 2
service_alpha_refit_ns_bucket{le="1023"} 3
service_alpha_refit_ns_bucket{le="+Inf"} 3
service_alpha_refit_ns_sum 1003
service_alpha_refit_ns_count 3
`
	if got := b.String(); got != want {
		t.Fatalf("exposition output drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWritePrometheusEmpty checks an empty registry exports an empty (but
// valid) page rather than erroring.
func TestWritePrometheusEmpty(t *testing.T) {
	var b strings.Builder
	if err := NewRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("empty registry exported %q", b.String())
	}
}

// TestPromName checks metric-name sanitization: dots and other illegal runes
// become underscores, and a leading digit is not legal either.
func TestPromName(t *testing.T) {
	cases := map[string]string{
		"service.alpha.requests": "service_alpha_requests",
		"with-dash/and+more":     "with_dash_and_more",
		"already_legal:name":     "already_legal:name",
		"0starts.with.digit":     "_starts_with_digit",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestServeHTTPFormatProm checks the handler dispatches on ?format=prom:
// the default stays JSON, the prom variant serves the exposition format
// with its scrape content type.
func TestServeHTTPFormatProm(t *testing.T) {
	r := NewRegistry()
	r.Counter("service.alpha.requests").Inc()

	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("default content type = %q, want application/json", ct)
	}
	if !strings.Contains(rec.Body.String(), `"service.alpha.requests": 1`) {
		t.Fatalf("JSON body missing counter: %s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=prom", nil))
	if ct := rec.Header().Get("Content-Type"); ct != promContentType {
		t.Fatalf("prom content type = %q, want %q", ct, promContentType)
	}
	if !strings.Contains(rec.Body.String(), "service_alpha_requests_total 1") {
		t.Fatalf("prom body missing counter: %s", rec.Body.String())
	}
}
