// Package metrics is the observability seam of the serving stack: a small,
// allocation-conscious instrumentation interface (counters, gauges, timing
// histograms) with an atomic in-memory implementation whose Snapshot can be
// exported as JSON. The serving loop (internal/protocol) and the streaming
// pipeline (internal/stream) resolve their instruments once at construction
// and update them with single atomic operations on the hot path, so a
// deployment can watch requests, ingest, refits and drift without touching
// test helpers — and the nop implementation keeps the cost at one predictable
// virtual call when nobody is watching.
package metrics

import (
	"encoding/json"
	"math"
	"math/bits"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics hands out named instruments. Implementations must return the same
// instrument for the same name, so callers may resolve an instrument once
// (at construction) and update it lock-free thereafter. Counter, gauge and
// histogram names are independent namespaces.
type Metrics interface {
	// Counter returns the named monotonically increasing counter.
	Counter(name string) Counter
	// Gauge returns the named instantaneous-value gauge.
	Gauge(name string) Gauge
	// Histogram returns the named value histogram (timings are recorded in
	// nanoseconds; see Time).
	Histogram(name string) Histogram
}

// Counter is a monotonically increasing count.
type Counter interface {
	// Add increments the counter; negative deltas are ignored.
	Add(delta int64)
	// Inc is Add(1).
	Inc()
}

// Gauge is an instantaneous value that may move both ways.
type Gauge interface {
	// Set replaces the gauge's value.
	Set(v int64)
	// Add shifts the gauge's value.
	Add(delta int64)
}

// Histogram accumulates a distribution of int64 observations in
// exponentially sized (power-of-two) buckets.
type Histogram interface {
	// Observe records one value.
	Observe(v int64)
}

// Time records the duration since start into h, in nanoseconds. Use it with
// defer around the timed section:
//
//	defer metrics.Time(h, time.Now())
func Time(h Histogram, start time.Time) {
	h.Observe(int64(time.Since(start)))
}

// FuncGauges is implemented by sinks that can derive a gauge's value on
// demand at export time instead of storing pushed updates. Instrumented code
// whose "current value" lives in a data structure it already owns — a
// buffered channel's occupancy, a map's size — registers a read function
// once and never updates the gauge again, so the exported value can never go
// stale between pushes. *Registry implements it; sinks that do not are
// simply updated through the push-style Gauge instead.
type FuncGauges interface {
	// GaugeFunc registers fn as the named gauge's value source. fn must be
	// safe for concurrent use and must not call back into the sink (it runs
	// during Snapshot); for a name registered both ways, the function wins.
	GaugeFunc(name string, fn func() int64)
}

// --- atomic in-memory implementation ---

// histBuckets is the fixed bucket count of the in-memory histogram: bucket i
// holds observations v with bits.Len64(v) == i, i.e. [2^(i-1), 2^i - 1] —
// enough to cover every positive int64 at a fixed ~2x resolution. Values
// ≤ 0 land in bucket 0.
const histBuckets = 64

type counter struct{ v atomic.Int64 }

func (c *counter) Add(delta int64) {
	if delta > 0 {
		c.v.Add(delta)
	}
}
func (c *counter) Inc() { c.v.Add(1) }

type gauge struct{ v atomic.Int64 }

func (g *gauge) Set(v int64)     { g.v.Store(v) }
func (g *gauge) Add(delta int64) { g.v.Add(delta) }

type histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // MaxInt64 until the first observation
	max     atomic.Int64 // MinInt64 until the first observation
	buckets [histBuckets]atomic.Int64
}

func newHistogram() *histogram {
	h := &histogram{}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

func (h *histogram) Observe(v int64) {
	idx := 0
	if v > 0 {
		idx = bits.Len64(uint64(v))
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Registry is the default Metrics implementation: named atomic instruments
// resolved through one mutex at registration time and updated lock-free
// afterwards. The zero value is not usable; construct with NewRegistry. A
// Registry is safe for concurrent use, including Snapshot against live
// updates, and serves its snapshot as JSON when mounted as an http.Handler.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*counter
	gauges     map[string]*gauge
	gaugeFuncs map[string]func() int64
	histograms map[string]*histogram
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*counter),
		gauges:     make(map[string]*gauge),
		gaugeFuncs: make(map[string]func() int64),
		histograms: make(map[string]*histogram),
	}
}

// Counter implements Metrics.
func (r *Registry) Counter(name string) Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge implements Metrics.
func (r *Registry) Gauge(name string) Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc implements FuncGauges: snapshots read the named gauge through
// fn, live, instead of reporting the last pushed value. Registering a name
// again replaces its function; a same-named push-style gauge is shadowed.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[name] = fn
}

// Histogram implements Metrics.
func (r *Registry) Histogram(name string) Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram()
		r.histograms[name] = h
	}
	return h
}

// Bucket is one exponential histogram bucket in a snapshot: Count
// observations were ≤ Upper (and above the previous bucket's Upper).
type Bucket struct {
	Upper int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is one histogram's exported state. Sum, Min and Max are
// in the observed unit (nanoseconds for timings); only non-empty buckets are
// listed, in ascending Upper order.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Min     int64    `json:"min"`
	Max     int64    `json:"max"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time export of every registered instrument, shaped
// for JSON (map keys marshal in sorted order, so serializations are
// deterministic for a fixed set of observations).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot exports the current value of every instrument. It is safe to call
// concurrently with live updates; each instrument's fields are read
// atomically (a histogram snapshot may straddle a concurrent observation,
// its fields never tear).
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := Snapshot{}
	if len(r.counters) > 0 {
		snap.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			snap.Counters[name] = c.v.Load()
		}
	}
	if len(r.gauges)+len(r.gaugeFuncs) > 0 {
		snap.Gauges = make(map[string]int64, len(r.gauges)+len(r.gaugeFuncs))
		for name, g := range r.gauges {
			snap.Gauges[name] = g.v.Load()
		}
		// Derived gauges are read live at snapshot time and shadow any
		// same-named pushed gauge.
		for name, fn := range r.gaugeFuncs {
			snap.Gauges[name] = fn()
		}
	}
	if len(r.histograms) > 0 {
		snap.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for name, h := range r.histograms {
			hs := HistogramSnapshot{
				Count: h.count.Load(),
				Sum:   h.sum.Load(),
				Min:   h.min.Load(),
				Max:   h.max.Load(),
			}
			// Min > Max means the snapshot raced a histogram's first
			// observation (count is stored before the min/max CAS loops
			// land); report zeros rather than the int64 sentinels.
			if hs.Count == 0 || hs.Min > hs.Max {
				hs.Min, hs.Max = 0, 0
			}
			// Ascending bucket index means ascending Upper, so the
			// emitted slice is already sorted.
			for i := range h.buckets {
				n := h.buckets[i].Load()
				if n == 0 {
					continue
				}
				upper := int64(math.MaxInt64)
				if i < 63 {
					upper = (int64(1) << i) - 1
				}
				hs.Buckets = append(hs.Buckets, Bucket{Upper: upper, Count: n})
			}
			snap.Histograms[name] = hs
		}
	}
	return snap
}

// ServeHTTP implements http.Handler: it answers any GET with the current
// snapshot as JSON, or in the Prometheus text exposition format when the
// request carries ?format=prom (see WritePrometheus). Mount it wherever the
// deployment exposes operational endpoints (cmd/sapnode serves it under
// -metrics-addr at /metrics).
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet && req.Method != http.MethodHead {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if req.URL.Query().Get("format") == "prom" {
		r.servePrometheus(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(r.Snapshot())
}

// --- nop implementation ---

type nopMetrics struct{}
type nopInstrument struct{}

func (nopInstrument) Add(int64)     {}
func (nopInstrument) Inc()          {}
func (nopInstrument) Set(int64)     {}
func (nopInstrument) Observe(int64) {}

func (nopMetrics) Counter(string) Counter     { return nopInstrument{} }
func (nopMetrics) Gauge(string) Gauge         { return nopInstrument{} }
func (nopMetrics) Histogram(string) Histogram { return nopInstrument{} }

// Nop returns a Metrics whose instruments discard every update. It is the
// default wherever no registry is plugged in, so instrumented hot paths pay
// only a no-op method call when nobody is watching.
func Nop() Metrics { return nopMetrics{} }
