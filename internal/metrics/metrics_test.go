package metrics

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs")
	c.Inc()
	c.Add(4)
	c.Add(-10) // negative deltas are ignored: counters are monotone
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-2)

	snap := r.Snapshot()
	if got := snap.Counters["reqs"]; got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if got := snap.Gauges["depth"]; got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestGaugeFuncDerivedAtSnapshot(t *testing.T) {
	r := NewRegistry()
	live := int64(3)
	r.GaugeFunc("queue.depth", func() int64 { return live })
	if got := r.Snapshot().Gauges["queue.depth"]; got != 3 {
		t.Fatalf("derived gauge = %d, want 3", got)
	}
	// The function is read live at every snapshot, never cached.
	live = 11
	if got := r.Snapshot().Gauges["queue.depth"]; got != 11 {
		t.Fatalf("derived gauge after change = %d, want 11", got)
	}
	// A derived gauge shadows a same-named pushed gauge...
	r.Gauge("queue.depth").Set(99)
	if got := r.Snapshot().Gauges["queue.depth"]; got != 11 {
		t.Fatalf("derived gauge shadowing = %d, want 11 (function wins)", got)
	}
	// ...and re-registering replaces the function.
	r.GaugeFunc("queue.depth", func() int64 { return -1 })
	if got := r.Snapshot().Gauges["queue.depth"]; got != -1 {
		t.Fatalf("re-registered gauge = %d, want -1", got)
	}
}

func TestInstrumentIdentity(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Fatal("same counter name resolved to distinct instruments")
	}
	if r.Gauge("x") != r.Gauge("x") {
		t.Fatal("same gauge name resolved to distinct instruments")
	}
	if r.Histogram("x") != r.Histogram("x") {
		t.Fatal("same histogram name resolved to distinct instruments")
	}
	// Counter "x", gauge "x" and histogram "x" are independent namespaces.
	r.Counter("x").Add(3)
	r.Gauge("x").Set(9)
	snap := r.Snapshot()
	if snap.Counters["x"] != 3 || snap.Gauges["x"] != 9 {
		t.Fatalf("namespaces bled: %+v", snap)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("batch")
	for _, v := range []int64{0, 1, 1, 3, 100, -5} {
		h.Observe(v)
	}
	hs := r.Snapshot().Histograms["batch"]
	if hs.Count != 6 {
		t.Fatalf("count = %d, want 6", hs.Count)
	}
	if hs.Sum != 100 {
		t.Fatalf("sum = %d, want 100", hs.Sum)
	}
	if hs.Min != -5 || hs.Max != 100 {
		t.Fatalf("min/max = %d/%d, want -5/100", hs.Min, hs.Max)
	}
	// 0 and -5 → le 0; 1,1 → le 1; 3 → le 3; 100 → le 127.
	want := []Bucket{{Upper: 0, Count: 2}, {Upper: 1, Count: 2}, {Upper: 3, Count: 1}, {Upper: 127, Count: 1}}
	if len(hs.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", hs.Buckets, want)
	}
	for i, b := range hs.Buckets {
		if b != want[i] {
			t.Fatalf("bucket %d = %+v, want %+v", i, b, want[i])
		}
	}
}

func TestHistogramExtremes(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("wide")
	h.Observe(math.MaxInt64)
	hs := r.Snapshot().Histograms["wide"]
	if len(hs.Buckets) != 1 || hs.Buckets[0].Upper != math.MaxInt64 {
		t.Fatalf("MaxInt64 bucket = %+v", hs.Buckets)
	}
	empty := r.Snapshot().Histograms["nothing"]
	if empty.Count != 0 || empty.Min != 0 || empty.Max != 0 {
		t.Fatalf("zero-observation snapshot = %+v, want zeros", empty)
	}
}

func TestTimeRecordsNanoseconds(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	Time(h, time.Now().Add(-time.Millisecond))
	hs := r.Snapshot().Histograms["lat"]
	if hs.Count != 1 {
		t.Fatalf("count = %d, want 1", hs.Count)
	}
	if hs.Sum < int64(time.Millisecond) {
		t.Fatalf("sum = %dns, want ≥ 1ms", hs.Sum)
	}
}

// TestSnapshotJSONGolden pins the exact JSON wire shape of a snapshot —
// the format cmd/sapnode serves under -metrics-addr and the bench harness
// records alongside ns/op. Map keys marshal sorted, so the serialization is
// deterministic.
func TestSnapshotJSONGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("service.ward-a.requests").Add(3)
	r.Counter("service.rejects.unknown_group").Inc()
	r.Gauge("service.ward-a.ingest.queue_depth").Set(2)
	h := r.Histogram("service.ward-a.batch_size")
	h.Observe(1)
	h.Observe(64)

	got, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	const want = `{"counters":{"service.rejects.unknown_group":1,"service.ward-a.requests":3},` +
		`"gauges":{"service.ward-a.ingest.queue_depth":2},` +
		`"histograms":{"service.ward-a.batch_size":{"count":2,"sum":65,"min":1,"max":64,` +
		`"buckets":[{"le":1,"count":1},{"le":127,"count":1}]}}}`
	if string(got) != want {
		t.Fatalf("snapshot JSON:\n got %s\nwant %s", got, want)
	}
}

func TestServeHTTP(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs").Add(2)
	srv := httptest.NewServer(r)
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q, want application/json", ct)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["reqs"] != 2 {
		t.Fatalf("served snapshot = %+v", snap)
	}

	del, err := http.NewRequest(http.MethodDelete, srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE status = %d, want 405", dresp.StatusCode)
	}
}

// TestConcurrentUpdates hammers one registry from many goroutines; run under
// -race this doubles as the data-race proof for the atomic implementation.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const goroutines, each = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hits")
			h := r.Histogram("vals")
			for i := 0; i < each; i++ {
				c.Inc()
				h.Observe(int64(i))
				r.Gauge("last").Set(int64(i))
				if i%100 == 0 {
					_ = r.Snapshot() // snapshots race live updates safely
				}
			}
		}()
	}
	wg.Wait()
	snap := r.Snapshot()
	if snap.Counters["hits"] != goroutines*each {
		t.Fatalf("hits = %d, want %d", snap.Counters["hits"], goroutines*each)
	}
	if snap.Histograms["vals"].Count != goroutines*each {
		t.Fatalf("observations = %d, want %d", snap.Histograms["vals"].Count, goroutines*each)
	}
}

func TestNopDiscards(t *testing.T) {
	m := Nop()
	m.Counter("x").Inc()
	m.Counter("x").Add(5)
	m.Gauge("y").Set(3)
	m.Gauge("y").Add(1)
	m.Histogram("z").Observe(9)
	// Nothing to assert beyond "does not panic and allocates nothing".
	n := testing.AllocsPerRun(100, func() {
		m.Counter("x").Inc()
		m.Histogram("z").Observe(1)
	})
	if n != 0 {
		t.Fatalf("nop instruments allocate %.1f per op, want 0", n)
	}
}
