package perturb

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

func testData(rng *rand.Rand, d, n int) *matrix.Dense {
	return matrix.RandomUniform(rng, d, n, 0, 1)
}

func TestNewValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := matrix.RandomOrthogonal(rng, 3)
	tvec := []float64{0.1, -0.2, 0.3}

	if _, err := New(r, tvec, 0.05); err != nil {
		t.Fatalf("valid perturbation rejected: %v", err)
	}
	if _, err := New(r, tvec[:2], 0.05); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("short translation err = %v", err)
	}
	if _, err := New(r, tvec, -1); !errors.Is(err, ErrBadNoise) {
		t.Errorf("negative sigma err = %v", err)
	}
	if _, err := New(matrix.New(2, 3), []float64{1, 1}, 0); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("non-square err = %v", err)
	}
	notOrtho := matrix.NewFromRows([][]float64{{1, 1, 0}, {0, 1, 0}, {0, 0, 1}})
	if _, err := New(notOrtho, tvec, 0); !errors.Is(err, ErrNotOrthogonal) {
		t.Errorf("non-orthogonal err = %v", err)
	}
}

func TestNewCopiesInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	r := matrix.RandomOrthogonal(rng, 2)
	tvec := []float64{0.5, -0.5}
	p, err := New(r, tvec, 0)
	if err != nil {
		t.Fatal(err)
	}
	tvec[0] = 99
	r.Set(0, 0, 99)
	if p.T[0] == 99 || p.R.At(0, 0) == 99 {
		t.Fatal("New aliased caller-owned inputs")
	}
}

func TestNewRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p, err := NewRandom(rng, 5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Dim() != 5 {
		t.Fatalf("Dim = %d, want 5", p.Dim())
	}
	if !p.R.IsOrthogonal(1e-10) {
		t.Fatal("random rotation not orthogonal")
	}
	for _, v := range p.T {
		if v < -1 || v > 1 {
			t.Fatalf("translation %v out of [-1,1]", v)
		}
	}
	if _, err := NewRandom(rng, 0, 0.1); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("d=0 err = %v", err)
	}
	if _, err := NewRandom(rng, 3, -0.1); !errors.Is(err, ErrBadNoise) {
		t.Errorf("negative sigma err = %v", err)
	}
}

func TestApplyRecoverNoiseless(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p, err := NewRandom(rng, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := testData(rng, 4, 30)
	y, noise, err := p.Apply(rng, x)
	if err != nil {
		t.Fatal(err)
	}
	if noise.MaxAbs() != 0 {
		t.Fatal("zero-sigma perturbation produced noise")
	}
	back, err := p.Recover(y)
	if err != nil {
		t.Fatal(err)
	}
	if !back.EqualApprox(x, 1e-10) {
		t.Fatal("Recover did not invert a noiseless perturbation")
	}
}

func TestApplyWithNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const sigma = 0.1
	p, err := NewRandom(rng, 3, sigma)
	if err != nil {
		t.Fatal(err)
	}
	x := testData(rng, 3, 500)
	y, noise, err := p.Apply(rng, x)
	if err != nil {
		t.Fatal(err)
	}
	// Y − Δ must equal the noiseless image exactly.
	clean, err := p.ApplyNoiseless(x)
	if err != nil {
		t.Fatal(err)
	}
	if !y.Sub(noise).EqualApprox(clean, 1e-10) {
		t.Fatal("Y − Δ != R·X + Ψ")
	}
	// Recover leaves the rotated noise behind: X̂ − X = RᵀΔ.
	back, err := p.Recover(y)
	if err != nil {
		t.Fatal(err)
	}
	resid := back.Sub(x)
	want := p.R.T().Mul(noise)
	if !resid.EqualApprox(want, 1e-10) {
		t.Fatal("recovery residual is not RᵀΔ")
	}
}

func TestApplyDimMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p, _ := NewRandom(rng, 3, 0)
	x := testData(rng, 4, 5)
	if _, _, err := p.Apply(rng, x); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("Apply err = %v", err)
	}
	if _, err := p.ApplyNoiseless(x); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("ApplyNoiseless err = %v", err)
	}
	if _, err := p.Recover(x); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("Recover err = %v", err)
	}
}

func TestWithoutNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p, _ := NewRandom(rng, 3, 0.5)
	q := p.WithoutNoise()
	if q.NoiseSigma != 0 {
		t.Fatal("WithoutNoise kept noise")
	}
	if p.NoiseSigma != 0.5 {
		t.Fatal("WithoutNoise mutated the receiver")
	}
	if !q.R.Equal(p.R) {
		t.Fatal("WithoutNoise changed rotation")
	}
}

func TestCloneEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	p, _ := NewRandom(rng, 4, 0.2)
	q := p.Clone()
	if !p.Equal(q, 1e-12) {
		t.Fatal("clone not equal")
	}
	q.T[0] += 1
	if p.Equal(q, 1e-12) {
		t.Fatal("Equal missed translation change")
	}
	if p.T[0] == q.T[0] {
		t.Fatal("clone aliased translation")
	}
	r, _ := NewRandom(rng, 4, 0.3)
	if p.Equal(r, 1e-12) {
		t.Fatal("Equal missed sigma change")
	}
	s, _ := NewRandom(rng, 5, 0.2)
	if p.Equal(s, 1e-12) {
		t.Fatal("Equal missed dim change")
	}
}

func TestTranslationAffectsAllColumns(t *testing.T) {
	r := matrix.Identity(2)
	p, err := New(r, []float64{1, -2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := matrix.NewFromRows([][]float64{{0, 10}, {0, 10}})
	y, err := p.ApplyNoiseless(x)
	if err != nil {
		t.Fatal(err)
	}
	want := matrix.NewFromRows([][]float64{{1, 11}, {-2, 8}})
	if !y.EqualApprox(want, 1e-12) {
		t.Fatalf("translation wrong: %v", y)
	}
}
