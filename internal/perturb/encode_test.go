package perturb

import (
	"errors"
	"math/rand"
	"testing"
)

func TestPerturbationMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p, err := NewRandom(rng, 6, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var q Perturbation
	if err := q.UnmarshalBinary(buf); err != nil {
		t.Fatal(err)
	}
	if !p.Equal(&q, 1e-12) {
		t.Fatal("round trip changed the perturbation")
	}
}

func TestAdaptorMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	gi, _ := NewRandom(rng, 4, 0)
	gt, _ := NewRandom(rng, 4, 0)
	a, err := NewAdaptor(gi, gt)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var b Adaptor
	if err := b.UnmarshalBinary(buf); err != nil {
		t.Fatal(err)
	}
	if !a.Rot.EqualApprox(b.Rot, 1e-12) {
		t.Fatal("rotation changed in round trip")
	}
	for i := range a.Trans {
		if a.Trans[i] != b.Trans[i] {
			t.Fatal("translation changed in round trip")
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	var p Perturbation
	var a Adaptor
	cases := [][]byte{nil, {1}, make([]byte, 64)}
	for i, data := range cases {
		if err := p.UnmarshalBinary(data); !errors.Is(err, ErrBadEncoding) {
			t.Errorf("case %d: perturbation err = %v, want ErrBadEncoding", i, err)
		}
		if err := a.UnmarshalBinary(data); !errors.Is(err, ErrBadEncoding) {
			t.Errorf("case %d: adaptor err = %v, want ErrBadEncoding", i, err)
		}
	}
}

func TestUnmarshalRejectsTamperedRotation(t *testing.T) {
	// A tampered (non-orthogonal) rotation must be rejected at decode time:
	// the bytes may come from an untrusted peer.
	rng := rand.New(rand.NewSource(3))
	p, _ := NewRandom(rng, 3, 0.1)
	buf, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Flip the exponent byte of the last rotation element so the matrix is
	// no longer orthogonal.
	buf[len(buf)-8] ^= 0x7F
	var q Perturbation
	if err := q.UnmarshalBinary(buf); !errors.Is(err, ErrBadEncoding) {
		t.Fatalf("tampered perturbation err = %v, want ErrBadEncoding", err)
	}
}

func TestUnmarshalRejectsTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	gi, _ := NewRandom(rng, 3, 0)
	gt, _ := NewRandom(rng, 3, 0)
	a, _ := NewAdaptor(gi, gt)
	buf, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, 8, len(buf) / 2} {
		var b Adaptor
		if err := b.UnmarshalBinary(buf[:len(buf)-cut]); !errors.Is(err, ErrBadEncoding) {
			t.Errorf("truncated by %d: err = %v, want ErrBadEncoding", cut, err)
		}
	}
}
