package perturb

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

func TestAdaptorEquation(t *testing.T) {
	// The core §3 identity: for noiseless data,
	// A_it(G_i(X)) == G_t(X).
	rng := rand.New(rand.NewSource(1))
	gi, _ := NewRandom(rng, 5, 0)
	gt, _ := NewRandom(rng, 5, 0)
	x := testData(rng, 5, 40)

	yi, _, err := gi.Apply(rng, x)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAdaptor(gi, gt)
	if err != nil {
		t.Fatal(err)
	}
	adapted, err := a.Apply(yi)
	if err != nil {
		t.Fatal(err)
	}
	want, err := gt.ApplyNoiseless(x)
	if err != nil {
		t.Fatal(err)
	}
	if !adapted.EqualApprox(want, 1e-9) {
		t.Fatal("A_it(G_i(X)) != G_t(X) for noiseless source")
	}
}

func TestAdaptorInheritedNoiseIdentity(t *testing.T) {
	// With source noise Δ_i: A_it(G_i(X)) == G_t(X) + R_it·Δ_i.
	// This is the paper's complementary-noise equivalence: not removing
	// R_it·Δ_i in the target space == inheriting Δ_i from the source space.
	rng := rand.New(rand.NewSource(2))
	gi, _ := NewRandom(rng, 4, 0.2)
	gt, _ := NewRandom(rng, 4, 0)
	x := testData(rng, 4, 60)

	yi, noise, err := gi.Apply(rng, x)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAdaptor(gi, gt)
	if err != nil {
		t.Fatal(err)
	}
	adapted, err := a.Apply(yi)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := gt.ApplyNoiseless(x)
	if err != nil {
		t.Fatal(err)
	}
	want := clean.Add(a.Rot.Mul(noise))
	if !adapted.EqualApprox(want, 1e-9) {
		t.Fatal("adapted data != G_t(X) + R_it·Δ_i")
	}
}

func TestAdaptorRotationIsOrthogonal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	gi, _ := NewRandom(rng, 6, 0)
	gt, _ := NewRandom(rng, 6, 0)
	a, err := NewAdaptor(gi, gt)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Rot.IsOrthogonal(1e-9) {
		t.Fatal("R_it = R_t·R_iᵀ must be orthogonal")
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestAdaptorDimMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g3, _ := NewRandom(rng, 3, 0)
	g4, _ := NewRandom(rng, 4, 0)
	if _, err := NewAdaptor(g3, g4); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("NewAdaptor err = %v", err)
	}
	a, _ := NewAdaptor(g3, g3.Clone())
	if _, err := a.Apply(testData(rng, 4, 2)); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("Apply err = %v", err)
	}
}

func TestIdentityAdaptor(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := IdentityAdaptor(3)
	x := testData(rng, 3, 10)
	y, err := a.Apply(x)
	if err != nil {
		t.Fatal(err)
	}
	if !y.EqualApprox(x, 1e-12) {
		t.Fatal("identity adaptor changed data")
	}
	// Self-adaptor == identity.
	g, _ := NewRandom(rng, 3, 0)
	self, err := NewAdaptor(g, g)
	if err != nil {
		t.Fatal(err)
	}
	if !self.Rot.EqualApprox(matrix.Identity(3), 1e-9) {
		t.Fatal("self adaptor rotation != I")
	}
	for _, v := range self.Trans {
		if v > 1e-9 || v < -1e-9 {
			t.Fatal("self adaptor translation != 0")
		}
	}
}

func TestAdaptorCompose(t *testing.T) {
	// Composition law: A_{t→u} ∘ A_{i→t} == A_{i→u}.
	rng := rand.New(rand.NewSource(6))
	gi, _ := NewRandom(rng, 4, 0)
	gt, _ := NewRandom(rng, 4, 0)
	gu, _ := NewRandom(rng, 4, 0)
	ait, _ := NewAdaptor(gi, gt)
	atu, _ := NewAdaptor(gt, gu)
	aiu, _ := NewAdaptor(gi, gu)

	composed, err := ait.Compose(atu)
	if err != nil {
		t.Fatal(err)
	}
	if !composed.Rot.EqualApprox(aiu.Rot, 1e-9) {
		t.Fatal("composed rotation != direct adaptor rotation")
	}
	for i := range composed.Trans {
		if d := composed.Trans[i] - aiu.Trans[i]; d > 1e-9 || d < -1e-9 {
			t.Fatal("composed translation != direct adaptor translation")
		}
	}
	if _, err := ait.Compose(IdentityAdaptor(5)); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("Compose dim err = %v", err)
	}
}

func TestAdaptorRoundTrip(t *testing.T) {
	// Adapting i→t then t→i restores the original perturbed data.
	rng := rand.New(rand.NewSource(7))
	gi, _ := NewRandom(rng, 5, 0.1)
	gt, _ := NewRandom(rng, 5, 0)
	x := testData(rng, 5, 25)
	yi, _, _ := gi.Apply(rng, x)

	fwd, _ := NewAdaptor(gi, gt)
	bwd, _ := NewAdaptor(gt, gi)
	there, err := fwd.Apply(yi)
	if err != nil {
		t.Fatal(err)
	}
	back, err := bwd.Apply(there)
	if err != nil {
		t.Fatal(err)
	}
	if !back.EqualApprox(yi, 1e-9) {
		t.Fatal("i→t→i round trip changed the data")
	}
}

func TestAdaptorValidate(t *testing.T) {
	tests := []struct {
		name string
		a    *Adaptor
		ok   bool
	}{
		{"nil rot", &Adaptor{Trans: []float64{1}}, false},
		{"non-square", &Adaptor{Rot: matrix.New(2, 3), Trans: []float64{1, 2}}, false},
		{"bad trans len", &Adaptor{Rot: matrix.Identity(2), Trans: []float64{1}}, false},
		{"not orthogonal", &Adaptor{Rot: matrix.NewFromRows([][]float64{{2, 0}, {0, 2}}), Trans: []float64{0, 0}}, false},
		{"valid", IdentityAdaptor(3), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.a.Validate()
			if tt.ok && err != nil {
				t.Errorf("Validate = %v, want nil", err)
			}
			if !tt.ok && err == nil {
				t.Error("Validate accepted an invalid adaptor")
			}
		})
	}
}

func TestAdaptorClone(t *testing.T) {
	a := IdentityAdaptor(2)
	b := a.Clone()
	b.Trans[0] = 9
	b.Rot.Set(0, 0, 9)
	if a.Trans[0] != 0 || a.Rot.At(0, 0) != 1 {
		t.Fatal("Clone aliased storage")
	}
}

func TestPropAdaptorEquationQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(6)
		n := 5 + rng.Intn(20)
		gi, err := NewRandom(rng, d, 0)
		if err != nil {
			return false
		}
		gt, err := NewRandom(rng, d, 0)
		if err != nil {
			return false
		}
		x := testData(rng, d, n)
		yi, _, err := gi.Apply(rng, x)
		if err != nil {
			return false
		}
		a, err := NewAdaptor(gi, gt)
		if err != nil {
			return false
		}
		adapted, err := a.Apply(yi)
		if err != nil {
			return false
		}
		want, err := gt.ApplyNoiseless(x)
		if err != nil {
			return false
		}
		return adapted.EqualApprox(want, 1e-8)
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(99))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropRecoverInvertsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(6)
		p, err := NewRandom(rng, d, 0)
		if err != nil {
			return false
		}
		x := testData(rng, d, 10)
		y, _, err := p.Apply(rng, x)
		if err != nil {
			return false
		}
		back, err := p.Recover(y)
		if err != nil {
			return false
		}
		return back.EqualApprox(x, 1e-8)
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(100))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
