package perturb

import (
	"fmt"
	"math"
)

// Compose returns the single perturbation equivalent to applying first and
// then second:
//
//	G₂(G₁(X)) = R₂(R₁X + Ψ₁ + Δ₁) + Ψ₂ + Δ₂
//	          = (R₂R₁)X + (R₂t₁ + t₂)·1ᵀ + (R₂Δ₁ + Δ₂)
//
// R₂Δ₁ is an orthogonal rotation of i.i.d. isotropic Gaussian noise and is
// therefore identically distributed with Δ₁, so the composite noise is
// i.i.d. Gaussian with σ = √(σ₁² + σ₂²). The composite is exact for the
// deterministic part and exact-in-distribution for the noise.
func Compose(first, second *Perturbation) (*Perturbation, error) {
	if first.Dim() != second.Dim() {
		return nil, fmt.Errorf("%w: compose dims %d vs %d", ErrDimMismatch, first.Dim(), second.Dim())
	}
	r := second.R.Mul(first.R)
	rt := second.R.MulVec(first.T)
	t := make([]float64, len(rt))
	for i := range t {
		t[i] = rt[i] + second.T[i]
	}
	sigma := math.Sqrt(first.NoiseSigma*first.NoiseSigma + second.NoiseSigma*second.NoiseSigma)
	return New(r, t, sigma)
}

// Inverse returns the perturbation undoing the deterministic part of p:
// Inverse(p)(p(X)) == X for noiseless p. The noise component cannot be
// inverted, so the result always carries σ = 0 and callers inverting noisy
// data get X + R⁻¹Δ.
func (p *Perturbation) Inverse() (*Perturbation, error) {
	rInv := p.R.T()
	t := rInv.MulVec(p.T)
	for i := range t {
		t[i] = -t[i]
	}
	return New(rInv, t, 0)
}
