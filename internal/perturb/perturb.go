// Package perturb implements geometric data perturbation as defined in the
// paper's §2: G(X) = R·X + Ψ + Δ, where X is the normalized dataset laid out
// d×N (one column per record), R is a d×d random orthogonal matrix,
// Ψ = t·1ᵀ is a random translation with t ~ U[-1,1]^d, and Δ is an i.i.d.
// additive noise matrix used to perturb distances.
//
// It also implements the space adaptors of §3 that re-express data perturbed
// in one space in another party's space without ever exposing the raw data:
// R_it = R_t·R_i⁻¹ and Ψ_it = Ψ_t − R_t·R_i⁻¹·Ψ_i.
package perturb

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/matrix"
)

// Orthogonality tolerance for validating rotation components.
const orthoTol = 1e-8

// Errors returned by the perturbation engine.
var (
	ErrNotOrthogonal = errors.New("perturb: rotation component is not orthogonal")
	ErrDimMismatch   = errors.New("perturb: dimension mismatch")
	ErrBadNoise      = errors.New("perturb: negative noise level")
)

// Perturbation is one geometric perturbation G : (R, t) with a noise level.
// R is orthogonal by construction; the inverse rotation is therefore Rᵀ.
type Perturbation struct {
	R          *matrix.Dense // d×d orthogonal rotation
	T          []float64     // length-d translation vector t
	NoiseSigma float64       // σ of the i.i.d. Gaussian noise Δ
}

// New validates and assembles a perturbation.
func New(r *matrix.Dense, t []float64, noiseSigma float64) (*Perturbation, error) {
	if r.Rows() != r.Cols() {
		return nil, fmt.Errorf("%w: rotation is %dx%d", ErrDimMismatch, r.Rows(), r.Cols())
	}
	if len(t) != r.Rows() {
		return nil, fmt.Errorf("%w: translation length %d vs dimension %d", ErrDimMismatch, len(t), r.Rows())
	}
	if noiseSigma < 0 {
		return nil, fmt.Errorf("%w: σ=%v", ErrBadNoise, noiseSigma)
	}
	if !r.IsOrthogonal(orthoTol) {
		return nil, ErrNotOrthogonal
	}
	return &Perturbation{R: r.Clone(), T: append([]float64(nil), t...), NoiseSigma: noiseSigma}, nil
}

// NewRandom draws a perturbation for dimension d: Haar-random orthogonal R
// and t ~ U[-1,1]^d, with the given noise level.
func NewRandom(rng *rand.Rand, d int, noiseSigma float64) (*Perturbation, error) {
	if d <= 0 {
		return nil, fmt.Errorf("%w: dimension %d", ErrDimMismatch, d)
	}
	if noiseSigma < 0 {
		return nil, fmt.Errorf("%w: σ=%v", ErrBadNoise, noiseSigma)
	}
	t := make([]float64, d)
	for i := range t {
		t[i] = rng.Float64()*2 - 1
	}
	return &Perturbation{
		R:          matrix.RandomOrthogonal(rng, d),
		T:          t,
		NoiseSigma: noiseSigma,
	}, nil
}

// Dim returns the data dimensionality the perturbation applies to.
func (p *Perturbation) Dim() int { return p.R.Rows() }

// Clone returns a deep copy.
func (p *Perturbation) Clone() *Perturbation {
	return &Perturbation{
		R:          p.R.Clone(),
		T:          append([]float64(nil), p.T...),
		NoiseSigma: p.NoiseSigma,
	}
}

// WithoutNoise returns a copy with σ = 0; the SAP target perturbation "has
// no noise component".
func (p *Perturbation) WithoutNoise() *Perturbation {
	c := p.Clone()
	c.NoiseSigma = 0
	return c
}

// Apply perturbs a d×N data matrix: Y = R·X + Ψ + Δ, drawing Δ from rng.
// The drawn noise matrix is returned alongside Y so callers (tests,
// protocol bookkeeping) can reason about the inherited-noise identity.
func (p *Perturbation) Apply(rng *rand.Rand, x *matrix.Dense) (y, noise *matrix.Dense, err error) {
	if x.Rows() != p.Dim() {
		return nil, nil, fmt.Errorf("%w: data is %dx%d, perturbation dim %d",
			ErrDimMismatch, x.Rows(), x.Cols(), p.Dim())
	}
	y = p.R.Mul(x)
	addTranslation(y, p.T)
	noise = matrix.New(x.Rows(), x.Cols())
	if p.NoiseSigma > 0 {
		noise = matrix.RandomGaussian(rng, x.Rows(), x.Cols(), p.NoiseSigma)
		y = y.Add(noise)
	}
	return y, noise, nil
}

// ApplyNoiseless computes R·X + Ψ without drawing noise, used for target-
// space references and test-set transformation.
func (p *Perturbation) ApplyNoiseless(x *matrix.Dense) (*matrix.Dense, error) {
	if x.Rows() != p.Dim() {
		return nil, fmt.Errorf("%w: data is %dx%d, perturbation dim %d",
			ErrDimMismatch, x.Rows(), x.Cols(), p.Dim())
	}
	y := p.R.Mul(x)
	addTranslation(y, p.T)
	return y, nil
}

// Recover inverts the rotation and translation: X̂ = R⁻¹(Y − Ψ) = Rᵀ(Y − Ψ).
// Additive noise cannot be removed, so X̂ = X + RᵀΔ for noisy data.
func (p *Perturbation) Recover(y *matrix.Dense) (*matrix.Dense, error) {
	if y.Rows() != p.Dim() {
		return nil, fmt.Errorf("%w: data is %dx%d, perturbation dim %d",
			ErrDimMismatch, y.Rows(), y.Cols(), p.Dim())
	}
	shifted := y.Clone()
	negT := make([]float64, len(p.T))
	for i, v := range p.T {
		negT[i] = -v
	}
	addTranslation(shifted, negT)
	return p.R.T().Mul(shifted), nil
}

// addTranslation adds t to every column of y in place (Ψ = t·1ᵀ).
func addTranslation(y *matrix.Dense, t []float64) {
	for i := 0; i < y.Rows(); i++ {
		ti := t[i]
		if ti == 0 {
			continue
		}
		for j := 0; j < y.Cols(); j++ {
			y.Set(i, j, y.At(i, j)+ti)
		}
	}
}

// Equal reports whether two perturbations have identical parameters within
// tolerance eps (noise levels compared exactly).
func (p *Perturbation) Equal(q *Perturbation, eps float64) bool {
	if p.Dim() != q.Dim() || p.NoiseSigma != q.NoiseSigma {
		return false
	}
	if !p.R.EqualApprox(q.R, eps) {
		return false
	}
	for i := range p.T {
		if d := p.T[i] - q.T[i]; d > eps || d < -eps {
			return false
		}
	}
	return true
}
