package perturb

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestComposeMatchesSequentialApplication(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g1, _ := NewRandom(rng, 4, 0)
	g2, _ := NewRandom(rng, 4, 0)
	x := testData(rng, 4, 20)

	y1, err := g1.ApplyNoiseless(x)
	if err != nil {
		t.Fatal(err)
	}
	y2, err := g2.ApplyNoiseless(y1)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := Compose(g1, g2)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := comp.ApplyNoiseless(x)
	if err != nil {
		t.Fatal(err)
	}
	if !direct.EqualApprox(y2, 1e-9) {
		t.Fatal("Compose(g1,g2)(X) != g2(g1(X))")
	}
}

func TestComposeNoiseLevels(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g1, _ := NewRandom(rng, 3, 0.3)
	g2, _ := NewRandom(rng, 3, 0.4)
	comp, err := Compose(g1, g2)
	if err != nil {
		t.Fatal(err)
	}
	if d := comp.NoiseSigma - 0.5; d > 1e-12 || d < -1e-12 {
		t.Fatalf("composite σ = %v, want 0.5 (√(0.09+0.16))", comp.NoiseSigma)
	}
}

func TestComposeDimMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g3, _ := NewRandom(rng, 3, 0)
	g4, _ := NewRandom(rng, 4, 0)
	if _, err := Compose(g3, g4); !errors.Is(err, ErrDimMismatch) {
		t.Fatalf("err = %v", err)
	}
}

func TestInverseUndoesPerturbation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g, _ := NewRandom(rng, 5, 0)
	inv, err := g.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	x := testData(rng, 5, 15)
	y, err := g.ApplyNoiseless(x)
	if err != nil {
		t.Fatal(err)
	}
	back, err := inv.ApplyNoiseless(y)
	if err != nil {
		t.Fatal(err)
	}
	if !back.EqualApprox(x, 1e-9) {
		t.Fatal("Inverse(g)(g(X)) != X")
	}
	if inv.NoiseSigma != 0 {
		t.Fatal("inverse must carry no noise")
	}
}

func TestPropComposeWithInverseIsIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(5)
		g, err := NewRandom(rng, d, 0)
		if err != nil {
			return false
		}
		inv, err := g.Inverse()
		if err != nil {
			return false
		}
		id, err := Compose(g, inv)
		if err != nil {
			return false
		}
		x := testData(rng, d, 8)
		y, err := id.ApplyNoiseless(x)
		if err != nil {
			return false
		}
		return y.EqualApprox(x, 1e-8)
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(42))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropComposeAssociative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(4)
		a, _ := NewRandom(rng, d, 0)
		b, _ := NewRandom(rng, d, 0)
		c, _ := NewRandom(rng, d, 0)
		ab, err := Compose(a, b)
		if err != nil {
			return false
		}
		abc1, err := Compose(ab, c)
		if err != nil {
			return false
		}
		bc, err := Compose(b, c)
		if err != nil {
			return false
		}
		abc2, err := Compose(a, bc)
		if err != nil {
			return false
		}
		return abc1.Equal(abc2, 1e-9)
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(43))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestComposeRelatesToAdaptor(t *testing.T) {
	// The adaptor from G_i to G_t is exactly Compose(Inverse(G_i), G_t) on
	// the deterministic part.
	rng := rand.New(rand.NewSource(5))
	gi, _ := NewRandom(rng, 4, 0)
	gt, _ := NewRandom(rng, 4, 0)
	adaptor, err := NewAdaptor(gi, gt)
	if err != nil {
		t.Fatal(err)
	}
	inv, err := gi.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	comp, err := Compose(inv, gt)
	if err != nil {
		t.Fatal(err)
	}
	if !comp.R.EqualApprox(adaptor.Rot, 1e-9) {
		t.Fatal("composite rotation != adaptor rotation")
	}
	for i := range comp.T {
		if d := comp.T[i] - adaptor.Trans[i]; d > 1e-9 || d < -1e-9 {
			t.Fatal("composite translation != adaptor translation")
		}
	}
}
