package perturb

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

// TestNoiseLadderCorrelation pins the defining property of the multi-level
// generator: lower-trust noise equals higher-trust noise plus an independent
// increment, so the difference Δ_j − Δ_i has variance σ_j² − σ_i² (not
// σ_i² + σ_j² as independent draws would give).
func TestNoiseLadderCorrelation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sigmas := []float64{0.1, 0.3, 0.8}
	d, n := 4, 20000
	ladder, err := NoiseLadder(rng, d, n, sigmas)
	if err != nil {
		t.Fatal(err)
	}
	if len(ladder) != len(sigmas) {
		t.Fatalf("ladder has %d levels, want %d", len(ladder), len(sigmas))
	}
	variance := func(m *matrix.Dense) float64 {
		var sum, sq float64
		cnt := float64(m.Rows() * m.Cols())
		for i := 0; i < m.Rows(); i++ {
			for j := 0; j < m.Cols(); j++ {
				v := m.At(i, j)
				sum += v
				sq += v * v
			}
		}
		mean := sum / cnt
		return sq/cnt - mean*mean
	}
	for i, s := range sigmas {
		got := variance(ladder[i])
		if want := s * s; math.Abs(got-want) > 0.05*want+1e-3 {
			t.Errorf("level %d variance %.4f, want ~%.4f", i, got, want)
		}
	}
	for i := 0; i < len(sigmas); i++ {
		for j := i + 1; j < len(sigmas); j++ {
			diff := ladder[j].Sub(ladder[i])
			got := variance(diff)
			want := sigmas[j]*sigmas[j] - sigmas[i]*sigmas[i]
			indep := sigmas[j]*sigmas[j] + sigmas[i]*sigmas[i]
			if math.Abs(got-want) > 0.05*indep+1e-3 {
				t.Errorf("Δ_%d−Δ_%d variance %.4f, want ~%.4f (independent draws would give %.4f)",
					j, i, got, want, indep)
			}
		}
	}
}

// TestNoiseLadderEqualSigmasShareNoise verifies that equal adjacent sigmas
// yield the identical matrix: no increment, perfect correlation.
func TestNoiseLadderEqualSigmasShareNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ladder, err := NoiseLadder(rng, 3, 50, []float64{0.2, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if !ladder[0].EqualApprox(ladder[1], 0) {
		t.Fatal("equal sigmas must share the identical noise matrix")
	}
}

// TestNoiseLadderRejectsBadSigmas covers the ladder validation: negative and
// decreasing sigmas, empty ladders, bad shapes.
func TestNoiseLadderRejectsBadSigmas(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, sigmas := range [][]float64{{-0.1}, {0.5, 0.2}, {}} {
		if _, err := NoiseLadder(rng, 2, 4, sigmas); !errors.Is(err, ErrBadLadder) {
			t.Errorf("sigmas %v: err %v, want ErrBadLadder", sigmas, err)
		}
	}
	if _, err := NoiseLadder(rng, 0, 4, []float64{0.1}); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("zero dimension: err %v, want ErrDimMismatch", err)
	}
}

// TestApplyLevelsSharedGeometry verifies every view shares the base
// transform: view i minus its ladder noise is exactly R·X + Ψ, and a
// zero-sigma first view equals the noiseless transform.
func TestApplyLevelsSharedGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p, err := NewRandom(rng, 3, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	x := matrix.RandomGaussian(rng, 3, 40, 1)
	views, err := p.ApplyLevels(rng, x, []float64{0, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	base, err := p.ApplyNoiseless(x)
	if err != nil {
		t.Fatal(err)
	}
	if !views[0].EqualApprox(base, 1e-12) {
		t.Fatal("zero-sigma view must equal the noiseless transform")
	}
	if views[1].EqualApprox(base, 1e-9) {
		t.Fatal("noisy view must differ from the noiseless transform")
	}
	if got, want := views[1].Rows(), 3; got != want {
		t.Fatalf("view shape rows %d, want %d", got, want)
	}
}
