package perturb

import (
	"fmt"

	"repro/internal/matrix"
)

// Adaptor is the space adaptor A_it = <R_it, Ψ_it> of the paper's §3. It
// re-expresses data perturbed under a source space G_i in a target space
// G_t:
//
//	Y_{i→t} = R_it·Y_i + Ψ_it − R_it·Δ_i
//
// with R_it = R_t·R_i⁻¹ and Ψ_it = Ψ_t − R_t·R_i⁻¹·Ψ_i. The third term (the
// "complementary noise") is never shipped: leaving it in place in the target
// space is equivalent to inheriting the source noise Δ_i, which is exactly
// what SAP wants — the target perturbation itself carries no noise.
type Adaptor struct {
	Rot   *matrix.Dense // R_it, d×d orthogonal
	Trans []float64     // Ψ_it translation vector
}

// NewAdaptor computes the space adaptor from a source perturbation to a
// target perturbation of the same dimension.
func NewAdaptor(from, to *Perturbation) (*Adaptor, error) {
	if from.Dim() != to.Dim() {
		return nil, fmt.Errorf("%w: source dim %d vs target dim %d", ErrDimMismatch, from.Dim(), to.Dim())
	}
	// R_i is orthogonal, so R_i⁻¹ = R_iᵀ.
	rot := to.R.Mul(from.R.T())
	rotFromT := rot.MulVec(from.T)
	trans := make([]float64, len(to.T))
	for i := range trans {
		trans[i] = to.T[i] - rotFromT[i]
	}
	return &Adaptor{Rot: rot, Trans: trans}, nil
}

// IdentityAdaptor returns the adaptor that maps a space to itself.
func IdentityAdaptor(d int) *Adaptor {
	return &Adaptor{Rot: matrix.Identity(d), Trans: make([]float64, d)}
}

// Dim returns the adaptor's dimensionality.
func (a *Adaptor) Dim() int { return a.Rot.Rows() }

// Apply maps perturbed data from the source space into the target space:
// R_it·Y + Ψ_it. For noisy source data the result inherits the rotated
// source noise R_it·Δ_i (the complementary-noise identity).
func (a *Adaptor) Apply(y *matrix.Dense) (*matrix.Dense, error) {
	if y.Rows() != a.Dim() {
		return nil, fmt.Errorf("%w: data is %dx%d, adaptor dim %d",
			ErrDimMismatch, y.Rows(), y.Cols(), a.Dim())
	}
	out := a.Rot.Mul(y)
	addTranslation(out, a.Trans)
	return out, nil
}

// Compose returns the adaptor equivalent to applying a first, then b:
// (b∘a)(Y) = b.Rot·a.Rot·Y + b.Rot·a.Trans + b.Trans. Composition lets a
// chain of space adaptations collapse into one, which the tests use to
// verify the adaptor algebra is a groupoid action.
func (a *Adaptor) Compose(b *Adaptor) (*Adaptor, error) {
	if a.Dim() != b.Dim() {
		return nil, fmt.Errorf("%w: compose dims %d vs %d", ErrDimMismatch, a.Dim(), b.Dim())
	}
	rot := b.Rot.Mul(a.Rot)
	bta := b.Rot.MulVec(a.Trans)
	trans := make([]float64, a.Dim())
	for i := range trans {
		trans[i] = bta[i] + b.Trans[i]
	}
	return &Adaptor{Rot: rot, Trans: trans}, nil
}

// Clone returns a deep copy.
func (a *Adaptor) Clone() *Adaptor {
	return &Adaptor{Rot: a.Rot.Clone(), Trans: append([]float64(nil), a.Trans...)}
}

// Validate checks the structural invariants an adaptor received from the
// network must satisfy before use.
func (a *Adaptor) Validate() error {
	if a.Rot == nil {
		return fmt.Errorf("%w: nil rotation", ErrDimMismatch)
	}
	if a.Rot.Rows() != a.Rot.Cols() {
		return fmt.Errorf("%w: rotation %dx%d", ErrDimMismatch, a.Rot.Rows(), a.Rot.Cols())
	}
	if len(a.Trans) != a.Rot.Rows() {
		return fmt.Errorf("%w: translation length %d vs dim %d", ErrDimMismatch, len(a.Trans), a.Rot.Rows())
	}
	if !a.Rot.IsOrthogonal(orthoTol) {
		return ErrNotOrthogonal
	}
	return nil
}
