package perturb

// Multi-level trust perturbation (PAPERS.md, Li et al., "Enabling Multi-level
// Trust in Privacy Preserving Data Mining"): one dataset served at several
// trust levels, each level seeing the shared geometric transform plus its own
// additive noise. The defining constraint is that the per-level noise is
// drawn jointly, not independently — level i+1's noise matrix is level i's
// plus an independent Gaussian increment of variance σ_{i+1}² − σ_i². Where
// two levels overlap their noise is identical, so averaging several views
// cancels nothing: a coalition pooling any set of views can at best recover
// the least-noisy member view, never less noise than that. Independent draws
// would break exactly this — averaging k equal-σ views divides the noise
// variance by k — which is why the ladder below is the only noise generator
// the per-view serving path uses.

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/matrix"
)

// ErrBadLadder flags a multi-level noise request whose sigmas are not a
// valid trust ladder (non-negative, non-decreasing: lower trust never gets
// less noise than higher trust).
var ErrBadLadder = errors.New("perturb: trust-ladder sigmas must be non-negative and non-decreasing")

// NoiseLadder draws the correlated multi-level noise matrices: one d×n
// matrix per sigma, ordered highest trust (smallest σ) first. The i-th
// matrix has i.i.d. N(0, σ_i²) entries, and is constructed as the (i−1)-th
// matrix plus an independent increment of variance σ_i² − σ_{i−1}², so every
// pair of levels is maximally correlated. Sigmas must be non-negative and
// non-decreasing; equal adjacent sigmas share the identical matrix.
func NoiseLadder(rng *rand.Rand, d, n int, sigmas []float64) ([]*matrix.Dense, error) {
	if d <= 0 || n <= 0 {
		return nil, fmt.Errorf("%w: ladder shape %dx%d", ErrDimMismatch, d, n)
	}
	if len(sigmas) == 0 {
		return nil, fmt.Errorf("%w: no levels", ErrBadLadder)
	}
	out := make([]*matrix.Dense, len(sigmas))
	cur := matrix.New(d, n)
	prevVar := 0.0
	for i, s := range sigmas {
		if s < 0 {
			return nil, fmt.Errorf("%w: σ_%d=%v", ErrBadLadder, i, s)
		}
		v := s * s
		if v < prevVar {
			return nil, fmt.Errorf("%w: σ_%d=%v after σ=%v", ErrBadLadder, i, s, math.Sqrt(prevVar))
		}
		if inc := v - prevVar; inc > 0 {
			cur = cur.Add(matrix.RandomGaussian(rng, d, n, math.Sqrt(inc)))
		}
		prevVar = v
		out[i] = cur.Clone()
	}
	return out, nil
}

// ApplyLevels perturbs a d×N data matrix into an ordered set of trust views
// sharing one rotation and translation: views[i] = R·X + Ψ + Δ_i, with the
// Δ_i drawn by NoiseLadder. All views live in the same target space — a
// query transformed with the shared G works against any view's model — and
// differ only in how much correlated noise blurs the training geometry. The
// ladder's sigmas are absolute per-view noise levels; p's own NoiseSigma is
// not used.
func (p *Perturbation) ApplyLevels(rng *rand.Rand, x *matrix.Dense, sigmas []float64) ([]*matrix.Dense, error) {
	base, err := p.ApplyNoiseless(x)
	if err != nil {
		return nil, err
	}
	ladder, err := NoiseLadder(rng, x.Rows(), x.Cols(), sigmas)
	if err != nil {
		return nil, err
	}
	views := make([]*matrix.Dense, len(ladder))
	for i, noise := range ladder {
		views[i] = base.Add(noise)
	}
	return views, nil
}
