package perturb

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/matrix"
)

// ErrBadEncoding is returned when decoding malformed perturbation bytes.
var ErrBadEncoding = errors.New("perturb: bad encoding")

const (
	perturbationMagic uint32 = 0x53415050 // "SAPP"
	adaptorMagic      uint32 = 0x53415041 // "SAPA"
)

// MarshalBinary implements encoding.BinaryMarshaler for wire transfer of a
// perturbation: magic, σ, translation, then the rotation's own encoding.
func (p *Perturbation) MarshalBinary() ([]byte, error) {
	rot, err := p.R.MarshalBinary()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	buf.Grow(16 + 8*len(p.T) + len(rot))
	writeU32(&buf, perturbationMagic)
	writeF64(&buf, p.NoiseSigma)
	writeU32(&buf, uint32(len(p.T)))
	for _, v := range p.T {
		writeF64(&buf, v)
	}
	buf.Write(rot)
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler and re-validates the
// structural invariants (orthogonality, dimensions) since the bytes may come
// from an untrusted peer.
func (p *Perturbation) UnmarshalBinary(data []byte) error {
	magic, rest, err := readU32(data)
	if err != nil || magic != perturbationMagic {
		return fmt.Errorf("%w: bad magic", ErrBadEncoding)
	}
	sigma, rest, err := readF64(rest)
	if err != nil {
		return fmt.Errorf("%w: truncated sigma", ErrBadEncoding)
	}
	n, rest, err := readU32(rest)
	if err != nil || int(n) > len(rest)/8 {
		return fmt.Errorf("%w: bad translation length", ErrBadEncoding)
	}
	t := make([]float64, n)
	for i := range t {
		t[i], rest, err = readF64(rest)
		if err != nil {
			return fmt.Errorf("%w: truncated translation", ErrBadEncoding)
		}
	}
	var r matrix.Dense
	if err := r.UnmarshalBinary(rest); err != nil {
		return fmt.Errorf("%w: rotation: %v", ErrBadEncoding, err)
	}
	q, err := New(&r, t, sigma)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadEncoding, err)
	}
	*p = *q
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler for an adaptor.
func (a *Adaptor) MarshalBinary() ([]byte, error) {
	rot, err := a.Rot.MarshalBinary()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	buf.Grow(8 + 8*len(a.Trans) + len(rot))
	writeU32(&buf, adaptorMagic)
	writeU32(&buf, uint32(len(a.Trans)))
	for _, v := range a.Trans {
		writeF64(&buf, v)
	}
	buf.Write(rot)
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler with re-validation.
func (a *Adaptor) UnmarshalBinary(data []byte) error {
	magic, rest, err := readU32(data)
	if err != nil || magic != adaptorMagic {
		return fmt.Errorf("%w: bad magic", ErrBadEncoding)
	}
	n, rest, err := readU32(rest)
	if err != nil || int(n) > len(rest)/8 {
		return fmt.Errorf("%w: bad translation length", ErrBadEncoding)
	}
	t := make([]float64, n)
	for i := range t {
		t[i], rest, err = readF64(rest)
		if err != nil {
			return fmt.Errorf("%w: truncated translation", ErrBadEncoding)
		}
	}
	var r matrix.Dense
	if err := r.UnmarshalBinary(rest); err != nil {
		return fmt.Errorf("%w: rotation: %v", ErrBadEncoding, err)
	}
	cand := &Adaptor{Rot: &r, Trans: t}
	if err := cand.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadEncoding, err)
	}
	*a = *cand
	return nil
}

func writeU32(buf *bytes.Buffer, v uint32) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	buf.Write(b[:])
}

func writeF64(buf *bytes.Buffer, v float64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], math.Float64bits(v))
	buf.Write(b[:])
}

func readU32(data []byte) (uint32, []byte, error) {
	if len(data) < 4 {
		return 0, nil, ErrBadEncoding
	}
	return binary.BigEndian.Uint32(data[:4]), data[4:], nil
}

func readF64(data []byte) (float64, []byte, error) {
	if len(data) < 8 {
		return 0, nil, ErrBadEncoding
	}
	return math.Float64frombits(binary.BigEndian.Uint64(data[:8])), data[8:], nil
}
