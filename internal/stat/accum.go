package stat

import (
	"fmt"

	"repro/internal/matrix"
)

// CovAccumulator maintains the running mean vector and covariance matrix of
// a d-dimensional sample using Welford's algorithm generalized to vectors:
// each observation applies a rank-1 update to the comoment matrix, so the
// accumulator is numerically stable over arbitrarily long streams and never
// revisits past data. It backs the streaming ingestion pipeline
// (internal/stream), which watches the covariance of arriving clear data for
// distribution drift before perturbing it (paper §2 derives the perturbation
// from the normalized data's geometry; a drifted stream calls for a fresh
// draw).
//
// The zero value is not ready to use; construct with NewCovAccumulator. All
// methods are single-goroutine; wrap externally for concurrent use.
type CovAccumulator struct {
	dim  int
	n    int
	mean []float64
	// comoment is the running d×d sum Σ (x−mean)(x−mean')ᵀ maintained by
	// rank-1 updates; covariance is comoment / n.
	comoment *matrix.Dense
	// scratch holds the per-observation deltas, reused across Add calls.
	dOld, dNew []float64
}

// NewCovAccumulator returns an empty accumulator for d-dimensional
// observations.
func NewCovAccumulator(d int) (*CovAccumulator, error) {
	if d <= 0 {
		return nil, fmt.Errorf("stat: accumulator dimension %d", d)
	}
	return &CovAccumulator{
		dim:      d,
		mean:     make([]float64, d),
		comoment: matrix.New(d, d),
		dOld:     make([]float64, d),
		dNew:     make([]float64, d),
	}, nil
}

// Dim returns the observation dimensionality.
func (a *CovAccumulator) Dim() int { return a.dim }

// N returns the number of observations folded in.
func (a *CovAccumulator) N() int { return a.n }

// Add folds one observation into the running moments. The update is
// Welford's: mean += (x−mean)/n, then comoment += (x−mean_old)(x−mean_new)ᵀ.
func (a *CovAccumulator) Add(x []float64) error {
	if len(x) != a.dim {
		return fmt.Errorf("stat: observation has %d features, accumulator dim %d", len(x), a.dim)
	}
	a.n++
	inv := 1 / float64(a.n)
	for i, v := range x {
		a.dOld[i] = v - a.mean[i]
		a.mean[i] += a.dOld[i] * inv
		a.dNew[i] = v - a.mean[i]
	}
	for i := 0; i < a.dim; i++ {
		di := a.dOld[i]
		if di == 0 {
			continue
		}
		for j := 0; j < a.dim; j++ {
			a.comoment.Set(i, j, a.comoment.At(i, j)+di*a.dNew[j])
		}
	}
	return nil
}

// AddChunk folds every column of a d×N chunk (one record per column, the
// pipeline orientation) into the running moments.
func (a *CovAccumulator) AddChunk(chunk *matrix.Dense) error {
	if chunk.Rows() != a.dim {
		return fmt.Errorf("stat: chunk is %dx%d, accumulator dim %d", chunk.Rows(), chunk.Cols(), a.dim)
	}
	x := make([]float64, a.dim)
	for j := 0; j < chunk.Cols(); j++ {
		for i := 0; i < a.dim; i++ {
			x[i] = chunk.At(i, j)
		}
		if err := a.Add(x); err != nil {
			return err
		}
	}
	return nil
}

// Mean returns a copy of the running mean vector.
func (a *CovAccumulator) Mean() []float64 {
	return append([]float64(nil), a.mean...)
}

// Covariance returns the running population covariance matrix. It returns
// ErrEmpty until at least two observations are in.
func (a *CovAccumulator) Covariance() (*matrix.Dense, error) {
	if a.n < 2 {
		return nil, ErrEmpty
	}
	return a.comoment.Scale(1 / float64(a.n)), nil
}

// Merge folds another accumulator of the same dimension into this one using
// the pairwise (Chan et al.) combination, so shard-local accumulators can be
// unified without replaying their streams.
func (a *CovAccumulator) Merge(b *CovAccumulator) error {
	if b.dim != a.dim {
		return fmt.Errorf("stat: merge dim %d vs %d", b.dim, a.dim)
	}
	if b.n == 0 {
		return nil
	}
	if a.n == 0 {
		a.n = b.n
		copy(a.mean, b.mean)
		a.comoment = b.comoment.Clone()
		return nil
	}
	nA, nB := float64(a.n), float64(b.n)
	nAB := nA + nB
	delta := make([]float64, a.dim)
	for i := range delta {
		delta[i] = b.mean[i] - a.mean[i]
	}
	for i := 0; i < a.dim; i++ {
		for j := 0; j < a.dim; j++ {
			cross := delta[i] * delta[j] * nA * nB / nAB
			a.comoment.Set(i, j, a.comoment.At(i, j)+b.comoment.At(i, j)+cross)
		}
	}
	for i := range a.mean {
		a.mean[i] += delta[i] * nB / nAB
	}
	a.n += b.n
	return nil
}

// Reset empties the accumulator, keeping its dimension.
func (a *CovAccumulator) Reset() {
	a.n = 0
	for i := range a.mean {
		a.mean[i] = 0
	}
	a.comoment = matrix.New(a.dim, a.dim)
}

// CovarianceDrift measures the relative Frobenius distance between two
// covariance matrices: ‖cur − ref‖_F / max(‖ref‖_F, ε). The streaming
// pipeline compares the running covariance against a snapshot taken at the
// last transform derivation and re-derives when the drift exceeds its
// threshold.
func CovarianceDrift(ref, cur *matrix.Dense) (float64, error) {
	if ref.Rows() != cur.Rows() || ref.Cols() != cur.Cols() {
		return 0, fmt.Errorf("stat: drift shapes %dx%d vs %dx%d",
			ref.Rows(), ref.Cols(), cur.Rows(), cur.Cols())
	}
	const eps = 1e-12
	num := cur.Sub(ref).FrobeniusNorm()
	den := ref.FrobeniusNorm()
	if den < eps {
		den = eps
	}
	return num / den, nil
}
