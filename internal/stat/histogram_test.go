package stat

import (
	"math"
	"strings"
	"testing"
)

func TestNewHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("zero bins accepted")
	}
	if _, err := NewHistogram(1, 1, 4); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := NewHistogram(2, 1, 4); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestHistogramAdd(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	h.AddAll([]float64{0.5, 1, 3, 5, 7, 9, 9.99})
	if h.Total() != 7 {
		t.Fatalf("Total = %d, want 7", h.Total())
	}
	wantCounts := []int{2, 1, 1, 1, 2}
	for i, want := range wantCounts {
		if h.Counts[i] != want {
			t.Errorf("bin %d = %d, want %d", i, h.Counts[i], want)
		}
	}
}

func TestHistogramClamping(t *testing.T) {
	h, _ := NewHistogram(0, 1, 4)
	h.Add(-5)  // below range -> first bin
	h.Add(2)   // above range -> last bin
	h.Add(1.0) // exactly hi -> last bin
	if h.Counts[0] != 1 {
		t.Errorf("below-range count = %d, want 1", h.Counts[0])
	}
	if h.Counts[3] != 2 {
		t.Errorf("above-range count = %d, want 2", h.Counts[3])
	}
	if h.Total() != 3 {
		t.Errorf("Total = %d, want 3", h.Total())
	}
}

func TestHistogramDensity(t *testing.T) {
	h, _ := NewHistogram(0, 4, 4)
	h.AddAll([]float64{0.5, 1.5, 1.7, 3.5})
	d := h.Density()
	var sum float64
	for _, v := range d {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("density sums to %v, want 1", sum)
	}
	if math.Abs(d[1]-0.5) > 1e-12 {
		t.Errorf("d[1] = %v, want 0.5", d[1])
	}
	empty, _ := NewHistogram(0, 1, 3)
	for _, v := range empty.Density() {
		if v != 0 {
			t.Error("empty histogram density nonzero")
		}
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h, _ := NewHistogram(0, 10, 5)
	if got := h.BinCenter(0); math.Abs(got-1) > 1e-12 {
		t.Errorf("BinCenter(0) = %v, want 1", got)
	}
	if got := h.BinCenter(4); math.Abs(got-9) > 1e-12 {
		t.Errorf("BinCenter(4) = %v, want 9", got)
	}
}

func TestHistogramRender(t *testing.T) {
	h, _ := NewHistogram(0, 1, 3)
	h.AddAll([]float64{0.1, 0.1, 0.5})
	out := h.Render(10)
	if !strings.Contains(out, "#") {
		t.Error("render has no bars")
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 3 {
		t.Errorf("render rows:\n%s", out)
	}
	// Default width path.
	if h.Render(0) == "" {
		t.Error("Render(0) empty")
	}
}
