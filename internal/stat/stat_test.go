package stat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{5}, 5},
		{"pair", []float64{1, 3}, 2},
		{"negatives", []float64{-1, -3, 4}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.in); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Mean(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := Variance([]float64{3}); got != 0 {
		t.Errorf("Variance(single) = %v, want 0", got)
	}
}

func TestSampleVariance(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := SampleVariance(xs); !almostEqual(got, 2.5, 1e-12) {
		t.Errorf("SampleVariance = %v, want 2.5", got)
	}
}

func TestMinMaxRange(t *testing.T) {
	xs := []float64{3, -2, 7, 0}
	mn, err := Min(xs)
	if err != nil || mn != -2 {
		t.Errorf("Min = %v, %v; want -2, nil", mn, err)
	}
	mx, err := Max(xs)
	if err != nil || mx != 7 {
		t.Errorf("Max = %v, %v; want 7, nil", mx, err)
	}
	if got := Range(xs); got != 9 {
		t.Errorf("Range = %v, want 9", got)
	}
	if _, err := Min(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("Min(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Max(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("Max(nil) err = %v, want ErrEmpty", err)
	}
	if got := Range(nil); got != 0 {
		t.Errorf("Range(nil) = %v, want 0", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	tests := []struct {
		q, want float64
	}{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75},
	}
	for _, tt := range tests {
		got, err := Quantile(xs, tt.q)
		if err != nil {
			t.Fatalf("Quantile(%v): %v", tt.q, err)
		}
		if !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrEmpty) {
		t.Errorf("Quantile(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("Quantile(1.5) succeeded, want error")
	}
	single, err := Quantile([]float64{7}, 0.9)
	if err != nil || single != 7 {
		t.Errorf("Quantile(single) = %v, %v", single, err)
	}
}

func TestMedian(t *testing.T) {
	got, err := Median([]float64{5, 1, 3})
	if err != nil || got != 3 {
		t.Errorf("Median = %v, %v; want 3, nil", got, err)
	}
}

func TestKurtosis(t *testing.T) {
	// Gaussian sample: excess kurtosis near 0.
	rng := rand.New(rand.NewSource(1))
	gauss := make([]float64, 20000)
	for i := range gauss {
		gauss[i] = rng.NormFloat64()
	}
	if k := Kurtosis(gauss); math.Abs(k) > 0.15 {
		t.Errorf("Gaussian kurtosis = %v, want ~0", k)
	}
	// Uniform: excess kurtosis -1.2.
	unif := make([]float64, 20000)
	for i := range unif {
		unif[i] = rng.Float64()
	}
	if k := Kurtosis(unif); math.Abs(k+1.2) > 0.15 {
		t.Errorf("Uniform kurtosis = %v, want ~-1.2", k)
	}
	if k := Kurtosis([]float64{1, 2}); k != 0 {
		t.Errorf("Kurtosis(short) = %v, want 0", k)
	}
	if k := Kurtosis([]float64{3, 3, 3, 3, 3}); k != 0 {
		t.Errorf("Kurtosis(constant) = %v, want 0", k)
	}
}

func TestCovarianceCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	cov, err := Covariance(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(cov, 2.5, 1e-12) {
		t.Errorf("Covariance = %v, want 2.5", cov)
	}
	r, err := Correlation(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, 1, 1e-12) {
		t.Errorf("Correlation = %v, want 1", r)
	}
	neg, _ := Correlation(xs, []float64{8, 6, 4, 2})
	if !almostEqual(neg, -1, 1e-12) {
		t.Errorf("Correlation = %v, want -1", neg)
	}
	if _, err := Covariance(xs, ys[:2]); err == nil {
		t.Error("length mismatch accepted")
	}
	constCorr, _ := Correlation(xs, []float64{5, 5, 5, 5})
	if constCorr != 0 {
		t.Errorf("Correlation(const) = %v, want 0", constCorr)
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 500)
	var w Welford
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 1
		w.Add(xs[i])
	}
	if w.N() != 500 {
		t.Fatalf("N = %d, want 500", w.N())
	}
	if !almostEqual(w.Mean(), Mean(xs), 1e-10) {
		t.Errorf("Welford mean %v != batch %v", w.Mean(), Mean(xs))
	}
	if !almostEqual(w.Variance(), Variance(xs), 1e-10) {
		t.Errorf("Welford var %v != batch %v", w.Variance(), Variance(xs))
	}
	if !almostEqual(w.StdDev(), StdDev(xs), 1e-10) {
		t.Errorf("Welford sd %v != batch %v", w.StdDev(), StdDev(xs))
	}
}

func TestWelfordZeroValue(t *testing.T) {
	var w Welford
	if w.Variance() != 0 || w.Mean() != 0 || w.N() != 0 {
		t.Error("zero-value Welford not usable")
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("Summary = %+v", s)
	}
	if s.String() == "" {
		t.Error("Summary.String empty")
	}
	if _, err := Summarize(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("Summarize(nil) err = %v, want ErrEmpty", err)
	}
}

func TestPropVarianceNonNegative(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true // skip pathological float inputs
			}
		}
		return Variance(xs) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropMeanWithinMinMax(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+rng.Intn(50))
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		mn, _ := Min(xs)
		mx, _ := Max(xs)
		m := Mean(xs)
		return m >= mn-1e-12 && m <= mx+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropQuantileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 2+rng.Intn(40))
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		q1, err1 := Quantile(xs, 0.25)
		q2, err2 := Quantile(xs, 0.75)
		return err1 == nil && err2 == nil && q1 <= q2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
