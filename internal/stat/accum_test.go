package stat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

// genData draws a d×n data matrix with mixed scales so covariance entries
// span a few orders of magnitude.
func genData(rng *rand.Rand, d, n int) *matrix.Dense {
	m := matrix.New(d, n)
	for i := 0; i < d; i++ {
		scale := math.Pow(10, float64(i%3)-1)
		off := rng.NormFloat64() * 2
		for j := 0; j < n; j++ {
			m.Set(i, j, off+rng.NormFloat64()*scale)
		}
	}
	return m
}

// TestPropCovAccumulatorMatchesBatch is the incremental-covariance contract:
// streaming a dataset through the accumulator in random-sized chunks must
// reproduce the batch CovarianceMatrix result within 1e-9, for any shape and
// any chunking.
func TestPropCovAccumulatorMatchesBatch(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(6)
		n := 2 + rng.Intn(200)
		data := genData(rng, d, n)

		acc, err := NewCovAccumulator(d)
		if err != nil {
			t.Fatalf("NewCovAccumulator: %v", err)
		}
		for lo := 0; lo < n; {
			hi := lo + 1 + rng.Intn(17)
			if hi > n {
				hi = n
			}
			if err := acc.AddChunk(data.Slice(0, d, lo, hi)); err != nil {
				t.Fatalf("AddChunk: %v", err)
			}
			lo = hi
		}

		want, err := CovarianceMatrix(data)
		if err != nil {
			t.Fatalf("CovarianceMatrix: %v", err)
		}
		got, err := acc.Covariance()
		if err != nil {
			t.Fatalf("Covariance: %v", err)
		}
		if acc.N() != n {
			return false
		}
		// Means must match the column-wise batch means too.
		mean := acc.Mean()
		for i := 0; i < d; i++ {
			if math.Abs(mean[i]-Mean(data.Row(i))) > 1e-9 {
				return false
			}
		}
		return got.EqualApprox(want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Error(err)
	}
}

// TestPropCovAccumulatorMerge checks the pairwise combination: merging two
// shard accumulators equals accumulating the concatenated stream.
func TestPropCovAccumulatorMerge(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(5)
		nA := 2 + rng.Intn(60)
		nB := 2 + rng.Intn(60)
		a := genData(rng, d, nA)
		b := genData(rng, d, nB)

		accA, _ := NewCovAccumulator(d)
		accB, _ := NewCovAccumulator(d)
		if err := accA.AddChunk(a); err != nil {
			t.Fatal(err)
		}
		if err := accB.AddChunk(b); err != nil {
			t.Fatal(err)
		}
		if err := accA.Merge(accB); err != nil {
			t.Fatal(err)
		}

		whole, _ := NewCovAccumulator(d)
		if err := whole.AddChunk(a.Augment(b)); err != nil {
			t.Fatal(err)
		}
		gotM, err := accA.Covariance()
		if err != nil {
			t.Fatal(err)
		}
		wantM, err := whole.Covariance()
		if err != nil {
			t.Fatal(err)
		}
		return accA.N() == whole.N() && gotM.EqualApprox(wantM, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Error(err)
	}
}

func TestCovAccumulatorErrors(t *testing.T) {
	if _, err := NewCovAccumulator(0); err == nil {
		t.Fatal("want error for dimension 0")
	}
	acc, err := NewCovAccumulator(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := acc.Add([]float64{1, 2}); err == nil {
		t.Fatal("want dimension-mismatch error from Add")
	}
	if err := acc.AddChunk(matrix.New(2, 4)); err == nil {
		t.Fatal("want dimension-mismatch error from AddChunk")
	}
	if _, err := acc.Covariance(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("want ErrEmpty before 2 observations, got %v", err)
	}
	if err := acc.Add([]float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := acc.Covariance(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("want ErrEmpty with 1 observation, got %v", err)
	}
	other, _ := NewCovAccumulator(2)
	if err := acc.Merge(other); err == nil {
		t.Fatal("want dimension-mismatch error from Merge")
	}
}

func TestCovAccumulatorResetAndMergeEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := genData(rng, 2, 50)

	acc, _ := NewCovAccumulator(2)
	if err := acc.AddChunk(data); err != nil {
		t.Fatal(err)
	}
	acc.Reset()
	if acc.N() != 0 {
		t.Fatalf("N after Reset = %d", acc.N())
	}

	// Merging into an empty accumulator copies; merging an empty one is a
	// no-op.
	full, _ := NewCovAccumulator(2)
	if err := full.AddChunk(data); err != nil {
		t.Fatal(err)
	}
	if err := acc.Merge(full); err != nil {
		t.Fatal(err)
	}
	empty, _ := NewCovAccumulator(2)
	if err := acc.Merge(empty); err != nil {
		t.Fatal(err)
	}
	want, _ := CovarianceMatrix(data)
	got, err := acc.Covariance()
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualApprox(want, 1e-9) {
		t.Fatal("empty-merge round trip diverged from batch covariance")
	}
}

func TestCovarianceDrift(t *testing.T) {
	id := matrix.Identity(3)
	zero, err := CovarianceDrift(id, id.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if zero != 0 {
		t.Fatalf("drift of identical matrices = %v", zero)
	}
	scaled, err := CovarianceDrift(id, id.Scale(2))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(scaled-1) > 1e-12 {
		t.Fatalf("drift of 2I vs I = %v, want 1", scaled)
	}
	if _, err := CovarianceDrift(id, matrix.Identity(2)); err == nil {
		t.Fatal("want shape-mismatch error")
	}
}
