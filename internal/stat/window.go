package stat

import (
	"fmt"

	"repro/internal/matrix"
)

// WindowedCov maintains the covariance of (approximately) the most recent
// window observations of a stream, at chunk granularity: each AddChunk
// becomes one bucket in a deque of CovAccumulators, and whole buckets are
// evicted from the front once the remaining ones still cover the window on
// their own. The streaming pipeline uses it so its drift statistic tracks
// the CURRENT input distribution — with the lifetime accumulator it
// replaced, a long stable prefix dominated the running covariance and
// arbitrarily delayed the detection of late drift.
//
// Because eviction is bucket-whole, the retained count is in
// [window, window + maxChunk). While the stream is shorter than the window
// nothing is evicted and Covariance equals the batch statistic over every
// record seen, exactly (the buckets merge with the same pairwise
// combination a single accumulator's updates factor through).
//
// The zero value is not ready to use; construct with NewWindowedCov. All
// methods are single-goroutine; wrap externally for concurrent use.
type WindowedCov struct {
	dim    int
	window int
	// buckets is the chunk deque, oldest first; total is the retained
	// record count (the sum of the buckets' N).
	buckets []*CovAccumulator
	total   int
}

// NewWindowedCov returns an empty windowed accumulator for d-dimensional
// observations retaining at least window records. window <= 0 disables
// eviction: the accumulator keeps lifetime moments, matching the pre-window
// pipeline behaviour.
func NewWindowedCov(d, window int) (*WindowedCov, error) {
	if d <= 0 {
		return nil, fmt.Errorf("stat: windowed accumulator dimension %d", d)
	}
	return &WindowedCov{dim: d, window: window}, nil
}

// Dim returns the observation dimensionality.
func (w *WindowedCov) Dim() int { return w.dim }

// N returns the number of retained observations: everything seen, until the
// stream outgrows the window; then at least window and less than
// window + the largest retained chunk.
func (w *WindowedCov) N() int { return w.total }

// Window returns the configured minimum retention (<= 0: unbounded).
func (w *WindowedCov) Window() int { return w.window }

// AddChunk folds a d×N chunk (one record per column) in as one bucket and
// evicts the oldest buckets that the window no longer needs. Empty chunks
// are accepted and ignored.
func (w *WindowedCov) AddChunk(chunk *matrix.Dense) error {
	if chunk.Rows() != w.dim {
		return fmt.Errorf("stat: chunk is %dx%d, windowed accumulator dim %d",
			chunk.Rows(), chunk.Cols(), w.dim)
	}
	if chunk.Cols() == 0 {
		return nil
	}
	acc, err := NewCovAccumulator(w.dim)
	if err != nil {
		return err
	}
	if err := acc.AddChunk(chunk); err != nil {
		return err
	}
	w.buckets = append(w.buckets, acc)
	w.total += acc.N()
	if w.window > 0 {
		// Evict whole buckets from the front while the rest still cover the
		// window without them; the last bucket always survives.
		for len(w.buckets) > 1 && w.total-w.buckets[0].N() >= w.window {
			w.total -= w.buckets[0].N()
			w.buckets[0] = nil
			w.buckets = w.buckets[1:]
		}
	}
	return nil
}

// Covariance returns the population covariance over the retained window by
// pairwise-merging the buckets into a fresh accumulator. It returns
// ErrEmpty until at least two observations are retained.
func (w *WindowedCov) Covariance() (*matrix.Dense, error) {
	if w.total < 2 {
		return nil, ErrEmpty
	}
	merged, err := NewCovAccumulator(w.dim)
	if err != nil {
		return nil, err
	}
	for _, b := range w.buckets {
		if err := merged.Merge(b); err != nil {
			return nil, err
		}
	}
	return merged.Covariance()
}

// Reset empties the accumulator, keeping its dimension and window.
func (w *WindowedCov) Reset() {
	w.buckets = nil
	w.total = 0
}
