// Package stat provides the statistics substrate for the SAP reproduction:
// descriptive moments, quantiles, histograms, covariance/correlation, and
// streaming accumulators: the scalar Welford accumulator and the vector
// rank-1 covariance accumulator (CovAccumulator) that lets internal/stream
// watch a data stream's geometry without revisiting past records. The privacy
// guarantee of the paper's §2.2 is a statistic too (the standard deviation
// of the best attacker's estimation error), so the attack suite leans on
// this package throughout. All randomized helpers take an explicit
// *rand.Rand so every experiment is reproducible from a seed.
package stat

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by statistics that are undefined on empty input.
var ErrEmpty = errors.New("stat: empty input")

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (0 for fewer than 2 values).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// SampleVariance returns the unbiased (n-1) variance estimate.
func SampleVariance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest value; it returns ErrEmpty for empty input.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest value; it returns ErrEmpty for empty input.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Range returns max-min (0 for empty input).
func Range(xs []float64) float64 {
	mn, err := Min(xs)
	if err != nil {
		return 0
	}
	mx, _ := Max(xs)
	return mx - mn
}

// Quantile returns the q-quantile (0 <= q <= 1) using linear interpolation
// between order statistics. It returns ErrEmpty for empty input.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stat: quantile %v out of [0,1]", q)
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo], nil
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// Median returns the 0.5 quantile.
func Median(xs []float64) (float64, error) { return Quantile(xs, 0.5) }

// Kurtosis returns the excess kurtosis of xs; 0 for Gaussian data. Used by
// the FastICA attack as its non-Gaussianity contrast.
func Kurtosis(xs []float64) float64 {
	if len(xs) < 4 {
		return 0
	}
	m := Mean(xs)
	var m2, m4 float64
	for _, x := range xs {
		d := x - m
		d2 := d * d
		m2 += d2
		m4 += d2 * d2
	}
	n := float64(len(xs))
	m2 /= n
	m4 /= n
	if m2 == 0 {
		return 0
	}
	return m4/(m2*m2) - 3
}

// Covariance returns the population covariance of two equal-length samples.
func Covariance(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stat: covariance length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, nil
	}
	mx, my := Mean(xs), Mean(ys)
	var s float64
	for i := range xs {
		s += (xs[i] - mx) * (ys[i] - my)
	}
	return s / float64(len(xs)), nil
}

// Correlation returns the Pearson correlation coefficient, or 0 when either
// sample is constant.
func Correlation(xs, ys []float64) (float64, error) {
	cov, err := Covariance(xs, ys)
	if err != nil {
		return 0, err
	}
	sx, sy := StdDev(xs), StdDev(ys)
	if sx == 0 || sy == 0 {
		return 0, nil
	}
	return cov / (sx * sy), nil
}

// Welford is a streaming mean/variance accumulator. The zero value is ready
// to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds x into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running population variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the running population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Summary bundles the descriptive statistics the experiment harness reports.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of xs; it returns ErrEmpty for empty input.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	mn, _ := Min(xs)
	mx, _ := Max(xs)
	med, _ := Median(xs)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    mn,
		Max:    mx,
		Median: med,
	}, nil
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4f sd=%.4f min=%.4f med=%.4f max=%.4f",
		s.N, s.Mean, s.StdDev, s.Min, s.Median, s.Max)
}
