package stat

import (
	"fmt"
	"math"

	"repro/internal/matrix"
)

// CovarianceMatrix computes the d×d population covariance of data laid out
// d×N (one column per record), the orientation the perturbation pipeline
// uses throughout.
func CovarianceMatrix(data *matrix.Dense) (*matrix.Dense, error) {
	n := data.Cols()
	if n < 2 {
		return nil, fmt.Errorf("stat: covariance needs at least 2 records, got %d", n)
	}
	d := data.Rows()
	means := make([]float64, d)
	for j := 0; j < d; j++ {
		means[j] = Mean(data.Row(j))
	}
	cov := matrix.New(d, d)
	for a := 0; a < d; a++ {
		rowA := data.Row(a)
		for b := a; b < d; b++ {
			rowB := data.Row(b)
			var s float64
			for i := 0; i < n; i++ {
				s += (rowA[i] - means[a]) * (rowB[i] - means[b])
			}
			s /= float64(n)
			cov.Set(a, b, s)
			cov.Set(b, a, s)
		}
	}
	return cov, nil
}

// CorrelationMatrix computes the d×d Pearson correlation of d×N data.
// Constant dimensions yield zero correlation rows/columns (and unit
// diagonal).
func CorrelationMatrix(data *matrix.Dense) (*matrix.Dense, error) {
	cov, err := CovarianceMatrix(data)
	if err != nil {
		return nil, err
	}
	d := cov.Rows()
	corr := matrix.New(d, d)
	for a := 0; a < d; a++ {
		corr.Set(a, a, 1)
		for b := a + 1; b < d; b++ {
			va, vb := cov.At(a, a), cov.At(b, b)
			if va <= 0 || vb <= 0 {
				continue
			}
			r := cov.At(a, b) / (math.Sqrt(va) * math.Sqrt(vb))
			corr.Set(a, b, r)
			corr.Set(b, a, r)
		}
	}
	return corr, nil
}
