package stat

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

// randChunk draws a d×n chunk whose columns come from a shifted, scaled
// normal so covariance estimates are non-trivial.
func randChunk(rng *rand.Rand, d, n int, shift, scale float64) *matrix.Dense {
	m := matrix.New(d, n)
	for j := 0; j < n; j++ {
		for i := 0; i < d; i++ {
			m.Set(i, j, shift+scale*rng.NormFloat64())
		}
	}
	return m
}

// batchCov computes the reference statistic over a set of chunks with a
// single lifetime accumulator.
func batchCov(t *testing.T, d int, chunks []*matrix.Dense) *matrix.Dense {
	t.Helper()
	acc, err := NewCovAccumulator(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range chunks {
		if err := acc.AddChunk(c); err != nil {
			t.Fatal(err)
		}
	}
	cov, err := acc.Covariance()
	if err != nil {
		t.Fatal(err)
	}
	return cov
}

func maxAbsDiff(a, b *matrix.Dense) float64 {
	worst := 0.0
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < a.Cols(); j++ {
			if d := math.Abs(a.At(i, j) - b.At(i, j)); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// Property: while the stream fits inside the window (and with eviction
// disabled, always), the windowed covariance IS the batch covariance over
// everything seen, to merge-roundoff precision, for random chunk sizes.
func TestWindowedCovMatchesBatchWithinWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		d := 2 + rng.Intn(5)
		window := 200 + rng.Intn(400)
		win, err := NewWindowedCov(d, window)
		if err != nil {
			t.Fatal(err)
		}
		unbounded, err := NewWindowedCov(d, 0)
		if err != nil {
			t.Fatal(err)
		}
		var chunks []*matrix.Dense
		total := 0
		for total < window {
			n := 1 + rng.Intn(50)
			if total+n > window {
				n = window - total
			}
			c := randChunk(rng, d, n, rng.Float64(), 0.5+rng.Float64())
			chunks = append(chunks, c)
			total += n
			for _, w := range []*WindowedCov{win, unbounded} {
				if err := w.AddChunk(c); err != nil {
					t.Fatal(err)
				}
			}
		}
		want := batchCov(t, d, chunks)
		for name, w := range map[string]*WindowedCov{"windowed": win, "unbounded": unbounded} {
			if w.N() != total {
				t.Fatalf("trial %d: %s retained %d of %d records inside the window", trial, name, w.N(), total)
			}
			got, err := w.Covariance()
			if err != nil {
				t.Fatal(err)
			}
			if diff := maxAbsDiff(want, got); diff > 1e-10 {
				t.Fatalf("trial %d: %s covariance differs from batch by %g inside the window", trial, name, diff)
			}
		}
	}
}

// Property: past the window, the windowed covariance equals the batch
// statistic over exactly the retained suffix of chunks — eviction is
// bucket-whole, so the suffix is identifiable and the comparison exact.
func TestWindowedCovMatchesBatchOverRetainedSuffix(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 20; trial++ {
		d := 2 + rng.Intn(4)
		window := 100 + rng.Intn(200)
		win, err := NewWindowedCov(d, window)
		if err != nil {
			t.Fatal(err)
		}
		var chunks []*matrix.Dense
		var sizes []int
		total := 0
		for total < 4*window {
			n := 1 + rng.Intn(80)
			// Shift the distribution as the stream ages so a stale window
			// would be visibly wrong, not accidentally equal.
			c := randChunk(rng, d, n, float64(len(chunks))*0.1, 0.5+rng.Float64())
			chunks = append(chunks, c)
			sizes = append(sizes, n)
			total += n
			if err := win.AddChunk(c); err != nil {
				t.Fatal(err)
			}
		}
		// Replay the eviction rule to find the retained suffix.
		start, retained := 0, total
		for start < len(sizes)-1 && retained-sizes[start] >= window {
			retained -= sizes[start]
			start++
		}
		if win.N() != retained {
			t.Fatalf("trial %d: retained %d records, expected %d", trial, win.N(), retained)
		}
		if retained < window {
			t.Fatalf("trial %d: window underrun — retained %d < window %d", trial, retained, window)
		}
		want := batchCov(t, d, chunks[start:])
		got, err := win.Covariance()
		if err != nil {
			t.Fatal(err)
		}
		if diff := maxAbsDiff(want, got); diff > 1e-10 {
			t.Fatalf("trial %d: windowed covariance differs from suffix batch by %g", trial, diff)
		}
	}
}

// Property: after drift, the windowed statistic converges to the new
// distribution while the lifetime statistic stays anchored to the old one —
// the reason the pipeline moved to a window.
func TestWindowedCovForgetsOldRegime(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const d, window, chunk = 3, 512, 64
	win, err := NewWindowedCov(d, window)
	if err != nil {
		t.Fatal(err)
	}
	life, err := NewWindowedCov(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Regime A: unit scale. Regime B: 3x scale, shifted.
	feed := func(shift, scale float64, n int) {
		for k := 0; k < n; k++ {
			c := randChunk(rng, d, chunk, shift, scale)
			if err := win.AddChunk(c); err != nil {
				t.Fatal(err)
			}
			if err := life.AddChunk(c); err != nil {
				t.Fatal(err)
			}
		}
	}
	feed(0, 1, 64)
	feed(2, 3, 64)
	// Reference: regime B alone.
	refAcc, err := NewCovAccumulator(d)
	if err != nil {
		t.Fatal(err)
	}
	refRng := rand.New(rand.NewSource(8))
	if err := refAcc.AddChunk(randChunk(refRng, d, 8192, 2, 3)); err != nil {
		t.Fatal(err)
	}
	ref, err := refAcc.Covariance()
	if err != nil {
		t.Fatal(err)
	}
	wCov, err := win.Covariance()
	if err != nil {
		t.Fatal(err)
	}
	lCov, err := life.Covariance()
	if err != nil {
		t.Fatal(err)
	}
	wDrift, err := CovarianceDrift(ref, wCov)
	if err != nil {
		t.Fatal(err)
	}
	lDrift, err := CovarianceDrift(ref, lCov)
	if err != nil {
		t.Fatal(err)
	}
	if wDrift > 0.2 {
		t.Fatalf("windowed statistic did not converge to the new regime: drift %v", wDrift)
	}
	if lDrift < 2*wDrift {
		t.Fatalf("lifetime statistic (drift %v) tracked the new regime as well as the window (drift %v); the window buys nothing",
			lDrift, wDrift)
	}
}

func TestWindowedCovErrors(t *testing.T) {
	if _, err := NewWindowedCov(0, 10); err == nil {
		t.Fatal("zero dimension accepted")
	}
	w, err := NewWindowedCov(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Covariance(); err != ErrEmpty {
		t.Fatalf("empty covariance error = %v, want ErrEmpty", err)
	}
	if err := w.AddChunk(matrix.New(2, 4)); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if err := w.AddChunk(matrix.New(3, 0)); err != nil {
		t.Fatalf("empty chunk rejected: %v", err)
	}
	if w.N() != 0 {
		t.Fatalf("empty chunk counted: N=%d", w.N())
	}
	if err := w.AddChunk(matrix.New(3, 4)); err != nil {
		t.Fatal(err)
	}
	w.Reset()
	if w.N() != 0 || w.Window() != 10 || w.Dim() != 3 {
		t.Fatalf("reset lost shape: N=%d window=%d dim=%d", w.N(), w.Window(), w.Dim())
	}
}
