package stat

import (
	"fmt"
	"strings"
)

// Histogram is a fixed-width binned frequency count over [Lo, Hi). Values
// outside the range are clamped into the first/last bin so no observation is
// silently dropped (the experiment figures report full distributions).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with bins equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stat: histogram needs positive bin count, got %d", bins)
	}
	if hi <= lo {
		return nil, fmt.Errorf("stat: histogram range [%v,%v) is empty", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	idx := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Counts) {
		idx = len(h.Counts) - 1
	}
	h.Counts[idx]++
	h.total++
}

// AddAll records a batch of observations.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int { return h.total }

// Density returns the normalized bin frequencies (empty histogram yields
// all-zero densities).
func (h *Histogram) Density() []float64 {
	d := make([]float64, len(h.Counts))
	if h.total == 0 {
		return d
	}
	for i, c := range h.Counts {
		d[i] = float64(c) / float64(h.total)
	}
	return d
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// Render draws an ASCII bar chart with the given maximum bar width. It is
// used by the figure harness to visualize distributions (paper Figure 2).
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 40
	}
	maxCount := 0
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		bar := 0
		if maxCount > 0 {
			bar = c * width / maxCount
		}
		fmt.Fprintf(&b, "%8.3f | %-*s %d\n", h.BinCenter(i), width, strings.Repeat("#", bar), c)
	}
	return b.String()
}
