package stat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

func TestCovarianceMatrixKnown(t *testing.T) {
	// Two perfectly correlated dimensions.
	data := matrix.NewFromRows([][]float64{
		{1, 2, 3, 4},
		{2, 4, 6, 8},
	})
	cov, err := CovarianceMatrix(data)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cov.At(0, 0)-1.25) > 1e-12 {
		t.Errorf("var(x) = %v, want 1.25", cov.At(0, 0))
	}
	if math.Abs(cov.At(1, 1)-5) > 1e-12 {
		t.Errorf("var(y) = %v, want 5", cov.At(1, 1))
	}
	if math.Abs(cov.At(0, 1)-2.5) > 1e-12 {
		t.Errorf("cov(x,y) = %v, want 2.5", cov.At(0, 1))
	}
	if cov.At(0, 1) != cov.At(1, 0) {
		t.Error("covariance not symmetric")
	}
}

func TestCovarianceMatrixTooFew(t *testing.T) {
	if _, err := CovarianceMatrix(matrix.New(3, 1)); err == nil {
		t.Fatal("single record accepted")
	}
}

func TestCorrelationMatrix(t *testing.T) {
	data := matrix.NewFromRows([][]float64{
		{1, 2, 3, 4},
		{2, 4, 6, 8}, // corr +1 with row 0
		{8, 6, 4, 2}, // corr −1 with row 0
		{5, 5, 5, 5}, // constant
	})
	corr, err := CorrelationMatrix(data)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(corr.At(0, 1)-1) > 1e-12 {
		t.Errorf("corr(0,1) = %v, want 1", corr.At(0, 1))
	}
	if math.Abs(corr.At(0, 2)+1) > 1e-12 {
		t.Errorf("corr(0,2) = %v, want -1", corr.At(0, 2))
	}
	if corr.At(0, 3) != 0 || corr.At(3, 0) != 0 {
		t.Error("constant dimension should have zero correlation")
	}
	for i := 0; i < 4; i++ {
		if corr.At(i, i) != 1 {
			t.Errorf("diagonal (%d,%d) = %v", i, i, corr.At(i, i))
		}
	}
}

func TestPropCovariancePSD(t *testing.T) {
	// A covariance matrix is positive semi-definite: all eigenvalues ≥ 0.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(5)
		n := d + 2 + rng.Intn(30)
		data := matrix.RandomGaussian(rng, d, n, 2)
		cov, err := CovarianceMatrix(data)
		if err != nil {
			return false
		}
		vals, _, err := matrix.EigenSym(cov)
		if err != nil {
			return false
		}
		for _, v := range vals {
			if v < -1e-9 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropCorrelationBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(4)
		data := matrix.RandomGaussian(rng, d, 20, 1)
		corr, err := CorrelationMatrix(data)
		if err != nil {
			return false
		}
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				v := corr.At(i, j)
				if v < -1-1e-9 || v > 1+1e-9 {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropRotationPreservesTotalVariance(t *testing.T) {
	// trace(cov(QX)) == trace(cov(X)) for orthogonal Q — the variance-
	// preservation property geometric perturbation relies on.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(5)
		x := matrix.RandomGaussian(rng, d, 40, 1.5)
		q := matrix.RandomOrthogonal(rng, d)
		covX, err := CovarianceMatrix(x)
		if err != nil {
			return false
		}
		covQX, err := CovarianceMatrix(q.Mul(x))
		if err != nil {
			return false
		}
		return math.Abs(covX.Trace()-covQX.Trace()) < 1e-8*math.Max(1, covX.Trace())
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
