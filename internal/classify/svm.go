package classify

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
)

// Kernel computes an inner product in feature space.
type Kernel interface {
	// Name identifies the kernel in reports.
	Name() string
	// Eval returns K(a, b).
	Eval(a, b []float64) float64
}

// LinearKernel is the plain dot product.
type LinearKernel struct{}

// Name implements Kernel.
func (LinearKernel) Name() string { return "linear" }

// Eval implements Kernel.
func (LinearKernel) Eval(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// RBFKernel is the Gaussian kernel exp(-γ‖a−b‖²). Because it depends on the
// data only through distances, it is invariant to rotation and translation —
// the property that makes SVM(RBF) a headline classifier in the paper.
type RBFKernel struct {
	// Gamma is the kernel width (must be > 0).
	Gamma float64
}

// Name implements Kernel.
func (k RBFKernel) Name() string { return "rbf" }

// Eval implements Kernel.
func (k RBFKernel) Eval(a, b []float64) float64 {
	return math.Exp(-k.Gamma * euclidean2(a, b))
}

// SVMConfig tunes the SMO trainer. Zero values select the defaults noted on
// each field.
type SVMConfig struct {
	// Kernel defaults to RBF with γ = 1/d.
	Kernel Kernel
	// C is the box constraint (default 1).
	C float64
	// Tol is the KKT violation tolerance (default 1e-3).
	Tol float64
	// MaxPasses is the number of full passes without changes before SMO
	// stops (default 3).
	MaxPasses int
	// MaxIter hard-bounds the total number of SMO sweeps (default 200).
	MaxIter int
	// Seed drives the deterministic second-multiplier choice (default 1).
	Seed int64
}

func (c SVMConfig) withDefaults(dim int) SVMConfig {
	if c.Kernel == nil {
		c.Kernel = RBFKernel{Gamma: 1 / math.Max(1, float64(dim))}
	}
	if c.C <= 0 {
		c.C = 1
	}
	if c.Tol <= 0 {
		c.Tol = 1e-3
	}
	if c.MaxPasses <= 0 {
		c.MaxPasses = 3
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 200
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// SVM is a multi-class support-vector machine trained with SMO, using
// one-vs-one pairwise voting for more than two classes.
type SVM struct {
	cfg    SVMConfig
	dim    int
	binary []*binarySVM // one per class pair
	pairs  [][2]int
}

// NewSVM returns an unfitted SVM with the given configuration.
func NewSVM(cfg SVMConfig) *SVM { return &SVM{cfg: cfg} }

var _ Cloner = (*SVM)(nil)

// Clone implements Cloner: a fresh unfitted SVM with the same configuration.
// Cloning a fitted SVM carries the defaults resolved at its last Fit (kernel,
// C, tolerances), which are the same values a fresh NewSVM would resolve on
// the next Fit.
func (s *SVM) Clone() Classifier { return NewSVM(s.cfg) }

// Fit implements Classifier.
func (s *SVM) Fit(d *dataset.Dataset) error {
	if d == nil || d.Len() == 0 {
		return ErrEmptyTrain
	}
	s.cfg = s.cfg.withDefaults(d.Dim())
	s.dim = d.Dim()
	nClasses := d.NumClasses()
	if nClasses < 2 {
		return fmt.Errorf("%w: need at least 2 classes, got %d", ErrBadConfig, nClasses)
	}
	byClass := make([][]int, nClasses)
	for i, y := range d.Y {
		byClass[y] = append(byClass[y], i)
	}
	s.binary = s.binary[:0]
	s.pairs = s.pairs[:0]
	for a := 0; a < nClasses; a++ {
		for b := a + 1; b < nClasses; b++ {
			if len(byClass[a]) == 0 || len(byClass[b]) == 0 {
				continue
			}
			idx := append(append([]int(nil), byClass[a]...), byClass[b]...)
			sub := d.Subset(idx)
			labels := make([]float64, sub.Len())
			for i := range labels {
				if sub.Y[i] == a {
					labels[i] = 1
				} else {
					labels[i] = -1
				}
			}
			bin := &binarySVM{cfg: s.cfg}
			if err := bin.fit(sub.X, labels); err != nil {
				return fmt.Errorf("pair (%d,%d): %w", a, b, err)
			}
			s.binary = append(s.binary, bin)
			s.pairs = append(s.pairs, [2]int{a, b})
		}
	}
	if len(s.binary) == 0 {
		return fmt.Errorf("%w: no trainable class pairs", ErrBadConfig)
	}
	return nil
}

// Predict implements Classifier.
func (s *SVM) Predict(x []float64) (int, error) {
	if len(s.binary) == 0 {
		return 0, ErrNotFitted
	}
	if len(x) != s.dim {
		return 0, fmt.Errorf("%w: got %d features, want %d", ErrDimMismatch, len(x), s.dim)
	}
	votes := make(map[int]int)
	for i, bin := range s.binary {
		pair := s.pairs[i]
		if bin.decision(x) >= 0 {
			votes[pair[0]]++
		} else {
			votes[pair[1]]++
		}
	}
	best, bestVotes := -1, -1
	for class, v := range votes {
		if v > bestVotes || (v == bestVotes && class < best) {
			best, bestVotes = class, v
		}
	}
	return best, nil
}

// binarySVM is one ±1 SMO-trained machine.
type binarySVM struct {
	cfg SVMConfig

	x     [][]float64
	y     []float64
	alpha []float64
	b     float64
}

// fit runs simplified SMO (Platt's algorithm with randomized second-choice
// heuristic) on ±1 labels.
func (m *binarySVM) fit(x [][]float64, y []float64) error {
	n := len(x)
	if n == 0 {
		return ErrEmptyTrain
	}
	m.x = x
	m.y = y
	m.alpha = make([]float64, n)
	m.b = 0
	rng := rand.New(rand.NewSource(m.cfg.Seed))

	// Cache the kernel matrix for moderate n; recompute on demand above.
	var kmat [][]float64
	const cacheLimit = 1400
	if n <= cacheLimit {
		kmat = make([][]float64, n)
		for i := 0; i < n; i++ {
			kmat[i] = make([]float64, n)
			for j := 0; j <= i; j++ {
				v := m.cfg.Kernel.Eval(x[i], x[j])
				kmat[i][j] = v
				kmat[j][i] = v
			}
		}
	}
	kval := func(i, j int) float64 {
		if kmat != nil {
			return kmat[i][j]
		}
		return m.cfg.Kernel.Eval(x[i], x[j])
	}
	fOut := func(i int) float64 {
		var s float64
		for j := 0; j < n; j++ {
			if m.alpha[j] != 0 {
				s += m.alpha[j] * y[j] * kval(j, i)
			}
		}
		return s + m.b
	}

	passes, iter := 0, 0
	for passes < m.cfg.MaxPasses && iter < m.cfg.MaxIter {
		iter++
		changed := 0
		for i := 0; i < n; i++ {
			ei := fOut(i) - y[i]
			if !((y[i]*ei < -m.cfg.Tol && m.alpha[i] < m.cfg.C) ||
				(y[i]*ei > m.cfg.Tol && m.alpha[i] > 0)) {
				continue
			}
			j := rng.Intn(n - 1)
			if j >= i {
				j++
			}
			ej := fOut(j) - y[j]
			ai, aj := m.alpha[i], m.alpha[j]
			var lo, hi float64
			if y[i] != y[j] {
				lo = math.Max(0, aj-ai)
				hi = math.Min(m.cfg.C, m.cfg.C+aj-ai)
			} else {
				lo = math.Max(0, ai+aj-m.cfg.C)
				hi = math.Min(m.cfg.C, ai+aj)
			}
			if lo == hi {
				continue
			}
			eta := 2*kval(i, j) - kval(i, i) - kval(j, j)
			if eta >= 0 {
				continue
			}
			ajNew := aj - y[j]*(ei-ej)/eta
			if ajNew > hi {
				ajNew = hi
			} else if ajNew < lo {
				ajNew = lo
			}
			if math.Abs(ajNew-aj) < 1e-5 {
				continue
			}
			aiNew := ai + y[i]*y[j]*(aj-ajNew)
			b1 := m.b - ei - y[i]*(aiNew-ai)*kval(i, i) - y[j]*(ajNew-aj)*kval(i, j)
			b2 := m.b - ej - y[i]*(aiNew-ai)*kval(i, j) - y[j]*(ajNew-aj)*kval(j, j)
			switch {
			case aiNew > 0 && aiNew < m.cfg.C:
				m.b = b1
			case ajNew > 0 && ajNew < m.cfg.C:
				m.b = b2
			default:
				m.b = (b1 + b2) / 2
			}
			m.alpha[i] = aiNew
			m.alpha[j] = ajNew
			changed++
		}
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
	}
	return nil
}

// decision returns the signed margin for x.
func (m *binarySVM) decision(x []float64) float64 {
	var s float64
	for j := range m.x {
		if m.alpha[j] != 0 {
			s += m.alpha[j] * m.y[j] * m.cfg.Kernel.Eval(m.x[j], x)
		}
	}
	return s + m.b
}
