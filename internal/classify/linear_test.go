package classify

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/perturb"
)

func TestPerceptronSeparable(t *testing.T) {
	d, _ := dataset.New("sep", [][]float64{
		{-2, 0}, {-2.2, 0.1}, {-1.8, -0.1}, {-2.1, 0.2},
		{2, 0}, {2.2, -0.1}, {1.8, 0.1}, {2.1, -0.2},
	}, []int{0, 0, 0, 0, 1, 1, 1, 1})
	p := NewPerceptron(0)
	if p.Epochs != 20 {
		t.Fatalf("default epochs = %d, want 20", p.Epochs)
	}
	if err := p.Fit(d); err != nil {
		t.Fatal(err)
	}
	acc, err := Accuracy(p, d)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.99 {
		t.Errorf("separable perceptron accuracy = %v, want ~1", acc)
	}
}

func TestPerceptronMulticlassIris(t *testing.T) {
	train, test := irisSplit(t, 21)
	p := NewPerceptron(30)
	if err := p.Fit(train); err != nil {
		t.Fatal(err)
	}
	acc, err := Accuracy(p, test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.8 {
		t.Errorf("perceptron Iris accuracy = %v, want >= 0.8", acc)
	}
}

func TestPerceptronErrors(t *testing.T) {
	p := NewPerceptron(5)
	if _, err := p.Predict([]float64{1}); !errors.Is(err, ErrNotFitted) {
		t.Fatalf("unfitted err = %v", err)
	}
	if err := p.Fit(nil); !errors.Is(err, ErrEmptyTrain) {
		t.Fatalf("nil err = %v", err)
	}
	oneClass, _ := dataset.New("one", [][]float64{{1}, {2}}, []int{0, 0})
	if err := p.Fit(oneClass); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("one class err = %v", err)
	}
	ok, _ := dataset.New("ok", [][]float64{{0}, {1}}, []int{0, 1})
	if err := p.Fit(ok); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Predict([]float64{1, 2}); !errors.Is(err, ErrDimMismatch) {
		t.Fatalf("dim err = %v", err)
	}
}

func TestLogisticSeparable(t *testing.T) {
	d, _ := dataset.New("sep", [][]float64{
		{-1, -1}, {-1.2, -0.8}, {-0.9, -1.1},
		{1, 1}, {1.1, 0.9}, {0.8, 1.2},
	}, []int{0, 0, 0, 1, 1, 1})
	l := NewLogistic()
	if err := l.Fit(d); err != nil {
		t.Fatal(err)
	}
	acc, err := Accuracy(l, d)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.99 {
		t.Errorf("separable logistic accuracy = %v, want ~1", acc)
	}
}

func TestLogisticMulticlassIris(t *testing.T) {
	train, test := irisSplit(t, 22)
	l := NewLogistic()
	if err := l.Fit(train); err != nil {
		t.Fatal(err)
	}
	acc, err := Accuracy(l, test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.85 {
		t.Errorf("logistic Iris accuracy = %v, want >= 0.85", acc)
	}
}

func TestLogisticErrors(t *testing.T) {
	l := NewLogistic()
	if _, err := l.Predict([]float64{1}); !errors.Is(err, ErrNotFitted) {
		t.Fatalf("unfitted err = %v", err)
	}
	if err := l.Fit(nil); !errors.Is(err, ErrEmptyTrain) {
		t.Fatalf("nil err = %v", err)
	}
	bad := NewLogistic()
	bad.LearningRate = -1
	ok, _ := dataset.New("ok", [][]float64{{0}, {1}}, []int{0, 1})
	if err := bad.Fit(ok); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("bad rate err = %v", err)
	}
	oneClass, _ := dataset.New("one", [][]float64{{1}, {2}}, []int{0, 0})
	if err := l.Fit(oneClass); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("one class err = %v", err)
	}
	if err := l.Fit(ok); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Predict([]float64{1, 2}); !errors.Is(err, ErrDimMismatch) {
		t.Fatalf("dim err = %v", err)
	}
}

func TestLinearModelsRotationInvariance(t *testing.T) {
	// The ICDM'05 claim the paper builds on: linear classifiers trained on
	// rotated data match the clear-data accuracy (the boundary rotates
	// with the data).
	train, test := irisSplit(t, 23)
	rng := rand.New(rand.NewSource(24))
	p, err := perturb.NewRandom(rng, train.Dim(), 0)
	if err != nil {
		t.Fatal(err)
	}
	rotTrain, rotTest := train.Clone(), test.Clone()
	yTr, _ := p.ApplyNoiseless(train.FeaturesT())
	yTe, _ := p.ApplyNoiseless(test.FeaturesT())
	if err := rotTrain.ReplaceFeaturesT(yTr); err != nil {
		t.Fatal(err)
	}
	if err := rotTest.ReplaceFeaturesT(yTe); err != nil {
		t.Fatal(err)
	}

	models := map[string]func() Classifier{
		"perceptron": func() Classifier { return NewPerceptron(30) },
		"logistic":   func() Classifier { return NewLogistic() },
	}
	for name, factory := range models {
		base := factory()
		if err := base.Fit(train); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		clearAcc, err := Accuracy(base, test)
		if err != nil {
			t.Fatal(err)
		}
		rot := factory()
		if err := rot.Fit(rotTrain); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rotAcc, err := Accuracy(rot, rotTest)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(clearAcc-rotAcc) > 0.08 {
			t.Errorf("%s: accuracy changed under rotation: %v vs %v", name, clearAcc, rotAcc)
		}
	}
}

func TestSoftmaxSumsToOne(t *testing.T) {
	w := [][]float64{{1, 0, 0.5}, {0, 1, -0.5}, {-1, -1, 0}}
	out := make([]float64, 3)
	softmaxInto(w, []float64{0.3, -0.7}, out)
	var sum float64
	for _, v := range out {
		if v < 0 || v > 1 {
			t.Fatalf("probability %v out of [0,1]", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}
