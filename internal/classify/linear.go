package classify

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
)

// Perceptron is an averaged multi-class perceptron (one weight vector per
// class). Linear classifiers are among the models the companion ICDM'05
// paper shows to be invariant to rotation perturbation: rotating the inputs
// merely rotates the learned weight vectors.
type Perceptron struct {
	// Epochs is the number of training passes (default 20).
	Epochs int
	// Seed drives the per-epoch shuffle (default 1).
	Seed int64

	weights [][]float64 // class -> d+1 weights (bias last)
	dim     int
}

// NewPerceptron returns an unfitted averaged perceptron.
func NewPerceptron(epochs int) *Perceptron {
	if epochs <= 0 {
		epochs = 20
	}
	return &Perceptron{Epochs: epochs, Seed: 1}
}

var _ Classifier = (*Perceptron)(nil)

// Fit implements Classifier.
func (p *Perceptron) Fit(d *dataset.Dataset) error {
	if d == nil || d.Len() == 0 {
		return ErrEmptyTrain
	}
	nClasses := d.NumClasses()
	if nClasses < 2 {
		return fmt.Errorf("%w: need at least 2 classes", ErrBadConfig)
	}
	p.dim = d.Dim()
	w := make([][]float64, nClasses)
	acc := make([][]float64, nClasses) // averaged weights
	for c := range w {
		w[c] = make([]float64, p.dim+1)
		acc[c] = make([]float64, p.dim+1)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	order := make([]int, d.Len())
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < p.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, i := range order {
			x, y := d.X[i], d.Y[i]
			pred := argmaxScore(w, x)
			if pred != y {
				for j, v := range x {
					w[y][j] += v
					w[pred][j] -= v
				}
				w[y][p.dim]++
				w[pred][p.dim]--
			}
			for c := range w {
				for j := range w[c] {
					acc[c][j] += w[c][j]
				}
			}
		}
	}
	total := float64(p.Epochs * d.Len())
	for c := range acc {
		for j := range acc[c] {
			acc[c][j] /= total
		}
	}
	p.weights = acc
	return nil
}

// Predict implements Classifier.
func (p *Perceptron) Predict(x []float64) (int, error) {
	if p.weights == nil {
		return 0, ErrNotFitted
	}
	if len(x) != p.dim {
		return 0, fmt.Errorf("%w: got %d features, want %d", ErrDimMismatch, len(x), p.dim)
	}
	return argmaxScore(p.weights, x), nil
}

func argmaxScore(w [][]float64, x []float64) int {
	best, bestScore := 0, math.Inf(-1)
	for c := range w {
		s := w[c][len(x)] // bias
		for j, v := range x {
			s += w[c][j] * v
		}
		if s > bestScore {
			best, bestScore = c, s
		}
	}
	return best
}

// Logistic is multinomial logistic regression trained by batch gradient
// descent with L2 regularization. Its decision boundaries are linear, so
// accuracy is preserved under any invertible affine map of the features —
// in particular under geometric perturbation.
type Logistic struct {
	// LearningRate is the gradient step (default 0.5).
	LearningRate float64
	// Epochs is the number of full-batch iterations (default 200).
	Epochs int
	// L2 is the ridge penalty (default 1e-4).
	L2 float64

	weights [][]float64 // class -> d+1 (bias last)
	dim     int
}

// NewLogistic returns an unfitted multinomial logistic regression model.
func NewLogistic() *Logistic {
	return &Logistic{LearningRate: 0.5, Epochs: 200, L2: 1e-4}
}

var _ Classifier = (*Logistic)(nil)

// Fit implements Classifier.
func (l *Logistic) Fit(d *dataset.Dataset) error {
	if d == nil || d.Len() == 0 {
		return ErrEmptyTrain
	}
	nClasses := d.NumClasses()
	if nClasses < 2 {
		return fmt.Errorf("%w: need at least 2 classes", ErrBadConfig)
	}
	if l.LearningRate <= 0 || l.Epochs <= 0 {
		return fmt.Errorf("%w: rate=%v epochs=%d", ErrBadConfig, l.LearningRate, l.Epochs)
	}
	l.dim = d.Dim()
	n := float64(d.Len())
	w := make([][]float64, nClasses)
	for c := range w {
		w[c] = make([]float64, l.dim+1)
	}
	probs := make([]float64, nClasses)
	grad := make([][]float64, nClasses)
	for c := range grad {
		grad[c] = make([]float64, l.dim+1)
	}
	for epoch := 0; epoch < l.Epochs; epoch++ {
		for c := range grad {
			for j := range grad[c] {
				grad[c][j] = l.L2 * w[c][j]
			}
		}
		for i := range d.X {
			softmaxInto(w, d.X[i], probs)
			for c := range w {
				indicator := 0.0
				if d.Y[i] == c {
					indicator = 1
				}
				delta := (probs[c] - indicator) / n
				for j, v := range d.X[i] {
					grad[c][j] += delta * v
				}
				grad[c][l.dim] += delta
			}
		}
		for c := range w {
			for j := range w[c] {
				w[c][j] -= l.LearningRate * grad[c][j]
			}
		}
	}
	l.weights = w
	return nil
}

// Predict implements Classifier.
func (l *Logistic) Predict(x []float64) (int, error) {
	if l.weights == nil {
		return 0, ErrNotFitted
	}
	if len(x) != l.dim {
		return 0, fmt.Errorf("%w: got %d features, want %d", ErrDimMismatch, len(x), l.dim)
	}
	return argmaxScore(l.weights, x), nil
}

// softmaxInto writes class probabilities for x into out.
func softmaxInto(w [][]float64, x []float64, out []float64) {
	max := math.Inf(-1)
	for c := range w {
		s := w[c][len(x)]
		for j, v := range x {
			s += w[c][j] * v
		}
		out[c] = s
		if s > max {
			max = s
		}
	}
	var sum float64
	for c := range out {
		out[c] = math.Exp(out[c] - max)
		sum += out[c]
	}
	for c := range out {
		out[c] /= sum
	}
}
