package classify

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/matrix"
	"repro/internal/perturb"
)

func irisSplit(t *testing.T, seed int64) (train, test *dataset.Dataset) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	d, err := dataset.GenerateByName("Iris", rng)
	if err != nil {
		t.Fatal(err)
	}
	norm, _, err := dataset.Normalize(d)
	if err != nil {
		t.Fatal(err)
	}
	train, test, err = norm.Split(rng, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	return train, test
}

func TestNearestCentroidBasics(t *testing.T) {
	d, _ := dataset.New("t", [][]float64{
		{0, 0}, {0, 1}, {10, 10}, {10, 11},
	}, []int{0, 0, 1, 1})
	nc := NewNearestCentroid()
	if _, err := nc.Predict([]float64{0, 0}); !errors.Is(err, ErrNotFitted) {
		t.Fatalf("unfitted err = %v", err)
	}
	if err := nc.Fit(d); err != nil {
		t.Fatal(err)
	}
	got, err := nc.Predict([]float64{1, 1})
	if err != nil || got != 0 {
		t.Fatalf("Predict near class 0 = %d, %v", got, err)
	}
	got, err = nc.Predict([]float64{9, 9})
	if err != nil || got != 1 {
		t.Fatalf("Predict near class 1 = %d, %v", got, err)
	}
	if _, err := nc.Predict([]float64{1}); !errors.Is(err, ErrDimMismatch) {
		t.Fatalf("dim err = %v", err)
	}
	if err := nc.Fit(nil); !errors.Is(err, ErrEmptyTrain) {
		t.Fatalf("nil fit err = %v", err)
	}
}

// TestCloneReturnsFreshConfiguredInstance pins the Cloner contract every
// built-in classifier honors: the clone carries the original's
// configuration, starts unfitted, and fitting it never disturbs the
// original's predictions — the property background model swaps rely on.
func TestCloneReturnsFreshConfiguredInstance(t *testing.T) {
	train, test := irisSplit(t, 3)
	far, _ := dataset.New("far", [][]float64{
		{90, 90, 90, 90}, {91, 91, 91, 91}, {90.5, 90.5, 90.5, 90.5},
	}, []int{0, 1, 2})

	for name, original := range map[string]Cloner{
		"knn":      NewKNN(3),
		"svm":      NewSVM(SVMConfig{C: 2}),
		"centroid": NewNearestCentroid(),
	} {
		if err := original.Fit(train); err != nil {
			t.Fatalf("%s: fit original: %v", name, err)
		}
		before := make([]int, test.Len())
		for i, x := range test.X {
			label, err := original.Predict(x)
			if err != nil {
				t.Fatalf("%s: predict: %v", name, err)
			}
			before[i] = label
		}

		clone := original.Clone()
		if _, err := clone.Predict(test.X[0]); !errors.Is(err, ErrNotFitted) {
			t.Fatalf("%s: clone of a fitted model predicts without a fit: %v", name, err)
		}
		// Fitting the clone on disjoint data must leave the original's
		// predictions byte-identical.
		if err := clone.Fit(far); err != nil {
			t.Fatalf("%s: fit clone: %v", name, err)
		}
		for i, x := range test.X {
			label, err := original.Predict(x)
			if err != nil {
				t.Fatalf("%s: re-predict: %v", name, err)
			}
			if label != before[i] {
				t.Fatalf("%s: original prediction %d changed after fitting the clone (%d -> %d)",
					name, i, before[i], label)
			}
		}
	}
	// A KNN clone preserves its configuration.
	knn := &KNN{K: 7, ForceBrute: true}
	kc, ok := knn.Clone().(*KNN)
	if !ok || kc.K != 7 || !kc.ForceBrute {
		t.Fatalf("KNN clone = %+v, want K=7 ForceBrute", kc)
	}
}

func TestKNNAccuracyOnIris(t *testing.T) {
	train, test := irisSplit(t, 1)
	knn := NewKNN(5)
	if err := knn.Fit(train); err != nil {
		t.Fatal(err)
	}
	acc, err := Accuracy(knn, test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.85 {
		t.Errorf("KNN accuracy on Iris = %v, want >= 0.85", acc)
	}
}

func TestKNNBruteMatchesKDTree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d, err := dataset.GenerateByName("Diabetes", rng)
	if err != nil {
		t.Fatal(err)
	}
	norm, _, _ := dataset.Normalize(d)
	train, test, err := norm.Split(rng, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	brute := NewKNN(7)
	brute.ForceBrute = true
	tree := NewKNN(7)
	if err := brute.Fit(train); err != nil {
		t.Fatal(err)
	}
	if err := tree.Fit(train); err != nil {
		t.Fatal(err)
	}
	if tree.tree == nil {
		t.Fatal("kd-tree not built for a large training set")
	}
	for i := range test.X {
		a, err := brute.Predict(test.X[i])
		if err != nil {
			t.Fatal(err)
		}
		b, err := tree.Predict(test.X[i])
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("record %d: brute=%d kdtree=%d", i, a, b)
		}
	}
}

func TestKNNErrors(t *testing.T) {
	knn := NewKNN(0)
	if knn.K != 5 {
		t.Fatalf("default K = %d, want 5", knn.K)
	}
	if _, err := knn.Predict([]float64{1}); !errors.Is(err, ErrNotFitted) {
		t.Fatalf("unfitted err = %v", err)
	}
	small, _ := dataset.New("s", [][]float64{{1}, {2}}, []int{0, 1})
	big := NewKNN(10)
	if err := big.Fit(small); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("K>n err = %v", err)
	}
	if err := knn.Fit(small); err != nil {
		// K=5 > 2 records is also invalid.
		if !errors.Is(err, ErrBadConfig) {
			t.Fatalf("fit err = %v", err)
		}
	}
	one := NewKNN(1)
	if err := one.Fit(small); err != nil {
		t.Fatal(err)
	}
	if _, err := one.Predict([]float64{1, 2}); !errors.Is(err, ErrDimMismatch) {
		t.Fatalf("dim err = %v", err)
	}
}

func TestKNNRotationInvariance(t *testing.T) {
	// The property the paper builds on: KNN accuracy is unchanged when
	// train AND test go through the same rotation + translation.
	train, test := irisSplit(t, 3)
	knn := NewKNN(5)
	if err := knn.Fit(train); err != nil {
		t.Fatal(err)
	}
	base, err := Accuracy(knn, test)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(4))
	p, err := perturb.NewRandom(rng, train.Dim(), 0)
	if err != nil {
		t.Fatal(err)
	}
	rotTrain := train.Clone()
	rotTest := test.Clone()
	yTrain, err := p.ApplyNoiseless(train.FeaturesT())
	if err != nil {
		t.Fatal(err)
	}
	yTest, err := p.ApplyNoiseless(test.FeaturesT())
	if err != nil {
		t.Fatal(err)
	}
	if err := rotTrain.ReplaceFeaturesT(yTrain); err != nil {
		t.Fatal(err)
	}
	if err := rotTest.ReplaceFeaturesT(yTest); err != nil {
		t.Fatal(err)
	}
	knnRot := NewKNN(5)
	if err := knnRot.Fit(rotTrain); err != nil {
		t.Fatal(err)
	}
	rot, err := Accuracy(knnRot, rotTest)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(base-rot) > 0.03 {
		t.Errorf("KNN accuracy changed under rotation: %v vs %v", base, rot)
	}
}

func TestSVMBinaryLinearlySeparable(t *testing.T) {
	// Clearly separated clusters: the SVM must classify them perfectly.
	rng := rand.New(rand.NewSource(5))
	var x [][]float64
	var y []int
	for i := 0; i < 40; i++ {
		x = append(x, []float64{rng.NormFloat64()*0.3 - 2, rng.NormFloat64() * 0.3})
		y = append(y, 0)
		x = append(x, []float64{rng.NormFloat64()*0.3 + 2, rng.NormFloat64() * 0.3})
		y = append(y, 1)
	}
	d, _ := dataset.New("sep", x, y)
	svm := NewSVM(SVMConfig{Kernel: LinearKernel{}})
	if err := svm.Fit(d); err != nil {
		t.Fatal(err)
	}
	acc, err := Accuracy(svm, d)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.99 {
		t.Errorf("separable accuracy = %v, want ~1", acc)
	}
}

func TestSVMRBFOnIrisMulticlass(t *testing.T) {
	train, test := irisSplit(t, 6)
	svm := NewSVM(SVMConfig{})
	if err := svm.Fit(train); err != nil {
		t.Fatal(err)
	}
	acc, err := Accuracy(svm, test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.85 {
		t.Errorf("SVM(RBF) Iris accuracy = %v, want >= 0.85", acc)
	}
}

func TestSVMRotationInvariance(t *testing.T) {
	// RBF depends only on distances, so rotating+translating both sides
	// must leave accuracy essentially unchanged.
	train, test := irisSplit(t, 7)
	svm := NewSVM(SVMConfig{})
	if err := svm.Fit(train); err != nil {
		t.Fatal(err)
	}
	base, err := Accuracy(svm, test)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	p, err := perturb.NewRandom(rng, train.Dim(), 0)
	if err != nil {
		t.Fatal(err)
	}
	rotTrain, rotTest := train.Clone(), test.Clone()
	yTr, _ := p.ApplyNoiseless(train.FeaturesT())
	yTe, _ := p.ApplyNoiseless(test.FeaturesT())
	if err := rotTrain.ReplaceFeaturesT(yTr); err != nil {
		t.Fatal(err)
	}
	if err := rotTest.ReplaceFeaturesT(yTe); err != nil {
		t.Fatal(err)
	}
	svmRot := NewSVM(SVMConfig{})
	if err := svmRot.Fit(rotTrain); err != nil {
		t.Fatal(err)
	}
	rot, err := Accuracy(svmRot, rotTest)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(base-rot) > 0.05 {
		t.Errorf("SVM(RBF) accuracy changed under rotation: %v vs %v", base, rot)
	}
}

func TestSVMErrors(t *testing.T) {
	svm := NewSVM(SVMConfig{})
	if _, err := svm.Predict([]float64{1}); !errors.Is(err, ErrNotFitted) {
		t.Fatalf("unfitted err = %v", err)
	}
	if err := svm.Fit(nil); !errors.Is(err, ErrEmptyTrain) {
		t.Fatalf("nil err = %v", err)
	}
	oneClass, _ := dataset.New("one", [][]float64{{1}, {2}}, []int{0, 0})
	if err := svm.Fit(oneClass); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("one-class err = %v", err)
	}
	ok, _ := dataset.New("ok", [][]float64{{0}, {1}, {0.1}, {0.9}}, []int{0, 1, 0, 1})
	if err := svm.Fit(ok); err != nil {
		t.Fatal(err)
	}
	if _, err := svm.Predict([]float64{1, 2}); !errors.Is(err, ErrDimMismatch) {
		t.Fatalf("dim err = %v", err)
	}
}

func TestAccuracyEmptyTest(t *testing.T) {
	knn := NewKNN(1)
	empty := &dataset.Dataset{}
	if _, err := Accuracy(knn, empty); !errors.Is(err, ErrEmptyTrain) {
		t.Fatalf("err = %v", err)
	}
}

func TestConfusionMatrix(t *testing.T) {
	train, test := irisSplit(t, 9)
	knn := NewKNN(5)
	if err := knn.Fit(train); err != nil {
		t.Fatal(err)
	}
	cm, err := ConfusionMatrix(knn, test, 3)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, row := range cm {
		for _, v := range row {
			total += v
		}
	}
	if total != test.Len() {
		t.Fatalf("confusion total %d, want %d", total, test.Len())
	}
	if _, err := ConfusionMatrix(knn, test, 0); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("numClasses err = %v", err)
	}
	if _, err := ConfusionMatrix(knn, test, 2); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("label-out-of-range err = %v", err)
	}
}

func TestCrossValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	d, _ := dataset.GenerateByName("Iris", rng)
	norm, _, _ := dataset.Normalize(d)
	accs, err := CrossValidate(func() Classifier { return NewKNN(5) }, norm, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(accs) != 5 {
		t.Fatalf("%d folds, want 5", len(accs))
	}
	for i, a := range accs {
		if a < 0.7 {
			t.Errorf("fold %d accuracy %v unexpectedly low", i, a)
		}
	}
	if _, err := CrossValidate(func() Classifier { return NewKNN(1) }, norm, 1, rng); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("folds=1 err = %v", err)
	}
	tiny, _ := dataset.New("t", [][]float64{{1}, {2}}, []int{0, 1})
	if _, err := CrossValidate(func() Classifier { return NewKNN(1) }, tiny, 5, rng); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("tiny err = %v", err)
	}
}

func TestSVMDeterministicPerSeed(t *testing.T) {
	train, test := irisSplit(t, 11)
	run := func() float64 {
		svm := NewSVM(SVMConfig{Seed: 7})
		if err := svm.Fit(train); err != nil {
			t.Fatal(err)
		}
		acc, err := Accuracy(svm, test)
		if err != nil {
			t.Fatal(err)
		}
		return acc
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different accuracies: %v vs %v", a, b)
	}
}

func TestKernels(t *testing.T) {
	a := []float64{1, 0}
	b := []float64{0, 1}
	if got := (LinearKernel{}).Eval(a, b); got != 0 {
		t.Errorf("linear = %v, want 0", got)
	}
	if got := (LinearKernel{}).Eval(a, a); got != 1 {
		t.Errorf("linear self = %v, want 1", got)
	}
	rbf := RBFKernel{Gamma: 0.5}
	if got := rbf.Eval(a, a); got != 1 {
		t.Errorf("rbf self = %v, want 1", got)
	}
	if got := rbf.Eval(a, b); math.Abs(got-math.Exp(-1)) > 1e-12 {
		t.Errorf("rbf = %v, want e^-1", got)
	}
	if LinearKernel.Name(LinearKernel{}) != "linear" || rbf.Name() != "rbf" {
		t.Error("kernel names wrong")
	}
}

func TestKNNRotationInvarianceExactDistances(t *testing.T) {
	// Property check via matrices: perturbing with a pure rotation keeps
	// every pairwise distance, hence identical KNN neighbour sets.
	rng := rand.New(rand.NewSource(12))
	q := matrix.RandomOrthogonal(rng, 3)
	a := []float64{0.3, -0.2, 0.9}
	b := []float64{-0.1, 0.5, 0.4}
	ra := q.MulVec(a)
	rb := q.MulVec(b)
	if math.Abs(euclidean2(a, b)-euclidean2(ra, rb)) > 1e-12 {
		t.Fatal("rotation changed pairwise distance")
	}
}
