package classify

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

// codecTrainSet builds a deterministic 3-class training set large enough to
// push KNN onto its kd-tree path (>= kdTreeThreshold records).
func codecTrainSet(t *testing.T, n int) *dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		class := i % 3
		x[i] = []float64{
			float64(class) + 0.3*rng.NormFloat64(),
			float64(class)*0.5 + 0.3*rng.NormFloat64(),
			rng.Float64(),
		}
		y[i] = class
	}
	d, err := dataset.New("codec", x, y)
	if err != nil {
		t.Fatalf("dataset.New: %v", err)
	}
	return d
}

// codecProbes returns query points spread across the training range,
// including points equidistant-ish between classes to exercise tie paths.
func codecProbes(n int) [][]float64 {
	rng := rand.New(rand.NewSource(7))
	probes := make([][]float64, n)
	for i := range probes {
		probes[i] = []float64{3 * rng.Float64(), 2 * rng.Float64(), rng.Float64()}
	}
	return probes
}

// assertIdenticalPredictions asserts the decoded model predicts exactly the
// same class as the original on every probe — the replication contract: a
// replica built from the wire blob must be indistinguishable from the leader.
func assertIdenticalPredictions(t *testing.T, original, decoded Classifier, probes [][]float64) {
	t.Helper()
	for i, p := range probes {
		want, err := original.Predict(p)
		if err != nil {
			t.Fatalf("original predict %d: %v", i, err)
		}
		got, err := decoded.Predict(p)
		if err != nil {
			t.Fatalf("decoded predict %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("probe %d: decoded predicted %d, original %d", i, got, want)
		}
	}
}

// roundTrip encodes, decodes, and returns the reconstructed classifier.
func roundTrip(t *testing.T, c Classifier) Classifier {
	t.Helper()
	blob, err := EncodeModel(c)
	if err != nil {
		t.Fatalf("EncodeModel: %v", err)
	}
	decoded, err := DecodeModel(blob)
	if err != nil {
		t.Fatalf("DecodeModel: %v", err)
	}
	return decoded
}

// TestModelCodecRoundTrip is the contract test for every Cloner
// implementation: round-tripping a fitted model through the wire codec must
// yield byte-identical predictions. Mirrors the PR 5 refit regression: every
// classifier the serving layer can swap in must also be replicable.
func TestModelCodecRoundTrip(t *testing.T) {
	train := codecTrainSet(t, 120) // above kdTreeThreshold: exercises tree rebuild
	small := codecTrainSet(t, 30)  // below: exercises the brute-force path
	probes := codecProbes(200)

	cases := []struct {
		name  string
		model Cloner
		train *dataset.Dataset
	}{
		{"knn-kdtree", NewKNN(5), train},
		{"knn-brute-small", NewKNN(3), small},
		{"knn-force-brute", &KNN{K: 5, ForceBrute: true}, train},
		{"svm-rbf-default", NewSVM(SVMConfig{}), small},
		{"svm-linear", NewSVM(SVMConfig{Kernel: LinearKernel{}, C: 2, Seed: 9}), small},
		{"svm-rbf-tuned", NewSVM(SVMConfig{Kernel: RBFKernel{Gamma: 0.7}, MaxIter: 50}), small},
		{"nearest-centroid", NewNearestCentroid(), train},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.model.Fit(tc.train); err != nil {
				t.Fatalf("fit: %v", err)
			}
			decoded := roundTrip(t, tc.model)
			assertIdenticalPredictions(t, tc.model, decoded, probes)
		})
	}
}

// TestModelCodecDeterministic asserts the encoding itself is stable: two
// encodings of the same fitted model are byte-identical, so replicas can
// dedupe retransmissions by comparing blobs.
func TestModelCodecDeterministic(t *testing.T) {
	knn := NewKNN(5)
	if err := knn.Fit(codecTrainSet(t, 90)); err != nil {
		t.Fatalf("fit: %v", err)
	}
	a, err := EncodeModel(knn)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	b, err := EncodeModel(knn)
	if err != nil {
		t.Fatalf("encode again: %v", err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two encodings of the same model differ")
	}
}

// TestModelCodecDecodedIndependence asserts mutating the decoded instance
// (refitting it) never perturbs the original — replicas must not share state
// with the leader even in-process.
func TestModelCodecDecodedIndependence(t *testing.T) {
	train := codecTrainSet(t, 90)
	probes := codecProbes(50)
	knn := NewKNN(5)
	if err := knn.Fit(train); err != nil {
		t.Fatalf("fit: %v", err)
	}
	want := make([]int, len(probes))
	for i, p := range probes {
		want[i], _ = knn.Predict(p)
	}
	decoded := roundTrip(t, knn)
	// Refit the decoded copy on shifted data; the original must not move.
	shifted := codecTrainSet(t, 90).Clone()
	for _, row := range shifted.X {
		for j := range row {
			row[j] += 10
		}
	}
	if err := decoded.Fit(shifted); err != nil {
		t.Fatalf("refit decoded: %v", err)
	}
	for i, p := range probes {
		got, err := knn.Predict(p)
		if err != nil {
			t.Fatalf("original predict after decoded refit: %v", err)
		}
		if got != want[i] {
			t.Fatalf("probe %d: original's prediction changed after refitting the decoded copy", i)
		}
	}
}

// TestEncodeModelRejects covers the unencodable cases.
func TestEncodeModelRejects(t *testing.T) {
	t.Run("unfitted-knn", func(t *testing.T) {
		if _, err := EncodeModel(NewKNN(3)); !errors.Is(err, ErrNotFitted) {
			t.Fatalf("got %v, want ErrNotFitted", err)
		}
	})
	t.Run("unfitted-svm", func(t *testing.T) {
		if _, err := EncodeModel(NewSVM(SVMConfig{})); !errors.Is(err, ErrNotFitted) {
			t.Fatalf("got %v, want ErrNotFitted", err)
		}
	})
	t.Run("unfitted-centroid", func(t *testing.T) {
		if _, err := EncodeModel(NewNearestCentroid()); !errors.Is(err, ErrNotFitted) {
			t.Fatalf("got %v, want ErrNotFitted", err)
		}
	})
	t.Run("foreign-type", func(t *testing.T) {
		if _, err := EncodeModel(stubClassifier{}); !errors.Is(err, ErrBadConfig) {
			t.Fatalf("got %v, want ErrBadConfig", err)
		}
	})
	t.Run("custom-kernel", func(t *testing.T) {
		svm := NewSVM(SVMConfig{Kernel: customKernel{}})
		if err := svm.Fit(codecTrainSet(t, 30)); err != nil {
			t.Fatalf("fit: %v", err)
		}
		if _, err := EncodeModel(svm); !errors.Is(err, ErrBadConfig) {
			t.Fatalf("got %v, want ErrBadConfig", err)
		}
	})
}

// TestDecodeModelRejects covers malformed payloads.
func TestDecodeModelRejects(t *testing.T) {
	cases := []struct {
		name    string
		payload []byte
	}{
		{"empty", nil},
		{"one-byte", []byte{modelKindKNN}},
		{"unknown-kind", []byte{0xFF, 1, 2, 3}},
		{"garbage-knn-body", []byte{modelKindKNN, 0xDE, 0xAD}},
		{"garbage-svm-body", []byte{modelKindSVM, 0xDE, 0xAD}},
		{"garbage-centroid-body", []byte{modelKindCentroid, 0xDE, 0xAD}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeModel(tc.payload); !errors.Is(err, ErrBadModelBlob) {
				t.Fatalf("got %v, want ErrBadModelBlob", err)
			}
		})
	}
}

// stubClassifier is a non-built-in Classifier used to exercise the
// unencodable-type path.
type stubClassifier struct{}

func (stubClassifier) Fit(*dataset.Dataset) error     { return nil }
func (stubClassifier) Predict([]float64) (int, error) { return 0, nil }

// customKernel is a Kernel the wire format cannot name.
type customKernel struct{}

func (customKernel) Name() string                { return "custom" }
func (customKernel) Eval(a, b []float64) float64 { return LinearKernel{}.Eval(a, b) }
