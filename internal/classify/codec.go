package classify

// Wire codec for fitted classifiers. The cluster layer replicates each
// successful refit's swapped-in model from a group's leader node to its read
// replicas, so every built-in classifier must round-trip through an explicit
// byte encoding — not just its configuration (Cloner covers that) but its
// full fitted state, reconstructed so that the decoded instance's predictions
// are identical to the original's on every input.
//
// The format is one kind byte naming the concrete type followed by a gob
// encoding of an exported wire struct. Wire structs exist because the fitted
// state lives in unexported fields by design; they also pin the replication
// format independently of internal field layout.

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/matrix"
)

// ErrBadModelBlob flags a model payload that cannot be decoded: unknown
// model kind, truncated or corrupted body, or inconsistent fitted state.
var ErrBadModelBlob = errors.New("classify: malformed model encoding")

// Model kind bytes. One byte per concrete classifier type; the value is the
// first payload byte so foreign blobs fail fast.
const (
	modelKindKNN      byte = 'K'
	modelKindSVM      byte = 'S'
	modelKindCentroid byte = 'C'
)

// knnWire is the replication form of a fitted KNN: configuration plus the
// training records. Decoding re-runs Fit, which deterministically rebuilds
// the kd-tree (or keeps brute force), so the decoded instance searches the
// same neighbours in the same order as the original.
type knnWire struct {
	K          int
	ForceBrute bool
	Name       string
	X          [][]float64
	Y          []int
	// X32/Dim is the packed-float32 alternative to X (EncodeModelFloat32):
	// little-endian float32 records, Dim features each, at under half X's
	// gob footprint. Exactly one of X and X32 is populated.
	X32 []byte
	Dim int
}

// centroidWire is the replication form of a fitted NearestCentroid: the
// fitted centroids and their class labels, restored verbatim.
type centroidWire struct {
	Centroids [][]float64
	Classes   []int
	// C32/Dim is the packed-float32 alternative to Centroids.
	C32 []byte
	Dim int
}

// kernelWire names an SVM kernel on the wire. Only the built-in kernels are
// encodable; a custom Kernel implementation cannot be reconstructed remotely.
type kernelWire struct {
	Name  string // "linear" or "rbf"
	Gamma float64
}

// binaryWire is one fitted ±1 machine of a one-vs-one SVM: support records,
// their ±1 labels, the trained multipliers and the bias, restored verbatim so
// the decision function evaluates to the exact same floats.
type binaryWire struct {
	X     [][]float64
	Y     []float64
	Alpha []float64
	B     float64
	// X32 is the packed-float32 alternative to X (svmWire.Dim features per
	// record). The trained multipliers, labels and bias stay float64 — they
	// are one value per record, so packing them saves little, while the
	// support records dominate the payload.
	X32 []byte
}

// svmWire is the replication form of a fitted SVM.
type svmWire struct {
	Kernel    kernelWire
	C         float64
	Tol       float64
	MaxPasses int
	MaxIter   int
	Seed      int64
	Dim       int
	Pairs     [][2]int
	Binary    []binaryWire
}

// EncodeModel serializes a fitted built-in classifier (KNN, SVM or
// NearestCentroid) for replication. The encoding captures the full fitted
// state: DecodeModel returns an instance whose predictions are identical to
// c's on every input. Unfitted models and classifier types outside the
// built-in set are rejected.
func EncodeModel(c Classifier) ([]byte, error) {
	return encodeModel(c, false)
}

// EncodeModelFloat32 is EncodeModel with the model's record matrices packed
// as little-endian float32 — under half the gob bytes of the float64 form.
// The precision contract narrows accordingly: DecodeModel returns a model
// whose state is the float32 rounding of the original's (~7 significant
// digits), so predictions may differ on inputs near decision boundaries.
// Only send these blobs to peers that advertised the float32 capability;
// DecodeModel on any v7 peer handles both forms transparently.
func EncodeModelFloat32(c Classifier) ([]byte, error) {
	return encodeModel(c, true)
}

func encodeModel(c Classifier, f32 bool) ([]byte, error) {
	var kind byte
	var wire any
	switch m := c.(type) {
	case *KNN:
		if m.train == nil {
			return nil, fmt.Errorf("%w: cannot encode an unfitted KNN", ErrNotFitted)
		}
		kind = modelKindKNN
		w := knnWire{K: m.K, ForceBrute: m.ForceBrute, Name: m.train.Name, X: m.train.X, Y: m.train.Y}
		if f32 {
			if b, dim := matrix.PackFloat32Rows(w.X); dim > 0 {
				w.X32, w.Dim, w.X = b, dim, nil
			}
		}
		wire = w
	case *NearestCentroid:
		if len(m.centroids) == 0 {
			return nil, fmt.Errorf("%w: cannot encode an unfitted NearestCentroid", ErrNotFitted)
		}
		kind = modelKindCentroid
		w := centroidWire{Centroids: m.centroids, Classes: m.classes}
		if f32 {
			if b, dim := matrix.PackFloat32Rows(w.Centroids); dim > 0 {
				w.C32, w.Dim, w.Centroids = b, dim, nil
			}
		}
		wire = w
	case *SVM:
		if len(m.binary) == 0 {
			return nil, fmt.Errorf("%w: cannot encode an unfitted SVM", ErrNotFitted)
		}
		kw, err := encodeKernel(m.cfg.Kernel)
		if err != nil {
			return nil, err
		}
		w := svmWire{
			Kernel:    kw,
			C:         m.cfg.C,
			Tol:       m.cfg.Tol,
			MaxPasses: m.cfg.MaxPasses,
			MaxIter:   m.cfg.MaxIter,
			Seed:      m.cfg.Seed,
			Dim:       m.dim,
			Pairs:     m.pairs,
			Binary:    make([]binaryWire, len(m.binary)),
		}
		for i, bin := range m.binary {
			bw := binaryWire{X: bin.x, Y: bin.y, Alpha: bin.alpha, B: bin.b}
			if f32 {
				if b, dim := matrix.PackFloat32Rows(bw.X); dim == m.dim {
					bw.X32, bw.X = b, nil
				}
			}
			w.Binary[i] = bw
		}
		kind = modelKindSVM
		wire = w
	default:
		return nil, fmt.Errorf("%w: unencodable classifier type %T", ErrBadConfig, c)
	}
	var buf bytes.Buffer
	buf.WriteByte(kind)
	if err := gob.NewEncoder(&buf).Encode(wire); err != nil {
		return nil, fmt.Errorf("classify: encode model: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeModel reconstructs a classifier encoded with EncodeModel. The
// returned instance is fitted and independent of the encoder's: its
// predictions are identical to the source model's on every input.
func DecodeModel(payload []byte) (Classifier, error) {
	if len(payload) < 2 {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadModelBlob, len(payload))
	}
	dec := gob.NewDecoder(bytes.NewReader(payload[1:]))
	switch payload[0] {
	case modelKindKNN:
		var w knnWire
		if err := dec.Decode(&w); err != nil {
			return nil, fmt.Errorf("%w: knn body: %v", ErrBadModelBlob, err)
		}
		if len(w.X) == 0 && len(w.X32) > 0 {
			x, err := matrix.UnpackFloat32Rows(w.X32, w.Dim)
			if err != nil {
				return nil, fmt.Errorf("%w: knn float32 records: %v", ErrBadModelBlob, err)
			}
			w.X = x
		}
		train, err := dataset.New(w.Name, w.X, w.Y)
		if err != nil {
			return nil, fmt.Errorf("%w: knn training set: %v", ErrBadModelBlob, err)
		}
		knn := &KNN{K: w.K, ForceBrute: w.ForceBrute}
		if err := knn.Fit(train); err != nil {
			return nil, fmt.Errorf("%w: knn refit: %v", ErrBadModelBlob, err)
		}
		return knn, nil
	case modelKindCentroid:
		var w centroidWire
		if err := dec.Decode(&w); err != nil {
			return nil, fmt.Errorf("%w: centroid body: %v", ErrBadModelBlob, err)
		}
		if len(w.Centroids) == 0 && len(w.C32) > 0 {
			c, err := matrix.UnpackFloat32Rows(w.C32, w.Dim)
			if err != nil {
				return nil, fmt.Errorf("%w: centroid float32 records: %v", ErrBadModelBlob, err)
			}
			w.Centroids = c
		}
		if len(w.Centroids) == 0 || len(w.Centroids) != len(w.Classes) {
			return nil, fmt.Errorf("%w: %d centroids for %d classes", ErrBadModelBlob, len(w.Centroids), len(w.Classes))
		}
		return &NearestCentroid{centroids: w.Centroids, classes: w.Classes}, nil
	case modelKindSVM:
		var w svmWire
		if err := dec.Decode(&w); err != nil {
			return nil, fmt.Errorf("%w: svm body: %v", ErrBadModelBlob, err)
		}
		kernel, err := decodeKernel(w.Kernel)
		if err != nil {
			return nil, err
		}
		if len(w.Binary) == 0 || len(w.Binary) != len(w.Pairs) {
			return nil, fmt.Errorf("%w: %d machines for %d pairs", ErrBadModelBlob, len(w.Binary), len(w.Pairs))
		}
		cfg := SVMConfig{Kernel: kernel, C: w.C, Tol: w.Tol, MaxPasses: w.MaxPasses, MaxIter: w.MaxIter, Seed: w.Seed}
		svm := &SVM{cfg: cfg, dim: w.Dim, pairs: w.Pairs, binary: make([]*binarySVM, len(w.Binary))}
		for i, bw := range w.Binary {
			if len(bw.X) == 0 && len(bw.X32) > 0 {
				x, err := matrix.UnpackFloat32Rows(bw.X32, w.Dim)
				if err != nil {
					return nil, fmt.Errorf("%w: machine %d float32 records: %v", ErrBadModelBlob, i, err)
				}
				bw.X = x
			}
			if len(bw.X) != len(bw.Y) || len(bw.X) != len(bw.Alpha) {
				return nil, fmt.Errorf("%w: machine %d has inconsistent state", ErrBadModelBlob, i)
			}
			svm.binary[i] = &binarySVM{cfg: cfg, x: bw.X, y: bw.Y, alpha: bw.Alpha, b: bw.B}
		}
		return svm, nil
	default:
		return nil, fmt.Errorf("%w: unknown model kind 0x%02x", ErrBadModelBlob, payload[0])
	}
}

// encodeKernel maps a built-in kernel to its wire form.
func encodeKernel(k Kernel) (kernelWire, error) {
	switch kk := k.(type) {
	case LinearKernel:
		return kernelWire{Name: "linear"}, nil
	case RBFKernel:
		return kernelWire{Name: "rbf", Gamma: kk.Gamma}, nil
	default:
		return kernelWire{}, fmt.Errorf("%w: unencodable kernel type %T (built-in kernels only)", ErrBadConfig, k)
	}
}

// decodeKernel reconstructs a wire-form kernel.
func decodeKernel(w kernelWire) (Kernel, error) {
	switch w.Name {
	case "linear":
		return LinearKernel{}, nil
	case "rbf":
		if w.Gamma <= 0 {
			return nil, fmt.Errorf("%w: rbf kernel with gamma %v", ErrBadModelBlob, w.Gamma)
		}
		return RBFKernel{Gamma: w.Gamma}, nil
	default:
		return nil, fmt.Errorf("%w: unknown kernel %q", ErrBadModelBlob, w.Name)
	}
}
