package classify

import (
	"math"
	"testing"
)

// float32RelTol is the precision contract of EncodeModelFloat32: every
// packed value survives the float64→float32→float64 round trip within
// float32 machine epsilon relative error.
const float32RelTol = 1.2e-7

// assertFloat32Close fails unless got is the float32 rounding of want.
func assertFloat32Close(t *testing.T, label string, want, got float64) {
	t.Helper()
	if want == got {
		return
	}
	denom := math.Abs(want)
	if denom == 0 {
		denom = 1
	}
	if rel := math.Abs(want-got) / denom; rel > float32RelTol {
		t.Fatalf("%s: %v round-tripped to %v (relative error %.3g, contract %.3g)",
			label, want, got, rel, float32RelTol)
	}
	if float64(float32(want)) != got {
		t.Fatalf("%s: %v round-tripped to %v, want exactly float32(%v) = %v",
			label, want, got, want, float64(float32(want)))
	}
}

// roundTripFloat32 encodes with the float32 codec and decodes with the
// ordinary decoder — the mixed path replicas actually run.
func roundTripFloat32(t *testing.T, c Classifier) Classifier {
	t.Helper()
	blob, err := EncodeModelFloat32(c)
	if err != nil {
		t.Fatalf("EncodeModelFloat32: %v", err)
	}
	decoded, err := DecodeModel(blob)
	if err != nil {
		t.Fatalf("DecodeModel(float32 blob): %v", err)
	}
	return decoded
}

// TestFloat32CodecPrecisionContract pins the numeric contract of the
// float32 payload mode for every model kind: each packed feature value is
// exactly its float32 rounding (~7 significant digits, relative error
// ≤ 1.2e-7), and non-packed state (labels, multipliers, bias) is preserved
// bit for bit.
func TestFloat32CodecPrecisionContract(t *testing.T) {
	train := codecTrainSet(t, 60)

	t.Run("knn", func(t *testing.T) {
		knn := NewKNN(3)
		if err := knn.Fit(train); err != nil {
			t.Fatal(err)
		}
		decoded := roundTripFloat32(t, knn).(*KNN)
		if len(decoded.train.X) != len(knn.train.X) {
			t.Fatalf("decoded %d records, want %d", len(decoded.train.X), len(knn.train.X))
		}
		for i, row := range knn.train.X {
			for j, v := range row {
				assertFloat32Close(t, "knn record", v, decoded.train.X[i][j])
			}
			if decoded.train.Y[i] != knn.train.Y[i] {
				t.Fatalf("label %d changed: %d vs %d", i, decoded.train.Y[i], knn.train.Y[i])
			}
		}
	})

	t.Run("centroid", func(t *testing.T) {
		nc := NewNearestCentroid()
		if err := nc.Fit(train); err != nil {
			t.Fatal(err)
		}
		decoded := roundTripFloat32(t, nc).(*NearestCentroid)
		if len(decoded.centroids) != len(nc.centroids) {
			t.Fatalf("decoded %d centroids, want %d", len(decoded.centroids), len(nc.centroids))
		}
		for i, row := range nc.centroids {
			for j, v := range row {
				assertFloat32Close(t, "centroid", v, decoded.centroids[i][j])
			}
			if decoded.classes[i] != nc.classes[i] {
				t.Fatalf("class %d changed", i)
			}
		}
	})

	t.Run("svm", func(t *testing.T) {
		svm := NewSVM(SVMConfig{Kernel: LinearKernel{}, C: 2, Seed: 9})
		if err := svm.Fit(train); err != nil {
			t.Fatal(err)
		}
		decoded := roundTripFloat32(t, svm).(*SVM)
		if len(decoded.binary) != len(svm.binary) {
			t.Fatalf("decoded %d machines, want %d", len(decoded.binary), len(svm.binary))
		}
		for m, bin := range svm.binary {
			db := decoded.binary[m]
			for i, row := range bin.x {
				for j, v := range row {
					assertFloat32Close(t, "svm support record", v, db.x[i][j])
				}
				// Multipliers, labels and bias stay float64 on the wire:
				// they must survive bit for bit.
				if db.alpha[i] != bin.alpha[i] || db.y[i] != bin.y[i] {
					t.Fatalf("machine %d: alpha/label %d changed", m, i)
				}
			}
			if db.b != bin.b {
				t.Fatalf("machine %d: bias changed: %v vs %v", m, db.b, bin.b)
			}
		}
	})
}

// TestFloat32CodecPredictions checks the practical contract: on a training
// set whose class structure sits far above the quantization error, the
// float32-replicated model predicts identically to the original.
func TestFloat32CodecPredictions(t *testing.T) {
	train := codecTrainSet(t, 120)
	probes := codecProbes(200)
	models := []struct {
		name  string
		model Cloner
	}{
		{"knn", NewKNN(5)},
		{"centroid", NewNearestCentroid()},
		{"svm", NewSVM(SVMConfig{Kernel: LinearKernel{}, C: 2, Seed: 9})},
	}
	for _, tc := range models {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.model.Fit(train); err != nil {
				t.Fatal(err)
			}
			decoded := roundTripFloat32(t, tc.model)
			assertIdenticalPredictions(t, tc.model, decoded, probes)
		})
	}
}

// TestFloat32CodecHalvesBlob pins the size win that justifies the mode: the
// float32 blob of a record-heavy model is at most ~55% of the float64 blob
// (the packed matrix halves; gob framing is shared overhead).
func TestFloat32CodecHalvesBlob(t *testing.T) {
	knn := NewKNN(3)
	if err := knn.Fit(codecTrainSet(t, 400)); err != nil {
		t.Fatal(err)
	}
	plain, err := EncodeModel(knn)
	if err != nil {
		t.Fatal(err)
	}
	packed, err := EncodeModelFloat32(knn)
	if err != nil {
		t.Fatal(err)
	}
	if float64(len(packed)) > 0.55*float64(len(plain)) {
		t.Fatalf("float32 blob is %d bytes vs %d plain — wanted at most 55%%",
			len(packed), len(plain))
	}
}
