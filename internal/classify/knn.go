package classify

import (
	"fmt"
	"sort"

	"repro/internal/dataset"
)

// KNN is a K-nearest-neighbours classifier with majority voting (ties break
// to the smaller class index for determinism). Search uses a kd-tree when
// the training set is large enough to amortize it and brute force otherwise;
// both paths return identical results.
type KNN struct {
	// K is the neighbourhood size (default 5).
	K int
	// ForceBrute disables the kd-tree (used by tests to cross-check).
	ForceBrute bool

	train *dataset.Dataset
	tree  *kdTree
}

// NewKNN returns an unfitted KNN classifier with the given K (0 selects the
// default of 5).
func NewKNN(k int) *KNN {
	if k <= 0 {
		k = 5
	}
	return &KNN{K: k}
}

var _ Cloner = (*KNN)(nil)

// Clone implements Cloner: a fresh unfitted KNN with the same K and search
// strategy.
func (k *KNN) Clone() Classifier { return &KNN{K: k.K, ForceBrute: k.ForceBrute} }

// kdTreeThreshold is the training-set size above which the kd-tree is used.
const kdTreeThreshold = 64

// Fit implements Classifier.
func (k *KNN) Fit(d *dataset.Dataset) error {
	if d == nil || d.Len() == 0 {
		return ErrEmptyTrain
	}
	if k.K > d.Len() {
		return fmt.Errorf("%w: K=%d exceeds training size %d", ErrBadConfig, k.K, d.Len())
	}
	k.train = d.Clone()
	k.tree = nil
	if !k.ForceBrute && d.Len() >= kdTreeThreshold {
		k.tree = buildKDTree(k.train)
	}
	return nil
}

// Predict implements Classifier.
func (k *KNN) Predict(x []float64) (int, error) {
	if k.train == nil {
		return 0, ErrNotFitted
	}
	if len(x) != k.train.Dim() {
		return 0, fmt.Errorf("%w: got %d features, want %d", ErrDimMismatch, len(x), k.train.Dim())
	}
	var nbrs []neighbor
	if k.tree != nil {
		nbrs = k.tree.search(x, k.K)
	} else {
		nbrs = k.bruteSearch(x)
	}
	votes := make(map[int]int, k.K)
	for _, nb := range nbrs {
		votes[k.train.Y[nb.index]]++
	}
	best, bestVotes := -1, -1
	for class, v := range votes {
		if v > bestVotes || (v == bestVotes && class < best) {
			best, bestVotes = class, v
		}
	}
	return best, nil
}

type neighbor struct {
	index int
	dist2 float64
}

func (k *KNN) bruteSearch(x []float64) []neighbor {
	nbrs := make([]neighbor, 0, k.train.Len())
	for i, row := range k.train.X {
		nbrs = append(nbrs, neighbor{index: i, dist2: euclidean2(x, row)})
	}
	sort.Slice(nbrs, func(a, b int) bool {
		if nbrs[a].dist2 != nbrs[b].dist2 {
			return nbrs[a].dist2 < nbrs[b].dist2
		}
		return nbrs[a].index < nbrs[b].index
	})
	return nbrs[:k.K]
}

// kdTree is a static kd-tree over the training records.
type kdTree struct {
	data  *dataset.Dataset
	nodes []kdNode
	root  int
}

type kdNode struct {
	index       int // record index at this node
	axis        int
	left, right int // node indices, -1 for none
}

func buildKDTree(d *dataset.Dataset) *kdTree {
	t := &kdTree{data: d, nodes: make([]kdNode, 0, d.Len())}
	indices := make([]int, d.Len())
	for i := range indices {
		indices[i] = i
	}
	t.root = t.build(indices, 0)
	return t
}

func (t *kdTree) build(indices []int, depth int) int {
	if len(indices) == 0 {
		return -1
	}
	axis := depth % t.data.Dim()
	sort.Slice(indices, func(a, b int) bool {
		va, vb := t.data.X[indices[a]][axis], t.data.X[indices[b]][axis]
		if va != vb {
			return va < vb
		}
		return indices[a] < indices[b]
	})
	mid := len(indices) / 2
	nodeIdx := len(t.nodes)
	t.nodes = append(t.nodes, kdNode{index: indices[mid], axis: axis, left: -1, right: -1})
	left := append([]int(nil), indices[:mid]...)
	right := append([]int(nil), indices[mid+1:]...)
	l := t.build(left, depth+1)
	r := t.build(right, depth+1)
	t.nodes[nodeIdx].left = l
	t.nodes[nodeIdx].right = r
	return nodeIdx
}

// knnHeap is a bounded max-heap of the current k best neighbours.
type knnHeap struct {
	items []neighbor
	cap   int
}

func (h *knnHeap) worst() float64 {
	if len(h.items) < h.cap {
		return -1 // not full: everything qualifies
	}
	return h.items[0].dist2
}

func (h *knnHeap) push(nb neighbor) {
	if len(h.items) < h.cap {
		h.items = append(h.items, nb)
		h.up(len(h.items) - 1)
		return
	}
	if nb.dist2 < h.items[0].dist2 ||
		(nb.dist2 == h.items[0].dist2 && nb.index < h.items[0].index) {
		h.items[0] = nb
		h.down(0)
	}
}

func (h *knnHeap) less(a, b int) bool {
	// Max-heap by distance; on ties the larger index is "worse" so results
	// match the brute-force order exactly.
	if h.items[a].dist2 != h.items[b].dist2 {
		return h.items[a].dist2 > h.items[b].dist2
	}
	return h.items[a].index > h.items[b].index
}

func (h *knnHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *knnHeap) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && h.less(l, largest) {
			largest = l
		}
		if r < n && h.less(r, largest) {
			largest = r
		}
		if largest == i {
			return
		}
		h.items[i], h.items[largest] = h.items[largest], h.items[i]
		i = largest
	}
}

func (t *kdTree) search(x []float64, k int) []neighbor {
	h := &knnHeap{cap: k}
	t.searchNode(t.root, x, h)
	out := append([]neighbor(nil), h.items...)
	sort.Slice(out, func(a, b int) bool {
		if out[a].dist2 != out[b].dist2 {
			return out[a].dist2 < out[b].dist2
		}
		return out[a].index < out[b].index
	})
	return out
}

func (t *kdTree) searchNode(node int, x []float64, h *knnHeap) {
	if node < 0 {
		return
	}
	n := t.nodes[node]
	point := t.data.X[n.index]
	h.push(neighbor{index: n.index, dist2: euclidean2(x, point)})

	diff := x[n.axis] - point[n.axis]
	near, far := n.left, n.right
	if diff > 0 {
		near, far = n.right, n.left
	}
	t.searchNode(near, x, h)
	if worst := h.worst(); worst < 0 || diff*diff <= worst {
		t.searchNode(far, x, h)
	}
}
