// Package classify implements the classifiers the paper evaluates —
// K-nearest-neighbours and an SMO-trained SVM with RBF kernel — plus a
// nearest-centroid baseline and a model-evaluation harness. Both headline
// classifiers are invariant to rotation and translation of the feature
// space, the property geometric perturbation relies on.
package classify

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
)

// Errors returned by classifiers and the evaluation harness.
var (
	ErrNotFitted   = errors.New("classify: model not fitted")
	ErrEmptyTrain  = errors.New("classify: empty training set")
	ErrDimMismatch = errors.New("classify: feature dimension mismatch")
	ErrBadConfig   = errors.New("classify: bad configuration")
)

// Classifier is a trainable multi-class classifier.
type Classifier interface {
	// Fit trains on the dataset.
	Fit(d *dataset.Dataset) error
	// Predict returns the class for one feature vector.
	Predict(x []float64) (int, error)
}

// Cloner is implemented by classifiers that can hand out a fresh, unfitted
// instance of themselves — same configuration, no training state. Serving
// layers rely on it to retrain off to the side: a replacement model is
// fitted on a training-set snapshot while the original instance keeps
// answering predictions untouched, and is only swapped in once its fit
// succeeded. All built-in classifiers (KNN, SVM, NearestCentroid) implement
// it; wrappers should return a clone that preserves whatever state makes
// the wrapper meaningful.
type Cloner interface {
	Classifier
	// Clone returns a fresh unfitted classifier with the same configuration.
	Clone() Classifier
}

// Accuracy scores a fitted classifier on a test set: the fraction of
// correctly predicted records.
func Accuracy(c Classifier, test *dataset.Dataset) (float64, error) {
	if test.Len() == 0 {
		return 0, ErrEmptyTrain
	}
	correct := 0
	for i := range test.X {
		got, err := c.Predict(test.X[i])
		if err != nil {
			return 0, fmt.Errorf("predict record %d: %w", i, err)
		}
		if got == test.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(test.Len()), nil
}

// ConfusionMatrix returns counts[i][j] = records of true class i predicted
// as class j.
func ConfusionMatrix(c Classifier, test *dataset.Dataset, numClasses int) ([][]int, error) {
	if numClasses <= 0 {
		return nil, fmt.Errorf("%w: numClasses=%d", ErrBadConfig, numClasses)
	}
	counts := make([][]int, numClasses)
	for i := range counts {
		counts[i] = make([]int, numClasses)
	}
	for i := range test.X {
		got, err := c.Predict(test.X[i])
		if err != nil {
			return nil, fmt.Errorf("predict record %d: %w", i, err)
		}
		if got < 0 || got >= numClasses || test.Y[i] >= numClasses {
			return nil, fmt.Errorf("%w: label %d/%d outside %d classes", ErrBadConfig, got, test.Y[i], numClasses)
		}
		counts[test.Y[i]][got]++
	}
	return counts, nil
}

// CrossValidate runs stratified k-fold cross-validation, returning the
// per-fold accuracies. factory must return a fresh unfitted classifier.
func CrossValidate(factory func() Classifier, d *dataset.Dataset, folds int, rng *rand.Rand) ([]float64, error) {
	if folds < 2 {
		return nil, fmt.Errorf("%w: folds=%d", ErrBadConfig, folds)
	}
	if d.Len() < folds {
		return nil, fmt.Errorf("%w: %d records for %d folds", ErrBadConfig, d.Len(), folds)
	}
	// Stratified fold assignment: deal each class's shuffled indices
	// round-robin across folds.
	assignment := make([]int, d.Len())
	byClass := make(map[int][]int)
	for i, y := range d.Y {
		byClass[y] = append(byClass[y], i)
	}
	next := 0
	for c := 0; c < d.NumClasses(); c++ {
		idx := byClass[c]
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for _, i := range idx {
			assignment[i] = next % folds
			next++
		}
	}
	accs := make([]float64, 0, folds)
	for f := 0; f < folds; f++ {
		var trainIdx, testIdx []int
		for i, a := range assignment {
			if a == f {
				testIdx = append(testIdx, i)
			} else {
				trainIdx = append(trainIdx, i)
			}
		}
		if len(testIdx) == 0 || len(trainIdx) == 0 {
			return nil, fmt.Errorf("%w: fold %d is empty", ErrBadConfig, f)
		}
		clf := factory()
		if err := clf.Fit(d.Subset(trainIdx)); err != nil {
			return nil, fmt.Errorf("fold %d fit: %w", f, err)
		}
		acc, err := Accuracy(clf, d.Subset(testIdx))
		if err != nil {
			return nil, fmt.Errorf("fold %d score: %w", f, err)
		}
		accs = append(accs, acc)
	}
	return accs, nil
}

// euclidean2 returns the squared Euclidean distance between equal-length
// vectors.
func euclidean2(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// NearestCentroid is a simple rotation-invariant baseline: predict the class
// of the closest class centroid.
type NearestCentroid struct {
	centroids [][]float64
	classes   []int
}

// NewNearestCentroid returns an unfitted nearest-centroid classifier.
func NewNearestCentroid() *NearestCentroid { return &NearestCentroid{} }

var _ Cloner = (*NearestCentroid)(nil)

// Clone implements Cloner.
func (nc *NearestCentroid) Clone() Classifier { return NewNearestCentroid() }

// Fit implements Classifier.
func (nc *NearestCentroid) Fit(d *dataset.Dataset) error {
	if d == nil || d.Len() == 0 {
		return ErrEmptyTrain
	}
	k := d.NumClasses()
	sums := make([][]float64, k)
	counts := make([]int, k)
	for i := range sums {
		sums[i] = make([]float64, d.Dim())
	}
	for i, row := range d.X {
		c := d.Y[i]
		counts[c]++
		for j, v := range row {
			sums[c][j] += v
		}
	}
	nc.centroids = nc.centroids[:0]
	nc.classes = nc.classes[:0]
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			continue
		}
		for j := range sums[c] {
			sums[c][j] /= float64(counts[c])
		}
		nc.centroids = append(nc.centroids, sums[c])
		nc.classes = append(nc.classes, c)
	}
	return nil
}

// Predict implements Classifier.
func (nc *NearestCentroid) Predict(x []float64) (int, error) {
	if len(nc.centroids) == 0 {
		return 0, ErrNotFitted
	}
	if len(x) != len(nc.centroids[0]) {
		return 0, fmt.Errorf("%w: got %d features, want %d", ErrDimMismatch, len(x), len(nc.centroids[0]))
	}
	best, bestDist := 0, math.Inf(1)
	for i, c := range nc.centroids {
		if d := euclidean2(x, c); d < bestDist {
			best, bestDist = i, d
		}
	}
	return nc.classes[best], nil
}
