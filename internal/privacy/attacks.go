package privacy

import (
	"errors"
	"fmt"

	"repro/internal/matrix"
	"repro/internal/stat"
)

// ErrInapplicable marks an attack that cannot run on the given input or
// knowledge; the evaluator records and skips it.
var ErrInapplicable = errors.New("privacy: attack inapplicable")

// NaiveAttack estimates the original data by min-max re-normalizing each
// perturbed dimension into [0, 1], exploiting only the public fact that the
// original data was normalized. It is the baseline every perturbation must
// beat.
type NaiveAttack struct{}

// NewNaiveAttack returns the naive estimation attack.
func NewNaiveAttack() *NaiveAttack { return &NaiveAttack{} }

// Name implements Attack.
func (*NaiveAttack) Name() string { return "naive" }

// Estimate implements Attack.
func (*NaiveAttack) Estimate(y *matrix.Dense, _ Knowledge) (*matrix.Dense, error) {
	if y.Cols() < 2 {
		return nil, fmt.Errorf("%w: naive needs at least 2 records", ErrInapplicable)
	}
	out := matrix.New(y.Rows(), y.Cols())
	for j := 0; j < y.Rows(); j++ {
		row := y.Row(j)
		lo, _ := stat.Min(row)
		hi, _ := stat.Max(row)
		span := hi - lo
		for i, v := range row {
			if span == 0 {
				out.Set(j, i, 0.5)
				continue
			}
			out.Set(j, i, (v-lo)/span)
		}
	}
	return out, nil
}

// PCAAttack re-aligns the principal axes of the perturbed data with the
// principal axes of the original distribution. The attacker is assumed to
// know the original covariance structure and per-dimension means (public
// aggregate statistics, or estimated from a comparable population); this is
// the worst case for the defender, matching the paper's attacker-optimal
// evaluation stance.
type PCAAttack struct{}

// NewPCAAttack returns the PCA re-alignment attack.
func NewPCAAttack() *PCAAttack { return &PCAAttack{} }

// Name implements Attack.
func (*PCAAttack) Name() string { return "pca" }

// Estimate implements Attack.
func (*PCAAttack) Estimate(y *matrix.Dense, know Knowledge) (*matrix.Dense, error) {
	if know.Original == nil {
		return nil, fmt.Errorf("%w: pca needs distribution knowledge", ErrInapplicable)
	}
	if y.Cols() <= y.Rows() {
		return nil, fmt.Errorf("%w: pca needs more records than dimensions", ErrInapplicable)
	}
	x := know.Original
	yc, _ := centerRows(y)
	xc, xMeans := centerRows(x)

	_, vy, err := eigenOfCovariance(yc)
	if err != nil {
		return nil, fmt.Errorf("%w: perturbed covariance: %v", ErrInapplicable, err)
	}
	_, vx, err := eigenOfCovariance(xc)
	if err != nil {
		return nil, fmt.Errorf("%w: original covariance: %v", ErrInapplicable, err)
	}

	// Project both datasets on their own principal axes.
	py := vy.T().Mul(yc)
	px := vx.T().Mul(xc)

	// Resolve per-axis sign ambiguity attacker-optimally: pick the sign
	// that correlates each perturbed score with the original score.
	d := y.Rows()
	for j := 0; j < d; j++ {
		r, err := stat.Correlation(py.Row(j), px.Row(j))
		if err == nil && r < 0 {
			for i := 0; i < py.Cols(); i++ {
				py.Set(j, i, -py.At(j, i))
			}
		}
	}

	// Reconstruct in the original basis and restore means.
	xhat := vx.Mul(py)
	addRowConstants(xhat, xMeans)
	return xhat, nil
}

// ProcrustesAttack is the known-sample (distance-inference) attack: given m
// matched (original, perturbed) record pairs, it solves the orthogonal
// Procrustes problem for the rotation, estimates the translation, and
// inverts the perturbation for the whole dataset.
type ProcrustesAttack struct{}

// NewProcrustesAttack returns the known-sample alignment attack.
func NewProcrustesAttack() *ProcrustesAttack { return &ProcrustesAttack{} }

// Name implements Attack.
func (*ProcrustesAttack) Name() string { return "procrustes" }

// Estimate implements Attack.
func (*ProcrustesAttack) Estimate(y *matrix.Dense, know Knowledge) (*matrix.Dense, error) {
	xk, yk := know.KnownOriginal, know.KnownPerturbed
	if xk == nil || yk == nil {
		return nil, fmt.Errorf("%w: procrustes needs known record pairs", ErrInapplicable)
	}
	if xk.Rows() != y.Rows() || yk.Rows() != y.Rows() || xk.Cols() != yk.Cols() {
		return nil, fmt.Errorf("%w: known-pair shapes %dx%d / %dx%d for data %dx%d",
			ErrInapplicable, xk.Rows(), xk.Cols(), yk.Rows(), yk.Cols(), y.Rows(), y.Cols())
	}
	if xk.Cols() < 2 {
		return nil, fmt.Errorf("%w: procrustes needs at least 2 known pairs", ErrInapplicable)
	}
	xkc, xkMeans := centerRows(xk)
	ykc, ykMeans := centerRows(yk)

	// R̂ = argmin_R ‖Y_kc − R·X_kc‖_F = U·Vᵀ with U Σ Vᵀ = SVD(Y_kc·X_kcᵀ).
	cross := ykc.Mul(xkc.T())
	svd, err := matrix.SVD(cross)
	if err != nil {
		return nil, fmt.Errorf("%w: procrustes svd: %v", ErrInapplicable, err)
	}
	rhat := svd.U.Mul(svd.V.T())

	// t̂ = mean(Y_k) − R̂·mean(X_k); X̂ = R̂ᵀ·(Y − t̂·1ᵀ).
	rx := rhat.MulVec(xkMeans)
	that := make([]float64, len(ykMeans))
	for i := range that {
		that[i] = ykMeans[i] - rx[i]
	}
	shifted := y.Clone()
	negT := make([]float64, len(that))
	for i, v := range that {
		negT[i] = -v
	}
	addRowConstants(shifted, negT)
	return rhat.T().Mul(shifted), nil
}

// centerRows returns a copy of m with each row mean-centered, plus the
// removed row means.
func centerRows(m *matrix.Dense) (*matrix.Dense, []float64) {
	out := m.Clone()
	means := make([]float64, m.Rows())
	for j := 0; j < m.Rows(); j++ {
		means[j] = stat.Mean(m.Row(j))
		for i := 0; i < m.Cols(); i++ {
			out.Set(j, i, out.At(j, i)-means[j])
		}
	}
	return out, means
}

// addRowConstants adds c[j] to every element of row j in place.
func addRowConstants(m *matrix.Dense, c []float64) {
	for j := 0; j < m.Rows(); j++ {
		if c[j] == 0 {
			continue
		}
		for i := 0; i < m.Cols(); i++ {
			m.Set(j, i, m.At(j, i)+c[j])
		}
	}
}

// eigenOfCovariance computes the eigendecomposition of the row covariance
// of centered data (d×N).
func eigenOfCovariance(centered *matrix.Dense) ([]float64, *matrix.Dense, error) {
	n := float64(centered.Cols())
	cov := centered.Mul(centered.T()).Scale(1 / n)
	return matrix.EigenSym(cov)
}
