package privacy

// Coalition (diversity-attack) evaluation for multi-level trust serving
// (PAPERS.md, Li et al.): a group served at several trust levels must
// guarantee that an adversary pooling any coalition of views learns no more
// than the coalition's least-noisy member view alone. The evaluator below
// makes that check empirical: it forms the attacker-optimal pooled estimate
// of every coalition (precision-weighted averaging, the linear-unbiased
// combination an adversary who knows the per-view noise levels would use)
// and runs the existing attack suite against it, reporting the privacy
// "gain" pooling bought relative to the weakest member. Correlated
// ladder noise (perturb.NoiseLadder) keeps every gain at ~0; independent
// per-view draws show positive gains, which is the diversity attack.

import (
	"fmt"
	"sort"

	"repro/internal/matrix"
)

// TrustView is one served view of the same underlying data, at its absolute
// additive-noise level.
type TrustView struct {
	// Level is the view's trust rank (display only; smaller = more trusted).
	Level int
	// Sigma is the absolute per-element noise σ the view carries.
	Sigma float64
	// Data is the view's perturbed data, d×N columns-per-record.
	Data *matrix.Dense
}

// ViewReport is one view's individual attack evaluation.
type ViewReport struct {
	Level  int
	Sigma  float64
	Report *Report
}

// CoalitionReport is one coalition's pooled attack evaluation.
type CoalitionReport struct {
	// Levels are the member views' trust levels, ascending.
	Levels []int
	// Pooled is the attack report against the precision-weighted pooled
	// estimate of the member views.
	Pooled *Report
	// Weakest is the smallest MinGuarantee among the members — the bound the
	// least-noisy member already concedes on its own.
	Weakest float64
	// Gain is Weakest − Pooled.MinGuarantee: how much privacy the coalition
	// recovered beyond its weakest member. Correlated ladder noise keeps this
	// at ~0 (within attack-estimation jitter); a positive gain means pooling
	// genuinely helped the attacker.
	Gain float64
}

// DiversityReport aggregates the multi-level evaluation: every view alone,
// then every coalition of two or more views.
type DiversityReport struct {
	Views      []ViewReport
	Coalitions []CoalitionReport
	// MaxGain is the largest coalition Gain — the headline number the
	// coalition-safety guarantee bounds near zero.
	MaxGain float64
}

// PoolViews forms the attacker-optimal linear combination of several views
// of the same data: each view weighted by its noise precision 1/σ² (a
// zero-σ view dominates, as it should — the attacker just reads it).
func PoolViews(views []TrustView) (*matrix.Dense, error) {
	if len(views) == 0 {
		return nil, fmt.Errorf("%w: no views to pool", ErrDimMismatch)
	}
	const eps = 1e-9
	d, n := views[0].Data.Rows(), views[0].Data.Cols()
	var total float64
	pooled := matrix.New(d, n)
	for _, v := range views {
		if v.Data.Rows() != d || v.Data.Cols() != n {
			return nil, fmt.Errorf("%w: view level %d is %dx%d, want %dx%d",
				ErrDimMismatch, v.Level, v.Data.Rows(), v.Data.Cols(), d, n)
		}
		w := 1 / (v.Sigma*v.Sigma + eps)
		total += w
		for i := 0; i < d; i++ {
			for j := 0; j < n; j++ {
				pooled.Set(i, j, pooled.At(i, j)+w*v.Data.At(i, j))
			}
		}
	}
	return pooled.Scale(1 / total), nil
}

// EvaluateCoalitions runs the evaluator's attack suite against every view
// and against the pooled estimate of every coalition of two or more views.
// x is the reference data the views perturb (same convention as Evaluate);
// know is shared by every evaluation. Views are evaluated in ascending
// level order regardless of input order.
func (e *Evaluator) EvaluateCoalitions(x *matrix.Dense, views []TrustView, know Knowledge) (*DiversityReport, error) {
	if len(views) == 0 {
		return nil, fmt.Errorf("%w: no views", ErrDimMismatch)
	}
	ordered := append([]TrustView(nil), views...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Level < ordered[j].Level })

	out := &DiversityReport{Views: make([]ViewReport, 0, len(ordered))}
	for _, v := range ordered {
		rep, err := e.Evaluate(x, v.Data, know)
		if err != nil {
			return nil, fmt.Errorf("view level %d: %w", v.Level, err)
		}
		out.Views = append(out.Views, ViewReport{Level: v.Level, Sigma: v.Sigma, Report: rep})
	}

	// Every coalition of ≥ 2 views: subsets by bitmask, 2^k − k − 1 of them.
	k := len(ordered)
	for mask := 3; mask < 1<<k; mask++ {
		members := make([]TrustView, 0, k)
		levels := make([]int, 0, k)
		weakest := 0.0
		for i := 0; i < k; i++ {
			if mask&(1<<i) == 0 {
				continue
			}
			members = append(members, ordered[i])
			levels = append(levels, ordered[i].Level)
			g := out.Views[i].Report.MinGuarantee
			if len(members) == 1 || g < weakest {
				weakest = g
			}
		}
		if len(members) < 2 {
			continue
		}
		pooled, err := PoolViews(members)
		if err != nil {
			return nil, err
		}
		rep, err := e.Evaluate(x, pooled, know)
		if err != nil {
			return nil, fmt.Errorf("coalition %v: %w", levels, err)
		}
		cr := CoalitionReport{
			Levels:  levels,
			Pooled:  rep,
			Weakest: weakest,
			Gain:    weakest - rep.MinGuarantee,
		}
		out.Coalitions = append(out.Coalitions, cr)
		if cr.Gain > out.MaxGain {
			out.MaxGain = cr.Gain
		}
	}
	return out, nil
}
