package privacy

import (
	"math/rand"
	"testing"

	"repro/internal/matrix"
	"repro/internal/perturb"
)

// uniformData draws d×n data uniform in [0,1], the package's normalized
// layout.
func uniformData(rng *rand.Rand, d, n int) *matrix.Dense {
	out := matrix.New(d, n)
	for i := 0; i < d; i++ {
		for j := 0; j < n; j++ {
			out.Set(i, j, rng.Float64())
		}
	}
	return out
}

// identityPerturbation isolates the noise-pooling property: R = I, t = 0, so
// every attack's error is a function of the additive noise alone.
func identityPerturbation(t *testing.T, d int) *perturb.Perturbation {
	t.Helper()
	p, err := perturb.New(matrix.Identity(d), make([]float64, d), 0)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCoalitionGainBoundedUnderCorrelatedLadder is the coalition-safety
// property test: for every coalition of views drawn from the correlated
// noise ladder, the measured covariance-attack gain stays within estimation
// jitter of zero — pooled views never beat the weakest member's bound.
// Repeated across seeds and both an identity and a random rotation, since
// the guarantee must hold regardless of the shared transform.
func TestCoalitionGainBoundedUnderCorrelatedLadder(t *testing.T) {
	const tol = 0.02
	sigmas := []float64{0.1, 0.3, 0.6}
	ev := FastEvaluator()
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		d, n := 3, 400
		x := uniformData(rng, d, n)
		p := identityPerturbation(t, d)
		if seed%2 == 1 {
			var err error
			p, err = perturb.NewRandom(rng, d, 0)
			if err != nil {
				t.Fatal(err)
			}
		}
		mats, err := p.ApplyLevels(rng, x, sigmas)
		if err != nil {
			t.Fatal(err)
		}
		views := make([]TrustView, len(mats))
		for i, m := range mats {
			views[i] = TrustView{Level: i + 1, Sigma: sigmas[i], Data: m}
		}
		rep, err := ev.EvaluateCoalitions(x, views, Knowledge{})
		if err != nil {
			t.Fatal(err)
		}
		if want := 1<<len(views) - len(views) - 1; len(rep.Coalitions) != want {
			t.Fatalf("seed %d: %d coalitions, want %d", seed, len(rep.Coalitions), want)
		}
		for _, c := range rep.Coalitions {
			if c.Gain > tol {
				t.Errorf("seed %d: coalition %v gained %.4f over its weakest member (bound %.4f, pooled %.4f)",
					seed, c.Levels, c.Gain, c.Weakest, c.Pooled.MinGuarantee)
			}
		}
		if rep.MaxGain > tol {
			t.Errorf("seed %d: max coalition gain %.4f exceeds tolerance %.4f", seed, rep.MaxGain, tol)
		}
	}
}

// TestCoalitionGainPositiveUnderIndependentNoise is the control: the same
// evaluation applied to independently drawn per-view noise must show a
// clearly positive pooling gain — averaging k equal-σ independent views
// divides the noise variance by k. This is the diversity attack the
// correlated ladder exists to close, and it proves the evaluator would
// catch a generator that drew views independently.
func TestCoalitionGainPositiveUnderIndependentNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d, n := 3, 400
	x := uniformData(rng, d, n)
	const sigma = 0.4
	views := make([]TrustView, 4)
	for i := range views {
		noisy := x.Add(matrix.RandomGaussian(rng, d, n, sigma))
		views[i] = TrustView{Level: i + 1, Sigma: sigma, Data: noisy}
	}
	rep, err := FastEvaluator().EvaluateCoalitions(x, views, Knowledge{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxGain < 0.05 {
		t.Fatalf("independent noise pooled to max gain %.4f; the diversity attack should gain clearly (>0.05)",
			rep.MaxGain)
	}
}

// TestPoolViewsPrecisionWeighting verifies the pooled estimate is dominated
// by the most precise member: pooling a noiseless view with a very noisy one
// reproduces the noiseless view almost exactly.
func TestPoolViewsPrecisionWeighting(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d, n := 2, 50
	x := uniformData(rng, d, n)
	noisy := x.Add(matrix.RandomGaussian(rng, d, n, 1.0))
	pooled, err := PoolViews([]TrustView{
		{Level: 1, Sigma: 0, Data: x},
		{Level: 2, Sigma: 1.0, Data: noisy},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !pooled.EqualApprox(x, 1e-6) {
		t.Fatal("pooling with a zero-σ member must reproduce it")
	}
	if _, err := PoolViews(nil); err == nil {
		t.Fatal("pooling no views must fail")
	}
}
