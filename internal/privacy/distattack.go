package privacy

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/matrix"
)

// DistanceInferenceConfig tunes the distance-inference attack. Zero values
// select the defaults noted on each field.
type DistanceInferenceConfig struct {
	// Tolerance is the relative distance-mismatch allowed when matching
	// images (default 0.15; noise widens the true distances).
	Tolerance float64
	// MaxAnchorCandidates bounds how many candidate anchor pairs are
	// explored (default 64).
	MaxAnchorCandidates int
}

func (c DistanceInferenceConfig) withDefaults() DistanceInferenceConfig {
	if c.Tolerance <= 0 {
		c.Tolerance = 0.15
	}
	if c.MaxAnchorCandidates <= 0 {
		c.MaxAnchorCandidates = 64
	}
	return c
}

// DistanceInferenceAttack is the companion SDM'07 paper's distance-based
// attack in full: the attacker knows m original records but — unlike the
// plain Procrustes attack — does NOT know which perturbed columns are their
// images. Rotation and translation preserve pairwise distances, so the
// attacker identifies the images by matching distance signatures, then
// solves orthogonal Procrustes on the recovered correspondence and inverts
// the perturbation. The additive noise component Δ is precisely what makes
// this identification unreliable.
type DistanceInferenceAttack struct {
	cfg DistanceInferenceConfig
}

// NewDistanceInferenceAttack builds the attack with the given configuration.
func NewDistanceInferenceAttack(cfg DistanceInferenceConfig) *DistanceInferenceAttack {
	return &DistanceInferenceAttack{cfg: cfg.withDefaults()}
}

// Name implements Attack.
func (*DistanceInferenceAttack) Name() string { return "distance-inference" }

// Estimate implements Attack.
func (a *DistanceInferenceAttack) Estimate(y *matrix.Dense, know Knowledge) (*matrix.Dense, error) {
	xk := know.KnownOriginal
	if xk == nil {
		return nil, fmt.Errorf("%w: distance inference needs known records", ErrInapplicable)
	}
	if xk.Rows() != y.Rows() {
		return nil, fmt.Errorf("%w: known records have dim %d, data %d", ErrInapplicable, xk.Rows(), y.Rows())
	}
	m := xk.Cols()
	if m < 3 {
		return nil, fmt.Errorf("%w: need at least 3 known records, got %d", ErrInapplicable, m)
	}
	if y.Cols() < m {
		return nil, fmt.Errorf("%w: fewer data records than known records", ErrInapplicable)
	}
	match, err := a.identifyImages(xk, y)
	if err != nil {
		return nil, err
	}
	// Assemble the matched perturbed images and delegate to Procrustes.
	yk := matrix.New(y.Rows(), m)
	for i, col := range match {
		for r := 0; r < y.Rows(); r++ {
			yk.Set(r, i, y.At(r, col))
		}
	}
	return (&ProcrustesAttack{}).Estimate(y, Knowledge{
		Original:       know.Original,
		KnownOriginal:  xk,
		KnownPerturbed: yk,
	})
}

// identifyImages finds, for each known original record, the perturbed
// column most consistent with the known pairwise distances. Strategy: pick
// the farthest pair of known records as anchors, enumerate perturbed column
// pairs with a compatible distance, then greedily extend to the remaining
// known records scoring by squared distance error.
func (a *DistanceInferenceAttack) identifyImages(xk, y *matrix.Dense) ([]int, error) {
	m, n := xk.Cols(), y.Cols()
	dx := pairwiseDistances(xk)

	// Anchors: the farthest pair is the most discriminative.
	a0, a1 := 0, 1
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			if dx[i][j] > dx[a0][a1] {
				a0, a1 = i, j
			}
		}
	}
	anchorDist := dx[a0][a1]
	if anchorDist == 0 {
		return nil, fmt.Errorf("%w: known records are not distinct", ErrInapplicable)
	}
	tol := a.cfg.Tolerance * anchorDist

	yCols := y.Columns()

	// Rank all compatible pairs by anchor-distance mismatch and keep the
	// best few: in the noiseless case the true image pair has mismatch ~0
	// and is explored first.
	type candidate struct {
		p, q     int
		mismatch float64
	}
	var candidates []candidate
	for p := 0; p < n; p++ {
		for q := 0; q < n; q++ {
			if p == q {
				continue
			}
			mismatch := math.Abs(dist(yCols[p], yCols[q]) - anchorDist)
			if mismatch <= tol {
				candidates = append(candidates, candidate{p: p, q: q, mismatch: mismatch})
			}
		}
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("%w: no perturbed pair matches the anchor distance", ErrInapplicable)
	}
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].mismatch != candidates[j].mismatch {
			return candidates[i].mismatch < candidates[j].mismatch
		}
		if candidates[i].p != candidates[j].p {
			return candidates[i].p < candidates[j].p
		}
		return candidates[i].q < candidates[j].q
	})
	if len(candidates) > a.cfg.MaxAnchorCandidates {
		candidates = candidates[:a.cfg.MaxAnchorCandidates]
	}

	best := make([]int, 0, m)
	bestScore := math.Inf(1)
	assign := make([]int, m)
	used := make([]bool, n)
	for _, cand := range candidates {
		for i := range assign {
			assign[i] = -1
		}
		for i := range used {
			used[i] = false
		}
		assign[a0], assign[a1] = cand.p, cand.q
		used[cand.p], used[cand.q] = true, true
		score := sq(dist(yCols[cand.p], yCols[cand.q]) - anchorDist)

		feasible := true
		for j := 0; j < m && feasible; j++ {
			if j == a0 || j == a1 {
				continue
			}
			bestCol, bestErr := -1, math.Inf(1)
			for c := 0; c < n; c++ {
				if used[c] {
					continue
				}
				e := sq(dist(yCols[c], yCols[cand.p])-dx[j][a0]) +
					sq(dist(yCols[c], yCols[cand.q])-dx[j][a1])
				// Distance consistency with already-matched non-anchors
				// sharpens the signature.
				for j2 := 0; j2 < j; j2++ {
					if assign[j2] >= 0 && j2 != a0 && j2 != a1 {
						e += sq(dist(yCols[c], yCols[assign[j2]]) - dx[j][j2])
					}
				}
				if e < bestErr {
					bestCol, bestErr = c, e
				}
			}
			if bestCol < 0 {
				feasible = false
				break
			}
			assign[j] = bestCol
			used[bestCol] = true
			score += bestErr
		}
		if feasible && score < bestScore {
			bestScore = score
			best = append(best[:0], assign...)
		}
	}
	if len(best) == 0 {
		return nil, fmt.Errorf("%w: image identification failed", ErrInapplicable)
	}
	return best, nil
}

// pairwiseDistances returns the m×m distance table of a d×m column set.
func pairwiseDistances(m *matrix.Dense) [][]float64 {
	k := m.Cols()
	cols := m.Columns()
	out := make([][]float64, k)
	for i := range out {
		out[i] = make([]float64, k)
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			d := dist(cols[i], cols[j])
			out[i][j] = d
			out[j][i] = d
		}
	}
	return out
}

func dist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func sq(v float64) float64 { return v * v }
