package privacy

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/stat"
)

func TestOptimizeBeatsRandomOnAverage(t *testing.T) {
	// The claim behind Figure 2: the optimized perturbation's guarantee
	// stochastically dominates the random one's.
	x := normalizedData(t, "Iris", 1)
	opt := NewOptimizer(OptimizerConfig{Candidates: 6, LocalSteps: 6})

	rng := rand.New(rand.NewSource(2))
	var optimized, random []float64
	for i := 0; i < 12; i++ {
		_, res, err := opt.Optimize(rng, x)
		if err != nil {
			t.Fatal(err)
		}
		optimized = append(optimized, res.Guarantee)
		r, err := opt.RandomGuarantee(rng, x)
		if err != nil {
			t.Fatal(err)
		}
		random = append(random, r)
	}
	if mo, mr := stat.Mean(optimized), stat.Mean(random); mo <= mr {
		t.Errorf("optimized mean %v not above random mean %v", mo, mr)
	}
}

func TestOptimizeGuaranteeIsMaxOfCandidates(t *testing.T) {
	x := normalizedData(t, "Iris", 3)
	opt := NewOptimizer(OptimizerConfig{Candidates: 5, LocalSteps: 4})
	_, res, err := opt.Optimize(rand.New(rand.NewSource(4)), x)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CandidateGuarantees) != 5 {
		t.Fatalf("%d candidate guarantees, want 5", len(res.CandidateGuarantees))
	}
	best, _ := stat.Max(res.CandidateGuarantees)
	if res.Guarantee < best-1e-12 {
		t.Errorf("final guarantee %v below best candidate %v (refinement must not regress)", res.Guarantee, best)
	}
}

func TestOptimizeReturnsValidPerturbation(t *testing.T) {
	x := normalizedData(t, "Heart", 5)
	opt := NewOptimizer(OptimizerConfig{Candidates: 3, LocalSteps: 3})
	p, res, err := opt.Optimize(rand.New(rand.NewSource(6)), x)
	if err != nil {
		t.Fatal(err)
	}
	if !p.R.IsOrthogonal(1e-8) {
		t.Fatal("optimized rotation lost orthogonality")
	}
	if p.Dim() != x.Rows() {
		t.Fatalf("perturbation dim %d, want %d", p.Dim(), x.Rows())
	}
	if res.Guarantee <= 0 {
		t.Fatalf("guarantee %v, want > 0 (noise keeps it positive)", res.Guarantee)
	}
	if res.Report == nil {
		t.Fatal("missing report")
	}
}

func TestOptimizeErrors(t *testing.T) {
	opt := NewOptimizer(OptimizerConfig{})
	rng := rand.New(rand.NewSource(7))
	// One dimension is not enough.
	one := normalizedData(t, "Iris", 8).Slice(0, 1, 0, 50)
	if _, _, err := opt.Optimize(rng, one); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("1-dim err = %v, want ErrDimMismatch", err)
	}
	// Too few records for the known-pair budget.
	tiny := normalizedData(t, "Iris", 9).Slice(0, 4, 0, 5)
	if _, _, err := opt.Optimize(rng, tiny); !errors.Is(err, ErrTooFewRows) {
		t.Errorf("tiny err = %v, want ErrTooFewRows", err)
	}
	if _, err := opt.RandomGuarantee(rng, tiny); !errors.Is(err, ErrTooFewRows) {
		t.Errorf("random tiny err = %v, want ErrTooFewRows", err)
	}
}

func TestEstimateOptimality(t *testing.T) {
	x := normalizedData(t, "Iris", 10)
	opt := NewOptimizer(OptimizerConfig{Candidates: 3, LocalSteps: 2})
	est, err := opt.EstimateOptimality(rand.New(rand.NewSource(11)), x, 8)
	if err != nil {
		t.Fatal(err)
	}
	if est.Rounds != 8 || len(est.Guarantees) != 8 {
		t.Fatalf("rounds = %d/%d, want 8", est.Rounds, len(est.Guarantees))
	}
	if est.Bound < est.Mean {
		t.Errorf("bound %v below mean %v", est.Bound, est.Mean)
	}
	if est.Rate <= 0 || est.Rate > 1 {
		t.Errorf("optimality rate %v out of (0, 1]", est.Rate)
	}
	if _, err := opt.EstimateOptimality(rand.New(rand.NewSource(12)), x, 0); err == nil {
		t.Error("rounds=0 accepted")
	}
}

func TestOptimizerConfigDefaults(t *testing.T) {
	cfg := OptimizerConfig{}.withDefaults()
	if cfg.Candidates <= 0 || cfg.LocalSteps <= 0 || cfg.NoiseSigma <= 0 ||
		cfg.EvalColumns <= 0 || cfg.KnownPairs <= 0 || cfg.Evaluator == nil {
		t.Fatalf("defaults incomplete: %+v", cfg)
	}
	// Explicit zero local steps stays zero.
	cfg2 := OptimizerConfig{LocalSteps: -1}.withDefaults()
	if cfg2.LocalSteps != 0 {
		t.Fatalf("LocalSteps = %d, want 0 for negative input", cfg2.LocalSteps)
	}
}

func TestOptimizeDeterministicPerSeed(t *testing.T) {
	x := normalizedData(t, "Iris", 13)
	opt := NewOptimizer(OptimizerConfig{Candidates: 3, LocalSteps: 2})
	_, res1, err := opt.Optimize(rand.New(rand.NewSource(14)), x)
	if err != nil {
		t.Fatal(err)
	}
	_, res2, err := opt.Optimize(rand.New(rand.NewSource(14)), x)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Guarantee != res2.Guarantee {
		t.Fatalf("same seed, different guarantees: %v vs %v", res1.Guarantee, res2.Guarantee)
	}
}
