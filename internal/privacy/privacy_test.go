package privacy

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/matrix"
	"repro/internal/perturb"
)

// normalizedData generates a normalized d×N data matrix from a UCI profile.
func normalizedData(t *testing.T, name string, seed int64) *matrix.Dense {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	d, err := dataset.GenerateByName(name, rng)
	if err != nil {
		t.Fatal(err)
	}
	norm, _, err := dataset.Normalize(d)
	if err != nil {
		t.Fatal(err)
	}
	return norm.FeaturesT()
}

func TestColumnPrivacyExact(t *testing.T) {
	x := matrix.NewFromRows([][]float64{{0, 1, 0, 1}, {0.5, 0.5, 0.5, 0.5}})
	// Estimate equals x on row 1, off-by-constant on row 0 -> std 0 both.
	xhat := x.Clone()
	cols, err := ColumnPrivacy(x, xhat)
	if err != nil {
		t.Fatal(err)
	}
	if cols[0] != 0 || cols[1] != 0 {
		t.Fatalf("perfect estimate privacy = %v, want zeros", cols)
	}
	// Noisy estimate on row 0 only.
	xhat.Set(0, 0, 1)
	cols, err = ColumnPrivacy(x, xhat)
	if err != nil {
		t.Fatal(err)
	}
	if cols[0] <= 0 {
		t.Fatalf("row-0 privacy = %v, want > 0", cols[0])
	}
	if cols[1] != 0 {
		t.Fatalf("row-1 privacy = %v, want 0", cols[1])
	}
}

func TestColumnPrivacyShapeMismatch(t *testing.T) {
	if _, err := ColumnPrivacy(matrix.New(2, 3), matrix.New(3, 3)); !errors.Is(err, ErrDimMismatch) {
		t.Fatalf("err = %v, want ErrDimMismatch", err)
	}
}

func TestNewEvaluatorEmpty(t *testing.T) {
	if _, err := NewEvaluator(); !errors.Is(err, ErrNoAttacks) {
		t.Fatalf("err = %v, want ErrNoAttacks", err)
	}
}

func TestNaiveAttackOnUnperturbedData(t *testing.T) {
	// If Y == X (already normalized), the naive estimate is nearly exact,
	// so privacy under the naive attack must be ~0.
	x := normalizedData(t, "Iris", 1)
	atk := NewNaiveAttack()
	xhat, err := atk.Estimate(x, Knowledge{})
	if err != nil {
		t.Fatal(err)
	}
	cols, err := ColumnPrivacy(x, xhat)
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range cols {
		if v > 0.02 {
			t.Errorf("dim %d: naive privacy on identity perturbation = %v, want ~0", j, v)
		}
	}
}

func TestNaiveAttackTooFewRecords(t *testing.T) {
	if _, err := NewNaiveAttack().Estimate(matrix.New(3, 1), Knowledge{}); !errors.Is(err, ErrInapplicable) {
		t.Fatalf("err = %v, want ErrInapplicable", err)
	}
}

func TestNaiveAttackConstantDimension(t *testing.T) {
	y := matrix.NewFromRows([][]float64{{3, 3, 3}, {0, 1, 2}})
	xhat, err := NewNaiveAttack().Estimate(y, Knowledge{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if xhat.At(0, i) != 0.5 {
			t.Fatalf("constant dim estimate = %v, want 0.5", xhat.At(0, i))
		}
	}
}

func TestPCAAttackRecoversRotationOnly(t *testing.T) {
	// Pure rotation with no noise and anisotropic data: PCA re-alignment
	// should reconstruct X well, i.e. low privacy.
	x := normalizedData(t, "Wine", 2)
	rng := rand.New(rand.NewSource(3))
	p, err := perturb.New(matrix.RandomOrthogonal(rng, x.Rows()), make([]float64, x.Rows()), 0)
	if err != nil {
		t.Fatal(err)
	}
	y, _, err := p.Apply(rng, x)
	if err != nil {
		t.Fatal(err)
	}
	xhat, err := NewPCAAttack().Estimate(y, Knowledge{Original: x})
	if err != nil {
		t.Fatal(err)
	}
	cols, err := ColumnPrivacy(x, xhat)
	if err != nil {
		t.Fatal(err)
	}
	mean := 0.0
	for _, v := range cols {
		mean += v
	}
	mean /= float64(len(cols))
	// Wine's heterogeneous scales give distinct eigenvalues, so alignment
	// should be decent: mean error well below the naive-guess level (~0.3).
	if mean > 0.15 {
		t.Errorf("PCA attack mean per-dim error = %v, want < 0.15 for pure rotation", mean)
	}
}

func TestPCAAttackNeedsKnowledge(t *testing.T) {
	y := matrix.RandomUniform(rand.New(rand.NewSource(1)), 3, 30, 0, 1)
	if _, err := NewPCAAttack().Estimate(y, Knowledge{}); !errors.Is(err, ErrInapplicable) {
		t.Fatalf("err = %v, want ErrInapplicable", err)
	}
	// Fewer records than dimensions.
	small := matrix.RandomUniform(rand.New(rand.NewSource(2)), 5, 4, 0, 1)
	if _, err := NewPCAAttack().Estimate(small, Knowledge{Original: small}); !errors.Is(err, ErrInapplicable) {
		t.Fatalf("small err = %v, want ErrInapplicable", err)
	}
}

func TestProcrustesAttackExactRecovery(t *testing.T) {
	// With enough known pairs and no noise the Procrustes attack recovers
	// the rotation and translation almost exactly.
	x := normalizedData(t, "Diabetes", 4)
	rng := rand.New(rand.NewSource(5))
	p, err := perturb.NewRandom(rng, x.Rows(), 0)
	if err != nil {
		t.Fatal(err)
	}
	y, _, err := p.Apply(rng, x)
	if err != nil {
		t.Fatal(err)
	}
	m := x.Rows() + 4
	know := Knowledge{
		Original:       x,
		KnownOriginal:  x.Slice(0, x.Rows(), 0, m),
		KnownPerturbed: y.Slice(0, y.Rows(), 0, m),
	}
	xhat, err := NewProcrustesAttack().Estimate(y, know)
	if err != nil {
		t.Fatal(err)
	}
	cols, err := ColumnPrivacy(x, xhat)
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range cols {
		if v > 1e-6 {
			t.Errorf("dim %d: procrustes error %v on noiseless data, want ~0", j, v)
		}
	}
}

func TestProcrustesAttackDegradedByNoise(t *testing.T) {
	x := normalizedData(t, "Diabetes", 6)
	rng := rand.New(rand.NewSource(7))
	clean, _ := perturb.NewRandom(rand.New(rand.NewSource(8)), x.Rows(), 0)
	noisy := clean.Clone()
	noisy.NoiseSigma = 0.2

	guarantee := func(p *perturb.Perturbation) float64 {
		y, _, err := p.Apply(rng, x)
		if err != nil {
			t.Fatal(err)
		}
		m := x.Rows() + 4
		know := Knowledge{
			Original:       x,
			KnownOriginal:  x.Slice(0, x.Rows(), 0, m),
			KnownPerturbed: y.Slice(0, y.Rows(), 0, m),
		}
		xhat, err := NewProcrustesAttack().Estimate(y, know)
		if err != nil {
			t.Fatal(err)
		}
		cols, err := ColumnPrivacy(x, xhat)
		if err != nil {
			t.Fatal(err)
		}
		min := cols[0]
		for _, v := range cols {
			if v < min {
				min = v
			}
		}
		return min
	}
	if gClean, gNoisy := guarantee(clean), guarantee(noisy); gNoisy <= gClean {
		t.Errorf("noise did not raise privacy: clean %v vs noisy %v", gClean, gNoisy)
	}
}

func TestProcrustesNeedsPairs(t *testing.T) {
	y := matrix.RandomUniform(rand.New(rand.NewSource(9)), 3, 20, 0, 1)
	if _, err := NewProcrustesAttack().Estimate(y, Knowledge{}); !errors.Is(err, ErrInapplicable) {
		t.Fatalf("err = %v, want ErrInapplicable", err)
	}
	one := matrix.New(3, 1)
	know := Knowledge{KnownOriginal: one, KnownPerturbed: one}
	if _, err := NewProcrustesAttack().Estimate(y, know); !errors.Is(err, ErrInapplicable) {
		t.Fatalf("one-pair err = %v, want ErrInapplicable", err)
	}
	wrong := Knowledge{KnownOriginal: matrix.New(2, 5), KnownPerturbed: matrix.New(3, 5)}
	if _, err := NewProcrustesAttack().Estimate(y, wrong); !errors.Is(err, ErrInapplicable) {
		t.Fatalf("shape err = %v, want ErrInapplicable", err)
	}
}

func TestICAAttackUnmixesRotation(t *testing.T) {
	// Strongly non-Gaussian independent sources mixed by a rotation: ICA
	// must reconstruct them well (low privacy), which is exactly why the
	// noise component Δ exists.
	rng := rand.New(rand.NewSource(10))
	d, n := 4, 600
	x := matrix.New(d, n)
	for j := 0; j < d; j++ {
		for i := 0; i < n; i++ {
			x.Set(j, i, rng.Float64()) // uniform = sub-Gaussian sources
		}
	}
	p, err := perturb.New(matrix.RandomOrthogonal(rng, d), make([]float64, d), 0)
	if err != nil {
		t.Fatal(err)
	}
	y, _, err := p.Apply(rng, x)
	if err != nil {
		t.Fatal(err)
	}
	xhat, err := NewICAAttack(ICAConfig{}).Estimate(y, Knowledge{Original: x})
	if err != nil {
		t.Fatal(err)
	}
	cols, err := ColumnPrivacy(x, xhat)
	if err != nil {
		t.Fatal(err)
	}
	mean := 0.0
	for _, v := range cols {
		mean += v
	}
	mean /= float64(len(cols))
	// A blind guess has error std ~0.29 (uniform); ICA should do much
	// better on a pure rotation of independent uniforms.
	if mean > 0.15 {
		t.Errorf("ICA mean per-dim error = %v, want < 0.15", mean)
	}
}

func TestICAAttackInapplicable(t *testing.T) {
	y := matrix.RandomUniform(rand.New(rand.NewSource(11)), 4, 60, 0, 1)
	if _, err := NewICAAttack(ICAConfig{}).Estimate(y, Knowledge{}); !errors.Is(err, ErrInapplicable) {
		t.Fatalf("no-knowledge err = %v, want ErrInapplicable", err)
	}
	small := matrix.RandomUniform(rand.New(rand.NewSource(12)), 4, 6, 0, 1)
	if _, err := NewICAAttack(ICAConfig{}).Estimate(small, Knowledge{Original: small}); !errors.Is(err, ErrInapplicable) {
		t.Fatalf("small-N err = %v, want ErrInapplicable", err)
	}
}

func TestEvaluatorAggregatesMinimum(t *testing.T) {
	x := normalizedData(t, "Iris", 13)
	rng := rand.New(rand.NewSource(14))
	p, err := perturb.NewRandom(rng, x.Rows(), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	y, _, err := p.Apply(rng, x)
	if err != nil {
		t.Fatal(err)
	}
	m := 8
	know := Knowledge{
		KnownOriginal:  x.Slice(0, x.Rows(), 0, m),
		KnownPerturbed: y.Slice(0, y.Rows(), 0, m),
	}
	rep, err := DefaultEvaluator().Evaluate(x, y, know)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerColumn) != x.Rows() {
		t.Fatalf("PerColumn size %d, want %d", len(rep.PerColumn), x.Rows())
	}
	if rep.MinGuarantee < 0 {
		t.Fatalf("negative guarantee %v", rep.MinGuarantee)
	}
	// The aggregate must be the min over per-column minima of attacks.
	for _, ar := range rep.Attacks {
		if ar.Skipped {
			continue
		}
		for j, v := range ar.Column {
			if v < rep.PerColumn[j]-1e-12 {
				t.Fatalf("attack %s dim %d below aggregated value", ar.Attack, j)
			}
		}
	}
	for _, v := range rep.PerColumn {
		if rep.MinGuarantee > v+1e-12 {
			t.Fatal("MinGuarantee above a per-column value")
		}
	}
}

func TestEvaluatorShapeChecks(t *testing.T) {
	ev := FastEvaluator()
	if _, err := ev.Evaluate(matrix.New(2, 5), matrix.New(3, 5), Knowledge{}); !errors.Is(err, ErrDimMismatch) {
		t.Fatalf("err = %v, want ErrDimMismatch", err)
	}
	if _, err := ev.Evaluate(matrix.New(2, 1), matrix.New(2, 1), Knowledge{}); !errors.Is(err, ErrTooFewRows) {
		t.Fatalf("err = %v, want ErrTooFewRows", err)
	}
}

func TestEvaluatorSkipsInapplicable(t *testing.T) {
	// Without known pairs, Procrustes is skipped but the evaluation still
	// succeeds via the other attacks.
	x := normalizedData(t, "Iris", 15)
	rng := rand.New(rand.NewSource(16))
	p, _ := perturb.NewRandom(rng, x.Rows(), 0.05)
	y, _, _ := p.Apply(rng, x)
	rep, err := FastEvaluator().Evaluate(x, y, Knowledge{})
	if err != nil {
		t.Fatal(err)
	}
	foundSkipped := false
	for _, ar := range rep.Attacks {
		if ar.Attack == "procrustes" && ar.Skipped {
			foundSkipped = true
		}
	}
	if !foundSkipped {
		t.Fatal("procrustes should be skipped without known pairs")
	}
}

func TestSubsampleColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	m := matrix.RandomUniform(rng, 3, 50, 0, 1)
	s := subsampleColumns(rng, m, 10)
	if s.Cols() != 10 || s.Rows() != 3 {
		t.Fatalf("subsample dims %dx%d", s.Rows(), s.Cols())
	}
	same := subsampleColumns(rng, m, 100)
	if same != m {
		t.Fatal("no-op subsample should return the input")
	}
}

func TestNoiseRaisesGuaranteeMonotonically(t *testing.T) {
	// Core defence property: more noise, more privacy (against the full
	// attack suite, which otherwise strips rotation+translation).
	x := normalizedData(t, "Diabetes", 18)
	prev := -1.0
	for _, sigma := range []float64{0, 0.1, 0.3} {
		rng := rand.New(rand.NewSource(19))
		p, err := perturb.New(matrix.RandomOrthogonal(rand.New(rand.NewSource(20)), x.Rows()),
			make([]float64, x.Rows()), sigma)
		if err != nil {
			t.Fatal(err)
		}
		y, _, err := p.Apply(rng, x)
		if err != nil {
			t.Fatal(err)
		}
		m := 10
		know := Knowledge{
			KnownOriginal:  x.Slice(0, x.Rows(), 0, m),
			KnownPerturbed: y.Slice(0, y.Rows(), 0, m),
		}
		rep, err := DefaultEvaluator().Evaluate(x, y, know)
		if err != nil {
			t.Fatal(err)
		}
		if rep.MinGuarantee < prev {
			t.Errorf("σ=%v: guarantee %v dropped below %v", sigma, rep.MinGuarantee, prev)
		}
		prev = rep.MinGuarantee
	}
	if math.IsInf(prev, -1) {
		t.Fatal("no evaluations ran")
	}
}
