// Package privacy implements the privacy-evaluation substrate of the SAP
// reproduction: the multi-column "minimum privacy guarantee" metric, the
// attack models used to evaluate it (naive estimation, PCA re-alignment,
// FastICA reconstruction, known-sample Procrustes alignment), and the
// randomized perturbation optimizer of the companion SDM'07 paper.
//
// Data is laid out d×N (one column per record), matching the paper's
// G(X) = RX + Ψ + Δ convention, with X min-max normalized per row
// (dimension) to [0, 1].
//
// Privacy of dimension j is the standard deviation of the best attacker's
// estimation error on that dimension: ρ_j = min_attacks std(X_j − X̂_j).
// The dataset-level "minimum privacy guarantee" is ρ = min_j ρ_j. Attacks
// are evaluated attacker-optimally (reconstruction ambiguities are resolved
// in the attacker's favor), so the reported guarantee is a worst-case bound
// for the defender.
package privacy

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/matrix"
	"repro/internal/stat"
)

// Errors returned by privacy evaluation.
var (
	ErrDimMismatch = errors.New("privacy: dimension mismatch")
	ErrNoAttacks   = errors.New("privacy: evaluator has no attacks")
	ErrTooFewRows  = errors.New("privacy: not enough records for evaluation")
)

// Knowledge models the side information available to an attacker. All
// fields are optional; attacks that need missing knowledge degrade to their
// knowledge-free variant or report themselves inapplicable.
type Knowledge struct {
	// Original is the true normalized data X. It is used only to resolve
	// reconstruction ambiguities attacker-optimally (worst case for the
	// defender); attacks never read values from it beyond alignment.
	Original *matrix.Dense
	// KnownOriginal and KnownPerturbed are m matched record pairs (d×m
	// columns) the attacker has identified, enabling known-sample attacks.
	KnownOriginal  *matrix.Dense
	KnownPerturbed *matrix.Dense
}

// Attack reconstructs an estimate X̂ of the original normalized data from
// the perturbed data Y.
type Attack interface {
	// Name identifies the attack in reports.
	Name() string
	// Estimate returns a d×N estimate of the original data. Attacks return
	// an error when the input shape or available knowledge makes them
	// inapplicable; the evaluator skips such attacks.
	Estimate(y *matrix.Dense, know Knowledge) (*matrix.Dense, error)
}

// ColumnPrivacy returns the per-dimension privacy of an estimate: the
// standard deviation of the estimation error on each dimension (row of the
// d×N layout).
func ColumnPrivacy(x, xhat *matrix.Dense) ([]float64, error) {
	if x.Rows() != xhat.Rows() || x.Cols() != xhat.Cols() {
		return nil, fmt.Errorf("%w: original %dx%d vs estimate %dx%d",
			ErrDimMismatch, x.Rows(), x.Cols(), xhat.Rows(), xhat.Cols())
	}
	out := make([]float64, x.Rows())
	for j := 0; j < x.Rows(); j++ {
		diff := make([]float64, x.Cols())
		for i := 0; i < x.Cols(); i++ {
			diff[i] = x.At(j, i) - xhat.At(j, i)
		}
		out[j] = stat.StdDev(diff)
	}
	return out, nil
}

// AttackResult records one attack's outcome in a privacy evaluation.
type AttackResult struct {
	Attack  string
	Column  []float64 // per-dimension privacy under this attack
	Min     float64   // min over dimensions
	Skipped bool      // attack was inapplicable for this input
	Err     string    // reason when skipped
}

// Report is the outcome of evaluating all attacks on one perturbed dataset.
type Report struct {
	// PerColumn is the per-dimension privacy guarantee: for each dimension,
	// the minimum across applicable attacks.
	PerColumn []float64
	// MinGuarantee is the dataset-level minimum privacy guarantee ρ.
	MinGuarantee float64
	// Attacks holds the per-attack details.
	Attacks []AttackResult
}

// Evaluator runs a suite of attacks and aggregates the minimum privacy
// guarantee. The zero value is unusable; use NewEvaluator.
type Evaluator struct {
	attacks []Attack
}

// NewEvaluator builds an evaluator over the given attacks.
func NewEvaluator(attacks ...Attack) (*Evaluator, error) {
	if len(attacks) == 0 {
		return nil, ErrNoAttacks
	}
	return &Evaluator{attacks: append([]Attack(nil), attacks...)}, nil
}

// DefaultEvaluator returns the standard attack suite used throughout the
// reproduction: naive re-normalization, PCA re-alignment, FastICA, and the
// known-sample Procrustes attack.
func DefaultEvaluator() *Evaluator {
	ev, err := NewEvaluator(
		NewNaiveAttack(),
		NewPCAAttack(),
		NewICAAttack(ICAConfig{}),
		NewProcrustesAttack(),
	)
	if err != nil {
		// Unreachable: the attack list is non-empty by construction.
		panic(err)
	}
	return ev
}

// FastEvaluator returns a cheaper attack suite (no ICA) for use inside
// optimization inner loops; the full suite is still used for the final
// guarantee measurements.
func FastEvaluator() *Evaluator {
	ev, err := NewEvaluator(NewNaiveAttack(), NewPCAAttack(), NewProcrustesAttack())
	if err != nil {
		panic(err)
	}
	return ev
}

// Evaluate attacks the perturbed data y and returns the aggregated report.
// x is the true normalized data used to score estimates (and to resolve
// attack ambiguities attacker-optimally).
func (e *Evaluator) Evaluate(x, y *matrix.Dense, know Knowledge) (*Report, error) {
	if len(e.attacks) == 0 {
		return nil, ErrNoAttacks
	}
	if x.Rows() != y.Rows() || x.Cols() != y.Cols() {
		return nil, fmt.Errorf("%w: x %dx%d vs y %dx%d",
			ErrDimMismatch, x.Rows(), x.Cols(), y.Rows(), y.Cols())
	}
	if x.Cols() < 2 {
		return nil, fmt.Errorf("%w: %d records", ErrTooFewRows, x.Cols())
	}
	if know.Original == nil {
		know.Original = x
	}
	d := x.Rows()
	perCol := make([]float64, d)
	for j := range perCol {
		perCol[j] = math.Inf(1)
	}
	report := &Report{Attacks: make([]AttackResult, 0, len(e.attacks))}
	applicable := 0
	for _, atk := range e.attacks {
		xhat, err := atk.Estimate(y, know)
		if err != nil {
			report.Attacks = append(report.Attacks, AttackResult{
				Attack: atk.Name(), Skipped: true, Err: err.Error(),
			})
			continue
		}
		cols, err := ColumnPrivacy(x, xhat)
		if err != nil {
			return nil, fmt.Errorf("attack %s produced bad estimate: %w", atk.Name(), err)
		}
		applicable++
		minCol := cols[0]
		for j, v := range cols {
			if v < perCol[j] {
				perCol[j] = v
			}
			if v < minCol {
				minCol = v
			}
		}
		report.Attacks = append(report.Attacks, AttackResult{
			Attack: atk.Name(), Column: cols, Min: minCol,
		})
	}
	if applicable == 0 {
		return nil, fmt.Errorf("privacy: every attack was inapplicable")
	}
	report.PerColumn = perCol
	report.MinGuarantee = perCol[0]
	for _, v := range perCol {
		if v < report.MinGuarantee {
			report.MinGuarantee = v
		}
	}
	return report, nil
}

// subsampleColumns returns up to max columns of m, sampled without
// replacement, to bound evaluation cost on large datasets.
func subsampleColumns(rng *rand.Rand, m *matrix.Dense, max int) *matrix.Dense {
	if m.Cols() <= max {
		return m
	}
	idx := rng.Perm(m.Cols())[:max]
	out := matrix.New(m.Rows(), max)
	for c, i := range idx {
		for r := 0; r < m.Rows(); r++ {
			out.Set(r, c, m.At(r, i))
		}
	}
	return out
}
