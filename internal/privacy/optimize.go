package privacy

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/matrix"
	"repro/internal/perturb"
	"repro/internal/stat"
)

// OptimizerConfig tunes the randomized perturbation optimizer. Zero values
// select the defaults noted on each field.
type OptimizerConfig struct {
	// Candidates is the number of independent random restarts (default 8).
	Candidates int
	// LocalSteps is the number of annealed Givens refinement steps applied
	// to the best candidate (default 12).
	LocalSteps int
	// NoiseSigma is the σ of the generated perturbations' noise component
	// (default 0.05; the paper uses a common noise component across
	// parties).
	NoiseSigma float64
	// EvalColumns caps the number of records used during guarantee
	// evaluation (default 128) to bound optimization cost.
	EvalColumns int
	// KnownPairs is how many matched record pairs the known-sample attack
	// is granted during evaluation (default 8).
	KnownPairs int
	// ScoreSamples averages each candidate's guarantee over this many
	// independent noise draws (default 1). Values above 1 reduce the
	// winner's curse — picking rotations that merely drew lucky noise —
	// at proportional evaluation cost.
	ScoreSamples int
	// Evaluator is the attack suite used to score candidates (default
	// FastEvaluator; pass DefaultEvaluator for final measurements).
	Evaluator *Evaluator
}

func (c OptimizerConfig) withDefaults() OptimizerConfig {
	if c.Candidates <= 0 {
		c.Candidates = 8
	}
	if c.LocalSteps < 0 {
		c.LocalSteps = 0
	} else if c.LocalSteps == 0 {
		c.LocalSteps = 12
	}
	if c.NoiseSigma <= 0 {
		c.NoiseSigma = 0.05
	}
	if c.EvalColumns <= 0 {
		c.EvalColumns = 128
	}
	if c.KnownPairs <= 0 {
		c.KnownPairs = 8
	}
	if c.ScoreSamples <= 0 {
		c.ScoreSamples = 1
	}
	if c.Evaluator == nil {
		c.Evaluator = FastEvaluator()
	}
	return c
}

// Optimizer implements the randomized perturbation optimization of the
// companion SDM'07 paper: random restarts over Haar rotations scored by the
// attack suite, followed by annealed local refinement with Givens rotations.
type Optimizer struct {
	cfg OptimizerConfig
}

// NewOptimizer builds an optimizer with the given configuration.
func NewOptimizer(cfg OptimizerConfig) *Optimizer {
	return &Optimizer{cfg: cfg.withDefaults()}
}

// OptResult reports one optimization run.
type OptResult struct {
	// Guarantee is the minimum privacy guarantee ρ of the returned
	// perturbation under the configured attack suite.
	Guarantee float64
	// Report is the full attack report of the winning perturbation.
	Report *Report
	// CandidateGuarantees holds each random candidate's guarantee before
	// refinement; its spread is what Figure 2 visualizes.
	CandidateGuarantees []float64
}

// Optimize searches for a perturbation of x (d×N normalized data) with a
// high minimum privacy guarantee.
func (o *Optimizer) Optimize(rng *rand.Rand, x *matrix.Dense) (*perturb.Perturbation, *OptResult, error) {
	cfg := o.cfg
	if x.Rows() < 2 {
		return nil, nil, fmt.Errorf("%w: need at least 2 dimensions, got %d", ErrDimMismatch, x.Rows())
	}
	if x.Cols() < cfg.KnownPairs+2 {
		return nil, nil, fmt.Errorf("%w: %d records with %d known pairs", ErrTooFewRows, x.Cols(), cfg.KnownPairs)
	}
	xe := subsampleColumns(rng, x, cfg.EvalColumns)

	var (
		best          *perturb.Perturbation
		bestScore     = math.Inf(-1)
		bestReport    *Report
		candidateRhos = make([]float64, 0, cfg.Candidates)
	)
	for c := 0; c < cfg.Candidates; c++ {
		p, err := perturb.NewRandom(rng, x.Rows(), cfg.NoiseSigma)
		if err != nil {
			return nil, nil, fmt.Errorf("candidate %d: %w", c, err)
		}
		rep, err := o.score(rng, xe, p)
		if err != nil {
			return nil, nil, fmt.Errorf("candidate %d: %w", c, err)
		}
		candidateRhos = append(candidateRhos, rep.MinGuarantee)
		if rep.MinGuarantee > bestScore {
			best, bestScore, bestReport = p, rep.MinGuarantee, rep
		}
	}

	// Annealed Givens refinement around the best restart. The minimum
	// privacy guarantee is a min over columns, so half the moves rotate
	// the currently-worst column against a random partner — the targeted
	// move the companion paper's optimizer uses to lift the binding
	// constraint — and the rest explore random planes.
	d := x.Rows()
	for step := 0; step < cfg.LocalSteps; step++ {
		angle := rng.NormFloat64() * (math.Pi / 4) * math.Pow(0.8, float64(step))
		var i int
		if step%2 == 0 && bestReport != nil && len(bestReport.PerColumn) == d {
			i = argmin(bestReport.PerColumn)
		} else {
			i = rng.Intn(d)
		}
		j := rng.Intn(d)
		for j == i {
			j = rng.Intn(d)
		}
		cand := best.Clone()
		cand.R.ApplyGivensLeft(i, j, angle)
		rep, err := o.score(rng, xe, cand)
		if err != nil {
			return nil, nil, fmt.Errorf("refinement step %d: %w", step, err)
		}
		if rep.MinGuarantee > bestScore {
			best, bestScore, bestReport = cand, rep.MinGuarantee, rep
		}
	}

	return best, &OptResult{
		Guarantee:           bestScore,
		Report:              bestReport,
		CandidateGuarantees: candidateRhos,
	}, nil
}

// RandomGuarantee evaluates a single random (un-optimized) perturbation of
// x, the baseline distribution of the paper's Figure 2.
func (o *Optimizer) RandomGuarantee(rng *rand.Rand, x *matrix.Dense) (float64, error) {
	cfg := o.cfg
	if x.Cols() < cfg.KnownPairs+2 {
		return 0, fmt.Errorf("%w: %d records with %d known pairs", ErrTooFewRows, x.Cols(), cfg.KnownPairs)
	}
	xe := subsampleColumns(rng, x, cfg.EvalColumns)
	p, err := perturb.NewRandom(rng, x.Rows(), cfg.NoiseSigma)
	if err != nil {
		return 0, err
	}
	rep, err := o.score(rng, xe, p)
	if err != nil {
		return 0, err
	}
	return rep.MinGuarantee, nil
}

// Score evaluates an externally supplied perturbation against the
// optimizer's attack suite on (a subsample of) x.
func (o *Optimizer) Score(rng *rand.Rand, x *matrix.Dense, p *perturb.Perturbation) (*Report, error) {
	xe := subsampleColumns(rng, x, o.cfg.EvalColumns)
	return o.score(rng, xe, p)
}

// score perturbs xe and runs the attack suite, granting the known-sample
// attack its matched pairs. With ScoreSamples > 1 the guarantee (overall
// and per column) is averaged over independent noise draws; the returned
// report's attack details come from the last draw.
func (o *Optimizer) score(rng *rand.Rand, xe *matrix.Dense, p *perturb.Perturbation) (*Report, error) {
	samples := o.cfg.ScoreSamples
	var last *Report
	var meanMin float64
	var meanCols []float64
	for s := 0; s < samples; s++ {
		y, _, err := p.Apply(rng, xe)
		if err != nil {
			return nil, err
		}
		m := o.cfg.KnownPairs
		if m > xe.Cols() {
			m = xe.Cols()
		}
		know := Knowledge{
			Original:       xe,
			KnownOriginal:  xe.Slice(0, xe.Rows(), 0, m),
			KnownPerturbed: y.Slice(0, y.Rows(), 0, m),
		}
		rep, err := o.cfg.Evaluator.Evaluate(xe, y, know)
		if err != nil {
			return nil, err
		}
		if meanCols == nil {
			meanCols = make([]float64, len(rep.PerColumn))
		}
		for j, v := range rep.PerColumn {
			meanCols[j] += v / float64(samples)
		}
		meanMin += rep.MinGuarantee / float64(samples)
		last = rep
	}
	last.MinGuarantee = meanMin
	last.PerColumn = meanCols
	return last, nil
}

// argmin returns the index of the smallest value (first on ties).
func argmin(xs []float64) int {
	best := 0
	for i, v := range xs {
		if v < xs[best] {
			best = i
		}
	}
	return best
}

// OptimalityEstimate aggregates n independent optimization rounds, the
// quantity behind the paper's Figure 3: b̂ = max ρ(i), ρ̄ = mean ρ(i), and
// the optimality rate O = ρ̄ / b̂.
type OptimalityEstimate struct {
	Rounds     int
	Guarantees []float64
	Mean       float64 // ρ̄
	Bound      float64 // b̂
	Rate       float64 // O = ρ̄/b̂
}

// EstimateOptimality runs the optimizer for `rounds` independent rounds on
// x and estimates the optimality rate.
func (o *Optimizer) EstimateOptimality(rng *rand.Rand, x *matrix.Dense, rounds int) (*OptimalityEstimate, error) {
	if rounds <= 0 {
		return nil, fmt.Errorf("privacy: rounds must be positive, got %d", rounds)
	}
	rhos := make([]float64, 0, rounds)
	for i := 0; i < rounds; i++ {
		_, res, err := o.Optimize(rng, x)
		if err != nil {
			return nil, fmt.Errorf("round %d: %w", i, err)
		}
		rhos = append(rhos, res.Guarantee)
	}
	mean := stat.Mean(rhos)
	bound, err := stat.Max(rhos)
	if err != nil {
		return nil, err
	}
	rate := 0.0
	if bound > 0 {
		rate = mean / bound
	}
	return &OptimalityEstimate{
		Rounds:     rounds,
		Guarantees: rhos,
		Mean:       mean,
		Bound:      bound,
		Rate:       rate,
	}, nil
}
