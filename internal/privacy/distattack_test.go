package privacy

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/matrix"
	"repro/internal/perturb"
)

func TestDistanceInferenceIdentifiesImagesNoiseless(t *testing.T) {
	// Pure rotation+translation: distances are preserved exactly, so the
	// attack must identify the images and recover the data like Procrustes.
	x := normalizedData(t, "Diabetes", 1)
	rng := rand.New(rand.NewSource(2))
	p, err := perturb.NewRandom(rng, x.Rows(), 0)
	if err != nil {
		t.Fatal(err)
	}
	y, _, err := p.Apply(rng, x)
	if err != nil {
		t.Fatal(err)
	}
	// The attacker knows d+4 original records — but NOT their images
	// (d+4 pins the rotation; fewer would leave Procrustes underdetermined).
	known := x.Slice(0, x.Rows(), 0, x.Rows()+4)
	atk := NewDistanceInferenceAttack(DistanceInferenceConfig{})
	xhat, err := atk.Estimate(y, Knowledge{Original: x, KnownOriginal: known})
	if err != nil {
		t.Fatal(err)
	}
	cols, err := ColumnPrivacy(x, xhat)
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range cols {
		if v > 1e-5 {
			t.Errorf("dim %d: error %v on noiseless data, want ~0", j, v)
		}
	}
}

func TestDistanceInferenceDefeatedByNoise(t *testing.T) {
	// The paper's rationale for Δ: noise perturbs distances, so the
	// identification step (and the subsequent alignment) degrades.
	x := normalizedData(t, "Diabetes", 3)
	guarantee := func(sigma float64) float64 {
		rng := rand.New(rand.NewSource(4))
		p, err := perturb.New(matrix.RandomOrthogonal(rand.New(rand.NewSource(5)), x.Rows()),
			make([]float64, x.Rows()), sigma)
		if err != nil {
			t.Fatal(err)
		}
		y, _, err := p.Apply(rng, x)
		if err != nil {
			t.Fatal(err)
		}
		known := x.Slice(0, x.Rows(), 0, x.Rows()+4)
		atk := NewDistanceInferenceAttack(DistanceInferenceConfig{})
		xhat, err := atk.Estimate(y, Knowledge{Original: x, KnownOriginal: known})
		if err != nil {
			// Identification failing outright is the defence succeeding;
			// treat as maximal privacy for this comparison.
			return 1
		}
		cols, err := ColumnPrivacy(x, xhat)
		if err != nil {
			t.Fatal(err)
		}
		min := cols[0]
		for _, v := range cols {
			if v < min {
				min = v
			}
		}
		return min
	}
	clean, noisy := guarantee(0), guarantee(0.25)
	if noisy <= clean {
		t.Errorf("noise did not raise privacy under distance inference: %v vs %v", clean, noisy)
	}
}

func TestDistanceInferenceInapplicable(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	y := matrix.RandomUniform(rng, 4, 30, 0, 1)
	atk := NewDistanceInferenceAttack(DistanceInferenceConfig{})

	if _, err := atk.Estimate(y, Knowledge{}); !errors.Is(err, ErrInapplicable) {
		t.Errorf("no knowledge err = %v", err)
	}
	two := matrix.RandomUniform(rng, 4, 2, 0, 1)
	if _, err := atk.Estimate(y, Knowledge{KnownOriginal: two}); !errors.Is(err, ErrInapplicable) {
		t.Errorf("2 known err = %v", err)
	}
	wrongDim := matrix.RandomUniform(rng, 3, 5, 0, 1)
	if _, err := atk.Estimate(y, Knowledge{KnownOriginal: wrongDim}); !errors.Is(err, ErrInapplicable) {
		t.Errorf("dim err = %v", err)
	}
	// Identical known records carry no distance signature.
	same := matrix.New(4, 3)
	if _, err := atk.Estimate(y, Knowledge{KnownOriginal: same}); !errors.Is(err, ErrInapplicable) {
		t.Errorf("degenerate err = %v", err)
	}
	// More known records than data records.
	tiny := matrix.RandomUniform(rng, 4, 2, 0, 1)
	big := matrix.RandomUniform(rng, 4, 5, 0, 1)
	if _, err := atk.Estimate(tiny, Knowledge{KnownOriginal: big}); !errors.Is(err, ErrInapplicable) {
		t.Errorf("too few data err = %v", err)
	}
}

func TestDistanceInferenceNoMatchingAnchor(t *testing.T) {
	// If the data is scaled (not distance-preserving), no perturbed pair
	// matches the anchor distance and identification must fail cleanly.
	rng := rand.New(rand.NewSource(7))
	x := matrix.RandomUniform(rng, 3, 40, 0, 1)
	known := x.Slice(0, 3, 0, 4)
	scaled := x.Scale(100)
	atk := NewDistanceInferenceAttack(DistanceInferenceConfig{Tolerance: 0.01})
	if _, err := atk.Estimate(scaled, Knowledge{KnownOriginal: known}); !errors.Is(err, ErrInapplicable) {
		t.Errorf("err = %v, want ErrInapplicable", err)
	}
}

func TestDistanceInferenceInEvaluatorSuite(t *testing.T) {
	// The attack composes with the evaluator like any other.
	x := normalizedData(t, "Iris", 8)
	rng := rand.New(rand.NewSource(9))
	p, _ := perturb.NewRandom(rng, x.Rows(), 0.05)
	y, _, err := p.Apply(rng, x)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(NewNaiveAttack(), NewDistanceInferenceAttack(DistanceInferenceConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ev.Evaluate(x, y, Knowledge{KnownOriginal: x.Slice(0, x.Rows(), 0, 5)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MinGuarantee < 0 {
		t.Fatalf("negative guarantee %v", rep.MinGuarantee)
	}
	if len(rep.Attacks) != 2 {
		t.Fatalf("%d attacks, want 2", len(rep.Attacks))
	}
}

func TestPairwiseDistances(t *testing.T) {
	m := matrix.NewFromRows([][]float64{
		{0, 3, 0},
		{0, 0, 4},
	})
	d := pairwiseDistances(m)
	if d[0][1] != 3 || d[1][0] != 3 {
		t.Errorf("d(0,1) = %v, want 3", d[0][1])
	}
	if d[0][2] != 4 || d[1][2] != 5 {
		t.Errorf("d(0,2)=%v d(1,2)=%v, want 4 and 5", d[0][2], d[1][2])
	}
	if d[0][0] != 0 {
		t.Errorf("self distance %v", d[0][0])
	}
}
