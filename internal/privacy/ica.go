package privacy

import (
	"fmt"
	"math"

	"repro/internal/matrix"
	"repro/internal/stat"
)

// ICAConfig tunes the FastICA reconstruction attack. Zero values select the
// defaults noted on each field.
type ICAConfig struct {
	// MaxIter bounds the fixed-point iterations per component (default 64).
	MaxIter int
	// Tol is the convergence tolerance on the direction update (default 1e-6).
	Tol float64
	// EigenFloor discards whitening directions whose eigenvalue falls below
	// this fraction of the largest eigenvalue (default 1e-10).
	EigenFloor float64
}

func (c ICAConfig) withDefaults() ICAConfig {
	if c.MaxIter <= 0 {
		c.MaxIter = 64
	}
	if c.Tol <= 0 {
		c.Tol = 1e-6
	}
	if c.EigenFloor <= 0 {
		c.EigenFloor = 1e-10
	}
	return c
}

// ICAAttack reconstructs the original data with FastICA: rotation mixes the
// (approximately independent) original dimensions, and independent component
// analysis can unmix them up to permutation, sign, and scale. Those
// ambiguities are resolved attacker-optimally against the true data —
// matching the worst-case evaluation stance of the companion SDM'07 paper —
// and the per-dimension scale is restored from the (public) fact that the
// original dimensions are normalized with known means and variances.
type ICAAttack struct {
	cfg ICAConfig
}

// NewICAAttack builds a FastICA attack with the given configuration.
func NewICAAttack(cfg ICAConfig) *ICAAttack {
	return &ICAAttack{cfg: cfg.withDefaults()}
}

// Name implements Attack.
func (*ICAAttack) Name() string { return "ica" }

// Estimate implements Attack.
func (a *ICAAttack) Estimate(y *matrix.Dense, know Knowledge) (*matrix.Dense, error) {
	if know.Original == nil {
		return nil, fmt.Errorf("%w: ica alignment needs distribution knowledge", ErrInapplicable)
	}
	if y.Cols() <= 2*y.Rows() {
		return nil, fmt.Errorf("%w: ica needs N >> d (%dx%d)", ErrInapplicable, y.Rows(), y.Cols())
	}
	sources, err := fastICA(y, a.cfg)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInapplicable, err)
	}
	return alignSources(sources, know.Original), nil
}

// fastICA runs whitening plus deflationary fixed-point iteration with the
// tanh contrast, returning the estimated source signals (k×N, k ≤ d after
// the eigen floor).
func fastICA(y *matrix.Dense, cfg ICAConfig) (*matrix.Dense, error) {
	cfg = cfg.withDefaults()
	yc, _ := centerRows(y)
	vals, vecs, err := eigenOfCovariance(yc)
	if err != nil {
		return nil, fmt.Errorf("whitening: %w", err)
	}
	d := y.Rows()
	// Keep directions with non-degenerate variance.
	keep := 0
	for keep < d && vals[keep] > cfg.EigenFloor*math.Max(vals[0], 1e-300) {
		keep++
	}
	if keep == 0 {
		return nil, fmt.Errorf("whitening: all eigenvalues degenerate")
	}
	// Whitening matrix W = D^{-1/2}·Eᵀ (keep×d).
	w := matrix.New(keep, d)
	for i := 0; i < keep; i++ {
		s := 1 / math.Sqrt(vals[i])
		for j := 0; j < d; j++ {
			w.Set(i, j, vecs.At(j, i)*s)
		}
	}
	z := w.Mul(yc) // keep×N whitened data
	n := z.Cols()

	// Deflationary FastICA with g = tanh.
	b := matrix.New(keep, keep) // unmixing vectors in rows
	for comp := 0; comp < keep; comp++ {
		wv := make([]float64, keep)
		// Deterministic varied init per component (no RNG needed: the
		// whitened space makes any non-degenerate init workable).
		for j := range wv {
			wv[j] = math.Cos(float64(comp+1) * float64(j+1))
		}
		normalizeVec(wv)
		orthogonalizeAgainst(wv, b, comp)
		normalizeVec(wv)
		for iter := 0; iter < cfg.MaxIter; iter++ {
			next := make([]float64, keep)
			var gSum float64
			for c := 0; c < n; c++ {
				var dot float64
				for j := 0; j < keep; j++ {
					dot += wv[j] * z.At(j, c)
				}
				g := math.Tanh(dot)
				gp := 1 - g*g
				gSum += gp
				for j := 0; j < keep; j++ {
					next[j] += z.At(j, c) * g
				}
			}
			fn := float64(n)
			for j := 0; j < keep; j++ {
				next[j] = next[j]/fn - gSum/fn*wv[j]
			}
			orthogonalizeAgainst(next, b, comp)
			normalizeVec(next)
			var diff float64
			for j := 0; j < keep; j++ {
				// Convergence up to sign.
				diff += next[j] * wv[j]
			}
			conv := math.Abs(math.Abs(diff) - 1)
			copy(wv, next)
			if conv < cfg.Tol {
				break
			}
		}
		b.SetRow(comp, wv)
	}
	return b.Mul(z), nil
}

// alignSources resolves ICA's permutation/sign/scale ambiguity in the
// attacker's favor: each original dimension is greedily matched to the
// unclaimed source with the highest |correlation|, sign-corrected, and
// rescaled to the original dimension's mean and standard deviation.
func alignSources(sources, x *matrix.Dense) *matrix.Dense {
	d, n := x.Rows(), x.Cols()
	k := sources.Rows()
	xhat := matrix.New(d, n)
	used := make([]bool, k)
	for j := 0; j < d; j++ {
		xRow := x.Row(j)
		bestIdx, bestAbs, bestCorr := -1, -1.0, 0.0
		for s := 0; s < k; s++ {
			if used[s] {
				continue
			}
			r, err := stat.Correlation(sources.Row(s), xRow)
			if err != nil {
				continue
			}
			if abs := math.Abs(r); abs > bestAbs {
				bestIdx, bestAbs, bestCorr = s, abs, r
			}
		}
		mean := stat.Mean(xRow)
		sd := stat.StdDev(xRow)
		if bestIdx < 0 {
			// No source left: fall back to the dimension's mean.
			for i := 0; i < n; i++ {
				xhat.Set(j, i, mean)
			}
			continue
		}
		used[bestIdx] = true
		src := sources.Row(bestIdx)
		srcMean := stat.Mean(src)
		srcSD := stat.StdDev(src)
		sign := 1.0
		if bestCorr < 0 {
			sign = -1
		}
		for i := 0; i < n; i++ {
			v := mean
			if srcSD > 0 {
				v = mean + sign*sd*(src[i]-srcMean)/srcSD
			}
			xhat.Set(j, i, v)
		}
	}
	return xhat
}

func normalizeVec(v []float64) {
	var norm float64
	for _, x := range v {
		norm += x * x
	}
	norm = math.Sqrt(norm)
	if norm == 0 {
		v[0] = 1
		return
	}
	for i := range v {
		v[i] /= norm
	}
}

// orthogonalizeAgainst removes from v its projections on the first count
// rows of basis (Gram-Schmidt deflation).
func orthogonalizeAgainst(v []float64, basis *matrix.Dense, count int) {
	for r := 0; r < count; r++ {
		row := basis.Row(r)
		var dot float64
		for j := range v {
			dot += v[j] * row[j]
		}
		for j := range v {
			v[j] -= dot * row[j]
		}
	}
}
