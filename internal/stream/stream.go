// Package stream perturbs data that arrives incrementally instead of as one
// fixed batch, extending the paper's §2 geometric perturbation
// G(X) = RX + Ψ + Δ to continuous ingestion (in the spirit of multiplicative
// perturbation over data streams; see PAPERS.md, Chhinkaniwala & Garg).
//
// A Pipeline pulls chunks of clear records from a Source, re-chunks them to
// a configured size, perturbs each chunk with a stream-local perturbation
// G_s, and immediately re-expresses it in the unified target space G_t
// through the §3 space adaptor A_st — so every emitted chunk can be appended
// to a serving miner's unified training set without the miner ever seeing
// clear data. Emission goes through a bounded buffer: a slow consumer
// backpressures the producer instead of growing memory without bound.
//
// While streaming, the pipeline maintains the covariance of the most recent
// window of clear input (stat.WindowedCov — a deque of Welford/rank-1 chunk
// accumulators with whole-chunk eviction, Config.DriftWindow). When that
// windowed covariance has drifted from the snapshot taken at the last
// derivation by more than a configured relative Frobenius threshold, the
// pipeline re-derives: it draws a fresh G_s′ and a fresh adaptor A_s′t, and bumps the
// chunk epoch. Re-derivation changes which rotated noise the target space
// inherits — the defensive posture follows the data — but every epoch still
// lands in the same target space, so downstream consumers are oblivious.
// With drift re-derivation disabled and σ = 0 the concatenated output equals
// the batch transform G_t(X) exactly.
//
// Privacy posture: stream-space transforms are Haar-random draws, not
// outputs of the §2.2 attack-suite optimizer — running the optimizer per
// chunk (or per re-derivation) is incompatible with the ingestion hot path.
// A caller that needs streamed records to meet an optimizer-vetted
// guarantee should pass an optimized perturbation as Config.Perturbation
// (cmd/sapnode's -stream does) and treat drift re-derivations, which draw
// random replacements, as a signal to re-optimize out of band; see the
// ROADMAP open item on optimizer-vetted stream transforms.
package stream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync/atomic"

	"repro/internal/dataset"
	"repro/internal/matrix"
	"repro/internal/metrics"
	"repro/internal/perturb"
	"repro/internal/stat"
)

// Defaults applied by Config.withDefaults.
const (
	// DefaultChunkSize is the records-per-chunk target when Config.ChunkSize
	// is zero.
	DefaultChunkSize = 256
	// DefaultBufferDepth is the emitted-chunk buffer capacity when
	// Config.BufferDepth is zero.
	DefaultBufferDepth = 4
	// DefaultDriftWindow is the drift statistic's record window when
	// Config.DriftWindow is zero.
	DefaultDriftWindow = 4096
)

// Errors returned by the streaming pipeline.
var (
	ErrBadConfig = errors.New("stream: bad pipeline configuration")
	ErrDim       = errors.New("stream: record dimension mismatch")
)

// Source yields successive slices of clear, labeled records. Next returns
// io.EOF when the stream ends; any chunk size is accepted (the pipeline
// re-chunks). Implementations need not be safe for concurrent use — the
// pipeline calls Next from a single goroutine.
type Source interface {
	Next(ctx context.Context) (*dataset.Dataset, error)
}

// datasetSource yields one in-memory dataset as a single slice, then EOF.
type datasetSource struct {
	d    *dataset.Dataset
	done bool
}

// DatasetSource adapts an in-memory dataset into a Source, letting batch
// data flow through the streaming pipeline (used by tests, benchmarks and
// the equivalence check between streaming and batch perturbation).
func DatasetSource(d *dataset.Dataset) Source { return &datasetSource{d: d} }

// Next implements Source.
func (s *datasetSource) Next(ctx context.Context) (*dataset.Dataset, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.done || s.d == nil || s.d.Len() == 0 {
		return nil, io.EOF
	}
	s.done = true
	return s.d, nil
}

// Chunk is one emitted unit of perturbed data, already in the target space.
type Chunk struct {
	// Seq numbers chunks from 0 in emission order.
	Seq int
	// Epoch counts transform derivations; it starts at 0 and increments
	// every time drift triggers a re-derivation.
	Epoch int
	// Drift is the relative covariance drift measured when the chunk was
	// cut (0 until enough records are in to measure).
	Drift float64
	// Data holds the perturbed records (target space) with their labels.
	Data *dataset.Dataset
}

// Config assembles a Pipeline.
type Config struct {
	// Perturbation is the initial stream-space perturbation G_s (its σ is
	// reused by re-derived transforms). Required.
	Perturbation *perturb.Perturbation
	// Target is the unified target perturbation G_t the emitted chunks are
	// adapted into. Required; same dimension as Perturbation.
	Target *perturb.Perturbation
	// Rng drives the noise draws and the re-derived transforms. Required.
	Rng *rand.Rand
	// ChunkSize is the records-per-chunk target (default DefaultChunkSize).
	ChunkSize int
	// DriftThreshold is the relative covariance drift that triggers a
	// transform re-derivation; 0 disables re-derivation.
	DriftThreshold float64
	// DriftWindow bounds how many recent records the drift statistic is
	// computed over (default DefaultDriftWindow; chunk-granular, so up to
	// one extra chunk is retained). A windowed statistic keeps late drift
	// detectable on old streams — a lifetime covariance is dominated by a
	// long stable prefix. Negative restores the unbounded lifetime
	// accumulator of earlier releases.
	DriftWindow int
	// BufferDepth is the emitted-chunk buffer capacity (default
	// DefaultBufferDepth). A full buffer blocks the producer.
	BufferDepth int
	// Metrics receives the pipeline's instrumentation under the "stream."
	// namespace: chunks/records emitted, drift re-derivations, and the
	// emitted-chunk buffer occupancy. Nil discards all updates.
	Metrics metrics.Metrics
}

func (c Config) withDefaults() Config {
	if c.ChunkSize <= 0 {
		c.ChunkSize = DefaultChunkSize
	}
	if c.BufferDepth <= 0 {
		c.BufferDepth = DefaultBufferDepth
	}
	if c.DriftWindow == 0 {
		c.DriftWindow = DefaultDriftWindow
	}
	if c.Metrics == nil {
		c.Metrics = metrics.Nop()
	}
	return c
}

// Pipeline is one streaming perturbation run. Construct with New, start with
// Run, consume from Out. Counters (Records, Epoch) may be read concurrently
// with a running pipeline.
type Pipeline struct {
	cfg     Config
	pert    *perturb.Perturbation
	adaptor *perturb.Adaptor
	acc     *stat.WindowedCov
	// ref is the covariance snapshot at the last derivation (nil until the
	// first measurable covariance after a derivation).
	ref *matrix.Dense

	out     chan Chunk
	records atomic.Int64
	epoch   atomic.Int64

	// Instruments, resolved once at construction under the "stream."
	// namespace so the per-chunk cost is a few atomic updates.
	mChunks        metrics.Counter // chunks emitted
	mRecords       metrics.Counter // records emitted
	mRederivations metrics.Counter // drift-triggered transform re-derivations
	mBuffer        metrics.Gauge   // emitted-chunk buffer occupancy
}

// New validates the configuration and assembles an unstarted pipeline.
func New(cfg Config) (*Pipeline, error) {
	cfg = cfg.withDefaults()
	if cfg.Perturbation == nil || cfg.Target == nil {
		return nil, fmt.Errorf("%w: missing perturbation or target", ErrBadConfig)
	}
	if cfg.Perturbation.Dim() != cfg.Target.Dim() {
		return nil, fmt.Errorf("%w: stream dim %d vs target dim %d",
			ErrBadConfig, cfg.Perturbation.Dim(), cfg.Target.Dim())
	}
	if cfg.Rng == nil {
		return nil, fmt.Errorf("%w: missing rng", ErrBadConfig)
	}
	if cfg.DriftThreshold < 0 {
		return nil, fmt.Errorf("%w: negative drift threshold %v", ErrBadConfig, cfg.DriftThreshold)
	}
	adaptor, err := perturb.NewAdaptor(cfg.Perturbation, cfg.Target)
	if err != nil {
		return nil, err
	}
	acc, err := stat.NewWindowedCov(cfg.Perturbation.Dim(), cfg.DriftWindow)
	if err != nil {
		return nil, err
	}
	p := &Pipeline{
		cfg:     cfg,
		pert:    cfg.Perturbation.Clone(),
		adaptor: adaptor,
		acc:     acc,
		out:     make(chan Chunk, cfg.BufferDepth),

		mChunks:        cfg.Metrics.Counter("stream.chunks"),
		mRecords:       cfg.Metrics.Counter("stream.records"),
		mRederivations: cfg.Metrics.Counter("stream.rederivations"),
	}
	// Buffer occupancy is a property of the emitted-chunk channel, which
	// both the producer and external consumers move: a pushed gauge updated
	// on the producer side alone goes stale the moment a consumer drains.
	// Sinks that support derived gauges read the channel length live at
	// snapshot time instead; for the rest, the producer-side update is the
	// best available approximation. Like every "stream." instrument the
	// name is registry-wide, so the derived gauge follows the most recently
	// constructed pipeline (a finished pipeline reports its drained buffer,
	// 0, until the next pipeline replaces the registration).
	if fg, ok := cfg.Metrics.(metrics.FuncGauges); ok {
		fg.GaugeFunc("stream.buffer_occupancy", func() int64 { return int64(len(p.out)) })
		p.mBuffer = metrics.Nop().Gauge("")
	} else {
		p.mBuffer = cfg.Metrics.Gauge("stream.buffer_occupancy")
	}
	return p, nil
}

// Out returns the emitted-chunk channel. It is closed when Run returns;
// consume until closed, then check Run's error.
func (p *Pipeline) Out() <-chan Chunk { return p.out }

// Records returns the number of records emitted so far.
func (p *Pipeline) Records() int { return int(p.records.Load()) }

// Epoch returns the current transform generation (0-based; equals the number
// of drift re-derivations so far).
func (p *Pipeline) Epoch() int { return int(p.epoch.Load()) }

// Dim returns the record dimensionality the pipeline accepts.
func (p *Pipeline) Dim() int { return p.pert.Dim() }

// Run pulls the source dry, perturbing and emitting chunks until the source
// returns io.EOF (nil result), the context is cancelled, or an error occurs.
// It closes Out before returning and must be called at most once.
func (p *Pipeline) Run(ctx context.Context, src Source) error {
	defer close(p.out)
	if src == nil {
		return fmt.Errorf("%w: nil source", ErrBadConfig)
	}
	seq := 0
	// pending accumulates source records until a full chunk is cut. The
	// buffer owns its rows outright — each incoming row is copied on
	// arrival, since a Source is free to reuse its slices between Next
	// calls — and is compacted in place at every cut, so a long stream
	// recycles one bounded backing array instead of marching the slice
	// window through an ever-growing one.
	var pendX [][]float64
	var pendY []int

	flush := func(final bool) error {
		for len(pendX) >= p.cfg.ChunkSize || (final && len(pendX) > 0) {
			n := p.cfg.ChunkSize
			if n > len(pendX) {
				n = len(pendX)
			}
			chunk, err := p.emit(ctx, seq, pendX[:n], pendY[:n])
			if err != nil {
				return err
			}
			seq++
			// emit has fully materialized the chunk (target-space copies),
			// so the cut rows can be compacted over.
			pendX = pendX[:copy(pendX, pendX[n:])]
			pendY = pendY[:copy(pendY, pendY[n:])]
			select {
			case p.out <- chunk:
				p.records.Add(int64(chunk.Data.Len()))
				p.mChunks.Inc()
				p.mRecords.Add(int64(chunk.Data.Len()))
				p.mBuffer.Set(int64(len(p.out)))
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		return nil
	}

	for {
		in, err := src.Next(ctx)
		if errors.Is(err, io.EOF) {
			return flush(true)
		}
		if err != nil {
			return err
		}
		if in == nil || in.Len() == 0 {
			continue
		}
		if in.Dim() != p.Dim() {
			return fmt.Errorf("%w: source chunk dim %d, pipeline dim %d", ErrDim, in.Dim(), p.Dim())
		}
		for _, row := range in.X {
			pendX = append(pendX, append([]float64(nil), row...))
		}
		pendY = append(pendY, in.Y...)
		if err := flush(false); err != nil {
			return err
		}
	}
}

// emit folds one cut chunk into the running statistics, re-derives the
// transform if the covariance has drifted past the threshold, and perturbs
// the chunk into the target space.
func (p *Pipeline) emit(ctx context.Context, seq int, x [][]float64, y []int) (Chunk, error) {
	xcols := matrix.NewFromRows(x).T()
	if err := p.acc.AddChunk(xcols); err != nil {
		return Chunk{}, err
	}
	drift, err := p.measureDrift()
	if err != nil {
		return Chunk{}, err
	}
	if p.cfg.DriftThreshold > 0 && drift > p.cfg.DriftThreshold {
		if err := p.rederive(); err != nil {
			return Chunk{}, err
		}
	}

	// Perturb in the stream space, then adapt into the target space. The
	// target inherits the rotated stream noise (the §3 complementary-noise
	// identity), exactly as a batch provider's submission would.
	perturbed, _, err := p.pert.Apply(p.cfg.Rng, xcols)
	if err != nil {
		return Chunk{}, err
	}
	adapted, err := p.adaptor.Apply(perturbed)
	if err != nil {
		return Chunk{}, err
	}

	rows := adapted.Columns()
	name := fmt.Sprintf("stream-chunk-%d", seq)
	data, err := dataset.New(name, rows, append([]int(nil), y...))
	if err != nil {
		return Chunk{}, err
	}
	return Chunk{Seq: seq, Epoch: p.Epoch(), Drift: drift, Data: data}, nil
}

// measureDrift compares the running covariance against the last derivation's
// snapshot. Until a snapshot exists (fewer than 2 records at the previous
// derivation) the current covariance becomes the reference and drift is 0.
func (p *Pipeline) measureDrift() (float64, error) {
	cov, err := p.acc.Covariance()
	if errors.Is(err, stat.ErrEmpty) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	if p.ref == nil {
		p.ref = cov
		return 0, nil
	}
	return stat.CovarianceDrift(p.ref, cov)
}

// rederive draws a fresh stream-space perturbation (same σ) plus its target
// adaptor, restarts the drift statistics, and bumps the epoch. The window is
// reset so each epoch measures the covariance of its own records — records
// retained from before the re-derivation belong to the regime that triggered
// it and would re-trigger against the fresh reference.
func (p *Pipeline) rederive() error {
	fresh, err := perturb.NewRandom(p.cfg.Rng, p.Dim(), p.pert.NoiseSigma)
	if err != nil {
		return err
	}
	adaptor, err := perturb.NewAdaptor(fresh, p.cfg.Target)
	if err != nil {
		return err
	}
	p.pert = fresh
	p.adaptor = adaptor
	p.acc.Reset()
	p.ref = nil // next measurable covariance becomes the new reference
	p.epoch.Add(1)
	p.mRederivations.Inc()
	return nil
}
