package stream

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/matrix"
	"repro/internal/metrics"
	"repro/internal/perturb"
)

// mkData builds an n×d labeled dataset with per-dimension offsets so its
// covariance is non-trivial.
func mkData(t *testing.T, rng *rand.Rand, name string, n, d int, shift float64) *dataset.Dataset {
	t.Helper()
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		row := make([]float64, d)
		for j := range row {
			row[j] = shift + rng.NormFloat64()*(1+float64(j))
		}
		x[i] = row
		y[i] = i % 3
	}
	ds, err := dataset.New(name, x, y)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func mkPipeline(t *testing.T, rng *rand.Rand, d int, sigma float64, cfg Config) *Pipeline {
	t.Helper()
	var err error
	if cfg.Perturbation == nil {
		cfg.Perturbation, err = perturb.NewRandom(rng, d, sigma)
		if err != nil {
			t.Fatal(err)
		}
	}
	if cfg.Target == nil {
		target, err := perturb.NewRandom(rng, d, 0)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Target = target.WithoutNoise()
	}
	if cfg.Rng == nil {
		cfg.Rng = rng
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// drain runs the pipeline over src and collects every chunk.
func drain(t *testing.T, p *Pipeline, src Source) ([]Chunk, error) {
	t.Helper()
	errc := make(chan error, 1)
	go func() { errc <- p.Run(context.Background(), src) }()
	var chunks []Chunk
	for c := range p.Out() {
		chunks = append(chunks, c)
	}
	return chunks, <-errc
}

// TestStreamMatchesBatchNoiseless is the acceptance contract: with drift
// re-derivation disabled and σ = 0, the concatenated streamed output must
// equal the batch target transform G_t(X) exactly (well within 1e-9).
func TestStreamMatchesBatchNoiseless(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := mkData(t, rng, "equiv", 503, 5, 0)
	p := mkPipeline(t, rng, 5, 0, Config{ChunkSize: 64})

	chunks, err := drain(t, p, DatasetSource(data))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want, err := p.cfg.Target.ApplyNoiseless(data.FeaturesT())
	if err != nil {
		t.Fatal(err)
	}
	got := matrix.New(want.Rows(), 0)
	total := 0
	for i, c := range chunks {
		if c.Seq != i {
			t.Fatalf("chunk %d has Seq %d", i, c.Seq)
		}
		if c.Epoch != 0 {
			t.Fatalf("chunk %d re-derived (epoch %d) with drift disabled", i, c.Epoch)
		}
		total += c.Data.Len()
		got = got.Augment(c.Data.FeaturesT())
	}
	if total != data.Len() {
		t.Fatalf("streamed %d records, want %d", total, data.Len())
	}
	if p.Records() != data.Len() {
		t.Fatalf("Records() = %d, want %d", p.Records(), data.Len())
	}
	if !got.EqualApprox(want, 1e-9) {
		t.Fatalf("streamed output diverged from batch transform: max delta %v",
			got.Sub(want).MaxAbs())
	}
	// Labels must ride along untouched.
	off := 0
	for _, c := range chunks {
		for i, y := range c.Data.Y {
			if y != data.Y[off+i] {
				t.Fatalf("label %d mutated in flight", off+i)
			}
		}
		off += c.Data.Len()
	}
}

// TestStreamChunking checks the re-chunking contract: a source yielding
// irregular slices comes out re-cut to ChunkSize with one final partial
// chunk.
func TestStreamChunking(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pieces := []*dataset.Dataset{
		mkData(t, rng, "a", 10, 3, 0),
		mkData(t, rng, "b", 57, 3, 0),
		mkData(t, rng, "c", 3, 3, 0),
	}
	p := mkPipeline(t, rng, 3, 0.05, Config{ChunkSize: 16})
	chunks, err := drain(t, p, &sliceSource{parts: pieces})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, c := range chunks {
		if i < len(chunks)-1 && c.Data.Len() != 16 {
			t.Fatalf("chunk %d has %d records, want full 16", i, c.Data.Len())
		}
		total += c.Data.Len()
	}
	if total != 70 {
		t.Fatalf("streamed %d records, want 70", total)
	}
	if last := chunks[len(chunks)-1].Data.Len(); last != 70%16 {
		t.Fatalf("final partial chunk has %d records, want %d", last, 70%16)
	}
}

// sliceSource yields a fixed sequence of datasets.
type sliceSource struct {
	parts []*dataset.Dataset
	i     int
}

func (s *sliceSource) Next(ctx context.Context) (*dataset.Dataset, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.i >= len(s.parts) {
		return nil, io.EOF
	}
	d := s.parts[s.i]
	s.i++
	return d, nil
}

// TestStreamDriftRederivation feeds a stream whose distribution shifts
// abruptly and checks that the pipeline bumps its epoch — and that every
// epoch's output still lands in the same target space (verified by
// recovering the clear data through the target transform, which must succeed
// for σ = 0 regardless of which stream-space transform produced the chunk).
func TestStreamDriftRederivation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	calm := mkData(t, rng, "calm", 200, 4, 0)
	shifted := mkData(t, rng, "shifted", 200, 4, 25)

	p := mkPipeline(t, rng, 4, 0, Config{ChunkSize: 32, DriftThreshold: 0.5})
	chunks, err := drain(t, p, &sliceSource{parts: []*dataset.Dataset{calm, shifted}})
	if err != nil {
		t.Fatal(err)
	}
	if p.Epoch() == 0 {
		t.Fatal("distribution shift never triggered a re-derivation")
	}
	merged, err := dataset.Merge(calm, shifted)
	if err != nil {
		t.Fatal(err)
	}
	off := 0
	for _, c := range chunks {
		recovered, err := p.cfg.Target.Recover(c.Data.FeaturesT())
		if err != nil {
			t.Fatal(err)
		}
		wantSlice := merged.Subset(seqInts(off, c.Data.Len())).FeaturesT()
		if !recovered.EqualApprox(wantSlice, 1e-8) {
			t.Fatalf("chunk %d (epoch %d) is not in the target space", c.Seq, c.Epoch)
		}
		off += c.Data.Len()
	}
	// Epochs must be monotone non-decreasing across chunks.
	for i := 1; i < len(chunks); i++ {
		if chunks[i].Epoch < chunks[i-1].Epoch {
			t.Fatalf("epoch regressed at chunk %d", i)
		}
	}
}

// TestStreamWindowedDriftCatchesLateShift pins the reason the drift
// statistic moved to a sliding window: after a long stable prefix, a
// variance jump in the tail must trigger re-derivation under the windowed
// statistic, while the legacy lifetime accumulator (DriftWindow < 0)
// dilutes the same jump below the threshold and never reacts.
func TestStreamWindowedDriftCatchesLateShift(t *testing.T) {
	run := func(window int) int {
		rng := rand.New(rand.NewSource(11))
		calm := mkData(t, rng, "calm", 6000, 3, 0)
		tail := mkData(t, rng, "tail", 600, 3, 0)
		for _, row := range tail.X {
			for j := range row {
				row[j] *= 2 // variance x4 in the tail regime
			}
		}
		p := mkPipeline(t, rng, 3, 0, Config{ChunkSize: 64, DriftThreshold: 0.8, DriftWindow: window})
		if _, err := drain(t, p, &sliceSource{parts: []*dataset.Dataset{calm, tail}}); err != nil {
			t.Fatal(err)
		}
		return p.Epoch()
	}
	if got := run(512); got == 0 {
		t.Fatal("windowed drift statistic missed a late variance jump")
	}
	if got := run(-1); got != 0 {
		t.Fatalf("lifetime statistic re-derived %d time(s); the fixture no longer isolates the window's effect", got)
	}
}

func seqInts(start, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = start + i
	}
	return out
}

// TestStreamBackpressure checks the bounded buffer: with no consumer, the
// producer must stall after filling BufferDepth chunks instead of buffering
// the whole stream.
func TestStreamBackpressure(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data := mkData(t, rng, "big", 400, 3, 0)
	p := mkPipeline(t, rng, 3, 0, Config{ChunkSize: 10, BufferDepth: 2})

	done := make(chan error, 1)
	go func() { done <- p.Run(context.Background(), DatasetSource(data)) }()

	// Give the producer time to run ahead; it may complete at most
	// BufferDepth buffered chunks + one blocked in the send.
	time.Sleep(50 * time.Millisecond)
	if got := p.Records(); got > 30 {
		t.Fatalf("producer emitted %d records with no consumer (buffer depth 2, chunk 10)", got)
	}
	for range p.Out() {
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if p.Records() != 400 {
		t.Fatalf("Records() = %d after drain, want 400", p.Records())
	}
}

// TestStreamCancel checks that cancelling the context unblocks a
// backpressured producer and surfaces context.Canceled.
func TestStreamCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := mkData(t, rng, "big", 400, 3, 0)
	p := mkPipeline(t, rng, 3, 0, Config{ChunkSize: 10, BufferDepth: 1})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- p.Run(ctx, DatasetSource(data)) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled producer never returned")
	}
}

// TestStreamDimMismatch checks that a source chunk of the wrong width kills
// the run with ErrDim.
func TestStreamDimMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := mkPipeline(t, rng, 3, 0, Config{})
	wrong := mkData(t, rng, "wrong", 8, 5, 0)
	_, err := drain(t, p, DatasetSource(wrong))
	if !errors.Is(err, ErrDim) {
		t.Fatalf("got %v, want ErrDim", err)
	}
}

// TestStreamConfigValidation exercises New's rejection paths.
func TestStreamConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pert, err := perturb.NewRandom(rng, 3, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	target, err := perturb.NewRandom(rng, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	otherDim, err := perturb.NewRandom(rng, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	cases := []Config{
		{Target: target, Rng: rng},                                           // missing perturbation
		{Perturbation: pert, Rng: rng},                                       // missing target
		{Perturbation: pert, Target: otherDim, Rng: rng},                     // dim mismatch
		{Perturbation: pert, Target: target},                                 // missing rng
		{Perturbation: pert, Target: target, Rng: rng, DriftThreshold: -0.1}, // negative drift
	}
	for i, cfg := range cases {
		if _, err := New(cfg); !errors.Is(err, ErrBadConfig) {
			t.Fatalf("case %d: got %v, want ErrBadConfig", i, err)
		}
	}
	// Nil source is rejected by Run.
	p, err := New(Config{Perturbation: pert, Target: target, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(context.Background(), nil); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("nil source: got %v, want ErrBadConfig", err)
	}
}

// TestStreamMetrics checks the pipeline's instrumentation: every emitted
// chunk and record is counted, each drift re-derivation increments the
// rederivation counter in lockstep with the epoch, and the buffer gauge is
// bounded by the configured depth.
func TestStreamMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	calm := mkData(t, rng, "calm", 200, 4, 0)
	shifted := mkData(t, rng, "shifted", 200, 4, 25)

	reg := metrics.NewRegistry()
	p := mkPipeline(t, rng, 4, 0, Config{ChunkSize: 32, DriftThreshold: 0.5, Metrics: reg})
	chunks, err := drain(t, p, &sliceSource{parts: []*dataset.Dataset{calm, shifted}})
	if err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["stream.chunks"]; got != int64(len(chunks)) {
		t.Fatalf("stream.chunks = %d, want %d", got, len(chunks))
	}
	if got := snap.Counters["stream.records"]; got != int64(calm.Len()+shifted.Len()) {
		t.Fatalf("stream.records = %d, want %d", got, calm.Len()+shifted.Len())
	}
	if got := snap.Counters["stream.rederivations"]; got != int64(p.Epoch()) {
		t.Fatalf("stream.rederivations = %d, want epoch %d", got, p.Epoch())
	}
	if p.Epoch() == 0 {
		t.Fatal("distribution shift never triggered a re-derivation")
	}
	if depth := snap.Gauges["stream.buffer_occupancy"]; depth < 0 || depth > DefaultBufferDepth {
		t.Fatalf("stream.buffer_occupancy = %d, want within [0,%d]", depth, DefaultBufferDepth)
	}
}

// reusingSource yields rows through ONE reused backing buffer, the way an
// IO-backed source would recycle its read buffer between Next calls. The
// pipeline must copy rows on arrival: records pending across Next calls
// would otherwise alias memory the source is about to overwrite.
type reusingSource struct {
	rows  [][]float64 // all records, immutable reference copy
	buf   *dataset.Dataset
	i, by int
}

func newReusingSource(t *testing.T, rows [][]float64, by int) *reusingSource {
	t.Helper()
	bufRows := make([][]float64, by)
	for i := range bufRows {
		bufRows[i] = make([]float64, len(rows[0]))
	}
	buf, err := dataset.New("reused", bufRows, make([]int, by))
	if err != nil {
		t.Fatal(err)
	}
	return &reusingSource{rows: rows, buf: buf, by: by}
}

func (s *reusingSource) Next(ctx context.Context) (*dataset.Dataset, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.i >= len(s.rows) {
		// Poison the shared buffer one last time: any aliased pending row
		// would emit this garbage instead of its real values.
		for _, row := range s.buf.X {
			for j := range row {
				row[j] = -1e9
			}
		}
		return nil, io.EOF
	}
	n := s.by
	if n > len(s.rows)-s.i {
		n = len(s.rows) - s.i
	}
	for r := 0; r < n; r++ {
		copy(s.buf.X[r], s.rows[s.i+r])
		s.buf.Y[r] = (s.i + r) % 3
	}
	s.i += n
	return &dataset.Dataset{Name: "reused", X: s.buf.X[:n], Y: s.buf.Y[:n]}, nil
}

// TestPendingBufferOwnsItsRows streams through a buffer-reusing source with
// a chunk size that forces records to sit pending across Next calls, and
// checks the emitted output still equals the batch transform exactly — the
// regression test for the pending buffer aliasing source-owned memory.
func TestPendingBufferOwnsItsRows(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	data := mkData(t, rng, "aliased", 101, 3, 0)
	p := mkPipeline(t, rng, 3, 0, Config{ChunkSize: 16})

	// Yield 7 rows per Next against a chunk size of 16: every chunk spans
	// multiple source batches, so pending rows survive buffer reuse.
	chunks, err := drain(t, p, newReusingSource(t, data.X, 7))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want, err := p.cfg.Target.ApplyNoiseless(data.FeaturesT())
	if err != nil {
		t.Fatal(err)
	}
	got := matrix.New(want.Rows(), 0)
	for _, c := range chunks {
		got = got.Augment(c.Data.FeaturesT())
	}
	if got.Cols() != data.Len() {
		t.Fatalf("streamed %d records, want %d", got.Cols(), data.Len())
	}
	if !got.EqualApprox(want, 1e-9) {
		t.Fatalf("streamed output diverged from batch transform (pending rows aliased the source buffer): max delta %v",
			got.Sub(want).MaxAbs())
	}
}

// TestBufferOccupancyDerivedAtSnapshot checks the emitted-chunk buffer gauge
// is read live from the channel at snapshot time: a full buffer reports its
// depth, and a drained buffer reports zero — the producer-side-only gauge
// used to stay stuck at its last emission value forever.
func TestBufferOccupancyDerivedAtSnapshot(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	data := mkData(t, rng, "gauge", 200, 3, 0)
	reg := metrics.NewRegistry()
	p := mkPipeline(t, rng, 3, 0, Config{ChunkSize: 16, BufferDepth: 2, Metrics: reg})

	errc := make(chan error, 1)
	go func() { errc <- p.Run(context.Background(), DatasetSource(data)) }()

	// With no consumer, the producer fills the buffer and blocks on the
	// next emission; the gauge must report the genuine occupancy.
	deadline := time.Now().Add(10 * time.Second)
	for reg.Snapshot().Gauges["stream.buffer_occupancy"] != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("stream.buffer_occupancy = %d, want 2 (full buffer)",
				reg.Snapshot().Gauges["stream.buffer_occupancy"])
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Drain everything: the gauge must fall back to zero, not stay stuck
	// at the producer's last push-side value.
	for range p.Out() {
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Gauges["stream.buffer_occupancy"]; got != 0 {
		t.Fatalf("stream.buffer_occupancy after drain = %d, want 0", got)
	}
}
