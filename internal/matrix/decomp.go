package matrix

import (
	"fmt"
	"math"
)

// LU holds an LU decomposition with partial pivoting: PA = LU, where L is
// unit lower triangular, U upper triangular, and P a row permutation.
type LU struct {
	lu    *Dense // packed L (below diagonal) and U (diagonal and above)
	piv   []int  // piv[i] is the row of A in row i of LU
	signs float64
}

// LUDecompose factors a square matrix. It returns ErrSingular if a zero
// pivot is encountered.
func LUDecompose(a *Dense) (*LU, error) {
	if a.rows != a.cols {
		panic(fmt.Sprintf("matrix: LUDecompose of non-square %dx%d", a.rows, a.cols))
	}
	n := a.rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1.0
	for k := 0; k < n; k++ {
		// Partial pivot: largest |value| in column k at or below row k.
		p, max := k, math.Abs(lu.data[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.data[i*n+k]); v > max {
				p, max = i, v
			}
		}
		if max == 0 {
			return nil, fmt.Errorf("zero pivot at column %d: %w", k, ErrSingular)
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu.data[p*n+j], lu.data[k*n+j] = lu.data[k*n+j], lu.data[p*n+j]
			}
			piv[p], piv[k] = piv[k], piv[p]
			sign = -sign
		}
		pivot := lu.data[k*n+k]
		for i := k + 1; i < n; i++ {
			f := lu.data[i*n+k] / pivot
			lu.data[i*n+k] = f
			for j := k + 1; j < n; j++ {
				lu.data[i*n+j] -= f * lu.data[k*n+j]
			}
		}
	}
	return &LU{lu: lu, piv: piv, signs: sign}, nil
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	n := f.lu.rows
	d := f.signs
	for i := 0; i < n; i++ {
		d *= f.lu.data[i*n+i]
	}
	return d
}

// Solve returns x such that A x = b for each column b of B.
func (f *LU) Solve(b *Dense) (*Dense, error) {
	n := f.lu.rows
	if b.rows != n {
		panic(fmt.Sprintf("matrix: LU.Solve dimension mismatch %d vs %d", b.rows, n))
	}
	x := New(n, b.cols)
	// Apply permutation.
	for i := 0; i < n; i++ {
		copy(x.data[i*b.cols:(i+1)*b.cols], b.data[f.piv[i]*b.cols:(f.piv[i]+1)*b.cols])
	}
	// Forward substitution (L has unit diagonal).
	for k := 0; k < n; k++ {
		for i := k + 1; i < n; i++ {
			l := f.lu.data[i*n+k]
			if l == 0 {
				continue
			}
			for j := 0; j < b.cols; j++ {
				x.data[i*b.cols+j] -= l * x.data[k*b.cols+j]
			}
		}
	}
	// Back substitution.
	for k := n - 1; k >= 0; k-- {
		d := f.lu.data[k*n+k]
		if d == 0 {
			return nil, ErrSingular
		}
		for j := 0; j < b.cols; j++ {
			x.data[k*b.cols+j] /= d
		}
		for i := 0; i < k; i++ {
			u := f.lu.data[i*n+k]
			if u == 0 {
				continue
			}
			for j := 0; j < b.cols; j++ {
				x.data[i*b.cols+j] -= u * x.data[k*b.cols+j]
			}
		}
	}
	return x, nil
}

// Inverse returns A⁻¹ for a square matrix, or ErrSingular.
func (m *Dense) Inverse() (*Dense, error) {
	f, err := LUDecompose(m)
	if err != nil {
		return nil, fmt.Errorf("inverse: %w", err)
	}
	inv, err := f.Solve(Identity(m.rows))
	if err != nil {
		return nil, fmt.Errorf("inverse: %w", err)
	}
	return inv, nil
}

// Det returns the determinant of a square matrix (0 if singular).
func (m *Dense) Det() float64 {
	f, err := LUDecompose(m)
	if err != nil {
		return 0
	}
	return f.Det()
}

// Solve solves A x = b (b as column matrix) via LU.
func (m *Dense) Solve(b *Dense) (*Dense, error) {
	f, err := LUDecompose(m)
	if err != nil {
		return nil, fmt.Errorf("solve: %w", err)
	}
	return f.Solve(b)
}

// QR holds a Householder QR decomposition A = Q R with Q orthogonal
// (rows×rows) and R upper trapezoidal (rows×cols).
type QR struct {
	Q *Dense
	R *Dense
}

// QRDecompose factors an m-by-n matrix with m >= n using Householder
// reflections.
func QRDecompose(a *Dense) *QR {
	m, n := a.rows, a.cols
	if m < n {
		panic(fmt.Sprintf("matrix: QRDecompose needs rows >= cols, got %dx%d", m, n))
	}
	r := a.Clone()
	q := Identity(m)
	v := make([]float64, m)
	for k := 0; k < n; k++ {
		// Householder vector for column k below the diagonal.
		var norm float64
		for i := k; i < m; i++ {
			norm += r.data[i*n+k] * r.data[i*n+k]
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			continue
		}
		alpha := -norm
		if r.data[k*n+k] < 0 {
			alpha = norm
		}
		var vnorm2 float64
		for i := k; i < m; i++ {
			v[i] = r.data[i*n+k]
			if i == k {
				v[i] -= alpha
			}
			vnorm2 += v[i] * v[i]
		}
		if vnorm2 == 0 {
			continue
		}
		// Apply H = I - 2 v vᵀ / (vᵀv) to R (columns k..n) ...
		for j := k; j < n; j++ {
			var dot float64
			for i := k; i < m; i++ {
				dot += v[i] * r.data[i*n+j]
			}
			f := 2 * dot / vnorm2
			for i := k; i < m; i++ {
				r.data[i*n+j] -= f * v[i]
			}
		}
		// ... and accumulate Q = Q Hᵀ = Q H.
		for i := 0; i < m; i++ {
			var dot float64
			for j := k; j < m; j++ {
				dot += q.data[i*m+j] * v[j]
			}
			f := 2 * dot / vnorm2
			for j := k; j < m; j++ {
				q.data[i*m+j] -= f * v[j]
			}
		}
	}
	// Zero out the strictly-lower part of R to kill round-off residue.
	for i := 1; i < m; i++ {
		for j := 0; j < n && j < i; j++ {
			r.data[i*n+j] = 0
		}
	}
	return &QR{Q: q, R: r}
}

// EigenSym computes the eigendecomposition of a symmetric matrix using the
// cyclic Jacobi method. It returns eigenvalues in descending order and the
// matrix of corresponding eigenvectors (in columns): A = V diag(λ) Vᵀ.
func EigenSym(a *Dense) (values []float64, vectors *Dense, err error) {
	if a.rows != a.cols {
		panic(fmt.Sprintf("matrix: EigenSym of non-square %dx%d", a.rows, a.cols))
	}
	n := a.rows
	s := a.Clone()
	v := Identity(n)
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += s.data[i*n+j] * s.data[i*n+j]
			}
		}
		if off < 1e-22*float64(n*n) {
			return sortEigen(s, v)
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := s.data[p*n+q]
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app := s.data[p*n+p]
				aqq := s.data[q*n+q]
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				sn := t * c
				// Rotate rows/cols p and q of S.
				for k := 0; k < n; k++ {
					skp := s.data[k*n+p]
					skq := s.data[k*n+q]
					s.data[k*n+p] = c*skp - sn*skq
					s.data[k*n+q] = sn*skp + c*skq
				}
				for k := 0; k < n; k++ {
					spk := s.data[p*n+k]
					sqk := s.data[q*n+k]
					s.data[p*n+k] = c*spk - sn*sqk
					s.data[q*n+k] = sn*spk + c*sqk
				}
				// Accumulate eigenvectors.
				for k := 0; k < n; k++ {
					vkp := v.data[k*n+p]
					vkq := v.data[k*n+q]
					v.data[k*n+p] = c*vkp - sn*vkq
					v.data[k*n+q] = sn*vkp + c*vkq
				}
			}
		}
	}
	return nil, nil, fmt.Errorf("eigensym after %d sweeps: %w", 100, ErrNoConvergence)
}

func sortEigen(s, v *Dense) ([]float64, *Dense, error) {
	n := s.rows
	values := make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = s.data[i*n+i]
	}
	// Selection sort descending, permuting eigenvector columns alongside.
	for i := 0; i < n-1; i++ {
		max := i
		for j := i + 1; j < n; j++ {
			if values[j] > values[max] {
				max = j
			}
		}
		if max != i {
			values[i], values[max] = values[max], values[i]
			for k := 0; k < n; k++ {
				v.data[k*n+i], v.data[k*n+max] = v.data[k*n+max], v.data[k*n+i]
			}
		}
	}
	return values, v, nil
}

// SVDResult holds a thin singular value decomposition A = U diag(σ) Vᵀ.
type SVDResult struct {
	U     *Dense    // rows×cols, orthonormal columns
	Sigma []float64 // cols singular values, descending
	V     *Dense    // cols×cols orthogonal
}

// SVD computes a thin SVD of an m-by-n matrix (m >= n) via one-sided Jacobi
// orthogonalization. Intended for the small matrices (d ≤ a few dozen) used
// by the attack models.
func SVD(a *Dense) (*SVDResult, error) {
	m, n := a.rows, a.cols
	if m < n {
		// Work on the transpose and swap U/V.
		res, err := SVD(a.T())
		if err != nil {
			return nil, err
		}
		return &SVDResult{U: res.V, Sigma: res.Sigma, V: res.U}, nil
	}
	u := a.Clone()
	v := Identity(n)
	const maxSweeps = 60
	converged := false
	for sweep := 0; sweep < maxSweeps && !converged; sweep++ {
		converged = true
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				// Compute the 2x2 Gram submatrix for columns p, q.
				var app, aqq, apq float64
				for i := 0; i < m; i++ {
					up := u.data[i*n+p]
					uq := u.data[i*n+q]
					app += up * up
					aqq += uq * uq
					apq += up * uq
				}
				if math.Abs(apq) <= 1e-15*math.Sqrt(app*aqq) {
					continue
				}
				converged = false
				tau := (aqq - app) / (2 * apq)
				t := math.Copysign(1, tau) / (math.Abs(tau) + math.Sqrt(1+tau*tau))
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				for i := 0; i < m; i++ {
					up := u.data[i*n+p]
					uq := u.data[i*n+q]
					u.data[i*n+p] = c*up - s*uq
					u.data[i*n+q] = s*up + c*uq
				}
				for i := 0; i < n; i++ {
					vp := v.data[i*n+p]
					vq := v.data[i*n+q]
					v.data[i*n+p] = c*vp - s*vq
					v.data[i*n+q] = s*vp + c*vq
				}
			}
		}
	}
	if !converged {
		return nil, fmt.Errorf("svd after %d sweeps: %w", maxSweeps, ErrNoConvergence)
	}
	// Column norms are the singular values; normalize U's columns.
	sigma := make([]float64, n)
	for j := 0; j < n; j++ {
		var norm float64
		for i := 0; i < m; i++ {
			norm += u.data[i*n+j] * u.data[i*n+j]
		}
		sigma[j] = math.Sqrt(norm)
		if sigma[j] > 0 {
			for i := 0; i < m; i++ {
				u.data[i*n+j] /= sigma[j]
			}
		}
	}
	// Sort descending by singular value.
	for i := 0; i < n-1; i++ {
		max := i
		for j := i + 1; j < n; j++ {
			if sigma[j] > sigma[max] {
				max = j
			}
		}
		if max != i {
			sigma[i], sigma[max] = sigma[max], sigma[i]
			for k := 0; k < m; k++ {
				u.data[k*n+i], u.data[k*n+max] = u.data[k*n+max], u.data[k*n+i]
			}
			for k := 0; k < n; k++ {
				v.data[k*n+i], v.data[k*n+max] = v.data[k*n+max], v.data[k*n+i]
			}
		}
	}
	return &SVDResult{U: u, Sigma: sigma, V: v}, nil
}

// ApplyGivensLeft multiplies m in place on the left by the Givens rotation
// G(i, j, theta): rows i and j are mixed by the rotation. Used by the
// perturbation optimizer for local refinement of orthogonal matrices.
func (m *Dense) ApplyGivensLeft(i, j int, theta float64) {
	if i == j {
		panic("matrix: ApplyGivensLeft with i == j")
	}
	m.checkIndex(i, 0)
	m.checkIndex(j, 0)
	c, s := math.Cos(theta), math.Sin(theta)
	for k := 0; k < m.cols; k++ {
		a := m.data[i*m.cols+k]
		b := m.data[j*m.cols+k]
		m.data[i*m.cols+k] = c*a - s*b
		m.data[j*m.cols+k] = s*a + c*b
	}
}
