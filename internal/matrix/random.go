package matrix

import "math/rand"

// RandomGaussian returns an r-by-c matrix with i.i.d. N(0, sigma²) entries
// drawn from rng.
func RandomGaussian(rng *rand.Rand, r, c int, sigma float64) *Dense {
	m := New(r, c)
	for i := range m.data {
		m.data[i] = rng.NormFloat64() * sigma
	}
	return m
}

// RandomUniform returns an r-by-c matrix with i.i.d. U[lo, hi) entries.
func RandomUniform(rng *rand.Rand, r, c int, lo, hi float64) *Dense {
	m := New(r, c)
	span := hi - lo
	for i := range m.data {
		m.data[i] = lo + span*rng.Float64()
	}
	return m
}

// RandomOrthogonal returns an n-by-n orthogonal matrix drawn from the Haar
// distribution, produced by QR-decomposing a Gaussian matrix and fixing the
// signs so that R's diagonal is positive (which makes the distribution
// exactly Haar rather than QR-implementation dependent).
func RandomOrthogonal(rng *rand.Rand, n int) *Dense {
	g := RandomGaussian(rng, n, n, 1)
	qr := QRDecompose(g)
	q := qr.Q
	for j := 0; j < n; j++ {
		if qr.R.At(j, j) < 0 {
			for i := 0; i < n; i++ {
				q.Set(i, j, -q.At(i, j))
			}
		}
	}
	return q
}

// RandomRotation returns an n-by-n proper rotation (orthogonal with
// determinant +1). If the Haar draw is a reflection, one column is negated.
func RandomRotation(rng *rand.Rand, n int) *Dense {
	q := RandomOrthogonal(rng, n)
	if q.Det() < 0 {
		for i := 0; i < n; i++ {
			q.Set(i, 0, -q.At(i, 0))
		}
	}
	return q
}
