package matrix

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCholeskyKnown(t *testing.T) {
	a := NewFromRows([][]float64{
		{4, 12, -16},
		{12, 37, -43},
		{-16, -43, 98},
	})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	want := NewFromRows([][]float64{
		{2, 0, 0},
		{6, 1, 0},
		{-8, 5, 3},
	})
	if !l.EqualApprox(want, 1e-10) {
		t.Fatalf("L = %v, want %v", l, want)
	}
	if !l.Mul(l.T()).EqualApprox(a, 1e-10) {
		t.Fatal("L·Lᵀ != A")
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(a); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("err = %v, want ErrNotPositiveDefinite", err)
	}
	zero := New(2, 2)
	if _, err := Cholesky(zero); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("zero err = %v", err)
	}
}

func TestCholeskyNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-square input")
		}
	}()
	_, _ = Cholesky(New(2, 3))
}

func TestPropCholeskyReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		g := genMatrix(rng, n, n)
		// G·Gᵀ + εI is symmetric positive definite.
		a := g.Mul(g.T()).Add(Identity(n).Scale(0.5))
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		// L lower triangular with positive diagonal.
		for i := 0; i < n; i++ {
			if l.At(i, i) <= 0 {
				return false
			}
			for j := i + 1; j < n; j++ {
				if l.At(i, j) != 0 {
					return false
				}
			}
		}
		return l.Mul(l.T()).EqualApprox(a, 1e-8)
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestConditionNumber(t *testing.T) {
	if k, err := ConditionNumber(Identity(4)); err != nil || math.Abs(k-1) > 1e-9 {
		t.Fatalf("κ(I) = %v, %v; want 1", k, err)
	}
	d := Diagonal([]float64{10, 1, 0.1})
	if k, err := ConditionNumber(d); err != nil || math.Abs(k-100) > 1e-6 {
		t.Fatalf("κ(diag) = %v, %v; want 100", k, err)
	}
	sing := NewFromRows([][]float64{{1, 1}, {1, 1}})
	k, err := ConditionNumber(sing)
	if err != nil || !math.IsInf(k, 1) {
		t.Fatalf("κ(singular) = %v, %v; want +Inf", k, err)
	}
}

func TestPropOrthogonalConditionNumberIsOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := RandomOrthogonal(rng, 2+rng.Intn(5))
		k, err := ConditionNumber(q)
		return err == nil && math.Abs(k-1) < 1e-7
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(8))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
