package matrix

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if r, c := m.Dims(); r != 3 || c != 4 {
		t.Fatalf("Dims() = (%d,%d), want (3,4)", r, c)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Errorf("At(%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1, 2) did not panic")
		}
	}()
	New(-1, 2)
}

func TestNewFromSlice(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6}
	m := NewFromSlice(2, 3, data)
	if got := m.At(1, 2); got != 6 {
		t.Fatalf("At(1,2) = %v, want 6", got)
	}
	// Backing copy: mutating the source must not affect the matrix.
	data[0] = 99
	if got := m.At(0, 0); got != 1 {
		t.Fatalf("NewFromSlice aliased its input: At(0,0) = %v, want 1", got)
	}
}

func TestNewFromSliceWrongLenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong data length")
		}
	}()
	NewFromSlice(2, 3, []float64{1, 2})
}

func TestNewFromRows(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if r, c := m.Dims(); r != 3 || c != 2 {
		t.Fatalf("Dims = (%d,%d), want (3,2)", r, c)
	}
	if m.At(2, 1) != 6 {
		t.Fatalf("At(2,1) = %v, want 6", m.At(2, 1))
	}
	empty := NewFromRows(nil)
	if r, c := empty.Dims(); r != 0 || c != 0 {
		t.Fatalf("empty Dims = (%d,%d), want (0,0)", r, c)
	}
}

func TestNewFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged rows")
		}
	}()
	NewFromRows([][]float64{{1, 2}, {3}})
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Errorf("I(%d,%d) = %v, want %v", i, j, id.At(i, j), want)
			}
		}
	}
}

func TestDiagonal(t *testing.T) {
	d := Diagonal([]float64{2, 3})
	want := NewFromRows([][]float64{{2, 0}, {0, 3}})
	if !d.Equal(want) {
		t.Fatalf("Diagonal = %v, want %v", d, want)
	}
}

func TestRowColAccessors(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	row := m.Row(1)
	if row[0] != 4 || row[2] != 6 {
		t.Fatalf("Row(1) = %v", row)
	}
	row[0] = 100 // must be a copy
	if m.At(1, 0) != 4 {
		t.Fatal("Row returned aliased data")
	}
	col := m.Col(2)
	if col[0] != 3 || col[1] != 6 {
		t.Fatalf("Col(2) = %v", col)
	}
	m.SetRow(0, []float64{7, 8, 9})
	if m.At(0, 1) != 8 {
		t.Fatalf("SetRow failed: %v", m)
	}
	m.SetCol(0, []float64{10, 11})
	if m.At(1, 0) != 11 {
		t.Fatalf("SetCol failed: %v", m)
	}
}

func TestAddSubScale(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b := NewFromRows([][]float64{{5, 6}, {7, 8}})
	if got, want := a.Add(b), NewFromRows([][]float64{{6, 8}, {10, 12}}); !got.Equal(want) {
		t.Errorf("Add = %v, want %v", got, want)
	}
	if got, want := b.Sub(a), NewFromRows([][]float64{{4, 4}, {4, 4}}); !got.Equal(want) {
		t.Errorf("Sub = %v, want %v", got, want)
	}
	if got, want := a.Scale(2), NewFromRows([][]float64{{2, 4}, {6, 8}}); !got.Equal(want) {
		t.Errorf("Scale = %v, want %v", got, want)
	}
	if got, want := a.AddScaled(10, b), NewFromRows([][]float64{{51, 62}, {73, 84}}); !got.Equal(want) {
		t.Errorf("AddScaled = %v, want %v", got, want)
	}
	if got, want := a.Hadamard(b), NewFromRows([][]float64{{5, 12}, {21, 32}}); !got.Equal(want) {
		t.Errorf("Hadamard = %v, want %v", got, want)
	}
}

func TestAddShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for shape mismatch")
		}
	}()
	New(2, 2).Add(New(2, 3))
}

func TestMul(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	b := NewFromRows([][]float64{{7, 8}, {9, 10}, {11, 12}})
	got := a.Mul(b)
	want := NewFromRows([][]float64{{58, 64}, {139, 154}})
	if !got.Equal(want) {
		t.Fatalf("Mul = %v, want %v", got, want)
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := RandomGaussian(rng, 5, 5, 1)
	if !a.Mul(Identity(5)).EqualApprox(a, 1e-14) {
		t.Fatal("A*I != A")
	}
	if !Identity(5).Mul(a).EqualApprox(a, 1e-14) {
		t.Fatal("I*A != A")
	}
}

func TestMulVec(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	got := a.MulVec([]float64{5, 6})
	if got[0] != 17 || got[1] != 39 {
		t.Fatalf("MulVec = %v, want [17 39]", got)
	}
}

func TestTranspose(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got := a.Transpose()
	want := NewFromRows([][]float64{{1, 4}, {2, 5}, {3, 6}})
	if !got.Equal(want) {
		t.Fatalf("Transpose = %v, want %v", got, want)
	}
	if !a.T().T().Equal(a) {
		t.Fatal("double transpose is not identity")
	}
}

func TestTraceNorms(t *testing.T) {
	a := NewFromRows([][]float64{{3, -4}, {0, 5}})
	if a.Trace() != 8 {
		t.Fatalf("Trace = %v, want 8", a.Trace())
	}
	if got := a.FrobeniusNorm(); math.Abs(got-math.Sqrt(50)) > 1e-12 {
		t.Fatalf("FrobeniusNorm = %v, want sqrt(50)", got)
	}
	if a.MaxAbs() != 5 {
		t.Fatalf("MaxAbs = %v, want 5", a.MaxAbs())
	}
}

func TestSliceAugmentStack(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	s := a.Slice(1, 3, 0, 2)
	want := NewFromRows([][]float64{{4, 5}, {7, 8}})
	if !s.Equal(want) {
		t.Fatalf("Slice = %v, want %v", s, want)
	}
	aug := want.Augment(NewFromRows([][]float64{{1}, {2}}))
	if aug.Cols() != 3 || aug.At(1, 2) != 2 {
		t.Fatalf("Augment = %v", aug)
	}
	st := want.Stack(NewFromRows([][]float64{{0, 0}}))
	if st.Rows() != 3 || st.At(2, 0) != 0 {
		t.Fatalf("Stack = %v", st)
	}
}

func TestInverse(t *testing.T) {
	a := NewFromRows([][]float64{{4, 7}, {2, 6}})
	inv, err := a.Inverse()
	if err != nil {
		t.Fatalf("Inverse: %v", err)
	}
	want := NewFromRows([][]float64{{0.6, -0.7}, {-0.2, 0.4}})
	if !inv.EqualApprox(want, 1e-12) {
		t.Fatalf("Inverse = %v, want %v", inv, want)
	}
	if !a.Mul(inv).EqualApprox(Identity(2), 1e-12) {
		t.Fatal("A * A⁻¹ != I")
	}
}

func TestInverseSingular(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := a.Inverse(); !errors.Is(err, ErrSingular) {
		t.Fatalf("Inverse(singular) err = %v, want ErrSingular", err)
	}
}

func TestDet(t *testing.T) {
	tests := []struct {
		name string
		m    *Dense
		want float64
	}{
		{"identity", Identity(3), 1},
		{"2x2", NewFromRows([][]float64{{1, 2}, {3, 4}}), -2},
		{"singular", NewFromRows([][]float64{{1, 2}, {2, 4}}), 0},
		{"3x3", NewFromRows([][]float64{{6, 1, 1}, {4, -2, 5}, {2, 8, 7}}), -306},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.m.Det(); math.Abs(got-tt.want) > 1e-9 {
				t.Errorf("Det = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSolve(t *testing.T) {
	a := NewFromRows([][]float64{{3, 2, -1}, {2, -2, 4}, {-1, 0.5, -1}})
	b := ColumnVector([]float64{1, -2, 0})
	x, err := a.Solve(b)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	want := ColumnVector([]float64{1, -2, -2})
	if !x.EqualApprox(want, 1e-10) {
		t.Fatalf("Solve = %v, want %v", x, want)
	}
}

func TestLUDet(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := RandomGaussian(rng, 6, 6, 1)
	f, err := LUDecompose(a)
	if err != nil {
		t.Fatalf("LUDecompose: %v", err)
	}
	// Verify PA = LU by solving A x = b and checking the residual.
	b := RandomGaussian(rng, 6, 1, 1)
	x, err := f.Solve(b)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if resid := a.Mul(x).Sub(b).MaxAbs(); resid > 1e-10 {
		t.Fatalf("residual %v too large", resid)
	}
}

func TestQRDecompose(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, dims := range [][2]int{{4, 4}, {6, 3}, {8, 8}} {
		a := RandomGaussian(rng, dims[0], dims[1], 1)
		qr := QRDecompose(a)
		if !qr.Q.IsOrthogonal(1e-10) {
			t.Errorf("%v: Q not orthogonal", dims)
		}
		if !qr.Q.Mul(qr.R).EqualApprox(a, 1e-10) {
			t.Errorf("%v: QR != A", dims)
		}
		// R upper triangular.
		for i := 0; i < qr.R.Rows(); i++ {
			for j := 0; j < qr.R.Cols() && j < i; j++ {
				if qr.R.At(i, j) != 0 {
					t.Errorf("%v: R(%d,%d) = %v, want 0", dims, i, j, qr.R.At(i, j))
				}
			}
		}
	}
}

func TestEigenSym(t *testing.T) {
	// Known symmetric matrix: eigenvalues of {{2,1},{1,2}} are 3 and 1.
	a := NewFromRows([][]float64{{2, 1}, {1, 2}})
	vals, vecs, err := EigenSym(a)
	if err != nil {
		t.Fatalf("EigenSym: %v", err)
	}
	if math.Abs(vals[0]-3) > 1e-10 || math.Abs(vals[1]-1) > 1e-10 {
		t.Fatalf("eigenvalues = %v, want [3 1]", vals)
	}
	// Reconstruct A = V diag(λ) Vᵀ.
	recon := vecs.Mul(Diagonal(vals)).Mul(vecs.T())
	if !recon.EqualApprox(a, 1e-10) {
		t.Fatalf("V Λ Vᵀ = %v, want %v", recon, a)
	}
}

func TestEigenSymRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := RandomGaussian(rng, 7, 7, 1)
	a := g.Mul(g.T()) // symmetric PSD
	vals, vecs, err := EigenSym(a)
	if err != nil {
		t.Fatalf("EigenSym: %v", err)
	}
	for i := 1; i < len(vals); i++ {
		if vals[i] > vals[i-1]+1e-12 {
			t.Fatalf("eigenvalues not descending: %v", vals)
		}
	}
	if !vecs.IsOrthogonal(1e-8) {
		t.Fatal("eigenvectors not orthogonal")
	}
	if !vecs.Mul(Diagonal(vals)).Mul(vecs.T()).EqualApprox(a, 1e-8) {
		t.Fatal("eigendecomposition does not reconstruct A")
	}
}

func TestSVD(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, dims := range [][2]int{{5, 3}, {4, 4}, {3, 5}} {
		a := RandomGaussian(rng, dims[0], dims[1], 1)
		res, err := SVD(a)
		if err != nil {
			t.Fatalf("%v: SVD: %v", dims, err)
		}
		for i := 1; i < len(res.Sigma); i++ {
			if res.Sigma[i] > res.Sigma[i-1]+1e-12 {
				t.Errorf("%v: singular values not sorted: %v", dims, res.Sigma)
			}
			if res.Sigma[i] < 0 {
				t.Errorf("%v: negative singular value %v", dims, res.Sigma[i])
			}
		}
		recon := res.U.Mul(Diagonal(res.Sigma)).Mul(res.V.T())
		if !recon.EqualApprox(a, 1e-9) {
			t.Errorf("%v: U Σ Vᵀ does not reconstruct A", dims)
		}
	}
}

func TestRandomOrthogonal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{2, 5, 16} {
		q := RandomOrthogonal(rng, n)
		if !q.IsOrthogonal(1e-10) {
			t.Errorf("n=%d: not orthogonal", n)
		}
		if d := math.Abs(math.Abs(q.Det()) - 1); d > 1e-8 {
			t.Errorf("n=%d: |det| = %v, want 1", n, math.Abs(q.Det()))
		}
	}
}

func TestRandomRotationProper(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 20; i++ {
		r := RandomRotation(rng, 4)
		if r.Det() < 0 {
			t.Fatalf("iteration %d: rotation has negative determinant", i)
		}
		if !r.IsOrthogonal(1e-10) {
			t.Fatalf("iteration %d: not orthogonal", i)
		}
	}
}

func TestApplyGivensLeftPreservesOrthogonality(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	q := RandomOrthogonal(rng, 5)
	q.ApplyGivensLeft(1, 3, 0.7)
	if !q.IsOrthogonal(1e-10) {
		t.Fatal("Givens rotation broke orthogonality")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	a := RandomGaussian(rng, 4, 7, 3)
	buf, err := a.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	var b Dense
	if err := b.UnmarshalBinary(buf); err != nil {
		t.Fatalf("UnmarshalBinary: %v", err)
	}
	if !a.Equal(&b) {
		t.Fatal("round trip changed the matrix")
	}
}

func TestUnmarshalBad(t *testing.T) {
	tests := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short", []byte{1, 2, 3}},
		{"bad magic", make([]byte, 16)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var m Dense
			if err := m.UnmarshalBinary(tt.data); !errors.Is(err, ErrBadEncoding) {
				t.Errorf("err = %v, want ErrBadEncoding", err)
			}
		})
	}
}

func TestUnmarshalTruncatedPayload(t *testing.T) {
	a := Identity(3)
	buf, _ := a.MarshalBinary()
	var m Dense
	if err := m.UnmarshalBinary(buf[:len(buf)-5]); !errors.Is(err, ErrBadEncoding) {
		t.Fatalf("err = %v, want ErrBadEncoding", err)
	}
}

func TestStringFormat(t *testing.T) {
	s := NewFromRows([][]float64{{1, 2}}).String()
	if s == "" {
		t.Fatal("String returned empty")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := Identity(2)
	b := a.Clone()
	b.Set(0, 0, 9)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone aliased storage")
	}
}

func TestRawDataCopy(t *testing.T) {
	a := Identity(2)
	d := a.RawData()
	d[0] = 42
	if a.At(0, 0) != 1 {
		t.Fatal("RawData aliased storage")
	}
}
