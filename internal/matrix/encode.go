package matrix

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// wireMagic guards against decoding garbage as a matrix.
const wireMagic uint32 = 0x5341504d // "SAPM"

var (
	// ErrBadEncoding is returned when decoding malformed matrix bytes.
	ErrBadEncoding = errors.New("matrix: bad encoding")
)

// MarshalBinary implements encoding.BinaryMarshaler. Layout: magic, rows,
// cols (uint32 big endian), then rows*cols float64 bits.
func (m *Dense) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 12+8*len(m.data))
	binary.BigEndian.PutUint32(buf[0:4], wireMagic)
	binary.BigEndian.PutUint32(buf[4:8], uint32(m.rows))
	binary.BigEndian.PutUint32(buf[8:12], uint32(m.cols))
	for i, v := range m.data {
		binary.BigEndian.PutUint64(buf[12+8*i:], math.Float64bits(v))
	}
	return buf, nil
}

// PackFloat32Rows packs a rectangular record set (each row dim wide) into
// little-endian float32 bytes, 4 per value — half the width of float64 and
// well under half its gob footprint. It is the wire form of the protocol
// layer's optional float32 payload mode: precision narrows to float32
// (~7 significant digits), which perturbed mining payloads tolerate by
// construction (the paper's noise floor dwarfs the quantization error).
// Returns the packed bytes and the per-row dimension; an empty or ragged
// (non-rectangular) set returns (nil, 0), letting callers fall back to the
// float64 form and leave shape validation to the receiver.
func PackFloat32Rows(rows [][]float64) ([]byte, int) {
	if len(rows) == 0 {
		return nil, 0
	}
	dim := len(rows[0])
	if dim == 0 {
		return nil, 0
	}
	for _, row := range rows {
		if len(row) != dim {
			return nil, 0
		}
	}
	buf := make([]byte, 4*len(rows)*dim)
	off := 0
	for _, row := range rows {
		for _, v := range row {
			binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(float32(v)))
			off += 4
		}
	}
	return buf, dim
}

// UnpackFloat32Rows is the inverse of PackFloat32Rows: it expands packed
// little-endian float32 bytes into rows of dim float64 values each. All rows
// share one flat backing allocation. It validates the byte length against
// dim and rejects ragged or torn encodings.
func UnpackFloat32Rows(data []byte, dim int) ([][]float64, error) {
	if len(data) == 0 && dim == 0 {
		return nil, nil
	}
	if dim <= 0 {
		return nil, fmt.Errorf("%w: float32 rows with dimension %d", ErrBadEncoding, dim)
	}
	if len(data)%4 != 0 {
		return nil, fmt.Errorf("%w: float32 payload of %d bytes is torn", ErrBadEncoding, len(data))
	}
	total := len(data) / 4
	if total%dim != 0 {
		return nil, fmt.Errorf("%w: %d float32 values do not divide into rows of %d", ErrBadEncoding, total, dim)
	}
	n := total / dim
	flat := make([]float64, total)
	for i := range flat {
		flat[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(data[4*i:])))
	}
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = flat[i*dim : (i+1)*dim : (i+1)*dim]
	}
	return rows, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *Dense) UnmarshalBinary(data []byte) error {
	if len(data) < 12 {
		return fmt.Errorf("%w: %d bytes is too short", ErrBadEncoding, len(data))
	}
	if binary.BigEndian.Uint32(data[0:4]) != wireMagic {
		return fmt.Errorf("%w: bad magic", ErrBadEncoding)
	}
	r := int(binary.BigEndian.Uint32(data[4:8]))
	c := int(binary.BigEndian.Uint32(data[8:12]))
	if r < 0 || c < 0 || r*c > (len(data)-12)/8 {
		return fmt.Errorf("%w: declared %dx%d exceeds payload", ErrBadEncoding, r, c)
	}
	if len(data) != 12+8*r*c {
		return fmt.Errorf("%w: length %d, want %d", ErrBadEncoding, len(data), 12+8*r*c)
	}
	m.rows, m.cols = r, c
	m.data = make([]float64, r*c)
	for i := range m.data {
		m.data[i] = math.Float64frombits(binary.BigEndian.Uint64(data[12+8*i:]))
	}
	return nil
}
