package matrix

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// wireMagic guards against decoding garbage as a matrix.
const wireMagic uint32 = 0x5341504d // "SAPM"

var (
	// ErrBadEncoding is returned when decoding malformed matrix bytes.
	ErrBadEncoding = errors.New("matrix: bad encoding")
)

// MarshalBinary implements encoding.BinaryMarshaler. Layout: magic, rows,
// cols (uint32 big endian), then rows*cols float64 bits.
func (m *Dense) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 12+8*len(m.data))
	binary.BigEndian.PutUint32(buf[0:4], wireMagic)
	binary.BigEndian.PutUint32(buf[4:8], uint32(m.rows))
	binary.BigEndian.PutUint32(buf[8:12], uint32(m.cols))
	for i, v := range m.data {
		binary.BigEndian.PutUint64(buf[12+8*i:], math.Float64bits(v))
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *Dense) UnmarshalBinary(data []byte) error {
	if len(data) < 12 {
		return fmt.Errorf("%w: %d bytes is too short", ErrBadEncoding, len(data))
	}
	if binary.BigEndian.Uint32(data[0:4]) != wireMagic {
		return fmt.Errorf("%w: bad magic", ErrBadEncoding)
	}
	r := int(binary.BigEndian.Uint32(data[4:8]))
	c := int(binary.BigEndian.Uint32(data[8:12]))
	if r < 0 || c < 0 || r*c > (len(data)-12)/8 {
		return fmt.Errorf("%w: declared %dx%d exceeds payload", ErrBadEncoding, r, c)
	}
	if len(data) != 12+8*r*c {
		return fmt.Errorf("%w: length %d, want %d", ErrBadEncoding, len(data), 12+8*r*c)
	}
	m.rows, m.cols = r, c
	m.data = make([]float64, r*c)
	for i := range m.data {
		m.data[i] = math.Float64frombits(binary.BigEndian.Uint64(data[12+8*i:]))
	}
	return nil
}
