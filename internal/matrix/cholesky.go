package matrix

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned when Cholesky factorization meets a
// non-positive pivot.
var ErrNotPositiveDefinite = errors.New("matrix: not positive definite")

// Cholesky computes the lower-triangular L with A = L·Lᵀ for a symmetric
// positive-definite matrix. It is used to sample correlated Gaussians from
// a target covariance and to sanity-check covariance estimates.
func Cholesky(a *Dense) (*Dense, error) {
	if a.rows != a.cols {
		panic(fmt.Sprintf("matrix: Cholesky of non-square %dx%d", a.rows, a.cols))
	}
	n := a.rows
	l := New(n, n)
	for j := 0; j < n; j++ {
		var diag float64
		for k := 0; k < j; k++ {
			diag += l.data[j*n+k] * l.data[j*n+k]
		}
		d := a.data[j*n+j] - diag
		if d <= 0 {
			return nil, fmt.Errorf("pivot %d: %w", j, ErrNotPositiveDefinite)
		}
		l.data[j*n+j] = math.Sqrt(d)
		for i := j + 1; i < n; i++ {
			var s float64
			for k := 0; k < j; k++ {
				s += l.data[i*n+k] * l.data[j*n+k]
			}
			l.data[i*n+j] = (a.data[i*n+j] - s) / l.data[j*n+j]
		}
	}
	return l, nil
}

// ConditionNumber estimates the 2-norm condition number κ₂(A) = σ_max/σ_min
// via the Jacobi SVD. Returns +Inf for singular matrices.
func ConditionNumber(a *Dense) (float64, error) {
	res, err := SVD(a)
	if err != nil {
		return 0, err
	}
	min := res.Sigma[len(res.Sigma)-1]
	if min == 0 {
		return math.Inf(1), nil
	}
	return res.Sigma[0] / min, nil
}
