package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// genMatrix draws a small matrix with bounded entries so products stay in
// well-conditioned float range.
func genMatrix(rng *rand.Rand, r, c int) *Dense {
	m := New(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, rng.NormFloat64()*5)
		}
	}
	return m
}

func quickCfg(seed int64) *quick.Config {
	return &quick.Config{
		MaxCount: 50,
		Rand:     rand.New(rand.NewSource(seed)),
	}
}

func TestPropTransposeProduct(t *testing.T) {
	// (AB)ᵀ == Bᵀ Aᵀ
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(6)
		k := 1 + rng.Intn(6)
		c := 1 + rng.Intn(6)
		a := genMatrix(rng, r, k)
		b := genMatrix(rng, k, c)
		return a.Mul(b).T().EqualApprox(b.T().Mul(a.T()), 1e-9)
	}
	if err := quick.Check(f, quickCfg(1)); err != nil {
		t.Error(err)
	}
}

func TestPropMulAssociative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		a := genMatrix(rng, n, n)
		b := genMatrix(rng, n, n)
		c := genMatrix(rng, n, n)
		return a.Mul(b).Mul(c).EqualApprox(a.Mul(b.Mul(c)), 1e-6)
	}
	if err := quick.Check(f, quickCfg(2)); err != nil {
		t.Error(err)
	}
}

func TestPropAddCommutative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(6), 1+rng.Intn(6)
		a := genMatrix(rng, r, c)
		b := genMatrix(rng, r, c)
		return a.Add(b).Equal(b.Add(a))
	}
	if err := quick.Check(f, quickCfg(3)); err != nil {
		t.Error(err)
	}
}

func TestPropDistributive(t *testing.T) {
	// A(B + C) == AB + AC
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, k, c := 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5)
		a := genMatrix(rng, r, k)
		b := genMatrix(rng, k, c)
		cc := genMatrix(rng, k, c)
		return a.Mul(b.Add(cc)).EqualApprox(a.Mul(b).Add(a.Mul(cc)), 1e-8)
	}
	if err := quick.Check(f, quickCfg(4)); err != nil {
		t.Error(err)
	}
}

func TestPropInverseRoundTrip(t *testing.T) {
	// For a well-conditioned random matrix, A * A⁻¹ ≈ I.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		// Diagonally dominant => nonsingular and well conditioned.
		a := genMatrix(rng, n, n)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+30)
		}
		inv, err := a.Inverse()
		if err != nil {
			return false
		}
		return a.Mul(inv).EqualApprox(Identity(n), 1e-8) &&
			inv.Mul(a).EqualApprox(Identity(n), 1e-8)
	}
	if err := quick.Check(f, quickCfg(5)); err != nil {
		t.Error(err)
	}
}

func TestPropDetProduct(t *testing.T) {
	// det(AB) == det(A) det(B)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		a := genMatrix(rng, n, n)
		b := genMatrix(rng, n, n)
		got := a.Mul(b).Det()
		want := a.Det() * b.Det()
		scale := math.Max(1, math.Abs(want))
		return math.Abs(got-want)/scale < 1e-8
	}
	if err := quick.Check(f, quickCfg(6)); err != nil {
		t.Error(err)
	}
}

func TestPropRandomOrthogonalInverseIsTranspose(t *testing.T) {
	// For orthogonal Q: Q⁻¹ == Qᵀ.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		q := RandomOrthogonal(rng, n)
		inv, err := q.Inverse()
		if err != nil {
			return false
		}
		return inv.EqualApprox(q.T(), 1e-9)
	}
	if err := quick.Check(f, quickCfg(7)); err != nil {
		t.Error(err)
	}
}

func TestPropOrthogonalPreservesNorm(t *testing.T) {
	// ‖Qx‖ == ‖x‖ — the core property making geometric perturbation
	// classifier-invariant for distance-based models.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		q := RandomOrthogonal(rng, n)
		x := make([]float64, n)
		var norm float64
		for i := range x {
			x[i] = rng.NormFloat64() * 3
			norm += x[i] * x[i]
		}
		qx := q.MulVec(x)
		var qnorm float64
		for _, v := range qx {
			qnorm += v * v
		}
		return math.Abs(math.Sqrt(norm)-math.Sqrt(qnorm)) < 1e-9
	}
	if err := quick.Check(f, quickCfg(8)); err != nil {
		t.Error(err)
	}
}

func TestPropOrthogonalPreservesPairwiseDistances(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		q := RandomOrthogonal(rng, n)
		x := genMatrix(rng, n, 1)
		y := genMatrix(rng, n, 1)
		dOrig := x.Sub(y).FrobeniusNorm()
		dRot := q.Mul(x).Sub(q.Mul(y)).FrobeniusNorm()
		return math.Abs(dOrig-dRot) < 1e-9
	}
	if err := quick.Check(f, quickCfg(9)); err != nil {
		t.Error(err)
	}
}

func TestPropSVDSingularValuesOfOrthogonal(t *testing.T) {
	// All singular values of an orthogonal matrix are 1.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		q := RandomOrthogonal(rng, n)
		res, err := SVD(q)
		if err != nil {
			return false
		}
		for _, s := range res.Sigma {
			if math.Abs(s-1) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(10)); err != nil {
		t.Error(err)
	}
}

func TestPropEigenTraceEqualsSum(t *testing.T) {
	// trace(A) == Σλ for symmetric A.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		g := genMatrix(rng, n, n)
		a := g.Add(g.T()).Scale(0.5)
		vals, _, err := EigenSym(a)
		if err != nil {
			return false
		}
		var sum float64
		for _, v := range vals {
			sum += v
		}
		return math.Abs(sum-a.Trace()) < 1e-8*math.Max(1, math.Abs(a.Trace()))
	}
	if err := quick.Check(f, quickCfg(11)); err != nil {
		t.Error(err)
	}
}

func TestPropMarshalRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(8), 1+rng.Intn(8)
		a := genMatrix(rng, r, c)
		buf, err := a.MarshalBinary()
		if err != nil {
			return false
		}
		var b Dense
		if err := b.UnmarshalBinary(buf); err != nil {
			return false
		}
		return a.Equal(&b)
	}
	if err := quick.Check(f, quickCfg(12)); err != nil {
		t.Error(err)
	}
}
