// Package matrix provides the dense linear-algebra substrate used by the
// SAP reproduction: matrix arithmetic, LU/QR decompositions, symmetric
// eigendecomposition, a small Jacobi SVD, and Haar-distributed random
// orthogonal matrices — the rotation component R of the paper's §2
// perturbation G(X) = RX + Ψ + Δ is drawn here (QR of a Gaussian matrix
// with sign-corrected diagonal), and the PCA/ICA attacks of §2.2 run on the
// decompositions.
//
// Storage is row-major float64. Following the convention of mainstream Go
// numerics libraries, operations panic on dimension mismatch (a programmer
// error), while operations whose failure is a legitimate runtime condition
// (singular systems, non-convergence) return errors.
package matrix

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ErrSingular is returned when a matrix is numerically singular.
var ErrSingular = errors.New("matrix: singular matrix")

// ErrNoConvergence is returned when an iterative decomposition fails to
// converge within its sweep budget.
var ErrNoConvergence = errors.New("matrix: iteration did not converge")

// Dense is a dense, row-major matrix of float64 values. The zero value is an
// empty 0x0 matrix; use New or one of the constructors for anything else.
type Dense struct {
	rows, cols int
	data       []float64
}

// New returns a zeroed r-by-c matrix.
func New(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("matrix: negative dimension %dx%d", r, c))
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewFromSlice returns an r-by-c matrix backed by a copy of data, which must
// hold exactly r*c values in row-major order.
func NewFromSlice(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("matrix: data length %d does not match %dx%d", len(data), r, c))
	}
	m := New(r, c)
	copy(m.data, data)
	return m
}

// NewFromRows builds a matrix from a slice of equal-length rows.
func NewFromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return New(0, 0)
	}
	c := len(rows[0])
	m := New(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("matrix: ragged rows: row %d has %d cols, want %d", i, len(row), c))
		}
		copy(m.data[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Dense {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Diagonal returns a square matrix with d on its diagonal.
func Diagonal(d []float64) *Dense {
	n := len(d)
	m := New(n, n)
	for i, v := range d {
		m.data[i*n+i] = v
	}
	return m
}

// ColumnVector returns a len(v)-by-1 matrix holding a copy of v.
func ColumnVector(v []float64) *Dense {
	return NewFromSlice(len(v), 1, v)
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// Dims returns (rows, cols).
func (m *Dense) Dims() (r, c int) { return m.rows, m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.checkIndex(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.checkIndex(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Dense) checkIndex(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Row returns a copy of row i.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("matrix: row %d out of range %d", i, m.rows))
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: col %d out of range %d", j, m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// Columns returns every column as its own slice — the bulk form of calling
// Col(j) for each j. All column slices share one flat backing allocation, and
// the matrix data is traversed once in row-major (sequential) order with
// strided writes, instead of cols× strided read passes; callers rebuilding
// record sets from a d×N feature matrix get O(1) allocations instead of one
// per record. The columns are copies; mutating them leaves m untouched.
func (m *Dense) Columns() [][]float64 {
	out := make([][]float64, m.cols)
	flat := make([]float64, m.rows*m.cols)
	for j := range out {
		out[j] = flat[j*m.rows : (j+1)*m.rows : (j+1)*m.rows]
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			out[j][i] = v
		}
	}
	return out
}

// SetRow copies v into row i.
func (m *Dense) SetRow(i int, v []float64) {
	if len(v) != m.cols {
		panic(fmt.Sprintf("matrix: SetRow length %d, want %d", len(v), m.cols))
	}
	copy(m.data[i*m.cols:(i+1)*m.cols], v)
}

// SetCol copies v into column j.
func (m *Dense) SetCol(j int, v []float64) {
	if len(v) != m.rows {
		panic(fmt.Sprintf("matrix: SetCol length %d, want %d", len(v), m.rows))
	}
	for i := 0; i < m.rows; i++ {
		m.data[i*m.cols+j] = v[i]
	}
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := New(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// RawData returns a copy of the underlying row-major data.
func (m *Dense) RawData() []float64 {
	out := make([]float64, len(m.data))
	copy(out, m.data)
	return out
}

// Equal reports exact element-wise equality of shape and values.
func (m *Dense) Equal(n *Dense) bool {
	if m.rows != n.rows || m.cols != n.cols {
		return false
	}
	for i, v := range m.data {
		if v != n.data[i] {
			return false
		}
	}
	return true
}

// EqualApprox reports element-wise equality within absolute tolerance eps.
func (m *Dense) EqualApprox(n *Dense, eps float64) bool {
	if m.rows != n.rows || m.cols != n.cols {
		return false
	}
	for i, v := range m.data {
		if math.Abs(v-n.data[i]) > eps {
			return false
		}
	}
	return true
}

// Add returns m + n.
func (m *Dense) Add(n *Dense) *Dense {
	m.checkSameShape(n, "Add")
	out := m.Clone()
	for i, v := range n.data {
		out.data[i] += v
	}
	return out
}

// Sub returns m - n.
func (m *Dense) Sub(n *Dense) *Dense {
	m.checkSameShape(n, "Sub")
	out := m.Clone()
	for i, v := range n.data {
		out.data[i] -= v
	}
	return out
}

// Scale returns a*m.
func (m *Dense) Scale(a float64) *Dense {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= a
	}
	return out
}

// AddScaled returns m + a*n.
func (m *Dense) AddScaled(a float64, n *Dense) *Dense {
	m.checkSameShape(n, "AddScaled")
	out := m.Clone()
	for i, v := range n.data {
		out.data[i] += a * v
	}
	return out
}

// Hadamard returns the element-wise product of m and n.
func (m *Dense) Hadamard(n *Dense) *Dense {
	m.checkSameShape(n, "Hadamard")
	out := m.Clone()
	for i, v := range n.data {
		out.data[i] *= v
	}
	return out
}

func (m *Dense) checkSameShape(n *Dense, op string) {
	if m.rows != n.rows || m.cols != n.cols {
		panic(fmt.Sprintf("matrix: %s shape mismatch %dx%d vs %dx%d", op, m.rows, m.cols, n.rows, n.cols))
	}
}

// Mul returns the matrix product m*n.
func (m *Dense) Mul(n *Dense) *Dense {
	if m.cols != n.rows {
		panic(fmt.Sprintf("matrix: Mul shape mismatch %dx%d * %dx%d", m.rows, m.cols, n.rows, n.cols))
	}
	out := New(m.rows, n.cols)
	// ikj loop order: stride-1 access on both n and out.
	for i := 0; i < m.rows; i++ {
		mrow := m.data[i*m.cols : (i+1)*m.cols]
		orow := out.data[i*n.cols : (i+1)*n.cols]
		for k, mv := range mrow {
			if mv == 0 {
				continue
			}
			nrow := n.data[k*n.cols : (k+1)*n.cols]
			for j, nv := range nrow {
				orow[j] += mv * nv
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m*v.
func (m *Dense) MulVec(v []float64) []float64 {
	if m.cols != len(v) {
		panic(fmt.Sprintf("matrix: MulVec shape mismatch %dx%d * %d", m.rows, m.cols, len(v)))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, rv := range row {
			s += rv * v[j]
		}
		out[i] = s
	}
	return out
}

// Transpose returns mᵀ.
func (m *Dense) Transpose() *Dense {
	out := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*m.rows+i] = m.data[i*m.cols+j]
		}
	}
	return out
}

// T is shorthand for Transpose.
func (m *Dense) T() *Dense { return m.Transpose() }

// Trace returns the sum of diagonal elements of a square matrix.
func (m *Dense) Trace() float64 {
	if m.rows != m.cols {
		panic(fmt.Sprintf("matrix: Trace of non-square %dx%d", m.rows, m.cols))
	}
	var t float64
	for i := 0; i < m.rows; i++ {
		t += m.data[i*m.cols+i]
	}
	return t
}

// FrobeniusNorm returns sqrt(sum of squared elements).
func (m *Dense) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute element value (0 for empty matrices).
func (m *Dense) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// IsOrthogonal reports whether mᵀm ≈ I within tolerance eps.
func (m *Dense) IsOrthogonal(eps float64) bool {
	if m.rows != m.cols {
		return false
	}
	return m.T().Mul(m).EqualApprox(Identity(m.rows), eps)
}

// Slice returns a copy of the submatrix rows [r0,r1), columns [c0,c1).
func (m *Dense) Slice(r0, r1, c0, c1 int) *Dense {
	if r0 < 0 || r1 > m.rows || c0 < 0 || c1 > m.cols || r0 > r1 || c0 > c1 {
		panic(fmt.Sprintf("matrix: Slice [%d:%d,%d:%d] out of range %dx%d", r0, r1, c0, c1, m.rows, m.cols))
	}
	out := New(r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		copy(out.data[(i-r0)*out.cols:(i-r0+1)*out.cols], m.data[i*m.cols+c0:i*m.cols+c1])
	}
	return out
}

// Augment returns the horizontal concatenation [m | n].
func (m *Dense) Augment(n *Dense) *Dense {
	if m.rows != n.rows {
		panic(fmt.Sprintf("matrix: Augment row mismatch %d vs %d", m.rows, n.rows))
	}
	out := New(m.rows, m.cols+n.cols)
	for i := 0; i < m.rows; i++ {
		copy(out.data[i*out.cols:], m.data[i*m.cols:(i+1)*m.cols])
		copy(out.data[i*out.cols+m.cols:], n.data[i*n.cols:(i+1)*n.cols])
	}
	return out
}

// Stack returns the vertical concatenation of m on top of n.
func (m *Dense) Stack(n *Dense) *Dense {
	if m.cols != n.cols {
		panic(fmt.Sprintf("matrix: Stack col mismatch %d vs %d", m.cols, n.cols))
	}
	out := New(m.rows+n.rows, m.cols)
	copy(out.data, m.data)
	copy(out.data[m.rows*m.cols:], n.data)
	return out
}

// String renders the matrix for debugging, one row per line.
func (m *Dense) String() string {
	var b strings.Builder
	b.WriteString(strconv.Itoa(m.rows))
	b.WriteByte('x')
	b.WriteString(strconv.Itoa(m.cols))
	b.WriteByte('\n')
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(strconv.FormatFloat(m.data[i*m.cols+j], 'g', 6, 64))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
