package matrix

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// TestColumnsMatchesCol pins the bulk extractor against the per-column
// reference on a non-square matrix, and checks the returned slices are
// copies (mutating them must not write through to the matrix).
func TestColumnsMatchesCol(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := New(5, 7)
	for i := 0; i < 5; i++ {
		for j := 0; j < 7; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	cols := m.Columns()
	if len(cols) != 7 {
		t.Fatalf("got %d columns, want 7", len(cols))
	}
	for j, col := range cols {
		want := m.Col(j)
		if len(col) != len(want) {
			t.Fatalf("column %d has %d entries, want %d", j, len(col), len(want))
		}
		for i, v := range col {
			if v != want[i] {
				t.Fatalf("column %d entry %d = %v, want %v", j, i, v, want[i])
			}
		}
	}
	cols[0][0] = 999
	if m.At(0, 0) == 999 {
		t.Fatal("mutating an extracted column wrote through to the matrix")
	}
	// The shared backing is capped per column: appending to one column must
	// not clobber its neighbor.
	grown := append(cols[1], -1)
	_ = grown
	if cols[2][0] == -1 {
		t.Fatal("appending to one extracted column clobbered the next")
	}
}

// TestPackFloat32RowsRoundTrip checks pack→unpack preserves every value to
// exactly its float32 rounding, across magnitudes and signs.
func TestPackFloat32RowsRoundTrip(t *testing.T) {
	rows := [][]float64{
		{0, 1, -1, 0.1234567890123},
		{1e-38, -1e38, math.Pi, -math.E},
		{1.5, -2.25, 3e7, 1.0 / 3.0},
	}
	packed, dim := PackFloat32Rows(rows)
	if dim != 4 {
		t.Fatalf("dim = %d, want 4", dim)
	}
	if len(packed) != 4*3*4 {
		t.Fatalf("packed %d bytes, want %d", len(packed), 4*3*4)
	}
	back, err := UnpackFloat32Rows(packed, dim)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range rows {
		for j, v := range row {
			if want := float64(float32(v)); back[i][j] != want {
				t.Fatalf("value (%d,%d): %v unpacked to %v, want float32 rounding %v",
					i, j, v, back[i][j], want)
			}
		}
	}
}

// TestPackFloat32RowsFallbacks pins the (nil, 0) fallback contract: empty,
// zero-dimension and ragged inputs refuse to pack, so frame encoders fall
// back to the float64 form instead of panicking or sending torn payloads.
func TestPackFloat32RowsFallbacks(t *testing.T) {
	cases := map[string][][]float64{
		"empty":    {},
		"zero-dim": {{}, {}},
		"ragged":   {{1, 2}, {3}},
	}
	for name, rows := range cases {
		if b, dim := PackFloat32Rows(rows); b != nil || dim != 0 {
			t.Fatalf("%s input packed to (%d bytes, dim %d), want (nil, 0)", name, len(b), dim)
		}
	}
}

// TestUnpackFloat32RowsRejects covers the decoder's validation: torn byte
// counts, non-dividing dimensions and nonsense dims are typed errors.
func TestUnpackFloat32RowsRejects(t *testing.T) {
	cases := []struct {
		name string
		data []byte
		dim  int
	}{
		{"torn", make([]byte, 7), 1},
		{"non-dividing", make([]byte, 12), 2},
		{"zero-dim", make([]byte, 8), 0},
		{"negative-dim", make([]byte, 8), -3},
	}
	for _, tc := range cases {
		if _, err := UnpackFloat32Rows(tc.data, tc.dim); !errors.Is(err, ErrBadEncoding) {
			t.Fatalf("%s: err = %v, want ErrBadEncoding", tc.name, err)
		}
	}
	if rows, err := UnpackFloat32Rows(nil, 0); err != nil || rows != nil {
		t.Fatalf("empty payload at dim 0 = (%v, %v), want (nil, nil)", rows, err)
	}
}
