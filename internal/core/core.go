// Package core composes the paper's primary contribution — space adaptation
// — into one pipeline: k providers' local datasets go in; each provider
// optimizes its own geometric perturbation against the attack suite; the
// Space Adaptation Protocol unifies the perturbations at the mining service
// provider; and per-party privacy accounting (ρ_i, b̂_i, satisfaction s_i,
// Eq. 2 risk) comes out alongside the unified training set.
//
// The public facade (package sap at the module root) sits on this package.
package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/perturb"
	"repro/internal/privacy"
	"repro/internal/protocol"
)

// ErrBadPipeline flags invalid pipeline configuration.
var ErrBadPipeline = errors.New("core: bad pipeline configuration")

// PipelineConfig configures one space-adaptation run.
type PipelineConfig struct {
	// Parties are the providers' local (normalized) datasets, k ≥ 3. The
	// last party doubles as the coordinator.
	Parties []*dataset.Dataset
	// Seed drives all randomness deterministically.
	Seed int64
	// NoiseSigma is the common noise component σ (default 0.05).
	NoiseSigma float64
	// Optimizer tunes the per-party perturbation search. Zero values use
	// the privacy package defaults.
	Optimizer privacy.OptimizerConfig
	// MeasureSatisfaction additionally evaluates each party's satisfaction
	// with the unified target and its Eq. 2 risk (costs one optimality
	// estimate plus two attack evaluations per party).
	MeasureSatisfaction bool
	// SatisfactionRounds is the number of optimization rounds used to
	// estimate each party's bound b̂ when MeasureSatisfaction is set
	// (default 10).
	SatisfactionRounds int
	// Audit optionally records the protocol event trail.
	Audit *protocol.AuditLog
}

// PartyReport is the per-provider privacy accounting of one run.
type PartyReport struct {
	// Name is the party's protocol endpoint name.
	Name string
	// LocalGuarantee is ρ_i of the locally optimized perturbation.
	LocalGuarantee float64
	// Bound is the empirical b̂_i (only when MeasureSatisfaction).
	Bound float64
	// UnifiedGuarantee is ρ^G_i of the unified target on this party's data
	// (only when MeasureSatisfaction).
	UnifiedGuarantee float64
	// Satisfaction is s_i = ρ^G_i / ρ_i (only when MeasureSatisfaction).
	Satisfaction float64
	// Risk is the Eq. 2 overall risk (only when MeasureSatisfaction).
	Risk float64
}

// PipelineResult is the outcome of a space-adaptation run.
type PipelineResult struct {
	// Unified is the miner's merged training set in the target space.
	Unified *dataset.Dataset
	// Target is the unified target perturbation G_t.
	Target *perturb.Perturbation
	// Parties holds per-provider accounting, in input order.
	Parties []PartyReport
	// Identifiability is the miner-side source identifiability 1/(k−1).
	Identifiability float64
	// Plan is the coordinator's exchange plan (for audit; never leaves the
	// coordinator in a real deployment).
	Plan *protocol.ExchangePlan
}

// Run executes the full pipeline over an in-memory network.
func Run(ctx context.Context, cfg PipelineConfig) (*PipelineResult, error) {
	k := len(cfg.Parties)
	if k < 3 {
		return nil, fmt.Errorf("%w: need at least 3 parties, got %d", ErrBadPipeline, k)
	}
	sigma := cfg.NoiseSigma
	if sigma <= 0 {
		sigma = 0.05
	}
	optCfg := cfg.Optimizer
	optCfg.NoiseSigma = sigma
	opt := privacy.NewOptimizer(optCfg)

	inputs := make([]protocol.PartyInput, 0, k)
	reports := make([]PartyReport, 0, k)
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i, d := range cfg.Parties {
		if d == nil || d.Len() == 0 {
			return nil, fmt.Errorf("%w: party %d has no data", ErrBadPipeline, i)
		}
		name := fmt.Sprintf("dp%d", i+1)
		p, res, err := opt.Optimize(rng, d.FeaturesT())
		if err != nil {
			return nil, fmt.Errorf("core: optimize party %d: %w", i, err)
		}
		inputs = append(inputs, protocol.PartyInput{Name: name, Data: d, Perturbation: p})
		reports = append(reports, PartyReport{Name: name, LocalGuarantee: res.Guarantee})
	}

	sess, err := protocol.RunLocal(ctx, protocol.SessionConfig{
		Parties: inputs,
		Seed:    cfg.Seed,
		Audit:   cfg.Audit,
	})
	if err != nil {
		return nil, err
	}
	pi, err := protocol.Identifiability(k)
	if err != nil {
		return nil, err
	}

	if cfg.MeasureSatisfaction {
		rounds := cfg.SatisfactionRounds
		if rounds <= 0 {
			rounds = 10
		}
		for i := range reports {
			if err := fillSatisfaction(rng, opt, &reports[i], inputs[i], sess.Target, sigma, rounds, k); err != nil {
				return nil, fmt.Errorf("core: satisfaction for party %d: %w", i, err)
			}
		}
	}

	return &PipelineResult{
		Unified:         sess.Unified,
		Target:          sess.Target,
		Parties:         reports,
		Identifiability: pi,
		Plan:            sess.Plan,
	}, nil
}

// fillSatisfaction measures b̂, ρ^G, s and Eq. 2 risk for one party.
func fillSatisfaction(rng *rand.Rand, opt *privacy.Optimizer, report *PartyReport,
	input protocol.PartyInput, target *perturb.Perturbation, sigma float64, rounds, k int) error {
	x := input.Data.FeaturesT()
	est, err := opt.EstimateOptimality(rng, x, rounds)
	if err != nil {
		return err
	}
	// The miner sees this party's data under G_t with the inherited noise;
	// an orthogonal rotation of i.i.d. Gaussian noise is identically
	// distributed, so (R_t, t_t, σ) is the exact miner view.
	minerView := target.Clone()
	minerView.NoiseSigma = sigma
	unifiedRep, err := opt.Score(rng, x, minerView)
	if err != nil {
		return err
	}
	rho := report.LocalGuarantee
	bound := est.Bound
	if rho > bound {
		bound = rho
	}
	report.Bound = bound
	report.UnifiedGuarantee = unifiedRep.MinGuarantee
	if rho > 0 {
		report.Satisfaction = unifiedRep.MinGuarantee / rho
	}
	riskSat := report.Satisfaction
	if riskSat*rho > bound {
		riskSat = bound / rho
	}
	risk, err := protocol.RiskSAP(k, riskSat, rho, bound)
	if err != nil {
		return err
	}
	report.Risk = risk
	return nil
}

// TransformForInference maps a clear dataset into the target space so it
// can be scored by a model trained on the unified data.
func (r *PipelineResult) TransformForInference(d *dataset.Dataset) (*dataset.Dataset, error) {
	if d == nil || d.Len() == 0 {
		return nil, fmt.Errorf("%w: empty dataset", ErrBadPipeline)
	}
	y, err := r.Target.ApplyNoiseless(d.FeaturesT())
	if err != nil {
		return nil, err
	}
	out := d.Clone()
	if err := out.ReplaceFeaturesT(y); err != nil {
		return nil, err
	}
	return out, nil
}
