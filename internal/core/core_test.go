package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/privacy"
	"repro/internal/protocol"
)

func pipelineParties(t *testing.T, name string, k int, seed int64) []*dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	d, err := dataset.GenerateByName(name, rng)
	if err != nil {
		t.Fatal(err)
	}
	norm, _, err := dataset.Normalize(d)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := dataset.Partition(norm, rng, k, dataset.PartitionUniform)
	if err != nil {
		t.Fatal(err)
	}
	return parts
}

func coreCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func fastOpt() privacy.OptimizerConfig {
	return privacy.OptimizerConfig{Candidates: 2, LocalSteps: 1}
}

func TestRunPipelineBasic(t *testing.T) {
	parties := pipelineParties(t, "Iris", 3, 1)
	res, err := Run(coreCtx(t), PipelineConfig{
		Parties:   parties,
		Seed:      2,
		Optimizer: fastOpt(),
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range parties {
		total += p.Len()
	}
	if res.Unified.Len() != total {
		t.Fatalf("unified %d records, want %d", res.Unified.Len(), total)
	}
	if res.Identifiability != 0.5 {
		t.Fatalf("identifiability %v, want 1/2", res.Identifiability)
	}
	if len(res.Parties) != 3 {
		t.Fatalf("%d party reports, want 3", len(res.Parties))
	}
	for _, pr := range res.Parties {
		if pr.LocalGuarantee <= 0 {
			t.Errorf("%s: guarantee %v", pr.Name, pr.LocalGuarantee)
		}
		// Without MeasureSatisfaction the accounting fields stay zero.
		if pr.Satisfaction != 0 || pr.Risk != 0 {
			t.Errorf("%s: unexpected satisfaction accounting %+v", pr.Name, pr)
		}
	}
	if res.Target.NoiseSigma != 0 {
		t.Fatal("target must carry no noise")
	}
	if res.Plan == nil {
		t.Fatal("missing exchange plan")
	}
}

func TestRunPipelineSatisfaction(t *testing.T) {
	parties := pipelineParties(t, "Iris", 3, 3)
	res, err := Run(coreCtx(t), PipelineConfig{
		Parties:             parties,
		Seed:                4,
		Optimizer:           fastOpt(),
		MeasureSatisfaction: true,
		SatisfactionRounds:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range res.Parties {
		if pr.Bound < pr.LocalGuarantee {
			t.Errorf("%s: bound %v below ρ %v", pr.Name, pr.Bound, pr.LocalGuarantee)
		}
		if pr.Satisfaction <= 0 {
			t.Errorf("%s: satisfaction %v", pr.Name, pr.Satisfaction)
		}
		if pr.Risk < 0 || pr.Risk > 1 {
			t.Errorf("%s: risk %v out of [0,1]", pr.Name, pr.Risk)
		}
		if pr.UnifiedGuarantee <= 0 {
			t.Errorf("%s: unified guarantee %v", pr.Name, pr.UnifiedGuarantee)
		}
	}
}

func TestRunPipelineValidation(t *testing.T) {
	ctx := coreCtx(t)
	parties := pipelineParties(t, "Iris", 3, 5)
	if _, err := Run(ctx, PipelineConfig{Parties: parties[:2]}); !errors.Is(err, ErrBadPipeline) {
		t.Errorf("k=2 err = %v", err)
	}
	bad := append([]*dataset.Dataset(nil), parties...)
	bad[1] = nil
	if _, err := Run(ctx, PipelineConfig{Parties: bad, Optimizer: fastOpt()}); !errors.Is(err, ErrBadPipeline) {
		t.Errorf("nil party err = %v", err)
	}
}

func TestRunPipelineAudit(t *testing.T) {
	parties := pipelineParties(t, "Iris", 4, 6)
	var log protocol.AuditLog
	res, err := Run(coreCtx(t), PipelineConfig{
		Parties:   parties,
		Seed:      7,
		Optimizer: fastOpt(),
		Audit:     &log,
	})
	if err != nil {
		t.Fatal(err)
	}
	coordName := res.Parties[len(res.Parties)-1].Name
	if problems := log.VerifyInvariants(coordName, "miner", 4); len(problems) != 0 {
		t.Fatalf("audit invariants: %v", problems)
	}
}

func TestRunPipelineDeterministic(t *testing.T) {
	run := func() *PipelineResult {
		parties := pipelineParties(t, "Iris", 3, 8)
		res, err := Run(coreCtx(t), PipelineConfig{Parties: parties, Seed: 9, Optimizer: fastOpt()})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !a.Target.Equal(b.Target, 1e-12) {
		t.Fatal("same seed, different targets")
	}
	for i := range a.Parties {
		if a.Parties[i].LocalGuarantee != b.Parties[i].LocalGuarantee {
			t.Fatal("same seed, different guarantees")
		}
	}
}

func TestTransformForInference(t *testing.T) {
	parties := pipelineParties(t, "Iris", 3, 10)
	res, err := Run(coreCtx(t), PipelineConfig{Parties: parties, Seed: 11, Optimizer: fastOpt()})
	if err != nil {
		t.Fatal(err)
	}
	query := parties[0]
	transformed, err := res.TransformForInference(query)
	if err != nil {
		t.Fatal(err)
	}
	// The transformation is exactly G_t (noiseless): verify one record.
	want, err := res.Target.ApplyNoiseless(query.FeaturesT())
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < query.Dim(); j++ {
		if math.Abs(transformed.X[0][j]-want.At(j, 0)) > 1e-12 {
			t.Fatal("transformation does not match G_t")
		}
	}
	if _, err := res.TransformForInference(nil); !errors.Is(err, ErrBadPipeline) {
		t.Fatalf("nil err = %v", err)
	}
}
