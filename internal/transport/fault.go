package transport

import (
	"context"
	"sync"
)

// FaultConn wraps a Conn with deterministic fault injection for robustness
// tests: dropping every Nth outgoing message. The SAP roles must fail with
// clean timeouts — never hangs, panics or partial unifications — when the
// network loses messages.
type FaultConn struct {
	inner Conn

	mu        sync.Mutex
	dropEvery int // drop the Nth, 2Nth, … send; 0 disables
	sends     int
	dropped   int
}

var _ Conn = (*FaultConn)(nil)

// NewFaultConn wraps inner; dropEvery = n drops every nth send (n ≤ 0
// disables dropping).
func NewFaultConn(inner Conn, dropEvery int) *FaultConn {
	return &FaultConn{inner: inner, dropEvery: dropEvery}
}

// Name implements Conn.
func (f *FaultConn) Name() string { return f.inner.Name() }

// Send implements Conn, silently discarding every Nth message.
func (f *FaultConn) Send(ctx context.Context, to string, payload []byte) error {
	f.mu.Lock()
	f.sends++
	drop := f.dropEvery > 0 && f.sends%f.dropEvery == 0
	if drop {
		f.dropped++
	}
	f.mu.Unlock()
	if drop {
		return nil // the message vanishes; the sender sees success
	}
	return f.inner.Send(ctx, to, payload)
}

// Recv implements Conn.
func (f *FaultConn) Recv(ctx context.Context) (Envelope, error) { return f.inner.Recv(ctx) }

// Close implements Conn.
func (f *FaultConn) Close() error { return f.inner.Close() }

// Dropped reports how many sends were discarded.
func (f *FaultConn) Dropped() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped
}
