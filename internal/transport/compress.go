package transport

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sync"
)

// DefaultLevel selects flate.DefaultCompression explicitly. It exists so the
// legal flate.NoCompression level (constant 0, stored/uncompressed blocks)
// stays selectable: a zero level means exactly what compress/flate says it
// means, and callers who want "whatever the library thinks is balanced" say
// so by name.
const DefaultLevel = flate.DefaultCompression

// CompressCodec wraps another Codec with DEFLATE compression applied before
// sealing. Perturbed datasets are dense float64 matrices whose byte-level
// redundancy (shared exponents) compresses usefully, which matters when k
// datasets take an extra provider hop before reaching the miner.
//
// The codec pools its flate writers, readers and decode scratch buffers, so
// steady-state Seal/Open cycles allocate only the returned payloads — a
// flate.Writer alone is ~650 KiB of window state, far too heavy to rebuild
// per frame. A CompressCodec is safe for concurrent use.
type CompressCodec struct {
	inner Codec
	level int

	writers sync.Pool // *flate.Writer, reset per Seal
	readers sync.Pool // io.ReadCloser + flate.Resetter, reset per Open
	scratch sync.Pool // *bytes.Buffer, decode scratch
}

var _ Codec = (*CompressCodec)(nil)

// NewCompressCodec wraps inner (nil means PlainCodec) with the given flate
// level. Every compress/flate level is honored verbatim — including
// flate.NoCompression (0, stored blocks) and flate.HuffmanOnly (-2); use
// DefaultLevel to select flate.DefaultCompression by name.
func NewCompressCodec(inner Codec, level int) (*CompressCodec, error) {
	if inner == nil {
		inner = PlainCodec{}
	}
	if level < flate.HuffmanOnly || level > flate.BestCompression {
		return nil, fmt.Errorf("transport: flate level %d out of range [%d, %d]",
			level, flate.HuffmanOnly, flate.BestCompression)
	}
	return &CompressCodec{inner: inner, level: level}, nil
}

// Seal implements Codec: compress, then delegate to the inner codec.
func (c *CompressCodec) Seal(plaintext []byte) ([]byte, error) {
	var buf bytes.Buffer
	w, _ := c.writers.Get().(*flate.Writer)
	if w == nil {
		var err error
		if w, err = flate.NewWriter(&buf, c.level); err != nil {
			return nil, fmt.Errorf("transport: flate writer: %w", err)
		}
	} else {
		w.Reset(&buf)
	}
	if _, err := w.Write(plaintext); err != nil {
		return nil, fmt.Errorf("transport: compress: %w", err)
	}
	if err := w.Close(); err != nil {
		return nil, fmt.Errorf("transport: compress close: %w", err)
	}
	c.writers.Put(w)
	return c.inner.Seal(buf.Bytes())
}

// Open implements Codec: delegate to the inner codec, then decompress.
func (c *CompressCodec) Open(sealed []byte) ([]byte, error) {
	compressed, err := c.inner.Open(sealed)
	if err != nil {
		return nil, err
	}
	src := bytes.NewReader(compressed)
	r, _ := c.readers.Get().(io.ReadCloser)
	if r == nil {
		r = flate.NewReader(src)
	} else if err := r.(flate.Resetter).Reset(src, nil); err != nil {
		return nil, fmt.Errorf("%w: decompress reset: %v", ErrBadFrame, err)
	}
	buf, _ := c.scratch.Get().(*bytes.Buffer)
	if buf == nil {
		buf = new(bytes.Buffer)
	}
	buf.Reset()
	// Guard decompression with the same frame cap as the wire format so a
	// hostile peer cannot zip-bomb the receiver.
	_, err = io.Copy(buf, io.LimitReader(r, maxFrameSize+1))
	if err != nil {
		c.scratch.Put(buf)
		return nil, fmt.Errorf("%w: decompress: %v", ErrBadFrame, err)
	}
	r.Close()
	c.readers.Put(r)
	if buf.Len() > maxFrameSize {
		c.scratch.Put(buf)
		return nil, fmt.Errorf("%w: decompressed payload exceeds frame cap", ErrFrameTooLarge)
	}
	plain := append([]byte(nil), buf.Bytes()...)
	c.scratch.Put(buf)
	return plain, nil
}
