package transport

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
)

// CompressCodec wraps another Codec with DEFLATE compression applied before
// sealing. Perturbed datasets are dense float64 matrices whose byte-level
// redundancy (shared exponents) compresses usefully, which matters when k
// datasets take an extra provider hop before reaching the miner.
type CompressCodec struct {
	inner Codec
	level int
}

var _ Codec = (*CompressCodec)(nil)

// NewCompressCodec wraps inner (nil means PlainCodec) with the given flate
// level; level 0 selects flate.DefaultCompression.
func NewCompressCodec(inner Codec, level int) (*CompressCodec, error) {
	if inner == nil {
		inner = PlainCodec{}
	}
	if level == 0 {
		level = flate.DefaultCompression
	}
	if level < flate.HuffmanOnly || level > flate.BestCompression {
		return nil, fmt.Errorf("transport: flate level %d out of range", level)
	}
	return &CompressCodec{inner: inner, level: level}, nil
}

// Seal implements Codec: compress, then delegate to the inner codec.
func (c *CompressCodec) Seal(plaintext []byte) ([]byte, error) {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, c.level)
	if err != nil {
		return nil, fmt.Errorf("transport: flate writer: %w", err)
	}
	if _, err := w.Write(plaintext); err != nil {
		return nil, fmt.Errorf("transport: compress: %w", err)
	}
	if err := w.Close(); err != nil {
		return nil, fmt.Errorf("transport: compress close: %w", err)
	}
	return c.inner.Seal(buf.Bytes())
}

// Open implements Codec: delegate to the inner codec, then decompress.
func (c *CompressCodec) Open(sealed []byte) ([]byte, error) {
	compressed, err := c.inner.Open(sealed)
	if err != nil {
		return nil, err
	}
	r := flate.NewReader(bytes.NewReader(compressed))
	defer r.Close()
	// Guard decompression with the same frame cap as the wire format so a
	// hostile peer cannot zip-bomb the receiver.
	plain, err := io.ReadAll(io.LimitReader(r, maxFrameSize+1))
	if err != nil {
		return nil, fmt.Errorf("%w: decompress: %v", ErrBadFrame, err)
	}
	if len(plain) > maxFrameSize {
		return nil, fmt.Errorf("%w: decompressed payload exceeds frame cap", ErrFrameTooLarge)
	}
	return plain, nil
}
