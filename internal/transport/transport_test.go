package transport

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestMemNetworkSendRecv(t *testing.T) {
	ctx := testCtx(t)
	net := NewMemNetwork()
	a, err := net.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "a" {
		t.Fatalf("Name = %q", a.Name())
	}
	if err := a.Send(ctx, "b", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	env, err := b.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if env.From != "a" || string(env.Payload) != "hello" {
		t.Fatalf("env = %+v", env)
	}
}

func TestMemNetworkPayloadCopied(t *testing.T) {
	ctx := testCtx(t)
	net := NewMemNetwork()
	a, _ := net.Endpoint("a")
	b, _ := net.Endpoint("b")
	buf := []byte("mutate-me")
	if err := a.Send(ctx, "b", buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X'
	env, err := b.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if string(env.Payload) != "mutate-me" {
		t.Fatal("payload aliased sender's buffer")
	}
}

func TestMemNetworkUnknownAndDuplicate(t *testing.T) {
	ctx := testCtx(t)
	net := NewMemNetwork()
	a, _ := net.Endpoint("a")
	if err := a.Send(ctx, "ghost", nil); !errors.Is(err, ErrUnknownEndpoint) {
		t.Fatalf("err = %v", err)
	}
	if _, err := net.Endpoint("a"); !errors.Is(err, ErrDuplicateName) {
		t.Fatalf("dup err = %v", err)
	}
}

func TestMemNetworkClose(t *testing.T) {
	ctx := testCtx(t)
	net := NewMemNetwork()
	a, _ := net.Endpoint("a")
	b, _ := net.Endpoint("b")
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(ctx, "b", nil); err == nil {
		t.Fatal("send to closed endpoint succeeded")
	}
	if err := b.Close(); err != nil {
		t.Fatal("double close errored")
	}
	// After close the name is free again.
	if _, err := net.Endpoint("b"); err != nil {
		t.Fatalf("re-register err = %v", err)
	}
	// Recv on a closed endpoint reports ErrClosed.
	a.Close()
	if _, err := a.Recv(ctx); !errors.Is(err, ErrClosed) {
		t.Fatalf("recv err = %v", err)
	}
}

func TestMemNetworkRecvContextCancel(t *testing.T) {
	net := NewMemNetwork()
	a, _ := net.Endpoint("a")
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if _, err := a.Recv(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

func TestMemNetworkConcurrent(t *testing.T) {
	ctx := testCtx(t)
	net := NewMemNetwork()
	recv, _ := net.Endpoint("sink")
	const senders = 8
	const perSender = 20
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			conn, err := net.Endpoint(string(rune('a' + id)))
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < perSender; i++ {
				if err := conn.Send(ctx, "sink", []byte{byte(i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	got := 0
	for got < senders*perSender {
		if _, err := recv.Recv(ctx); err != nil {
			t.Fatal(err)
		}
		got++
	}
	wg.Wait()
}

func TestPlainCodecRoundTrip(t *testing.T) {
	c := PlainCodec{}
	sealed, err := c.Seal([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := c.Open(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if string(plain) != "x" {
		t.Fatal("plain codec mangled data")
	}
}

func TestAESCodecRoundTrip(t *testing.T) {
	c, err := NewAESCodec("secret")
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("the quick brown fox")
	sealed, err := c.Seal(msg)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(sealed, msg) {
		t.Fatal("ciphertext contains plaintext")
	}
	plain, err := c.Open(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, msg) {
		t.Fatal("round trip mangled data")
	}
}

func TestAESCodecRejectsTampering(t *testing.T) {
	c, _ := NewAESCodec("secret")
	sealed, _ := c.Seal([]byte("payload"))
	sealed[len(sealed)-1] ^= 1
	if _, err := c.Open(sealed); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("tampered err = %v", err)
	}
	if _, err := c.Open([]byte{1, 2}); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("short err = %v", err)
	}
}

func TestAESCodecWrongKey(t *testing.T) {
	c1, _ := NewAESCodec("k1")
	c2, _ := NewAESCodec("k2")
	sealed, _ := c1.Seal([]byte("payload"))
	if _, err := c2.Open(sealed); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("wrong-key err = %v", err)
	}
}

func TestTCPNodesEncrypted(t *testing.T) {
	ctx := testCtx(t)
	codec, err := NewAESCodec("session-key")
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewTCPNode("a", "127.0.0.1:0", codec)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCPNode("b", "127.0.0.1:0", codec)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.AddPeer("b", b.Addr())
	b.AddPeer("a", a.Addr())

	if err := a.Send(ctx, "b", []byte("over tcp")); err != nil {
		t.Fatal(err)
	}
	env, err := b.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if env.From != "a" || string(env.Payload) != "over tcp" {
		t.Fatalf("env = %+v", env)
	}
	// And the reverse direction.
	if err := b.Send(ctx, "a", []byte("reply")); err != nil {
		t.Fatal(err)
	}
	env, err = a.Recv(ctx)
	if err != nil || string(env.Payload) != "reply" {
		t.Fatalf("reply env = %+v, err = %v", env, err)
	}
}

func TestTCPUnknownPeer(t *testing.T) {
	ctx := testCtx(t)
	a, err := NewTCPNode("a", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Send(ctx, "ghost", nil); !errors.Is(err, ErrUnknownEndpoint) {
		t.Fatalf("err = %v", err)
	}
}

func TestTCPDropsForeignKeyFrames(t *testing.T) {
	// Frames sealed under a different key are dropped, not delivered.
	ctx := testCtx(t)
	good, _ := NewAESCodec("right")
	bad, _ := NewAESCodec("wrong")
	recv, err := NewTCPNode("recv", "127.0.0.1:0", good)
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	attacker, err := NewTCPNode("attacker", "127.0.0.1:0", bad)
	if err != nil {
		t.Fatal(err)
	}
	defer attacker.Close()
	attacker.AddPeer("recv", recv.Addr())
	friend, err := NewTCPNode("friend", "127.0.0.1:0", good)
	if err != nil {
		t.Fatal(err)
	}
	defer friend.Close()
	friend.AddPeer("recv", recv.Addr())

	if err := attacker.Send(ctx, "recv", []byte("evil")); err != nil {
		t.Fatal(err)
	}
	if err := friend.Send(ctx, "recv", []byte("good")); err != nil {
		t.Fatal(err)
	}
	env, err := recv.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if string(env.Payload) != "good" || env.From != "friend" {
		t.Fatalf("delivered frame = %+v, want the friend's", env)
	}
}

func TestTCPSelfSendLoopsBack(t *testing.T) {
	// SAP's random exchange may assign a provider to itself; the TCP node
	// must deliver self-sends without a dial or a registered self-peer.
	ctx := testCtx(t)
	n, err := NewTCPNode("solo", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.Send(ctx, "solo", []byte("to myself")); err != nil {
		t.Fatal(err)
	}
	env, err := n.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if env.From != "solo" || string(env.Payload) != "to myself" {
		t.Fatalf("env = %+v", env)
	}
}

func TestMemSelfSend(t *testing.T) {
	ctx := testCtx(t)
	net := NewMemNetwork()
	a, _ := net.Endpoint("a")
	if err := a.Send(ctx, "a", []byte("loop")); err != nil {
		t.Fatal(err)
	}
	env, err := a.Recv(ctx)
	if err != nil || string(env.Payload) != "loop" {
		t.Fatalf("env = %+v, err = %v", env, err)
	}
}

func TestTCPCloseIdempotent(t *testing.T) {
	n, err := NewTCPNode("n", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal("double close errored")
	}
	if err := n.Send(context.Background(), "x", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close err = %v", err)
	}
}

func TestFrameSizeLimit(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, make([]byte, maxFrameSize+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized write err = %v", err)
	}
	// A forged oversized header must be rejected on read.
	hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := readFrame(bytes.NewReader(hdr)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized read err = %v", err)
	}
}

func TestSplitSenderMalformed(t *testing.T) {
	if _, _, err := splitSender([]byte{0}); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("short err = %v", err)
	}
	if _, _, err := splitSender([]byte{0, 9, 'a'}); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("bad len err = %v", err)
	}
	from, payload, err := splitSender(joinSender("ab", []byte("xy")))
	if err != nil || from != "ab" || string(payload) != "xy" {
		t.Fatalf("round trip = %q %q %v", from, payload, err)
	}
}
