package transport

import (
	"bytes"
	"compress/flate"
	"errors"
	"math/rand"
	"testing"
)

func TestCompressCodecRoundTrip(t *testing.T) {
	c, err := NewCompressCodec(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	msg := bytes.Repeat([]byte("matrix row "), 200)
	sealed, err := c.Seal(msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sealed) >= len(msg) {
		t.Errorf("redundant payload did not compress: %d vs %d bytes", len(sealed), len(msg))
	}
	plain, err := c.Open(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, msg) {
		t.Fatal("round trip mangled data")
	}
}

func TestCompressCodecOverAES(t *testing.T) {
	aes, err := NewAESCodec("key")
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCompressCodec(aes, flate.BestSpeed)
	if err != nil {
		t.Fatal(err)
	}
	msg := bytes.Repeat([]byte{1, 2, 3, 4}, 500)
	sealed, err := c.Seal(msg)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(sealed, msg[:16]) {
		t.Fatal("sealed frame leaks plaintext")
	}
	plain, err := c.Open(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, msg) {
		t.Fatal("round trip mangled data")
	}
	// Tampering is caught by the AES layer.
	sealed[len(sealed)-1] ^= 1
	if _, err := c.Open(sealed); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("tampered err = %v", err)
	}
}

func TestCompressCodecBadLevel(t *testing.T) {
	if _, err := NewCompressCodec(nil, 42); err == nil {
		t.Fatal("bad level accepted")
	}
}

func TestCompressCodecGarbage(t *testing.T) {
	c, _ := NewCompressCodec(nil, 0)
	if _, err := c.Open([]byte("definitely not deflate")); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("garbage err = %v", err)
	}
}

func TestCompressCodecRandomPayload(t *testing.T) {
	// Incompressible data must still round-trip correctly.
	c, _ := NewCompressCodec(nil, 0)
	rng := rand.New(rand.NewSource(1))
	msg := make([]byte, 4096)
	for i := range msg {
		msg[i] = byte(rng.Intn(256))
	}
	sealed, err := c.Seal(msg)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := c.Open(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, msg) {
		t.Fatal("round trip mangled incompressible data")
	}
}

func TestCompressCodecOnTCP(t *testing.T) {
	// Full stack: flate over AES over TCP frames.
	ctx := testCtx(t)
	aes, _ := NewAESCodec("stacked")
	codec, err := NewCompressCodec(aes, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewTCPNode("a", "127.0.0.1:0", codec)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCPNode("b", "127.0.0.1:0", codec)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.AddPeer("b", b.Addr())

	payload := bytes.Repeat([]byte("0.7071 "), 1000)
	if err := a.Send(ctx, "b", payload); err != nil {
		t.Fatal(err)
	}
	env, err := b.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(env.Payload, payload) {
		t.Fatal("payload mangled over compressed TCP")
	}
}
