package transport

import (
	"bytes"
	"compress/flate"
	"errors"
	"math/rand"
	"testing"
)

func TestCompressCodecRoundTrip(t *testing.T) {
	c, err := NewCompressCodec(nil, DefaultLevel)
	if err != nil {
		t.Fatal(err)
	}
	msg := bytes.Repeat([]byte("matrix row "), 200)
	sealed, err := c.Seal(msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sealed) >= len(msg) {
		t.Errorf("redundant payload did not compress: %d vs %d bytes", len(sealed), len(msg))
	}
	plain, err := c.Open(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, msg) {
		t.Fatal("round trip mangled data")
	}
}

func TestCompressCodecOverAES(t *testing.T) {
	aes, err := NewAESCodec("key")
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCompressCodec(aes, flate.BestSpeed)
	if err != nil {
		t.Fatal(err)
	}
	msg := bytes.Repeat([]byte{1, 2, 3, 4}, 500)
	sealed, err := c.Seal(msg)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(sealed, msg[:16]) {
		t.Fatal("sealed frame leaks plaintext")
	}
	plain, err := c.Open(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, msg) {
		t.Fatal("round trip mangled data")
	}
	// Tampering is caught by the AES layer.
	sealed[len(sealed)-1] ^= 1
	if _, err := c.Open(sealed); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("tampered err = %v", err)
	}
}

func TestCompressCodecBadLevel(t *testing.T) {
	_, err := NewCompressCodec(nil, 42)
	if err == nil {
		t.Fatal("bad level accepted")
	}
	want := "transport: flate level 42 out of range [-2, 9]"
	if err.Error() != want {
		t.Fatalf("error = %q, want %q", err, want)
	}
	if _, err := NewCompressCodec(nil, -3); err == nil {
		t.Fatal("level below HuffmanOnly accepted")
	}
}

func TestCompressCodecHonorsNoCompression(t *testing.T) {
	// flate.NoCompression is the constant 0: it must select stored
	// (uncompressed) DEFLATE blocks, not silently degrade to the default
	// level. Stored blocks never shrink the payload.
	c, err := NewCompressCodec(nil, flate.NoCompression)
	if err != nil {
		t.Fatal(err)
	}
	msg := bytes.Repeat([]byte("matrix row "), 200)
	sealed, err := c.Seal(msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sealed) < len(msg) {
		t.Fatalf("stored mode shrank a redundant payload: %d vs %d bytes — level 0 was not honored", len(sealed), len(msg))
	}
	plain, err := c.Open(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, msg) {
		t.Fatal("round trip mangled data")
	}
}

func TestCompressCodecDefaultLevelSentinel(t *testing.T) {
	if DefaultLevel != flate.DefaultCompression {
		t.Fatalf("DefaultLevel = %d, want flate.DefaultCompression (%d)", DefaultLevel, flate.DefaultCompression)
	}
}

func TestCompressCodecPooledReuse(t *testing.T) {
	// Repeated Seal/Open cycles exercise the pooled flate writer/reader
	// paths (the second iteration onward reuses state via Reset).
	c, err := NewCompressCodec(nil, DefaultLevel)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		msg := bytes.Repeat([]byte{byte('a' + i)}, 512+i)
		sealed, err := c.Seal(msg)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := c.Open(sealed)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(plain, msg) {
			t.Fatalf("iteration %d mangled data", i)
		}
	}
}

func TestCompressCodecGarbage(t *testing.T) {
	c, _ := NewCompressCodec(nil, DefaultLevel)
	if _, err := c.Open([]byte("definitely not deflate")); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("garbage err = %v", err)
	}
}

func TestCompressCodecRandomPayload(t *testing.T) {
	// Incompressible data must still round-trip correctly.
	c, _ := NewCompressCodec(nil, DefaultLevel)
	rng := rand.New(rand.NewSource(1))
	msg := make([]byte, 4096)
	for i := range msg {
		msg[i] = byte(rng.Intn(256))
	}
	sealed, err := c.Seal(msg)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := c.Open(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, msg) {
		t.Fatal("round trip mangled incompressible data")
	}
}

func TestCompressCodecOnTCP(t *testing.T) {
	// Full stack: flate over AES over TCP frames.
	ctx := testCtx(t)
	aes, _ := NewAESCodec("stacked")
	codec, err := NewCompressCodec(aes, DefaultLevel)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewTCPNode("a", "127.0.0.1:0", codec)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCPNode("b", "127.0.0.1:0", codec)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.AddPeer("b", b.Addr())

	payload := bytes.Repeat([]byte("0.7071 "), 1000)
	if err := a.Send(ctx, "b", payload); err != nil {
		t.Fatal(err)
	}
	env, err := b.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(env.Payload, payload) {
		t.Fatal("payload mangled over compressed TCP")
	}
}
