// Package transport moves opaque, framed payloads between named protocol
// endpoints. Two implementations are provided: an in-memory hub for tests,
// benchmarks and single-process simulation, and a TCP transport whose frames
// are sealed with AES-GCM — the paper's §3 assumes "encryption is applied
// before data is transmitted on the network". Everything above this layer
// (SAP protocol rounds, serving traffic, stream ingest) is
// transport-agnostic: a deployment picks its network by handing the facade
// a different Conn.
package transport

import (
	"context"
	"errors"
)

// Errors returned by transports.
var (
	ErrClosed          = errors.New("transport: endpoint closed")
	ErrUnknownEndpoint = errors.New("transport: unknown endpoint")
	ErrDuplicateName   = errors.New("transport: endpoint name already registered")
	ErrFrameTooLarge   = errors.New("transport: frame exceeds size limit")
	ErrBadFrame        = errors.New("transport: malformed frame")
)

// Envelope is one received message.
type Envelope struct {
	From    string
	Payload []byte
}

// Conn is one endpoint's connection to the network.
type Conn interface {
	// Name returns the endpoint's registered name.
	Name() string
	// Send delivers payload to the named endpoint. The payload is copied;
	// the caller may reuse the buffer.
	Send(ctx context.Context, to string, payload []byte) error
	// Recv blocks for the next message, honoring ctx cancellation.
	Recv(ctx context.Context) (Envelope, error)
	// Close releases the endpoint. Subsequent calls are no-ops.
	Close() error
}

// Network hands out named endpoints.
type Network interface {
	// Endpoint registers and returns the endpoint with the given name.
	Endpoint(name string) (Conn, error)
}
