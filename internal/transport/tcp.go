package transport

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// maxFrameSize bounds a single frame (64 MiB) so a malformed or hostile
// length prefix cannot trigger unbounded allocation.
const maxFrameSize = 64 << 20

// TCPNode is one endpoint of a TCP-based Network. Every node listens on its
// own address, knows its peers' addresses, and seals each frame with the
// shared Codec. Wire format per frame (before sealing):
//
//	[2-byte sender-name length][sender name][payload]
//
// and on the wire:
//
//	[4-byte big-endian sealed length][sealed bytes]
type TCPNode struct {
	name  string
	codec Codec

	mu       sync.Mutex
	peers    map[string]string // name -> address
	dials    map[string]*tcpPeer
	accepted map[net.Conn]struct{}
	ln       net.Listener
	inbox    chan Envelope
	done     chan struct{}
	closed   bool
	readers  sync.WaitGroup
}

var _ Conn = (*TCPNode)(nil)

// tcpPeer is one outbound connection plus the mutex that serializes frame
// writes on it. A frame is two Writes (length prefix, body); concurrent
// senders — e.g. service workers answering different clients, or many
// goroutines batching queries through one client — must not interleave them.
type tcpPeer struct {
	conn    net.Conn
	writeMu sync.Mutex
}

// writeFrameLocked writes one sealed frame under the peer's write lock. The
// deadline is set unconditionally: a zero deadline clears any deadline left
// by a previous sender, so a deadline-free Send is not failed by a stale one.
func (p *tcpPeer) writeFrameLocked(deadline time.Time, frame []byte) error {
	p.writeMu.Lock()
	defer p.writeMu.Unlock()
	if err := p.conn.SetWriteDeadline(deadline); err != nil {
		return fmt.Errorf("transport: deadline: %w", err)
	}
	return writeFrame(p.conn, frame)
}

// NewTCPNode starts a node listening on addr (use "127.0.0.1:0" to pick a
// free port). The caller must Close it.
func NewTCPNode(name, addr string, codec Codec) (*TCPNode, error) {
	if codec == nil {
		codec = PlainCodec{}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	n := &TCPNode{
		name:     name,
		codec:    codec,
		peers:    make(map[string]string),
		dials:    make(map[string]*tcpPeer),
		accepted: make(map[net.Conn]struct{}),
		ln:       ln,
		inbox:    make(chan Envelope, memInboxSize),
		done:     make(chan struct{}),
	}
	n.readers.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the node's listening address.
func (n *TCPNode) Addr() string { return n.ln.Addr().String() }

// Name implements Conn.
func (n *TCPNode) Name() string { return n.name }

// AddPeer registers a peer's listening address under its name.
func (n *TCPNode) AddPeer(name, addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers[name] = addr
}

func (n *TCPNode) acceptLoop() {
	defer n.readers.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			conn.Close()
			return
		}
		n.accepted[conn] = struct{}{}
		n.readers.Add(1)
		n.mu.Unlock()
		go n.readLoop(conn)
	}
}

func (n *TCPNode) readLoop(conn net.Conn) {
	defer n.readers.Done()
	defer func() {
		conn.Close()
		n.mu.Lock()
		delete(n.accepted, conn)
		n.mu.Unlock()
	}()
	for {
		frame, err := readFrame(conn)
		if err != nil {
			return
		}
		plain, err := n.codec.Open(frame)
		if err != nil {
			continue // drop undecryptable frames
		}
		from, payload, err := splitSender(plain)
		if err != nil {
			continue
		}
		select {
		case n.inbox <- Envelope{From: from, Payload: payload}:
		case <-n.done:
			return
		}
	}
}

// Send implements Conn.
func (n *TCPNode) Send(ctx context.Context, to string, payload []byte) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	if to == n.name {
		// Self-sends happen legitimately (SAP's random exchange may route
		// a provider's dataset to itself); loop them back without a dial.
		n.mu.Unlock()
		env := Envelope{From: n.name, Payload: append([]byte(nil), payload...)}
		select {
		case n.inbox <- env:
			return nil
		case <-n.done:
			return ErrClosed
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	addr, ok := n.peers[to]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownEndpoint, to)
	}
	peer, ok := n.dials[to]
	n.mu.Unlock()

	if !ok {
		c, err := dialWithRetry(ctx, addr)
		if err != nil {
			return fmt.Errorf("transport: dial %s: %w", to, err)
		}
		n.mu.Lock()
		if existing, raced := n.dials[to]; raced {
			// Another Send dialed concurrently; keep the first connection.
			n.mu.Unlock()
			c.Close()
			peer = existing
		} else {
			peer = &tcpPeer{conn: c}
			n.dials[to] = peer
			n.mu.Unlock()
		}
	}

	plain := joinSender(n.name, payload)
	sealed, err := n.codec.Seal(plain)
	if err != nil {
		return err
	}
	deadline, _ := ctx.Deadline()
	if err := peer.writeFrameLocked(deadline, sealed); err != nil {
		// Connection is unusable; drop it so the next Send re-dials.
		n.mu.Lock()
		if n.dials[to] == peer {
			delete(n.dials, to)
		}
		n.mu.Unlock()
		peer.conn.Close()
		return fmt.Errorf("transport: send to %s: %w", to, err)
	}
	return nil
}

// Recv implements Conn.
func (n *TCPNode) Recv(ctx context.Context) (Envelope, error) {
	select {
	case env := <-n.inbox:
		return env, nil
	case <-n.done:
		select {
		case env := <-n.inbox:
			return env, nil
		default:
			return Envelope{}, ErrClosed
		}
	case <-ctx.Done():
		return Envelope{}, ctx.Err()
	}
}

// Close implements Conn.
func (n *TCPNode) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	close(n.done)
	for _, p := range n.dials {
		p.conn.Close()
	}
	n.dials = make(map[string]*tcpPeer)
	// Accepted connections must be closed too or their reader goroutines
	// would block in readFrame forever and Close would never return.
	for c := range n.accepted {
		c.Close()
	}
	n.mu.Unlock()

	err := n.ln.Close()
	n.readers.Wait()
	return err
}

// dialWithRetry dials with exponential backoff, tolerating the startup race
// where a peer daemon has not bound its listener yet. It gives up after the
// backoff schedule is exhausted or ctx expires.
func dialWithRetry(ctx context.Context, addr string) (net.Conn, error) {
	var d net.Dialer
	backoff := 50 * time.Millisecond
	var lastErr error
	for attempt := 0; attempt < 6; attempt++ {
		c, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			return c, nil
		}
		lastErr = err
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(backoff):
		}
		backoff *= 2
	}
	return nil, lastErr
}

func writeFrame(w io.Writer, frame []byte) error {
	if len(frame) > maxFrameSize {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(frame)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(frame)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size > maxFrameSize {
		return nil, ErrFrameTooLarge
	}
	frame := make([]byte, size)
	if _, err := io.ReadFull(r, frame); err != nil {
		return nil, err
	}
	return frame, nil
}

func joinSender(name string, payload []byte) []byte {
	out := make([]byte, 2+len(name)+len(payload))
	binary.BigEndian.PutUint16(out[:2], uint16(len(name)))
	copy(out[2:], name)
	copy(out[2+len(name):], payload)
	return out
}

// PeekSender splits one sealed TCP frame body into its self-declared sender
// name and inner payload. It only makes sense on PlainCodec traffic (an
// AES-GCM frame is opaque until opened); the faultnet test harness uses it
// to match a proxied frame's sender and protocol payload inside its
// fault-injection hooks.
func PeekSender(frame []byte) (string, []byte, error) {
	return splitSender(frame)
}

func splitSender(frame []byte) (string, []byte, error) {
	if len(frame) < 2 {
		return "", nil, ErrBadFrame
	}
	nameLen := int(binary.BigEndian.Uint16(frame[:2]))
	if len(frame) < 2+nameLen {
		return "", nil, ErrBadFrame
	}
	name := string(frame[2 : 2+nameLen])
	payload := append([]byte(nil), frame[2+nameLen:]...)
	return name, payload, nil
}
