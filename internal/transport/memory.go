package transport

import (
	"context"
	"fmt"
	"sync"
)

// memInboxSize buffers in-flight messages per endpoint. The protocol driver
// often runs all parties from one goroutine, so sends must not block on an
// un-drained peer; 256 comfortably covers SAP's worst-case fan-in (k
// datasets plus k adaptors).
const memInboxSize = 256

// MemNetwork is an in-process Network: endpoints exchange copies of
// payloads through buffered channels. Safe for concurrent use.
type MemNetwork struct {
	mu        sync.Mutex
	endpoints map[string]*memConn
}

var _ Network = (*MemNetwork)(nil)

// NewMemNetwork returns an empty in-memory network.
func NewMemNetwork() *MemNetwork {
	return &MemNetwork{endpoints: make(map[string]*memConn)}
}

// Endpoint implements Network.
func (n *MemNetwork) Endpoint(name string) (Conn, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.endpoints[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateName, name)
	}
	c := &memConn{
		net:   n,
		name:  name,
		inbox: make(chan Envelope, memInboxSize),
		done:  make(chan struct{}),
	}
	n.endpoints[name] = c
	return c, nil
}

func (n *MemNetwork) lookup(name string) (*memConn, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	c, ok := n.endpoints[name]
	return c, ok
}

func (n *MemNetwork) remove(name string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.endpoints, name)
}

type memConn struct {
	net   *MemNetwork
	name  string
	inbox chan Envelope

	closeOnce sync.Once
	done      chan struct{}
}

var _ Conn = (*memConn)(nil)

// Name implements Conn.
func (c *memConn) Name() string { return c.name }

// Send implements Conn.
func (c *memConn) Send(ctx context.Context, to string, payload []byte) error {
	select {
	case <-c.done:
		return ErrClosed
	default:
	}
	dst, ok := c.net.lookup(to)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownEndpoint, to)
	}
	env := Envelope{From: c.name, Payload: append([]byte(nil), payload...)}
	select {
	case dst.inbox <- env:
		return nil
	case <-dst.done:
		return fmt.Errorf("%w: %q", ErrClosed, to)
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Recv implements Conn.
func (c *memConn) Recv(ctx context.Context) (Envelope, error) {
	select {
	case env := <-c.inbox:
		return env, nil
	case <-c.done:
		// Drain any message that raced with Close.
		select {
		case env := <-c.inbox:
			return env, nil
		default:
			return Envelope{}, ErrClosed
		}
	case <-ctx.Done():
		return Envelope{}, ctx.Err()
	}
}

// Close implements Conn.
func (c *memConn) Close() error {
	c.closeOnce.Do(func() {
		close(c.done)
		c.net.remove(c.name)
	})
	return nil
}
