package transport

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"io"
)

// Codec seals and opens payloads. The TCP transport runs every frame
// through a Codec.
type Codec interface {
	// Seal encrypts (or passes through) a plaintext payload.
	Seal(plaintext []byte) ([]byte, error)
	// Open decrypts a sealed payload.
	Open(sealed []byte) ([]byte, error)
}

// PlainCodec is the identity codec, for tests and trusted links.
type PlainCodec struct{}

var _ Codec = PlainCodec{}

// Seal implements Codec.
func (PlainCodec) Seal(plaintext []byte) ([]byte, error) {
	return append([]byte(nil), plaintext...), nil
}

// Open implements Codec.
func (PlainCodec) Open(sealed []byte) ([]byte, error) {
	return append([]byte(nil), sealed...), nil
}

// AESCodec seals payloads with AES-256-GCM. Frames carry the nonce as a
// prefix. All parties in a SAP deployment share the session key out of band
// (the paper's semi-honest model assumes pairwise-encrypted links; a shared
// session key keeps the reproduction simple while exercising the same code
// path).
type AESCodec struct {
	aead cipher.AEAD
}

var _ Codec = (*AESCodec)(nil)

// NewAESCodec derives a 256-bit key from the passphrase with SHA-256 and
// prepares the AEAD.
func NewAESCodec(passphrase string) (*AESCodec, error) {
	key := sha256.Sum256([]byte(passphrase))
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("transport: aes: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("transport: gcm: %w", err)
	}
	return &AESCodec{aead: aead}, nil
}

// Seal implements Codec.
func (c *AESCodec) Seal(plaintext []byte) ([]byte, error) {
	nonce := make([]byte, c.aead.NonceSize())
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return nil, fmt.Errorf("transport: nonce: %w", err)
	}
	return c.aead.Seal(nonce, nonce, plaintext, nil), nil
}

// Open implements Codec.
func (c *AESCodec) Open(sealed []byte) ([]byte, error) {
	ns := c.aead.NonceSize()
	if len(sealed) < ns {
		return nil, fmt.Errorf("%w: sealed frame shorter than nonce", ErrBadFrame)
	}
	plain, err := c.aead.Open(nil, sealed[:ns], sealed[ns:], nil)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	return plain, nil
}
