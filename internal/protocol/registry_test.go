package protocol

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/transport"
)

// labelledLineAt is labelledLine with a label offset, so each group's model
// answers with labels from a disjoint range and response attribution across
// groups is unambiguous.
func labelledLineAt(t *testing.T, n, offset int) *dataset.Dataset {
	t.Helper()
	x := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		x[i] = []float64{float64(i) / float64(n)}
		y[i] = offset + i
	}
	d, err := dataset.New("line", x, y)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// startGroupedService serves the given groups until cleanup.
func startGroupedService(t *testing.T, conn transport.Conn, groups []GroupSpec, cfg ServiceConfig) (*MiningService, func()) {
	t.Helper()
	svc, err := NewGroupedMiningService(conn, groups, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := svc.Serve(ctx); err != nil {
			t.Error(err)
		}
	}()
	return svc, func() {
		cancel()
		<-done
	}
}

// TestGroupedServiceRoutesByGroup hosts two groups with label-disjoint
// models on one service and checks every query is answered by its own
// group's shard.
func TestGroupedServiceRoutesByGroup(t *testing.T) {
	net := transport.NewMemNetwork()
	svcConn, _ := net.Endpoint("svc")
	defer svcConn.Close()

	const n = 8
	groups := []GroupSpec{
		{ID: "alpha", Unified: labelledLineAt(t, n, 0), Model: classify.NewKNN(1)},
		{ID: "beta", Unified: labelledLineAt(t, n, 100), Model: classify.NewKNN(1)},
	}
	svc, stop := startGroupedService(t, svcConn, groups, ServiceConfig{Workers: 2})
	defer stop()
	if got := svc.Groups(); len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Fatalf("Groups() = %v", got)
	}

	ctx := testCtx(t)
	for _, tc := range []struct {
		group  string
		offset int
	}{{"alpha", 0}, {"beta", 100}} {
		cliConn, err := net.Endpoint("cli-" + tc.group)
		if err != nil {
			t.Fatal(err)
		}
		defer cliConn.Close()
		client, err := NewGroupServiceClient(cliConn, "svc", tc.group)
		if err != nil {
			t.Fatal(err)
		}
		defer client.Close()
		for i := 0; i < n; i++ {
			label, err := client.Classify(ctx, []float64{float64(i) / float64(n)})
			if err != nil {
				t.Fatalf("group %s record %d: %v", tc.group, i, err)
			}
			if label != tc.offset+i {
				t.Fatalf("group %s record %d labelled %d, want %d (cross-group response leak)",
					tc.group, i, label, tc.offset+i)
			}
		}
	}
}

// TestGroupedServiceUnknownGroup checks a frame addressed to an unhosted
// group is answered with ErrUnknownGroup — for queries and ingest alike —
// and the client stays usable.
func TestGroupedServiceUnknownGroup(t *testing.T) {
	net := transport.NewMemNetwork()
	svcConn, _ := net.Endpoint("svc")
	defer svcConn.Close()
	cliConn, _ := net.Endpoint("cli")
	defer cliConn.Close()

	svc, stop := startGroupedService(t, svcConn,
		[]GroupSpec{{ID: "alpha", Unified: labelledLine(t, 4), Model: classify.NewKNN(1)}},
		ServiceConfig{})
	defer stop()

	client, err := NewGroupServiceClient(cliConn, "svc", "nope")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx := testCtx(t)
	if _, err := client.Classify(ctx, []float64{0.5}); !errors.Is(err, ErrUnknownGroup) {
		t.Fatalf("classify err = %v, want ErrUnknownGroup", err)
	}
	if _, err := client.PushChunk(ctx, [][]float64{{0.5}}, []int{1}); !errors.Is(err, ErrUnknownGroup) {
		t.Fatalf("ingest err = %v, want ErrUnknownGroup", err)
	}
	// The default group is not implicitly hosted by a grouped service that
	// did not register it.
	legacy, err := NewServiceClient(cliConn2(t, net), "svc")
	if err != nil {
		t.Fatal(err)
	}
	defer legacy.Close()
	if _, err := legacy.Classify(ctx, []float64{0.5}); !errors.Is(err, ErrUnknownGroup) {
		t.Fatalf("default-group err = %v, want ErrUnknownGroup", err)
	}
	if _, err := svc.GroupIngested("nope"); !errors.Is(err, ErrUnknownGroup) {
		t.Fatalf("GroupIngested err = %v, want ErrUnknownGroup", err)
	}
}

// cliConn2 hands out an extra uniquely named client endpoint.
func cliConn2(t *testing.T, net transport.Network) transport.Conn {
	t.Helper()
	conn, err := net.Endpoint("cli2")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

// TestGroupedServiceMemberIsolation is the cross-group isolation contract:
// a peer registered to group alpha cannot query (or feed) group beta when
// beta carries a member list, while its own group keeps serving it.
func TestGroupedServiceMemberIsolation(t *testing.T) {
	net := transport.NewMemNetwork()
	svcConn, _ := net.Endpoint("svc")
	defer svcConn.Close()
	aliceConn, _ := net.Endpoint("alice")
	defer aliceConn.Close()

	groups := []GroupSpec{
		{ID: "alpha", Unified: labelledLineAt(t, 4, 0), Model: classify.NewKNN(1), Members: []string{"alice"}},
		{ID: "beta", Unified: labelledLineAt(t, 4, 100), Model: classify.NewKNN(1), Members: []string{"bob"}},
	}
	_, stop := startGroupedService(t, svcConn, groups, ServiceConfig{})
	defer stop()
	ctx := testCtx(t)

	// Alice in her own group: served.
	own, err := NewGroupServiceClient(aliceConn, "svc", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if label, err := own.Classify(ctx, []float64{0.0}); err != nil || label != 0 {
		t.Fatalf("own-group query = %d, %v; want 0, nil", label, err)
	}
	own.Close()

	// Alice addressing beta: refused with ErrNotMember, for queries and
	// ingest alike; nothing reaches beta's model.
	foreign, err := NewGroupServiceClient(aliceConn, "svc", "beta")
	if err != nil {
		t.Fatal(err)
	}
	defer foreign.Close()
	if _, err := foreign.Classify(ctx, []float64{0.0}); !errors.Is(err, ErrNotMember) {
		t.Fatalf("foreign classify err = %v, want ErrNotMember", err)
	}
	if _, err := foreign.PushChunk(ctx, [][]float64{{0.5}}, []int{1}); !errors.Is(err, ErrNotMember) {
		t.Fatalf("foreign ingest err = %v, want ErrNotMember", err)
	}
}

// TestLegacyFramesRouteToDefaultGroup stamps pre-v4 versions on otherwise
// well-formed frames and checks they are served by the default group — the
// backward-compatibility contract of the v4 router.
func TestLegacyFramesRouteToDefaultGroup(t *testing.T) {
	net := transport.NewMemNetwork()
	svcConn, _ := net.Endpoint("svc")
	defer svcConn.Close()
	cliConn, _ := net.Endpoint("cli")
	defer cliConn.Close()

	groups := []GroupSpec{
		{ID: DefaultGroup, Unified: labelledLineAt(t, 4, 0), Model: classify.NewKNN(1)},
		{ID: "beta", Unified: labelledLineAt(t, 4, 100), Model: classify.NewKNN(1)},
	}
	_, stop := startGroupedService(t, svcConn, groups, ServiceConfig{})
	defer stop()
	ctx := testCtx(t)

	for _, version := range []byte{1, 2, 3} {
		payload, err := encodeServiceWire(&serviceWire{ID: uint64(version), Batch: [][]float64{{0.0}}})
		if err != nil {
			t.Fatal(err)
		}
		payload[1] = version
		if err := cliConn.Send(ctx, "svc", payload); err != nil {
			t.Fatal(err)
		}
		env, err := cliConn.Recv(ctx)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := decodeServiceWire(env.Payload)
		if err != nil || resp == nil {
			t.Fatalf("v%d: decode response: %v", version, err)
		}
		if resp.ID != uint64(version) || resp.Code != codeOK {
			t.Fatalf("v%d: resp = %+v, want codeOK for ID %d", version, resp, version)
		}
		if len(resp.Labels) != 1 || resp.Labels[0] != 0 {
			t.Fatalf("v%d: labels = %v, want [0] (default group's model)", version, resp.Labels)
		}
	}
}

// gatedModel wraps a classifier whose refits (every Fit after the first)
// block until released, so tests can hold one group mid-refit. Its Clone —
// handed to background refits — shares the gate and counters, so a cloned
// instance parks inside its Fit exactly like the original would.
type gatedModel struct {
	inner   classify.Classifier
	fits    *atomic.Int64
	started chan struct{}
	release chan struct{}
}

func newGatedModel(inner classify.Classifier) *gatedModel {
	return &gatedModel{
		inner:   inner,
		fits:    &atomic.Int64{},
		started: make(chan struct{}, 8),
		release: make(chan struct{}),
	}
}

func (m *gatedModel) Fit(d *dataset.Dataset) error {
	if m.fits.Add(1) > 1 {
		m.started <- struct{}{}
		<-m.release
	}
	return m.inner.Fit(d)
}

func (m *gatedModel) Predict(x []float64) (int, error) { return m.inner.Predict(x) }

func (m *gatedModel) Clone() classify.Classifier {
	return &gatedModel{inner: classify.NewKNN(1), fits: m.fits, started: m.started, release: m.release}
}

// waitForLabel polls a group's served prediction for probe until it answers
// want — background refits publish their model swap asynchronously.
func waitForLabel(t *testing.T, ctx context.Context, client *ServiceClient, probe []float64, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		label, err := client.Classify(ctx, probe)
		if err != nil {
			t.Fatal(err)
		}
		if label == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("label = %d, want %d (refit swap never went live)", label, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestGroupRefitDoesNotBlockOtherGroups holds group alpha in the middle of
// an ingest-triggered background refit and checks that NOBODY stalls: alpha
// itself keeps answering queries on the previous fit and keeps accepting
// ingest chunks (this was the cross-group ingest stall — the refit used to
// run inline on the ingest goroutine under the model write lock), and beta
// is untouched. Releasing the gate must eventually publish the swapped
// model.
func TestGroupRefitDoesNotBlockOtherGroups(t *testing.T) {
	net := transport.NewMemNetwork()
	svcConn, _ := net.Endpoint("svc")
	defer svcConn.Close()
	pushConn, _ := net.Endpoint("pusher")
	defer pushConn.Close()
	queryConn, _ := net.Endpoint("querier")
	defer queryConn.Close()

	gated := newGatedModel(classify.NewKNN(1))
	groups := []GroupSpec{
		{ID: "alpha", Unified: labelledLineAt(t, 4, 0), Model: gated, RefitEvery: 1},
		{ID: "beta", Unified: labelledLineAt(t, 4, 100), Model: classify.NewKNN(1)},
	}
	_, stop := startGroupedService(t, svcConn, groups, ServiceConfig{Workers: 2})
	defer stop()
	ctx := testCtx(t)

	pusher, err := NewGroupServiceClient(pushConn, "svc", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	defer pusher.Close()
	// The triggering push must come back without waiting for the refit —
	// the refit runs aside, the ingest lane answers immediately.
	if _, err := pusher.PushChunk(ctx, [][]float64{{0.9}}, []int{9}); err != nil {
		t.Fatalf("triggering push: %v", err)
	}
	// Wait until alpha is genuinely inside its background refit.
	select {
	case <-gated.started:
	case <-time.After(5 * time.Second):
		t.Fatal("alpha never started its refit")
	}

	// Alpha itself keeps serving mid-refit: queries answer from the
	// previous fit, and further ingest is accepted by the unblocked lane.
	midCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if label, err := pusher.Classify(midCtx, []float64{0.0}); err != nil || label != 0 {
		t.Fatalf("alpha query mid-refit = %d, %v; want 0 (previous fit), nil", label, err)
	}
	if _, err := pusher.PushChunk(midCtx, [][]float64{{0.8}}, []int{9}); err != nil {
		t.Fatalf("alpha ingest mid-refit: %v", err)
	}

	// Beta must answer while alpha's refit is parked.
	querier, err := NewGroupServiceClient(queryConn, "svc", "beta")
	if err != nil {
		t.Fatal(err)
	}
	defer querier.Close()
	label, err := querier.Classify(midCtx, []float64{0.0})
	if err != nil {
		t.Fatalf("beta query during alpha refit: %v", err)
	}
	if label != 100 {
		t.Fatalf("beta label = %d, want 100", label)
	}

	// Releasing the gate lets the refit finish and swap the fresh fit in;
	// the streamed region then answers with its new label.
	close(gated.release)
	waitForLabel(t, ctx, pusher, []float64{0.9}, 9)
}

// flakyModel wraps a classifier whose Fit fails while failing is set,
// simulating a refit that cannot converge on the grown training set. Clones
// (the fresh instances background refits fit) share the failure switch.
type flakyModel struct {
	inner   classify.Classifier
	failing *atomic.Bool
}

func newFlakyModel(inner classify.Classifier) *flakyModel {
	return &flakyModel{inner: inner, failing: &atomic.Bool{}}
}

var errFlakyFit = errors.New("flaky: fit failed")

func (m *flakyModel) Fit(d *dataset.Dataset) error {
	if m.failing.Load() {
		return errFlakyFit
	}
	return m.inner.Fit(d)
}

func (m *flakyModel) Predict(x []float64) (int, error) { return m.inner.Predict(x) }

func (m *flakyModel) Clone() classify.Classifier {
	return &flakyModel{inner: classify.NewKNN(1), failing: m.failing}
}

// waitForCounter polls one registry counter until it reaches want.
func waitForCounter(t *testing.T, reg *metrics.Registry, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if got := reg.Snapshot().Counters[name]; got >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s = %d, want >= %d",
				name, reg.Snapshot().Counters[name], want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestRefitFailureKeepsServingAndRecovers exercises the refit-failure
// contract end to end under the background-refit design: a failed refit
// leaves the prior model's predictions byte-identical (the fresh instance
// that failed to fit is discarded, the atomic swap never happens), the
// failure is reported exactly once — on the next ingest response, as
// ErrRefit with the chunk still folded in — and the group recovers once a
// later refit succeeds.
func TestRefitFailureKeepsServingAndRecovers(t *testing.T) {
	net := transport.NewMemNetwork()
	svcConn, _ := net.Endpoint("svc")
	defer svcConn.Close()
	cliConn, _ := net.Endpoint("cli")
	defer cliConn.Close()

	reg := metrics.NewRegistry()
	flaky := newFlakyModel(classify.NewKNN(1))
	svc, stop := startGroupedService(t, svcConn,
		[]GroupSpec{{ID: "alpha", Unified: labelledLine(t, 4), Model: flaky, RefitEvery: 2}},
		ServiceConfig{Metrics: reg})
	defer stop()

	client, err := NewGroupServiceClient(cliConn, "svc", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx := testCtx(t)

	// Fingerprint the live model before anything goes wrong.
	probes := [][]float64{{0.0}, {0.3}, {0.6}, {0.9}, {10.0}}
	before := make([]int, len(probes))
	for i, p := range probes {
		if before[i], err = client.Classify(ctx, p); err != nil {
			t.Fatal(err)
		}
	}

	// Break refits and push a chunk that schedules one. The push itself
	// succeeds — the chunk lands, the refit runs (and fails) aside.
	flaky.failing.Store(true)
	total, err := client.PushChunk(ctx, [][]float64{{9.9}, {10.1}}, []int{7, 7})
	if err != nil {
		t.Fatalf("push with broken refit err = %v, want nil (refit is off the ingest lane)", err)
	}
	if total != 6 {
		t.Fatalf("accepted total = %d, want 6 (chunk must be folded in)", total)
	}
	waitForCounter(t, reg, "service.alpha.refit.errors", 1)

	// The failed refit left the prior model serving, predictions unchanged
	// to the byte: the failed fresh instance was discarded before the swap.
	for i, p := range probes {
		label, err := client.Classify(ctx, p)
		if err != nil {
			t.Fatalf("query after failed refit: %v", err)
		}
		if label != before[i] {
			t.Fatalf("probe %v = %d after failed refit, want %d (prior model must be untouched)",
				p, label, before[i])
		}
	}

	// The next ingest response reports the lag exactly once: ErrRefit with
	// the chunk still accepted.
	total, err = client.PushChunk(ctx, [][]float64{{9.8}}, []int{7})
	if !errors.Is(err, ErrRefit) {
		t.Fatalf("post-failure push err = %v, want ErrRefit (lag reported on next ingest answer)", err)
	}
	if total != 7 {
		t.Fatalf("accepted total = %d alongside ErrRefit, want 7", total)
	}

	// Heal the model; the next cadence crossing refits cleanly and swaps
	// the grown training set — including the failed round's records — in.
	flaky.failing.Store(false)
	total, err = client.PushChunk(ctx, [][]float64{{10.2}}, []int{7})
	if err != nil {
		t.Fatalf("push after heal: %v", err)
	}
	if total != 8 {
		t.Fatalf("accepted total = %d, want 8", total)
	}
	waitForLabel(t, ctx, client, []float64{10.0}, 7)
	if got, err := svc.GroupIngested("alpha"); err != nil || got != 4 {
		t.Fatalf("GroupIngested = %d, %v; want 4, nil", got, err)
	}
	snap := reg.Snapshot()
	if snap.Counters["service.alpha.refit.errors"] != 1 {
		t.Fatalf("refit.errors = %d, want 1", snap.Counters["service.alpha.refit.errors"])
	}
	if snap.Counters["service.alpha.refit.count"] < 1 {
		t.Fatalf("refit.count = %d, want >= 1", snap.Counters["service.alpha.refit.count"])
	}
}

// TestGroupedServiceValidation covers the registry's construction-time
// rejections.
func TestGroupedServiceValidation(t *testing.T) {
	net := transport.NewMemNetwork()
	conn, err := net.Endpoint("svc")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	d := labelledLine(t, 4)
	model := classify.NewKNN(1)

	for name, groups := range map[string][]GroupSpec{
		"no groups":    {},
		"empty id":     {{ID: "", Unified: d, Model: model}},
		"duplicate id": {{ID: "a", Unified: d, Model: model}, {ID: "a", Unified: d, Model: classify.NewKNN(1)}},
		"no dataset":   {{ID: "a", Model: model}},
		"nil model":    {{ID: "a", Unified: d}},
		"empty member": {{ID: "a", Unified: d, Model: model, Members: []string{""}}},
	} {
		if _, err := NewGroupedMiningService(conn, groups, ServiceConfig{}); !errors.Is(err, ErrBadConfig) {
			t.Errorf("%s: err = %v, want ErrBadConfig", name, err)
		}
	}
}

// TestGroupIngestIsolation checks that one group's ingest never leaks into
// another group's training set or counters.
func TestGroupIngestIsolation(t *testing.T) {
	net := transport.NewMemNetwork()
	svcConn, _ := net.Endpoint("svc")
	defer svcConn.Close()
	cliConn, _ := net.Endpoint("cli")
	defer cliConn.Close()

	groups := []GroupSpec{
		{ID: "alpha", Unified: labelledLineAt(t, 4, 0), Model: classify.NewKNN(1), RefitEvery: 1},
		{ID: "beta", Unified: labelledLineAt(t, 4, 100), Model: classify.NewKNN(1), RefitEvery: 1},
	}
	svc, stop := startGroupedService(t, svcConn, groups, ServiceConfig{})
	defer stop()
	ctx := testCtx(t)

	client, err := NewGroupServiceClient(cliConn, "svc", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	total, err := client.PushChunk(ctx, [][]float64{{2.0}, {2.1}}, []int{8, 8})
	if err != nil {
		t.Fatal(err)
	}
	if total != 6 {
		t.Fatalf("alpha total = %d, want 6", total)
	}
	client.Close()

	if got, err := svc.GroupIngested("alpha"); err != nil || got != 2 {
		t.Fatalf("alpha ingested = %d, %v; want 2, nil", got, err)
	}
	if got, err := svc.GroupIngested("beta"); err != nil || got != 0 {
		t.Fatalf("beta ingested = %d, %v; want 0, nil", got, err)
	}
	if got := svc.Ingested(); got != 2 {
		t.Fatalf("total ingested = %d, want 2", got)
	}

	// Beta's model must not know alpha's streamed region: nearest stays the
	// top of beta's own line.
	beta, err := NewGroupServiceClient(cliConn, "svc", "beta")
	if err != nil {
		t.Fatal(err)
	}
	defer beta.Close()
	label, err := beta.Classify(ctx, []float64{2.0})
	if err != nil {
		t.Fatal(err)
	}
	if label != 103 {
		t.Fatalf("beta label = %d, want 103 (alpha's ingest leaked)", label)
	}
}
