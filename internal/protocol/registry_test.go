package protocol

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/dataset"
	"repro/internal/transport"
)

// labelledLineAt is labelledLine with a label offset, so each group's model
// answers with labels from a disjoint range and response attribution across
// groups is unambiguous.
func labelledLineAt(t *testing.T, n, offset int) *dataset.Dataset {
	t.Helper()
	x := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		x[i] = []float64{float64(i) / float64(n)}
		y[i] = offset + i
	}
	d, err := dataset.New("line", x, y)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// startGroupedService serves the given groups until cleanup.
func startGroupedService(t *testing.T, conn transport.Conn, groups []GroupSpec, cfg ServiceConfig) (*MiningService, func()) {
	t.Helper()
	svc, err := NewGroupedMiningService(conn, groups, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := svc.Serve(ctx); err != nil {
			t.Error(err)
		}
	}()
	return svc, func() {
		cancel()
		<-done
	}
}

// TestGroupedServiceRoutesByGroup hosts two groups with label-disjoint
// models on one service and checks every query is answered by its own
// group's shard.
func TestGroupedServiceRoutesByGroup(t *testing.T) {
	net := transport.NewMemNetwork()
	svcConn, _ := net.Endpoint("svc")
	defer svcConn.Close()

	const n = 8
	groups := []GroupSpec{
		{ID: "alpha", Unified: labelledLineAt(t, n, 0), Model: classify.NewKNN(1)},
		{ID: "beta", Unified: labelledLineAt(t, n, 100), Model: classify.NewKNN(1)},
	}
	svc, stop := startGroupedService(t, svcConn, groups, ServiceConfig{Workers: 2})
	defer stop()
	if got := svc.Groups(); len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Fatalf("Groups() = %v", got)
	}

	ctx := testCtx(t)
	for _, tc := range []struct {
		group  string
		offset int
	}{{"alpha", 0}, {"beta", 100}} {
		cliConn, err := net.Endpoint("cli-" + tc.group)
		if err != nil {
			t.Fatal(err)
		}
		defer cliConn.Close()
		client, err := NewGroupServiceClient(cliConn, "svc", tc.group)
		if err != nil {
			t.Fatal(err)
		}
		defer client.Close()
		for i := 0; i < n; i++ {
			label, err := client.Classify(ctx, []float64{float64(i) / float64(n)})
			if err != nil {
				t.Fatalf("group %s record %d: %v", tc.group, i, err)
			}
			if label != tc.offset+i {
				t.Fatalf("group %s record %d labelled %d, want %d (cross-group response leak)",
					tc.group, i, label, tc.offset+i)
			}
		}
	}
}

// TestGroupedServiceUnknownGroup checks a frame addressed to an unhosted
// group is answered with ErrUnknownGroup — for queries and ingest alike —
// and the client stays usable.
func TestGroupedServiceUnknownGroup(t *testing.T) {
	net := transport.NewMemNetwork()
	svcConn, _ := net.Endpoint("svc")
	defer svcConn.Close()
	cliConn, _ := net.Endpoint("cli")
	defer cliConn.Close()

	svc, stop := startGroupedService(t, svcConn,
		[]GroupSpec{{ID: "alpha", Unified: labelledLine(t, 4), Model: classify.NewKNN(1)}},
		ServiceConfig{})
	defer stop()

	client, err := NewGroupServiceClient(cliConn, "svc", "nope")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx := testCtx(t)
	if _, err := client.Classify(ctx, []float64{0.5}); !errors.Is(err, ErrUnknownGroup) {
		t.Fatalf("classify err = %v, want ErrUnknownGroup", err)
	}
	if _, err := client.PushChunk(ctx, [][]float64{{0.5}}, []int{1}); !errors.Is(err, ErrUnknownGroup) {
		t.Fatalf("ingest err = %v, want ErrUnknownGroup", err)
	}
	// The default group is not implicitly hosted by a grouped service that
	// did not register it.
	legacy, err := NewServiceClient(cliConn2(t, net), "svc")
	if err != nil {
		t.Fatal(err)
	}
	defer legacy.Close()
	if _, err := legacy.Classify(ctx, []float64{0.5}); !errors.Is(err, ErrUnknownGroup) {
		t.Fatalf("default-group err = %v, want ErrUnknownGroup", err)
	}
	if _, err := svc.GroupIngested("nope"); !errors.Is(err, ErrUnknownGroup) {
		t.Fatalf("GroupIngested err = %v, want ErrUnknownGroup", err)
	}
}

// cliConn2 hands out an extra uniquely named client endpoint.
func cliConn2(t *testing.T, net transport.Network) transport.Conn {
	t.Helper()
	conn, err := net.Endpoint("cli2")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

// TestGroupedServiceMemberIsolation is the cross-group isolation contract:
// a peer registered to group alpha cannot query (or feed) group beta when
// beta carries a member list, while its own group keeps serving it.
func TestGroupedServiceMemberIsolation(t *testing.T) {
	net := transport.NewMemNetwork()
	svcConn, _ := net.Endpoint("svc")
	defer svcConn.Close()
	aliceConn, _ := net.Endpoint("alice")
	defer aliceConn.Close()

	groups := []GroupSpec{
		{ID: "alpha", Unified: labelledLineAt(t, 4, 0), Model: classify.NewKNN(1), Members: []string{"alice"}},
		{ID: "beta", Unified: labelledLineAt(t, 4, 100), Model: classify.NewKNN(1), Members: []string{"bob"}},
	}
	_, stop := startGroupedService(t, svcConn, groups, ServiceConfig{})
	defer stop()
	ctx := testCtx(t)

	// Alice in her own group: served.
	own, err := NewGroupServiceClient(aliceConn, "svc", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if label, err := own.Classify(ctx, []float64{0.0}); err != nil || label != 0 {
		t.Fatalf("own-group query = %d, %v; want 0, nil", label, err)
	}
	own.Close()

	// Alice addressing beta: refused with ErrNotMember, for queries and
	// ingest alike; nothing reaches beta's model.
	foreign, err := NewGroupServiceClient(aliceConn, "svc", "beta")
	if err != nil {
		t.Fatal(err)
	}
	defer foreign.Close()
	if _, err := foreign.Classify(ctx, []float64{0.0}); !errors.Is(err, ErrNotMember) {
		t.Fatalf("foreign classify err = %v, want ErrNotMember", err)
	}
	if _, err := foreign.PushChunk(ctx, [][]float64{{0.5}}, []int{1}); !errors.Is(err, ErrNotMember) {
		t.Fatalf("foreign ingest err = %v, want ErrNotMember", err)
	}
}

// TestLegacyFramesRouteToDefaultGroup stamps pre-v4 versions on otherwise
// well-formed frames and checks they are served by the default group — the
// backward-compatibility contract of the v4 router.
func TestLegacyFramesRouteToDefaultGroup(t *testing.T) {
	net := transport.NewMemNetwork()
	svcConn, _ := net.Endpoint("svc")
	defer svcConn.Close()
	cliConn, _ := net.Endpoint("cli")
	defer cliConn.Close()

	groups := []GroupSpec{
		{ID: DefaultGroup, Unified: labelledLineAt(t, 4, 0), Model: classify.NewKNN(1)},
		{ID: "beta", Unified: labelledLineAt(t, 4, 100), Model: classify.NewKNN(1)},
	}
	_, stop := startGroupedService(t, svcConn, groups, ServiceConfig{})
	defer stop()
	ctx := testCtx(t)

	for _, version := range []byte{1, 2, 3} {
		payload, err := encodeServiceWire(&serviceWire{ID: uint64(version), Batch: [][]float64{{0.0}}})
		if err != nil {
			t.Fatal(err)
		}
		payload[1] = version
		if err := cliConn.Send(ctx, "svc", payload); err != nil {
			t.Fatal(err)
		}
		env, err := cliConn.Recv(ctx)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := decodeServiceWire(env.Payload)
		if err != nil || resp == nil {
			t.Fatalf("v%d: decode response: %v", version, err)
		}
		if resp.ID != uint64(version) || resp.Code != codeOK {
			t.Fatalf("v%d: resp = %+v, want codeOK for ID %d", version, resp, version)
		}
		if len(resp.Labels) != 1 || resp.Labels[0] != 0 {
			t.Fatalf("v%d: labels = %v, want [0] (default group's model)", version, resp.Labels)
		}
	}
}

// gatedModel wraps a classifier whose refits (every Fit after the first)
// block until released, so tests can hold one group mid-refit.
type gatedModel struct {
	inner   classify.Classifier
	fits    atomic.Int64
	started chan struct{}
	release chan struct{}
}

func (m *gatedModel) Fit(d *dataset.Dataset) error {
	if m.fits.Add(1) > 1 {
		m.started <- struct{}{}
		<-m.release
	}
	return m.inner.Fit(d)
}

func (m *gatedModel) Predict(x []float64) (int, error) { return m.inner.Predict(x) }

// TestGroupRefitDoesNotBlockOtherGroups holds group alpha in the middle of
// an ingest-triggered refit and checks group beta keeps answering queries —
// the sharded-lock guarantee of the router.
func TestGroupRefitDoesNotBlockOtherGroups(t *testing.T) {
	net := transport.NewMemNetwork()
	svcConn, _ := net.Endpoint("svc")
	defer svcConn.Close()
	pushConn, _ := net.Endpoint("pusher")
	defer pushConn.Close()
	queryConn, _ := net.Endpoint("querier")
	defer queryConn.Close()

	gated := &gatedModel{
		inner:   classify.NewKNN(1),
		started: make(chan struct{}, 1),
		release: make(chan struct{}),
	}
	groups := []GroupSpec{
		{ID: "alpha", Unified: labelledLineAt(t, 4, 0), Model: gated, RefitEvery: 1},
		{ID: "beta", Unified: labelledLineAt(t, 4, 100), Model: classify.NewKNN(1)},
	}
	_, stop := startGroupedService(t, svcConn, groups, ServiceConfig{Workers: 2})
	defer stop()
	ctx := testCtx(t)

	pusher, err := NewGroupServiceClient(pushConn, "svc", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	defer pusher.Close()
	pushDone := make(chan error, 1)
	go func() {
		_, err := pusher.PushChunk(ctx, [][]float64{{0.9}}, []int{9})
		pushDone <- err
	}()
	// Wait until alpha is genuinely inside its refit.
	select {
	case <-gated.started:
	case <-time.After(5 * time.Second):
		t.Fatal("alpha never started its refit")
	}

	// Beta must answer while alpha's refit is parked.
	querier, err := NewGroupServiceClient(queryConn, "svc", "beta")
	if err != nil {
		t.Fatal(err)
	}
	defer querier.Close()
	queryCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	label, err := querier.Classify(queryCtx, []float64{0.0})
	if err != nil {
		t.Fatalf("beta query during alpha refit: %v", err)
	}
	if label != 100 {
		t.Fatalf("beta label = %d, want 100", label)
	}

	close(gated.release)
	if err := <-pushDone; err != nil {
		t.Fatalf("alpha push after release: %v", err)
	}
}

// flakyModel wraps a classifier whose Fit fails while failing is set,
// simulating a refit that cannot converge on the grown training set.
type flakyModel struct {
	inner   classify.Classifier
	failing atomic.Bool
}

var errFlakyFit = errors.New("flaky: fit failed")

func (m *flakyModel) Fit(d *dataset.Dataset) error {
	if m.failing.Load() {
		return errFlakyFit
	}
	return m.inner.Fit(d)
}

func (m *flakyModel) Predict(x []float64) (int, error) { return m.inner.Predict(x) }

// TestRefitFailureKeepsServingAndRecovers exercises the ErrRefit non-fatal
// path end to end: a group whose refit fails answers ErrRefit (chunk kept),
// keeps serving queries from the previous fit, and recovers — new records
// become visible — on the next successful refit.
func TestRefitFailureKeepsServingAndRecovers(t *testing.T) {
	net := transport.NewMemNetwork()
	svcConn, _ := net.Endpoint("svc")
	defer svcConn.Close()
	cliConn, _ := net.Endpoint("cli")
	defer cliConn.Close()

	flaky := &flakyModel{inner: classify.NewKNN(1)}
	svc, stop := startGroupedService(t, svcConn,
		[]GroupSpec{{ID: "alpha", Unified: labelledLine(t, 4), Model: flaky, RefitEvery: 2}},
		ServiceConfig{})
	defer stop()

	client, err := NewGroupServiceClient(cliConn, "svc", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx := testCtx(t)

	// Break the next refit and push a chunk that triggers it.
	flaky.failing.Store(true)
	total, err := client.PushChunk(ctx, [][]float64{{9.9}, {10.1}}, []int{7, 7})
	if !errors.Is(err, ErrRefit) {
		t.Fatalf("push with broken refit err = %v, want ErrRefit", err)
	}
	if total != 6 {
		t.Fatalf("accepted total = %d, want 6 (chunk must be folded in despite the refit failure)", total)
	}

	// The group keeps serving on the previous fit: the pushed region still
	// answers with the old nearest label, and near-base queries still work.
	label, err := client.Classify(ctx, []float64{10.0})
	if err != nil {
		t.Fatalf("query after failed refit: %v", err)
	}
	if label != 3 {
		t.Fatalf("label after failed refit = %d, want 3 (previous fit)", label)
	}

	// Heal the model and push the next chunk: the cadence fires again (the
	// failed refit did not reset it), the refit succeeds, and the grown
	// training set — including the chunk from the failed round — goes live.
	flaky.failing.Store(false)
	total, err = client.PushChunk(ctx, [][]float64{{9.8}}, []int{7})
	if err != nil {
		t.Fatalf("push after heal: %v", err)
	}
	if total != 7 {
		t.Fatalf("accepted total = %d, want 7", total)
	}
	label, err = client.Classify(ctx, []float64{10.0})
	if err != nil {
		t.Fatal(err)
	}
	if label != 7 {
		t.Fatalf("label after recovery = %d, want 7 (refit picked up streamed records)", label)
	}
	if got, err := svc.GroupIngested("alpha"); err != nil || got != 3 {
		t.Fatalf("GroupIngested = %d, %v; want 3, nil", got, err)
	}
}

// TestGroupedServiceValidation covers the registry's construction-time
// rejections.
func TestGroupedServiceValidation(t *testing.T) {
	net := transport.NewMemNetwork()
	conn, err := net.Endpoint("svc")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	d := labelledLine(t, 4)
	model := classify.NewKNN(1)

	for name, groups := range map[string][]GroupSpec{
		"no groups":    {},
		"empty id":     {{ID: "", Unified: d, Model: model}},
		"duplicate id": {{ID: "a", Unified: d, Model: model}, {ID: "a", Unified: d, Model: classify.NewKNN(1)}},
		"no dataset":   {{ID: "a", Model: model}},
		"nil model":    {{ID: "a", Unified: d}},
		"empty member": {{ID: "a", Unified: d, Model: model, Members: []string{""}}},
	} {
		if _, err := NewGroupedMiningService(conn, groups, ServiceConfig{}); !errors.Is(err, ErrBadConfig) {
			t.Errorf("%s: err = %v, want ErrBadConfig", name, err)
		}
	}
}

// TestGroupIngestIsolation checks that one group's ingest never leaks into
// another group's training set or counters.
func TestGroupIngestIsolation(t *testing.T) {
	net := transport.NewMemNetwork()
	svcConn, _ := net.Endpoint("svc")
	defer svcConn.Close()
	cliConn, _ := net.Endpoint("cli")
	defer cliConn.Close()

	groups := []GroupSpec{
		{ID: "alpha", Unified: labelledLineAt(t, 4, 0), Model: classify.NewKNN(1), RefitEvery: 1},
		{ID: "beta", Unified: labelledLineAt(t, 4, 100), Model: classify.NewKNN(1), RefitEvery: 1},
	}
	svc, stop := startGroupedService(t, svcConn, groups, ServiceConfig{})
	defer stop()
	ctx := testCtx(t)

	client, err := NewGroupServiceClient(cliConn, "svc", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	total, err := client.PushChunk(ctx, [][]float64{{2.0}, {2.1}}, []int{8, 8})
	if err != nil {
		t.Fatal(err)
	}
	if total != 6 {
		t.Fatalf("alpha total = %d, want 6", total)
	}
	client.Close()

	if got, err := svc.GroupIngested("alpha"); err != nil || got != 2 {
		t.Fatalf("alpha ingested = %d, %v; want 2, nil", got, err)
	}
	if got, err := svc.GroupIngested("beta"); err != nil || got != 0 {
		t.Fatalf("beta ingested = %d, %v; want 0, nil", got, err)
	}
	if got := svc.Ingested(); got != 2 {
		t.Fatalf("total ingested = %d, want 2", got)
	}

	// Beta's model must not know alpha's streamed region: nearest stays the
	// top of beta's own line.
	beta, err := NewGroupServiceClient(cliConn, "svc", "beta")
	if err != nil {
		t.Fatal(err)
	}
	defer beta.Close()
	label, err := beta.Classify(ctx, []float64{2.0})
	if err != nil {
		t.Fatal(err)
	}
	if label != 103 {
		t.Fatalf("beta label = %d, want 103 (alpha's ingest leaked)", label)
	}
}
