package protocol

import (
	"fmt"
	"strings"
	"sync"
)

// EventKind tags protocol audit events.
type EventKind int

// Audit event kinds, in rough protocol order.
const (
	EventTargetSelected EventKind = iota + 1
	EventPlanComputed
	EventAssignmentSent
	EventDatasetSent
	EventDatasetReceived
	EventDatasetForwarded
	EventAdaptorSent
	EventAdaptorReceived
	EventAdaptorMapSent
	EventSubmissionReceived
	EventUnified
	EventViolationDetected
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventTargetSelected:
		return "target-selected"
	case EventPlanComputed:
		return "plan-computed"
	case EventAssignmentSent:
		return "assignment-sent"
	case EventDatasetSent:
		return "dataset-sent"
	case EventDatasetReceived:
		return "dataset-received"
	case EventDatasetForwarded:
		return "dataset-forwarded"
	case EventAdaptorSent:
		return "adaptor-sent"
	case EventAdaptorReceived:
		return "adaptor-received"
	case EventAdaptorMapSent:
		return "adaptor-map-sent"
	case EventSubmissionReceived:
		return "submission-received"
	case EventUnified:
		return "unified"
	case EventViolationDetected:
		return "violation-detected"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one audit record emitted by a protocol role.
type Event struct {
	// Actor is the endpoint that recorded the event.
	Actor string
	// Kind classifies the event.
	Kind EventKind
	// Peer is the counterparty, when one exists.
	Peer string
	// Detail carries free-form context (slot IDs, sizes).
	Detail string
}

// String implements fmt.Stringer.
func (e Event) String() string {
	s := e.Actor + " " + e.Kind.String()
	if e.Peer != "" {
		s += " peer=" + e.Peer
	}
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}

// AuditLog is a concurrency-safe, append-only event log shared by the
// protocol roles of one session. The zero value is ready to use; a nil
// *AuditLog disables recording, so roles never need nil checks at call
// sites beyond the method itself.
type AuditLog struct {
	mu     sync.Mutex
	events []Event
}

// Record appends an event. Safe on a nil receiver (no-op).
func (l *AuditLog) Record(actor string, kind EventKind, peer, detail string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, Event{Actor: actor, Kind: kind, Peer: peer, Detail: detail})
}

// Events returns a copy of the recorded events in order.
func (l *AuditLog) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event(nil), l.events...)
}

// CountByKind tallies events per kind.
func (l *AuditLog) CountByKind() map[EventKind]int {
	counts := make(map[EventKind]int)
	for _, e := range l.Events() {
		counts[e.Kind]++
	}
	return counts
}

// ByActor returns the events recorded by one actor, in order.
func (l *AuditLog) ByActor(actor string) []Event {
	var out []Event
	for _, e := range l.Events() {
		if e.Actor == actor {
			out = append(out, e)
		}
	}
	return out
}

// String renders the log one event per line.
func (l *AuditLog) String() string {
	var b strings.Builder
	for _, e := range l.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// VerifyInvariants checks the session-level safety properties the paper's
// privacy argument rests on and returns a list of violations (empty when
// the log is consistent):
//
//  1. The coordinator never records receiving a dataset.
//  2. Every dataset sent by a provider is eventually forwarded to the
//     miner by some (other) provider.
//  3. The miner receives exactly k submissions and exactly one adaptor map.
func (l *AuditLog) VerifyInvariants(coordinator, miner string, k int) []string {
	var problems []string
	counts := l.CountByKind()
	for _, e := range l.Events() {
		if e.Actor == coordinator && (e.Kind == EventDatasetReceived || e.Kind == EventSubmissionReceived) {
			problems = append(problems, fmt.Sprintf("coordinator recorded %v", e.Kind))
		}
	}
	sent := counts[EventDatasetSent]
	forwarded := counts[EventDatasetForwarded]
	if sent != forwarded {
		problems = append(problems, fmt.Sprintf("%d datasets sent but %d forwarded", sent, forwarded))
	}
	if got := counts[EventSubmissionReceived]; got != k {
		problems = append(problems, fmt.Sprintf("miner received %d submissions, want %d", got, k))
	}
	if got := counts[EventAdaptorMapSent]; got != 1 {
		problems = append(problems, fmt.Sprintf("%d adaptor maps sent, want 1", got))
	}
	_ = miner
	return problems
}
