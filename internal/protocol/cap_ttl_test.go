package protocol

// Capability-mask TTL: a peer's advertised wire capabilities are honored only
// as long as they keep being re-observed. A peer downgraded in place (rolled
// back to a classic-only binary) goes silent on the capability channel, and
// both halves — client and service — must stop sending it flagged v7 frames
// once the last advertisement ages out.

import (
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/transport"
)

// TestClientCapTTLDowngradedMiner is the downgrade e2e: a client negotiates
// flagged frames with a capable service, the service is then replaced in
// place by a legacy (v6-framed, never-advertising) miner double, and after
// the capability TTL passes the client's next frame is classic again — the
// legacy peer, which would reject a flagged frame, never receives one.
func TestClientCapTTLDowngradedMiner(t *testing.T) {
	net := transport.NewMemNetwork()
	svcConn, _ := net.Endpoint("svc")
	raw, _ := net.Endpoint("client")
	clientConn := &sniffConn{Conn: raw}
	defer clientConn.Close()

	_, stop := startGroupedService(t, svcConn, []GroupSpec{{
		ID: "alpha", Unified: labelledLine(t, 8), Model: classify.NewKNN(1)}},
		ServiceConfig{Compression: true})

	client, err := NewGroupServiceClient(clientConn, "svc", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	const ttl = 150 * time.Millisecond
	client.SetWireOptions(WireOptions{Compress: true, CapTTL: ttl})

	ctx := testCtx(t)
	for i := 0; i < 2; i++ {
		if _, err := client.ClassifyBatch(ctx, [][]float64{{0.3}}); err != nil {
			t.Fatalf("classify %d: %v", i, err)
		}
	}
	frames := clientConn.frames()
	if len(frames) != 2 || frames[1][0] != serviceWireFlaggedVersion {
		t.Fatalf("negotiation frames = %v, want the second flagged v%d",
			frames, serviceWireFlaggedVersion)
	}

	// Downgrade in place: the capable service goes away and a legacy binary
	// takes over the same endpoint. It advertises nothing and fails the test
	// if a flagged frame ever reaches it.
	stop()
	svcConn.Close()
	legacyConn, err := net.Endpoint("svc")
	if err != nil {
		t.Fatal(err)
	}
	stopLegacy := startLegacyMiner(t, legacyConn)
	defer stopLegacy()

	// Past the TTL the stale mask counts as zero: the next frame must be
	// classic, which the legacy peer answers without trouble.
	time.Sleep(ttl + 50*time.Millisecond)
	if _, err := client.ClassifyBatch(ctx, [][]float64{{0.3}}); err != nil {
		t.Fatalf("classify against the downgraded miner: %v", err)
	}
	frames = clientConn.frames()
	last := frames[len(frames)-1]
	if last[0] != serviceWireClassicVersion {
		t.Fatalf("post-TTL frame is v%d, want classic v%d", last[0], serviceWireClassicVersion)
	}
}

// TestClientCapTTLRefreshedByTraffic checks the inverse: an active peer never
// expires, because every response refreshes the stamp. Requests spaced inside
// the TTL keep riding flagged frames indefinitely.
func TestClientCapTTLRefreshedByTraffic(t *testing.T) {
	net := transport.NewMemNetwork()
	svcConn, _ := net.Endpoint("svc")
	defer svcConn.Close()
	raw, _ := net.Endpoint("client")
	clientConn := &sniffConn{Conn: raw}
	defer clientConn.Close()

	_, stop := startGroupedService(t, svcConn, []GroupSpec{{
		ID: "alpha", Unified: labelledLine(t, 8), Model: classify.NewKNN(1)}},
		ServiceConfig{Compression: true})
	defer stop()

	client, err := NewGroupServiceClient(clientConn, "svc", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.SetWireOptions(WireOptions{Compress: true, CapTTL: 200 * time.Millisecond})

	ctx := testCtx(t)
	for i := 0; i < 4; i++ {
		if _, err := client.ClassifyBatch(ctx, [][]float64{{0.3}}); err != nil {
			t.Fatalf("classify %d: %v", i, err)
		}
		time.Sleep(80 * time.Millisecond) // well inside the TTL
	}
	frames := clientConn.frames()
	for i, h := range frames[1:] {
		if h[0] != serviceWireFlaggedVersion {
			t.Fatalf("frame %d is v%d, want flagged — traffic inside the TTL must keep the mask fresh",
				i+1, h[0])
		}
	}
}

// TestServiceCapTTLExpiry checks the service half: a gossiped capability mask
// ages out after ServiceConfig.CapTTL, so replication toward a peer that
// stopped advertising falls back to classic frames.
func TestServiceCapTTLExpiry(t *testing.T) {
	net := transport.NewMemNetwork()
	svcConn, _ := net.Endpoint("svc")
	defer svcConn.Close()
	peerConn, _ := net.Endpoint("peer")
	defer peerConn.Close()

	const ttl = 150 * time.Millisecond
	svc, stop := startGroupedService(t, svcConn, []GroupSpec{{
		ID: "alpha", Unified: labelledLine(t, 4), Model: classify.NewKNN(1)}},
		ServiceConfig{Compression: true, CapTTL: ttl})
	defer stop()

	ctx := testCtx(t)
	row := RouteEntry{Group: "alpha", Node: "peer"}
	if err := SendSyncHello(ctx, peerConn, "svc", "alpha", 1, 1, 0, row,
		FrameOpts{accept: acceptDeflate | acceptFloat32}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if opts := svc.FrameOptsFor("peer", true); opts.Compress && opts.Float32 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("service never recorded the gossiped capability mask")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The peer goes silent; past the TTL its mask counts as zero.
	time.Sleep(ttl + 50*time.Millisecond)
	if opts := svc.FrameOptsFor("peer", true); opts.Compress || opts.Float32 {
		t.Fatalf("expired peer still resolves to %+v, want classic", opts)
	}
	if mask := svc.PeerAccept("peer"); mask != 0 {
		t.Fatalf("expired peer mask = %#x, want 0", mask)
	}
}
