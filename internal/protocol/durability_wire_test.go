package protocol

// Tests for the v6 durability additions: the sync-gossip frames and their
// dispatch hook, epoch-stamped routes answers, the Covered bookkeeping on
// model syncs, dynamic shard role flips and the frame inspector the
// faultnet harness matches traffic with.

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/metrics"
	"repro/internal/transport"
)

// TestSyncGossipDispatch checks hello and state frames reach OnSyncGossip
// with every field intact and — being fire-and-forget — draw no response
// frame back to the sender.
func TestSyncGossipDispatch(t *testing.T) {
	net := transport.NewMemNetwork()
	svcConn, _ := net.Endpoint("svc")
	defer svcConn.Close()
	peerConn, _ := net.Endpoint("peer")
	defer peerConn.Close()

	gossip := make(chan SyncGossip, 4)
	_, stop := startGroupedService(t, svcConn, []GroupSpec{{
		ID: "alpha", Unified: labelledLine(t, 4), Model: classify.NewKNN(1)}},
		ServiceConfig{OnSyncGossip: func(g SyncGossip) { gossip <- g }})
	defer stop()
	ctx := testCtx(t)

	row := RouteEntry{Group: "alpha", Node: "peer", Replicas: []string{"svc"}}
	if err := SendSyncHello(ctx, peerConn, "svc", "alpha", 3, 2, 40, row, FrameOpts{}); err != nil {
		t.Fatal(err)
	}
	select {
	case g := <-gossip:
		if !g.Hello || g.From != "peer" || g.Group != "alpha" || g.Seq != 3 ||
			g.Epoch != 2 || g.Covered != 40 || g.Row == nil || g.Row.Node != "peer" {
			t.Fatalf("hello gossip = %+v, want hello from peer seq 3 epoch 2 covered 40", g)
		}
	case <-ctx.Done():
		t.Fatal("hello never dispatched")
	}

	if err := SendSyncState(ctx, peerConn, "svc", "alpha", 5, 2, 44, row, FrameOpts{}); err != nil {
		t.Fatal(err)
	}
	select {
	case g := <-gossip:
		if g.Hello || g.Seq != 5 || g.Covered != 44 {
			t.Fatalf("state gossip = %+v, want state seq 5 covered 44", g)
		}
	case <-ctx.Done():
		t.Fatal("state never dispatched")
	}

	// Fire-and-forget: the service must not have answered either frame.
	quiet, cancel := context.WithTimeout(ctx, 150*time.Millisecond)
	defer cancel()
	if env, err := peerConn.Recv(quiet); err == nil {
		t.Fatalf("gossip drew a response frame: %+v", env)
	}
}

// TestTableAtEpoch checks RoutesFunc-served tables carry their epoch through
// the wire, and static Routes answer epoch 0.
func TestTableAtEpoch(t *testing.T) {
	net := transport.NewMemNetwork()
	liveConn, _ := net.Endpoint("live")
	defer liveConn.Close()
	staticConn, _ := net.Endpoint("static")
	defer staticConn.Close()
	cliConn, _ := net.Endpoint("cli")
	defer cliConn.Close()

	row := RouteEntry{Group: "alpha", Node: "live"}
	_, stopLive := startIngestService(t, liveConn, labelledLine(t, 4), ServiceConfig{
		RoutesFunc: func() ([]RouteEntry, uint64) { return []RouteEntry{row}, 42 }})
	defer stopLive()
	_, stopStatic := startIngestService(t, staticConn, labelledLine(t, 4), ServiceConfig{
		Routes: []RouteEntry{row}})
	defer stopStatic()

	client, err := NewServiceClient(cliConn, "live")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx := testCtx(t)

	entries, epoch, err := client.TableAt(ctx, "live")
	if err != nil || epoch != 42 || len(entries) != 1 || entries[0].Node != "live" {
		t.Fatalf("TableAt live = %+v, %d, %v; want the row under epoch 42", entries, epoch, err)
	}
	entries, epoch, err = client.TableAt(ctx, "static")
	if err != nil || epoch != 0 || len(entries) != 1 {
		t.Fatalf("TableAt static = %+v, %d, %v; want the row under epoch 0", entries, epoch, err)
	}
}

// TestSyncCoveredBookkeeping checks an installed sync records its coverage
// mark, ReportSyncLag drives the staleness gauge (clamping negatives), and
// the next install resets it.
func TestSyncCoveredBookkeeping(t *testing.T) {
	net := transport.NewMemNetwork()
	repConn, _ := net.Endpoint("replica")
	defer repConn.Close()
	leaderConn, _ := net.Endpoint("leader")
	defer leaderConn.Close()

	reg := metrics.NewRegistry()
	svc, stop := startGroupedService(t, repConn, []GroupSpec{{
		ID: "alpha", Unified: labelledLine(t, 4), Model: classify.NewKNN(1),
		SyncFrom: "leader"}}, ServiceConfig{Metrics: reg})
	defer stop()
	ctx := testCtx(t)

	if err := SendModelSync(ctx, leaderConn, "replica", "alpha", 0, 1, 9, encodeFittedKNN(t, 0.5, 7), FrameOpts{}); err != nil {
		t.Fatal(err)
	}
	waitForCounter(t, reg, "service.alpha.sync.installs", 1)
	if seq, err := svc.GroupSyncSeq("alpha"); err != nil || seq != 1 {
		t.Fatalf("GroupSyncSeq = %d, %v; want 1", seq, err)
	}
	if cov, err := svc.GroupSyncCovered("alpha"); err != nil || cov != 9 {
		t.Fatalf("GroupSyncCovered = %d, %v; want 9", cov, err)
	}

	const gauge = "service.alpha.staleness_records"
	if err := svc.ReportSyncLag("alpha", 6); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Gauges[gauge]; got != 6 {
		t.Fatalf("staleness after ReportSyncLag(6) = %d, want 6", got)
	}
	if err := svc.ReportSyncLag("alpha", -3); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Gauges[gauge]; got != 0 {
		t.Fatalf("staleness after ReportSyncLag(-3) = %d, want 0 (clamped)", got)
	}
	if err := svc.ReportSyncLag("alpha", 6); err != nil {
		t.Fatal(err)
	}
	if err := SendModelSync(ctx, leaderConn, "replica", "alpha", 0, 2, 13, encodeFittedKNN(t, 0.5, 8), FrameOpts{}); err != nil {
		t.Fatal(err)
	}
	waitForCounter(t, reg, "service.alpha.sync.installs", 2)
	waitForGauge(t, reg, gauge, 0) // an install catches the replica up
	if err := svc.ReportSyncLag("ghost", 1); !errors.Is(err, ErrUnknownGroup) {
		t.Fatalf("ReportSyncLag on unknown group err = %v, want ErrUnknownGroup", err)
	}
}

// TestGroupRoleFlips drives one shard through the failover role changes:
// promoted to leader it accepts ingest and refuses its old leader's syncs;
// demoted back to follower under a new leader it refuses ingest and installs
// that leader's syncs.
func TestGroupRoleFlips(t *testing.T) {
	net := transport.NewMemNetwork()
	repConn, _ := net.Endpoint("replica")
	defer repConn.Close()
	oldConn, _ := net.Endpoint("old-leader")
	defer oldConn.Close()
	newConn, _ := net.Endpoint("new-leader")
	defer newConn.Close()
	cliConn, _ := net.Endpoint("cli")
	defer cliConn.Close()

	reg := metrics.NewRegistry()
	svc, stop := startGroupedService(t, repConn, []GroupSpec{{
		ID: "alpha", Unified: labelledLine(t, 4), Model: classify.NewKNN(1),
		SyncFrom: "old-leader"}}, ServiceConfig{Metrics: reg})
	defer stop()

	client, err := NewGroupServiceClient(cliConn, "replica", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx := testCtx(t)

	// As a follower it refuses ingest.
	if _, err := client.PushChunk(ctx, [][]float64{{1}}, []int{9}); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("follower push err = %v, want ErrNotLeader", err)
	}

	// Promoted: ingest lands, and the deposed leader's syncs are rejected.
	if err := svc.SetGroupLead("alpha"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.PushChunk(ctx, [][]float64{{1}}, []int{9}); err != nil {
		t.Fatalf("promoted push err = %v", err)
	}
	if err := SendModelSync(ctx, oldConn, "replica", "alpha", 0, 1, 0, encodeFittedKNN(t, 0.5, 7), FrameOpts{}); err != nil {
		t.Fatal(err)
	}
	waitForCounter(t, reg, "service.alpha.sync.rejects", 1)

	// Demoted under a new leader: ingest refused again, its syncs install.
	if err := svc.SetGroupFollow("alpha", "new-leader"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.PushChunk(ctx, [][]float64{{1}}, []int{9}); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("demoted push err = %v, want ErrNotLeader", err)
	}
	if err := SendModelSync(ctx, newConn, "replica", "alpha", 0, 1, 0, encodeFittedKNN(t, 0.5, 8), FrameOpts{}); err != nil {
		t.Fatal(err)
	}
	waitForCounter(t, reg, "service.alpha.sync.installs", 1)
	waitForLabel(t, ctx, client, []float64{0.5}, 8)

	if err := svc.SetGroupFollow("alpha", ""); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("empty leader err = %v, want ErrBadConfig", err)
	}
	if err := svc.SetGroupLead("ghost"); !errors.Is(err, ErrUnknownGroup) {
		t.Fatalf("unknown group err = %v, want ErrUnknownGroup", err)
	}
}

// TestInspectFrame checks the harness-facing frame inspector reads kind,
// group, sequence and epoch out of real frames and refuses junk.
func TestInspectFrame(t *testing.T) {
	net := transport.NewMemNetwork()
	a, _ := net.Endpoint("a")
	defer a.Close()
	b, _ := net.Endpoint("b")
	defer b.Close()
	ctx := testCtx(t)

	if err := SendModelSync(ctx, a, "b", "alpha", 0, 7, 21, []byte{1, 2, 3}, FrameOpts{}); err != nil {
		t.Fatal(err)
	}
	env, err := b.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	info, ok := InspectFrame(env.Payload)
	if !ok || info.Kind != KindModelSync || info.Group != "alpha" || info.Seq != 7 ||
		info.ID != 0 || info.Response {
		t.Fatalf("model-sync InspectFrame = %+v, %v", info, ok)
	}

	row := RouteEntry{Group: "alpha", Node: "a"}
	if err := SendSyncHello(ctx, a, "b", "alpha", 3, 9, 12, row, FrameOpts{}); err != nil {
		t.Fatal(err)
	}
	env, err = b.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	info, ok = InspectFrame(env.Payload)
	if !ok || info.Kind != KindSyncHello || info.Epoch != 9 || info.Seq != 3 {
		t.Fatalf("hello InspectFrame = %+v, %v", info, ok)
	}

	for name, junk := range map[string][]byte{
		"empty":     nil,
		"non-magic": {0xFF, 0x01, 0x02},
		"truncated": {0x53},
	} {
		if _, ok := InspectFrame(junk); ok {
			t.Errorf("InspectFrame accepted %s payload", name)
		}
	}
}

// TestOnModelSyncHook checks the replication-liveness hook: every model-sync
// frame admitted from the shard's sync source reaches OnModelSync — fresh
// installs and replay rejections alike, since either proves the leader is
// alive and publishing — while frames from any other sender are refused
// before the hook and count as no evidence at all.
func TestOnModelSyncHook(t *testing.T) {
	net := transport.NewMemNetwork()
	repConn, _ := net.Endpoint("replica")
	defer repConn.Close()
	leaderConn, _ := net.Endpoint("leader")
	defer leaderConn.Close()
	rogueConn, _ := net.Endpoint("rogue")
	defer rogueConn.Close()

	type call struct {
		group, from string
		seq         uint64
	}
	calls := make(chan call, 4)
	reg := metrics.NewRegistry()
	_, stop := startGroupedService(t, repConn, []GroupSpec{{
		ID: "alpha", Unified: labelledLine(t, 4), Model: classify.NewKNN(1),
		SyncFrom: "leader"}}, ServiceConfig{Metrics: reg,
		OnModelSync: func(group, from string, seq uint64) { calls <- call{group, from, seq} }})
	defer stop()
	ctx := testCtx(t)

	if err := SendModelSync(ctx, leaderConn, "replica", "alpha", 0, 1, 4, encodeFittedKNN(t, 0.5, 7), FrameOpts{}); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-calls:
		if got != (call{"alpha", "leader", 1}) {
			t.Fatalf("install hook call = %+v, want {alpha leader 1}", got)
		}
	case <-ctx.Done():
		t.Fatal("hook never fired for an installed sync")
	}

	// A replayed sequence is rejected as an install but still fires the
	// hook: the duplicate came from the authenticated leader, so it is
	// liveness evidence even though no model changed.
	if err := SendModelSync(ctx, leaderConn, "replica", "alpha", 0, 1, 4, encodeFittedKNN(t, 0.5, 8), FrameOpts{}); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-calls:
		if got != (call{"alpha", "leader", 1}) {
			t.Fatalf("replay hook call = %+v, want {alpha leader 1}", got)
		}
	case <-ctx.Done():
		t.Fatal("hook never fired for a replay-rejected sync")
	}
	waitForCounter(t, reg, "service.alpha.sync.rejects", 1)

	// An unauthorized sender is refused at routing, before the ingest lane:
	// the hook must not treat an imposter's frames as the leader's pulse.
	if err := SendModelSync(ctx, rogueConn, "replica", "alpha", 0, 9, 0, encodeFittedKNN(t, 0.5, 9), FrameOpts{}); err != nil {
		t.Fatal(err)
	}
	waitForCounter(t, reg, "service.alpha.sync.rejects", 2)
	select {
	case got := <-calls:
		t.Fatalf("hook fired for an unauthorized sender: %+v", got)
	default:
	}
}
