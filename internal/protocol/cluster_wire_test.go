package protocol

// Tests for the v5 cluster admin frames — routing-table discovery and
// leader-to-replica model sync — plus the staleness gauge that rides along:
// the protocol-level building blocks internal/cluster assembles into a
// multi-node deployment.

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/metrics"
	"repro/internal/transport"
)

// waitForGauge polls one registry gauge until it equals want.
func waitForGauge(t *testing.T, reg *metrics.Registry, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if got := reg.Snapshot().Gauges[name]; got == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s = %d, want %d", name, reg.Snapshot().Gauges[name], want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// encodeFittedKNN fits a 1-NN on a single labelled record and returns its
// wire blob — the smallest model that answers every query with one label.
func encodeFittedKNN(t *testing.T, at float64, label int) []byte {
	t.Helper()
	knn := classify.NewKNN(1)
	d := labelledLineAt(t, 1, label)
	d.X[0][0] = at
	if err := knn.Fit(d); err != nil {
		t.Fatal(err)
	}
	blob, err := classify.EncodeModel(knn)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestStalenessGauge checks the staleness_records gauge tracks records
// ingested beyond the live fit and retires them on a successful refit swap:
// below the cadence it grows with each accepted chunk, and once the
// cadence-triggered refit lands it falls back to zero (nothing streamed in
// during the fit here).
func TestStalenessGauge(t *testing.T) {
	net := transport.NewMemNetwork()
	svcConn, _ := net.Endpoint("svc")
	defer svcConn.Close()
	cliConn, _ := net.Endpoint("cli")
	defer cliConn.Close()

	reg := metrics.NewRegistry()
	_, stop := startIngestService(t, svcConn, labelledLine(t, 4),
		ServiceConfig{RefitEvery: 4, Metrics: reg})
	defer stop()

	client, err := NewServiceClient(cliConn, "svc")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx := testCtx(t)

	const gauge = "service.default.staleness_records"
	if _, err := client.PushChunk(ctx, [][]float64{{9.9}, {10.1}}, []int{7, 7}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Gauges[gauge]; got != 2 {
		t.Fatalf("staleness after first chunk = %d, want 2", got)
	}
	// Crossing the cadence schedules a refit whose snapshot covers all four
	// stale records; its swap must retire them.
	if _, err := client.PushChunk(ctx, [][]float64{{9.8}, {10.2}}, []int{7, 7}); err != nil {
		t.Fatal(err)
	}
	waitForCounter(t, reg, "service.default.refit.count", 1)
	waitForGauge(t, reg, gauge, 0)
}

// TestRoutesDiscovery checks any node serves its configured routing table to
// a kindRoutes request, and a standalone service answers with an empty one.
func TestRoutesDiscovery(t *testing.T) {
	net := transport.NewMemNetwork()
	svcConn, _ := net.Endpoint("svc")
	defer svcConn.Close()
	soloConn, _ := net.Endpoint("solo")
	defer soloConn.Close()
	cliConn, _ := net.Endpoint("cli")
	defer cliConn.Close()

	table := []RouteEntry{
		{Group: "alpha", Node: "svc", Replicas: []string{"solo"}},
		{Group: "beta", Node: "solo"},
	}
	_, stop := startIngestService(t, svcConn, labelledLine(t, 4), ServiceConfig{Routes: table})
	defer stop()
	_, stopSolo := startIngestService(t, soloConn, labelledLine(t, 4), ServiceConfig{})
	defer stopSolo()

	client, err := NewServiceClient(cliConn, "svc")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx := testCtx(t)

	routes, err := client.Routes(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) != 2 || routes[0].Group != "alpha" || routes[0].Node != "svc" ||
		len(routes[0].Replicas) != 1 || routes[0].Replicas[0] != "solo" ||
		routes[1].Group != "beta" || routes[1].Node != "solo" {
		t.Fatalf("discovered table = %+v, want %+v", routes, table)
	}
	solo, err := client.RoutesAt(ctx, "solo")
	if err != nil {
		t.Fatal(err)
	}
	if len(solo) != 0 {
		t.Fatalf("standalone service served a table: %+v", solo)
	}
}

// startReplicaService serves one replica group (synced from leaderName) and
// returns its metrics registry.
func startReplicaService(t *testing.T, conn transport.Conn, leaderName string) (*metrics.Registry, func()) {
	t.Helper()
	reg := metrics.NewRegistry()
	_, stop := startGroupedService(t, conn, []GroupSpec{{
		ID:       "alpha",
		Unified:  labelledLine(t, 4),
		Model:    classify.NewKNN(1),
		SyncFrom: leaderName,
	}}, ServiceConfig{Metrics: reg})
	return reg, stop
}

// TestModelSyncInstall streams replacement models into a replica shard and
// checks installs are sequenced, idempotent and authorized: a fresh sequence
// swaps the served model in, a replayed or stale sequence is ignored, and a
// peer other than the configured leader cannot install at all.
func TestModelSyncInstall(t *testing.T) {
	net := transport.NewMemNetwork()
	repConn, _ := net.Endpoint("replica")
	defer repConn.Close()
	leaderConn, _ := net.Endpoint("leader")
	defer leaderConn.Close()
	rogueConn, _ := net.Endpoint("rogue")
	defer rogueConn.Close()
	cliConn, _ := net.Endpoint("cli")
	defer cliConn.Close()

	reg, stop := startReplicaService(t, repConn, "leader")
	defer stop()

	client, err := NewGroupServiceClient(cliConn, "replica", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx := testCtx(t)

	// Seq 1 from the leader: the served model becomes "always 7".
	if err := SendModelSync(ctx, leaderConn, "replica", "alpha", 0, 1, 0, encodeFittedKNN(t, 0.5, 7), FrameOpts{}); err != nil {
		t.Fatal(err)
	}
	waitForLabel(t, ctx, client, []float64{0.5}, 7)

	// Replayed seq 1 with a different model: ignored, model stays at 7.
	if err := SendModelSync(ctx, leaderConn, "replica", "alpha", 0, 1, 0, encodeFittedKNN(t, 0.5, 8), FrameOpts{}); err != nil {
		t.Fatal(err)
	}
	waitForCounter(t, reg, "service.alpha.sync.rejects", 1)
	if label, err := client.Classify(ctx, []float64{0.5}); err != nil || label != 7 {
		t.Fatalf("after replay: label, err = %d, %v; want 7, nil", label, err)
	}

	// A peer that is not the sync source cannot install, whatever the seq.
	if err := SendModelSync(ctx, rogueConn, "replica", "alpha", 0, 9, 0, encodeFittedKNN(t, 0.5, 9), FrameOpts{}); err != nil {
		t.Fatal(err)
	}
	waitForCounter(t, reg, "service.alpha.sync.rejects", 2)
	if label, err := client.Classify(ctx, []float64{0.5}); err != nil || label != 7 {
		t.Fatalf("after rogue sync: label, err = %d, %v; want 7, nil", label, err)
	}

	// Seq 2 from the leader advances the model.
	if err := SendModelSync(ctx, leaderConn, "replica", "alpha", 0, 2, 0, encodeFittedKNN(t, 0.5, 8), FrameOpts{}); err != nil {
		t.Fatal(err)
	}
	waitForLabel(t, ctx, client, []float64{0.5}, 8)
	if got := reg.Snapshot().Counters["service.alpha.sync.installs"]; got != 2 {
		t.Fatalf("sync.installs = %d, want 2", got)
	}
	if got := reg.Snapshot().Gauges["service.alpha.sync.seq"]; got != 2 {
		t.Fatalf("sync.seq = %d, want 2", got)
	}
}

// TestModelSyncBadBlob checks a corrupt model blob is refused without
// disturbing the served model.
func TestModelSyncBadBlob(t *testing.T) {
	net := transport.NewMemNetwork()
	repConn, _ := net.Endpoint("replica")
	defer repConn.Close()
	leaderConn, _ := net.Endpoint("leader")
	defer leaderConn.Close()
	cliConn, _ := net.Endpoint("cli")
	defer cliConn.Close()

	reg, stop := startReplicaService(t, repConn, "leader")
	defer stop()

	client, err := NewGroupServiceClient(cliConn, "replica", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx := testCtx(t)

	before, err := client.Classify(ctx, []float64{0.0})
	if err != nil {
		t.Fatal(err)
	}
	if err := SendModelSync(ctx, leaderConn, "replica", "alpha", 0, 1, 0, []byte{0xFF, 0x00, 0x01}, FrameOpts{}); err != nil {
		t.Fatal(err)
	}
	waitForCounter(t, reg, "service.alpha.sync.rejects", 1)
	after, err := client.Classify(ctx, []float64{0.0})
	if err != nil || after != before {
		t.Fatalf("after bad blob: label, err = %d, %v; want %d, nil", after, err, before)
	}
}

// TestReplicaRejectsIngest checks a replica answers pushes with the typed
// ErrNotLeader — the chunk must be re-sent to the leader, not retried here.
func TestReplicaRejectsIngest(t *testing.T) {
	net := transport.NewMemNetwork()
	repConn, _ := net.Endpoint("replica")
	defer repConn.Close()
	cliConn, _ := net.Endpoint("cli")
	defer cliConn.Close()

	_, stop := startReplicaService(t, repConn, "leader")
	defer stop()

	client, err := NewGroupServiceClient(cliConn, "replica", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx := testCtx(t)

	if _, err := client.PushChunk(ctx, [][]float64{{0.5}}, []int{1}); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("push to replica: %v, want ErrNotLeader", err)
	}
	// Classify traffic is exactly what replicas exist for.
	if _, err := client.Classify(ctx, []float64{0.5}); err != nil {
		t.Fatalf("classify on replica: %v", err)
	}
}

// TestClassifyBatchAt checks one client (one connection, one demultiplexer)
// can address multiple miners per call, with responses routed back by ID.
func TestClassifyBatchAt(t *testing.T) {
	net := transport.NewMemNetwork()
	aConn, _ := net.Endpoint("a")
	defer aConn.Close()
	bConn, _ := net.Endpoint("b")
	defer bConn.Close()
	cliConn, _ := net.Endpoint("cli")
	defer cliConn.Close()

	// Disjoint label ranges make the answering node observable.
	_, stopA := startGroupedService(t, aConn, []GroupSpec{{
		ID: "alpha", Unified: labelledLineAt(t, 4, 0), Model: classify.NewKNN(1)}}, ServiceConfig{})
	defer stopA()
	_, stopB := startGroupedService(t, bConn, []GroupSpec{{
		ID: "beta", Unified: labelledLineAt(t, 4, 100), Model: classify.NewKNN(1)}}, ServiceConfig{})
	defer stopB()

	client, err := NewServiceClient(cliConn, "a")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx := testCtx(t)

	labels, err := client.ClassifyBatchAt(ctx, "a", "alpha", [][]float64{{0.0}})
	if err != nil || labels[0] != 0 {
		t.Fatalf("node a: labels, err = %v, %v; want [0], nil", labels, err)
	}
	labels, err = client.ClassifyBatchAt(ctx, "b", "beta", [][]float64{{0.0}})
	if err != nil || labels[0] != 100 {
		t.Fatalf("node b: labels, err = %v, %v; want [100], nil", labels, err)
	}
	// The wrong node rejects the foreign group by name.
	if _, err := client.ClassifyBatchAt(ctx, "b", "alpha", [][]float64{{0.0}}); !errors.Is(err, ErrUnknownGroup) {
		t.Fatalf("foreign group: %v, want ErrUnknownGroup", err)
	}
	// PushChunkAt routes ingest the same way.
	if _, err := client.PushChunkAt(ctx, "b", "beta", [][]float64{{0.9}}, []int{101}); err != nil {
		t.Fatalf("push at node b: %v", err)
	}
	// A send to a node that is not there fails fast without killing the
	// client: the next call on a live node still works.
	cancelCtx, cancel := context.WithTimeout(ctx, 200*time.Millisecond)
	defer cancel()
	if _, err := client.ClassifyBatchAt(cancelCtx, "ghost", "alpha", [][]float64{{0.0}}); err == nil {
		t.Fatal("classify at missing node succeeded")
	}
	labels, err = client.ClassifyBatchAt(ctx, "a", "alpha", [][]float64{{0.0}})
	if err != nil || labels[0] != 0 {
		t.Fatalf("after failed send: labels, err = %v, %v; want [0], nil", labels, err)
	}
}
