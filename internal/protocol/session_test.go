package protocol

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/matrix"
	"repro/internal/perturb"
)

// buildParties partitions a generated dataset across k parties, each with a
// random local perturbation (skipping the optimizer for speed; the protocol
// is agnostic to how G_i was chosen).
func buildParties(t *testing.T, k int, seed int64, sigma float64) ([]PartyInput, *dataset.Dataset) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	d, err := dataset.GenerateByName("Diabetes", rng)
	if err != nil {
		t.Fatal(err)
	}
	norm, _, err := dataset.Normalize(d)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := dataset.Partition(norm, rng, k, dataset.PartitionUniform)
	if err != nil {
		t.Fatal(err)
	}
	parties := make([]PartyInput, 0, k)
	for i, part := range parts {
		p, err := perturb.NewRandom(rng, norm.Dim(), sigma)
		if err != nil {
			t.Fatal(err)
		}
		parties = append(parties, PartyInput{
			Name:         partyName(i),
			Data:         part,
			Perturbation: p,
		})
	}
	return parties, norm
}

func partyName(i int) string { return string(rune('A'+i)) + "-corp" }

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestRunLocalUnifiesAllData(t *testing.T) {
	const k = 5
	parties, pool := buildParties(t, k, 1, 0.05)
	res, err := RunLocal(testCtx(t), SessionConfig{Parties: parties, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unified.Len() != pool.Len() {
		t.Fatalf("unified has %d records, want %d", res.Unified.Len(), pool.Len())
	}
	if res.Unified.Dim() != pool.Dim() {
		t.Fatalf("unified dim %d, want %d", res.Unified.Dim(), pool.Dim())
	}
	if len(res.Submissions) != k {
		t.Fatalf("%d submissions, want %d", len(res.Submissions), k)
	}
}

func TestRunLocalUnifiedEqualsTargetSpace(t *testing.T) {
	// The unified data must equal G_t applied to each party's original
	// records, up to the inherited (rotated) noise. With σ=0 the match is
	// exact — the core §3 guarantee, end to end through the protocol.
	const k = 4
	parties, _ := buildParties(t, k, 2, 0)
	res, err := RunLocal(testCtx(t), SessionConfig{Parties: parties, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Build the expected unified multiset: G_t(X_i) for every party.
	want := make([]*dataset.Dataset, 0, k)
	for _, p := range parties {
		y, err := res.Target.ApplyNoiseless(p.Data.FeaturesT())
		if err != nil {
			t.Fatal(err)
		}
		c := p.Data.Clone()
		if err := c.ReplaceFeaturesT(y); err != nil {
			t.Fatal(err)
		}
		want = append(want, c)
	}
	expected, err := dataset.Merge(want...)
	if err != nil {
		t.Fatal(err)
	}
	// Compare as multisets of rows (order depends on slot iteration).
	if !sameRowMultiset(res.Unified, expected, 1e-8) {
		t.Fatal("unified dataset is not G_t applied to the pooled originals")
	}
}

func TestRunLocalNoiseInherited(t *testing.T) {
	// With σ>0 the unified rows differ from G_t(X) by the rotated noise:
	// per-record distance should be ~σ·√d, never zero, never huge.
	const k = 4
	const sigma = 0.1
	parties, _ := buildParties(t, k, 3, sigma)
	res, err := RunLocal(testCtx(t), SessionConfig{Parties: parties, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]*dataset.Dataset, 0, k)
	for _, p := range parties {
		y, _ := res.Target.ApplyNoiseless(p.Data.FeaturesT())
		c := p.Data.Clone()
		if err := c.ReplaceFeaturesT(y); err != nil {
			t.Fatal(err)
		}
		want = append(want, c)
	}
	expected, _ := dataset.Merge(want...)
	d := float64(res.Unified.Dim())
	// Mean nearest-row distance should be close to E‖Δ‖ ≈ σ√d.
	meanDist := meanNearestRowDistance(res.Unified, expected)
	if meanDist < sigma*math.Sqrt(d)*0.5 || meanDist > sigma*math.Sqrt(d)*1.5 {
		t.Fatalf("mean noise distance %v, want ≈ %v", meanDist, sigma*math.Sqrt(d))
	}
}

func TestRunLocalCoordinatorNeverReceivesData(t *testing.T) {
	const k = 5
	parties, _ := buildParties(t, k, 4, 0.05)
	res, err := RunLocal(testCtx(t), SessionConfig{Parties: parties, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	coordName := parties[k-1].Name
	for sender, receiver := range res.Plan.Receivers {
		if receiver == coordName {
			t.Fatalf("plan routes %s's dataset to the coordinator", sender)
		}
	}
	for slot, forwarder := range res.Submissions {
		if forwarder == coordName {
			t.Fatalf("slot %d was forwarded by the coordinator", slot)
		}
	}
}

func TestRunLocalPermutationIsValid(t *testing.T) {
	const k = 6
	parties, _ := buildParties(t, k, 5, 0.05)
	res, err := RunLocal(testCtx(t), SessionConfig{Parties: parties, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	plan := res.Plan
	if len(plan.Perm) != k {
		t.Fatalf("perm length %d, want %d", len(plan.Perm), k)
	}
	seen := make([]bool, k)
	for _, v := range plan.Perm {
		if v < 0 || v >= k || seen[v] {
			t.Fatalf("perm %v is not a permutation", plan.Perm)
		}
		seen[v] = true
	}
	if plan.Redirect < 0 || plan.Redirect >= k-1 {
		t.Fatalf("redirect %d outside non-coordinator range", plan.Redirect)
	}
	// Every party must have a receiver and a slot.
	if len(plan.Receivers) != k || len(plan.Slots) != k {
		t.Fatalf("plan covers %d receivers / %d slots, want %d", len(plan.Receivers), len(plan.Slots), k)
	}
}

func TestRunLocalIdentifiability(t *testing.T) {
	// Over many runs, each party's dataset should be forwarded by many
	// distinct non-coordinator providers — the mechanism behind
	// π = 1/(k−1).
	const k = 4
	forwarders := make(map[string]map[string]bool) // slot owner -> set of forwarders
	for seed := int64(0); seed < 12; seed++ {
		parties, _ := buildParties(t, k, 100, 0.05) // same data each run
		res, err := RunLocal(testCtx(t), SessionConfig{Parties: parties, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		slotOwner := make(map[uint64]string, k)
		for name, slot := range res.Plan.Slots {
			slotOwner[slot] = name
		}
		for slot, fwd := range res.Submissions {
			owner := slotOwner[slot]
			if forwarders[owner] == nil {
				forwarders[owner] = make(map[string]bool)
			}
			forwarders[owner][fwd] = true
		}
	}
	for owner, set := range forwarders {
		if len(set) < 2 {
			t.Errorf("party %s was always forwarded by the same provider; exchange not randomizing", owner)
		}
	}
}

func TestRunLocalValidation(t *testing.T) {
	ctx := testCtx(t)
	parties, _ := buildParties(t, 3, 6, 0.05)

	if _, err := RunLocal(ctx, SessionConfig{Parties: parties[:2]}); !errors.Is(err, ErrTooFewParty) {
		t.Errorf("k=2 err = %v", err)
	}
	dup := append([]PartyInput(nil), parties...)
	dup[1].Name = dup[0].Name
	if _, err := RunLocal(ctx, SessionConfig{Parties: dup}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("dup name err = %v", err)
	}
	empty := append([]PartyInput(nil), parties...)
	empty[0].Data = nil
	if _, err := RunLocal(ctx, SessionConfig{Parties: empty}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("nil data err = %v", err)
	}
	// Mismatched dims across parties.
	rng := rand.New(rand.NewSource(9))
	other, err := dataset.GenerateByName("Iris", rng)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]PartyInput(nil), parties...)
	bad[1].Data = other
	if _, err := RunLocal(ctx, SessionConfig{Parties: bad}); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("dim err = %v", err)
	}
}

func TestRunLocalDeterministicPerSeed(t *testing.T) {
	const k = 4
	run := func() *SessionResult {
		parties, _ := buildParties(t, k, 7, 0.05)
		res, err := RunLocal(testCtx(t), SessionConfig{Parties: parties, Seed: 23})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !a.Target.Equal(b.Target, 1e-12) {
		t.Fatal("same seed produced different targets")
	}
	if a.Unified.Len() != b.Unified.Len() {
		t.Fatal("same seed produced different unified sizes")
	}
	for i := range a.Plan.Perm {
		if a.Plan.Perm[i] != b.Plan.Perm[i] {
			t.Fatal("same seed produced different permutations")
		}
	}
}

func TestRunLocalContextCancel(t *testing.T) {
	parties, _ := buildParties(t, 3, 8, 0.05)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunLocal(ctx, SessionConfig{Parties: parties, Seed: 1}); err == nil {
		t.Fatal("cancelled run succeeded")
	}
}

// sameRowMultiset compares two datasets as multisets of (row, label) pairs
// within tolerance.
func sameRowMultiset(a, b *dataset.Dataset, eps float64) bool {
	if a.Len() != b.Len() || a.Dim() != b.Dim() {
		return false
	}
	used := make([]bool, b.Len())
outer:
	for i := range a.X {
		for j := range b.X {
			if used[j] || a.Y[i] != b.Y[j] {
				continue
			}
			match := true
			for c := range a.X[i] {
				if math.Abs(a.X[i][c]-b.X[j][c]) > eps {
					match = false
					break
				}
			}
			if match {
				used[j] = true
				continue outer
			}
		}
		return false
	}
	return true
}

// meanNearestRowDistance averages, over rows of a, the distance to the
// nearest same-label row of b.
func meanNearestRowDistance(a, b *dataset.Dataset) float64 {
	var total float64
	for i := range a.X {
		best := math.Inf(1)
		for j := range b.X {
			if a.Y[i] != b.Y[j] {
				continue
			}
			var d2 float64
			for c := range a.X[i] {
				diff := a.X[i][c] - b.X[j][c]
				d2 += diff * diff
			}
			if d2 < best {
				best = d2
			}
		}
		total += math.Sqrt(best)
	}
	return total / float64(a.Len())
}

// TestMinerRejectsCoordinatorSubmission exercises the miner's defence
// directly with a crafted message flow.
func TestMinerRejectsTooFewParties(t *testing.T) {
	net := newTestNet(t)
	conn := net.endpoint(t, "miner")
	if _, err := NewMiner(conn, MinerConfig{Coordinator: "c", Parties: 2}); !errors.Is(err, ErrTooFewParty) {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewMiner(conn, MinerConfig{Parties: 5}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("no-coordinator err = %v", err)
	}
}

func TestCoordinatorConfigValidation(t *testing.T) {
	net := newTestNet(t)
	conn := net.endpoint(t, "coord")
	rng := rand.New(rand.NewSource(1))
	d, _ := dataset.GenerateByName("Iris", rng)
	p, _ := perturb.NewRandom(rng, d.Dim(), 0.05)

	valid := CoordinatorConfig{
		Providers: []string{"a", "b"}, Miner: "m", Data: d, Perturbation: p, Rng: rng,
	}
	if _, err := NewCoordinator(conn, valid); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := valid
	bad.Rng = nil
	if _, err := NewCoordinator(conn, bad); !errors.Is(err, ErrBadConfig) {
		t.Errorf("nil rng err = %v", err)
	}
	bad = valid
	bad.Providers = []string{"a"}
	if _, err := NewCoordinator(conn, bad); !errors.Is(err, ErrTooFewParty) {
		t.Errorf("one provider err = %v", err)
	}
	bad = valid
	bad.Providers = []string{"a", "a"}
	if _, err := NewCoordinator(conn, bad); !errors.Is(err, ErrBadConfig) {
		t.Errorf("dup provider err = %v", err)
	}
	bad = valid
	bad.Miner = ""
	if _, err := NewCoordinator(conn, bad); !errors.Is(err, ErrBadConfig) {
		t.Errorf("no miner err = %v", err)
	}
	bad = valid
	wrongDim, _ := perturb.NewRandom(rng, d.Dim()+1, 0.05)
	bad.Perturbation = wrongDim
	if _, err := NewCoordinator(conn, bad); !errors.Is(err, ErrBadConfig) {
		t.Errorf("dim err = %v", err)
	}
}

func TestProviderConfigValidation(t *testing.T) {
	net := newTestNet(t)
	conn := net.endpoint(t, "prov")
	rng := rand.New(rand.NewSource(2))
	d, _ := dataset.GenerateByName("Iris", rng)
	p, _ := perturb.NewRandom(rng, d.Dim(), 0.05)

	valid := ProviderConfig{Coordinator: "c", Miner: "m", Data: d, Perturbation: p, Rng: rng}
	if _, err := NewProvider(conn, valid); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := valid
	bad.Coordinator = ""
	if _, err := NewProvider(conn, bad); !errors.Is(err, ErrBadConfig) {
		t.Errorf("no coordinator err = %v", err)
	}
	bad = valid
	bad.Data = nil
	if _, err := NewProvider(conn, bad); !errors.Is(err, ErrBadConfig) {
		t.Errorf("no data err = %v", err)
	}
	bad = valid
	bad.Perturbation = nil
	if _, err := NewProvider(conn, bad); !errors.Is(err, ErrBadConfig) {
		t.Errorf("no perturbation err = %v", err)
	}
}

func TestDecodeDatasetPayloadValidation(t *testing.T) {
	m := matrix.Identity(3)
	raw, _ := m.MarshalBinary()
	if _, err := decodeDatasetPayload(raw, []int{0, 1}, "x"); !errors.Is(err, ErrBadMessage) {
		t.Errorf("label count err = %v", err)
	}
	if _, err := decodeDatasetPayload(raw, []int{0, -1, 2}, "x"); !errors.Is(err, ErrBadMessage) {
		t.Errorf("negative label err = %v", err)
	}
	if _, err := decodeDatasetPayload([]byte{1, 2}, []int{0}, "x"); !errors.Is(err, ErrBadMessage) {
		t.Errorf("garbage features err = %v", err)
	}
}

func TestDecodeWireGarbage(t *testing.T) {
	if _, err := decodeWire([]byte("not gob")); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("err = %v", err)
	}
}

func TestMsgKindString(t *testing.T) {
	kinds := []MsgKind{MsgTarget, MsgAssignment, MsgDataset, MsgSubmission, MsgAdaptor, MsgAdaptorMap, MsgKind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("kind %d has empty label", uint8(k))
		}
	}
}
