package protocol

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestRiskEq1(t *testing.T) {
	tests := []struct {
		name                string
		pi, s, rho, b, want float64
	}{
		{"full identifiability, perfect satisfaction at bound", 1, 1, 1, 1, 0},
		{"no identifiability", 0, 1, 0.5, 1, 0},
		{"paper form", 0.25, 0.9, 0.8, 1, 0.25 * (1 - 0.9*0.8)},
		{"bound larger than rho", 1, 1, 0.5, 2, 1 - 0.25},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := RiskEq1(tt.pi, tt.s, tt.rho, tt.b)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("RiskEq1 = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestRiskEq1Validation(t *testing.T) {
	if _, err := RiskEq1(2, 1, 0.5, 1); !errors.Is(err, ErrBadConfig) {
		t.Errorf("π>1 err = %v", err)
	}
	if _, err := RiskEq1(0.5, 1, 2, 1); !errors.Is(err, ErrBadConfig) {
		t.Errorf("ρ>b err = %v", err)
	}
	if _, err := RiskEq1(0.5, 1, 0.5, 0); !errors.Is(err, ErrBadConfig) {
		t.Errorf("b=0 err = %v", err)
	}
	if _, err := RiskEq1(0.5, -1, 0.5, 1); !errors.Is(err, ErrBadConfig) {
		t.Errorf("s<0 err = %v", err)
	}
}

func TestRiskSAPTwoTerms(t *testing.T) {
	// Small k: the miner-side term dominates; large k: the provider-side
	// term does.
	const s, rho, b = 0.9, 0.8, 1.0
	small, err := RiskSAP(2, s, rho, b)
	if err != nil {
		t.Fatal(err)
	}
	wantSmall := (1 - s*rho) / 1 // k−1 = 1
	if math.Abs(small-wantSmall) > 1e-12 {
		t.Errorf("k=2 risk = %v, want %v", small, wantSmall)
	}
	big, err := RiskSAP(100, s, rho, b)
	if err != nil {
		t.Fatal(err)
	}
	wantBig := (b - rho) / b
	if math.Abs(big-wantBig) > 1e-12 {
		t.Errorf("k=100 risk = %v, want %v (provider-side term)", big, wantBig)
	}
	if _, err := RiskSAP(1, s, rho, b); !errors.Is(err, ErrTooFewParty) {
		t.Errorf("k=1 err = %v", err)
	}
}

func TestRiskSAPMonotoneInK(t *testing.T) {
	prev := math.Inf(1)
	for k := 2; k <= 30; k++ {
		r, err := RiskSAP(k, 0.95, 0.7, 1)
		if err != nil {
			t.Fatal(err)
		}
		if r > prev+1e-12 {
			t.Fatalf("risk increased at k=%d: %v > %v", k, r, prev)
		}
		prev = r
	}
}

func TestIdentifiability(t *testing.T) {
	pi, err := Identifiability(5)
	if err != nil || pi != 0.25 {
		t.Fatalf("Identifiability(5) = %v, %v; want 0.25", pi, err)
	}
	if _, err := Identifiability(1); !errors.Is(err, ErrTooFewParty) {
		t.Fatalf("k=1 err = %v", err)
	}
}

func TestMinPartiesRiskThreshold(t *testing.T) {
	// Spot-check against the ARCHITECTURE.md ("Risk accounting") closed form.
	tests := []struct {
		s0, o float64
		want  int
	}{
		{0.90, 0.89, 3},  // 1 + 0.199/0.1 = 2.99
		{0.99, 0.89, 13}, // 1 + 0.1189/0.01 = 12.89
		{0.99, 0.95, 7},  // 1 + 0.0595/0.01 = 6.95
		{0.99, 0.98, 4},  // 1 + 0.0298/0.01 = 3.98
	}
	for _, tt := range tests {
		got, err := MinPartiesRiskThreshold(tt.s0, tt.o)
		if err != nil {
			t.Fatalf("s0=%v o=%v: %v", tt.s0, tt.o, err)
		}
		if got != tt.want {
			t.Errorf("MinParties(%v, %v) = %d, want %d", tt.s0, tt.o, got, tt.want)
		}
	}
	if _, err := MinPartiesRiskThreshold(1, 0.9); !errors.Is(err, ErrBadConfig) {
		t.Errorf("s0=1 err = %v", err)
	}
	if _, err := MinPartiesRiskThreshold(0.5, 2); !errors.Is(err, ErrBadConfig) {
		t.Errorf("o=2 err = %v", err)
	}
}

func TestMinPartiesRiskThresholdShape(t *testing.T) {
	// Figure 4's qualitative shape: increasing in s0, larger for lower
	// optimality rates.
	prev := 0
	for _, s0 := range []float64{0.90, 0.92, 0.94, 0.96, 0.98, 0.99} {
		k, err := MinPartiesRiskThreshold(s0, 0.89)
		if err != nil {
			t.Fatal(err)
		}
		if k < prev {
			t.Fatalf("bound decreased at s0=%v", s0)
		}
		prev = k
	}
	kLow, _ := MinPartiesRiskThreshold(0.99, 0.89)
	kHigh, _ := MinPartiesRiskThreshold(0.99, 0.98)
	if kLow <= kHigh {
		t.Errorf("lower optimality should need more parties: o=0.89→%d vs o=0.98→%d", kLow, kHigh)
	}
}

func TestMinPartiesNoWorseThanSolo(t *testing.T) {
	got, err := MinPartiesNoWorseThanSolo(0.90, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	// 1 + (1−0.855)/(0.05) = 3.9 → 4
	if got != 4 {
		t.Errorf("bound = %d, want 4", got)
	}
	if _, err := MinPartiesNoWorseThanSolo(0.9, 1); !errors.Is(err, ErrBadConfig) {
		t.Errorf("o=1 err = %v", err)
	}
}

func TestPropRiskSAPBounds(t *testing.T) {
	// Eq. 2 always lands in [0, 1] for valid inputs.
	f := func(rawK uint8, rawS, rawRho uint16) bool {
		k := 2 + int(rawK)%30
		s := float64(rawS%1000) / 1000
		rho := float64(rawRho%1000) / 1000
		r, err := RiskSAP(k, s, rho, 1)
		if err != nil {
			return false
		}
		return r >= 0 && r <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropEq1MatchesEq2MinerTerm(t *testing.T) {
	// Eq. 2's miner-side term is exactly Eq. 1 with π = 1/(k−1).
	f := func(rawK uint8, rawS, rawRho uint16) bool {
		k := 2 + int(rawK)%30
		s := float64(rawS%1000) / 1000
		rho := float64(rawRho%1000) / 1000
		pi, err := Identifiability(k)
		if err != nil {
			return false
		}
		eq1, err := RiskEq1(pi, s, rho, 1)
		if err != nil {
			return false
		}
		eq2, err := RiskSAP(k, s, rho, 1)
		if err != nil {
			return false
		}
		// Eq2 = max(provider term, eq1) ≥ eq1.
		return eq2 >= eq1-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
