package protocol

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/classify"
	"repro/internal/dataset"
)

// benchWireBatch builds a realistic perturbed batch: full-entropy mantissas,
// as the perturbation layer produces (gob's trailing-zero-byte float
// compression flatters synthetic round numbers).
func benchWireBatch(records, dim int) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(11))
	x := make([][]float64, records)
	y := make([]int, records)
	for i := range x {
		x[i] = make([]float64, dim)
		for j := range x[i] {
			x[i][j] = rng.NormFloat64()
		}
		y[i] = i % 3
	}
	return x, y
}

// BenchmarkWireBytes measures the encoded size of the hot-path frames —
// stream-ingest chunks and model-sync replication — under each negotiable
// wire format: classic float64, DEFLATE, packed float32, and both. The
// headline metric is bytes/frame (ns/op tracks the encode cost of the
// saved bytes); the float32+deflate row is the issue's ≥2x reduction bound.
func BenchmarkWireBytes(b *testing.B) {
	batch, labels := benchWireBatch(256, 8)
	train, err := dataset.New("bench", batch, labels)
	if err != nil {
		b.Fatal(err)
	}
	knn := classify.NewKNN(3)
	if err := knn.Fit(train); err != nil {
		b.Fatal(err)
	}
	plainModel, err := classify.EncodeModel(knn)
	if err != nil {
		b.Fatal(err)
	}
	packedModel, err := classify.EncodeModelFloat32(knn)
	if err != nil {
		b.Fatal(err)
	}

	variants := []struct {
		name string
		opts frameOpts
	}{
		{"plain", frameOpts{}},
		{"deflate", frameOpts{deflate: true}},
		{"float32", frameOpts{f32: true}},
		{"deflate+float32", frameOpts{deflate: true, f32: true}},
	}

	for _, v := range variants {
		ingest := &serviceWire{ID: 1, Kind: kindIngest, Group: "alpha",
			Batch: batch, Labels: labels, Accept: acceptFloat32 | acceptDeflate}
		b.Run(fmt.Sprintf("ingest/%s", v.name), func(b *testing.B) {
			var size int
			for i := 0; i < b.N; i++ {
				payload, err := encodeServiceFrame(ingest, v.opts)
				if err != nil {
					b.Fatal(err)
				}
				size = len(payload)
			}
			b.ReportMetric(float64(size), "bytes/frame")
		})
	}

	for _, v := range variants {
		// Model sync: float32 selects the packed model blob (what the
		// cluster publisher sends to float32-accepting replicas); the
		// frame-level f32 flag has no batch to act on.
		model := plainModel
		if v.opts.f32 {
			model = packedModel
		}
		sync := &serviceWire{Kind: kindModelSync, Group: "alpha", Seq: 3,
			Covered: 256, Model: model, Accept: acceptFloat32 | acceptDeflate}
		b.Run(fmt.Sprintf("modelsync/%s", v.name), func(b *testing.B) {
			var size int
			for i := 0; i < b.N; i++ {
				payload, err := encodeServiceFrame(sync, v.opts)
				if err != nil {
					b.Fatal(err)
				}
				size = len(payload)
			}
			b.ReportMetric(float64(size), "bytes/frame")
		})
	}
}

// BenchmarkFrameDecode measures the decode side of each wire format on the
// same ingest frame, pooled inflater and float32 expansion included.
func BenchmarkFrameDecode(b *testing.B) {
	batch, labels := benchWireBatch(256, 8)
	variants := []struct {
		name string
		opts frameOpts
	}{
		{"plain", frameOpts{}},
		{"deflate", frameOpts{deflate: true}},
		{"float32", frameOpts{f32: true}},
		{"deflate+float32", frameOpts{deflate: true, f32: true}},
	}
	for _, v := range variants {
		payload, err := encodeServiceFrame(&serviceWire{ID: 1, Kind: kindIngest,
			Group: "alpha", Batch: batch, Labels: labels}, v.opts)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w, err := decodeServiceWire(payload)
				if err != nil {
					b.Fatal(err)
				}
				if len(w.Batch) != len(batch) {
					b.Fatalf("decoded %d records, want %d", len(w.Batch), len(batch))
				}
			}
		})
	}
}
