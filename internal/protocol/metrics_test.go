package protocol

// Tests for the serving layer's instrumentation (ServiceConfig.Metrics) and
// the per-group Workers/MaxBatch overrides on GroupSpec.

import (
	"errors"
	"testing"

	"repro/internal/classify"
	"repro/internal/metrics"
	"repro/internal/transport"
)

// TestGroupSpecValidationMessages drives the per-group override rejections
// through NewGroupedMiningService and asserts the exact message, matching
// the facade's option-validation tables.
func TestGroupSpecValidationMessages(t *testing.T) {
	net := transport.NewMemNetwork()
	conn, err := net.Endpoint("svc")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	d := labelledLine(t, 4)

	for _, tc := range []struct {
		name string
		spec GroupSpec
		want string
	}{
		{"negative workers",
			GroupSpec{ID: "a", Unified: d, Model: classify.NewKNN(1), Workers: -1},
			`protocol: bad configuration: group "a" has a negative worker count -1`},
		{"negative batch cap",
			GroupSpec{ID: "a", Unified: d, Model: classify.NewKNN(1), MaxBatch: -2},
			`protocol: bad configuration: group "a" has a negative batch cap -2`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewGroupedMiningService(conn, []GroupSpec{tc.spec}, ServiceConfig{})
			if err == nil {
				t.Fatal("spec accepted")
			}
			if !errors.Is(err, ErrBadConfig) {
				t.Fatalf("err = %v, want ErrBadConfig", err)
			}
			if err.Error() != tc.want {
				t.Fatalf("err = %q, want %q", err.Error(), tc.want)
			}
		})
	}
}

// TestPerGroupWorkersAndMaxBatch checks the override/inherit contract of
// GroupSpec.Workers and GroupSpec.MaxBatch against the service-wide config.
func TestPerGroupWorkersAndMaxBatch(t *testing.T) {
	d := labelledLine(t, 4)
	cfg := ServiceConfig{Workers: 3, MaxBatch: 100}.withDefaults()

	inherit, err := newModelShard(GroupSpec{ID: "i", Unified: d, Model: classify.NewKNN(1)}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if inherit.workers != 3 || inherit.limits.Load().maxBatch != 100 {
		t.Fatalf("inheriting shard got workers=%d maxBatch=%d, want 3/100",
			inherit.workers, inherit.limits.Load().maxBatch)
	}
	override, err := newModelShard(
		GroupSpec{ID: "o", Unified: d, Model: classify.NewKNN(1), Workers: 1, MaxBatch: 2}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if override.workers != 1 || override.limits.Load().maxBatch != 2 {
		t.Fatalf("overriding shard got workers=%d maxBatch=%d, want 1/2",
			override.workers, override.limits.Load().maxBatch)
	}
}

// TestPerGroupMaxBatchEnforced serves two groups with different batch caps
// from one service and checks the cap is enforced per group, not
// service-wide.
func TestPerGroupMaxBatchEnforced(t *testing.T) {
	net := transport.NewMemNetwork()
	svcConn, _ := net.Endpoint("svc")
	defer svcConn.Close()

	groups := []GroupSpec{
		{ID: "small", Unified: labelledLineAt(t, 4, 0), Model: classify.NewKNN(1), MaxBatch: 2},
		{ID: "big", Unified: labelledLineAt(t, 4, 100), Model: classify.NewKNN(1)},
	}
	_, stop := startGroupedService(t, svcConn, groups, ServiceConfig{MaxBatch: 64})
	defer stop()
	ctx := testCtx(t)

	batch := [][]float64{{0.1}, {0.2}, {0.3}}
	small := groupClient(t, net, "cli-small", "svc", "small")
	if _, err := small.ClassifyBatch(ctx, batch); !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("3-record batch to capped group: err = %v, want ErrBatchTooLarge", err)
	}

	big := groupClient(t, net, "cli-big", "svc", "big")
	if _, err := big.ClassifyBatch(ctx, batch); err != nil {
		t.Fatalf("3-record batch to uncapped group: %v", err)
	}
}

// groupClient opens a fresh endpoint (a ServiceClient owns its connection's
// receive side, so clients never share one) and binds a group client to it,
// both released at cleanup.
func groupClient(t *testing.T, net transport.Network, name, miner, group string) *ServiceClient {
	t.Helper()
	conn, err := net.Endpoint(name)
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewGroupServiceClient(conn, miner, group)
	if err != nil {
		conn.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		client.Close()
		conn.Close()
	})
	return client
}

// TestServiceMetricsCounters runs a scripted workload — queries, stream
// ingest with a refit, an unknown-group frame, a non-member frame — against
// an instrumented two-group service and checks every advertised counter,
// including that group beta's namespace stays untouched by alpha's traffic.
func TestServiceMetricsCounters(t *testing.T) {
	net := transport.NewMemNetwork()
	svcConn, _ := net.Endpoint("svc")
	defer svcConn.Close()

	reg := metrics.NewRegistry()
	groups := []GroupSpec{
		{ID: "alpha", Unified: labelledLineAt(t, 4, 0), Model: classify.NewKNN(1), RefitEvery: 2},
		{ID: "beta", Unified: labelledLineAt(t, 4, 100), Model: classify.NewKNN(1),
			Members: []string{"someone-else"}},
	}
	_, stop := startGroupedService(t, svcConn, groups, ServiceConfig{Metrics: reg})
	defer stop()
	ctx := testCtx(t)

	alpha := groupClient(t, net, "cli-alpha", "svc", "alpha")
	// 3 classify frames: two 1-record, one 2-record.
	for i := 0; i < 2; i++ {
		if _, err := alpha.Classify(ctx, []float64{0.25}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := alpha.ClassifyBatch(ctx, [][]float64{{0.1}, {0.9}}); err != nil {
		t.Fatal(err)
	}
	// 2 ingest chunks of 1 record each; RefitEvery=2 → exactly one refit.
	for i := 0; i < 2; i++ {
		if _, err := alpha.PushChunk(ctx, [][]float64{{1.5}}, []int{7}); err != nil {
			t.Fatal(err)
		}
	}
	// One unknown-group rejection and one membership rejection.
	ghost := groupClient(t, net, "cli-ghost", "svc", "gamma")
	if _, err := ghost.Classify(ctx, []float64{0.5}); !errors.Is(err, ErrUnknownGroup) {
		t.Fatalf("unknown group err = %v", err)
	}
	outsider := groupClient(t, net, "cli-outsider", "svc", "beta")
	if _, err := outsider.Classify(ctx, []float64{0.5}); !errors.Is(err, ErrNotMember) {
		t.Fatalf("non-member err = %v", err)
	}

	snap := reg.Snapshot()
	for counterName, want := range map[string]int64{
		"service.alpha.requests":           3,
		"service.alpha.ingest.chunks":      2,
		"service.alpha.ingest.records":     2,
		"service.alpha.refit.count":        1,
		"service.alpha.refit.errors":       0,
		"service.alpha.rejects.not_member": 0,
		"service.beta.requests":            0,
		"service.beta.ingest.chunks":       0,
		"service.beta.rejects.not_member":  1,
		"service.rejects.unknown_group":    1,
	} {
		if got := snap.Counters[counterName]; got != want {
			t.Errorf("%s = %d, want %d", counterName, got, want)
		}
	}
	bs := snap.Histograms["service.alpha.batch_size"]
	if bs.Count != 3 || bs.Sum != 4 || bs.Max != 2 {
		t.Errorf("alpha batch_size = %+v, want count 3, sum 4, max 2", bs)
	}
	if rf := snap.Histograms["service.alpha.refit.ns"]; rf.Count != 1 || rf.Sum <= 0 {
		t.Errorf("alpha refit.ns = %+v, want one positive timing", rf)
	}
	if bbs := snap.Histograms["service.beta.batch_size"]; bbs.Count != 0 {
		t.Errorf("beta batch_size = %+v, want untouched (cross-group metric leak)", bbs)
	}
}
