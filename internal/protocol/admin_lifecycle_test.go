package protocol

// Lifecycle tests for the v8 admin control plane: registering, evicting and
// rate-limiting groups on a live service, with client traffic in flight. Run
// with -race — the whole point of the shard lifecycle design is that admin
// mutations and the serving path never touch shared state unsynchronized.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/transport"
)

// offsetLine builds an n-record 1-D dataset whose record i sits at i/n and
// carries label offset+i, so groups answer from disjoint label ranges.
func offsetLine(t *testing.T, n, offset int) *dataset.Dataset {
	t.Helper()
	x := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		x[i] = []float64{float64(i) / float64(n)}
		y[i] = offset + i
	}
	d, err := dataset.New("line", x, y)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// adminSpecFor wires a dataset into a registration spec the way an operator
// client would: fit locally, encode, ship records and blob.
func adminSpecFor(t *testing.T, id string, d *dataset.Dataset, quota GroupQuota) AdminGroupSpec {
	t.Helper()
	model := classify.NewKNN(1)
	if err := model.Fit(d.Clone()); err != nil {
		t.Fatal(err)
	}
	blob, err := classify.EncodeModel(model)
	if err != nil {
		t.Fatal(err)
	}
	return AdminGroupSpec{ID: id, X: d.X, Y: d.Y, Model: blob, Quota: quota}
}

// startAdminService serves the given groups with the admin plane armed and
// returns the transport net plus a cleanup.
func startAdminService(t *testing.T, specs []GroupSpec, cfg ServiceConfig) (*transport.MemNetwork, func()) {
	t.Helper()
	net := transport.NewMemNetwork()
	conn, err := net.Endpoint("svc")
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewGroupedMiningService(conn, specs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := svc.Serve(ctx); err != nil {
			t.Error(err)
		}
	}()
	cleanup := func() {
		cancel()
		<-done
		conn.Close()
	}
	return net, cleanup
}

// groupClient opens a group-stamped service client on its own endpoint.
func adminGroupClient(t *testing.T, net *transport.MemNetwork, name, group string) *ServiceClient {
	t.Helper()
	conn, err := net.Endpoint(name)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewGroupServiceClient(conn, "svc", group)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close(); conn.Close() })
	return c
}

// adminClient opens an authenticated admin client on its own endpoint.
func adminClient(t *testing.T, net *transport.MemNetwork, name, token string) *AdminClient {
	t.Helper()
	conn, err := net.Endpoint(name)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAdminClient(conn, "svc", token)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); conn.Close() })
	return a
}

// TestAdminRegisterWhileServing registers a new group while another group's
// queries are in full flight: the hammered group never misses a beat, and the
// new group answers the moment RegisterGroup returns.
func TestAdminRegisterWhileServing(t *testing.T) {
	net, cleanup := startAdminService(t,
		[]GroupSpec{{ID: "g-a", Unified: offsetLine(t, 4, 0), Model: classify.NewKNN(1)}},
		ServiceConfig{AdminToken: "tok", Workers: 2})
	defer cleanup()
	ctx := testCtx(t)

	hammer := adminGroupClient(t, net, "hammer", "g-a")
	stop := make(chan struct{})
	var hammerErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if label, err := hammer.Classify(ctx, []float64{0.01}); err != nil {
				hammerErr = err
				return
			} else if label != 0 {
				hammerErr = errors.New("g-a answered a foreign label")
				return
			}
		}
	}()

	admin := adminClient(t, net, "admin", "tok")
	if err := admin.RegisterGroup(ctx, adminSpecFor(t, "g-b", offsetLine(t, 4, 100), GroupQuota{})); err != nil {
		t.Fatalf("register g-b: %v", err)
	}
	// A duplicate registration is refused with the typed code.
	if err := admin.RegisterGroup(ctx, adminSpecFor(t, "g-b", offsetLine(t, 4, 100), GroupQuota{})); !errors.Is(err, ErrGroupExists) {
		t.Fatalf("duplicate register err = %v, want ErrGroupExists", err)
	}

	fresh := adminGroupClient(t, net, "fresh", "g-b")
	label, err := fresh.Classify(ctx, []float64{0.01})
	if err != nil {
		t.Fatalf("g-b classify after register: %v", err)
	}
	if label != 100 {
		t.Fatalf("g-b answered %d, want 100", label)
	}

	close(stop)
	wg.Wait()
	if hammerErr != nil {
		t.Fatalf("g-a traffic during register: %v", hammerErr)
	}
}

// TestAdminEvictWhileIngesting evicts a group that is being streamed into:
// the pusher sees clean typed errors once the group is gone, the sibling
// group keeps serving, and nothing races or deadlocks.
func TestAdminEvictWhileIngesting(t *testing.T) {
	net, cleanup := startAdminService(t,
		[]GroupSpec{
			{ID: "g-a", Unified: offsetLine(t, 4, 0), Model: classify.NewKNN(1), RefitEvery: 2},
			{ID: "g-b", Unified: offsetLine(t, 4, 100), Model: classify.NewKNN(1)},
		},
		ServiceConfig{AdminToken: "tok", Workers: 2})
	defer cleanup()
	ctx := testCtx(t)

	pusher := adminGroupClient(t, net, "pusher", "g-a")
	stop := make(chan struct{})
	var pushErr error
	sawUnknown := false
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_, err := pusher.PushChunk(ctx, [][]float64{{0.5}}, []int{3})
			switch {
			case err == nil, errors.Is(err, ErrRefit), errors.Is(err, ErrBusy):
			case errors.Is(err, ErrUnknownGroup):
				// The evict landed mid-stream: exactly the typed rejection a
				// producer needs to stop pushing.
				sawUnknown = true
				return
			default:
				pushErr = err
				return
			}
		}
	}()

	// Let a few chunks land before the rug-pull.
	time.Sleep(20 * time.Millisecond)
	admin := adminClient(t, net, "admin", "tok")
	if err := admin.EvictGroup(ctx, "g-a"); err != nil {
		t.Fatalf("evict g-a: %v", err)
	}
	close(stop)
	wg.Wait()
	if pushErr != nil {
		t.Fatalf("pusher error: %v", pushErr)
	}
	_ = sawUnknown // the pusher may also have stopped before its next push

	// The evicted group answers ErrUnknownGroup; the sibling is untouched.
	gone := adminGroupClient(t, net, "gone", "g-a")
	if _, err := gone.Classify(ctx, []float64{0.01}); !errors.Is(err, ErrUnknownGroup) {
		t.Fatalf("evicted group err = %v, want ErrUnknownGroup", err)
	}
	alive := adminGroupClient(t, net, "alive", "g-b")
	if label, err := alive.Classify(ctx, []float64{0.01}); err != nil || label != 100 {
		t.Fatalf("sibling after evict: label %d err %v, want 100 nil", label, err)
	}
	// A second evict of the same group is a typed miss, not a hang.
	if err := admin.EvictGroup(ctx, "g-a"); !errors.Is(err, ErrUnknownGroup) {
		t.Fatalf("double evict err = %v, want ErrUnknownGroup", err)
	}
}

// TestAdminEvictThenReRegister recycles a group ID: evicting g-x and
// registering a different g-x under the same name must serve the new
// training set, proving the old shard fully died.
func TestAdminEvictThenReRegister(t *testing.T) {
	net, cleanup := startAdminService(t,
		[]GroupSpec{{ID: "g-x", Unified: offsetLine(t, 4, 0), Model: classify.NewKNN(1)}},
		ServiceConfig{AdminToken: "tok", Workers: 1})
	defer cleanup()
	ctx := testCtx(t)

	admin := adminClient(t, net, "admin", "tok")
	old := adminGroupClient(t, net, "old", "g-x")
	if label, err := old.Classify(ctx, []float64{0.01}); err != nil || label != 0 {
		t.Fatalf("pre-evict: label %d err %v, want 0 nil", label, err)
	}
	if err := admin.EvictGroup(ctx, "g-x"); err != nil {
		t.Fatalf("evict: %v", err)
	}
	if _, err := old.Classify(ctx, []float64{0.01}); !errors.Is(err, ErrUnknownGroup) {
		t.Fatalf("post-evict err = %v, want ErrUnknownGroup", err)
	}
	if err := admin.RegisterGroup(ctx, adminSpecFor(t, "g-x", offsetLine(t, 4, 500), GroupQuota{})); err != nil {
		t.Fatalf("re-register: %v", err)
	}
	reborn := adminGroupClient(t, net, "reborn", "g-x")
	if label, err := reborn.Classify(ctx, []float64{0.01}); err != nil || label != 500 {
		t.Fatalf("re-registered group: label %d err %v, want 500 nil", label, err)
	}
}

// TestAdminQuotaExhaustion drives a quota-limited group over its burst: the
// over-quota chunk bounces with a typed ErrQuota within one round trip (no
// backoff retries — quota is policy, not congestion), the rejection counts
// under rejects.quota, and records below the burst still land.
func TestAdminQuotaExhaustion(t *testing.T) {
	reg := metrics.NewRegistry()
	net, cleanup := startAdminService(t,
		[]GroupSpec{{ID: "g-q", Unified: offsetLine(t, 4, 0), Model: classify.NewKNN(1),
			Quota: GroupQuota{RecordsPerSec: 1, Burst: 2}}},
		ServiceConfig{AdminToken: "tok", Workers: 1, Metrics: reg})
	defer cleanup()
	ctx := testCtx(t)

	client := adminGroupClient(t, net, "cli", "g-q")
	start := time.Now()
	_, err := client.PushChunk(ctx, [][]float64{{0.1}, {0.2}, {0.3}}, []int{1, 1, 1})
	elapsed := time.Since(start)
	if !errors.Is(err, ErrQuota) {
		t.Fatalf("over-quota push err = %v, want ErrQuota", err)
	}
	// One round trip: the client's busy backoff (tries with sleeps in the
	// hundreds of milliseconds) must NOT engage for a quota rejection.
	if elapsed > time.Second {
		t.Fatalf("quota rejection took %v — the client retried a policy error", elapsed)
	}
	if got := reg.Snapshot().Counters["service.g-q.rejects.quota"]; got != 1 {
		t.Fatalf("rejects.quota = %d, want 1", got)
	}
	// A failed take spends nothing: the 2-record burst is still available.
	if _, err := client.PushChunk(ctx, [][]float64{{0.1}, {0.2}}, []int{1, 1}); err != nil &&
		!errors.Is(err, ErrRefit) {
		t.Fatalf("in-quota push: %v", err)
	}
	// An admin update lifting the quota takes effect on the next frame.
	admin := adminClient(t, net, "admin", "tok")
	if err := admin.UpdateGroup(ctx, "g-q", AdminUpdate{SetQuota: true}); err != nil {
		t.Fatalf("update: %v", err)
	}
	if _, err := client.PushChunk(ctx, [][]float64{{0.1}, {0.2}, {0.3}}, []int{1, 1, 1}); err != nil &&
		!errors.Is(err, ErrRefit) {
		t.Fatalf("post-update push: %v", err)
	}
}
