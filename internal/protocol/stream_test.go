package protocol

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/dataset"
	"repro/internal/transport"
)

// startIngestService is startService with a handle on the MiningService so
// ingest tests can watch its counters.
func startIngestService(t *testing.T, conn transport.Conn, d *dataset.Dataset, cfg ServiceConfig) (*MiningService, func()) {
	t.Helper()
	svc, err := NewMiningService(conn, &MinerResult{Unified: d}, classify.NewKNN(1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := svc.Serve(ctx); err != nil {
			t.Error(err)
		}
	}()
	return svc, func() {
		cancel()
		<-done
	}
}

// TestPushChunkGrowsServedModel streams new labeled records into a serving
// miner and checks that, once the refit cadence fires, queries near the new
// records are answered with the new labels — the served model genuinely
// learned from the stream.
func TestPushChunkGrowsServedModel(t *testing.T) {
	net := transport.NewMemNetwork()
	svcConn, _ := net.Endpoint("svc")
	defer svcConn.Close()
	cliConn, _ := net.Endpoint("cli")
	defer cliConn.Close()

	// Initial model: 4 records on a line, labels 0..3, all below 1.0.
	base := labelledLine(t, 4)
	svc, stop := startIngestService(t, svcConn, base, ServiceConfig{RefitEvery: 2})
	defer stop()

	client, err := NewServiceClient(cliConn, "svc")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ctx := testCtx(t)
	// Before the push, a record near 10.0 maps to the nearest base label.
	before, err := client.Classify(ctx, []float64{10.0})
	if err != nil {
		t.Fatal(err)
	}
	if before != 3 {
		t.Fatalf("pre-ingest label = %d, want 3 (nearest base record)", before)
	}

	// Push a chunk of far-away records with a fresh label; RefitEvery=2 so
	// this chunk alone schedules a refit, which fits and swaps in the
	// background — the new label appears once the swap lands.
	total, err := client.PushChunk(ctx, [][]float64{{9.9}, {10.1}}, []int{7, 7})
	if err != nil {
		t.Fatal(err)
	}
	if total != 6 {
		t.Fatalf("accepted total = %d, want 6", total)
	}
	if got := svc.Ingested(); got != 2 {
		t.Fatalf("Ingested() = %d, want 2", got)
	}

	waitForLabel(t, ctx, client, []float64{10.0}, 7)
}

// TestPushChunkRefitCadence checks that refits wait for RefitEvery records:
// a chunk below the cadence leaves the served model unchanged, and crossing
// the cadence swaps it.
func TestPushChunkRefitCadence(t *testing.T) {
	net := transport.NewMemNetwork()
	svcConn, _ := net.Endpoint("svc")
	defer svcConn.Close()
	cliConn, _ := net.Endpoint("cli")
	defer cliConn.Close()

	base := labelledLine(t, 4)
	_, stop := startIngestService(t, svcConn, base, ServiceConfig{RefitEvery: 4})
	defer stop()

	client, err := NewServiceClient(cliConn, "svc")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx := testCtx(t)

	if _, err := client.PushChunk(ctx, [][]float64{{9.9}, {10.1}}, []int{7, 7}); err != nil {
		t.Fatal(err)
	}
	label, err := client.Classify(ctx, []float64{10.0})
	if err != nil {
		t.Fatal(err)
	}
	if label != 3 {
		t.Fatalf("label before cadence = %d, want 3 (old model still serving)", label)
	}

	if _, err := client.PushChunk(ctx, [][]float64{{9.8}, {10.2}}, []int{7, 7}); err != nil {
		t.Fatal(err)
	}
	waitForLabel(t, ctx, client, []float64{10.0}, 7)
}

// TestPushChunkRejections exercises the typed ingest error paths without
// killing the service or the client.
func TestPushChunkRejections(t *testing.T) {
	net := transport.NewMemNetwork()
	svcConn, _ := net.Endpoint("svc")
	defer svcConn.Close()
	cliConn, _ := net.Endpoint("cli")
	defer cliConn.Close()

	base := labelledLine(t, 4)
	_, stop := startIngestService(t, svcConn, base, ServiceConfig{MaxBatch: 2})
	defer stop()

	client, err := NewServiceClient(cliConn, "svc")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx := testCtx(t)

	// Client-side rejections (no round trip).
	if _, err := client.PushChunk(ctx, nil, nil); !errors.Is(err, ErrBadChunk) {
		t.Fatalf("empty chunk: %v, want ErrBadChunk", err)
	}
	if _, err := client.PushChunk(ctx, [][]float64{{1}}, []int{1, 2}); !errors.Is(err, ErrBadChunk) {
		t.Fatalf("label mismatch: %v, want ErrBadChunk", err)
	}

	// Service-side rejections.
	if _, err := client.PushChunk(ctx, [][]float64{{1}, {2}, {3}}, []int{0, 0, 0}); !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("oversized chunk: %v, want ErrBatchTooLarge", err)
	}
	if _, err := client.PushChunk(ctx, [][]float64{{1, 2}}, []int{0}); !errors.Is(err, ErrBadChunk) {
		t.Fatalf("wrong dim: %v, want ErrBadChunk", err)
	}
	if _, err := client.PushChunk(ctx, [][]float64{{1}}, []int{-1}); !errors.Is(err, ErrBadChunk) {
		t.Fatalf("negative label: %v, want ErrBadChunk", err)
	}

	// The service survived all of it and still answers queries.
	if _, err := client.Classify(ctx, []float64{0.1}); err != nil {
		t.Fatalf("service died after rejections: %v", err)
	}
}

// brittleModel is a classifier whose refits fail after the first
// (construction-time) fit; clones — the fresh instances background refits
// fit — share the attempt counter.
type brittleModel struct {
	inner classify.Classifier
	fits  *atomic.Int64
}

func newBrittleModel(inner classify.Classifier) *brittleModel {
	return &brittleModel{inner: inner, fits: &atomic.Int64{}}
}

func (m *brittleModel) Fit(d *dataset.Dataset) error {
	if m.fits.Add(1) > 1 {
		return errors.New("degenerate training set")
	}
	return m.inner.Fit(d)
}

func (m *brittleModel) Predict(x []float64) (int, error) { return m.inner.Predict(x) }

func (m *brittleModel) Clone() classify.Classifier {
	return &brittleModel{inner: classify.NewKNN(1), fits: m.fits}
}

// TestPushChunkRefitFailure checks the refit-failure contract: the chunk is
// folded in regardless (the triggering push succeeds — refits run in the
// background), the failure surfaces as the typed ErrRefit on a later ingest
// answer with that chunk also accepted, and the service keeps serving on
// its previous fit throughout.
func TestPushChunkRefitFailure(t *testing.T) {
	net := transport.NewMemNetwork()
	svcConn, _ := net.Endpoint("svc")
	defer svcConn.Close()
	cliConn, _ := net.Endpoint("cli")
	defer cliConn.Close()

	base := labelledLine(t, 4)
	model := newBrittleModel(classify.NewKNN(1))
	svc, err := NewMiningService(svcConn, &MinerResult{Unified: base}, model, ServiceConfig{RefitEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := svc.Serve(ctx); err != nil {
			t.Error(err)
		}
	}()
	defer func() {
		cancel()
		<-done
	}()

	client, err := NewServiceClient(cliConn, "svc")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	tctx := testCtx(t)

	accepted, err := client.PushChunk(tctx, [][]float64{{9.9}}, []int{7})
	if err != nil {
		t.Fatalf("triggering push err = %v, want nil (refit runs aside)", err)
	}
	if accepted != 5 {
		t.Fatalf("accepted = %d, want 5 (chunk landed)", accepted)
	}
	// Every push re-triggers a failing refit (RefitEvery: 1); the pending
	// failure must surface as ErrRefit on a later ingest answer, with that
	// chunk accepted too.
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; ; i++ {
		accepted, err = client.PushChunk(tctx, [][]float64{{9.9 + float64(i)/100}}, []int{7})
		if errors.Is(err, ErrRefit) {
			break
		}
		if err != nil {
			t.Fatalf("push %d err = %v, want nil or ErrRefit", i, err)
		}
		if time.Now().After(deadline) {
			t.Fatal("refit failure never reported as ErrRefit on an ingest answer")
		}
	}
	if accepted != svc.Ingested()+4 {
		t.Fatalf("accepted = %d alongside ErrRefit, want %d (chunk landed)", accepted, svc.Ingested()+4)
	}
	// Previous fit still serves.
	if label, err := client.Classify(tctx, []float64{0.1}); err != nil || label != 0 {
		t.Fatalf("query after refit failures = %d, %v; want 0 from the original fit", label, err)
	}
}

// TestPushChunkConcurrentWithQueries hammers the service with concurrent
// pushers and queriers under -race: appends, refits and predictions must not
// race.
func TestPushChunkConcurrentWithQueries(t *testing.T) {
	net := transport.NewMemNetwork()
	svcConn, _ := net.Endpoint("svc")
	defer svcConn.Close()
	cliConn, _ := net.Endpoint("cli")
	defer cliConn.Close()

	base := labelledLine(t, 8)
	svc, stop := startIngestService(t, svcConn, base, ServiceConfig{RefitEvery: 8, Workers: 4})
	defer stop()

	client, err := NewServiceClient(cliConn, "svc")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx := testCtx(t)

	const pushers, queriers, rounds = 3, 3, 20
	var wg sync.WaitGroup
	errs := make(chan error, (pushers+queriers)*rounds)
	for p := 0; p < pushers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				v := 2 + float64(p*rounds+r)/10
				if _, err := client.PushChunk(ctx, [][]float64{{v}}, []int{5}); err != nil {
					errs <- err
					return
				}
			}
		}(p)
	}
	for q := 0; q < queriers; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if _, err := client.Classify(ctx, []float64{0.4}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := svc.Ingested(); got != pushers*rounds {
		t.Fatalf("Ingested() = %d, want %d", got, pushers*rounds)
	}
}
