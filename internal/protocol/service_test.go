package protocol

import (
	"context"
	"errors"
	"testing"

	"repro/internal/classify"
	"repro/internal/dataset"
	"repro/internal/transport"
)

// runServiceSession runs a SAP session and stands up the mining service on
// top of its result, returning a ready client and the target-space test
// data.
func runServiceSession(t *testing.T) (*ServiceClient, *dataset.Dataset, func()) {
	t.Helper()
	parties, _ := buildParties(t, 4, 41, 0.05)
	sess, err := RunLocal(testCtx(t), SessionConfig{Parties: parties, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}

	net := transport.NewMemNetwork()
	minerConn, err := net.Endpoint("mining-service")
	if err != nil {
		t.Fatal(err)
	}
	clientConn, err := net.Endpoint("client")
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewMiningService(minerConn, &MinerResult{Unified: sess.Unified}, classify.NewKNN(5))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := svc.Serve(ctx); err != nil {
			t.Error(err)
		}
	}()
	client, err := NewServiceClient(clientConn, "mining-service")
	if err != nil {
		t.Fatal(err)
	}

	// Build target-space queries from one party's data.
	query := parties[0].Data.Clone()
	yq, err := sess.Target.ApplyNoiseless(parties[0].Data.FeaturesT())
	if err != nil {
		t.Fatal(err)
	}
	if err := query.ReplaceFeaturesT(yq); err != nil {
		t.Fatal(err)
	}
	cleanup := func() {
		cancel()
		<-done
		minerConn.Close()
		clientConn.Close()
	}
	return client, query, cleanup
}

func TestMiningServiceClassifies(t *testing.T) {
	client, query, cleanup := runServiceSession(t)
	defer cleanup()
	ctx := testCtx(t)

	correct := 0
	const n = 30
	for i := 0; i < n; i++ {
		label, err := client.Classify(ctx, query.X[i])
		if err != nil {
			t.Fatal(err)
		}
		if label == query.Y[i] {
			correct++
		}
	}
	// The training set contains these very records (in target space), so
	// KNN should classify the overwhelming majority correctly.
	if correct < n*7/10 {
		t.Fatalf("service classified %d/%d correctly", correct, n)
	}
}

func TestMiningServiceRejectsBadQuery(t *testing.T) {
	client, _, cleanup := runServiceSession(t)
	defer cleanup()
	ctx := testCtx(t)

	if _, err := client.Classify(ctx, []float64{1}); !errors.Is(err, ErrServiceClosed) {
		t.Fatalf("short query err = %v, want ErrServiceClosed wrapping dimension error", err)
	}
	// The service must keep serving after a bad request.
	_, query, cleanup2 := runServiceSession(t)
	defer cleanup2()
	if _, err := client.Classify(ctx, query.X[0]); err != nil {
		// Different session's service; just ensure the original still runs.
		t.Logf("cross-session query failed as expected: %v", err)
	}
}

func TestMiningServiceConfigValidation(t *testing.T) {
	net := transport.NewMemNetwork()
	conn, err := net.Endpoint("svc")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := NewMiningService(conn, nil, classify.NewKNN(1)); !errors.Is(err, ErrBadConfig) {
		t.Errorf("nil result err = %v", err)
	}
	if _, err := NewMiningService(conn, &MinerResult{}, classify.NewKNN(1)); !errors.Is(err, ErrBadConfig) {
		t.Errorf("empty unified err = %v", err)
	}
	d, _ := dataset.New("d", [][]float64{{1}, {2}}, []int{0, 1})
	if _, err := NewMiningService(conn, &MinerResult{Unified: d}, nil); !errors.Is(err, ErrBadConfig) {
		t.Errorf("nil model err = %v", err)
	}
	if _, err := NewServiceClient(conn, ""); !errors.Is(err, ErrBadConfig) {
		t.Errorf("empty miner err = %v", err)
	}
}

func TestMiningServiceContextCancel(t *testing.T) {
	net := transport.NewMemNetwork()
	conn, err := net.Endpoint("svc")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	d, _ := dataset.New("d", [][]float64{{0}, {1}, {0.1}, {0.9}}, []int{0, 1, 0, 1})
	svc, err := NewMiningService(conn, &MinerResult{Unified: d}, classify.NewKNN(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- svc.Serve(ctx) }()
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Serve after cancel = %v, want nil", err)
	}
}

func TestServiceWireGarbageIgnored(t *testing.T) {
	// Garbage frames must not kill the service loop.
	net := transport.NewMemNetwork()
	svcConn, _ := net.Endpoint("svc")
	defer svcConn.Close()
	cliConn, _ := net.Endpoint("cli")
	defer cliConn.Close()

	d, _ := dataset.New("d", [][]float64{{0}, {1}, {0.1}, {0.9}}, []int{0, 1, 0, 1})
	svc, err := NewMiningService(svcConn, &MinerResult{Unified: d}, classify.NewKNN(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		_ = svc.Serve(ctx)
	}()
	if err := cliConn.Send(ctx, "svc", []byte("garbage")); err != nil {
		t.Fatal(err)
	}
	client, err := NewServiceClient(cliConn, "svc")
	if err != nil {
		t.Fatal(err)
	}
	label, err := client.Classify(testCtx(t), []float64{0.95})
	if err != nil {
		t.Fatal(err)
	}
	if label != 1 {
		t.Fatalf("label = %d, want 1", label)
	}
}
