package protocol

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/dataset"
	"repro/internal/transport"
)

// startService trains a KNN(1) service on d and serves it until cleanup.
func startService(t *testing.T, conn transport.Conn, d *dataset.Dataset, cfg ServiceConfig) func() {
	t.Helper()
	svc, err := NewMiningService(conn, &MinerResult{Unified: d}, classify.NewKNN(1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := svc.Serve(ctx); err != nil {
			t.Error(err)
		}
	}()
	return func() {
		cancel()
		<-done
	}
}

// labelledLine builds an n-record 1-D dataset where record i sits at i/n and
// carries the unique label i, so KNN(1) answers queries with perfect
// attribution — exactly what response-correlation tests need.
func labelledLine(t *testing.T, n int) *dataset.Dataset {
	t.Helper()
	x := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		x[i] = []float64{float64(i) / float64(n)}
		y[i] = i
	}
	d, err := dataset.New("line", x, y)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// runServiceSession runs a SAP session and stands up the mining service on
// top of its result, returning a ready client and the target-space test
// data.
func runServiceSession(t *testing.T) (*ServiceClient, *dataset.Dataset, func()) {
	t.Helper()
	parties, _ := buildParties(t, 4, 41, 0.05)
	sess, err := RunLocal(testCtx(t), SessionConfig{Parties: parties, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}

	net := transport.NewMemNetwork()
	minerConn, err := net.Endpoint("mining-service")
	if err != nil {
		t.Fatal(err)
	}
	clientConn, err := net.Endpoint("client")
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewMiningService(minerConn, &MinerResult{Unified: sess.Unified}, classify.NewKNN(5), ServiceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := svc.Serve(ctx); err != nil {
			t.Error(err)
		}
	}()
	client, err := NewServiceClient(clientConn, "mining-service")
	if err != nil {
		t.Fatal(err)
	}

	// Build target-space queries from one party's data.
	query := parties[0].Data.Clone()
	yq, err := sess.Target.ApplyNoiseless(parties[0].Data.FeaturesT())
	if err != nil {
		t.Fatal(err)
	}
	if err := query.ReplaceFeaturesT(yq); err != nil {
		t.Fatal(err)
	}
	cleanup := func() {
		client.Close()
		cancel()
		<-done
		minerConn.Close()
		clientConn.Close()
	}
	return client, query, cleanup
}

func TestMiningServiceClassifies(t *testing.T) {
	client, query, cleanup := runServiceSession(t)
	defer cleanup()
	ctx := testCtx(t)

	correct := 0
	const n = 30
	for i := 0; i < n; i++ {
		label, err := client.Classify(ctx, query.X[i])
		if err != nil {
			t.Fatal(err)
		}
		if label == query.Y[i] {
			correct++
		}
	}
	// The training set contains these very records (in target space), so
	// KNN should classify the overwhelming majority correctly.
	if correct < n*7/10 {
		t.Fatalf("service classified %d/%d correctly", correct, n)
	}
}

func TestMiningServiceBatchMatchesSingle(t *testing.T) {
	client, query, cleanup := runServiceSession(t)
	defer cleanup()
	ctx := testCtx(t)

	const n = 20
	labels, err := client.ClassifyBatch(ctx, query.X[:n])
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != n {
		t.Fatalf("%d labels for %d records", len(labels), n)
	}
	for i := 0; i < n; i++ {
		single, err := client.Classify(ctx, query.X[i])
		if err != nil {
			t.Fatal(err)
		}
		if single != labels[i] {
			t.Fatalf("record %d: batch label %d vs single label %d", i, labels[i], single)
		}
	}
}

func TestMiningServiceRejectsBadQuery(t *testing.T) {
	client, query, cleanup := runServiceSession(t)
	defer cleanup()
	ctx := testCtx(t)

	if _, err := client.Classify(ctx, []float64{1}); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("short query err = %v, want ErrBadQuery", err)
	}
	// The service must keep serving after a bad request, and the client
	// must remain usable after a typed rejection.
	if _, err := client.Classify(ctx, query.X[0]); err != nil {
		t.Fatalf("query after rejection failed: %v", err)
	}
	if _, err := client.ClassifyBatch(ctx, nil); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("empty batch err = %v, want ErrBadQuery", err)
	}
}

// TestServiceClientConcurrentClassify is the regression test for the old
// mux-less client, whose shared recv loop swallowed other callers' responses
// and whose ID allocation was unsynchronized. 32 goroutines share one client
// over one connection; every caller must get its own label back.
func TestServiceClientConcurrentClassify(t *testing.T) {
	const callers = 32
	net := transport.NewMemNetwork()
	svcConn, err := net.Endpoint("svc")
	if err != nil {
		t.Fatal(err)
	}
	defer svcConn.Close()
	cliConn, err := net.Endpoint("cli")
	if err != nil {
		t.Fatal(err)
	}
	defer cliConn.Close()

	d := labelledLine(t, callers)
	stop := startService(t, svcConn, d, ServiceConfig{Workers: 4})
	defer stop()

	client, err := NewServiceClient(cliConn, "svc")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ctx := testCtx(t)
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			label, err := client.Classify(ctx, d.X[i])
			if err != nil {
				errs <- fmt.Errorf("caller %d: %w", i, err)
				return
			}
			if label != i {
				errs <- fmt.Errorf("caller %d got label %d (response misrouted)", i, label)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// countingConn counts outbound frames so tests can assert round-trip counts.
type countingConn struct {
	transport.Conn
	sends atomic.Int64
}

func (c *countingConn) Send(ctx context.Context, to string, payload []byte) error {
	c.sends.Add(1)
	return c.Conn.Send(ctx, to, payload)
}

// TestClassifyBatchSingleRoundTrip asserts the acceptance criterion that an
// N-record batch costs exactly one request frame (and one response frame).
func TestClassifyBatchSingleRoundTrip(t *testing.T) {
	const n = 48
	net := transport.NewMemNetwork()
	svcConn, err := net.Endpoint("svc")
	if err != nil {
		t.Fatal(err)
	}
	defer svcConn.Close()
	rawCli, err := net.Endpoint("cli")
	if err != nil {
		t.Fatal(err)
	}
	defer rawCli.Close()
	cliConn := &countingConn{Conn: rawCli}
	svcCount := &countingConn{Conn: svcConn}

	d := labelledLine(t, n)
	stop := startService(t, svcCount, d, ServiceConfig{})
	defer stop()

	client, err := NewServiceClient(cliConn, "svc")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	labels, err := client.ClassifyBatch(testCtx(t), d.X)
	if err != nil {
		t.Fatal(err)
	}
	for i, label := range labels {
		if label != i {
			t.Fatalf("record %d labelled %d", i, label)
		}
	}
	if got := cliConn.sends.Load(); got != 1 {
		t.Errorf("client sent %d frames for one batch, want 1", got)
	}
	if got := svcCount.sends.Load(); got != 1 {
		t.Errorf("service sent %d frames for one batch, want 1", got)
	}
}

// TestClassifyBatchOverTCPWithAES round-trips the batch wire path over the
// real TCP transport with AES-GCM-sealed frames, including the typed error
// responses for oversized batches and dimension mismatches.
func TestClassifyBatchOverTCPWithAES(t *testing.T) {
	codec, err := transport.NewAESCodec("service-test-key")
	if err != nil {
		t.Fatal(err)
	}
	svcNode, err := transport.NewTCPNode("svc", "127.0.0.1:0", codec)
	if err != nil {
		t.Fatal(err)
	}
	defer svcNode.Close()
	cliNode, err := transport.NewTCPNode("cli", "127.0.0.1:0", codec)
	if err != nil {
		t.Fatal(err)
	}
	defer cliNode.Close()
	svcNode.AddPeer("cli", cliNode.Addr())
	cliNode.AddPeer("svc", svcNode.Addr())

	const n = 16
	d := labelledLine(t, n)
	stop := startService(t, svcNode, d, ServiceConfig{Workers: 2, MaxBatch: n})
	defer stop()

	client, err := NewServiceClient(cliNode, "svc")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx := testCtx(t)

	labels, err := client.ClassifyBatch(ctx, d.X)
	if err != nil {
		t.Fatal(err)
	}
	for i, label := range labels {
		if label != i {
			t.Fatalf("record %d labelled %d", i, label)
		}
	}

	oversized := make([][]float64, n+1)
	for i := range oversized {
		oversized[i] = []float64{0.5}
	}
	if _, err := client.ClassifyBatch(ctx, oversized); !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("oversized batch err = %v, want ErrBatchTooLarge", err)
	}
	if _, err := client.ClassifyBatch(ctx, [][]float64{{1, 2, 3}}); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("dim mismatch err = %v, want ErrBadQuery", err)
	}
	// The service and client survive both rejections.
	if label, err := client.Classify(ctx, d.X[3]); err != nil || label != 3 {
		t.Fatalf("post-rejection query = %d, %v; want 3, nil", label, err)
	}
}

func TestMiningServiceOversizedBatchMemHub(t *testing.T) {
	net := transport.NewMemNetwork()
	svcConn, _ := net.Endpoint("svc")
	defer svcConn.Close()
	cliConn, _ := net.Endpoint("cli")
	defer cliConn.Close()

	d := labelledLine(t, 4)
	stop := startService(t, svcConn, d, ServiceConfig{MaxBatch: 2})
	defer stop()
	client, err := NewServiceClient(cliConn, "svc")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ctx := testCtx(t)
	if _, err := client.ClassifyBatch(ctx, d.X); !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("err = %v, want ErrBatchTooLarge", err)
	}
	if _, err := client.ClassifyBatch(ctx, [][]float64{{0.1, 0.2}}); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("err = %v, want ErrBadQuery", err)
	}
	if labels, err := client.ClassifyBatch(ctx, d.X[:2]); err != nil || len(labels) != 2 {
		t.Fatalf("in-cap batch = %v, %v", labels, err)
	}
}

// TestServiceWireVersionMismatch sends a frame claiming an unknown wire
// version and expects a typed rejection rather than silence or a crash.
func TestServiceWireVersionMismatch(t *testing.T) {
	net := transport.NewMemNetwork()
	svcConn, _ := net.Endpoint("svc")
	defer svcConn.Close()
	cliConn, _ := net.Endpoint("cli")
	defer cliConn.Close()

	d := labelledLine(t, 4)
	stop := startService(t, svcConn, d, ServiceConfig{})
	defer stop()

	payload, err := encodeServiceWire(&serviceWire{ID: 9, Batch: [][]float64{{0.1}}})
	if err != nil {
		t.Fatal(err)
	}
	payload[1] = 99 // future version
	ctx := testCtx(t)
	if err := cliConn.Send(ctx, "svc", payload); err != nil {
		t.Fatal(err)
	}
	env, err := cliConn.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := decodeServiceWire(env.Payload)
	if err != nil || resp == nil {
		t.Fatalf("decode response: %v", err)
	}
	if !resp.Response || resp.ID != 9 || resp.Code != codeWireVersion {
		t.Fatalf("resp = %+v, want response to ID 9 with codeWireVersion", resp)
	}
	if _, err := decodeServiceResponse(resp, 1); !errors.Is(err, ErrWireVersion) {
		t.Fatalf("mapped err = %v, want ErrWireVersion", err)
	}
}

// TestClientReceivesVersionRejection simulates a future-version service
// answering with a typed version rejection: the client must surface
// ErrWireVersion to the caller instead of dropping the frame and hanging.
func TestClientReceivesVersionRejection(t *testing.T) {
	net := transport.NewMemNetwork()
	svcConn, _ := net.Endpoint("svc")
	defer svcConn.Close()
	cliConn, _ := net.Endpoint("cli")
	defer cliConn.Close()

	ctx := testCtx(t)
	go func() {
		env, err := svcConn.Recv(ctx)
		if err != nil {
			return
		}
		req, err := decodeServiceWire(env.Payload)
		if err != nil || req == nil {
			return
		}
		resp := &serviceWire{ID: req.ID, Response: true, Code: codeWireVersion, Err: "speak v4"}
		payload, err := encodeServiceWire(resp)
		if err != nil {
			return
		}
		payload[1] = 4 // the rejecting peer stamps its own, newer version
		_ = svcConn.Send(ctx, env.From, payload)
	}()

	client, err := NewServiceClient(cliConn, "svc")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Classify(ctx, []float64{0.5}); !errors.Is(err, ErrWireVersion) {
		t.Fatalf("err = %v, want ErrWireVersion", err)
	}
}

// TestClassifyContextCancel verifies per-request cancellation: a request to
// a service that never answers returns the caller's ctx error and leaves the
// client alive.
func TestClassifyContextCancel(t *testing.T) {
	net := transport.NewMemNetwork()
	// A registered endpoint that never serves: sends succeed, no responses.
	blackhole, _ := net.Endpoint("blackhole")
	defer blackhole.Close()
	cliConn, _ := net.Endpoint("cli")
	defer cliConn.Close()

	client, err := NewServiceClient(cliConn, "blackhole")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := client.Classify(ctx, []float64{0.5}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// The abandoned request must not leak a pending entry.
	client.mu.Lock()
	pending := len(client.pending)
	client.mu.Unlock()
	if pending != 0 {
		t.Fatalf("%d pending requests leaked after cancellation", pending)
	}
}

func TestServiceClientCloseFailsInflight(t *testing.T) {
	net := transport.NewMemNetwork()
	blackhole, _ := net.Endpoint("blackhole")
	defer blackhole.Close()
	cliConn, _ := net.Endpoint("cli")
	defer cliConn.Close()

	client, err := NewServiceClient(cliConn, "blackhole")
	if err != nil {
		t.Fatal(err)
	}
	inflight := make(chan error, 1)
	go func() {
		_, err := client.Classify(context.Background(), []float64{0.5})
		inflight <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the request register
	client.Close()
	if err := <-inflight; !errors.Is(err, ErrServiceClosed) {
		t.Fatalf("in-flight err after Close = %v, want ErrServiceClosed", err)
	}
	if _, err := client.Classify(context.Background(), []float64{0.5}); !errors.Is(err, ErrServiceClosed) {
		t.Fatalf("post-Close err = %v, want ErrServiceClosed", err)
	}
}

func TestMiningServiceConfigValidation(t *testing.T) {
	net := transport.NewMemNetwork()
	conn, err := net.Endpoint("svc")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := NewMiningService(conn, nil, classify.NewKNN(1), ServiceConfig{}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("nil result err = %v", err)
	}
	if _, err := NewMiningService(conn, &MinerResult{}, classify.NewKNN(1), ServiceConfig{}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("empty unified err = %v", err)
	}
	d, _ := dataset.New("d", [][]float64{{1}, {2}}, []int{0, 1})
	if _, err := NewMiningService(conn, &MinerResult{Unified: d}, nil, ServiceConfig{}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("nil model err = %v", err)
	}
	if _, err := NewServiceClient(conn, ""); !errors.Is(err, ErrBadConfig) {
		t.Errorf("empty miner err = %v", err)
	}
}

func TestMiningServiceContextCancel(t *testing.T) {
	net := transport.NewMemNetwork()
	conn, err := net.Endpoint("svc")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	d, _ := dataset.New("d", [][]float64{{0}, {1}, {0.1}, {0.9}}, []int{0, 1, 0, 1})
	svc, err := NewMiningService(conn, &MinerResult{Unified: d}, classify.NewKNN(1), ServiceConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- svc.Serve(ctx) }()
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Serve after cancel = %v, want nil", err)
	}
}

func TestServiceWireGarbageIgnored(t *testing.T) {
	// Garbage frames must not kill the service loop — neither non-service
	// payloads nor corrupted service frames.
	net := transport.NewMemNetwork()
	svcConn, _ := net.Endpoint("svc")
	defer svcConn.Close()
	cliConn, _ := net.Endpoint("cli")
	defer cliConn.Close()

	d, _ := dataset.New("d", [][]float64{{0}, {1}, {0.1}, {0.9}}, []int{0, 1, 0, 1})
	stop := startService(t, svcConn, d, ServiceConfig{})
	defer stop()
	ctx := testCtx(t)
	if err := cliConn.Send(ctx, "svc", []byte("garbage")); err != nil {
		t.Fatal(err)
	}
	if err := cliConn.Send(ctx, "svc", []byte{serviceMagic, serviceWireFlaggedVersion, 0xff, 0x01}); err != nil {
		t.Fatal(err)
	}
	client, err := NewServiceClient(cliConn, "svc")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	label, err := client.Classify(testCtx(t), []float64{0.95})
	if err != nil {
		t.Fatal(err)
	}
	if label != 1 {
		t.Fatalf("label = %d, want 1", label)
	}
}
