package protocol

import (
	"strings"
	"sync"
	"testing"
)

func TestAuditLogBasics(t *testing.T) {
	var log AuditLog
	log.Record("a", EventDatasetSent, "b", "records=10")
	log.Record("b", EventDatasetReceived, "a", "slot=1")
	events := log.Events()
	if len(events) != 2 {
		t.Fatalf("%d events, want 2", len(events))
	}
	if events[0].Actor != "a" || events[0].Kind != EventDatasetSent {
		t.Fatalf("event[0] = %+v", events[0])
	}
	// Events() returns a copy.
	events[0].Actor = "mutated"
	if log.Events()[0].Actor != "a" {
		t.Fatal("Events aliased internal storage")
	}
}

func TestAuditLogNilSafe(t *testing.T) {
	var log *AuditLog
	log.Record("a", EventUnified, "", "") // must not panic
	if log.Events() != nil {
		t.Fatal("nil log returned events")
	}
}

func TestAuditLogConcurrent(t *testing.T) {
	var log AuditLog
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				log.Record("actor", EventDatasetSent, "", "")
			}
		}()
	}
	wg.Wait()
	if got := len(log.Events()); got != 400 {
		t.Fatalf("%d events, want 400", got)
	}
}

func TestAuditLogQueries(t *testing.T) {
	var log AuditLog
	log.Record("a", EventDatasetSent, "b", "")
	log.Record("a", EventAdaptorSent, "c", "")
	log.Record("b", EventDatasetSent, "c", "")
	counts := log.CountByKind()
	if counts[EventDatasetSent] != 2 || counts[EventAdaptorSent] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	byA := log.ByActor("a")
	if len(byA) != 2 {
		t.Fatalf("ByActor(a) = %d events, want 2", len(byA))
	}
	if !strings.Contains(log.String(), "a dataset-sent peer=b") {
		t.Fatalf("String() = %q", log.String())
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{
		EventTargetSelected, EventPlanComputed, EventAssignmentSent,
		EventDatasetSent, EventDatasetReceived, EventDatasetForwarded,
		EventAdaptorSent, EventAdaptorReceived, EventAdaptorMapSent,
		EventSubmissionReceived, EventUnified, EventViolationDetected,
		EventKind(99),
	}
	seen := make(map[string]bool, len(kinds))
	for _, k := range kinds {
		s := k.String()
		if s == "" {
			t.Errorf("kind %d has empty label", int(k))
		}
		if seen[s] {
			t.Errorf("duplicate label %q", s)
		}
		seen[s] = true
	}
}

func TestSessionAuditTrail(t *testing.T) {
	// A full honest run must produce a log that satisfies the paper's
	// safety invariants.
	const k = 5
	parties, _ := buildParties(t, k, 31, 0.05)
	var log AuditLog
	_, err := RunLocal(testCtx(t), SessionConfig{Parties: parties, Seed: 32, Audit: &log})
	if err != nil {
		t.Fatal(err)
	}
	coordName := parties[k-1].Name
	problems := log.VerifyInvariants(coordName, "miner", k)
	if len(problems) != 0 {
		t.Fatalf("invariant violations: %v\nlog:\n%s", problems, log.String())
	}
	counts := log.CountByKind()
	if counts[EventDatasetSent] != k {
		t.Errorf("%d datasets sent, want %d", counts[EventDatasetSent], k)
	}
	if counts[EventDatasetForwarded] != k {
		t.Errorf("%d datasets forwarded, want %d", counts[EventDatasetForwarded], k)
	}
	if counts[EventSubmissionReceived] != k {
		t.Errorf("%d submissions, want %d", counts[EventSubmissionReceived], k)
	}
	if counts[EventAdaptorReceived] != k-1 {
		t.Errorf("%d adaptors received, want %d", counts[EventAdaptorReceived], k-1)
	}
	if counts[EventUnified] != 1 {
		t.Errorf("%d unified events, want 1", counts[EventUnified])
	}
	if counts[EventViolationDetected] != 0 {
		t.Errorf("honest run recorded %d violations", counts[EventViolationDetected])
	}
	// Providers only: the coordinator must never appear as a forwarder.
	for _, e := range log.Events() {
		if e.Kind == EventDatasetForwarded && e.Actor == coordName {
			t.Errorf("coordinator forwarded a dataset: %v", e)
		}
	}
}

func TestVerifyInvariantsCatchesViolations(t *testing.T) {
	var log AuditLog
	log.Record("coord", EventDatasetReceived, "p1", "") // invariant 1 break
	log.Record("p1", EventDatasetSent, "p2", "")        // sent but never forwarded
	log.Record("coord", EventAdaptorMapSent, "miner", "")
	problems := log.VerifyInvariants("coord", "miner", 3)
	if len(problems) < 3 {
		t.Fatalf("problems = %v, want coordinator-receipt, forward-mismatch and submission-count findings", problems)
	}
}
