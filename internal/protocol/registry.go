// Group registry and router of the sharded mining service. One miner
// process hosts any number of serving groups — independent contracts, each
// with its own target space, training set, model and refit cadence — and
// routes every v4 frame to its group's shard. This is the multi-contract
// deployment the paper's service-oriented framing implies: the service
// provider "offers their data mining services to the contracted parties",
// and nothing ties the provider to a single contract.

package protocol

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/classify"
	"repro/internal/dataset"
	"repro/internal/matrix"
	"repro/internal/metrics"
	"repro/internal/perturb"
	"repro/internal/transport"
)

// DefaultGroup is the serving group pre-v4 frames (which carry no Group
// field) route to, and the group NewMiningService registers its single
// model under. Single-group deployments never need to name it.
const DefaultGroup = "default"

// shardIngestQueueDepth bounds the per-group ingest queue between the
// receive loop and the shard's ingest goroutine. A group whose ingest lane
// is behind can absorb this many chunks before further ingest frames for it
// are answered with a typed busy rejection (ErrBusy) — the receive loop
// never blocks on a full shard queue.
const shardIngestQueueDepth = 16

// shardJobQueueDepth bounds the per-group classify queue between the
// receive loop and the shard's prediction pool. A group whose pool is
// saturated can absorb this many queries before further classify frames for
// it are answered with ErrBusy — the same fail-fast isolation contract as
// the ingest queue.
const shardJobQueueDepth = 16

// GroupSpec describes one serving group hosted by a sharded mining service.
type GroupSpec struct {
	// ID names the group on the wire. Required; unique within a service.
	ID string
	// Unified is the group's training set, already in the group's own
	// target space. Required, non-empty.
	Unified *dataset.Dataset
	// Model is the classifier served to the group. Each group needs its own
	// instance — shards never share model state. Optional when NewModel is
	// set (the factory then builds the initial model too).
	Model classify.Classifier
	// NewModel returns a fresh, unfitted classifier with the group's model
	// configuration. Background refits fit a fresh instance off to the side
	// and atomically swap it in, so the live model is never mutated — a
	// failed refit provably cannot corrupt it. Optional when Model
	// implements classify.Cloner (all built-in classifiers do); required
	// otherwise whenever refits are enabled, since without a fresh instance
	// the service cannot honor its keep-serving-on-the-previous-fit
	// guarantee.
	NewModel func() classify.Classifier
	// RefitEvery overrides ServiceConfig.RefitEvery for this group (0
	// inherits the service-wide cadence; negative disables automatic
	// refits).
	RefitEvery int
	// Workers overrides ServiceConfig.Workers for this group: the size of
	// the group's dedicated prediction pool (0 inherits the service-wide
	// size). Every group owns its pool and a bounded job queue, so a group
	// saturated with slow queries stalls other groups' predictions only
	// once its own queue overflows back into the shared receive loop.
	Workers int
	// MaxBatch overrides ServiceConfig.MaxBatch for this group (0 inherits
	// the service-wide cap).
	MaxBatch int
	// Members optionally restricts the group to the named transport
	// endpoints. Empty admits any peer; non-empty means frames from peers
	// outside the list are answered with ErrNotMember. The check keys off
	// the transport envelope's sender name, which peers self-declare: it
	// keeps honest contracts apart (misrouted clients, stale configs), but
	// a peer holding the shared transport key can spoof a member name —
	// per-group keys / authenticated identity are a ROADMAP follow-up.
	Members []string
	// SyncFrom marks this group a read replica: the named transport endpoint
	// (the group's leader node) is the only peer whose kindModelSync frames
	// are installed, ingest frames are answered with ErrNotLeader, and
	// background refits never trigger (no ingest reaches the shard) — the
	// replica's model advances only by installing the leader's replicated
	// fits, with the same lock-free atomic publish a local refit would use.
	// Empty (the default) makes the group an ordinary leader shard. The role
	// is the initial one; failover may flip it at runtime via SetGroupLead /
	// SetGroupFollow.
	SyncFrom string
	// Float32 opts this group into float32 wire payloads where the peer
	// accepts them: the cluster layer replicates the group's models as
	// packed-float32 blobs (classify.EncodeModelFloat32) and clients built
	// from a WithFloat32Payloads session pack their batches the same way.
	// Precision narrows to float32 (~7 significant digits) on those frames;
	// the group's perturbed data tolerates it by construction (the paper's
	// noise floor dwarfs the quantization error), but the opt-in is per
	// group so precision-sensitive contracts stay on float64.
	Float32 bool
	// QueueDepth overrides the depth of the group's bounded ingest and
	// classify queues (0 selects shardIngestQueueDepth and
	// shardJobQueueDepth). Deeper queues absorb burstier traffic before the
	// busy rejection fires; shallower ones fail faster.
	QueueDepth int
	// Quota rate-limits the group's ingest: chunks beyond the
	// records-per-second token bucket answer a typed ErrQuota within one
	// round trip (rejects.quota), before they ever occupy queue space. The
	// zero value is unlimited. Updatable at runtime through the admin
	// control plane.
	Quota GroupQuota
	// Views optionally splits the group into an ordered multi-level trust
	// view list: one served model per trust level, every level fitted on
	// the same training set under its own slice of a jointly drawn
	// correlated noise ladder (perturb.NoiseLadder), so no coalition of
	// views can pool its way below the least-noisy member's privacy level.
	// Views must be listed in strictly increasing level order (level 1 =
	// most trusted) with non-decreasing noise; with Views set, the
	// group-level Model/NewModel must be nil (each view brings its own).
	// Nil — the default — serves today's single implicit view with
	// byte-identical wire behavior.
	Views []ViewSpec
}

// ViewSpec describes one trust view of a multi-level serving group: the
// classifier served at one trust level, fitted on the group's training data
// blurred by that level's slice of the group's correlated noise ladder.
type ViewSpec struct {
	// Level is the view's trust rank: positive, unique within the group,
	// listed in strictly increasing order. Smaller levels are more trusted
	// and see less noise.
	Level int
	// NoiseSigma is the absolute per-element σ of the additive training
	// noise this view's model is fitted under. Sigmas must be non-decreasing
	// across the group's view list — lower trust never gets less noise —
	// and every fit draws the whole ladder jointly from the next-higher
	// view's noise plus an independent increment, never independently per
	// view, which is what keeps coalitions of views from averaging the
	// noise away (the diversity attack; see internal/privacy's coalition
	// evaluator).
	NoiseSigma float64
	// Model and NewModel mirror GroupSpec.Model and GroupSpec.NewModel for
	// this view; every view serves its own instances.
	Model    classify.Classifier
	NewModel func() classify.Classifier
	// Members optionally restricts the view to the named transport
	// endpoints, on top of the group's own ACL. Empty admits every peer
	// the group admits.
	Members []string
}

// modelShard is one group's independent serving state. The served model
// lives behind an atomic pointer: prediction workers load it lock-free, and
// the shard's refit goroutine — fed training-set snapshots by the ingest
// goroutine — fits a *fresh* classifier instance off to the side and swaps
// it in only on success, so the live model is never written while serving
// and a failed fit cannot corrupt it. Each queue between the shared receive
// loop and the shard is bounded and fail-fast: when it is full, the frame
// is answered with a typed busy rejection instead of stalling the loop.
type modelShard struct {
	id      string
	dim     int
	workers int
	// queueDepth is the capacity both bounded queues were built with and f32
	// the group's float32-payload preference; fixed for the shard's lifetime
	// (unlike limits), reported by the admin list.
	queueDepth int
	f32        bool
	// limits holds the shard's updatable serving limits — batch cap, refit
	// cadence, members ACL, ingest quota — behind one atomic pointer: the
	// admin control plane replaces the whole bundle in place while workers
	// load it once per frame, lock-free, the same publish discipline the
	// model itself uses.
	limits atomic.Pointer[shardLimits]
	// syncFrom is the leader endpoint this shard replicates from; empty for
	// ordinary leader shards (see GroupSpec.SyncFrom). Behind an atomic
	// pointer because failover flips roles at runtime (SetGroupLead /
	// SetGroupFollow) while the serve loop authorizes frames against it.
	syncFrom atomic.Pointer[string]
	// onSwap, when set, is called with each view's successfully refitted
	// classifier right after its atomic publish (ServiceConfig.OnModelSwap,
	// curried with the group ID). Runs on the refit goroutine.
	onSwap func(level int, model classify.Classifier)

	// views are the group's trust views in ascending level order; views[0]
	// is the primary (highest-trust) view. Groups without GroupSpec.Views
	// get one implicit open view at level 1 and behave exactly as before.
	// The slice is fixed for the shard's lifetime; per-view mutable state
	// (model, members, sync cursor) lives behind each view's own atomics.
	views []*viewShard
	// explicitViews records whether the spec asked for multi-level views.
	// Implicit groups skip the noise ladder, the per-view metric namespace
	// and all View-field stamping, keeping their wire bytes identical to
	// the pre-view service.
	explicitViews bool
	// viewRng draws the correlated noise ladder for multi-view fits,
	// deterministically seeded from the group ID. Touched only during
	// construction and then on the refit goroutine, strictly sequentially.
	viewRng *rand.Rand
	// canRefit is true when every view has a fresh-instance source
	// (ViewSpec.NewModel or a classify.Cloner model).
	canRefit bool

	// The growing training set and the count of records ingested since the
	// last scheduled refit; both are touched only by the shard's ingest
	// goroutine.
	training   *dataset.Dataset
	sinceRefit int

	// ingested is the lifetime ingest total, readable concurrently.
	ingested atomic.Int64
	// stale counts records ingested but not yet covered by the live fit:
	// the ingest goroutine adds each accepted chunk, and a successful refit
	// subtracts exactly the records its snapshot covered — records that
	// arrived while the fit ran stay counted. It mirrors the
	// "staleness_records" gauge so scheduleRefit can read the current value.
	stale atomic.Int64

	// jobs carries classify frames from the receive loop to the shard's
	// dedicated prediction pool (sized by GroupSpec.Workers); a full buffer
	// makes the receive loop answer codeBusy instead of blocking.
	jobs chan serviceJob
	// ingestQ carries ingest frames from the receive loop to the shard's
	// ingest goroutine, with the same fail-fast busy contract.
	ingestQ chan serviceJob
	// refitQ carries training-set snapshots from the ingest goroutine to
	// the shard's refit goroutine. Its single-slot buffer coalesces refits:
	// while one is pending, further cadence crossings keep accumulating and
	// re-trigger on a later chunk, so at most one snapshot is ever queued
	// behind the fit in progress.
	refitQ chan refitJob
	// refitFail holds the message of the most recent failed refit until it
	// is either reported on an ingest response (codeRefit, so one pusher
	// learns the model is lagging) or cleared by a successful refit. A
	// failure with no ingest traffic after it is visible only through the
	// refit.errors counter and the staleness_records gauge, which stays
	// elevated until a later refit succeeds.
	refitFail atomic.Pointer[string]

	// ingestHold is nil in production. Tests set it before Serve to park
	// the ingest goroutine (it blocks on the channel before each dequeue),
	// wedging the lane deterministically so queue-full busy rejections can
	// be exercised.
	ingestHold chan struct{}

	// Per-shard goroutine accounting, so a single shard can be drained and
	// stopped (admin evict) without touching its siblings: stop() closes the
	// ingest queue first and waits it drained — queued chunks still fold in
	// — then retires the refit and prediction goroutines.
	workerWg sync.WaitGroup
	ingestWg sync.WaitGroup
	refitWg  sync.WaitGroup
	stopOnce sync.Once

	// Instruments, resolved once at construction under the group's metric
	// namespace "service.<id>." so the hot path is a single atomic update.
	mRequests      metrics.Counter   // classify frames answered
	mBatchSize     metrics.Histogram // records per classify frame
	mIngestChunks  metrics.Counter   // ingest frames folded in
	mIngestRecs    metrics.Counter   // records folded in
	mQueueDepth    metrics.Gauge     // ingest queue occupancy
	mRefits        metrics.Counter   // completed refits
	mRefitNanos    metrics.Histogram // refit wall time (ns)
	mRefitErrors   metrics.Counter   // failed refits (ErrRefit recoveries)
	mRefitInflight metrics.Gauge     // 1 while a background refit is fitting
	mNotMember     metrics.Counter   // frames refused by the Members ACL
	mBusy          metrics.Counter   // frames refused because a queue was full
	mStaleness     metrics.Gauge     // records ingested but not in the live fit
	mSyncInstalls  metrics.Counter   // model syncs installed (replicas only)
	mSyncRejects   metrics.Counter   // model syncs refused (stale seq, bad blob)
	mSyncSeq       metrics.Gauge     // sequence of the last installed sync
	mQuota         metrics.Counter   // ingest frames refused by the group quota
	mRefitRetries  metrics.Counter   // failed refits re-attempted by the retry timer
	mUnknownView   metrics.Counter   // frames addressing a view the group does not serve
}

// viewShard is one trust view's serving state within a group shard: its own
// atomically published model and replication cursor, its own ACL on top of
// the group's, and its slice of the group's correlated noise ladder. All
// views share the group's training set, queues and refit cadence — a refit
// fits every view from one coalesced snapshot.
type viewShard struct {
	level int
	sigma float64
	// members is the view's own ACL (nil admits every peer the group
	// admits), behind an atomic pointer so the admin plane can replace it
	// while the receive loop resolves views lock-free. The stored pointer
	// is never nil; the map it points to may be.
	members atomic.Pointer[map[string]struct{}]
	// newModel returns a fresh unfitted classifier for this view's refits;
	// nil only when refits are disabled for the group.
	newModel func() classify.Classifier
	// model is the view's served classifier, published with the same
	// store-only-on-success atomic discipline the single-model shard used.
	model atomic.Pointer[classify.Classifier]
	// syncSeq / syncCovered are the view's replication cursor: each view
	// replicates independently, and a promoted or restarted leader floors
	// its numbering at the minimum across views (GroupSyncSeq).
	syncSeq     atomic.Uint64
	syncCovered atomic.Int64

	// Per-view instruments under "service.<group>.view.<level>.". No-ops
	// for implicit single-view groups, whose flat group namespace stays
	// the complete catalogue.
	mRequests     metrics.Counter // classify frames answered by this view
	mRefits       metrics.Counter // refit publishes of this view's model
	mSyncInstalls metrics.Counter // model syncs installed into this view
	mSyncSeq      metrics.Gauge   // sequence of this view's last installed sync
}

// admits reports whether the named peer may address this view (on top of
// the group ACL, which the router checks first).
func (v *viewShard) admits(peer string) bool {
	members := *v.members.Load()
	if members == nil {
		return true
	}
	_, ok := members[peer]
	return ok
}

// shardLimits is the updatable half of a shard's configuration, published as
// one immutable bundle (see modelShard.limits).
type shardLimits struct {
	maxBatch   int
	refitEvery int
	members    map[string]struct{} // nil: open to any peer
	quota      *tokenBucket        // nil: unlimited
	quotaCfg   GroupQuota          // the quota as configured, for admin listing
}

// applyUpdate publishes a new limits bundle per the update's Set flags.
// Called only with the service's receive loop as the single writer (admin
// updates are handled inline on it), so a plain load-copy-store suffices.
func (sh *modelShard) applyUpdate(u *AdminUpdate) error {
	next := *sh.limits.Load()
	if u.SetMaxBatch {
		if u.MaxBatch <= 0 {
			return fmt.Errorf("group %q: non-positive batch cap %d", sh.id, u.MaxBatch)
		}
		next.maxBatch = u.MaxBatch
	}
	if u.SetRefitEvery {
		if u.RefitEvery > 0 && !sh.canRefit {
			return fmt.Errorf("group %q cannot refit: no model factory or cloner", sh.id)
		}
		next.refitEvery = u.RefitEvery
	}
	if u.SetMembers {
		members, err := memberSet(sh.id, u.Members)
		if err != nil {
			return err
		}
		next.members = members
	}
	if u.SetQuota {
		next.quota = newTokenBucket(u.Quota)
		next.quotaCfg = u.Quota
	}
	if u.SetViewMembers {
		// Validate every row before storing any, so a bad update leaves all
		// view ACLs untouched rather than half-applied.
		type viewACL struct {
			view *viewShard
			set  map[string]struct{}
		}
		pending := make([]viewACL, 0, len(u.ViewMembers))
		for _, vm := range u.ViewMembers {
			v := sh.viewAt(vm.Level)
			if v == nil {
				return fmt.Errorf("group %q has no view %d", sh.id, vm.Level)
			}
			set, err := memberSet(sh.id, vm.Members)
			if err != nil {
				return err
			}
			pending = append(pending, viewACL{view: v, set: set})
		}
		for _, p := range pending {
			set := p.set
			p.view.members.Store(&set)
		}
	}
	sh.limits.Store(&next)
	return nil
}

// primary returns the group's highest-trust view (the only view of an
// implicit single-level group).
func (sh *modelShard) primary() *viewShard { return sh.views[0] }

// viewAt returns the view serving the given trust level, or nil. The view
// list is tiny and fixed, so a linear scan beats any map on the hot path.
func (sh *modelShard) viewAt(level int) *viewShard {
	for _, v := range sh.views {
		if v.level == level {
			return v
		}
	}
	return nil
}

// resolveView normalizes a classify/ingest frame's View field to a concrete
// view the sender may address, mutating req.View in place. An explicit level
// must exist (codeUnknownView) and admit the sender (codeNotMember); level 0
// resolves to the sender's highest-authorized view — except on implicit
// single-view groups, where it stays 0 so every response byte matches the
// pre-view service. Returns a zero code on success.
func (sh *modelShard) resolveView(req *serviceWire, from string) (code uint8, msg string) {
	if req.View == 0 {
		if !sh.explicitViews {
			return 0, ""
		}
		for _, v := range sh.views {
			if v.admits(from) {
				req.View = v.level
				return 0, ""
			}
		}
		return codeNotMember, fmt.Sprintf("peer %q is not a member of any view of group %q", from, sh.id)
	}
	v := sh.viewAt(req.View)
	if v == nil {
		return codeUnknownView, fmt.Sprintf("group %q has no view %d", sh.id, req.View)
	}
	if !v.admits(from) {
		return codeNotMember, fmt.Sprintf("peer %q is not a member of view %d of group %q", from, req.View, sh.id)
	}
	return 0, ""
}

// wireLevel is the view level replication stamps on wire frames: the real
// level for explicit multi-view groups, 0 for the implicit single view —
// gob omits zero-valued fields, so single-view groups' sync frames stay
// byte-identical to the pre-view service.
func (sh *modelShard) wireLevel(v *viewShard) int {
	if !sh.explicitViews {
		return 0
	}
	return v.level
}

// minSyncSeq is the group's replication low-water mark: the smallest last
// installed sync sequence across its views. A restarted leader flooring its
// numbering here can never skip a view that lagged the others.
func (sh *modelShard) minSyncSeq() uint64 {
	min := sh.views[0].syncSeq.Load()
	for _, v := range sh.views[1:] {
		if s := v.syncSeq.Load(); s < min {
			min = s
		}
	}
	return min
}

// minSyncCovered is the smallest installed sync coverage across the group's
// views, the conservative staleness base.
func (sh *modelShard) minSyncCovered() int64 {
	min := sh.views[0].syncCovered.Load()
	for _, v := range sh.views[1:] {
		if c := v.syncCovered.Load(); c < min {
			min = c
		}
	}
	return min
}

// memberSet builds a Members ACL lookup set; empty input means no ACL (nil).
func memberSet(group string, members []string) (map[string]struct{}, error) {
	if len(members) == 0 {
		return nil, nil
	}
	set := make(map[string]struct{}, len(members))
	for _, m := range members {
		if m == "" {
			return nil, fmt.Errorf("group %q has an empty member name", group)
		}
		set[m] = struct{}{}
	}
	return set, nil
}

// refitJob is one snapshot handoff from the ingest goroutine to the refit
// goroutine: the grown training set plus the staleness count its fit will
// cover, so a successful swap can retire exactly those records from the
// staleness gauge.
type refitJob struct {
	snapshot *dataset.Dataset
	stale    int64
}

// viewSpecsFor normalizes a group spec's view list: explicit views are
// validated (positive strictly increasing levels, non-negative non-decreasing
// sigmas, a classifier source per view, no group-level model alongside);
// a nil list becomes the single implicit level-1 view carrying the group's
// own model fields.
func viewSpecsFor(spec GroupSpec) ([]ViewSpec, bool, error) {
	if len(spec.Views) == 0 {
		if spec.Model == nil && spec.NewModel == nil {
			return nil, false, fmt.Errorf("%w: group %q has a nil classifier", ErrBadConfig, spec.ID)
		}
		return []ViewSpec{{Level: 1, Model: spec.Model, NewModel: spec.NewModel}}, false, nil
	}
	if spec.Model != nil || spec.NewModel != nil {
		return nil, false, fmt.Errorf(
			"%w: group %q sets both a group-level model and Views; multi-level groups carry per-view models only",
			ErrBadConfig, spec.ID)
	}
	prevLevel, prevSigma := 0, 0.0
	for _, vs := range spec.Views {
		if vs.Level <= prevLevel {
			return nil, false, fmt.Errorf(
				"%w: group %q view levels must be positive and strictly increasing (level %d after %d)",
				ErrBadConfig, spec.ID, vs.Level, prevLevel)
		}
		if vs.NoiseSigma < 0 || vs.NoiseSigma < prevSigma {
			return nil, false, fmt.Errorf(
				"%w: group %q view noise must be non-negative and non-decreasing (view %d has σ=%v after σ=%v)",
				ErrBadConfig, spec.ID, vs.Level, vs.NoiseSigma, prevSigma)
		}
		if vs.Model == nil && vs.NewModel == nil {
			return nil, false, fmt.Errorf("%w: group %q view %d has a nil classifier", ErrBadConfig, spec.ID, vs.Level)
		}
		prevLevel, prevSigma = vs.Level, vs.NoiseSigma
	}
	return spec.Views, true, nil
}

// viewTrainingSets derives every view's training data from one coalesced
// snapshot: the group's correlated noise ladder is drawn over the snapshot
// once (perturb.NoiseLadder — lower-trust noise is higher-trust noise plus
// an independent increment, never an independent draw) and view i trains on
// snapshot + Δ_i. The snapshot itself is treated read-only; every returned
// dataset is the caller's to own. Single-view zero-noise groups skip the
// ladder entirely.
func viewTrainingSets(rng *rand.Rand, views []*viewShard, snapshot *dataset.Dataset) ([]*dataset.Dataset, error) {
	sigmas := make([]float64, len(views))
	noised := false
	for i, v := range views {
		sigmas[i] = v.sigma
		if v.sigma > 0 {
			noised = true
		}
	}
	var ladder []*matrix.Dense
	if noised {
		var err error
		ladder, err = perturb.NoiseLadder(rng, snapshot.Dim(), snapshot.Len(), sigmas)
		if err != nil {
			return nil, err
		}
	}
	out := make([]*dataset.Dataset, len(views))
	for i, v := range views {
		ds := snapshot.Clone()
		if ladder != nil && v.sigma > 0 {
			// Ladder matrices are d×N columns-per-record; dataset rows are
			// records, so record r takes ladder column r.
			noise := ladder[i]
			for r := range ds.X {
				for c := range ds.X[r] {
					ds.X[r][c] += noise.At(c, r)
				}
			}
		}
		out[i] = ds
	}
	return out, nil
}

// newModelShard validates one group spec, trains its initial per-view models
// on its unified dataset and assembles the shard.
func newModelShard(spec GroupSpec, cfg ServiceConfig) (*modelShard, error) {
	if spec.ID == "" {
		return nil, fmt.Errorf("%w: empty group id", ErrBadConfig)
	}
	if spec.Unified == nil || spec.Unified.Len() == 0 {
		return nil, fmt.Errorf("%w: group %q has no unified dataset", ErrBadConfig, spec.ID)
	}
	viewSpecs, explicit, err := viewSpecsFor(spec)
	if err != nil {
		return nil, err
	}
	if spec.Workers < 0 {
		return nil, fmt.Errorf("%w: group %q has a negative worker count %d", ErrBadConfig, spec.ID, spec.Workers)
	}
	if spec.MaxBatch < 0 {
		return nil, fmt.Errorf("%w: group %q has a negative batch cap %d", ErrBadConfig, spec.ID, spec.MaxBatch)
	}
	if spec.QueueDepth < 0 {
		return nil, fmt.Errorf("%w: group %q has a negative queue depth %d", ErrBadConfig, spec.ID, spec.QueueDepth)
	}
	refitEvery := spec.RefitEvery
	if refitEvery == 0 {
		refitEvery = cfg.RefitEvery
	}
	// Assemble the view shards and resolve each view's fresh-instance source
	// for background refits: an explicit factory wins, a cloneable model
	// works too. With refits enabled every view needs one — retraining a
	// live instance in place would reintroduce the corruption-on-failed-fit
	// bug the swap design kills.
	views := make([]*viewShard, len(viewSpecs))
	canRefit := true
	for i, vs := range viewSpecs {
		newModel := vs.NewModel
		if newModel == nil {
			if cloner, ok := vs.Model.(classify.Cloner); ok {
				newModel = cloner.Clone
			}
		}
		if newModel == nil {
			canRefit = false
		}
		viewMembers, err := memberSet(spec.ID, vs.Members)
		if err != nil {
			return nil, fmt.Errorf("%w: view %d: %v", ErrBadConfig, vs.Level, err)
		}
		v := &viewShard{level: vs.Level, sigma: vs.NoiseSigma, newModel: newModel}
		v.members.Store(&viewMembers)
		views[i] = v
	}
	if refitEvery > 0 && !canRefit {
		if spec.SyncFrom == "" {
			return nil, fmt.Errorf(
				"%w: group %q model cannot refit in the background: set GroupSpec.NewModel or implement classify.Cloner (or disable refits)",
				ErrBadConfig, spec.ID)
		}
		// A replica without a fresh-instance source cannot refit even if it
		// is later promoted to leader; disable the cadence rather than reject
		// the spec (the shard still serves and installs syncs).
		refitEvery = -1
	}
	// The noise ladder's RNG is seeded from the group ID alone, so a group's
	// replicas (and its restarts) draw identical ladders for identical
	// snapshots — per-view model divergence across a cluster stays a matter
	// of replication lag, never of noise luck.
	seed := fnv.New64a()
	seed.Write([]byte(spec.ID))
	viewRng := rand.New(rand.NewSource(int64(seed.Sum64())))

	training := spec.Unified.Clone()
	viewSets, err := viewTrainingSets(viewRng, views, training)
	if err != nil {
		return nil, fmt.Errorf("%w: group %q views: %v", ErrBadConfig, spec.ID, err)
	}
	for i, vs := range viewSpecs {
		model := vs.Model
		if model == nil {
			if model = views[i].newModel(); model == nil {
				return nil, fmt.Errorf("%w: group %q model factory returned nil", ErrBadConfig, spec.ID)
			}
		}
		if err := model.Fit(viewSets[i]); err != nil {
			return nil, fmt.Errorf("protocol: train group %q model: %w", spec.ID, err)
		}
		views[i].model.Store(&model)
	}
	workers := spec.Workers
	if workers == 0 {
		workers = cfg.Workers
	}
	maxBatch := spec.MaxBatch
	if maxBatch == 0 {
		maxBatch = cfg.MaxBatch
	}
	members, err := memberSet(spec.ID, spec.Members)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	ingestDepth, jobDepth := shardIngestQueueDepth, shardJobQueueDepth
	if spec.QueueDepth > 0 {
		ingestDepth, jobDepth = spec.QueueDepth, spec.QueueDepth
	}
	ns := "service." + spec.ID + "."
	sh := &modelShard{
		id:            spec.ID,
		dim:           training.Dim(),
		workers:       workers,
		queueDepth:    ingestDepth,
		f32:           spec.Float32,
		views:         views,
		explicitViews: explicit,
		viewRng:       viewRng,
		canRefit:      canRefit,
		training:      training,
		jobs:          make(chan serviceJob, jobDepth),
		ingestQ:       make(chan serviceJob, ingestDepth),
		refitQ:        make(chan refitJob, 1),

		mRequests:      cfg.Metrics.Counter(ns + "requests"),
		mBatchSize:     cfg.Metrics.Histogram(ns + "batch_size"),
		mIngestChunks:  cfg.Metrics.Counter(ns + "ingest.chunks"),
		mIngestRecs:    cfg.Metrics.Counter(ns + "ingest.records"),
		mQueueDepth:    cfg.Metrics.Gauge(ns + "ingest.queue_depth"),
		mRefits:        cfg.Metrics.Counter(ns + "refit.count"),
		mRefitNanos:    cfg.Metrics.Histogram(ns + "refit.ns"),
		mRefitErrors:   cfg.Metrics.Counter(ns + "refit.errors"),
		mRefitInflight: cfg.Metrics.Gauge(ns + "refit.inflight"),
		mNotMember:     cfg.Metrics.Counter(ns + "rejects.not_member"),
		mBusy:          cfg.Metrics.Counter(ns + "rejects.busy"),
		mStaleness:     cfg.Metrics.Gauge(ns + "staleness_records"),
		mSyncInstalls:  cfg.Metrics.Counter(ns + "sync.installs"),
		mSyncRejects:   cfg.Metrics.Counter(ns + "sync.rejects"),
		mSyncSeq:       cfg.Metrics.Gauge(ns + "sync.seq"),
		mQuota:         cfg.Metrics.Counter(ns + "rejects.quota"),
		mRefitRetries:  cfg.Metrics.Counter(ns + "refit.retries"),
		mUnknownView:   cfg.Metrics.Counter(ns + "rejects.unknown_view"),
	}
	// Per-view instruments exist only for explicit multi-level groups;
	// implicit single-view groups keep their flat namespace unchanged.
	viewMetrics := metrics.Nop()
	if explicit {
		viewMetrics = cfg.Metrics
	}
	for _, v := range views {
		vns := ns + "view." + strconv.Itoa(v.level) + "."
		v.mRequests = viewMetrics.Counter(vns + "requests")
		v.mRefits = viewMetrics.Counter(vns + "refit.count")
		v.mSyncInstalls = viewMetrics.Counter(vns + "sync.installs")
		v.mSyncSeq = viewMetrics.Gauge(vns + "sync.seq")
	}
	sh.limits.Store(&shardLimits{
		maxBatch:   maxBatch,
		refitEvery: refitEvery,
		members:    members,
		quota:      newTokenBucket(spec.Quota),
		quotaCfg:   spec.Quota,
	})
	if cfg.OnModelSwap != nil {
		hook, group := cfg.OnModelSwap, spec.ID
		sh.onSwap = func(level int, m classify.Classifier) { hook(group, level, m) }
	}
	leader := spec.SyncFrom
	sh.syncFrom.Store(&leader)
	return sh, nil
}

// leader returns the endpoint this shard currently replicates from; empty
// when the shard leads its group.
func (sh *modelShard) leader() string { return *sh.syncFrom.Load() }

// admits reports whether the named peer may address this group.
func (sh *modelShard) admits(peer string) bool {
	members := sh.limits.Load().members
	if members == nil {
		return true
	}
	_, ok := members[peer]
	return ok
}

// stop drains and retires the shard's lanes: the ingest queue closes and
// drains first — queued chunks still fold in and answer — then the refit
// and prediction goroutines finish their queues and exit. Idempotent. Must
// not be called while new dispatches can still reach the shard (the caller
// removes it from the routing map first, under the service's write lock).
func (sh *modelShard) stop() {
	sh.stopOnce.Do(func() {
		close(sh.ingestQ)
		sh.ingestWg.Wait()
		// The ingest goroutine is the only refit scheduler; with it drained
		// the refit queue can close, and a scheduled refit still completes.
		close(sh.refitQ)
		close(sh.jobs)
		sh.workerWg.Wait()
		sh.refitWg.Wait()
	})
}

// MiningService is the miner-side classification endpoint: one model shard
// per serving group, each trained on that group's unified perturbed dataset,
// answering batched queries that arrive in the group's target space. This
// realizes the paper's service-oriented framing — the service provider
// "offers their data mining services to the contracted parties" — scaled to
// many contracts per process.
//
// Training sets are not frozen at construction: providers may keep pushing
// streamed chunks of perturbed, target-space records
// (ServiceClient.PushChunk feeding an internal/stream pipeline), which the
// addressed group folds into its training set and periodically refits on
// (ServiceConfig.RefitEvery, overridable per group). Refits run on a
// per-group background goroutine that fits a fresh model instance and
// atomically swaps it in, so a refit never blocks anyone's queries — not
// even the refitting group's own — and a group whose bounded queues
// overflow is answered with a typed busy rejection instead of stalling the
// shared receive loop.
type MiningService struct {
	conn transport.Conn
	cfg  ServiceConfig

	// mu guards the shard registry (shards, order) and the serve-lifecycle
	// flags: the receive loop holds the read lock across route + dispatch
	// (both non-blocking), while the admin control plane takes the write
	// lock to insert or remove a shard — so an evicted shard's queues close
	// only after every in-flight dispatch to it has finished.
	mu       sync.RWMutex
	shards   map[string]*modelShard
	order    []string // registration order, for Groups()
	stopping bool     // set by shutdown; registers are refused past it

	// out is the response channel into the single sender goroutine, set by
	// Serve before any shard starts; admin goroutines respond through it.
	out chan serviceOut
	// adminWg tracks in-flight admin register/evict goroutines so shutdown
	// waits them out before closing out.
	adminWg sync.WaitGroup

	// routes is the cluster routing table served to kindRoutes requests
	// (ServiceConfig.Routes, copied at construction; empty when standalone).
	routes []RouteEntry

	// peerCaps records the last wire-capability mask (serviceWire.Accept)
	// each peer advertised, keyed by transport endpoint name, stamped with
	// when it was seen (masks older than cfg.CapTTL count as zero). The
	// serve loop writes it for every decoded frame carrying a non-zero
	// mask; the response path and the cluster layer (FrameOptsFor) read it
	// to decide which peers may be sent v7 compressed/float32 frames.
	peerCaps sync.Map // string -> capStamp

	// mUnknownGroup counts frames addressed to groups this service does not
	// host — the one rejection with no shard namespace to land in.
	mUnknownGroup metrics.Counter
	// Admin control-plane instruments (service-wide).
	mAdminRegisters metrics.Counter // groups registered at runtime
	mAdminEvicts    metrics.Counter // groups evicted at runtime
	mAdminUpdates   metrics.Counter // in-place limit updates applied
	mAdminLists     metrics.Counter // list requests answered
	mAdminDenied    metrics.Counter // admin frames refused authentication
}

// NewMiningService trains the given classifier on the miner's unified
// dataset and binds a single-group service (under DefaultGroup) to a
// transport endpoint. The zero ServiceConfig selects the defaults.
func NewMiningService(conn transport.Conn, result *MinerResult, model classify.Classifier, cfg ServiceConfig) (*MiningService, error) {
	if result == nil || result.Unified == nil || result.Unified.Len() == 0 {
		return nil, fmt.Errorf("%w: no unified dataset", ErrBadConfig)
	}
	return NewGroupedMiningService(conn,
		[]GroupSpec{{ID: DefaultGroup, Unified: result.Unified, Model: model}}, cfg)
}

// NewGroupedMiningService trains one model shard per group and binds the
// sharded service to a transport endpoint. Group IDs must be unique; the
// zero ServiceConfig selects the defaults for every group.
func NewGroupedMiningService(conn transport.Conn, groups []GroupSpec, cfg ServiceConfig) (*MiningService, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("%w: no serving groups", ErrBadConfig)
	}
	cfg = cfg.withDefaults()
	s := &MiningService{
		conn:            conn,
		cfg:             cfg,
		shards:          make(map[string]*modelShard, len(groups)),
		mUnknownGroup:   cfg.Metrics.Counter("service.rejects.unknown_group"),
		mAdminRegisters: cfg.Metrics.Counter("service.admin.registers"),
		mAdminEvicts:    cfg.Metrics.Counter("service.admin.evicts"),
		mAdminUpdates:   cfg.Metrics.Counter("service.admin.updates"),
		mAdminLists:     cfg.Metrics.Counter("service.admin.lists"),
		mAdminDenied:    cfg.Metrics.Counter("service.admin.denied"),
	}
	for _, r := range cfg.Routes {
		s.routes = append(s.routes, RouteEntry{
			Group: r.Group, Node: r.Node, Epoch: r.Epoch,
			Replicas: append([]string(nil), r.Replicas...)})
	}
	for _, spec := range groups {
		if _, dup := s.shards[spec.ID]; dup {
			return nil, fmt.Errorf("%w: duplicate group id %q", ErrBadConfig, spec.ID)
		}
		sh, err := newModelShard(spec, cfg)
		if err != nil {
			return nil, err
		}
		s.shards[spec.ID] = sh
		s.order = append(s.order, spec.ID)
	}
	return s, nil
}

// Groups returns the hosted group IDs in registration order. Safe to call
// concurrently with Serve; the admin control plane may grow or shrink the
// set at runtime.
func (s *MiningService) Groups() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]string(nil), s.order...)
}

// shard looks a hosted group's shard up under the registry lock.
func (s *MiningService) shard(group string) (*modelShard, error) {
	s.mu.RLock()
	sh, ok := s.shards[group]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownGroup, group)
	}
	return sh, nil
}

// Ingested returns the number of streamed records folded into training sets
// so far, summed over all groups. It is safe to call concurrently with
// Serve.
func (s *MiningService) Ingested() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	total := 0
	for _, sh := range s.shards {
		total += int(sh.ingested.Load())
	}
	return total
}

// GroupIngested returns one group's lifetime ingest count. It is safe to
// call concurrently with Serve.
func (s *MiningService) GroupIngested(group string) (int, error) {
	sh, err := s.shard(group)
	if err != nil {
		return 0, err
	}
	return int(sh.ingested.Load()), nil
}

// GroupModel returns one group's currently served primary-view classifier
// (the atomic the prediction workers load; multi-level groups' lower views
// come from GroupViewModels). The instance is never mutated after publish,
// so callers may encode it concurrently with serving; the cluster layer
// does, for anti-entropy re-pushes.
func (s *MiningService) GroupModel(group string) (classify.Classifier, error) {
	sh, err := s.shard(group)
	if err != nil {
		return nil, err
	}
	return *sh.primary().model.Load(), nil
}

// GroupViewModel pairs one trust view's level with its currently served
// classifier.
type GroupViewModel struct {
	Level int
	Model classify.Classifier
}

// GroupViewModels returns every view's currently served classifier in
// ascending level order. Levels follow the wire convention OnModelSwap
// uses: explicit multi-view groups report their real levels, single-view
// groups one entry at level 0, stampable on sync frames verbatim. The
// instances are never mutated after publish; the cluster layer encodes them
// concurrently with serving for per-view replication and anti-entropy
// re-pushes.
func (s *MiningService) GroupViewModels(group string) ([]GroupViewModel, error) {
	sh, err := s.shard(group)
	if err != nil {
		return nil, err
	}
	out := make([]GroupViewModel, len(sh.views))
	for i, v := range sh.views {
		out[i] = GroupViewModel{Level: sh.wireLevel(v), Model: *v.model.Load()}
	}
	return out, nil
}

// GroupSyncSeq returns the sequence of the last model sync one group
// installed across all of its views — the minimum per-view sequence, so a
// view that lagged the others is never skipped (0 if none). A promoted or
// restarted leader floors its own numbering at the sequences its replicas
// report. Safe to call concurrently with Serve.
func (s *MiningService) GroupSyncSeq(group string) (uint64, error) {
	sh, err := s.shard(group)
	if err != nil {
		return 0, err
	}
	return sh.minSyncSeq(), nil
}

// GroupSyncCovered returns the leader ingest count the group's last
// installed sync covered (the minimum across views). Safe to call
// concurrently with Serve.
func (s *MiningService) GroupSyncCovered(group string) (int64, error) {
	sh, err := s.shard(group)
	if err != nil {
		return 0, err
	}
	return sh.minSyncCovered(), nil
}

// SetGroupLead promotes one group's shard to leader at runtime: ingest is
// accepted again and model syncs are no longer authorized from anyone. The
// cluster layer calls it when failover elects this node, or when a
// higher-epoch row names it leader.
func (s *MiningService) SetGroupLead(group string) error {
	sh, err := s.shard(group)
	if err != nil {
		return err
	}
	leader := ""
	sh.syncFrom.Store(&leader)
	return nil
}

// SetGroupFollow demotes one group's shard to a read replica of the named
// leader at runtime: ingest is answered with ErrNotLeader and only the
// leader's model syncs install. The cluster layer calls it when a
// higher-epoch row demotes a restarted old leader.
func (s *MiningService) SetGroupFollow(group, leader string) error {
	if leader == "" {
		return fmt.Errorf("%w: empty sync source for group %q", ErrBadConfig, group)
	}
	sh, err := s.shard(group)
	if err != nil {
		return err
	}
	sh.syncFrom.Store(&leader)
	return nil
}

// ReportSyncLag sets one replica group's staleness_records gauge to the given
// record count. The cluster layer derives it from the gap between a leader
// hello's coverage and the replica's installed coverage; an install resets
// the gauge to zero.
func (s *MiningService) ReportSyncLag(group string, records int64) error {
	sh, err := s.shard(group)
	if err != nil {
		return err
	}
	if records < 0 {
		records = 0
	}
	sh.mStaleness.Set(records)
	return nil
}

// PeerAccept returns the last wire-capability mask the named peer advertised
// (0 for peers never seen, older than v7, or whose advertisement has aged
// past ServiceConfig.CapTTL — a peer downgraded in place goes classic again
// once its last mask expires). Safe to call concurrently with Serve; the
// cluster layer keys its replication framing off it.
func (s *MiningService) PeerAccept(peer string) uint8 {
	v, ok := s.peerCaps.Load(peer)
	if !ok {
		return 0
	}
	stamp := v.(capStamp)
	if stamp.expired(s.cfg.CapTTL) {
		return 0
	}
	return stamp.mask
}

// acceptMask is the capability advertisement this service stamps on every
// response: float32 decoding is always safe; deflate is advertised only when
// compression is enabled (both sides must opt in before frames compress).
func (s *MiningService) acceptMask() uint8 {
	m := acceptFloat32
	if s.cfg.Compression {
		m |= acceptDeflate
	}
	return m
}

// noteAccept records a peer's advertised capability mask with a fresh
// timestamp (active peers never expire). Zero masks are not recorded (old
// peers advertise nothing), so a capable mask, once observed, is never
// clobbered by pre-upgrade traffic still in flight — only aged out by the
// capability TTL once the peer stops advertising.
func (s *MiningService) noteAccept(peer string, mask uint8) {
	if mask != 0 && peer != "" {
		s.peerCaps.Store(peer, capStamp{mask: mask, at: time.Now()})
	}
}

// FrameOptsFor resolves the wire features to use toward one peer: the
// intersection of this service's configuration (and, for float32, the
// caller's per-group opt-in) with what the peer has advertised. Unseen or
// pre-v7 peers resolve to the zero FrameOpts — classic plain frames.
func (s *MiningService) FrameOptsFor(peer string, wantFloat32 bool) FrameOpts {
	caps := s.PeerAccept(peer)
	return FrameOpts{
		Compress: s.cfg.Compression && caps&acceptDeflate != 0,
		Float32:  wantFloat32 && caps&acceptFloat32 != 0,
		accept:   s.acceptMask(),
	}
}

// encodeResponse frames one response toward the peer that sent req: the
// response advertises this service's capabilities and compresses only when
// both sides opted in (req carried acceptDeflate and Compression is on).
// req may be nil (undecodable-version rejections), which forces classic.
func (s *MiningService) encodeResponse(req, resp *serviceWire) ([]byte, error) {
	resp.Accept = s.acceptMask()
	deflate := s.cfg.Compression && req != nil && req.Accept&acceptDeflate != 0
	return encodeServiceFrame(resp, frameOpts{deflate: deflate})
}

// serviceJob is one accepted request travelling from the receive loop to the
// addressed shard's prediction pool (classify) or ingest goroutine (ingest).
type serviceJob struct {
	from string
	req  *serviceWire
}

// serviceOut is one encoded response travelling from a worker to the single
// sender goroutine (transport connections are not required to support
// concurrent writers).
type serviceOut struct {
	to      string
	payload []byte
}

// route resolves a request frame to its group's shard. A nil shard comes
// with a typed rejection response to send instead: the group is unknown, or
// the peer is not among the group's members.
func (s *MiningService) route(req *serviceWire, from string) (*modelShard, *serviceWire) {
	group := req.Group
	if group == "" {
		group = DefaultGroup
	}
	sh, ok := s.shards[group]
	if !ok {
		s.mUnknownGroup.Inc()
		return nil, &serviceWire{ID: req.ID, Kind: req.Kind, Group: req.Group, Response: true,
			Code: codeUnknownGroup, Err: fmt.Sprintf("no serving group %q", group)}
	}
	if req.Kind == kindModelSync {
		// Sync frames carry replacement models, so they are authorized
		// against the replica's current leader, not the Members ACL: only
		// the SyncFrom endpoint may install, and leader shards accept none.
		if leader := sh.leader(); leader == "" || from != leader {
			sh.mSyncRejects.Inc()
			return nil, suppressForSync(req, &serviceWire{
				ID: req.ID, Kind: req.Kind, Group: req.Group, Response: true,
				Code: codeNotMember, Err: fmt.Sprintf("peer %q is not group %q's sync source", from, group)})
		}
		// The blob must name a view the group serves; view 0 installs to
		// the primary view (stamped here so installSync need not re-resolve,
		// but only on explicit multi-level groups — implicit groups keep
		// their frames untouched).
		if req.View != 0 && sh.viewAt(req.View) == nil {
			sh.mSyncRejects.Inc()
			sh.mUnknownView.Inc()
			return nil, suppressForSync(req, &serviceWire{
				ID: req.ID, Kind: req.Kind, Group: req.Group, View: req.View, Response: true,
				Code: codeUnknownView, Err: fmt.Sprintf("group %q has no view %d", group, req.View)})
		}
		if req.View == 0 && sh.explicitViews {
			req.View = sh.primary().level
		}
		return sh, nil
	}
	if !sh.admits(from) {
		sh.mNotMember.Inc()
		return nil, &serviceWire{ID: req.ID, Kind: req.Kind, Group: req.Group, Response: true,
			Code: codeNotMember, Err: fmt.Sprintf("peer %q is not a member of group %q", from, group)}
	}
	if req.Kind == kindIngest {
		if leader := sh.leader(); leader != "" {
			return nil, &serviceWire{ID: req.ID, Kind: req.Kind, Group: req.Group, Response: true,
				Code: codeNotLeader, Err: fmt.Sprintf("group %q is a read replica synced from %q", group, leader)}
		}
	}
	// Classify and ingest frames additionally resolve the trust view they
	// address — an explicit level must exist and admit the sender, level 0
	// routes to the sender's highest-authorized view.
	if code, msg := sh.resolveView(req, from); code != 0 {
		if code == codeUnknownView {
			sh.mUnknownView.Inc()
		} else {
			sh.mNotMember.Inc()
		}
		return nil, &serviceWire{ID: req.ID, Kind: req.Kind, Group: req.Group, View: req.View,
			Response: true, Code: code, Err: msg}
	}
	return sh, nil
}

// suppressForSync drops the response for fire-and-forget sync frames (ID 0)
// — their senders are not waiting — and passes it through otherwise.
func suppressForSync(req, resp *serviceWire) *serviceWire {
	if req.ID == 0 {
		return nil
	}
	return resp
}

// Serve answers classification and ingest requests until ctx is cancelled
// or the transport closes. Classify requests are dispatched to the
// addressed group's dedicated prediction pool (GroupSpec.Workers,
// defaulting to cfg.Workers goroutines per group) through a bounded
// per-group job queue; ingest requests are dispatched to the addressed
// group's dedicated ingest goroutine, so appends stay ordered within a
// group. When a group's queue is full the frame is answered immediately
// with a typed busy rejection (ErrBusy on the client) — the shared receive
// loop never blocks on one group's backlog, so a wedged group can never
// stall another group's traffic. Refits triggered by ingest run on a
// per-shard refit goroutine that fits a fresh model instance and atomically
// swaps it in (see modelShard), so the ingest lane stays responsive during
// even the slowest retrain. Responses funnel through one sender.
// Malformed frames are answered with a typed error response (or dropped
// when they cannot be attributed) rather than terminating the service.
func (s *MiningService) Serve(ctx context.Context) error {
	s.mu.Lock()
	// One response-buffer slot per prediction goroutine across all pools,
	// floored so runtime-registered shards (whose workers were unknown when
	// the channel was sized) still get slack.
	totalWorkers := 0
	for _, sh := range s.shards {
		totalWorkers += sh.workers
	}
	if totalWorkers < 64 {
		totalWorkers = 64
	}
	s.out = make(chan serviceOut, totalWorkers)
	out := s.out

	var senderWg sync.WaitGroup
	senderWg.Add(1)
	go func() {
		defer senderWg.Done()
		for o := range out {
			// Bound each response write so one peer that stops reading
			// cannot wedge the sender (and with it every worker) forever;
			// a timed-out connection is dropped by the transport and the
			// requester simply re-dials. The requester may also have gone
			// away entirely; either way, keep serving others.
			sendCtx, cancel := context.WithTimeout(ctx, serviceSendTimeout)
			_ = s.conn.Send(sendCtx, o.to, o.payload)
			cancel()
		}
	}()

	for _, sh := range s.shards {
		s.startShard(sh)
	}
	s.mu.Unlock()

	shutdown := func() {
		// Refuse new admin registrations, then wait out in-flight ones (they
		// respond through out, which is about to close).
		s.mu.Lock()
		s.stopping = true
		s.mu.Unlock()
		s.adminWg.Wait()
		s.mu.RLock()
		shards := make([]*modelShard, 0, len(s.shards))
		for _, sh := range s.shards {
			shards = append(shards, sh)
		}
		s.mu.RUnlock()
		// Per-shard stop drains each ingest queue before closing the refit
		// queue, so a scheduled refit still completes during shutdown —
		// refit counts stay deterministic for callers that stop the service
		// right after a push.
		for _, sh := range shards {
			sh.stop()
		}
		close(out)
		senderWg.Wait()
	}

	for {
		env, err := s.conn.Recv(ctx)
		if err != nil {
			shutdown()
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
				errors.Is(err, transport.ErrClosed) {
				return nil
			}
			return err
		}
		req, err := decodeServiceWire(env.Payload)
		switch {
		case req == nil && err == nil:
			continue // not a service frame; drop
		case errors.Is(err, ErrWireVersion):
			// Echo the routing context (ID, Kind, Group) whenever the frame
			// decoded, so ingest-side clients can attribute the rejection.
			resp := &serviceWire{Response: true, Code: codeWireVersion, Err: err.Error()}
			if req != nil {
				resp.ID, resp.Kind, resp.Group = req.ID, req.Kind, req.Group
			}
			if payload, encErr := s.encodeResponse(req, resp); encErr == nil {
				out <- serviceOut{to: env.From, payload: payload}
			}
			continue
		case err != nil || req.Response:
			continue // undecodable or stray response frame; drop
		}
		// Every valid frame doubles as the sender's capability hello; record
		// it before any branch so responses (and later cluster sends) to this
		// peer can use the features it accepts.
		s.noteAccept(env.From, req.Accept)
		if req.Kind == kindRoutes {
			// Discovery is service-wide, not group-routed: any node answers
			// with the cluster table it was configured with (empty when
			// standalone), or a live epoch-stamped snapshot when the cluster
			// layer hooked RoutesFunc. Encoding a small table inline keeps the
			// admin path out of every shard's queues.
			entries, epoch := s.routes, uint64(0)
			if s.cfg.RoutesFunc != nil {
				entries, epoch = s.cfg.RoutesFunc()
			}
			resp := &serviceWire{ID: req.ID, Kind: kindRoutes, Response: true,
				Routes: entries, Epoch: epoch}
			if payload, encErr := s.encodeResponse(req, resp); encErr == nil {
				out <- serviceOut{to: env.From, payload: payload}
			}
			continue
		}
		if req.Kind == kindSyncHello || req.Kind == kindSyncState {
			// Durability gossip is cluster-layer business: hand the
			// observation to the hook (which must not block) and move on. A
			// standalone service without the hook just drops it — the frames
			// are fire-and-forget, nobody is waiting.
			if s.cfg.OnSyncGossip != nil {
				g := SyncGossip{
					Hello: req.Kind == kindSyncHello, From: env.From, Group: req.Group,
					Seq: req.Seq, Epoch: req.Epoch, Covered: req.Covered,
				}
				if len(req.Routes) > 0 {
					row := req.Routes[0]
					g.Row = &row
				}
				s.cfg.OnSyncGossip(g)
			}
			continue
		}
		if isAdminControl(req.Kind) {
			s.handleAdmin(req, env.From)
			continue
		}
		// The read lock spans route + dispatch (both non-blocking), so an
		// admin evict — which needs the write lock to unmap the shard —
		// cannot close the shard's queues while a dispatch to it is in
		// flight.
		s.mu.RLock()
		shard, reject := s.route(req, env.From)
		if shard != nil {
			reject = shard.dispatch(req, env.From)
		}
		s.mu.RUnlock()
		if reject != nil {
			if payload, encErr := s.encodeResponse(req, reject); encErr == nil {
				out <- serviceOut{to: env.From, payload: payload}
			}
		}
	}
}

// startShard spawns one shard's serving goroutines — prediction pool,
// ingest lane, refit loop — onto the shard's own wait groups, so the shard
// can later be stopped individually (admin evict) or collectively
// (shutdown). Called at Serve start for constructed shards and by the admin
// control plane for runtime registrations.
func (s *MiningService) startShard(sh *modelShard) {
	out := s.out
	for i := 0; i < sh.workers; i++ {
		sh.workerWg.Add(1)
		go func() {
			defer sh.workerWg.Done()
			for j := range sh.jobs {
				payload, err := s.encodeResponse(j.req, sh.handle(j.req))
				if err != nil {
					continue
				}
				out <- serviceOut{to: j.from, payload: payload}
			}
		}()
	}
	sh.ingestWg.Add(1)
	go func() {
		defer sh.ingestWg.Done()
		for j := range sh.ingestQ {
			if sh.ingestHold != nil {
				<-sh.ingestHold // test seam; see modelShard.ingestHold
			}
			// Paired with the enqueue-side Add(1): deltas stay exact
			// under concurrent enqueue/dequeue, where Set(len(chan))
			// from two goroutines could leave a stale last write.
			sh.mQueueDepth.Add(-1)
			// Model syncs share the ingest lane so installs stay ordered
			// with respect to each other; a nil response is a suppressed
			// fire-and-forget acknowledgement.
			var resp *serviceWire
			if j.req.Kind == kindModelSync {
				resp = sh.installSync(j.req)
				// route() admitted the frame only from the shard's
				// current sync source, so even a replayed sequence
				// proves the leader is alive and publishing.
				if s.cfg.OnModelSync != nil {
					s.cfg.OnModelSync(sh.id, j.from, j.req.Seq)
				}
			} else {
				resp = sh.ingest(j.req)
			}
			if resp == nil {
				continue
			}
			payload, err := s.encodeResponse(j.req, resp)
			if err != nil {
				continue
			}
			out <- serviceOut{to: j.from, payload: payload}
		}
	}()
	sh.refitWg.Add(1)
	go func() {
		defer sh.refitWg.Done()
		sh.refitLoop(s.cfg.RefitRetry)
	}()
}

// refitLoop drains the shard's refit queue. A failed refit is parked and
// re-attempted after the retry delay (refit.retries), so a transient fit
// failure heals without waiting for the next ingest to cross the cadence; a
// newer scheduled snapshot supersedes the parked one. Runs on the shard's
// refit goroutine until the queue closes.
func (sh *modelShard) refitLoop(retry time.Duration) {
	var pending *refitJob
	var timer *time.Timer
	var timerC <-chan time.Time
	stopTimer := func() {
		if timer != nil {
			timer.Stop()
			timer, timerC = nil, nil
		}
	}
	defer stopTimer()
	run := func(job refitJob) {
		if sh.refit(job) || retry <= 0 {
			pending = nil
			stopTimer()
			return
		}
		pending = &job // the snapshot is this goroutine's own clone; retry re-fits it
		stopTimer()
		timer = time.NewTimer(retry)
		timerC = timer.C
	}
	for {
		select {
		case job, ok := <-sh.refitQ:
			if !ok {
				return
			}
			run(job)
		case <-timerC:
			timer, timerC = nil, nil
			if pending == nil {
				continue
			}
			sh.mRefitRetries.Inc()
			run(*pending)
		}
	}
}

// dispatch hands an accepted request to the shard's ingest goroutine or
// prediction pool without ever blocking the caller (the shared receive
// loop). A full queue returns an immediate typed busy rejection — the
// explicit backpressure answer: the client fails fast and retries with
// backoff instead of every group's traffic queueing behind one group's
// backlog.
func (sh *modelShard) dispatch(req *serviceWire, from string) *serviceWire {
	if req.Kind == kindIngest {
		// The quota gate runs before the queue, so an over-quota chunk answers
		// a typed ErrQuota within one round trip and never occupies queue
		// space a within-quota producer could use. Model syncs are exempt —
		// replication is the service's own traffic, not a tenant's.
		if q := sh.limits.Load().quota; q != nil && !q.take(float64(len(req.Batch))) {
			sh.mQuota.Inc()
			return &serviceWire{ID: req.ID, Kind: req.Kind, Group: req.Group, Response: true,
				Code: codeQuota, Err: fmt.Sprintf("group %q ingest quota exhausted", sh.id)}
		}
	}
	if req.Kind == kindIngest || req.Kind == kindModelSync {
		// Increment before the send so the dequeuer's Add(-1) — which can
		// only run after the send completes — never drives the gauge below
		// zero; the busy path undoes it. Model syncs ride the same lane so
		// installs serialize with each other; a busy rejection is silent
		// for fire-and-forget syncs (the leader re-publishes on the next
		// refit anyway).
		sh.mQueueDepth.Add(1)
		select {
		case sh.ingestQ <- serviceJob{from: from, req: req}:
			return nil
		default:
			sh.mQueueDepth.Add(-1)
			sh.mBusy.Inc()
			reject := &serviceWire{ID: req.ID, Kind: req.Kind, Group: req.Group, Response: true,
				Code: codeBusy, Err: fmt.Sprintf("group %q ingest queue full", sh.id)}
			if req.Kind == kindModelSync {
				return suppressForSync(req, reject)
			}
			return reject
		}
	}
	select {
	case sh.jobs <- serviceJob{from: from, req: req}:
		return nil
	default:
		sh.mBusy.Inc()
		return &serviceWire{ID: req.ID, Kind: req.Kind, Group: req.Group, Response: true,
			Code: codeBusy, Err: fmt.Sprintf("group %q prediction queue full", sh.id)}
	}
}

// ingest validates one streamed chunk, folds it into the shard's training
// set, and schedules a background refit when the refit cadence is reached —
// the fold is an append plus a snapshot handoff, so the ingest lane's
// latency stays flat no matter how slow the model's Fit is. Called only
// from the shard's ingest goroutine.
func (sh *modelShard) ingest(req *serviceWire) *serviceWire {
	// Ingest feeds the group's shared training set, so the resolved view
	// (stamped by route) only matters for authorization and the echo here.
	resp := &serviceWire{ID: req.ID, Kind: kindIngest, Group: req.Group, View: req.View, Response: true}
	lim := sh.limits.Load()
	if len(req.Batch) == 0 {
		resp.Code, resp.Err = codeBadChunk, "empty chunk"
		return resp
	}
	if len(req.Batch) > lim.maxBatch {
		resp.Code, resp.Err = codeBatchTooLarge,
			fmt.Sprintf("chunk has %d records, cap is %d", len(req.Batch), lim.maxBatch)
		return resp
	}
	if len(req.Labels) != len(req.Batch) {
		resp.Code, resp.Err = codeBadChunk,
			fmt.Sprintf("%d labels for %d records", len(req.Labels), len(req.Batch))
		return resp
	}
	for i, rec := range req.Batch {
		if len(rec) != sh.dim {
			resp.Code, resp.Err = codeBadChunk,
				fmt.Sprintf("record %d has %d features, want %d", i, len(rec), sh.dim)
			return resp
		}
		if req.Labels[i] < 0 {
			resp.Code, resp.Err = codeBadChunk, fmt.Sprintf("record %d has a negative label", i)
			return resp
		}
	}
	for i, rec := range req.Batch {
		sh.training.X = append(sh.training.X, append([]float64(nil), rec...))
		sh.training.Y = append(sh.training.Y, req.Labels[i])
	}
	sh.sinceRefit += len(req.Batch)
	sh.ingested.Add(int64(len(req.Batch)))
	sh.stale.Add(int64(len(req.Batch)))
	sh.mIngestChunks.Inc()
	sh.mIngestRecs.Add(int64(len(req.Batch)))
	sh.mStaleness.Add(int64(len(req.Batch)))
	resp.Accepted = sh.training.Len()
	// A background refit that failed since the last ingest answer is
	// reported exactly once, on the earliest ingest response: the chunk IS
	// in the training set (Accepted reflects that) but the live model lags
	// it, so the pusher learns not to re-push while the service keeps
	// serving on the previous fit. A successful refit clears the pending
	// report — the model caught up, there is no lag left to announce. The
	// check runs before this chunk's own scheduling, so a response never
	// reports the refit it just triggered, however fast that refit fails.
	if msg := sh.refitFail.Swap(nil); msg != nil {
		resp.Code, resp.Err = codeRefit, *msg
	}
	if lim.refitEvery > 0 && sh.sinceRefit >= lim.refitEvery && sh.scheduleRefit() {
		sh.sinceRefit = 0
	}
	return resp
}

// scheduleRefit hands a snapshot of the grown training set to the shard's
// refit goroutine. It never blocks: when the single-slot queue is already
// holding a pending refit the schedule is declined — the caller keeps
// sinceRefit accumulating and re-triggers on a later chunk, so refits
// coalesce instead of queueing without bound behind a slow Fit. Called only
// from the shard's ingest goroutine (the single producer, which makes the
// length check race-free).
func (sh *modelShard) scheduleRefit() bool {
	if len(sh.refitQ) == cap(sh.refitQ) {
		return false
	}
	// The snapshot covers every record appended so far, which is exactly
	// the current staleness count (both are written only by this
	// goroutine), so a successful fit can retire precisely that many
	// records from the gauge — records arriving during the fit stay stale.
	sh.refitQ <- refitJob{snapshot: sh.training.Clone(), stale: sh.stale.Load()}
	return true
}

// refit fits a fresh classifier instance per view on the snapshot — every
// view from the same coalesced snapshot under one jointly drawn noise ladder
// — and atomically publishes them on success (true). The live models are
// read-only throughout — workers keep predicting on the previous fits
// lock-free — and a failed fit (false) publishes nothing: either all views
// advance together or none does, so no coalition ever sees views fitted on
// different data rounds. The failure is recorded for the next ingest
// response (codeRefit), the refit.errors counter, and the refit loop's retry
// timer. Called only from the shard's refit goroutine.
func (sh *modelShard) refit(job refitJob) bool {
	sh.mRefitInflight.Set(1)
	defer sh.mRefitInflight.Set(0)
	start := time.Now()
	// Record the pending report before bumping the counter, so anyone who
	// observed the counter is guaranteed to find (or have raced another
	// reader for) the report.
	fail := func(msg string) bool {
		sh.refitFail.Store(&msg)
		sh.mRefitErrors.Inc()
		return false
	}
	viewSets, err := viewTrainingSets(sh.viewRng, sh.views, job.snapshot)
	if err != nil {
		return fail(fmt.Sprintf("protocol: refit group %q views: %v", sh.id, err))
	}
	fresh := make([]classify.Classifier, len(sh.views))
	for i, v := range sh.views {
		var model classify.Classifier
		if v.newModel != nil {
			model = v.newModel()
		}
		if model == nil {
			return fail(fmt.Sprintf("protocol: refit group %q model: factory returned nil", sh.id))
		}
		if err := model.Fit(viewSets[i]); err != nil {
			return fail(fmt.Sprintf("protocol: refit group %q model: %v", sh.id, err))
		}
		fresh[i] = model
	}
	// Publish every view, then fire the swap hooks: a replicator draining
	// the hooks always observes one consistent fit round.
	for i, v := range sh.views {
		m := fresh[i]
		v.model.Store(&m)
		v.mRefits.Inc()
	}
	sh.refitFail.Store(nil)
	// The fresh fits cover the snapshot's records: retire them from the
	// staleness gauge, leaving only what streamed in while they were
	// fitting.
	sh.stale.Add(-job.stale)
	sh.mStaleness.Add(-job.stale)
	// Count and time only completed refits, so refit.ns.sum/refit.count is
	// a true mean duration; failed attempts are visible via refit.errors.
	sh.mRefits.Inc()
	metrics.Time(sh.mRefitNanos, start)
	if sh.onSwap != nil {
		for i, v := range sh.views {
			sh.onSwap(sh.wireLevel(v), fresh[i])
		}
	}
	return true
}

// installSync installs one leader-replicated model on a replica shard:
// decode the blob, check the sequence is newer than the last install, and
// publish with the same atomic store a local refit would use — prediction
// workers never block. Stale or duplicate sequences are ignored (idempotent
// re-delivery), counted under sync.rejects. Called only from the shard's
// ingest goroutine, which serializes installs. A nil response means the
// frame was fire-and-forget (ID 0) and expects no answer.
func (sh *modelShard) installSync(req *serviceWire) *serviceWire {
	resp := &serviceWire{ID: req.ID, Kind: kindModelSync, Group: req.Group, View: req.View, Response: true}
	// route() already verified an explicit view exists and normalized view 0
	// on multi-level groups; the primary fallback covers implicit groups
	// (whose frames keep View 0 end to end).
	v := sh.viewAt(req.View)
	if v == nil {
		v = sh.primary()
	}
	if req.Seq <= v.syncSeq.Load() {
		// Re-delivered or reordered frame: the newer model is already live,
		// so this is an idempotent success, not an error.
		sh.mSyncRejects.Inc()
		return suppressForSync(req, resp)
	}
	model, err := classify.DecodeModel(req.Model)
	if err != nil {
		sh.mSyncRejects.Inc()
		resp.Code, resp.Err = codeBadChunk, fmt.Sprintf("model sync: %v", err)
		return suppressForSync(req, resp)
	}
	v.model.Store(&model)
	v.syncSeq.Store(req.Seq)
	v.syncCovered.Store(req.Covered)
	sh.mSyncInstalls.Inc()
	v.mSyncInstalls.Inc()
	v.mSyncSeq.Set(int64(req.Seq))
	// The group-level gauge tracks the low-water mark across views, the
	// same conservative cursor the restart handshake reports.
	sh.mSyncSeq.Set(int64(sh.minSyncSeq()))
	// An install catches the replica up to the leader's published fit: any
	// staleness a hello reported is covered now.
	sh.mStaleness.Set(0)
	resp.Accepted = sh.training.Len()
	return suppressForSync(req, resp)
}

// handle validates one classify request and predicts every record in its
// batch. The model is loaded once per batch with an atomic pointer read —
// no lock is shared with refits, which publish whole replacement instances.
func (sh *modelShard) handle(req *serviceWire) *serviceWire {
	sh.mRequests.Inc()
	sh.mBatchSize.Observe(int64(len(req.Batch)))
	// route() resolved and stamped the view; the primary fallback covers
	// implicit groups, whose frames keep View 0 end to end.
	view := sh.viewAt(req.View)
	if view == nil {
		view = sh.primary()
	}
	view.mRequests.Inc()
	resp := &serviceWire{ID: req.ID, Kind: req.Kind, Group: req.Group, View: req.View, Response: true}
	if len(req.Batch) == 0 {
		resp.Code, resp.Err = codeBadQuery, "empty batch"
		return resp
	}
	if maxBatch := sh.limits.Load().maxBatch; len(req.Batch) > maxBatch {
		resp.Code, resp.Err = codeBatchTooLarge,
			fmt.Sprintf("batch has %d records, cap is %d", len(req.Batch), maxBatch)
		return resp
	}
	labels := make([]int, len(req.Batch))
	model := *view.model.Load()
	for i, rec := range req.Batch {
		if len(rec) != sh.dim {
			resp.Code, resp.Err = codeBadQuery,
				fmt.Sprintf("record %d has %d features, want %d", i, len(rec), sh.dim)
			return resp
		}
		label, err := model.Predict(rec)
		if err != nil {
			resp.Code, resp.Err = codeInternal, err.Error()
			return resp
		}
		labels[i] = label
	}
	resp.Labels = labels
	return resp
}

// handleAdmin executes one authenticated admin control frame. List and
// update are cheap and answer inline on the receive loop; register (which
// fits a model) and evict (which drains queues) run on their own goroutine,
// tracked by adminWg so shutdown waits out their responses. Called only from
// the receive loop.
func (s *MiningService) handleAdmin(req *serviceWire, from string) {
	resp := &serviceWire{ID: req.ID, Kind: req.Kind, Group: req.Group, Response: true}
	if !adminTokenOK(s.cfg.AdminToken, req.Token) {
		s.mAdminDenied.Inc()
		resp.Code = codeAdminDenied
		if s.cfg.AdminToken == "" {
			resp.Err = "admin interface disabled (no admin token configured)"
		} else {
			resp.Err = "bad admin token"
		}
		s.respond(req, from, resp)
		return
	}
	switch req.Kind {
	case kindAdminList:
		s.mAdminLists.Inc()
		resp.Infos = s.listGroups()
		s.respond(req, from, resp)
	case kindAdminUpdate:
		s.adminUpdate(req, resp)
		s.respond(req, from, resp)
	case kindAdminRegister:
		s.adminWg.Add(1)
		go func() {
			defer s.adminWg.Done()
			s.adminRegister(req.Spec, resp)
			s.respond(req, from, resp)
		}()
	case kindAdminEvict:
		s.adminWg.Add(1)
		go func() {
			defer s.adminWg.Done()
			s.adminEvict(req.Group, resp)
			s.respond(req, from, resp)
		}()
	}
}

// respond encodes and queues one admin response toward its requester.
func (s *MiningService) respond(req *serviceWire, to string, resp *serviceWire) {
	if payload, err := s.encodeResponse(req, resp); err == nil {
		s.out <- serviceOut{to: to, payload: payload}
	}
}

// adminRegister stands a new group up at runtime: validate and fit off the
// registry lock (the expensive part — the receive loop keeps serving), then
// insert and start the shard under the write lock. The duplicate pre-check
// is advisory; the post-fit re-check under the lock is authoritative.
func (s *MiningService) adminRegister(spec *AdminGroupSpec, resp *serviceWire) {
	if spec == nil {
		resp.Code, resp.Err = codeBadQuery, "register without a group spec"
		return
	}
	s.mu.RLock()
	_, dup := s.shards[spec.ID]
	s.mu.RUnlock()
	if dup {
		resp.Code, resp.Err = codeGroupExists, fmt.Sprintf("group %q already hosted", spec.ID)
		return
	}
	gs, err := spec.groupSpec()
	if err != nil {
		resp.Code, resp.Err = codeBadQuery, err.Error()
		return
	}
	sh, err := newModelShard(gs, s.cfg)
	if err != nil {
		resp.Code, resp.Err = codeBadQuery, err.Error()
		return
	}
	s.mu.Lock()
	if s.stopping {
		s.mu.Unlock()
		resp.Code, resp.Err = codeInternal, "service shutting down"
		return
	}
	if _, dup := s.shards[sh.id]; dup {
		s.mu.Unlock()
		resp.Code, resp.Err = codeGroupExists, fmt.Sprintf("group %q already hosted", sh.id)
		return
	}
	s.shards[sh.id] = sh
	s.order = append(s.order, sh.id)
	s.startShard(sh)
	resp.Accepted = sh.training.Len()
	s.mu.Unlock()
	s.mAdminRegisters.Inc()
	if s.cfg.OnGroupRegistered != nil {
		s.cfg.OnGroupRegistered(sh.id, sh.f32)
	}
}

// adminEvict removes a group at runtime: unmap it under the write lock — the
// receive loop's read lock spans route + dispatch, so once the lock is ours
// no new frame can reach the shard — then drain and stop its goroutines
// outside any lock. Queued chunks still fold in before the shard dies.
func (s *MiningService) adminEvict(group string, resp *serviceWire) {
	if group == "" {
		resp.Code, resp.Err = codeBadQuery, "evict without a group"
		return
	}
	s.mu.Lock()
	sh, ok := s.shards[group]
	if ok {
		delete(s.shards, group)
		for i, id := range s.order {
			if id == group {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
	}
	s.mu.Unlock()
	if !ok {
		resp.Code, resp.Err = codeUnknownGroup, fmt.Sprintf("no serving group %q", group)
		return
	}
	sh.stop()
	s.mAdminEvicts.Inc()
	if s.cfg.OnGroupEvicted != nil {
		s.cfg.OnGroupEvicted(group)
	}
}

// adminUpdate applies an in-place limits update to a live group. Cheap
// enough to run inline on the receive loop, which also makes it the single
// writer of every shard's limits pointer.
func (s *MiningService) adminUpdate(req, resp *serviceWire) {
	if req.Update == nil {
		resp.Code, resp.Err = codeBadQuery, "update without changes"
		return
	}
	s.mu.RLock()
	sh, ok := s.shards[req.Group]
	s.mu.RUnlock()
	if !ok {
		resp.Code, resp.Err = codeUnknownGroup, fmt.Sprintf("no serving group %q", req.Group)
		return
	}
	if err := sh.applyUpdate(req.Update); err != nil {
		resp.Code, resp.Err = codeBadQuery, err.Error()
		return
	}
	s.mAdminUpdates.Inc()
}

// listGroups snapshots every hosted group for a kindAdminList answer, in
// registration order.
func (s *MiningService) listGroups() []AdminGroupInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	infos := make([]AdminGroupInfo, 0, len(s.order))
	for _, id := range s.order {
		sh := s.shards[id]
		lim := sh.limits.Load()
		info := AdminGroupInfo{
			ID:         sh.id,
			Workers:    sh.workers,
			MaxBatch:   lim.maxBatch,
			RefitEvery: lim.refitEvery,
			QueueDepth: sh.queueDepth,
			Members:    sortedMembers(lim.members),
			SyncFrom:   sh.leader(),
			Float32:    sh.f32,
			Quota:      lim.quotaCfg,
			Ingested:   sh.ingested.Load(),
		}
		if sh.explicitViews {
			for _, v := range sh.views {
				info.Views = append(info.Views, AdminViewInfo{
					Level:      v.level,
					NoiseSigma: v.sigma,
					Members:    sortedMembers(*v.members.Load()),
				})
			}
		}
		infos = append(infos, info)
	}
	return infos
}
