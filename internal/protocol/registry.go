// Group registry and router of the sharded mining service. One miner
// process hosts any number of serving groups — independent contracts, each
// with its own target space, training set, model and refit cadence — and
// routes every v4 frame to its group's shard. This is the multi-contract
// deployment the paper's service-oriented framing implies: the service
// provider "offers their data mining services to the contracted parties",
// and nothing ties the provider to a single contract.

package protocol

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/classify"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/transport"
)

// DefaultGroup is the serving group pre-v4 frames (which carry no Group
// field) route to, and the group NewMiningService registers its single
// model under. Single-group deployments never need to name it.
const DefaultGroup = "default"

// shardIngestQueueDepth bounds the per-group ingest queue between the
// receive loop and the shard's ingest goroutine. A group mid-refit can
// absorb this many chunks before its ingest backpressures the receive loop.
const shardIngestQueueDepth = 16

// shardJobQueueDepth bounds the per-group classify queue between the
// receive loop and the shard's prediction pool. A group whose pool is
// saturated can absorb this many queries before further frames for it
// backpressure the shared receive loop (and with it, other groups — the
// same bounded-isolation contract as the ingest queue).
const shardJobQueueDepth = 16

// GroupSpec describes one serving group hosted by a sharded mining service.
type GroupSpec struct {
	// ID names the group on the wire. Required; unique within a service.
	ID string
	// Unified is the group's training set, already in the group's own
	// target space. Required, non-empty.
	Unified *dataset.Dataset
	// Model is the classifier served to the group. Required, and each
	// group needs its own instance — shards never share model state.
	Model classify.Classifier
	// RefitEvery overrides ServiceConfig.RefitEvery for this group (0
	// inherits the service-wide cadence; negative disables automatic
	// refits).
	RefitEvery int
	// Workers overrides ServiceConfig.Workers for this group: the size of
	// the group's dedicated prediction pool (0 inherits the service-wide
	// size). Every group owns its pool and a bounded job queue, so a group
	// saturated with slow queries stalls other groups' predictions only
	// once its own queue overflows back into the shared receive loop.
	Workers int
	// MaxBatch overrides ServiceConfig.MaxBatch for this group (0 inherits
	// the service-wide cap).
	MaxBatch int
	// Members optionally restricts the group to the named transport
	// endpoints. Empty admits any peer; non-empty means frames from peers
	// outside the list are answered with ErrNotMember. The check keys off
	// the transport envelope's sender name, which peers self-declare: it
	// keeps honest contracts apart (misrouted clients, stale configs), but
	// a peer holding the shared transport key can spoof a member name —
	// per-group keys / authenticated identity are a ROADMAP follow-up.
	Members []string
}

// modelShard is one group's independent serving state. Each shard carries
// its own model lock, so a refit in one group blocks only that group's
// predictions; its ingest state is owned by a dedicated per-shard
// goroutine, so a slow refit runs off the receive loop. The isolation is
// bounded by the ingest queue: a group can absorb shardIngestQueueDepth
// chunks mid-refit before further ingest for it backpressures the shared
// receive loop (see the ROADMAP follow-up on a typed busy rejection).
type modelShard struct {
	id         string
	dim        int
	maxBatch   int
	refitEvery int
	workers    int
	members    map[string]struct{} // nil: open to any peer

	// modelMu guards the served model: workers predict under the read lock
	// while ingest-triggered refits retrain under the write lock.
	modelMu sync.RWMutex
	model   classify.Classifier

	// The growing training set and the count of records ingested since the
	// last refit; both are touched only by the shard's ingest goroutine.
	training   *dataset.Dataset
	sinceRefit int

	// ingested is the lifetime ingest total, readable concurrently.
	ingested atomic.Int64

	// jobs carries classify frames from the receive loop to the shard's
	// dedicated prediction pool (sized by GroupSpec.Workers); its bounded
	// buffer keeps one saturated group from stalling the receive loop
	// until shardJobQueueDepth queries are already waiting.
	jobs chan serviceJob
	// ingestQ carries ingest frames from the receive loop to the shard's
	// ingest goroutine.
	ingestQ chan serviceJob

	// Instruments, resolved once at construction under the group's metric
	// namespace "service.<id>." so the hot path is a single atomic update.
	mRequests     metrics.Counter   // classify frames answered
	mBatchSize    metrics.Histogram // records per classify frame
	mIngestChunks metrics.Counter   // ingest frames folded in
	mIngestRecs   metrics.Counter   // records folded in
	mQueueDepth   metrics.Gauge     // ingest queue occupancy
	mRefits       metrics.Counter   // completed refits
	mRefitNanos   metrics.Histogram // refit wall time (ns)
	mRefitErrors  metrics.Counter   // failed refits (ErrRefit recoveries)
	mNotMember    metrics.Counter   // frames refused by the Members ACL
}

// newModelShard validates one group spec, trains its model on its unified
// dataset and assembles the shard.
func newModelShard(spec GroupSpec, cfg ServiceConfig) (*modelShard, error) {
	if spec.ID == "" {
		return nil, fmt.Errorf("%w: empty group id", ErrBadConfig)
	}
	if spec.Unified == nil || spec.Unified.Len() == 0 {
		return nil, fmt.Errorf("%w: group %q has no unified dataset", ErrBadConfig, spec.ID)
	}
	if spec.Model == nil {
		return nil, fmt.Errorf("%w: group %q has a nil classifier", ErrBadConfig, spec.ID)
	}
	if spec.Workers < 0 {
		return nil, fmt.Errorf("%w: group %q has a negative worker count %d", ErrBadConfig, spec.ID, spec.Workers)
	}
	if spec.MaxBatch < 0 {
		return nil, fmt.Errorf("%w: group %q has a negative batch cap %d", ErrBadConfig, spec.ID, spec.MaxBatch)
	}
	training := spec.Unified.Clone()
	if err := spec.Model.Fit(training.Clone()); err != nil {
		return nil, fmt.Errorf("protocol: train group %q model: %w", spec.ID, err)
	}
	refitEvery := spec.RefitEvery
	if refitEvery == 0 {
		refitEvery = cfg.RefitEvery
	}
	workers := spec.Workers
	if workers == 0 {
		workers = cfg.Workers
	}
	maxBatch := spec.MaxBatch
	if maxBatch == 0 {
		maxBatch = cfg.MaxBatch
	}
	var members map[string]struct{}
	if len(spec.Members) > 0 {
		members = make(map[string]struct{}, len(spec.Members))
		for _, m := range spec.Members {
			if m == "" {
				return nil, fmt.Errorf("%w: group %q has an empty member name", ErrBadConfig, spec.ID)
			}
			members[m] = struct{}{}
		}
	}
	ns := "service." + spec.ID + "."
	return &modelShard{
		id:         spec.ID,
		dim:        training.Dim(),
		maxBatch:   maxBatch,
		refitEvery: refitEvery,
		workers:    workers,
		members:    members,
		model:      spec.Model,
		training:   training,
		jobs:       make(chan serviceJob, shardJobQueueDepth),
		ingestQ:    make(chan serviceJob, shardIngestQueueDepth),

		mRequests:     cfg.Metrics.Counter(ns + "requests"),
		mBatchSize:    cfg.Metrics.Histogram(ns + "batch_size"),
		mIngestChunks: cfg.Metrics.Counter(ns + "ingest.chunks"),
		mIngestRecs:   cfg.Metrics.Counter(ns + "ingest.records"),
		mQueueDepth:   cfg.Metrics.Gauge(ns + "ingest.queue_depth"),
		mRefits:       cfg.Metrics.Counter(ns + "refit.count"),
		mRefitNanos:   cfg.Metrics.Histogram(ns + "refit.ns"),
		mRefitErrors:  cfg.Metrics.Counter(ns + "refit.errors"),
		mNotMember:    cfg.Metrics.Counter(ns + "rejects.not_member"),
	}, nil
}

// admits reports whether the named peer may address this group.
func (sh *modelShard) admits(peer string) bool {
	if sh.members == nil {
		return true
	}
	_, ok := sh.members[peer]
	return ok
}

// MiningService is the miner-side classification endpoint: one model shard
// per serving group, each trained on that group's unified perturbed dataset,
// answering batched queries that arrive in the group's target space. This
// realizes the paper's service-oriented framing — the service provider
// "offers their data mining services to the contracted parties" — scaled to
// many contracts per process.
//
// Training sets are not frozen at construction: providers may keep pushing
// streamed chunks of perturbed, target-space records
// (ServiceClient.PushChunk feeding an internal/stream pipeline), which the
// addressed group folds into its training set and periodically refits on
// (ServiceConfig.RefitEvery, overridable per group). Because every group
// owns its lock and its ingest goroutine, one group's refit never blocks
// another group's queries.
type MiningService struct {
	conn   transport.Conn
	cfg    ServiceConfig
	shards map[string]*modelShard // immutable after construction
	order  []string               // registration order, for Groups()

	// mUnknownGroup counts frames addressed to groups this service does not
	// host — the one rejection with no shard namespace to land in.
	mUnknownGroup metrics.Counter
}

// NewMiningService trains the given classifier on the miner's unified
// dataset and binds a single-group service (under DefaultGroup) to a
// transport endpoint. The zero ServiceConfig selects the defaults.
func NewMiningService(conn transport.Conn, result *MinerResult, model classify.Classifier, cfg ServiceConfig) (*MiningService, error) {
	if result == nil || result.Unified == nil || result.Unified.Len() == 0 {
		return nil, fmt.Errorf("%w: no unified dataset", ErrBadConfig)
	}
	return NewGroupedMiningService(conn,
		[]GroupSpec{{ID: DefaultGroup, Unified: result.Unified, Model: model}}, cfg)
}

// NewGroupedMiningService trains one model shard per group and binds the
// sharded service to a transport endpoint. Group IDs must be unique; the
// zero ServiceConfig selects the defaults for every group.
func NewGroupedMiningService(conn transport.Conn, groups []GroupSpec, cfg ServiceConfig) (*MiningService, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("%w: no serving groups", ErrBadConfig)
	}
	cfg = cfg.withDefaults()
	s := &MiningService{
		conn:          conn,
		cfg:           cfg,
		shards:        make(map[string]*modelShard, len(groups)),
		mUnknownGroup: cfg.Metrics.Counter("service.rejects.unknown_group"),
	}
	for _, spec := range groups {
		if _, dup := s.shards[spec.ID]; dup {
			return nil, fmt.Errorf("%w: duplicate group id %q", ErrBadConfig, spec.ID)
		}
		sh, err := newModelShard(spec, cfg)
		if err != nil {
			return nil, err
		}
		s.shards[spec.ID] = sh
		s.order = append(s.order, spec.ID)
	}
	return s, nil
}

// Groups returns the hosted group IDs in registration order.
func (s *MiningService) Groups() []string { return append([]string(nil), s.order...) }

// Ingested returns the number of streamed records folded into training sets
// so far, summed over all groups. It is safe to call concurrently with
// Serve.
func (s *MiningService) Ingested() int {
	total := 0
	for _, sh := range s.shards {
		total += int(sh.ingested.Load())
	}
	return total
}

// GroupIngested returns one group's lifetime ingest count. It is safe to
// call concurrently with Serve.
func (s *MiningService) GroupIngested(group string) (int, error) {
	sh, ok := s.shards[group]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownGroup, group)
	}
	return int(sh.ingested.Load()), nil
}

// serviceJob is one accepted request travelling from the receive loop to the
// addressed shard's prediction pool (classify) or ingest goroutine (ingest).
type serviceJob struct {
	from string
	req  *serviceWire
}

// serviceOut is one encoded response travelling from a worker to the single
// sender goroutine (transport connections are not required to support
// concurrent writers).
type serviceOut struct {
	to      string
	payload []byte
}

// route resolves a request frame to its group's shard. A nil shard comes
// with a typed rejection response to send instead: the group is unknown, or
// the peer is not among the group's members.
func (s *MiningService) route(req *serviceWire, from string) (*modelShard, *serviceWire) {
	group := req.Group
	if group == "" {
		group = DefaultGroup
	}
	sh, ok := s.shards[group]
	if !ok {
		s.mUnknownGroup.Inc()
		return nil, &serviceWire{ID: req.ID, Kind: req.Kind, Group: req.Group, Response: true,
			Code: codeUnknownGroup, Err: fmt.Sprintf("no serving group %q", group)}
	}
	if !sh.admits(from) {
		sh.mNotMember.Inc()
		return nil, &serviceWire{ID: req.ID, Kind: req.Kind, Group: req.Group, Response: true,
			Code: codeNotMember, Err: fmt.Sprintf("peer %q is not a member of group %q", from, group)}
	}
	return sh, nil
}

// Serve answers classification and ingest requests until ctx is cancelled
// or the transport closes. Classify requests are dispatched to the
// addressed group's dedicated prediction pool (GroupSpec.Workers,
// defaulting to cfg.Workers goroutines per group) through a bounded
// per-group job queue, so one group's slow queries stall other groups only
// after shardJobQueueDepth of its own are already waiting; ingest requests
// are dispatched to the addressed group's dedicated ingest goroutine, so
// appends stay ordered within a group and a refit runs off the receive
// loop (other groups stall only if the refitting group's bounded ingest
// queue overflows). Responses funnel through one sender.
// Malformed frames are answered with a typed error response (or dropped
// when they cannot be attributed) rather than terminating the service.
func (s *MiningService) Serve(ctx context.Context) error {
	// One response-buffer slot per prediction goroutine across all pools.
	totalWorkers := 0
	for _, sh := range s.shards {
		totalWorkers += sh.workers
	}
	out := make(chan serviceOut, totalWorkers)

	var senderWg sync.WaitGroup
	senderWg.Add(1)
	go func() {
		defer senderWg.Done()
		for o := range out {
			// Bound each response write so one peer that stops reading
			// cannot wedge the sender (and with it every worker) forever;
			// a timed-out connection is dropped by the transport and the
			// requester simply re-dials. The requester may also have gone
			// away entirely; either way, keep serving others.
			sendCtx, cancel := context.WithTimeout(ctx, serviceSendTimeout)
			_ = s.conn.Send(sendCtx, o.to, o.payload)
			cancel()
		}
	}()

	var workerWg sync.WaitGroup
	for _, sh := range s.shards {
		for i := 0; i < sh.workers; i++ {
			workerWg.Add(1)
			go func(sh *modelShard) {
				defer workerWg.Done()
				for j := range sh.jobs {
					payload, err := encodeServiceWire(sh.handle(j.req))
					if err != nil {
						continue
					}
					out <- serviceOut{to: j.from, payload: payload}
				}
			}(sh)
		}
	}

	var ingestWg sync.WaitGroup
	for _, sh := range s.shards {
		ingestWg.Add(1)
		go func(sh *modelShard) {
			defer ingestWg.Done()
			for j := range sh.ingestQ {
				// Paired with the enqueue-side Add(1): deltas stay exact
				// under concurrent enqueue/dequeue, where Set(len(chan))
				// from two goroutines could leave a stale last write.
				sh.mQueueDepth.Add(-1)
				payload, err := encodeServiceWire(sh.ingest(j.req))
				if err != nil {
					continue
				}
				out <- serviceOut{to: j.from, payload: payload}
			}
		}(sh)
	}

	shutdown := func() {
		for _, sh := range s.shards {
			close(sh.ingestQ)
			close(sh.jobs)
		}
		ingestWg.Wait()
		workerWg.Wait()
		close(out)
		senderWg.Wait()
	}

	for {
		env, err := s.conn.Recv(ctx)
		if err != nil {
			shutdown()
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
				errors.Is(err, transport.ErrClosed) {
				return nil
			}
			return err
		}
		req, err := decodeServiceWire(env.Payload)
		switch {
		case req == nil && err == nil:
			continue // not a service frame; drop
		case errors.Is(err, ErrWireVersion):
			resp := &serviceWire{Response: true, Code: codeWireVersion, Err: err.Error()}
			if req != nil {
				resp.ID = req.ID
			}
			if payload, encErr := encodeServiceWire(resp); encErr == nil {
				out <- serviceOut{to: env.From, payload: payload}
			}
			continue
		case err != nil || req.Response:
			continue // undecodable or stray response frame; drop
		}
		shard, reject := s.route(req, env.From)
		if reject != nil {
			if payload, encErr := encodeServiceWire(reject); encErr == nil {
				out <- serviceOut{to: env.From, payload: payload}
			}
			continue
		}
		if req.Kind == kindIngest {
			// Increment before the send so the dequeuer's Add(-1) — which
			// can only run after the send completes — never drives the
			// gauge below zero; the abort path undoes it.
			shard.mQueueDepth.Add(1)
			select {
			case shard.ingestQ <- serviceJob{from: env.From, req: req}:
			case <-ctx.Done():
				shard.mQueueDepth.Add(-1)
				shutdown()
				return nil
			}
			continue
		}
		select {
		case shard.jobs <- serviceJob{from: env.From, req: req}:
		case <-ctx.Done():
			shutdown()
			return nil
		}
	}
}

// ingest validates one streamed chunk, folds it into the shard's training
// set, and refits the shard's model when its refit cadence is reached.
// Called only from the shard's ingest goroutine.
func (sh *modelShard) ingest(req *serviceWire) *serviceWire {
	resp := &serviceWire{ID: req.ID, Kind: kindIngest, Group: req.Group, Response: true}
	if len(req.Batch) == 0 {
		resp.Code, resp.Err = codeBadChunk, "empty chunk"
		return resp
	}
	if len(req.Batch) > sh.maxBatch {
		resp.Code, resp.Err = codeBatchTooLarge,
			fmt.Sprintf("chunk has %d records, cap is %d", len(req.Batch), sh.maxBatch)
		return resp
	}
	if len(req.Labels) != len(req.Batch) {
		resp.Code, resp.Err = codeBadChunk,
			fmt.Sprintf("%d labels for %d records", len(req.Labels), len(req.Batch))
		return resp
	}
	for i, rec := range req.Batch {
		if len(rec) != sh.dim {
			resp.Code, resp.Err = codeBadChunk,
				fmt.Sprintf("record %d has %d features, want %d", i, len(rec), sh.dim)
			return resp
		}
		if req.Labels[i] < 0 {
			resp.Code, resp.Err = codeBadChunk, fmt.Sprintf("record %d has a negative label", i)
			return resp
		}
	}
	for i, rec := range req.Batch {
		sh.training.X = append(sh.training.X, append([]float64(nil), rec...))
		sh.training.Y = append(sh.training.Y, req.Labels[i])
	}
	sh.sinceRefit += len(req.Batch)
	sh.ingested.Add(int64(len(req.Batch)))
	sh.mIngestChunks.Inc()
	sh.mIngestRecs.Add(int64(len(req.Batch)))
	resp.Accepted = sh.training.Len()
	if sh.refitEvery > 0 && sh.sinceRefit >= sh.refitEvery {
		if err := sh.refit(); err != nil {
			// The chunk IS in the training set (Accepted reflects that) but
			// the refreshed model is not live; answer with the dedicated
			// refit code so the pusher knows not to re-push, and keep
			// serving on the previous fit.
			sh.mRefitErrors.Inc()
			resp.Code, resp.Err = codeRefit, err.Error()
			return resp
		}
		sh.sinceRefit = 0
	}
	return resp
}

// refit retrains the shard's model on a snapshot of its grown training set
// under the shard's write lock, so in-flight predictions for this group
// finish on the old fit and later ones see the new one. Other groups'
// shards are untouched — their queries keep flowing under their own locks.
func (sh *modelShard) refit() error {
	start := time.Now()
	snapshot := sh.training.Clone()
	sh.modelMu.Lock()
	defer sh.modelMu.Unlock()
	if err := sh.model.Fit(snapshot); err != nil {
		return fmt.Errorf("protocol: refit group %q model: %w", sh.id, err)
	}
	// Count and time only completed refits, so refit.ns.sum/refit.count is
	// a true mean duration; failed attempts are visible via refit.errors.
	sh.mRefits.Inc()
	metrics.Time(sh.mRefitNanos, start)
	return nil
}

// handle validates one classify request and predicts every record in its
// batch under the shard's read lock.
func (sh *modelShard) handle(req *serviceWire) *serviceWire {
	sh.mRequests.Inc()
	sh.mBatchSize.Observe(int64(len(req.Batch)))
	resp := &serviceWire{ID: req.ID, Group: req.Group, Response: true}
	if len(req.Batch) == 0 {
		resp.Code, resp.Err = codeBadQuery, "empty batch"
		return resp
	}
	if len(req.Batch) > sh.maxBatch {
		resp.Code, resp.Err = codeBatchTooLarge,
			fmt.Sprintf("batch has %d records, cap is %d", len(req.Batch), sh.maxBatch)
		return resp
	}
	labels := make([]int, len(req.Batch))
	// One read lock per batch: predictions may run concurrently across
	// workers while an ingest-triggered refit waits for the write lock.
	sh.modelMu.RLock()
	defer sh.modelMu.RUnlock()
	for i, rec := range req.Batch {
		if len(rec) != sh.dim {
			resp.Code, resp.Err = codeBadQuery,
				fmt.Sprintf("record %d has %d features, want %d", i, len(rec), sh.dim)
			return resp
		}
		label, err := sh.model.Predict(rec)
		if err != nil {
			resp.Code, resp.Err = codeInternal, err.Error()
			return resp
		}
		labels[i] = label
	}
	resp.Labels = labels
	return resp
}
