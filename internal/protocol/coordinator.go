package protocol

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/perturb"
	"repro/internal/transport"
)

// CoordinatorConfig configures the coordinating data provider DP_k.
type CoordinatorConfig struct {
	// Providers lists the non-coordinator provider names (k−1 of them).
	Providers []string
	// Miner is the mining service provider's endpoint name.
	Miner string
	// Data is the coordinator's own local (normalized) dataset — the
	// coordinator is itself a data provider.
	Data *dataset.Dataset
	// Perturbation is the coordinator's locally optimized G_k.
	Perturbation *perturb.Perturbation
	// Rng drives the target selection, permutation and redirect. Required.
	Rng *rand.Rand
	// Audit optionally records protocol events (nil disables).
	Audit *AuditLog
}

// Coordinator runs DP_k: coordination duties plus its own provider duties.
type Coordinator struct {
	cfg  CoordinatorConfig
	conn transport.Conn

	// Plan captures the exchange plan for audit/testing; populated by Run.
	plan *ExchangePlan
}

// ExchangePlan records the coordinator's randomized decisions.
type ExchangePlan struct {
	// Target is the unified target perturbation G_t (no noise).
	Target *perturb.Perturbation
	// Perm maps receiver position i (0-based over all k parties) to the
	// 0-based index of the provider whose dataset DP_i receives: the
	// paper's τ.
	Perm []int
	// Redirect is the 0-based non-coordinator index that receives the
	// dataset originally destined for the coordinator.
	Redirect int
	// Slots assigns each provider (by name) the slot ID labelling its
	// dataset through the exchange.
	Slots map[string]uint64
	// Receivers maps each provider name to the receiver of its dataset.
	Receivers map[string]string
}

// NewCoordinator validates the configuration and binds the coordinator to a
// transport endpoint.
func NewCoordinator(conn transport.Conn, cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.Rng == nil {
		return nil, fmt.Errorf("%w: coordinator needs an rng", ErrBadConfig)
	}
	if cfg.Data == nil || cfg.Data.Len() == 0 {
		return nil, fmt.Errorf("%w: coordinator has no data", ErrBadConfig)
	}
	if cfg.Perturbation == nil {
		return nil, fmt.Errorf("%w: coordinator has no local perturbation", ErrBadConfig)
	}
	if cfg.Perturbation.Dim() != cfg.Data.Dim() {
		return nil, fmt.Errorf("%w: perturbation dim %d vs data dim %d",
			ErrBadConfig, cfg.Perturbation.Dim(), cfg.Data.Dim())
	}
	if cfg.Miner == "" {
		return nil, fmt.Errorf("%w: no miner endpoint", ErrBadConfig)
	}
	// k = len(Providers) + 1 parties overall; anonymity needs k ≥ 3 so that
	// π = 1/(k−1) < 1.
	if len(cfg.Providers) < 2 {
		return nil, fmt.Errorf("%w: got %d non-coordinator providers", ErrTooFewParty, len(cfg.Providers))
	}
	seen := make(map[string]bool, len(cfg.Providers)+2)
	seen[conn.Name()] = true
	seen[cfg.Miner] = true
	for _, p := range cfg.Providers {
		if p == "" || seen[p] {
			return nil, fmt.Errorf("%w: duplicate or empty provider name %q", ErrBadConfig, p)
		}
		seen[p] = true
	}
	return &Coordinator{cfg: cfg, conn: conn}, nil
}

// Plan returns the exchange plan after Run (nil before).
func (c *Coordinator) Plan() *ExchangePlan { return c.plan }

// Run executes the coordinator's side of SAP.
func (c *Coordinator) Run(ctx context.Context) error {
	plan, err := c.makePlan()
	if err != nil {
		return err
	}
	c.plan = plan
	c.cfg.Audit.Record(c.conn.Name(), EventTargetSelected, "", fmt.Sprintf("dim=%d", plan.Target.Dim()))
	c.cfg.Audit.Record(c.conn.Name(), EventPlanComputed, "", fmt.Sprintf("k=%d redirect=%d", len(plan.Perm), plan.Redirect))

	targetRaw, err := plan.Target.MarshalBinary()
	if err != nil {
		return fmt.Errorf("protocol: encode target: %w", err)
	}

	// Count how many datasets each receiver must forward.
	expect := make(map[string]int, len(c.cfg.Providers))
	for _, recv := range plan.Receivers {
		expect[recv]++
	}

	// Step 1+2: distribute the target and the exchange assignments.
	for _, name := range c.cfg.Providers {
		w := &wire{
			Kind:        MsgTarget,
			Target:      targetRaw,
			SlotID:      plan.Slots[name],
			SendTo:      plan.Receivers[name],
			ExpectCount: expect[name],
		}
		payload, err := encodeWire(w)
		if err != nil {
			return err
		}
		if err := c.conn.Send(ctx, name, payload); err != nil {
			return fmt.Errorf("protocol: assignment to %s: %w", name, err)
		}
		c.cfg.Audit.Record(c.conn.Name(), EventAssignmentSent, name,
			fmt.Sprintf("sendTo=%s expect=%d", plan.Receivers[name], expect[name]))
	}

	// Provider duties: perturb own data and send it to the assigned
	// receiver under the coordinator's own slot.
	if err := c.sendOwnData(ctx, plan); err != nil {
		return err
	}

	// Own adaptor is computed locally (never crosses the network).
	ownAdaptor, err := perturb.NewAdaptor(c.cfg.Perturbation, plan.Target)
	if err != nil {
		return fmt.Errorf("protocol: own adaptor: %w", err)
	}
	ownAdaptorRaw, err := ownAdaptor.MarshalBinary()
	if err != nil {
		return err
	}

	// Step 4: collect adaptors from every other provider. The coordinator
	// must refuse datasets — receiving one would break the privacy
	// argument.
	adaptors := map[string][]byte{c.conn.Name(): ownAdaptorRaw}
	for len(adaptors) < len(c.cfg.Providers)+1 {
		env, err := c.conn.Recv(ctx)
		if err != nil {
			return fmt.Errorf("%w: waiting for adaptors: %v", ErrMissingPiece, err)
		}
		w, err := decodeWire(env.Payload)
		if err != nil {
			return err
		}
		switch w.Kind {
		case MsgAdaptor:
			if _, ok := plan.Slots[env.From]; !ok {
				c.cfg.Audit.Record(c.conn.Name(), EventViolationDetected, env.From, "adaptor from unknown party")
				return fmt.Errorf("%w: adaptor from unknown party %q", ErrViolation, env.From)
			}
			if _, dup := adaptors[env.From]; dup {
				c.cfg.Audit.Record(c.conn.Name(), EventViolationDetected, env.From, "duplicate adaptor")
				return fmt.Errorf("%w: duplicate adaptor from %q", ErrViolation, env.From)
			}
			// Validate before accepting.
			if _, err := decodeAdaptor(w.Adaptor); err != nil {
				return fmt.Errorf("adaptor from %q: %w", env.From, err)
			}
			adaptors[env.From] = w.Adaptor
			c.cfg.Audit.Record(c.conn.Name(), EventAdaptorReceived, env.From, "")
		case MsgDataset, MsgSubmission:
			c.cfg.Audit.Record(c.conn.Name(), EventViolationDetected, env.From, "dataset sent to coordinator")
			return fmt.Errorf("%w: coordinator received a dataset from %q", ErrViolation, env.From)
		default:
			c.cfg.Audit.Record(c.conn.Name(), EventViolationDetected, env.From, "unexpected "+w.Kind.String())
			return fmt.Errorf("%w: unexpected %v from %q", ErrViolation, w.Kind, env.From)
		}
	}

	// Step 5: map adaptors through the slots and hand them to the miner.
	slots := make([]SlotAdaptor, 0, len(adaptors))
	for name, raw := range adaptors {
		slots = append(slots, SlotAdaptor{SlotID: plan.Slots[name], Adaptor: raw})
	}
	payload, err := encodeWire(&wire{Kind: MsgAdaptorMap, Slots: slots})
	if err != nil {
		return err
	}
	if err := c.conn.Send(ctx, c.cfg.Miner, payload); err != nil {
		return fmt.Errorf("protocol: adaptor map to miner: %w", err)
	}
	c.cfg.Audit.Record(c.conn.Name(), EventAdaptorMapSent, c.cfg.Miner, fmt.Sprintf("slots=%d", len(slots)))
	return nil
}

// makePlan draws G_t, τ, the redirect and the slot IDs.
func (c *Coordinator) makePlan() (*ExchangePlan, error) {
	rng := c.cfg.Rng
	dim := c.cfg.Data.Dim()
	targetFull, err := perturb.NewRandom(rng, dim, 0)
	if err != nil {
		return nil, fmt.Errorf("protocol: target selection: %w", err)
	}
	target := targetFull.WithoutNoise()

	// Party order: providers 0..k−2 are the non-coordinators, k−1 is the
	// coordinator itself.
	all := append(append([]string(nil), c.cfg.Providers...), c.conn.Name())
	k := len(all)
	perm := rng.Perm(k) // τ: receiver position i gets dataset of all[perm[i]]
	redirect := rng.Intn(k - 1)

	slots := make(map[string]uint64, k)
	for i, name := range all {
		// Slot IDs are drawn from the rng (not sequential) so they carry no
		// ordering information about the providers.
		slots[name] = uint64(rng.Int63())<<8 | uint64(i)
	}
	receivers := make(map[string]string, k)
	for i := 0; i < k; i++ {
		sender := all[perm[i]]
		if i == k-1 {
			// The coordinator's receiving slot is redirected.
			receivers[sender] = all[redirect]
			continue
		}
		receivers[sender] = all[i]
	}
	return &ExchangePlan{
		Target:    target,
		Perm:      perm,
		Redirect:  redirect,
		Slots:     slots,
		Receivers: receivers,
	}, nil
}

// sendOwnData perturbs the coordinator's local data and ships it to its
// assigned receiver.
func (c *Coordinator) sendOwnData(ctx context.Context, plan *ExchangePlan) error {
	perturbed := c.cfg.Data.Clone()
	y, _, err := c.cfg.Perturbation.Apply(c.cfg.Rng, c.cfg.Data.FeaturesT())
	if err != nil {
		return fmt.Errorf("protocol: perturb own data: %w", err)
	}
	if err := perturbed.ReplaceFeaturesT(y); err != nil {
		return err
	}
	features, labels, err := encodeDatasetPayload(perturbed)
	if err != nil {
		return err
	}
	w := &wire{
		Kind:     MsgDataset,
		DataSlot: plan.Slots[c.conn.Name()],
		Features: features,
		Labels:   labels,
	}
	payload, err := encodeWire(w)
	if err != nil {
		return err
	}
	recv := plan.Receivers[c.conn.Name()]
	if err := c.conn.Send(ctx, recv, payload); err != nil {
		return fmt.Errorf("protocol: own dataset to %s: %w", recv, err)
	}
	c.cfg.Audit.Record(c.conn.Name(), EventDatasetSent, recv, fmt.Sprintf("records=%d", c.cfg.Data.Len()))
	return nil
}
