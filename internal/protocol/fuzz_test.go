package protocol

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecodeFrame hardens service wire-frame decoding against arbitrary
// payloads: real frames of every spoken version (v1–v6 classic and the
// flagged v7 format with compressed and float32 bodies, cluster admin and
// multi-level trust-view frames included), truncated and
// bit-flipped frames, oversized version claims, and plain garbage. The
// decoder must never panic and must keep its contract — a typed
// ErrWireVersion outside the supported version range, nil/nil for
// non-service payloads, and re-encodable frames on success.
func FuzzDecodeFrame(f *testing.F) {
	// Corpus: real encoded frames, of each kind and era.
	seed := func(w *serviceWire, version byte) []byte {
		payload, err := encodeServiceWire(w)
		if err != nil {
			f.Fatal(err)
		}
		payload[1] = version
		return payload
	}
	classify := &serviceWire{ID: 7, Group: "alpha", Batch: [][]float64{{0.25, 0.5}, {0.75, 1.0}}}
	ingest := &serviceWire{ID: 9, Kind: kindIngest, Group: "beta",
		Batch: [][]float64{{0.1}}, Labels: []int{3}}
	response := &serviceWire{ID: 7, Response: true, Labels: []int{1, 2}}
	rejection := &serviceWire{ID: 7, Response: true, Code: codeUnknownGroup, Err: `no serving group "x"`}
	routesReq := &serviceWire{ID: 11, Kind: kindRoutes}
	routesResp := &serviceWire{ID: 11, Kind: kindRoutes, Response: true,
		Routes: []RouteEntry{{Group: "alpha", Node: "n1", Replicas: []string{"n2", "n3"}}, {Group: "beta", Node: "n2"}}}
	modelSync := &serviceWire{Kind: kindModelSync, Group: "alpha", Seq: 4,
		Model: []byte{'C', 0xde, 0xad, 0xbe, 0xef}}
	notLeader := &serviceWire{ID: 13, Kind: kindIngest, Group: "alpha", Response: true,
		Code: codeNotLeader, Err: `group "alpha" is a read replica synced from "n1"`}
	// The v8 admin control plane, request and response shapes.
	adminRegister := &serviceWire{ID: 17, Kind: kindAdminRegister, Group: "gamma",
		Token: "tok", Spec: &AdminGroupSpec{ID: "gamma", X: [][]float64{{0.5}}, Y: []int{1},
			Model: []byte{'K', 0x01, 0x02}, Quota: GroupQuota{RecordsPerSec: 10, Burst: 20}}}
	adminEvict := &serviceWire{ID: 18, Kind: kindAdminEvict, Group: "gamma", Token: "tok"}
	adminUpdate := &serviceWire{ID: 19, Kind: kindAdminUpdate, Group: "gamma", Token: "tok",
		Update: &AdminUpdate{SetQuota: true, Quota: GroupQuota{RecordsPerSec: 5}, SetMembers: true, Members: []string{"dp1"}}}
	adminList := &serviceWire{ID: 20, Kind: kindAdminList, Token: "tok"}
	adminBadToken := &serviceWire{ID: 21, Kind: kindAdminList, Token: "not-the-token"}
	adminDenied := &serviceWire{ID: 21, Kind: kindAdminList, Response: true,
		Code: codeAdminDenied, Err: "bad admin token"}
	adminInfos := &serviceWire{ID: 20, Kind: kindAdminList, Response: true,
		Infos: []AdminGroupInfo{{ID: "gamma", Workers: 2, MaxBatch: 64,
			Quota: GroupQuota{RecordsPerSec: 10}, Ingested: 7}}}
	quotaReject := &serviceWire{ID: 22, Kind: kindIngest, Group: "gamma", Response: true,
		Code: codeQuota, Err: `group "gamma" ingest quota exhausted`}
	// The multi-level trust surface (View rides the existing formats as a
	// gob field, omitted when zero): view-stamped requests, per-view
	// replication frames, view-carrying admin registrations and the typed
	// unknown-view rejection.
	viewClassify := &serviceWire{ID: 23, Group: "alpha", View: 2,
		Batch: [][]float64{{0.25, 0.5}}}
	viewIngest := &serviceWire{ID: 24, Kind: kindIngest, Group: "alpha", View: 3,
		Batch: [][]float64{{0.1}}, Labels: []int{1}}
	viewSync := &serviceWire{Kind: kindModelSync, Group: "alpha", View: 2, Seq: 6,
		Model: []byte{'K', 0x03, 0x04}}
	viewRegister := &serviceWire{ID: 25, Kind: kindAdminRegister, Group: "delta",
		Token: "tok", Spec: &AdminGroupSpec{ID: "delta", X: [][]float64{{0.5}}, Y: []int{1},
			Views: []AdminViewSpec{
				{Level: 1, NoiseSigma: 0, Model: []byte{'K', 0x05}, Members: []string{"analyst"}},
				{Level: 2, NoiseSigma: 0.3, Model: []byte{'K', 0x06}},
			}}}
	unknownView := &serviceWire{ID: 23, Response: true,
		Code: codeUnknownView, Err: `group "alpha" serves no view 9`}
	flagged := func(w *serviceWire, o frameOpts) []byte {
		payload, err := encodeServiceFrame(w, o)
		if err != nil {
			f.Fatal(err)
		}
		return payload
	}
	for _, w := range []*serviceWire{classify, ingest, response, rejection,
		routesReq, routesResp, modelSync, notLeader,
		adminRegister, adminEvict, adminUpdate, adminList, adminBadToken,
		adminDenied, adminInfos, quotaReject,
		viewClassify, viewIngest, viewSync, viewRegister, unknownView} {
		for _, version := range []byte{1, 2, 3, 4, serviceWireClassicVersion} {
			f.Add(seed(w, version))
		}
		// The flagged v7 format, in every body encoding it can negotiate.
		f.Add(flagged(w, frameOpts{deflate: true}))
		f.Add(flagged(w, frameOpts{f32: true}))
		f.Add(flagged(w, frameOpts{deflate: true, f32: true}))
	}
	full := seed(classify, serviceWireClassicVersion)
	f.Add(full[:2])                                                          // header only
	f.Add(full[:len(full)/2])                                                // truncated mid-gob
	f.Add(seed(classify, 0))                                                 // below the spoken range
	f.Add(seed(classify, 99))                                                // far-future version
	f.Add([]byte{})                                                          // empty
	f.Add([]byte{serviceMagic})                                              // magic alone
	f.Add([]byte("not a service frame"))                                     // foreign payload
	f.Add(bytes.Repeat([]byte{serviceMagic, serviceWireClassicVersion}, 64)) // garbage gob body
	compressed := flagged(classify, frameOpts{deflate: true, f32: true})
	f.Add(compressed[:len(compressed)-3]) // torn deflate stream
	regFrame := seed(adminRegister, ServiceWireVersion)
	f.Add(regFrame[:len(regFrame)/2])                            // truncated admin register
	f.Add(regFrame[:len(regFrame)-1])                            // admin register missing a byte
	f.Add(seed(adminEvict, serviceWireClassicVersion))           // admin kind on a pre-v8 version byte
	f.Add([]byte{serviceMagic, serviceWireFlaggedVersion})       // v7 header without flags
	f.Add([]byte{serviceMagic, serviceWireFlaggedVersion, 0xFF}) // unknown flag bits
	f.Add([]byte{serviceMagic, serviceWireFlaggedVersion, 0x01}) // deflate flag, empty body
	viewFrame := seed(viewRegister, ServiceWireVersion)
	f.Add(viewFrame[:len(viewFrame)/2])                  // truncated mid view list
	f.Add(viewFrame[:len(viewFrame)-1])                  // view register missing a byte
	f.Add(seed(viewClassify, serviceWireClassicVersion)) // view stamp on a pre-view version byte

	f.Fuzz(func(t *testing.T, payload []byte) {
		w, err := decodeServiceWire(payload)

		// Non-service payloads are silently ignored, never errored.
		if !IsServiceFrame(payload) {
			if w != nil || err != nil {
				t.Fatalf("non-service payload decoded to (%+v, %v)", w, err)
			}
			return
		}
		version := payload[1]
		supported := version >= serviceWireMinVersion && version <= ServiceWireVersion
		switch {
		case err == nil:
			// A clean decode must come from a spoken version, yield a
			// frame, and survive a re-encode round trip.
			if w == nil {
				t.Fatal("nil frame with nil error for a service payload")
			}
			if !supported {
				t.Fatalf("v%d decoded without a version error", version)
			}
			reencoded, encErr := encodeServiceWire(w)
			if encErr != nil {
				t.Fatalf("decoded frame does not re-encode: %v", encErr)
			}
			w2, decErr := decodeServiceWire(reencoded)
			if decErr != nil || w2 == nil {
				t.Fatalf("re-encoded frame does not decode: %v", decErr)
			}
			if w2.ID != w.ID || w2.Kind != w.Kind || w2.Group != w.Group ||
				w2.View != w.View ||
				w2.Code != w.Code || w2.Response != w.Response || w2.Seq != w.Seq ||
				len(w2.Batch) != len(w.Batch) || len(w2.Labels) != len(w.Labels) ||
				len(w2.Routes) != len(w.Routes) || !bytes.Equal(w2.Model, w.Model) {
				t.Fatalf("round trip changed the frame: %+v vs %+v", w, w2)
			}
		case errors.Is(err, ErrWireVersion):
			// Version rejections only fire outside the spoken range.
			if supported {
				t.Fatalf("v%d rejected as a version mismatch: %v", version, err)
			}
		case errors.Is(err, ErrBadMessage):
			// Undecodable body on a spoken version; nothing to check.
		default:
			t.Fatalf("unexpected error class: %v", err)
		}
	})
}
