package protocol

// The v8 admin control plane: authenticated wire frames that register, evict
// and reconfigure serving groups on a live MiningService. The client half
// (AdminClient) and the wire types it shares with the service live here; the
// service-side execution (dynamic shard lifecycle) lives in registry.go.

import (
	"context"
	"crypto/subtle"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/classify"
	"repro/internal/dataset"
	"repro/internal/transport"
)

// GroupQuota is a per-group ingest rate limit: a records-per-second token
// bucket checked before a chunk is queued, so an over-quota producer gets a
// typed ErrQuota within one round trip instead of crowding out the group's
// queue. The zero value means unlimited.
type GroupQuota struct {
	// RecordsPerSec refills the bucket; zero or negative disables the
	// quota.
	RecordsPerSec float64
	// Burst caps the bucket — the largest record count admitted at once
	// after an idle spell. Zero selects RecordsPerSec (rounded up, at least
	// one record).
	Burst int
}

// enabled reports whether the quota limits anything.
func (q GroupQuota) enabled() bool { return q.RecordsPerSec > 0 }

// tokenBucket is the runtime form of a GroupQuota: a mutex-protected
// continuous-refill bucket. One per shard, touched once per ingest frame, so
// the lock is uncontended compared to the queue behind it.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

// newTokenBucket builds a bucket for q, or nil when q is unlimited. The
// bucket starts full, so a freshly (re)configured group admits one burst
// immediately.
func newTokenBucket(q GroupQuota) *tokenBucket {
	if !q.enabled() {
		return nil
	}
	burst := float64(q.Burst)
	if burst <= 0 {
		burst = q.RecordsPerSec
		if burst < 1 {
			burst = 1
		}
	}
	return &tokenBucket{rate: q.RecordsPerSec, burst: burst, tokens: burst, last: time.Now()}
}

// take spends n tokens if the refilled bucket holds them; a false return
// spends nothing (quota rejections must not eat into future budget).
func (b *tokenBucket) take(n float64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens < n {
		return false
	}
	b.tokens -= n
	return true
}

// AdminGroupSpec is the wire form of a group registration: everything a
// live service needs to stand the group up, including its initial training
// records (already perturbed into the group's target space — the admin plane
// never moves clear data) and an encoded classifier to fit on them.
type AdminGroupSpec struct {
	// ID names the new serving group. Must be unused on the target service.
	ID string
	// X and Y are the group's initial training records and labels, in the
	// group's perturbed target space.
	X [][]float64
	Y []int
	// Model is the group's classifier in classify.EncodeModel format. The
	// service decodes it and fits it on X/Y before the group serves.
	Model []byte
	// RefitEvery, Workers, MaxBatch and QueueDepth tune the group exactly
	// like their GroupSpec counterparts (zero picks the service defaults;
	// negative RefitEvery disables automatic refits).
	RefitEvery int
	Workers    int
	MaxBatch   int
	QueueDepth int
	// Members is the group's ACL (empty admits any peer).
	Members []string
	// Float32 marks the group's replication traffic for packed-float32
	// model blobs toward capable replicas.
	Float32 bool
	// Quota is the group's ingest rate limit (zero: unlimited).
	Quota GroupQuota
	// Views optionally registers the group as a multi-level trust group:
	// one served model per trust level, mirroring GroupSpec.Views. With
	// Views set the group-level Model blob must be empty — each view
	// carries its own. Nil registers a single-view group exactly as before.
	Views []AdminViewSpec
}

// AdminViewSpec is the wire form of one trust view in a group registration.
type AdminViewSpec struct {
	// Level is the view's trust rank (positive, strictly increasing across
	// the list; level 1 = most trusted).
	Level int
	// NoiseSigma is the view's absolute additive training-noise σ
	// (non-decreasing across the list).
	NoiseSigma float64
	// Model is the view's classifier in classify.EncodeModel format.
	Model []byte
	// Members is the view's ACL on top of the group's (empty admits every
	// group member).
	Members []string
}

// AdminUpdate names the limits a kindAdminUpdate changes on a live group.
// Each Set flag gates its field, so an update touches exactly what the
// operator asked for and nothing else.
type AdminUpdate struct {
	// SetQuota replaces the group's ingest quota with Quota (the zero
	// GroupQuota removes the limit).
	SetQuota bool
	Quota    GroupQuota
	// SetMaxBatch replaces the group's per-request batch cap.
	SetMaxBatch bool
	MaxBatch    int
	// SetRefitEvery replaces the group's refit cadence (negative disables
	// automatic refits).
	SetRefitEvery bool
	RefitEvery    int
	// SetMembers replaces the group's ACL (empty admits any peer).
	SetMembers bool
	Members    []string
	// SetViewMembers replaces the per-view ACLs named in ViewMembers (one
	// row per view level; an empty member list opens the view to every
	// group member). Levels the group does not serve reject the whole
	// update, applying nothing.
	SetViewMembers bool
	ViewMembers    []AdminViewMembers
}

// AdminViewMembers names one trust view's replacement ACL in an AdminUpdate.
type AdminViewMembers struct {
	Level   int
	Members []string
}

// AdminGroupInfo describes one hosted group in a kindAdminList answer.
type AdminGroupInfo struct {
	ID         string
	Workers    int
	MaxBatch   int
	RefitEvery int
	QueueDepth int
	Members    []string
	// SyncFrom is the leader this group replicates from ("" when the group
	// leads itself).
	SyncFrom string
	Float32  bool
	Quota    GroupQuota
	// Ingested is the group's total stream-ingested record count.
	Ingested int64
	// Views describes a multi-level group's trust views in ascending level
	// order; nil for single-view groups.
	Views []AdminViewInfo
}

// AdminViewInfo describes one trust view of a hosted multi-level group.
type AdminViewInfo struct {
	Level      int
	NoiseSigma float64
	Members    []string
}

// groupSpec converts the wire spec into the registry's GroupSpec: the
// training set is rebuilt and the model blob decoded. The caller (the
// service's admin goroutine) fits the model afterwards via newModelShard.
func (w *AdminGroupSpec) groupSpec() (GroupSpec, error) {
	if w.ID == "" {
		return GroupSpec{}, fmt.Errorf("register without a group ID")
	}
	ds, err := dataset.New(w.ID, w.X, w.Y)
	if err != nil {
		return GroupSpec{}, fmt.Errorf("group %q training set: %v", w.ID, err)
	}
	spec := GroupSpec{
		ID:         w.ID,
		Unified:    ds,
		RefitEvery: w.RefitEvery,
		Workers:    w.Workers,
		MaxBatch:   w.MaxBatch,
		QueueDepth: w.QueueDepth,
		Members:    w.Members,
		Float32:    w.Float32,
		Quota:      w.Quota,
	}
	if len(w.Views) > 0 {
		if len(w.Model) > 0 {
			return GroupSpec{}, fmt.Errorf("group %q: both a group-level model blob and views", w.ID)
		}
		for _, vw := range w.Views {
			if len(vw.Model) == 0 {
				return GroupSpec{}, fmt.Errorf("group %q view %d: no model blob", w.ID, vw.Level)
			}
			model, err := classify.DecodeModel(vw.Model)
			if err != nil {
				return GroupSpec{}, fmt.Errorf("group %q view %d model: %v", w.ID, vw.Level, err)
			}
			spec.Views = append(spec.Views, ViewSpec{
				Level:      vw.Level,
				NoiseSigma: vw.NoiseSigma,
				Model:      model,
				Members:    vw.Members,
			})
		}
		return spec, nil
	}
	if len(w.Model) == 0 {
		return GroupSpec{}, fmt.Errorf("group %q: no model blob", w.ID)
	}
	model, err := classify.DecodeModel(w.Model)
	if err != nil {
		return GroupSpec{}, fmt.Errorf("group %q model: %v", w.ID, err)
	}
	spec.Model = model
	return spec, nil
}

// adminTokenOK authenticates one admin frame against the configured token in
// constant time. An empty configured token admits nothing.
func adminTokenOK(configured, presented string) bool {
	if configured == "" {
		return false
	}
	return subtle.ConstantTimeCompare([]byte(configured), []byte(presented)) == 1
}

// AdminClient drives the v8 admin control plane of one mining service:
// registering, evicting, updating and listing serving groups at runtime.
// Admin frames always ride the classic frame layout, so a pre-v8 service
// answers them with a typed ErrWireVersion instead of hanging the caller.
// Safe for concurrent use; Close releases the underlying demultiplexer.
type AdminClient struct {
	inner *ServiceClient
	token string
}

// NewAdminClient binds an admin client to a service endpoint. The token must
// match the service's ServiceConfig.AdminToken; an empty token is rejected
// here because it could never authenticate.
func NewAdminClient(conn transport.Conn, miner, token string) (*AdminClient, error) {
	if token == "" {
		return nil, fmt.Errorf("%w: empty admin token", ErrBadConfig)
	}
	inner, err := NewServiceClient(conn, miner)
	if err != nil {
		return nil, err
	}
	return &AdminClient{inner: inner, token: token}, nil
}

// Close stops the client's response demultiplexer.
func (a *AdminClient) Close() error { return a.inner.Close() }

// call is one authenticated admin round trip with the response code mapped
// to a typed error.
func (a *AdminClient) call(ctx context.Context, w *serviceWire) (*serviceWire, error) {
	w.Token = a.token
	resp, err := a.inner.roundTrip(ctx, a.inner.miner, w)
	if err != nil {
		return nil, err
	}
	if err := responseErr(resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// RegisterGroup stands a new serving group up on the live service: the
// service fits the spec's model on its training records off the serving
// loop, starts the group's queues and goroutines, and (in a cluster) leads
// the group under a fresh epoch-bumped routing row so clients discover it
// without any restart. ErrGroupExists if the ID is already hosted.
func (a *AdminClient) RegisterGroup(ctx context.Context, spec AdminGroupSpec) error {
	if spec.ID == "" {
		return fmt.Errorf("%w: register without a group ID", ErrBadConfig)
	}
	_, err := a.call(ctx, &serviceWire{Kind: kindAdminRegister, Group: spec.ID, Spec: &spec})
	return err
}

// EvictGroup removes a serving group from the live service: its ingest
// queue drains (queued chunks still fold in), queued classifies answer, the
// refit goroutine stops, and subsequent frames for the group are rejected
// with ErrUnknownGroup. Other groups are unaffected. ErrUnknownGroup if the
// service does not host the group.
func (a *AdminClient) EvictGroup(ctx context.Context, group string) error {
	if group == "" {
		return fmt.Errorf("%w: evict without a group", ErrBadConfig)
	}
	_, err := a.call(ctx, &serviceWire{Kind: kindAdminEvict, Group: group})
	return err
}

// UpdateGroup changes a live group's limits in place — quota, batch cap,
// refit cadence, members ACL — per the update's Set flags. In-flight
// requests finish under the limits they were admitted with; the next frame
// sees the new ones.
func (a *AdminClient) UpdateGroup(ctx context.Context, group string, u AdminUpdate) error {
	if group == "" {
		return fmt.Errorf("%w: update without a group", ErrBadConfig)
	}
	if !u.SetQuota && !u.SetMaxBatch && !u.SetRefitEvery && !u.SetMembers && !u.SetViewMembers {
		return fmt.Errorf("%w: update changes nothing", ErrBadConfig)
	}
	_, err := a.call(ctx, &serviceWire{Kind: kindAdminUpdate, Group: group, Update: &u})
	return err
}

// ListGroups describes every group the service currently hosts, in serving
// order.
func (a *AdminClient) ListGroups(ctx context.Context) ([]AdminGroupInfo, error) {
	resp, err := a.call(ctx, &serviceWire{Kind: kindAdminList})
	if err != nil {
		return nil, err
	}
	return resp.Infos, nil
}

// sortedMembers flattens a members set for an AdminGroupInfo row.
func sortedMembers(set map[string]struct{}) []string {
	if len(set) == 0 {
		return nil
	}
	members := make([]string, 0, len(set))
	for m := range set {
		members = append(members, m)
	}
	sort.Strings(members)
	return members
}
