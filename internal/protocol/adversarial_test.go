package protocol

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/perturb"
	"repro/internal/transport"
)

// testNet wraps a MemNetwork with test-friendly endpoint creation.
type testNet struct {
	net *transport.MemNetwork
}

func newTestNet(t *testing.T) *testNet {
	t.Helper()
	return &testNet{net: transport.NewMemNetwork()}
}

func (n *testNet) endpoint(t *testing.T, name string) transport.Conn {
	t.Helper()
	conn, err := n.net.Endpoint(name)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func sendWire(t *testing.T, ctx context.Context, conn transport.Conn, to string, w *wire) {
	t.Helper()
	payload, err := encodeWire(w)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(ctx, to, payload); err != nil {
		t.Fatal(err)
	}
}

func testDatasetPayload(t *testing.T, seed int64) (features []byte, labels []int, d *dataset.Dataset) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	raw, err := dataset.GenerateByName("Iris", rng)
	if err != nil {
		t.Fatal(err)
	}
	norm, _, err := dataset.Normalize(raw)
	if err != nil {
		t.Fatal(err)
	}
	features, labels, err = encodeDatasetPayload(norm)
	if err != nil {
		t.Fatal(err)
	}
	return features, labels, norm
}

func TestCoordinatorRefusesDatasets(t *testing.T) {
	ctx := testCtx(t)
	net := newTestNet(t)
	coordConn := net.endpoint(t, "coord")
	evil := net.endpoint(t, "p1")
	net.endpoint(t, "p2")
	net.endpoint(t, "miner")

	rng := rand.New(rand.NewSource(1))
	d, _ := dataset.GenerateByName("Iris", rng)
	norm, _, _ := dataset.Normalize(d)
	p, _ := perturb.NewRandom(rng, norm.Dim(), 0.05)
	coord, err := NewCoordinator(coordConn, CoordinatorConfig{
		Providers: []string{"p1", "p2"}, Miner: "miner",
		Data: norm, Perturbation: p, Rng: rng,
	})
	if err != nil {
		t.Fatal(err)
	}

	features, labels, _ := testDatasetPayload(t, 2)
	done := make(chan error, 1)
	go func() { done <- coord.Run(ctx) }()

	// p1 sends a dataset to the coordinator instead of an adaptor.
	sendWire(t, ctx, evil, "coord", &wire{Kind: MsgDataset, DataSlot: 1, Features: features, Labels: labels})
	if err := <-done; !errors.Is(err, ErrViolation) {
		t.Fatalf("coordinator err = %v, want ErrViolation", err)
	}
}

func TestCoordinatorRejectsUnknownAdaptorSender(t *testing.T) {
	ctx := testCtx(t)
	net := newTestNet(t)
	coordConn := net.endpoint(t, "coord")
	stranger := net.endpoint(t, "stranger")
	net.endpoint(t, "p1")
	net.endpoint(t, "p2")
	net.endpoint(t, "miner")

	rng := rand.New(rand.NewSource(3))
	d, _ := dataset.GenerateByName("Iris", rng)
	norm, _, _ := dataset.Normalize(d)
	p, _ := perturb.NewRandom(rng, norm.Dim(), 0.05)
	coord, err := NewCoordinator(coordConn, CoordinatorConfig{
		Providers: []string{"p1", "p2"}, Miner: "miner",
		Data: norm, Perturbation: p, Rng: rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	gt, _ := perturb.NewRandom(rng, norm.Dim(), 0)
	adaptor, _ := perturb.NewAdaptor(p, gt)
	raw, _ := adaptor.MarshalBinary()

	done := make(chan error, 1)
	go func() { done <- coord.Run(ctx) }()
	sendWire(t, ctx, stranger, "coord", &wire{Kind: MsgAdaptor, Adaptor: raw})
	if err := <-done; !errors.Is(err, ErrViolation) {
		t.Fatalf("coordinator err = %v, want ErrViolation", err)
	}
}

func TestProviderRejectsTargetFromImpostor(t *testing.T) {
	ctx := testCtx(t)
	net := newTestNet(t)
	provConn := net.endpoint(t, "prov")
	impostor := net.endpoint(t, "impostor")
	net.endpoint(t, "coord")
	net.endpoint(t, "miner")

	rng := rand.New(rand.NewSource(4))
	d, _ := dataset.GenerateByName("Iris", rng)
	norm, _, _ := dataset.Normalize(d)
	p, _ := perturb.NewRandom(rng, norm.Dim(), 0.05)
	prov, err := NewProvider(provConn, ProviderConfig{
		Coordinator: "coord", Miner: "miner", Data: norm, Perturbation: p, Rng: rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	gt, _ := perturb.NewRandom(rng, norm.Dim(), 0)
	targetRaw, _ := gt.MarshalBinary()

	done := make(chan error, 1)
	go func() { done <- prov.Run(ctx) }()
	sendWire(t, ctx, impostor, "prov", &wire{Kind: MsgTarget, Target: targetRaw, SendTo: "miner"})
	if err := <-done; !errors.Is(err, ErrViolation) {
		t.Fatalf("provider err = %v, want ErrViolation", err)
	}
}

func TestProviderRejectsNoisyTarget(t *testing.T) {
	// The SAP target must carry no noise component; a noisy target would
	// double-perturb everyone's data.
	ctx := testCtx(t)
	net := newTestNet(t)
	provConn := net.endpoint(t, "prov")
	coord := net.endpoint(t, "coord")
	net.endpoint(t, "miner")

	rng := rand.New(rand.NewSource(5))
	d, _ := dataset.GenerateByName("Iris", rng)
	norm, _, _ := dataset.Normalize(d)
	p, _ := perturb.NewRandom(rng, norm.Dim(), 0.05)
	prov, err := NewProvider(provConn, ProviderConfig{
		Coordinator: "coord", Miner: "miner", Data: norm, Perturbation: p, Rng: rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	noisy, _ := perturb.NewRandom(rng, norm.Dim(), 0.3)
	raw, _ := noisy.MarshalBinary()

	done := make(chan error, 1)
	go func() { done <- prov.Run(ctx) }()
	sendWire(t, ctx, coord, "prov", &wire{Kind: MsgTarget, Target: raw, SendTo: "other", SlotID: 1})
	if err := <-done; !errors.Is(err, ErrViolation) {
		t.Fatalf("provider err = %v, want ErrViolation", err)
	}
}

func TestProviderRejectsRedirectToCoordinator(t *testing.T) {
	ctx := testCtx(t)
	net := newTestNet(t)
	provConn := net.endpoint(t, "prov")
	coord := net.endpoint(t, "coord")
	net.endpoint(t, "miner")

	rng := rand.New(rand.NewSource(6))
	d, _ := dataset.GenerateByName("Iris", rng)
	norm, _, _ := dataset.Normalize(d)
	p, _ := perturb.NewRandom(rng, norm.Dim(), 0.05)
	prov, err := NewProvider(provConn, ProviderConfig{
		Coordinator: "coord", Miner: "miner", Data: norm, Perturbation: p, Rng: rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	gt, _ := perturb.NewRandom(rng, norm.Dim(), 0)
	raw, _ := gt.WithoutNoise().MarshalBinary()

	done := make(chan error, 1)
	go func() { done <- prov.Run(ctx) }()
	// A malicious coordinator tells the provider to send data to itself.
	sendWire(t, ctx, coord, "prov", &wire{Kind: MsgTarget, Target: raw, SendTo: "coord", SlotID: 1})
	if err := <-done; !errors.Is(err, ErrViolation) {
		t.Fatalf("provider err = %v, want ErrViolation", err)
	}
}

func TestProviderRejectsExcessDatasets(t *testing.T) {
	ctx := testCtx(t)
	net := newTestNet(t)
	provConn := net.endpoint(t, "prov")
	coord := net.endpoint(t, "coord")
	peer := net.endpoint(t, "peer")
	miner := net.endpoint(t, "miner")
	_ = miner

	rng := rand.New(rand.NewSource(7))
	d, _ := dataset.GenerateByName("Iris", rng)
	norm, _, _ := dataset.Normalize(d)
	p, _ := perturb.NewRandom(rng, norm.Dim(), 0.05)
	prov, err := NewProvider(provConn, ProviderConfig{
		Coordinator: "coord", Miner: "miner", Data: norm, Perturbation: p, Rng: rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	gt, _ := perturb.NewRandom(rng, norm.Dim(), 0)
	raw, _ := gt.WithoutNoise().MarshalBinary()
	features, labels, _ := testDatasetPayload(t, 8)

	done := make(chan error, 1)
	go func() { done <- prov.Run(ctx) }()
	// The peer floods 2 datasets before the assignment announces a quota
	// of 1; the provider must refuse to forward the excess.
	sendWire(t, ctx, peer, "prov", &wire{Kind: MsgDataset, DataSlot: 2, Features: features, Labels: labels})
	sendWire(t, ctx, peer, "prov", &wire{Kind: MsgDataset, DataSlot: 3, Features: features, Labels: labels})
	sendWire(t, ctx, coord, "prov", &wire{Kind: MsgTarget, Target: raw, SendTo: "peer", SlotID: 1, ExpectCount: 1})
	if err := <-done; !errors.Is(err, ErrViolation) {
		t.Fatalf("provider err = %v, want ErrViolation", err)
	}
}

func TestMinerRejectsDuplicateSlot(t *testing.T) {
	ctx := testCtx(t)
	net := newTestNet(t)
	minerConn := net.endpoint(t, "miner")
	p1 := net.endpoint(t, "p1")

	miner, err := NewMiner(minerConn, MinerConfig{Coordinator: "coord", Parties: 3})
	if err != nil {
		t.Fatal(err)
	}
	features, labels, _ := testDatasetPayload(t, 9)

	errCh := make(chan error, 1)
	go func() {
		_, err := miner.Run(ctx)
		errCh <- err
	}()
	sendWire(t, ctx, p1, "miner", &wire{Kind: MsgSubmission, DataSlot: 42, Features: features, Labels: labels})
	sendWire(t, ctx, p1, "miner", &wire{Kind: MsgSubmission, DataSlot: 42, Features: features, Labels: labels})
	if err := <-errCh; !errors.Is(err, ErrViolation) {
		t.Fatalf("miner err = %v, want ErrViolation", err)
	}
}

func TestMinerRejectsCoordinatorDataset(t *testing.T) {
	ctx := testCtx(t)
	net := newTestNet(t)
	minerConn := net.endpoint(t, "miner")
	coord := net.endpoint(t, "coord")

	miner, err := NewMiner(minerConn, MinerConfig{Coordinator: "coord", Parties: 3})
	if err != nil {
		t.Fatal(err)
	}
	features, labels, _ := testDatasetPayload(t, 10)

	errCh := make(chan error, 1)
	go func() {
		_, err := miner.Run(ctx)
		errCh <- err
	}()
	sendWire(t, ctx, coord, "miner", &wire{Kind: MsgSubmission, DataSlot: 1, Features: features, Labels: labels})
	if err := <-errCh; !errors.Is(err, ErrViolation) {
		t.Fatalf("miner err = %v, want ErrViolation", err)
	}
}

func TestMinerRejectsAdaptorMapFromImpostor(t *testing.T) {
	ctx := testCtx(t)
	net := newTestNet(t)
	minerConn := net.endpoint(t, "miner")
	impostor := net.endpoint(t, "impostor")

	miner, err := NewMiner(minerConn, MinerConfig{Coordinator: "coord", Parties: 3})
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := miner.Run(ctx)
		errCh <- err
	}()
	sendWire(t, ctx, impostor, "miner", &wire{Kind: MsgAdaptorMap, Slots: []SlotAdaptor{{}, {}, {}}})
	if err := <-errCh; !errors.Is(err, ErrViolation) {
		t.Fatalf("miner err = %v, want ErrViolation", err)
	}
}

func TestMinerRejectsWrongSlotCount(t *testing.T) {
	ctx := testCtx(t)
	net := newTestNet(t)
	minerConn := net.endpoint(t, "miner")
	coord := net.endpoint(t, "coord")

	miner, err := NewMiner(minerConn, MinerConfig{Coordinator: "coord", Parties: 3})
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := miner.Run(ctx)
		errCh <- err
	}()
	sendWire(t, ctx, coord, "miner", &wire{Kind: MsgAdaptorMap, Slots: []SlotAdaptor{{SlotID: 1}}})
	if err := <-errCh; !errors.Is(err, ErrViolation) {
		t.Fatalf("miner err = %v, want ErrViolation", err)
	}
}

func TestMinerRejectsTamperedAdaptor(t *testing.T) {
	// An adaptor whose rotation is not orthogonal must be rejected before
	// it distorts the unified dataset.
	ctx := testCtx(t)
	net := newTestNet(t)
	minerConn := net.endpoint(t, "miner")
	coord := net.endpoint(t, "coord")
	p1 := net.endpoint(t, "p1")

	miner, err := NewMiner(minerConn, MinerConfig{Coordinator: "coord", Parties: 3})
	if err != nil {
		t.Fatal(err)
	}
	features, labels, norm := testDatasetPayload(t, 11)
	rng := rand.New(rand.NewSource(12))
	gi, _ := perturb.NewRandom(rng, norm.Dim(), 0.05)
	gt, _ := perturb.NewRandom(rng, norm.Dim(), 0)
	adaptor, _ := perturb.NewAdaptor(gi, gt)
	good, _ := adaptor.MarshalBinary()
	bad := append([]byte(nil), good...)
	bad[len(bad)-8] ^= 0x7F // corrupt the rotation

	errCh := make(chan error, 1)
	go func() {
		_, err := miner.Run(ctx)
		errCh <- err
	}()
	for slot := uint64(1); slot <= 3; slot++ {
		sendWire(t, ctx, p1, "miner", &wire{Kind: MsgSubmission, DataSlot: slot, Features: features, Labels: labels})
	}
	sendWire(t, ctx, coord, "miner", &wire{Kind: MsgAdaptorMap, Slots: []SlotAdaptor{
		{SlotID: 1, Adaptor: good}, {SlotID: 2, Adaptor: good}, {SlotID: 3, Adaptor: bad},
	}})
	if err := <-errCh; !errors.Is(err, ErrBadMessage) {
		t.Fatalf("miner err = %v, want ErrBadMessage", err)
	}
}
