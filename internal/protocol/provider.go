package protocol

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/perturb"
	"repro/internal/transport"
)

// ProviderConfig configures a non-coordinator data provider DP_i.
type ProviderConfig struct {
	// Coordinator and Miner are the peer endpoint names.
	Coordinator string
	Miner       string
	// Data is the provider's local (normalized) dataset.
	Data *dataset.Dataset
	// Perturbation is the locally optimized G_i.
	Perturbation *perturb.Perturbation
	// Rng draws the noise component Δ_i. Required.
	Rng *rand.Rand
	// Audit optionally records protocol events (nil disables).
	Audit *AuditLog
}

// Provider runs one non-coordinator data provider.
type Provider struct {
	cfg    ProviderConfig
	conn   transport.Conn
	target *perturb.Perturbation
}

// Target returns the unified target perturbation G_t received from the
// coordinator, available once Run has completed. Providers use it to
// transform classification queries into the target space before asking the
// mining service.
func (p *Provider) Target() *perturb.Perturbation { return p.target }

// NewProvider validates the configuration and binds the provider to a
// transport endpoint.
func NewProvider(conn transport.Conn, cfg ProviderConfig) (*Provider, error) {
	if cfg.Rng == nil {
		return nil, fmt.Errorf("%w: provider needs an rng", ErrBadConfig)
	}
	if cfg.Data == nil || cfg.Data.Len() == 0 {
		return nil, fmt.Errorf("%w: provider has no data", ErrBadConfig)
	}
	if cfg.Perturbation == nil {
		return nil, fmt.Errorf("%w: provider has no local perturbation", ErrBadConfig)
	}
	if cfg.Perturbation.Dim() != cfg.Data.Dim() {
		return nil, fmt.Errorf("%w: perturbation dim %d vs data dim %d",
			ErrBadConfig, cfg.Perturbation.Dim(), cfg.Data.Dim())
	}
	if cfg.Coordinator == "" || cfg.Miner == "" {
		return nil, fmt.Errorf("%w: missing coordinator or miner endpoint", ErrBadConfig)
	}
	return &Provider{cfg: cfg, conn: conn}, nil
}

// Run executes the provider's side of SAP: receive target + assignment,
// ship the locally perturbed dataset to the assigned receiver, forward every
// dataset received during the exchange to the miner, and send the space
// adaptor to the coordinator.
func (p *Provider) Run(ctx context.Context) error {
	var (
		target     *perturb.Perturbation
		assigned   bool
		slotID     uint64
		sendTo     string
		expect     int
		sentData   bool
		sentAdapt  bool
		forwarded  int
		pendingFwd []*wire // datasets that arrived before our assignment
	)

	done := func() bool {
		return assigned && sentData && sentAdapt && forwarded == expect
	}

	for !done() {
		env, err := p.conn.Recv(ctx)
		if err != nil {
			return fmt.Errorf("%w: provider %s: %v", ErrMissingPiece, p.conn.Name(), err)
		}
		w, err := decodeWire(env.Payload)
		if err != nil {
			return err
		}
		switch w.Kind {
		case MsgTarget:
			if env.From != p.cfg.Coordinator {
				return fmt.Errorf("%w: target from non-coordinator %q", ErrViolation, env.From)
			}
			if assigned {
				return fmt.Errorf("%w: duplicate assignment", ErrViolation)
			}
			target, err = decodePerturbation(w.Target)
			if err != nil {
				return err
			}
			if target.Dim() != p.cfg.Data.Dim() {
				return fmt.Errorf("%w: target dim %d vs local dim %d",
					ErrDimMismatch, target.Dim(), p.cfg.Data.Dim())
			}
			if target.NoiseSigma != 0 {
				return fmt.Errorf("%w: target perturbation carries noise", ErrViolation)
			}
			slotID, sendTo, expect = w.SlotID, w.SendTo, w.ExpectCount
			if sendTo == p.cfg.Coordinator {
				// The redirect exists precisely so this never happens.
				return fmt.Errorf("%w: assigned to send data to the coordinator", ErrViolation)
			}
			if expect < 0 || expect > 2 {
				return fmt.Errorf("%w: implausible forward count %d", ErrViolation, expect)
			}
			if len(pendingFwd) > expect {
				return fmt.Errorf("%w: %d datasets arrived for a quota of %d", ErrViolation, len(pendingFwd), expect)
			}
			assigned = true
			p.target = target

			if err := p.sendOwnData(ctx, slotID, sendTo); err != nil {
				return err
			}
			sentData = true
			if err := p.sendAdaptor(ctx, target); err != nil {
				return err
			}
			sentAdapt = true
			for _, q := range pendingFwd {
				if err := p.forward(ctx, q); err != nil {
					return err
				}
				forwarded++
			}
			pendingFwd = nil

		case MsgDataset:
			if assigned && forwarded+len(pendingFwd) >= expect {
				p.cfg.Audit.Record(p.conn.Name(), EventViolationDetected, env.From, "dataset beyond quota")
				return fmt.Errorf("%w: more datasets than announced", ErrViolation)
			}
			// Validate before forwarding; a malformed dataset must not
			// reach the miner attributed to us.
			if _, err := decodeDatasetPayload(w.Features, w.Labels, "exchange"); err != nil {
				return fmt.Errorf("dataset from %q: %w", env.From, err)
			}
			p.cfg.Audit.Record(p.conn.Name(), EventDatasetReceived, env.From, fmt.Sprintf("slot=%d", w.DataSlot))
			if !assigned {
				pendingFwd = append(pendingFwd, w)
				continue
			}
			if err := p.forward(ctx, w); err != nil {
				return err
			}
			forwarded++

		default:
			return fmt.Errorf("%w: unexpected %v from %q", ErrViolation, w.Kind, env.From)
		}
	}
	return nil
}

// sendOwnData perturbs the local data with G_i and ships it to the assigned
// receiver labelled with the provider's slot.
func (p *Provider) sendOwnData(ctx context.Context, slotID uint64, sendTo string) error {
	y, _, err := p.cfg.Perturbation.Apply(p.cfg.Rng, p.cfg.Data.FeaturesT())
	if err != nil {
		return fmt.Errorf("protocol: perturb local data: %w", err)
	}
	out := p.cfg.Data.Clone()
	if err := out.ReplaceFeaturesT(y); err != nil {
		return err
	}
	features, labels, err := encodeDatasetPayload(out)
	if err != nil {
		return err
	}
	payload, err := encodeWire(&wire{
		Kind:     MsgDataset,
		DataSlot: slotID,
		Features: features,
		Labels:   labels,
	})
	if err != nil {
		return err
	}
	if err := p.conn.Send(ctx, sendTo, payload); err != nil {
		return fmt.Errorf("protocol: dataset to %s: %w", sendTo, err)
	}
	p.cfg.Audit.Record(p.conn.Name(), EventDatasetSent, sendTo, fmt.Sprintf("records=%d", p.cfg.Data.Len()))
	return nil
}

// sendAdaptor computes A_it and ships it to the coordinator.
func (p *Provider) sendAdaptor(ctx context.Context, target *perturb.Perturbation) error {
	adaptor, err := perturb.NewAdaptor(p.cfg.Perturbation, target)
	if err != nil {
		return fmt.Errorf("protocol: adaptor: %w", err)
	}
	raw, err := adaptor.MarshalBinary()
	if err != nil {
		return err
	}
	payload, err := encodeWire(&wire{Kind: MsgAdaptor, Adaptor: raw})
	if err != nil {
		return err
	}
	if err := p.conn.Send(ctx, p.cfg.Coordinator, payload); err != nil {
		return fmt.Errorf("protocol: adaptor to coordinator: %w", err)
	}
	p.cfg.Audit.Record(p.conn.Name(), EventAdaptorSent, p.cfg.Coordinator, "")
	return nil
}

// forward re-labels an exchanged dataset as a submission and ships it to the
// miner. The submission carries only the forwarder's transport identity, so
// the miner cannot tell which provider originated the data.
func (p *Provider) forward(ctx context.Context, w *wire) error {
	payload, err := encodeWire(&wire{
		Kind:     MsgSubmission,
		DataSlot: w.DataSlot,
		Features: w.Features,
		Labels:   w.Labels,
	})
	if err != nil {
		return err
	}
	if err := p.conn.Send(ctx, p.cfg.Miner, payload); err != nil {
		return fmt.Errorf("protocol: submission to miner: %w", err)
	}
	p.cfg.Audit.Record(p.conn.Name(), EventDatasetForwarded, p.cfg.Miner, fmt.Sprintf("slot=%d", w.DataSlot))
	return nil
}
