package protocol

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/dataset"
	"repro/internal/transport"
)

// sniffConn wraps a transport endpoint and records a copy of every payload
// it sends, so tests can assert which frame format actually hit the wire.
type sniffConn struct {
	transport.Conn
	mu   sync.Mutex
	sent [][]byte
}

func (c *sniffConn) Send(ctx context.Context, to string, payload []byte) error {
	c.mu.Lock()
	c.sent = append(c.sent, append([]byte(nil), payload...))
	c.mu.Unlock()
	return c.Conn.Send(ctx, to, payload)
}

// frames returns the recorded service-frame headers as (version, flags)
// pairs; classic frames report flags 0.
func (c *sniffConn) frames() [][2]byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([][2]byte, 0, len(c.sent))
	for _, p := range c.sent {
		if !IsServiceFrame(p) {
			continue
		}
		h := [2]byte{p[1], 0}
		if p[1] == serviceWireFlaggedVersion && len(p) > 2 {
			h[1] = p[2]
		}
		out = append(out, h)
	}
	return out
}

// startLegacyMiner stands up a pre-v7 peer double: it answers classify
// requests correctly but frames every response classic and never advertises
// a capability mask — exactly what a v6 binary looks like on the wire. It
// fails the test if a flagged v7 frame ever reaches it, since a real v6
// decoder would reject one.
func startLegacyMiner(t *testing.T, conn transport.Conn) func() {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			env, err := conn.Recv(ctx)
			if err != nil {
				return
			}
			if len(env.Payload) > 1 && env.Payload[0] == serviceMagic &&
				env.Payload[1] == serviceWireFlaggedVersion {
				t.Errorf("legacy miner received a v7 frame (flags %#x)", env.Payload[2])
				continue
			}
			req, err := decodeServiceWire(env.Payload)
			if err != nil || req == nil {
				continue
			}
			labels := make([]int, len(req.Batch))
			// A v6 peer has no Accept field: its responses carry mask 0.
			payload, err := encodeServiceWire(&serviceWire{
				ID: req.ID, Response: true, Labels: labels})
			if err != nil {
				t.Error(err)
				return
			}
			if err := conn.Send(ctx, env.From, payload); err != nil {
				return
			}
		}
	}()
	return func() {
		cancel()
		conn.Close()
		<-done
	}
}

// TestCompressionNegotiationUpgrades checks the full handshake: the first
// request toward an unseen peer is classic (carrying the client's
// advertisement), the response teaches the client the service's mask, and
// every subsequent request rides the flagged v7 format with the deflate bit.
func TestCompressionNegotiationUpgrades(t *testing.T) {
	net := transport.NewMemNetwork()
	svcConn, _ := net.Endpoint("svc")
	defer svcConn.Close()
	raw, _ := net.Endpoint("client")
	clientConn := &sniffConn{Conn: raw}
	defer clientConn.Close()

	_, stop := startGroupedService(t, svcConn, []GroupSpec{{
		ID: "alpha", Unified: labelledLine(t, 8), Model: classify.NewKNN(1)}},
		ServiceConfig{Compression: true})
	defer stop()

	client, err := NewGroupServiceClient(clientConn, "svc", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.SetWireOptions(WireOptions{Compress: true})

	ctx := testCtx(t)
	for i := 0; i < 3; i++ {
		if _, err := client.ClassifyBatch(ctx, [][]float64{{0.3}}); err != nil {
			t.Fatalf("classify %d: %v", i, err)
		}
	}

	frames := clientConn.frames()
	if len(frames) != 3 {
		t.Fatalf("recorded %d frames, want 3", len(frames))
	}
	if frames[0][0] != serviceWireClassicVersion {
		t.Fatalf("first frame is v%d, want classic v%d before capabilities are known",
			frames[0][0], serviceWireClassicVersion)
	}
	for i, h := range frames[1:] {
		if h[0] != serviceWireFlaggedVersion || h[1]&frameFlagDeflate == 0 {
			t.Fatalf("frame %d after negotiation is v%d flags %#x, want v7 with the deflate bit",
				i+1, h[0], h[1])
		}
	}
}

// TestCompressingClientAgainstLegacyMiner checks the fallback half of the
// negotiation contract: a client with every wire option on, pointed at a
// v6-framed peer that never advertises, keeps the conversation classic for
// its whole lifetime — zero errors, zero v7 frames.
func TestCompressingClientAgainstLegacyMiner(t *testing.T) {
	net := transport.NewMemNetwork()
	minerConn, _ := net.Endpoint("old-miner")
	stop := startLegacyMiner(t, minerConn)
	defer stop()

	raw, _ := net.Endpoint("client")
	clientConn := &sniffConn{Conn: raw}
	defer clientConn.Close()
	client, err := NewServiceClient(clientConn, "old-miner")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.SetWireOptions(WireOptions{Compress: true, Float32: true})

	ctx := testCtx(t)
	for i := 0; i < 4; i++ {
		if _, err := client.ClassifyBatch(ctx, [][]float64{{0.1, 0.2}}); err != nil {
			t.Fatalf("classify %d against the legacy miner: %v", i, err)
		}
	}
	for i, h := range clientConn.frames() {
		if h[0] != serviceWireClassicVersion {
			t.Fatalf("frame %d toward the legacy miner is v%d, want classic v%d",
				i, h[0], h[0])
		}
	}
}

// TestPlainClientAgainstCompressingService checks the mirror-image fallback:
// a compression-enabled service never compresses toward a client that did
// not advertise the capability, so a default-configured client works
// unchanged against an upgraded miner.
func TestPlainClientAgainstCompressingService(t *testing.T) {
	net := transport.NewMemNetwork()
	rawSvc, _ := net.Endpoint("svc")
	svcConn := &sniffConn{Conn: rawSvc}
	defer svcConn.Close()
	clientConn, _ := net.Endpoint("client")
	defer clientConn.Close()

	_, stop := startGroupedService(t, svcConn, []GroupSpec{{
		ID: "alpha", Unified: labelledLine(t, 8), Model: classify.NewKNN(1)}},
		ServiceConfig{Compression: true})
	defer stop()

	client, err := NewGroupServiceClient(clientConn, "svc", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ctx := testCtx(t)
	for i := 0; i < 3; i++ {
		if _, err := client.ClassifyBatch(ctx, [][]float64{{0.4}}); err != nil {
			t.Fatalf("classify %d: %v", i, err)
		}
	}
	for i, h := range svcConn.frames() {
		if h[1]&frameFlagDeflate != 0 {
			t.Fatalf("response %d compressed toward a client that never asked (flags %#x)", i, h[1])
		}
	}
}

// TestFloat32BatchNegotiation checks the float32 payload mode end to end:
// once the service's mask is known, batches ride the v7 float32 flag and
// classification still attributes every record correctly.
func TestFloat32BatchNegotiation(t *testing.T) {
	net := transport.NewMemNetwork()
	svcConn, _ := net.Endpoint("svc")
	defer svcConn.Close()
	raw, _ := net.Endpoint("client")
	clientConn := &sniffConn{Conn: raw}
	defer clientConn.Close()

	// Wide records with full-entropy mantissas, as perturbed data has: gob
	// suppresses trailing zero bytes of a float64, so only realistic values
	// show the packed form's halved width through the gob overhead.
	n, dim := 16, 8
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		x[i] = make([]float64, dim)
		for j := range x[i] {
			x[i][j] = (float64(i) + 1) / (float64(j)*3.1415926535 + 1.7320508)
		}
		y[i] = i
	}
	wide, err := dataset.New("wide-line", x, y)
	if err != nil {
		t.Fatal(err)
	}
	_, stop := startGroupedService(t, svcConn, []GroupSpec{{
		ID: "alpha", Unified: wide, Model: classify.NewKNN(1)}},
		ServiceConfig{})
	defer stop()

	client, err := NewGroupServiceClient(clientConn, "svc", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.SetWireOptions(WireOptions{Float32: true})

	ctx := testCtx(t)
	query := func(round int) {
		t.Helper()
		batch := make([][]float64, n)
		for i := range batch {
			batch[i] = append([]float64(nil), x[i]...)
		}
		labels, err := client.ClassifyBatch(ctx, batch)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for i, l := range labels {
			if l != i {
				t.Fatalf("round %d: record %d classified %d at float32 precision", round, i, l)
			}
		}
	}
	query(0)
	query(1)

	frames := clientConn.frames()
	if len(frames) != 2 {
		t.Fatalf("recorded %d frames, want 2", len(frames))
	}
	if frames[0][0] != serviceWireClassicVersion {
		t.Fatalf("first frame is v%d, want classic before negotiation", frames[0][0])
	}
	if frames[1][0] != serviceWireFlaggedVersion || frames[1][1]&frameFlagFloat32 == 0 {
		t.Fatalf("negotiated frame is v%d flags %#x, want v7 with the float32 bit",
			frames[1][0], frames[1][1])
	}
	if len(clientConn.sent[1]) >= len(clientConn.sent[0]) {
		t.Fatalf("float32 frame (%d bytes) is not smaller than the float64 frame (%d bytes)",
			len(clientConn.sent[1]), len(clientConn.sent[0]))
	}
}

// TestModelSyncPayloadReduction pins the issue's headline acceptance bound:
// a replicated model-sync frame with float32 blobs and compression on is at
// most half the bytes of the classic float64 frame.
func TestModelSyncPayloadReduction(t *testing.T) {
	d := labelledLine(t, 512)
	// Widen the records so the payload is dominated by feature floats, as
	// real perturbed datasets are.
	wide := make([][]float64, d.Len())
	for i := range wide {
		wide[i] = []float64{d.X[i][0], d.X[i][0] * 0.7311, d.X[i][0] * 1.618, d.X[i][0] * 2.718}
	}
	wd, err := dataset.New("wide", wide, d.Y)
	if err != nil {
		t.Fatal(err)
	}
	model := classify.NewKNN(1)
	if err := model.Fit(wd); err != nil {
		t.Fatal(err)
	}

	plainBlob, err := classify.EncodeModel(model)
	if err != nil {
		t.Fatal(err)
	}
	packedBlob, err := classify.EncodeModelFloat32(model)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := encodeServiceFrame(&serviceWire{
		Kind: kindModelSync, Group: "alpha", Seq: 1, Model: plainBlob}, frameOpts{})
	if err != nil {
		t.Fatal(err)
	}
	packed, err := encodeServiceFrame(&serviceWire{
		Kind: kindModelSync, Group: "alpha", Seq: 1, Model: packedBlob},
		frameOpts{deflate: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(packed)*2 > len(plain) {
		t.Fatalf("compressed float32 sync frame is %d bytes vs %d plain — less than the promised 2x reduction",
			len(packed), len(plain))
	}

	// The packed frame still round-trips into a model that classifies.
	w, err := decodeServiceWire(packed)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := classify.DecodeModel(w.Model)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decoded.Predict(wide[3])
	if err != nil {
		t.Fatal(err)
	}
	if got != wd.Y[3] {
		t.Fatalf("decoded float32 model classified record 3 as %d, want %d", got, wd.Y[3])
	}
}

// TestServiceLearnsClientCapsFromGossip checks the fire-and-forget path
// teaches capabilities too: a sync hello stamped with a sender mask makes
// the service compress toward that peer on the next eligible send.
func TestServiceLearnsClientCapsFromGossip(t *testing.T) {
	net := transport.NewMemNetwork()
	svcConn, _ := net.Endpoint("svc")
	defer svcConn.Close()
	peerConn, _ := net.Endpoint("peer")
	defer peerConn.Close()

	svc, stop := startGroupedService(t, svcConn, []GroupSpec{{
		ID: "alpha", Unified: labelledLine(t, 4), Model: classify.NewKNN(1)}},
		ServiceConfig{Compression: true})
	defer stop()

	if opts := svc.FrameOptsFor("peer", true); opts.Compress || opts.Float32 {
		t.Fatalf("unseen peer resolved to %+v, want classic", opts)
	}

	ctx := testCtx(t)
	row := RouteEntry{Group: "alpha", Node: "peer"}
	if err := SendSyncHello(ctx, peerConn, "svc", "alpha", 1, 1, 0, row,
		FrameOpts{accept: acceptDeflate | acceptFloat32}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if opts := svc.FrameOptsFor("peer", true); opts.Compress && opts.Float32 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("service never recorded the gossiped capability mask")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestEncodeServiceFrameRetrySafe checks the float32 packer never mutates
// the caller's frame: retry loops re-encode the same *serviceWire, so the
// original Batch must survive an earlier packed encoding.
func TestEncodeServiceFrameRetrySafe(t *testing.T) {
	w := &serviceWire{ID: 1, Group: "alpha", Batch: [][]float64{{0.25, 0.5}, {0.75, 1.0}}}
	first, err := encodeServiceFrame(w, frameOpts{f32: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Batch) != 2 || w.Batch32 != nil {
		t.Fatalf("encode mutated the caller's frame: %+v", w)
	}
	second, err := encodeServiceFrame(w, frameOpts{f32: true})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("re-encoding the same frame produced different bytes")
	}
}
