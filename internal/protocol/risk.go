package protocol

import (
	"fmt"
	"math"
)

// RiskEq1 is the paper's Equation 1: the risk of privacy breach for DP_i
// under a unified perturbation seen with source identifiability π:
//
//	R^G_i = π · (b_i − s_i·ρ_i)/b_i = π · (1 − s_i·ρ_i/b_i)
//
// where ρ_i is the locally optimized guarantee, b_i its upper bound, and
// s_i = ρ^G_i/ρ_i the satisfaction level of the unified perturbation.
func RiskEq1(pi, satisfaction, rho, bound float64) (float64, error) {
	if err := checkRiskInputs(satisfaction, rho, bound); err != nil {
		return 0, err
	}
	if pi < 0 || pi > 1 {
		return 0, fmt.Errorf("%w: identifiability π=%v out of [0,1]", ErrBadConfig, pi)
	}
	return pi * (1 - satisfaction*rho/bound), nil
}

// RiskSAP is the paper's Equation 2: the overall risk of privacy breach for
// DP_i under SAP with k parties, from the view of both the receiving data
// provider (which knows the source but sees only the locally optimized
// perturbation: (b−ρ)/b) and the miner (which sees the unified perturbation
// with identifiability 1/(k−1)):
//
//	R^SAP_i = max{ (b_i−ρ_i)/b_i, (b_i − s_i·ρ_i)/b_i · 1/(k−1) }
func RiskSAP(k int, satisfaction, rho, bound float64) (float64, error) {
	if k < 2 {
		return 0, fmt.Errorf("%w: k=%d", ErrTooFewParty, k)
	}
	if err := checkRiskInputs(satisfaction, rho, bound); err != nil {
		return 0, err
	}
	providerView := (bound - rho) / bound
	minerView := (1 - satisfaction*rho/bound) / float64(k-1)
	return math.Max(providerView, minerView), nil
}

// Identifiability is the miner-side source identifiability under SAP's
// random exchange: π_i = 1/(k−1).
func Identifiability(k int) (float64, error) {
	if k < 2 {
		return 0, fmt.Errorf("%w: k=%d", ErrTooFewParty, k)
	}
	return 1 / float64(k-1), nil
}

// MinPartiesRiskThreshold is the Figure-4 bound as derived in
// ARCHITECTURE.md ("Risk accounting"):
// the minimum k such that the miner-side risk term stays below the risk
// budget 1−s0 of a party that demands protection level s0 and has
// optimality rate o = ρ/b:
//
//	(1 − s0·o)/(k−1) ≤ 1 − s0  ⇒  k ≥ 1 + (1 − s0·o)/(1 − s0)
//
// The bound grows like 1/(1−s0) and is larger for smaller optimality rates,
// matching the published curve shapes.
func MinPartiesRiskThreshold(s0, optimality float64) (int, error) {
	if err := checkRate("s0", s0); err != nil {
		return 0, err
	}
	if err := checkRate("optimality rate", optimality); err != nil {
		return 0, err
	}
	if s0 >= 1 {
		return 0, fmt.Errorf("%w: s0=1 needs unbounded parties", ErrBadConfig)
	}
	k := 1 + (1-s0*optimality)/(1-s0)
	return int(math.Ceil(k - 1e-12)), nil
}

// MinPartiesNoWorseThanSolo is the alternative bound: the minimum k such
// that joining SAP carries no more risk than submitting the locally
// optimized data alone (R^SAP ≤ 1−o):
//
//	(1 − s0·o)/(k−1) ≤ 1 − o  ⇒  k ≥ 1 + (1 − s0·o)/(1 − o)
//
// Decreasing in s0; EXPERIMENTS.md contrasts it with the risk-threshold
// bound above.
func MinPartiesNoWorseThanSolo(s0, optimality float64) (int, error) {
	if err := checkRate("s0", s0); err != nil {
		return 0, err
	}
	if err := checkRate("optimality rate", optimality); err != nil {
		return 0, err
	}
	if optimality >= 1 {
		// A perfectly optimal local perturbation has zero solo risk; any k
		// satisfies the bound only in the limit.
		return 0, fmt.Errorf("%w: optimality rate 1 makes the solo risk zero", ErrBadConfig)
	}
	k := 1 + (1-s0*optimality)/(1-optimality)
	return int(math.Ceil(k - 1e-12)), nil
}

func checkRiskInputs(satisfaction, rho, bound float64) error {
	if bound <= 0 {
		return fmt.Errorf("%w: bound b=%v", ErrBadConfig, bound)
	}
	if rho < 0 || rho > bound {
		return fmt.Errorf("%w: ρ=%v outside [0, b=%v]", ErrBadConfig, rho, bound)
	}
	if satisfaction < 0 {
		return fmt.Errorf("%w: satisfaction s=%v", ErrBadConfig, satisfaction)
	}
	return nil
}

func checkRate(name string, v float64) error {
	if v < 0 || v > 1 {
		return fmt.Errorf("%w: %s=%v out of [0,1]", ErrBadConfig, name, v)
	}
	return nil
}
