// Package protocol implements the Space Adaptation Protocol (SAP) of the
// paper's §3: k data providers (one doubling as coordinator) and a mining
// service provider securely unify their locally optimized geometric
// perturbations.
//
// Protocol flow:
//
//  1. The coordinator draws the target perturbation G_t (no noise
//     component), a random permutation τ of the k providers, and a slot ID
//     per provider; it redirects its own receiving slot to a random
//     non-coordinator provider so the coordinator never holds a dataset.
//  2. Each provider receives G_t plus its exchange assignment, perturbs its
//     local data with its own optimized G_i (common noise level σ), and
//     sends the result to its assigned receiver.
//  3. Receivers forward every dataset they receive to the miner, reducing
//     source identifiability at the miner to π_i = 1/(k−1).
//  4. Each provider sends its space adaptor A_it = <R_t·R_i⁻¹,
//     Ψ_t − R_t·R_i⁻¹·Ψ_i> to the coordinator, which maps adaptors to slots
//     through τ and hands the mapping to the miner.
//  5. The miner adapts every submission into the target space and merges
//     them into the unified training set.
//
// All parties are semi-honest; transport frames are sealed by the transport
// layer.
package protocol

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/matrix"
	"repro/internal/perturb"
)

// Errors returned by the protocol engine.
var (
	ErrBadMessage   = errors.New("protocol: malformed message")
	ErrViolation    = errors.New("protocol: peer violated the protocol")
	ErrBadConfig    = errors.New("protocol: bad configuration")
	ErrTooFewParty  = errors.New("protocol: need at least 3 providers for anonymity")
	ErrDimMismatch  = errors.New("protocol: dimension mismatch across parties")
	ErrMissingPiece = errors.New("protocol: run ended before all pieces arrived")
)

// MsgKind tags wire messages.
type MsgKind uint8

// Message kinds, in rough protocol order.
const (
	MsgTarget MsgKind = iota + 1
	MsgAssignment
	MsgDataset
	MsgSubmission
	MsgAdaptor
	MsgAdaptorMap
)

// String implements fmt.Stringer for diagnostics.
func (k MsgKind) String() string {
	switch k {
	case MsgTarget:
		return "target"
	case MsgAssignment:
		return "assignment"
	case MsgDataset:
		return "dataset"
	case MsgSubmission:
		return "submission"
	case MsgAdaptor:
		return "adaptor"
	case MsgAdaptorMap:
		return "adaptor-map"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// wire is the gob-encoded frame payload. Matrices, perturbations and
// adaptors travel as their validated binary encodings.
type wire struct {
	Kind MsgKind

	// MsgTarget
	Target []byte // perturb.Perturbation encoding

	// MsgAssignment
	SlotID      uint64 // slot for the provider's own dataset
	SendTo      string // receiver of the provider's dataset
	ExpectCount int    // datasets the provider must forward to the miner

	// MsgDataset / MsgSubmission
	DataSlot uint64
	Features []byte // matrix.Dense encoding, d×N
	Labels   []int

	// MsgAdaptor
	Adaptor []byte // perturb.Adaptor encoding

	// MsgAdaptorMap
	Slots []SlotAdaptor
}

// SlotAdaptor pairs a dataset slot with the space adaptor that moves it into
// the target space.
type SlotAdaptor struct {
	SlotID  uint64
	Adaptor []byte
}

func encodeWire(w *wire) ([]byte, error) {
	// Shares the service encoder's buffer pool (encBufPool): encode into a
	// recycled buffer, hand back an exact-size copy. SAP frames carry whole
	// perturbed datasets, so recycling the grown buffers saves the encoder's
	// doubling reallocations on every hop of the exchange.
	buf := encBufPool.Get().(*bytes.Buffer)
	defer encBufPool.Put(buf)
	buf.Reset()
	if err := gob.NewEncoder(buf).Encode(w); err != nil {
		return nil, fmt.Errorf("protocol: encode %v: %w", w.Kind, err)
	}
	return append([]byte(nil), buf.Bytes()...), nil
}

func decodeWire(payload []byte) (*wire, error) {
	var w wire
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&w); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	return &w, nil
}

// encodeDatasetPayload packs a labeled dataset for the wire.
func encodeDatasetPayload(d *dataset.Dataset) (features []byte, labels []int, err error) {
	m := d.FeaturesT()
	features, err = m.MarshalBinary()
	if err != nil {
		return nil, nil, err
	}
	return features, append([]int(nil), d.Y...), nil
}

// decodeDatasetPayload unpacks and validates a labeled dataset.
func decodeDatasetPayload(features []byte, labels []int, name string) (*dataset.Dataset, error) {
	var m matrix.Dense
	if err := m.UnmarshalBinary(features); err != nil {
		return nil, fmt.Errorf("%w: features: %v", ErrBadMessage, err)
	}
	if m.Cols() != len(labels) {
		return nil, fmt.Errorf("%w: %d records vs %d labels", ErrBadMessage, m.Cols(), len(labels))
	}
	for _, y := range labels {
		if y < 0 {
			return nil, fmt.Errorf("%w: negative label", ErrBadMessage)
		}
	}
	// Bulk column extraction: one flat allocation and a single sequential
	// pass over the matrix, instead of a per-record Col copy with a strided
	// read each (O(rows×cols) cache-hostile traffic on every dataset hop).
	return dataset.New(name, m.Columns(), labels)
}

// decodeAdaptor unpacks and re-validates an adaptor from untrusted bytes.
func decodeAdaptor(raw []byte) (*perturb.Adaptor, error) {
	var a perturb.Adaptor
	if err := a.UnmarshalBinary(raw); err != nil {
		return nil, fmt.Errorf("%w: adaptor: %v", ErrBadMessage, err)
	}
	return &a, nil
}

// decodePerturbation unpacks and re-validates a perturbation.
func decodePerturbation(raw []byte) (*perturb.Perturbation, error) {
	var p perturb.Perturbation
	if err := p.UnmarshalBinary(raw); err != nil {
		return nil, fmt.Errorf("%w: perturbation: %v", ErrBadMessage, err)
	}
	return &p, nil
}
