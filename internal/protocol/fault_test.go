package protocol

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/perturb"
	"repro/internal/transport"
)

// runFaultySession wires a 3-provider session where the first provider's
// outgoing messages pass through a FaultConn, and returns the miner error.
func runFaultySession(t *testing.T, dropEvery int) error {
	t.Helper()
	rng := rand.New(rand.NewSource(51))
	d, err := dataset.GenerateByName("Iris", rng)
	if err != nil {
		t.Fatal(err)
	}
	norm, _, err := dataset.Normalize(d)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := dataset.Partition(norm, rng, 3, dataset.PartitionUniform)
	if err != nil {
		t.Fatal(err)
	}

	net := transport.NewMemNetwork()
	mk := func(name string) transport.Conn {
		conn, err := net.Endpoint(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { conn.Close() })
		return conn
	}
	flakyInner := mk("p1")
	flaky := transport.NewFaultConn(flakyInner, dropEvery)
	p2Conn := mk("p2")
	coordConn := mk("coord")
	minerConn := mk("miner")

	perts := make([]*perturb.Perturbation, 3)
	for i := range perts {
		p, err := perturb.NewRandom(rng, norm.Dim(), 0.05)
		if err != nil {
			t.Fatal(err)
		}
		perts[i] = p
	}
	// Each role runs on its own goroutine and therefore needs its own rng.
	prov1, err := NewProvider(flaky, ProviderConfig{
		Coordinator: "coord", Miner: "miner", Data: parts[0], Perturbation: perts[0],
		Rng: rand.New(rand.NewSource(61)),
	})
	if err != nil {
		t.Fatal(err)
	}
	prov2, err := NewProvider(p2Conn, ProviderConfig{
		Coordinator: "coord", Miner: "miner", Data: parts[1], Perturbation: perts[1],
		Rng: rand.New(rand.NewSource(62)),
	})
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(coordConn, CoordinatorConfig{
		Providers: []string{"p1", "p2"}, Miner: "miner",
		Data: parts[2], Perturbation: perts[2],
		Rng: rand.New(rand.NewSource(63)),
	})
	if err != nil {
		t.Fatal(err)
	}
	miner, err := NewMiner(minerConn, MinerConfig{Coordinator: "coord", Parties: 3})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 400*time.Millisecond)
	defer cancel()
	go func() { _ = prov1.Run(ctx) }()
	go func() { _ = prov2.Run(ctx) }()
	go func() { _ = coord.Run(ctx) }()
	_, err = miner.Run(ctx)
	return err
}

func TestSessionSurvivesNoFaults(t *testing.T) {
	if err := runFaultySession(t, 0); err != nil {
		t.Fatalf("fault-free session failed: %v", err)
	}
}

func TestSessionTimesOutCleanlyOnMessageLoss(t *testing.T) {
	// Dropping the provider's first send (its dataset or adaptor) must
	// starve the pipeline and surface as a clean ErrMissingPiece — never a
	// hang (the ctx deadline bounds the test) or a partial unification.
	err := runFaultySession(t, 1) // drop every send from p1
	if err == nil {
		t.Fatal("lossy session produced a unified dataset")
	}
	if !errors.Is(err, ErrMissingPiece) {
		t.Fatalf("err = %v, want ErrMissingPiece", err)
	}
}

func TestFaultConnCountsDrops(t *testing.T) {
	net := transport.NewMemNetwork()
	a, err := net.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := net.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	flaky := transport.NewFaultConn(a, 2)
	ctx := context.Background()
	for i := 0; i < 6; i++ {
		if err := flaky.Send(ctx, "b", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := flaky.Dropped(); got != 3 {
		t.Fatalf("dropped %d, want 3", got)
	}
	// The 3 surviving messages are deliverable.
	recvCtx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	for i := 0; i < 3; i++ {
		if _, err := b.Recv(recvCtx); err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
	}
	if flaky.Name() != "a" {
		t.Fatal("Name not delegated")
	}
}
