package protocol

// Tests for the explicit-backpressure contract of the sharded service: a
// group whose bounded queue is full is answered with a typed busy rejection
// within one round trip — the shared receive loop never blocks — while
// every other lane (the group's own prediction pool, other groups' queues)
// keeps flowing, and the retrying client picks the work back up once the
// lane drains. Also pins the response-routing echo: every response path
// carries the request's Kind and Group so ingest-side clients can attribute
// typed errors.

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/transport"
)

// startWedgeableService builds a two-group service whose "alpha" ingest
// goroutine parks on the returned hold channel before every dequeue, serves
// it, and returns the service plus a stop func. Closing hold releases the
// lane.
func startWedgeableService(t *testing.T, conn transport.Conn, reg *metrics.Registry) (*MiningService, chan struct{}, func()) {
	t.Helper()
	groups := []GroupSpec{
		{ID: "alpha", Unified: labelledLineAt(t, 4, 0), Model: classify.NewKNN(1), RefitEvery: -1},
		{ID: "beta", Unified: labelledLineAt(t, 4, 100), Model: classify.NewKNN(1), RefitEvery: -1},
	}
	svc, err := NewGroupedMiningService(conn, groups, ServiceConfig{Workers: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	hold := make(chan struct{})
	svc.shards["alpha"].ingestHold = hold
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := svc.Serve(ctx); err != nil {
			t.Error(err)
		}
	}()
	return svc, hold, func() {
		cancel()
		<-done
	}
}

// sendRawIngest fires one well-formed ingest frame for the group without
// waiting for its response.
func sendRawIngest(t *testing.T, ctx context.Context, conn transport.Conn, group string, id uint64) {
	t.Helper()
	payload, err := encodeServiceWire(&serviceWire{
		ID: id, Kind: kindIngest, Group: group,
		Batch: [][]float64{{0.5}}, Labels: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(ctx, "svc", payload); err != nil {
		t.Fatal(err)
	}
}

// TestIngestQueueFullAnswersBusy wedges one group's ingest lane, saturates
// its bounded queue, and checks the backpressure contract end to end: the
// next push is answered ErrBusy within one round trip instead of stalling
// the receive loop, the wedged group still answers queries, the co-hosted
// group is untouched, and — once the lane drains — a default-backoff client
// retries its push to success.
func TestIngestQueueFullAnswersBusy(t *testing.T) {
	net := transport.NewMemNetwork()
	svcConn, _ := net.Endpoint("svc")
	defer svcConn.Close()
	rawConn, _ := net.Endpoint("filler")
	defer rawConn.Close()
	probeConn, _ := net.Endpoint("prober")
	defer probeConn.Close()
	betaConn, _ := net.Endpoint("beta-client")
	defer betaConn.Close()

	reg := metrics.NewRegistry()
	svc, hold, stop := startWedgeableService(t, svcConn, reg)
	released := false
	defer func() {
		if !released {
			close(hold)
		}
		stop()
	}()
	ctx := testCtx(t)

	// Saturate the wedged lane: the parked ingest goroutine holds at most
	// one chunk in hand, so queue capacity + 1 raw fills guarantee that
	// every following accepted chunk brings the queue closer to full.
	fills := cap(svc.shards["alpha"].ingestQ) + 1
	for i := 0; i < fills; i++ {
		sendRawIngest(t, ctx, rawConn, "alpha", uint64(i+1))
	}

	// A no-retry probe surfaces the first busy rejection raw. Accepted
	// probes (sent while the queue still had room) are fine — the lane is
	// parked, so room only shrinks until a rejection must come.
	probe, err := NewGroupServiceClient(probeConn, "svc", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	defer probe.Close()
	probe.SetBackoff(Backoff{Tries: 1})
	probedIn := 0
	deadline := time.Now().Add(10 * time.Second)
	for {
		start := time.Now()
		_, err := probe.PushChunk(ctx, [][]float64{{0.7}}, []int{2})
		if errors.Is(err, ErrBusy) {
			if elapsed := time.Since(start); elapsed > 3*time.Second {
				t.Fatalf("busy rejection took %v, want within one round trip", elapsed)
			}
			break
		}
		if err != nil {
			t.Fatalf("probe push err = %v, want nil or ErrBusy", err)
		}
		probedIn++
		if time.Now().After(deadline) {
			t.Fatal("full ingest queue never answered ErrBusy")
		}
	}
	if got := reg.Snapshot().Counters["service.alpha.rejects.busy"]; got < 1 {
		t.Fatalf("service.alpha.rejects.busy = %d, want >= 1", got)
	}

	// The wedged group's PREDICTION lane is independent: queries answer.
	if label, err := probe.Classify(ctx, []float64{0.0}); err != nil || label != 0 {
		t.Fatalf("alpha query while ingest wedged = %d, %v; want 0, nil", label, err)
	}

	// The co-hosted group is untouched: queries and ingest both flow.
	beta, err := NewGroupServiceClient(betaConn, "svc", "beta")
	if err != nil {
		t.Fatal(err)
	}
	defer beta.Close()
	if label, err := beta.Classify(ctx, []float64{0.0}); err != nil || label != 100 {
		t.Fatalf("beta query while alpha wedged = %d, %v; want 100, nil", label, err)
	}
	if accepted, err := beta.PushChunk(ctx, [][]float64{{0.6}}, []int{3}); err != nil || accepted != 5 {
		t.Fatalf("beta ingest while alpha wedged = %d, %v; want 5, nil", accepted, err)
	}

	// Release the lane: with the default capped-exponential backoff
	// restored, the same client absorbs any residual busy answers and
	// lands its chunk.
	close(hold)
	released = true
	probe.SetBackoff(Backoff{})
	if _, err := probe.PushChunk(ctx, [][]float64{{0.8}}, []int{2}); err != nil {
		t.Fatalf("push after release: %v", err)
	}

	// Every fill eventually gets exactly one answer on the raw conn —
	// accepted, or busy for the one fill that can race the lane's first
	// dequeue. The landed counts must reconcile exactly.
	landedFills := 0
	for i := 0; i < fills; i++ {
		env, err := rawConn.Recv(ctx)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := decodeServiceWire(env.Payload)
		if err != nil || resp == nil || !resp.Response {
			t.Fatalf("fill response %d: %+v, %v", i, resp, err)
		}
		switch resp.Code {
		case codeOK:
			landedFills++
		case codeBusy:
		default:
			t.Fatalf("fill response %d code = %d, want codeOK or codeBusy", i, resp.Code)
		}
	}
	waitForIngested(t, svc, "alpha", landedFills+probedIn+1)
}

// waitForIngested polls one group's lifetime ingest count until it reaches
// want.
func waitForIngested(t *testing.T, svc *MiningService, group string, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, err := svc.GroupIngested(group)
		if err != nil {
			t.Fatal(err)
		}
		if got == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s ingested = %d, want %d", group, got, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// gatedPredict wraps a classifier whose every Predict parks until the gate
// closes, so a test can wedge a prediction pool.
type gatedPredict struct {
	inner classify.Classifier
	gate  chan struct{}
}

func (m *gatedPredict) Fit(d *dataset.Dataset) error { return m.inner.Fit(d) }

func (m *gatedPredict) Predict(x []float64) (int, error) {
	<-m.gate
	return m.inner.Predict(x)
}

// TestClassifyQueueFullAnswersBusy parks a one-worker prediction pool, fills
// its bounded job queue past capacity, and checks the overflow frames are
// answered with an immediate typed busy rejection — while parked queries
// produce no answer at all — and that the group's ingest lane keeps
// accepting chunks throughout.
func TestClassifyQueueFullAnswersBusy(t *testing.T) {
	net := transport.NewMemNetwork()
	svcConn, _ := net.Endpoint("svc")
	defer svcConn.Close()
	rawConn, _ := net.Endpoint("raw")
	defer rawConn.Close()
	pushConn, _ := net.Endpoint("pusher")
	defer pushConn.Close()

	gate := make(chan struct{})
	gated := &gatedPredict{inner: classify.NewKNN(1), gate: gate}
	svc, err := NewGroupedMiningService(svcConn,
		[]GroupSpec{{ID: "alpha", Unified: labelledLineAt(t, 4, 0), Model: gated, RefitEvery: -1, Workers: 1}},
		ServiceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := svc.Serve(ctx); err != nil {
			t.Error(err)
		}
	}()
	releasedGate := false
	defer func() {
		if !releasedGate {
			close(gate)
		}
		cancel()
		<-done
	}()
	tctx := testCtx(t)

	// One parked worker plus the queue capacity bounds what the pool can
	// absorb; a few extra frames guarantee busy rejections no matter how
	// the worker's dequeue interleaves with the fills.
	fills := cap(svc.shards["alpha"].jobs) + 3
	for i := 0; i < fills; i++ {
		payload, err := encodeServiceWire(&serviceWire{
			ID: uint64(i + 1), Group: "alpha", Batch: [][]float64{{0.1}}})
		if err != nil {
			t.Fatal(err)
		}
		if err := rawConn.Send(tctx, "svc", payload); err != nil {
			t.Fatal(err)
		}
	}
	// Parked queries never answer, so the first response to arrive must be
	// a busy rejection — and it arrives while the pool is still parked,
	// which is the "within one round trip" contract.
	env, err := rawConn.Recv(tctx)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := decodeServiceWire(env.Payload)
	if err != nil || resp == nil || !resp.Response {
		t.Fatalf("decode response: %+v, %v", resp, err)
	}
	if resp.Code != codeBusy || resp.Kind != kindClassify || resp.Group != "alpha" {
		t.Fatalf("overflow resp = {Kind:%d Group:%q Code:%d}, want a busy rejection echoing the route",
			resp.Kind, resp.Group, resp.Code)
	}

	// Ingest is a separate lane: chunks land while predictions are parked.
	pusher, err := NewGroupServiceClient(pushConn, "svc", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	defer pusher.Close()
	if accepted, err := pusher.PushChunk(tctx, [][]float64{{0.5}}, []int{1}); err != nil || accepted != 5 {
		t.Fatalf("ingest while prediction pool parked = %d, %v; want 5, nil", accepted, err)
	}

	// Releasing the pool drains the backlog: the parked frames answer.
	close(gate)
	releasedGate = true
	for answered := 1; answered < fills; {
		env, err := rawConn.Recv(tctx)
		if err != nil {
			t.Fatal(err)
		}
		if resp, _ := decodeServiceWire(env.Payload); resp != nil && resp.Response {
			answered++
		}
	}
}

// TestResponsesEchoKindAndGroup pins the response-routing contract: classify
// and ingest answers, and wire-version rejections, all carry the request's
// Kind and Group so clients can attribute typed errors to the right lane.
func TestResponsesEchoKindAndGroup(t *testing.T) {
	net := transport.NewMemNetwork()
	svcConn, _ := net.Endpoint("svc")
	defer svcConn.Close()
	rawConn, _ := net.Endpoint("raw")
	defer rawConn.Close()

	_, stop := startGroupedService(t, svcConn,
		[]GroupSpec{{ID: "alpha", Unified: labelledLineAt(t, 4, 0), Model: classify.NewKNN(1)}},
		ServiceConfig{})
	defer stop()
	ctx := testCtx(t)

	roundTrip := func(patchVersion byte, w *serviceWire) *serviceWire {
		t.Helper()
		payload, err := encodeServiceWire(w)
		if err != nil {
			t.Fatal(err)
		}
		if patchVersion != 0 {
			payload[1] = patchVersion
		}
		if err := rawConn.Send(ctx, "svc", payload); err != nil {
			t.Fatal(err)
		}
		env, err := rawConn.Recv(ctx)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := decodeServiceWire(env.Payload)
		if err != nil || resp == nil || !resp.Response {
			t.Fatalf("decode response: %+v, %v", resp, err)
		}
		return resp
	}

	// Classify answer.
	resp := roundTrip(0, &serviceWire{ID: 1, Group: "alpha", Batch: [][]float64{{0.1}}})
	if resp.ID != 1 || resp.Kind != kindClassify || resp.Group != "alpha" {
		t.Fatalf("classify resp routing = {ID:%d Kind:%d Group:%q}, want {1 %d alpha}",
			resp.ID, resp.Kind, resp.Group, kindClassify)
	}
	// Ingest answer.
	resp = roundTrip(0, &serviceWire{ID: 2, Kind: kindIngest, Group: "alpha",
		Batch: [][]float64{{0.2}}, Labels: []int{1}})
	if resp.ID != 2 || resp.Kind != kindIngest || resp.Group != "alpha" {
		t.Fatalf("ingest resp routing = {ID:%d Kind:%d Group:%q}, want {2 %d alpha}",
			resp.ID, resp.Kind, resp.Group, kindIngest)
	}
	// Wire-version rejection of a decodable future frame.
	resp = roundTrip(99, &serviceWire{ID: 3, Kind: kindIngest, Group: "alpha",
		Batch: [][]float64{{0.3}}, Labels: []int{1}})
	if resp.Code != codeWireVersion || resp.ID != 3 || resp.Kind != kindIngest || resp.Group != "alpha" {
		t.Fatalf("wire-version reject routing = {ID:%d Kind:%d Group:%q Code:%d}, want {3 %d alpha %d}",
			resp.ID, resp.Kind, resp.Group, resp.Code, kindIngest, codeWireVersion)
	}
	// Unknown-group rejection (echo predates this PR; pinned here with the
	// rest of the contract).
	resp = roundTrip(0, &serviceWire{ID: 4, Kind: kindIngest, Group: "nope",
		Batch: [][]float64{{0.4}}, Labels: []int{1}})
	if resp.Code != codeUnknownGroup || resp.Kind != kindIngest || resp.Group != "nope" {
		t.Fatalf("unknown-group reject routing = {Kind:%d Group:%q Code:%d}, want {%d nope %d}",
			resp.Kind, resp.Group, resp.Code, kindIngest, codeUnknownGroup)
	}
}
