package protocol

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"

	"repro/internal/classify"
	"repro/internal/transport"
)

// ErrServiceClosed is returned by a classification client when the service
// answered with an error or the link failed.
var ErrServiceClosed = errors.New("protocol: mining service unavailable")

// serviceWire is the request/response frame of the post-unification mining
// service. It is separate from the SAP wire type because the service runs
// after the protocol completes, potentially for the contract's lifetime.
type serviceWire struct {
	// ID correlates responses with requests.
	ID uint64
	// Features is a single query record, already transformed into the
	// target space by the caller (providers know G_t; the miner never
	// sees clear data).
	Features []float64
	// Label is the predicted class (response only).
	Label int
	// Err is a human-readable failure reason (response only).
	Err string
	// Response discriminates request from response frames.
	Response bool
}

func encodeServiceWire(w *serviceWire) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, fmt.Errorf("protocol: encode service frame: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeServiceWire(payload []byte) (*serviceWire, error) {
	var w serviceWire
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&w); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	return &w, nil
}

// MiningService is the miner-side classification endpoint: a model trained
// on the unified perturbed dataset, answering queries that arrive in the
// target space. This realizes the paper's service-oriented framing — the
// service provider "offers their data mining services to the contracted
// parties".
type MiningService struct {
	conn  transport.Conn
	model classify.Classifier
	dim   int
}

// NewMiningService trains the given classifier on the miner's unified
// dataset and binds the service to a transport endpoint.
func NewMiningService(conn transport.Conn, result *MinerResult, model classify.Classifier) (*MiningService, error) {
	if result == nil || result.Unified == nil || result.Unified.Len() == 0 {
		return nil, fmt.Errorf("%w: no unified dataset", ErrBadConfig)
	}
	if model == nil {
		return nil, fmt.Errorf("%w: nil classifier", ErrBadConfig)
	}
	if err := model.Fit(result.Unified); err != nil {
		return nil, fmt.Errorf("protocol: train service model: %w", err)
	}
	return &MiningService{conn: conn, model: model, dim: result.Unified.Dim()}, nil
}

// Serve answers classification requests until ctx is cancelled or the
// transport closes. Malformed frames are answered with an error response
// rather than terminating the service.
func (s *MiningService) Serve(ctx context.Context) error {
	for {
		env, err := s.conn.Recv(ctx)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return nil
			}
			if errors.Is(err, transport.ErrClosed) {
				return nil
			}
			return err
		}
		req, err := decodeServiceWire(env.Payload)
		if err != nil || req.Response {
			continue // not a service request; drop
		}
		resp := &serviceWire{ID: req.ID, Response: true}
		if len(req.Features) != s.dim {
			resp.Err = fmt.Sprintf("query has %d features, want %d", len(req.Features), s.dim)
		} else if label, err := s.model.Predict(req.Features); err != nil {
			resp.Err = err.Error()
		} else {
			resp.Label = label
		}
		payload, err := encodeServiceWire(resp)
		if err != nil {
			return err
		}
		if err := s.conn.Send(ctx, env.From, payload); err != nil {
			// The requester may have gone away; keep serving others.
			continue
		}
	}
}

// ServiceClient is the provider-side handle for querying the mining
// service. Queries must already be in the target space (providers hold
// G_t from the SAP run and apply it noiselessly to each record).
type ServiceClient struct {
	conn   transport.Conn
	miner  string
	nextID uint64
}

// NewServiceClient binds a client to a transport endpoint.
func NewServiceClient(conn transport.Conn, miner string) (*ServiceClient, error) {
	if miner == "" {
		return nil, fmt.Errorf("%w: missing miner endpoint", ErrBadConfig)
	}
	return &ServiceClient{conn: conn, miner: miner}, nil
}

// Classify sends one target-space record and blocks for its label.
func (c *ServiceClient) Classify(ctx context.Context, features []float64) (int, error) {
	c.nextID++
	id := c.nextID
	payload, err := encodeServiceWire(&serviceWire{ID: id, Features: features})
	if err != nil {
		return 0, err
	}
	if err := c.conn.Send(ctx, c.miner, payload); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrServiceClosed, err)
	}
	for {
		env, err := c.conn.Recv(ctx)
		if err != nil {
			return 0, fmt.Errorf("%w: %v", ErrServiceClosed, err)
		}
		resp, err := decodeServiceWire(env.Payload)
		if err != nil {
			continue // unrelated traffic
		}
		if !resp.Response || resp.ID != id {
			continue // stale or foreign frame
		}
		if resp.Err != "" {
			return 0, fmt.Errorf("%w: %s", ErrServiceClosed, resp.Err)
		}
		return resp.Label, nil
	}
}
