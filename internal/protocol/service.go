package protocol

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/classify"
	"repro/internal/dataset"
	"repro/internal/transport"
)

// Typed errors of the serving subsystem. ErrServiceClosed means the link or
// the service is gone; the others describe a rejected request and leave the
// client usable.
var (
	// ErrServiceClosed is returned when the service answered with an
	// internal error or the link failed.
	ErrServiceClosed = errors.New("protocol: mining service unavailable")
	// ErrBadQuery flags an empty batch or a record whose dimension does not
	// match the service model.
	ErrBadQuery = errors.New("protocol: malformed classification query")
	// ErrBatchTooLarge flags a batch exceeding the service's MaxBatch.
	ErrBatchTooLarge = errors.New("protocol: classification batch too large")
	// ErrWireVersion flags a frame whose service wire version the peer does
	// not speak.
	ErrWireVersion = errors.New("protocol: unsupported service wire version")
	// ErrBadChunk flags a malformed stream-ingest chunk (empty, mis-shaped,
	// or carrying labels that do not line up with its records).
	ErrBadChunk = errors.New("protocol: malformed stream chunk")
	// ErrRefit means a streamed chunk WAS folded into the training set but
	// retraining the model on the grown set failed; the service keeps
	// serving on its previous fit. Re-pushing the chunk would duplicate its
	// records.
	ErrRefit = errors.New("protocol: service model refit failed")
)

// serviceMagic prefixes every service frame so serving traffic is
// distinguishable from SAP protocol frames at the payload level: a query
// that races the tail of a SAP run can be stashed instead of tripping the
// miner's violation checks.
const serviceMagic = 0x53 // 'S'

// ServiceWireVersion is the current service frame version. Version 1 was the
// unversioned single-record frame of the pre-batching service; version 2
// carried batches and typed error codes; version 3 adds the Kind
// discriminator so stream-ingest chunks (a provider pushing perturbed
// training records into the serving miner) share the frame format with
// classification queries.
const ServiceWireVersion = 3

// Wire error codes carried in service responses, mapped back to the typed
// errors above by the client.
const (
	codeOK uint8 = iota
	codeBadQuery
	codeBatchTooLarge
	codeWireVersion
	codeInternal
	codeBadChunk
	codeRefit
)

// Frame kinds carried in serviceWire.Kind. The zero value is a
// classification query, so a frame that omits Kind is a classify frame.
// (decodeServiceWire still requires the exact current version — v2 peers
// get a typed codeWireVersion rejection, not best-effort service.)
const (
	kindClassify uint8 = iota
	kindIngest
)

// serviceWire is the request/response frame of the post-unification mining
// service. One request carries a whole batch and is answered by exactly one
// response frame, so a ClassifyBatch costs a single round trip.
type serviceWire struct {
	// ID correlates responses with requests; the client's demultiplexer
	// routes on it.
	ID uint64
	// Kind discriminates classification queries (kindClassify) from
	// stream-ingest chunks (kindIngest).
	Kind uint8
	// Batch carries the records, already transformed into the target space
	// by the caller (providers know G_t; the miner never sees clear data).
	// For classify frames it is the query; for ingest frames it is a chunk
	// of perturbed training records.
	Batch [][]float64
	// Labels carries class labels: in a classify response, one prediction
	// per batch record; in an ingest request, the true label of each pushed
	// training record.
	Labels []int
	// Accepted is the ingest response: the service's total training-set
	// size after folding the chunk in.
	Accepted int
	// Code is a machine-readable failure class (response only, codeOK on
	// success).
	Code uint8
	// Err is the human-readable failure detail (response only).
	Err string
	// Response discriminates request from response frames.
	Response bool
}

// IsServiceFrame reports whether a raw transport payload is a service frame
// (of any version). Protocol drivers use it to divert early queries that
// arrive while the SAP run is still completing.
func IsServiceFrame(payload []byte) bool {
	return len(payload) >= 2 && payload[0] == serviceMagic
}

func encodeServiceWire(w *serviceWire) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte(serviceMagic)
	buf.WriteByte(ServiceWireVersion)
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, fmt.Errorf("protocol: encode service frame: %w", err)
	}
	return buf.Bytes(), nil
}

// decodeServiceWire unpacks a service frame. A nil frame with a nil error
// means "not a service frame, ignore". A version mismatch returns the frame
// ID when recoverable so the peer can be answered with a typed error.
func decodeServiceWire(payload []byte) (*serviceWire, error) {
	if !IsServiceFrame(payload) {
		return nil, nil
	}
	version := payload[1]
	var w serviceWire
	if err := gob.NewDecoder(bytes.NewReader(payload[2:])).Decode(&w); err != nil {
		if version != ServiceWireVersion {
			return nil, fmt.Errorf("%w: got v%d, speak v%d", ErrWireVersion, version, ServiceWireVersion)
		}
		return nil, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	if version != ServiceWireVersion {
		// The frame decoded (gob skips unknown fields) but the peer speaks
		// another version; answer it with a typed rejection.
		return &w, fmt.Errorf("%w: got v%d, speak v%d", ErrWireVersion, version, ServiceWireVersion)
	}
	return &w, nil
}

// ServiceConfig tunes the miner-side serving loop.
type ServiceConfig struct {
	// Workers is the number of goroutines predicting concurrently
	// (default: GOMAXPROCS).
	Workers int
	// MaxBatch caps the records accepted in one request (default 4096).
	// Oversized batches are rejected with ErrBatchTooLarge, not served.
	MaxBatch int
	// RefitEvery is the number of stream-ingested records accumulated
	// before the service retrains its model on the grown training set
	// (default DefaultRefitEvery; negative disables automatic refits, in
	// which case ingested records sit in the training set until the next
	// triggered refit — useful when a deployment refits on its own
	// schedule).
	RefitEvery int
}

// DefaultMaxBatch is the batch-size cap applied when ServiceConfig.MaxBatch
// is zero.
const DefaultMaxBatch = 4096

// DefaultRefitEvery is the ingest refit cadence applied when
// ServiceConfig.RefitEvery is zero.
const DefaultRefitEvery = 256

// serviceSendTimeout bounds one response write so a peer that stops reading
// cannot stall the serving loop's sender indefinitely.
const serviceSendTimeout = 30 * time.Second

func (c ServiceConfig) withDefaults() ServiceConfig {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.RefitEvery == 0 {
		c.RefitEvery = DefaultRefitEvery
	}
	return c
}

// MiningService is the miner-side classification endpoint: a model trained
// on the unified perturbed dataset, answering batched queries that arrive in
// the target space. This realizes the paper's service-oriented framing — the
// service provider "offers their data mining services to the contracted
// parties" for the contract's lifetime.
//
// The training set is not frozen at construction: providers may keep pushing
// streamed chunks of perturbed, target-space records (ServiceClient.PushChunk
// feeding an internal/stream pipeline), which the service folds into its
// training set and periodically refits on (ServiceConfig.RefitEvery).
type MiningService struct {
	conn transport.Conn
	dim  int
	cfg  ServiceConfig

	// modelMu guards the served model: workers predict under the read lock
	// while ingest-triggered refits swap the model under the write lock.
	modelMu sync.RWMutex
	model   classify.Classifier

	// The growing training set and the count of records ingested since the
	// last refit; both are touched only by the Serve receive loop. The
	// lifetime total (ingested) is additionally read by Ingested, so it is
	// updated under modelMu.
	training   *dataset.Dataset
	sinceRefit int
	ingested   int
}

// NewMiningService trains the given classifier on the miner's unified
// dataset and binds the service to a transport endpoint. The zero
// ServiceConfig selects the defaults.
func NewMiningService(conn transport.Conn, result *MinerResult, model classify.Classifier, cfg ServiceConfig) (*MiningService, error) {
	if result == nil || result.Unified == nil || result.Unified.Len() == 0 {
		return nil, fmt.Errorf("%w: no unified dataset", ErrBadConfig)
	}
	if model == nil {
		return nil, fmt.Errorf("%w: nil classifier", ErrBadConfig)
	}
	training := result.Unified.Clone()
	if err := model.Fit(training.Clone()); err != nil {
		return nil, fmt.Errorf("protocol: train service model: %w", err)
	}
	return &MiningService{
		conn:     conn,
		model:    model,
		dim:      training.Dim(),
		training: training,
		cfg:      cfg.withDefaults(),
	}, nil
}

// Ingested returns the number of streamed records folded into the training
// set so far. It is safe to call concurrently with Serve.
func (s *MiningService) Ingested() int {
	s.modelMu.RLock()
	defer s.modelMu.RUnlock()
	return s.ingested
}

// serviceJob is one accepted request travelling from the receive loop to a
// worker.
type serviceJob struct {
	from string
	req  *serviceWire
}

// serviceOut is one encoded response travelling from a worker to the single
// sender goroutine (transport connections are not required to support
// concurrent writers).
type serviceOut struct {
	to      string
	payload []byte
}

// Serve answers classification requests until ctx is cancelled or the
// transport closes. Requests are dispatched to a pool of cfg.Workers
// prediction goroutines; responses funnel through one sender. Malformed
// frames are answered with a typed error response (or dropped when they
// cannot be attributed) rather than terminating the service.
func (s *MiningService) Serve(ctx context.Context) error {
	jobs := make(chan serviceJob)
	out := make(chan serviceOut, s.cfg.Workers)

	var senderWg sync.WaitGroup
	senderWg.Add(1)
	go func() {
		defer senderWg.Done()
		for o := range out {
			// Bound each response write so one peer that stops reading
			// cannot wedge the sender (and with it every worker) forever;
			// a timed-out connection is dropped by the transport and the
			// requester simply re-dials. The requester may also have gone
			// away entirely; either way, keep serving others.
			sendCtx, cancel := context.WithTimeout(ctx, serviceSendTimeout)
			_ = s.conn.Send(sendCtx, o.to, o.payload)
			cancel()
		}
	}()

	var workerWg sync.WaitGroup
	for i := 0; i < s.cfg.Workers; i++ {
		workerWg.Add(1)
		go func() {
			defer workerWg.Done()
			for j := range jobs {
				payload, err := encodeServiceWire(s.handle(j.req))
				if err != nil {
					continue
				}
				out <- serviceOut{to: j.from, payload: payload}
			}
		}()
	}
	shutdown := func() {
		close(jobs)
		workerWg.Wait()
		close(out)
		senderWg.Wait()
	}

	for {
		env, err := s.conn.Recv(ctx)
		if err != nil {
			shutdown()
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
				errors.Is(err, transport.ErrClosed) {
				return nil
			}
			return err
		}
		req, err := decodeServiceWire(env.Payload)
		switch {
		case req == nil && err == nil:
			continue // not a service frame; drop
		case errors.Is(err, ErrWireVersion):
			resp := &serviceWire{Response: true, Code: codeWireVersion, Err: err.Error()}
			if req != nil {
				resp.ID = req.ID
			}
			if payload, encErr := encodeServiceWire(resp); encErr == nil {
				out <- serviceOut{to: env.From, payload: payload}
			}
			continue
		case err != nil || req.Response:
			continue // undecodable or stray response frame; drop
		}
		if req.Kind == kindIngest {
			// Ingest mutates the training set, so it is handled inline on
			// the receive loop: appends stay ordered and race-free while
			// prediction workers keep serving under the model read lock.
			if payload, encErr := encodeServiceWire(s.ingest(req)); encErr == nil {
				out <- serviceOut{to: env.From, payload: payload}
			}
			continue
		}
		select {
		case jobs <- serviceJob{from: env.From, req: req}:
		case <-ctx.Done():
			shutdown()
			return nil
		}
	}
}

// ingest validates one streamed chunk, folds it into the training set, and
// refits the model when the refit cadence is reached. Called only from the
// Serve receive loop.
func (s *MiningService) ingest(req *serviceWire) *serviceWire {
	resp := &serviceWire{ID: req.ID, Kind: kindIngest, Response: true}
	if len(req.Batch) == 0 {
		resp.Code, resp.Err = codeBadChunk, "empty chunk"
		return resp
	}
	if len(req.Batch) > s.cfg.MaxBatch {
		resp.Code, resp.Err = codeBatchTooLarge,
			fmt.Sprintf("chunk has %d records, cap is %d", len(req.Batch), s.cfg.MaxBatch)
		return resp
	}
	if len(req.Labels) != len(req.Batch) {
		resp.Code, resp.Err = codeBadChunk,
			fmt.Sprintf("%d labels for %d records", len(req.Labels), len(req.Batch))
		return resp
	}
	for i, rec := range req.Batch {
		if len(rec) != s.dim {
			resp.Code, resp.Err = codeBadChunk,
				fmt.Sprintf("record %d has %d features, want %d", i, len(rec), s.dim)
			return resp
		}
		if req.Labels[i] < 0 {
			resp.Code, resp.Err = codeBadChunk, fmt.Sprintf("record %d has a negative label", i)
			return resp
		}
	}
	for i, rec := range req.Batch {
		s.training.X = append(s.training.X, append([]float64(nil), rec...))
		s.training.Y = append(s.training.Y, req.Labels[i])
	}
	s.sinceRefit += len(req.Batch)
	s.modelMu.Lock()
	s.ingested += len(req.Batch)
	s.modelMu.Unlock()
	resp.Accepted = s.training.Len()
	if s.cfg.RefitEvery > 0 && s.sinceRefit >= s.cfg.RefitEvery {
		if err := s.refit(); err != nil {
			// The chunk IS in the training set (Accepted reflects that) but
			// the refreshed model is not live; answer with the dedicated
			// refit code so the pusher knows not to re-push, and keep
			// serving on the previous fit.
			resp.Code, resp.Err = codeRefit, err.Error()
			return resp
		}
		s.sinceRefit = 0
	}
	return resp
}

// refit retrains a model on a snapshot of the grown training set and swaps
// it in under the write lock, so in-flight predictions finish on the old
// model and later ones see the new one.
func (s *MiningService) refit() error {
	snapshot := s.training.Clone()
	s.modelMu.Lock()
	defer s.modelMu.Unlock()
	if err := s.model.Fit(snapshot); err != nil {
		return fmt.Errorf("protocol: refit service model: %w", err)
	}
	return nil
}

// handle validates one request and predicts every record in its batch.
func (s *MiningService) handle(req *serviceWire) *serviceWire {
	resp := &serviceWire{ID: req.ID, Response: true}
	if len(req.Batch) == 0 {
		resp.Code, resp.Err = codeBadQuery, "empty batch"
		return resp
	}
	if len(req.Batch) > s.cfg.MaxBatch {
		resp.Code, resp.Err = codeBatchTooLarge,
			fmt.Sprintf("batch has %d records, cap is %d", len(req.Batch), s.cfg.MaxBatch)
		return resp
	}
	labels := make([]int, len(req.Batch))
	// One read lock per batch: predictions may run concurrently across
	// workers while an ingest-triggered refit waits for the write lock.
	s.modelMu.RLock()
	defer s.modelMu.RUnlock()
	for i, rec := range req.Batch {
		if len(rec) != s.dim {
			resp.Code, resp.Err = codeBadQuery,
				fmt.Sprintf("record %d has %d features, want %d", i, len(rec), s.dim)
			return resp
		}
		label, err := s.model.Predict(rec)
		if err != nil {
			resp.Code, resp.Err = codeInternal, err.Error()
			return resp
		}
		labels[i] = label
	}
	resp.Labels = labels
	return resp
}

// ServiceClient is the provider-side handle for querying the mining
// service. Queries must already be in the target space (providers hold G_t
// from the SAP run and apply it noiselessly to each record).
//
// The client owns its connection's receive side: a background demultiplexer
// routes responses to waiting callers by request ID, so any number of
// goroutines may call Classify and ClassifyBatch concurrently over one
// connection. Close the client to release the demultiplexer.
type ServiceClient struct {
	conn  transport.Conn
	miner string

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan *serviceWire
	failed  bool
	cause   error

	done      chan struct{} // closed when the demultiplexer has failed
	loopDone  chan struct{} // closed when the demultiplexer has exited
	closeOnce sync.Once
	stopRecv  context.CancelFunc
}

// NewServiceClient binds a client to a transport endpoint and starts its
// response demultiplexer. The connection's receive side belongs to the
// client from this point on.
func NewServiceClient(conn transport.Conn, miner string) (*ServiceClient, error) {
	if miner == "" {
		return nil, fmt.Errorf("%w: missing miner endpoint", ErrBadConfig)
	}
	recvCtx, stop := context.WithCancel(context.Background())
	c := &ServiceClient{
		conn:     conn,
		miner:    miner,
		pending:  make(map[uint64]chan *serviceWire),
		done:     make(chan struct{}),
		loopDone: make(chan struct{}),
		stopRecv: stop,
	}
	go c.recvLoop(recvCtx)
	return c, nil
}

// recvLoop routes every incoming response frame to the caller waiting on its
// ID. Frames for unknown IDs (cancelled requests, foreign traffic) are
// dropped.
func (c *ServiceClient) recvLoop(ctx context.Context) {
	defer close(c.loopDone)
	for {
		env, err := c.conn.Recv(ctx)
		if err != nil {
			c.fail(fmt.Errorf("%w: %v", ErrServiceClosed, err))
			return
		}
		// A version-mismatch rejection still carries the request ID and a
		// typed code; deliver it so the caller gets ErrWireVersion instead
		// of hanging. Only undecodable or non-response traffic is dropped.
		resp, _ := decodeServiceWire(env.Payload)
		if resp == nil || !resp.Response {
			continue
		}
		c.mu.Lock()
		ch, ok := c.pending[resp.ID]
		if ok {
			delete(c.pending, resp.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- resp // buffered; never blocks
		}
	}
}

// fail marks the client dead and wakes every in-flight caller.
func (c *ServiceClient) fail(cause error) {
	c.mu.Lock()
	if c.failed {
		c.mu.Unlock()
		return
	}
	c.failed = true
	c.cause = cause
	for id, ch := range c.pending {
		delete(c.pending, id)
		close(ch)
	}
	c.mu.Unlock()
	close(c.done)
}

// terminalErr returns the recorded failure cause (always non-nil once the
// client has failed).
func (c *ServiceClient) terminalErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cause != nil {
		return c.cause
	}
	return ErrServiceClosed
}

// Close stops the demultiplexer and fails all in-flight requests. The
// underlying connection is left open (it may be shared with other traffic on
// the send side).
func (c *ServiceClient) Close() error {
	c.closeOnce.Do(func() {
		c.stopRecv()
		<-c.loopDone
	})
	return nil
}

// register allocates a request ID and its response channel.
func (c *ServiceClient) register() (uint64, chan *serviceWire, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failed {
		return 0, nil, c.cause
	}
	c.nextID++
	ch := make(chan *serviceWire, 1)
	c.pending[c.nextID] = ch
	return c.nextID, ch, nil
}

// unregister abandons an in-flight request (send failure or caller
// cancellation); a response arriving later is dropped by the demultiplexer.
func (c *ServiceClient) unregister(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// Classify sends one target-space record and blocks for its label. It is
// safe to call from many goroutines concurrently.
func (c *ServiceClient) Classify(ctx context.Context, features []float64) (int, error) {
	labels, err := c.ClassifyBatch(ctx, [][]float64{features})
	if err != nil {
		return 0, err
	}
	return labels[0], nil
}

// ClassifyBatch sends a whole batch of target-space records in one frame and
// blocks for their labels, which arrive in one response frame — a single
// round trip regardless of batch size. It is safe to call from many
// goroutines concurrently; cancelling ctx abandons only this request.
func (c *ServiceClient) ClassifyBatch(ctx context.Context, batch [][]float64) ([]int, error) {
	if len(batch) == 0 {
		return nil, fmt.Errorf("%w: empty batch", ErrBadQuery)
	}
	id, ch, err := c.register()
	if err != nil {
		return nil, err
	}
	payload, err := encodeServiceWire(&serviceWire{ID: id, Batch: batch})
	if err != nil {
		c.unregister(id)
		return nil, err
	}
	if err := c.conn.Send(ctx, c.miner, payload); err != nil {
		c.unregister(id)
		return nil, fmt.Errorf("%w: %v", ErrServiceClosed, err)
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			return nil, c.terminalErr()
		}
		return decodeServiceResponse(resp, len(batch))
	case <-ctx.Done():
		c.unregister(id)
		return nil, ctx.Err()
	case <-c.done:
		return nil, c.terminalErr()
	}
}

// PushChunk streams one chunk of perturbed, target-space training records
// (with their labels) into the serving miner, which folds them into its
// training set and refits on its configured cadence. It returns the
// service's total training-set size after the chunk was folded in. An
// ErrRefit error still carries a non-zero accepted count: the chunk landed
// but the model refresh failed, so the caller must not re-push it. Like
// ClassifyBatch it costs one round trip and is safe for concurrent use.
func (c *ServiceClient) PushChunk(ctx context.Context, batch [][]float64, labels []int) (int, error) {
	if len(batch) == 0 {
		return 0, fmt.Errorf("%w: empty chunk", ErrBadChunk)
	}
	if len(labels) != len(batch) {
		return 0, fmt.Errorf("%w: %d labels for %d records", ErrBadChunk, len(labels), len(batch))
	}
	id, ch, err := c.register()
	if err != nil {
		return 0, err
	}
	payload, err := encodeServiceWire(&serviceWire{ID: id, Kind: kindIngest, Batch: batch, Labels: labels})
	if err != nil {
		c.unregister(id)
		return 0, err
	}
	if err := c.conn.Send(ctx, c.miner, payload); err != nil {
		c.unregister(id)
		return 0, fmt.Errorf("%w: %v", ErrServiceClosed, err)
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			return 0, c.terminalErr()
		}
		// Accepted is returned even alongside an error: an ErrRefit
		// response means the chunk WAS folded in (do not re-push) but the
		// refreshed model is not live.
		return resp.Accepted, responseErr(resp)
	case <-ctx.Done():
		c.unregister(id)
		return 0, ctx.Err()
	case <-c.done:
		return 0, c.terminalErr()
	}
}

// responseErr maps a response frame's code to a typed error (nil on codeOK).
func responseErr(resp *serviceWire) error {
	switch resp.Code {
	case codeOK:
		return nil
	case codeBadQuery:
		return fmt.Errorf("%w: %s", ErrBadQuery, resp.Err)
	case codeBadChunk:
		return fmt.Errorf("%w: %s", ErrBadChunk, resp.Err)
	case codeRefit:
		return fmt.Errorf("%w: %s", ErrRefit, resp.Err)
	case codeBatchTooLarge:
		return fmt.Errorf("%w: %s", ErrBatchTooLarge, resp.Err)
	case codeWireVersion:
		return fmt.Errorf("%w: %s", ErrWireVersion, resp.Err)
	default:
		return fmt.Errorf("%w: %s", ErrServiceClosed, resp.Err)
	}
}

// decodeServiceResponse maps a classify response frame to labels or a typed
// error.
func decodeServiceResponse(resp *serviceWire, want int) ([]int, error) {
	if err := responseErr(resp); err != nil {
		return nil, err
	}
	if len(resp.Labels) != want {
		return nil, fmt.Errorf("%w: %d labels for %d records", ErrBadMessage, len(resp.Labels), want)
	}
	return resp.Labels, nil
}
