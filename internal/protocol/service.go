package protocol

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/classify"
	"repro/internal/transport"
)

// Typed errors of the serving subsystem. ErrServiceClosed means the link or
// the service is gone; the others describe a rejected request and leave the
// client usable.
var (
	// ErrServiceClosed is returned when the service answered with an
	// internal error or the link failed.
	ErrServiceClosed = errors.New("protocol: mining service unavailable")
	// ErrBadQuery flags an empty batch or a record whose dimension does not
	// match the service model.
	ErrBadQuery = errors.New("protocol: malformed classification query")
	// ErrBatchTooLarge flags a batch exceeding the service's MaxBatch.
	ErrBatchTooLarge = errors.New("protocol: classification batch too large")
	// ErrWireVersion flags a frame whose service wire version the peer does
	// not speak.
	ErrWireVersion = errors.New("protocol: unsupported service wire version")
)

// serviceMagic prefixes every service frame so serving traffic is
// distinguishable from SAP protocol frames at the payload level: a query
// that races the tail of a SAP run can be stashed instead of tripping the
// miner's violation checks.
const serviceMagic = 0x53 // 'S'

// ServiceWireVersion is the current service frame version. Version 1 was the
// unversioned single-record frame of the pre-batching service; version 2
// carries batches and typed error codes.
const ServiceWireVersion = 2

// Wire error codes carried in service responses, mapped back to the typed
// errors above by the client.
const (
	codeOK uint8 = iota
	codeBadQuery
	codeBatchTooLarge
	codeWireVersion
	codeInternal
)

// serviceWire is the request/response frame of the post-unification mining
// service. One request carries a whole batch and is answered by exactly one
// response frame, so a ClassifyBatch costs a single round trip.
type serviceWire struct {
	// ID correlates responses with requests; the client's demultiplexer
	// routes on it.
	ID uint64
	// Batch is the query: records already transformed into the target space
	// by the caller (providers know G_t; the miner never sees clear data).
	Batch [][]float64
	// Labels is the response: one predicted class per batch record.
	Labels []int
	// Code is a machine-readable failure class (response only, codeOK on
	// success).
	Code uint8
	// Err is the human-readable failure detail (response only).
	Err string
	// Response discriminates request from response frames.
	Response bool
}

// IsServiceFrame reports whether a raw transport payload is a service frame
// (of any version). Protocol drivers use it to divert early queries that
// arrive while the SAP run is still completing.
func IsServiceFrame(payload []byte) bool {
	return len(payload) >= 2 && payload[0] == serviceMagic
}

func encodeServiceWire(w *serviceWire) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte(serviceMagic)
	buf.WriteByte(ServiceWireVersion)
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, fmt.Errorf("protocol: encode service frame: %w", err)
	}
	return buf.Bytes(), nil
}

// decodeServiceWire unpacks a service frame. A nil frame with a nil error
// means "not a service frame, ignore". A version mismatch returns the frame
// ID when recoverable so the peer can be answered with a typed error.
func decodeServiceWire(payload []byte) (*serviceWire, error) {
	if !IsServiceFrame(payload) {
		return nil, nil
	}
	version := payload[1]
	var w serviceWire
	if err := gob.NewDecoder(bytes.NewReader(payload[2:])).Decode(&w); err != nil {
		if version != ServiceWireVersion {
			return nil, fmt.Errorf("%w: got v%d, speak v%d", ErrWireVersion, version, ServiceWireVersion)
		}
		return nil, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	if version != ServiceWireVersion {
		// The frame decoded (gob skips unknown fields) but the peer speaks
		// another version; answer it with a typed rejection.
		return &w, fmt.Errorf("%w: got v%d, speak v%d", ErrWireVersion, version, ServiceWireVersion)
	}
	return &w, nil
}

// ServiceConfig tunes the miner-side serving loop.
type ServiceConfig struct {
	// Workers is the number of goroutines predicting concurrently
	// (default: GOMAXPROCS).
	Workers int
	// MaxBatch caps the records accepted in one request (default 4096).
	// Oversized batches are rejected with ErrBatchTooLarge, not served.
	MaxBatch int
}

// DefaultMaxBatch is the batch-size cap applied when ServiceConfig.MaxBatch
// is zero.
const DefaultMaxBatch = 4096

// serviceSendTimeout bounds one response write so a peer that stops reading
// cannot stall the serving loop's sender indefinitely.
const serviceSendTimeout = 30 * time.Second

func (c ServiceConfig) withDefaults() ServiceConfig {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	return c
}

// MiningService is the miner-side classification endpoint: a model trained
// on the unified perturbed dataset, answering batched queries that arrive in
// the target space. This realizes the paper's service-oriented framing — the
// service provider "offers their data mining services to the contracted
// parties" for the contract's lifetime.
type MiningService struct {
	conn  transport.Conn
	model classify.Classifier
	dim   int
	cfg   ServiceConfig
}

// NewMiningService trains the given classifier on the miner's unified
// dataset and binds the service to a transport endpoint. The zero
// ServiceConfig selects the defaults.
func NewMiningService(conn transport.Conn, result *MinerResult, model classify.Classifier, cfg ServiceConfig) (*MiningService, error) {
	if result == nil || result.Unified == nil || result.Unified.Len() == 0 {
		return nil, fmt.Errorf("%w: no unified dataset", ErrBadConfig)
	}
	if model == nil {
		return nil, fmt.Errorf("%w: nil classifier", ErrBadConfig)
	}
	if err := model.Fit(result.Unified); err != nil {
		return nil, fmt.Errorf("protocol: train service model: %w", err)
	}
	return &MiningService{conn: conn, model: model, dim: result.Unified.Dim(), cfg: cfg.withDefaults()}, nil
}

// serviceJob is one accepted request travelling from the receive loop to a
// worker.
type serviceJob struct {
	from string
	req  *serviceWire
}

// serviceOut is one encoded response travelling from a worker to the single
// sender goroutine (transport connections are not required to support
// concurrent writers).
type serviceOut struct {
	to      string
	payload []byte
}

// Serve answers classification requests until ctx is cancelled or the
// transport closes. Requests are dispatched to a pool of cfg.Workers
// prediction goroutines; responses funnel through one sender. Malformed
// frames are answered with a typed error response (or dropped when they
// cannot be attributed) rather than terminating the service.
func (s *MiningService) Serve(ctx context.Context) error {
	jobs := make(chan serviceJob)
	out := make(chan serviceOut, s.cfg.Workers)

	var senderWg sync.WaitGroup
	senderWg.Add(1)
	go func() {
		defer senderWg.Done()
		for o := range out {
			// Bound each response write so one peer that stops reading
			// cannot wedge the sender (and with it every worker) forever;
			// a timed-out connection is dropped by the transport and the
			// requester simply re-dials. The requester may also have gone
			// away entirely; either way, keep serving others.
			sendCtx, cancel := context.WithTimeout(ctx, serviceSendTimeout)
			_ = s.conn.Send(sendCtx, o.to, o.payload)
			cancel()
		}
	}()

	var workerWg sync.WaitGroup
	for i := 0; i < s.cfg.Workers; i++ {
		workerWg.Add(1)
		go func() {
			defer workerWg.Done()
			for j := range jobs {
				payload, err := encodeServiceWire(s.handle(j.req))
				if err != nil {
					continue
				}
				out <- serviceOut{to: j.from, payload: payload}
			}
		}()
	}
	shutdown := func() {
		close(jobs)
		workerWg.Wait()
		close(out)
		senderWg.Wait()
	}

	for {
		env, err := s.conn.Recv(ctx)
		if err != nil {
			shutdown()
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
				errors.Is(err, transport.ErrClosed) {
				return nil
			}
			return err
		}
		req, err := decodeServiceWire(env.Payload)
		switch {
		case req == nil && err == nil:
			continue // not a service frame; drop
		case errors.Is(err, ErrWireVersion):
			resp := &serviceWire{Response: true, Code: codeWireVersion, Err: err.Error()}
			if req != nil {
				resp.ID = req.ID
			}
			if payload, encErr := encodeServiceWire(resp); encErr == nil {
				out <- serviceOut{to: env.From, payload: payload}
			}
			continue
		case err != nil || req.Response:
			continue // undecodable or stray response frame; drop
		}
		select {
		case jobs <- serviceJob{from: env.From, req: req}:
		case <-ctx.Done():
			shutdown()
			return nil
		}
	}
}

// handle validates one request and predicts every record in its batch.
func (s *MiningService) handle(req *serviceWire) *serviceWire {
	resp := &serviceWire{ID: req.ID, Response: true}
	if len(req.Batch) == 0 {
		resp.Code, resp.Err = codeBadQuery, "empty batch"
		return resp
	}
	if len(req.Batch) > s.cfg.MaxBatch {
		resp.Code, resp.Err = codeBatchTooLarge,
			fmt.Sprintf("batch has %d records, cap is %d", len(req.Batch), s.cfg.MaxBatch)
		return resp
	}
	labels := make([]int, len(req.Batch))
	for i, rec := range req.Batch {
		if len(rec) != s.dim {
			resp.Code, resp.Err = codeBadQuery,
				fmt.Sprintf("record %d has %d features, want %d", i, len(rec), s.dim)
			return resp
		}
		label, err := s.model.Predict(rec)
		if err != nil {
			resp.Code, resp.Err = codeInternal, err.Error()
			return resp
		}
		labels[i] = label
	}
	resp.Labels = labels
	return resp
}

// ServiceClient is the provider-side handle for querying the mining
// service. Queries must already be in the target space (providers hold G_t
// from the SAP run and apply it noiselessly to each record).
//
// The client owns its connection's receive side: a background demultiplexer
// routes responses to waiting callers by request ID, so any number of
// goroutines may call Classify and ClassifyBatch concurrently over one
// connection. Close the client to release the demultiplexer.
type ServiceClient struct {
	conn  transport.Conn
	miner string

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan *serviceWire
	failed  bool
	cause   error

	done      chan struct{} // closed when the demultiplexer has failed
	loopDone  chan struct{} // closed when the demultiplexer has exited
	closeOnce sync.Once
	stopRecv  context.CancelFunc
}

// NewServiceClient binds a client to a transport endpoint and starts its
// response demultiplexer. The connection's receive side belongs to the
// client from this point on.
func NewServiceClient(conn transport.Conn, miner string) (*ServiceClient, error) {
	if miner == "" {
		return nil, fmt.Errorf("%w: missing miner endpoint", ErrBadConfig)
	}
	recvCtx, stop := context.WithCancel(context.Background())
	c := &ServiceClient{
		conn:     conn,
		miner:    miner,
		pending:  make(map[uint64]chan *serviceWire),
		done:     make(chan struct{}),
		loopDone: make(chan struct{}),
		stopRecv: stop,
	}
	go c.recvLoop(recvCtx)
	return c, nil
}

// recvLoop routes every incoming response frame to the caller waiting on its
// ID. Frames for unknown IDs (cancelled requests, foreign traffic) are
// dropped.
func (c *ServiceClient) recvLoop(ctx context.Context) {
	defer close(c.loopDone)
	for {
		env, err := c.conn.Recv(ctx)
		if err != nil {
			c.fail(fmt.Errorf("%w: %v", ErrServiceClosed, err))
			return
		}
		// A version-mismatch rejection still carries the request ID and a
		// typed code; deliver it so the caller gets ErrWireVersion instead
		// of hanging. Only undecodable or non-response traffic is dropped.
		resp, _ := decodeServiceWire(env.Payload)
		if resp == nil || !resp.Response {
			continue
		}
		c.mu.Lock()
		ch, ok := c.pending[resp.ID]
		if ok {
			delete(c.pending, resp.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- resp // buffered; never blocks
		}
	}
}

// fail marks the client dead and wakes every in-flight caller.
func (c *ServiceClient) fail(cause error) {
	c.mu.Lock()
	if c.failed {
		c.mu.Unlock()
		return
	}
	c.failed = true
	c.cause = cause
	for id, ch := range c.pending {
		delete(c.pending, id)
		close(ch)
	}
	c.mu.Unlock()
	close(c.done)
}

// terminalErr returns the recorded failure cause (always non-nil once the
// client has failed).
func (c *ServiceClient) terminalErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cause != nil {
		return c.cause
	}
	return ErrServiceClosed
}

// Close stops the demultiplexer and fails all in-flight requests. The
// underlying connection is left open (it may be shared with other traffic on
// the send side).
func (c *ServiceClient) Close() error {
	c.closeOnce.Do(func() {
		c.stopRecv()
		<-c.loopDone
	})
	return nil
}

// register allocates a request ID and its response channel.
func (c *ServiceClient) register() (uint64, chan *serviceWire, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failed {
		return 0, nil, c.cause
	}
	c.nextID++
	ch := make(chan *serviceWire, 1)
	c.pending[c.nextID] = ch
	return c.nextID, ch, nil
}

// unregister abandons an in-flight request (send failure or caller
// cancellation); a response arriving later is dropped by the demultiplexer.
func (c *ServiceClient) unregister(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// Classify sends one target-space record and blocks for its label. It is
// safe to call from many goroutines concurrently.
func (c *ServiceClient) Classify(ctx context.Context, features []float64) (int, error) {
	labels, err := c.ClassifyBatch(ctx, [][]float64{features})
	if err != nil {
		return 0, err
	}
	return labels[0], nil
}

// ClassifyBatch sends a whole batch of target-space records in one frame and
// blocks for their labels, which arrive in one response frame — a single
// round trip regardless of batch size. It is safe to call from many
// goroutines concurrently; cancelling ctx abandons only this request.
func (c *ServiceClient) ClassifyBatch(ctx context.Context, batch [][]float64) ([]int, error) {
	if len(batch) == 0 {
		return nil, fmt.Errorf("%w: empty batch", ErrBadQuery)
	}
	id, ch, err := c.register()
	if err != nil {
		return nil, err
	}
	payload, err := encodeServiceWire(&serviceWire{ID: id, Batch: batch})
	if err != nil {
		c.unregister(id)
		return nil, err
	}
	if err := c.conn.Send(ctx, c.miner, payload); err != nil {
		c.unregister(id)
		return nil, fmt.Errorf("%w: %v", ErrServiceClosed, err)
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			return nil, c.terminalErr()
		}
		return decodeServiceResponse(resp, len(batch))
	case <-ctx.Done():
		c.unregister(id)
		return nil, ctx.Err()
	case <-c.done:
		return nil, c.terminalErr()
	}
}

// decodeServiceResponse maps a response frame to labels or a typed error.
func decodeServiceResponse(resp *serviceWire, want int) ([]int, error) {
	switch resp.Code {
	case codeOK:
	case codeBadQuery:
		return nil, fmt.Errorf("%w: %s", ErrBadQuery, resp.Err)
	case codeBatchTooLarge:
		return nil, fmt.Errorf("%w: %s", ErrBatchTooLarge, resp.Err)
	case codeWireVersion:
		return nil, fmt.Errorf("%w: %s", ErrWireVersion, resp.Err)
	default:
		return nil, fmt.Errorf("%w: %s", ErrServiceClosed, resp.Err)
	}
	if len(resp.Labels) != want {
		return nil, fmt.Errorf("%w: %d labels for %d records", ErrBadMessage, len(resp.Labels), want)
	}
	return resp.Labels, nil
}
