package protocol

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/classify"
	"repro/internal/matrix"
	"repro/internal/metrics"
	"repro/internal/transport"
)

// Typed errors of the serving subsystem. ErrServiceClosed means the link or
// the service is gone; the others describe a rejected request and leave the
// client usable.
var (
	// ErrServiceClosed is returned when the service answered with an
	// internal error or the link failed.
	ErrServiceClosed = errors.New("protocol: mining service unavailable")
	// ErrBadQuery flags an empty batch or a record whose dimension does not
	// match the service model.
	ErrBadQuery = errors.New("protocol: malformed classification query")
	// ErrBatchTooLarge flags a batch exceeding the service's MaxBatch.
	ErrBatchTooLarge = errors.New("protocol: classification batch too large")
	// ErrWireVersion flags a frame whose service wire version the peer does
	// not speak.
	ErrWireVersion = errors.New("protocol: unsupported service wire version")
	// ErrBadChunk flags a malformed stream-ingest chunk (empty, mis-shaped,
	// or carrying labels that do not line up with its records).
	ErrBadChunk = errors.New("protocol: malformed stream chunk")
	// ErrRefit means a streamed chunk WAS folded into the training set but
	// retraining the model on the grown set failed; the service keeps
	// serving on its previous fit. Re-pushing the chunk would duplicate its
	// records.
	ErrRefit = errors.New("protocol: service model refit failed")
	// ErrUnknownGroup flags a frame addressed to a serving group the miner
	// does not host.
	ErrUnknownGroup = errors.New("protocol: unknown serving group")
	// ErrNotMember flags a peer addressing a serving group whose member
	// list does not include it — the cross-group routing contract of a
	// multi-tenant miner (membership is checked against the self-declared
	// transport sender name; see GroupSpec.Members for the trust model).
	ErrNotMember = errors.New("protocol: peer not registered to serving group")
	// ErrBusy flags a frame rejected because the addressed group's bounded
	// ingest or prediction queue was full: the service answered within one
	// round trip instead of stalling its shared receive loop (and with it,
	// every other group). The request had no effect — an ErrBusy'd chunk was
	// NOT folded in — so retrying after a short backoff is always safe, and
	// ServiceClient does so automatically (see Backoff).
	ErrBusy = errors.New("protocol: serving group busy")
	// ErrNotLeader flags an ingest frame addressed to a read replica of a
	// clustered group. Replicas serve classify traffic only; pushes belong on
	// the group's leader node (the routing table names it), so the chunk was
	// NOT folded in and must be re-sent to the leader.
	ErrNotLeader = errors.New("protocol: group is a read replica here; push to its leader")
	// ErrQuota flags an ingest chunk rejected because the group's
	// records-per-second quota (GroupQuota) is exhausted. The chunk was NOT
	// folded in. Unlike ErrBusy this is policy, not transient load: the
	// client does not retry it, the caller backs off to the configured rate
	// (or the operator raises the quota through the admin plane).
	ErrQuota = errors.New("protocol: serving group ingest quota exhausted")
	// ErrAdminDenied flags an admin frame that failed authentication: the
	// token did not match, or the service runs with no admin token and the
	// control plane is disabled.
	ErrAdminDenied = errors.New("protocol: admin access denied")
	// ErrGroupExists flags a register for a group ID the service already
	// hosts. Evict it first to replace it.
	ErrGroupExists = errors.New("protocol: serving group already registered")
	// ErrUnknownView flags a frame addressing a trust view (level) the
	// group does not serve. Distinct from ErrNotMember: the view does not
	// exist for anyone, rather than existing but excluding this peer.
	ErrUnknownView = errors.New("protocol: unknown trust view for serving group")
)

// serviceMagic prefixes every service frame so serving traffic is
// distinguishable from SAP protocol frames at the payload level: a query
// that races the tail of a SAP run can be stashed instead of tripping the
// miner's violation checks.
const serviceMagic = 0x53 // 'S'

// ServiceWireVersion is the current service frame version. Version 1 was
// the unversioned single-record frame of the pre-batching service; version
// 2 carried batches and typed error codes; version 3 added the Kind
// discriminator so stream-ingest chunks share the frame format with
// classification queries; version 4 added the Group routing field so one
// miner process serves many contract groups side by side; version 5 added the
// cluster admin frames — routing-table discovery (kindRoutes) and
// leader-to-replica model sync (kindModelSync) — with their Routes, Model
// and Seq fields; version 6 adds the durability gossip (kindSyncHello,
// kindSyncState) with the Epoch and Covered fields, and stamps routes
// responses with the table epoch; version 7 is the flagged frame format — a
// flag byte between the header and the gob body selects per-frame DEFLATE
// compression and marks packed-float32 batches; version 8 adds the admin
// control plane (kindAdminRegister through kindAdminList with the Token,
// Spec, Update and Infos fields) for registering, evicting and reconfiguring
// serving groups on a live service.
const ServiceWireVersion = 8

// serviceWireFlaggedVersion is the version byte of flagged frames (the
// format with a flag byte between header and body). It stays pinned at 7:
// flagged frames are only ever sent to peers that advertised the matching
// capability, and those peers recognize the flag byte by this exact version
// value — re-stamping flagged frames with each version bump would break
// every already-deployed v7 peer for no wire-level gain. Version-8 frames
// use the classic (flagless) layout.
const serviceWireFlaggedVersion = 7

// serviceWireClassicVersion is the version byte of unflagged frames. Plain
// frames keep this byte forever: a v7-capable sender emits the flagged
// format only toward peers that have advertised the matching capability
// (serviceWire.Accept), so v1–v6 peers — which would reject or drop a v7
// frame — only ever see classic frames. The Accept field itself rides the
// classic gob body, which old decoders skip silently; negotiation therefore
// costs zero errors against any older peer.
const serviceWireClassicVersion = 6

// serviceWireMinVersion is the oldest frame version the service still
// decodes. Pre-v4 frames carry no Group field and route to DefaultGroup, so
// single-group deployments keep working against a sharded miner unchanged.
const serviceWireMinVersion = 1

// Flag bits of a flagged frame's flag byte (the third header byte, present
// only when the version byte is serviceWireFlaggedVersion). Unknown bits
// reject the frame as malformed.
const (
	// frameFlagDeflate marks the gob body as DEFLATE-compressed.
	frameFlagDeflate uint8 = 1 << 0
	// frameFlagFloat32 marks the frame's batch as packed float32
	// (serviceWire.Batch32); informational — decoding keys off the field.
	frameFlagFloat32 uint8 = 1 << 1
)

// Capability bits of serviceWire.Accept: what the sender is able to decode.
// A sender uses a capability toward a peer only after observing it in the
// peer's advertised mask.
const (
	// acceptDeflate: the peer decodes DEFLATE-compressed v7 frames and wants
	// them (advertised only when compression is enabled on its side, so both
	// sides must opt in before any frame compresses).
	acceptDeflate uint8 = 1 << 0
	// acceptFloat32: the peer decodes packed-float32 batches and float32
	// model blobs. Advertised unconditionally by v7 code — decoding is
	// always safe; whether to *send* float32 stays the sender's choice.
	acceptFloat32 uint8 = 1 << 1
)

// Wire error codes carried in service responses, mapped back to the typed
// errors above by the client.
const (
	codeOK uint8 = iota
	codeBadQuery
	codeBatchTooLarge
	codeWireVersion
	codeInternal
	codeBadChunk
	codeRefit
	codeUnknownGroup
	codeNotMember
	// codeBusy extends the code set without a wire-version bump on
	// purpose: codes ride in a response field old decoders still parse, so
	// a bump would not change how an old client maps an unknown code (it
	// falls through to ErrServiceClosed either way) — it would only make
	// new clients' requests unreadable to old services.
	codeBusy
	// codeNotLeader rejects an ingest frame addressed to a read replica.
	codeNotLeader
	// codeQuota rejects an ingest chunk that exhausted the group's
	// records-per-second token bucket (GroupQuota). Unlike codeBusy it is
	// not retried by the client's backoff: quota is policy, not transient
	// load, and the operator raises it through the admin plane.
	codeQuota
	// codeAdminDenied rejects an admin frame whose Token does not match the
	// service's configured admin token (or any admin frame when no token is
	// configured, which disables the control plane entirely).
	codeAdminDenied
	// codeGroupExists rejects a register for a group ID the service already
	// hosts.
	codeGroupExists
	// codeUnknownView rejects a frame addressing a trust view (level) the
	// group does not serve. Like codeBusy it extends the code set without a
	// wire-version bump: old clients map it to ErrServiceClosed, and the
	// View field itself rides the gob body old decoders skip.
	codeUnknownView
)

// Frame kinds carried in serviceWire.Kind. The zero value is a
// classification query, so a frame that omits Kind is a classify frame.
const (
	kindClassify uint8 = iota
	kindIngest
	// kindRoutes is the cluster admin frame: a request asks any node for the
	// cluster's routing table, the response carries it in Routes. The table
	// is service-wide, so the frame bypasses group routing entirely.
	kindRoutes
	// kindModelSync is the leader-to-replica replication frame: after a
	// successful refit swap, the group's leader streams the encoded fresh
	// classifier (Model, classify.EncodeModel format, sequenced by Seq) to
	// each follower, which installs it with the same lock-free atomic
	// publish refits use. Sent fire-and-forget with ID 0 — the follower
	// sends no response — so a downed follower costs the leader one failed
	// send, never a stalled wait.
	kindModelSync
	// kindSyncHello is the leader half of the v6 durability gossip: a
	// group's leader periodically announces its published Seq, table Epoch,
	// ingest coverage (Covered) and routing-table row (Routes[0]) to each
	// replica. A replica answers with kindSyncState, letting a restarted
	// leader resume numbering above the replicas' installed sequences and a
	// lagging replica measure its staleness. Fire-and-forget (ID 0).
	kindSyncHello
	// kindSyncState is the replica half of the v6 durability gossip: the
	// replica's last installed Seq, Epoch and row. A leader floors its
	// per-group sequence at the answered Seq (the restart handshake) and
	// re-pushes the current model to any replica reporting an older one (the
	// anti-entropy pull). Fire-and-forget (ID 0).
	kindSyncState
	// kindAdminRegister is the v8 control-plane frame that registers a new
	// serving group on a live service: the request's Spec carries the group
	// definition (training records, encoded model, cadence, queues, quota),
	// authenticated by Token. The service fits the model off the serving
	// loop, starts the group's lanes, and answers codeOK — or
	// codeGroupExists, codeAdminDenied, codeBadQuery.
	kindAdminRegister
	// kindAdminEvict is the v8 control-plane frame that removes a serving
	// group: its ingest queue drains, queued classifies answer, the refit
	// goroutine stops, and subsequent frames for the group are rejected with
	// codeUnknownGroup.
	kindAdminEvict
	// kindAdminUpdate is the v8 control-plane frame that reconfigures a live
	// group in place: the request's Update names which limits change (quota,
	// batch cap, refit cadence, members ACL) without touching the rest.
	kindAdminUpdate
	// kindAdminList is the v8 control-plane frame that asks a service for
	// its hosted groups; the response's Infos describes each one.
	kindAdminList
)

// isAdminControl reports whether a frame kind belongs to the v8 admin
// control plane (authenticated, handled off the group router).
func isAdminControl(kind uint8) bool {
	return kind >= kindAdminRegister && kind <= kindAdminList
}

// Exported frame-kind values for tools that inspect raw frames (the faultnet
// test harness matches sync traffic by kind via InspectFrame).
const (
	KindClassify      = kindClassify
	KindIngest        = kindIngest
	KindRoutes        = kindRoutes
	KindModelSync     = kindModelSync
	KindSyncHello     = kindSyncHello
	KindSyncState     = kindSyncState
	KindAdminRegister = kindAdminRegister
	KindAdminEvict    = kindAdminEvict
	KindAdminUpdate   = kindAdminUpdate
	KindAdminList     = kindAdminList
)

// RouteEntry is one row of the cluster routing table: the group's leader
// node (the only node accepting ingest for the group) and the read replicas
// that additionally serve its classify traffic. Node names are transport
// endpoint names.
type RouteEntry struct {
	// Group is the serving-group ID the row routes.
	Group string
	// Node is the group's leader endpoint.
	Node string
	// Replicas are the follower endpoints serving read-only classify
	// traffic for the group (may be empty).
	Replicas []string
	// Epoch versions this row alone: failover re-announces a promoted row
	// under the old row's epoch + 1, and nodes and clients merge tables
	// row-wise, keeping the highest-epoch row they have seen per group —
	// concurrent failovers of different groups never invalidate each
	// other's rows. Operator-pinned tables leave it 0, in which case a
	// routes answer's table-level Epoch applies to every row at once.
	Epoch uint64
}

// serviceWire is the request/response frame of the post-unification mining
// service. One request carries a whole batch and is answered by exactly one
// response frame, so a ClassifyBatch costs a single round trip.
type serviceWire struct {
	// ID correlates responses with requests; the client's demultiplexer
	// routes on it.
	ID uint64
	// Kind discriminates classification queries (kindClassify) from
	// stream-ingest chunks (kindIngest).
	Kind uint8
	// Group names the serving group (contract) the frame addresses. Empty
	// on pre-v4 frames and on clients of single-group services; the router
	// maps it to DefaultGroup.
	Group string
	// View names the trust level the frame addresses within a multi-level
	// group (GroupSpec.Views). Zero — the wire default, which gob omits —
	// routes to the sender's highest-authorized view, so every frame from a
	// view-unaware client keeps its exact pre-view bytes and behavior. It
	// rides the gob body, silently skipped by old decoders; no wire-version
	// bump. On kindModelSync frames it names the view the blob installs to.
	View int
	// Batch carries the records, already transformed into the group's
	// target space by the caller (providers know G_t; the miner never sees
	// clear data). For classify frames it is the query; for ingest frames
	// it is a chunk of perturbed training records.
	Batch [][]float64
	// Labels carries class labels: in a classify response, one prediction
	// per batch record; in an ingest request, the true label of each pushed
	// training record.
	Labels []int
	// Accepted is the ingest response: the group's total training-set size
	// after folding the chunk in.
	Accepted int
	// Routes carries the cluster routing table in a kindRoutes response.
	Routes []RouteEntry
	// Model carries an encoded classifier (classify.EncodeModel format) in a
	// kindModelSync request.
	Model []byte
	// Seq orders kindModelSync frames per group: a follower installs a sync
	// only when its Seq exceeds the last installed one, so re-deliveries and
	// reordered frames are idempotent. Gossip frames carry the sender's
	// current sequence in it.
	Seq uint64
	// Epoch versions the routing state a frame speaks for. On gossip frames
	// it is the epoch of the row the frame carries; on routes responses it
	// is the table-level epoch, which applies to every row only when the
	// rows carry no per-row epochs of their own (RouteEntry.Epoch) —
	// receivers merge row-wise and keep the highest epoch seen per group.
	Epoch uint64
	// Covered is the leader ingest count the frame's model (or announced
	// sequence) covers; replicas derive staleness_records from the gap
	// between a hello's Covered and their own installed coverage.
	Covered int64
	// Accept advertises the sender's wire capabilities (acceptDeflate,
	// acceptFloat32) on every frame, making the first request/response pair
	// double as the compression hello/ack. It rides the gob body, so v1–v6
	// decoders skip it silently; its zero value (an old or plain peer) makes
	// every capability decision fall back to classic plain frames.
	Accept uint8
	// Batch32 is the packed-float32 form of Batch (little-endian, Dim
	// features per record), sent only to peers advertising acceptFloat32.
	// The decoder expands it back into Batch and clears it, so everything
	// past the frame codec sees one canonical batch representation.
	Batch32 []byte
	// Dim is the per-record feature count of Batch32.
	Dim int
	// Token authenticates v8 admin frames (kindAdminRegister through
	// kindAdminList) against the service's configured admin token. Never set
	// on serving frames.
	Token string
	// Spec carries the new group's definition on a kindAdminRegister
	// request.
	Spec *AdminGroupSpec
	// Update carries the in-place limit changes of a kindAdminUpdate
	// request.
	Update *AdminUpdate
	// Infos describes the hosted groups in a kindAdminList response.
	Infos []AdminGroupInfo
	// Code is a machine-readable failure class (response only, codeOK on
	// success).
	Code uint8
	// Err is the human-readable failure detail (response only).
	Err string
	// Response discriminates request from response frames.
	Response bool
}

// IsServiceFrame reports whether a raw transport payload is a service frame
// (of any version). Protocol drivers use it to divert early queries that
// arrive while the SAP run is still completing.
func IsServiceFrame(payload []byte) bool {
	return len(payload) >= 2 && payload[0] == serviceMagic
}

// frameDeflate is the CompressCodec every compressed v7 frame body runs
// through — the protocol-layer stacking of transport.CompressCodec inside
// whatever link codec (AES on TCP) seals the frame afterwards. One shared
// instance so its pooled flate writers/readers amortize across all
// connections; its Open inherits the codec's zip-bomb frame cap.
var frameDeflate = func() *transport.CompressCodec {
	c, err := transport.NewCompressCodec(nil, transport.DefaultLevel)
	if err != nil {
		panic(err)
	}
	return c
}()

// encBufPool recycles the gob encode buffers of the service and SAP frame
// encoders. Encoders write into a pooled buffer and copy the exact-size
// payload out, so the steady state allocates one right-sized payload per
// frame instead of re-growing a fresh bytes.Buffer through its doubling
// schedule every time. (The gob encoder itself cannot be pooled: each frame
// must be a self-contained gob stream, with its own type descriptors, for
// the peer's independent per-frame decoder.)
var encBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// frameOpts selects the wire features of one encoded frame. The zero value
// is the classic v6 framing every peer decodes; non-zero options emit the
// flagged v7 format and must only be used toward peers whose Accept mask
// advertised the matching capability.
type frameOpts struct {
	deflate bool // DEFLATE-compress the gob body (v7 + frameFlagDeflate)
	f32     bool // pack Batch as float32 (v7 + frameFlagFloat32)
}

func encodeServiceWire(w *serviceWire) ([]byte, error) {
	return encodeServiceFrame(w, frameOpts{})
}

func encodeServiceFrame(w *serviceWire, o frameOpts) ([]byte, error) {
	if isAdminControl(w.Kind) && !w.Response {
		// Admin requests always ride the classic (flagless) layout so a
		// pre-v8 peer can decode them far enough to reject them typed (see
		// the version stamp below); negotiated compression never applies.
		o = frameOpts{}
	}
	if o.f32 && len(w.Batch) > 0 {
		if b32, dim := matrix.PackFloat32Rows(w.Batch); dim > 0 {
			cp := *w // callers may retry with the same frame; never mutate it
			cp.Batch32, cp.Dim = b32, dim
			cp.Batch = nil
			w = &cp
		}
	}
	buf := encBufPool.Get().(*bytes.Buffer)
	defer encBufPool.Put(buf)
	buf.Reset()
	if err := gob.NewEncoder(buf).Encode(w); err != nil {
		return nil, fmt.Errorf("protocol: encode service frame: %w", err)
	}
	body := buf.Bytes()
	if o.deflate {
		deflated, err := frameDeflate.Seal(body)
		if err != nil {
			return nil, fmt.Errorf("protocol: compress service frame: %w", err)
		}
		body = deflated
	}
	flags := uint8(0)
	if o.deflate {
		flags |= frameFlagDeflate
	}
	if len(w.Batch32) > 0 {
		flags |= frameFlagFloat32
	}
	if flags == 0 {
		version := byte(serviceWireClassicVersion)
		if isAdminControl(w.Kind) && !w.Response {
			// Admin requests announce the version that introduced them. Old
			// services still gob-decode the body (unknown fields skip), hit
			// their unsupported-version path with the frame ID intact, and
			// answer a typed codeWireVersion — so an admin client pointed at
			// a pre-v8 miner gets ErrWireVersion, not a hang.
			version = ServiceWireVersion
		}
		out := make([]byte, 2+len(body))
		out[0], out[1] = serviceMagic, version
		copy(out[2:], body)
		return out, nil
	}
	out := make([]byte, 3+len(body))
	out[0], out[1], out[2] = serviceMagic, serviceWireFlaggedVersion, flags
	copy(out[3:], body)
	return out, nil
}

// decodeServiceWire unpacks a service frame. A nil frame with a nil error
// means "not a service frame, ignore". Versions serviceWireMinVersion
// through ServiceWireVersion decode as the current struct (gob tolerates
// missing fields, so pre-v4 frames simply carry an empty Group). A frame
// claiming a version outside that range returns the frame ID when
// recoverable so the peer can be answered with a typed error.
func decodeServiceWire(payload []byte) (*serviceWire, error) {
	if !IsServiceFrame(payload) {
		return nil, nil
	}
	version := payload[1]
	supported := version >= serviceWireMinVersion && version <= ServiceWireVersion
	body := payload[2:]
	if version == serviceWireFlaggedVersion {
		// Flagged frames interpose a flag byte between the header and the
		// body. The layout is pinned to version 7; v8 frames are classic.
		if len(payload) < 3 {
			return nil, fmt.Errorf("%w: v7 frame lacks its flag byte", ErrBadMessage)
		}
		flags := payload[2]
		if flags&^(frameFlagDeflate|frameFlagFloat32) != 0 {
			return nil, fmt.Errorf("%w: unknown v7 frame flags %#x", ErrBadMessage, flags)
		}
		body = payload[3:]
		if flags&frameFlagDeflate != 0 {
			inflated, err := frameDeflate.Open(body)
			if err != nil {
				return nil, fmt.Errorf("%w: inflate frame: %v", ErrBadMessage, err)
			}
			body = inflated
		}
	}
	var w serviceWire
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&w); err != nil {
		if !supported {
			return nil, fmt.Errorf("%w: got v%d, speak v%d-v%d",
				ErrWireVersion, version, serviceWireMinVersion, ServiceWireVersion)
		}
		return nil, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	if len(w.Batch32) > 0 {
		// Expand the packed-float32 batch so everything past the frame codec
		// — shard handlers, clients, re-encoders — sees one canonical batch
		// representation. Clearing the packed form keeps re-encoding from
		// duplicating the payload.
		batch, err := matrix.UnpackFloat32Rows(w.Batch32, w.Dim)
		if err != nil {
			return nil, fmt.Errorf("%w: float32 batch: %v", ErrBadMessage, err)
		}
		if len(w.Batch) == 0 {
			w.Batch = batch
		}
		w.Batch32, w.Dim = nil, 0
	}
	if !supported {
		// The frame decoded (gob skips unknown fields) but the peer speaks
		// another version; answer it with a typed rejection.
		return &w, fmt.Errorf("%w: got v%d, speak v%d-v%d",
			ErrWireVersion, version, serviceWireMinVersion, ServiceWireVersion)
	}
	return &w, nil
}

// ServiceConfig tunes the miner-side serving loop. One config applies
// service-wide; per-group overrides live on GroupSpec.
type ServiceConfig struct {
	// Workers is the default size of each group's dedicated prediction pool
	// (default: GOMAXPROCS). GroupSpec.Workers overrides it per group. The
	// pools are per group and spawned up front, so a miner hosting G
	// groups runs up to G×Workers prediction goroutines; many-group
	// deployments should set a small per-group Workers to bound the total.
	Workers int
	// MaxBatch caps the records accepted in one request (default 4096).
	// Oversized batches are rejected with ErrBatchTooLarge, not served.
	// GroupSpec.MaxBatch overrides it per group.
	MaxBatch int
	// RefitEvery is the number of stream-ingested records a group
	// accumulates before the service retrains that group's model on its
	// grown training set (default DefaultRefitEvery; negative disables
	// automatic refits, in which case ingested records sit in the training
	// set until the next triggered refit — useful when a deployment refits
	// on its own schedule). GroupSpec.RefitEvery overrides it per group.
	RefitEvery int
	// Compression enables negotiated DEFLATE frame compression: the service
	// advertises the capability on every response (serviceWire.Accept) and
	// compresses responses to peers whose requests advertised it back.
	// Off (the default), frames stay classic and the service never
	// advertises — so a fleet upgrades one side at a time with zero errors,
	// and v1–v6 peers are never shown a v7 frame either way.
	Compression bool
	// Metrics receives the service's instrumentation: per-group request,
	// ingest and refit counters under the "service.<group>." namespace plus
	// the service-wide unknown-group rejection count (see ARCHITECTURE.md
	// for the full catalogue). Nil discards all updates.
	Metrics metrics.Metrics
	// Routes is the cluster routing table this node serves to kindRoutes
	// requests. Standalone (non-cluster) services leave it nil and answer
	// discovery with an empty table.
	Routes []RouteEntry
	// RoutesFunc, when set, overrides Routes with a live snapshot: kindRoutes
	// requests are answered with the entries and table epoch it returns. The
	// cluster layer hooks it so failover-promoted tables (with their bumped
	// epochs) reach clients without a service restart. It runs on the serving
	// loop and must not block.
	RoutesFunc func() ([]RouteEntry, uint64)
	// OnModelSwap, when set, is called after every successful background
	// refit swap — once per trust view, with the group ID, the view's level
	// and its freshly published classifier. Groups without explicit
	// GroupSpec.Views report view 0 (their sole implicit view), so a
	// replicator may stamp the reported value on sync frames verbatim:
	// single-view groups keep their pre-view wire bytes. The cluster layer
	// hooks it to replicate the new models to the group's read replicas. It
	// runs on the group's refit goroutine, so it must not block; hand the
	// model off and return.
	OnModelSwap func(group string, view int, model classify.Classifier)
	// OnSyncGossip, when set, receives every durability-gossip frame
	// (kindSyncHello, kindSyncState) addressed to this service. The cluster
	// layer hooks it to run the sequence handshake, anti-entropy re-push and
	// failover adoption. It runs on the serving loop and must not block; hand
	// the observation off and return.
	OnSyncGossip func(g SyncGossip)
	// OnModelSync, when set, is called for every model-sync frame accepted
	// from a group's authorized sync source — installed or idempotently
	// rejected as a replay — with the group, the sending leader and the
	// frame's sequence. The cluster layer hooks it to count replication
	// traffic as leader liveness: a leader whose gossip frames are being
	// dropped is not deposed while its models keep arriving. It runs on the
	// group's ingest goroutine and must not block.
	OnModelSync func(group, from string, seq uint64)
	// AdminToken enables the v8 admin control plane: admin frames whose
	// Token matches (constant-time compare) may register, evict, update and
	// list serving groups at runtime. Empty (the default) disables the
	// control plane entirely — every admin frame answers ErrAdminDenied —
	// so a service is never administrable by accident.
	AdminToken string
	// CapTTL bounds how long a peer's advertised capability mask
	// (serviceWire.Accept) is honored without being re-observed: after the
	// TTL a peer downgraded in place — its name re-pointed at an older or
	// plain-configured binary — stops receiving flagged v7 frames instead
	// of receiving them until restart. Every frame from the peer refreshes
	// the stamp, so active peers never expire. Zero selects DefaultCapTTL;
	// negative disables expiry.
	CapTTL time.Duration
	// RefitRetry is how long a group waits after a failed background refit
	// before re-attempting it from the same training snapshot, so a
	// transient fit failure heals without waiting for the next ingest to
	// cross the cadence. A newer scheduled refit supersedes the retry. Zero
	// selects DefaultRefitRetry; negative disables retries.
	RefitRetry time.Duration
	// OnGroupRegistered, when set, is called after the admin control plane
	// registers a new group, with the group ID and its float32-payload
	// preference. The cluster layer hooks it to grow the routing table (the
	// node leads the new group under an epoch-bumped row, so clients
	// discover it without restart). Runs on an admin goroutine, off the
	// serving loop.
	OnGroupRegistered func(group string, float32Payloads bool)
	// OnGroupEvicted, when set, is called after the admin control plane
	// drains and removes a group. The cluster layer hooks it to drop the
	// group's routing row and sync state.
	OnGroupEvicted func(group string)
}

// SyncGossip is one durability-gossip observation handed to
// ServiceConfig.OnSyncGossip: a sync-hello from a group's leader, or a
// sync-state answer from one of its replicas.
type SyncGossip struct {
	// Hello is true for a leader's kindSyncHello, false for a replica's
	// kindSyncState.
	Hello bool
	// From is the sender's transport endpoint name.
	From string
	// Group is the serving group the gossip speaks for.
	Group string
	// Seq is the sender's current model sequence: the last published one on a
	// hello, the last installed one on a state.
	Seq uint64
	// Epoch is the epoch of the sender's routing-table row for Group (rows
	// are versioned individually; see RouteEntry.Epoch).
	Epoch uint64
	// Covered is the leader ingest count the sender's sequence covers.
	Covered int64
	// Row is the sender's routing-table row for Group (nil when the frame
	// carried none). Receivers behind on the row's epoch adopt it verbatim;
	// equal-epoch disagreements converge by a deterministic tie-break.
	Row *RouteEntry
}

// DefaultMaxBatch is the batch-size cap applied when ServiceConfig.MaxBatch
// is zero.
const DefaultMaxBatch = 4096

// DefaultRefitEvery is the ingest refit cadence applied when
// ServiceConfig.RefitEvery is zero.
const DefaultRefitEvery = 256

// DefaultCapTTL is the capability-mask lifetime applied when
// ServiceConfig.CapTTL (or WireOptions.CapTTL) is zero: long enough that a
// chatty peer never expires mid-conversation, short enough that a peer
// downgraded in place stops receiving flagged frames within minutes.
const DefaultCapTTL = 10 * time.Minute

// DefaultRefitRetry is the failed-refit retry delay applied when
// ServiceConfig.RefitRetry is zero.
const DefaultRefitRetry = 5 * time.Second

// serviceSendTimeout bounds one response write so a peer that stops reading
// cannot stall the serving loop's sender indefinitely.
const serviceSendTimeout = 30 * time.Second

// Defaults applied by Backoff.withDefaults. A full retry budget waits
// 2+4+8+16+32+64+128 ms ≈ 254 ms in total — long enough for an ingest lane
// to drain a full queue, short enough that a persistently wedged group
// surfaces ErrBusy instead of hiding it behind client-side patience.
const (
	// DefaultBusyTries is the total number of attempts per request.
	DefaultBusyTries = 8
	// DefaultBusyBase is the delay before the first retry.
	DefaultBusyBase = 2 * time.Millisecond
	// DefaultBusyMax caps the doubling retry delay.
	DefaultBusyMax = 250 * time.Millisecond
)

// Backoff is the capped exponential retry policy a ServiceClient applies to
// busy-rejected requests: after an ErrBusy response the client waits Base,
// doubles the wait per retry up to Max, and gives up — returning ErrBusy to
// the caller — after Tries total attempts. The zero value selects the
// defaults; Tries = 1 disables retries, making every busy rejection
// immediately visible to the caller.
type Backoff struct {
	// Tries is the total number of attempts, including the first
	// (default DefaultBusyTries; 1 disables retries).
	Tries int
	// Base is the delay before the first retry (default DefaultBusyBase).
	Base time.Duration
	// Max caps the exponentially growing delay (default DefaultBusyMax).
	Max time.Duration
}

func (b Backoff) withDefaults() Backoff {
	if b.Tries <= 0 {
		b.Tries = DefaultBusyTries
	}
	if b.Base <= 0 {
		b.Base = DefaultBusyBase
	}
	if b.Max <= 0 {
		b.Max = DefaultBusyMax
	}
	return b
}

func (c ServiceConfig) withDefaults() ServiceConfig {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.RefitEvery == 0 {
		c.RefitEvery = DefaultRefitEvery
	}
	if c.CapTTL == 0 {
		c.CapTTL = DefaultCapTTL
	}
	if c.RefitRetry == 0 {
		c.RefitRetry = DefaultRefitRetry
	}
	if c.Metrics == nil {
		c.Metrics = metrics.Nop()
	}
	return c
}

// ServiceClient is the provider-side handle for querying the mining
// service. Queries must already be in the target space of the client's
// group (providers hold G_t from their group's SAP run and apply it
// noiselessly to each record).
//
// The client owns its connection's receive side: a background demultiplexer
// routes responses to waiting callers by request ID, so any number of
// goroutines may call Classify and ClassifyBatch concurrently over one
// connection. Close the client to release the demultiplexer.
type ServiceClient struct {
	conn  transport.Conn
	miner string
	group string
	// view is the trust level stamped on classify/ingest frames (0 routes
	// to the caller's highest-authorized view); configured with SetView
	// before the first request.
	view int
	// backoff is the busy-retry policy applied by ClassifyBatch and
	// PushChunk; configured with SetBackoff before the first request.
	backoff Backoff
	// wire selects the negotiated wire features the client wants to use;
	// configured with SetWireOptions before the first request. Each feature
	// engages per miner only after that miner advertises the matching
	// capability (caps), so the first request to any peer is always classic.
	wire WireOptions

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan *serviceWire
	caps    map[string]capStamp // peer endpoint -> last advertised Accept mask
	failed  bool
	cause   error

	done      chan struct{} // closed when the demultiplexer has failed
	loopDone  chan struct{} // closed when the demultiplexer has exited
	closeOnce sync.Once
	stopRecv  context.CancelFunc
}

// NewServiceClient binds a client to a transport endpoint and starts its
// response demultiplexer. The connection's receive side belongs to the
// client from this point on. Frames carry no group name, so they route to
// the service's DefaultGroup; multi-group deployments use
// NewGroupServiceClient.
func NewServiceClient(conn transport.Conn, miner string) (*ServiceClient, error) {
	return NewGroupServiceClient(conn, miner, "")
}

// NewGroupServiceClient is NewServiceClient for one serving group of a
// sharded miner: every frame the client sends is stamped with the group ID,
// so the service routes it to that group's model shard. An empty group
// routes to DefaultGroup.
func NewGroupServiceClient(conn transport.Conn, miner, group string) (*ServiceClient, error) {
	if miner == "" {
		return nil, fmt.Errorf("%w: missing miner endpoint", ErrBadConfig)
	}
	recvCtx, stop := context.WithCancel(context.Background())
	c := &ServiceClient{
		conn:     conn,
		miner:    miner,
		group:    group,
		pending:  make(map[uint64]chan *serviceWire),
		caps:     make(map[string]capStamp),
		done:     make(chan struct{}),
		loopDone: make(chan struct{}),
		stopRecv: stop,
	}
	go c.recvLoop(recvCtx)
	return c, nil
}

// Group returns the serving group the client addresses ("" means the
// service's default group).
func (c *ServiceClient) Group() string { return c.group }

// SetBackoff replaces the client's busy-retry policy (the zero Backoff
// restores the defaults; Tries = 1 disables retries so ErrBusy surfaces on
// the first rejection). Call it before issuing requests — it is not
// synchronized against in-flight calls.
func (c *ServiceClient) SetBackoff(b Backoff) { c.backoff = b }

// SetView pins the trust level the client's classify and ingest frames
// address within a multi-level group (GroupSpec.Views). Zero — the default —
// routes each frame to the caller's highest-authorized view; a level the
// group does not serve answers ErrUnknownView, one the caller is not
// admitted to answers ErrNotMember. Call it before issuing requests — it is
// not synchronized against in-flight calls.
func (c *ServiceClient) SetView(level int) { c.view = level }

// View returns the trust level the client addresses (0 means the caller's
// highest-authorized view).
func (c *ServiceClient) View() int { return c.view }

// WireOptions selects the negotiated wire features a ServiceClient wants to
// use toward its miners. Each feature only engages per peer after that peer
// advertises the matching capability on a response, so enabling options
// against a v6 (or plain-configured) service changes nothing — frames stay
// classic and no errors occur.
type WireOptions struct {
	// Compress asks for DEFLATE frame compression both ways: requests
	// compress once the peer advertises support, and the client's own
	// advertisement invites the peer to compress its responses.
	Compress bool
	// Float32 packs classify/ingest batches as float32 toward peers that
	// accept it, halving batch bytes at float32 precision (~7 significant
	// digits — see the WithFloat32Payloads precision contract).
	Float32 bool
	// CapTTL bounds how long a peer's advertised capability mask is honored
	// without being re-observed, so a miner downgraded in place stops
	// receiving flagged frames once its last advertisement ages out. Zero
	// selects DefaultCapTTL; negative disables expiry.
	CapTTL time.Duration
}

// capStamp is one peer's last advertised capability mask and when it was
// observed; masks older than the configured CapTTL count as zero.
type capStamp struct {
	mask uint8
	at   time.Time
}

// expired reports whether the stamp has outlived ttl (zero ttl selects
// DefaultCapTTL, negative never expires).
func (s capStamp) expired(ttl time.Duration) bool {
	if ttl == 0 {
		ttl = DefaultCapTTL
	}
	return ttl > 0 && s.mask != 0 && time.Since(s.at) > ttl
}

// SetWireOptions replaces the client's wire-feature selection. Call it
// before issuing requests — it is not synchronized against in-flight calls.
func (c *ServiceClient) SetWireOptions(o WireOptions) { c.wire = o }

// acceptMask is the capability advertisement stamped on every request:
// float32 decoding is always safe, deflate is advertised only when the
// client itself opted into compression (both sides must opt in).
func (c *ServiceClient) acceptMask() uint8 {
	m := acceptFloat32
	if c.wire.Compress {
		m |= acceptDeflate
	}
	return m
}

// frameOptsFor resolves which negotiated features to use toward one miner:
// the intersection of what the client wants (wire) and what that peer last
// advertised (caps). An unseen peer — or one whose advertisement has aged
// past the capability TTL — gets classic frames.
func (c *ServiceClient) frameOptsFor(miner string) frameOpts {
	if !c.wire.Compress && !c.wire.Float32 {
		return frameOpts{}
	}
	c.mu.Lock()
	peer := c.caps[miner]
	c.mu.Unlock()
	mask := peer.mask
	if peer.expired(c.wire.CapTTL) {
		mask = 0
	}
	return frameOpts{
		deflate: c.wire.Compress && mask&acceptDeflate != 0,
		f32:     c.wire.Float32 && mask&acceptFloat32 != 0,
	}
}

// retryBusy runs one request attempt through the client's backoff policy:
// busy rejections are retried with capped exponential delays, any other
// outcome (success or a different typed error) is returned as is. A context
// cancellation or client failure during a backoff wait ends the retry loop
// immediately.
func (c *ServiceClient) retryBusy(ctx context.Context, op func() error) error {
	b := c.backoff.withDefaults()
	delay := b.Base
	var err error
	for try := 0; try < b.Tries; try++ {
		if try > 0 {
			timer := time.NewTimer(delay)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				return ctx.Err()
			case <-c.done:
				timer.Stop()
				return c.terminalErr()
			}
			if delay *= 2; delay > b.Max {
				delay = b.Max
			}
		}
		if err = op(); !errors.Is(err, ErrBusy) {
			return err
		}
	}
	return err // still ErrBusy after the final attempt
}

// recvLoop routes every incoming response frame to the caller waiting on its
// ID. Frames for unknown IDs (cancelled requests, foreign traffic) are
// dropped.
func (c *ServiceClient) recvLoop(ctx context.Context) {
	defer close(c.loopDone)
	for {
		env, err := c.conn.Recv(ctx)
		if err != nil {
			c.fail(fmt.Errorf("%w: %v", ErrServiceClosed, err))
			return
		}
		// A version-mismatch rejection still carries the request ID and a
		// typed code; deliver it so the caller gets ErrWireVersion instead
		// of hanging. Only undecodable or non-response traffic is dropped.
		resp, _ := decodeServiceWire(env.Payload)
		if resp == nil || !resp.Response {
			continue
		}
		c.mu.Lock()
		if resp.Accept != 0 && env.From != "" {
			// The response doubles as the capability ack: record what this
			// peer can decode so the next request to it may use v7 features.
			// The stamp refreshes on every response, so the TTL only expires
			// peers that went silent (or stopped advertising).
			c.caps[env.From] = capStamp{mask: resp.Accept, at: time.Now()}
		}
		ch, ok := c.pending[resp.ID]
		if ok {
			delete(c.pending, resp.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- resp // buffered; never blocks
		}
	}
}

// fail marks the client dead and wakes every in-flight caller.
func (c *ServiceClient) fail(cause error) {
	c.mu.Lock()
	if c.failed {
		c.mu.Unlock()
		return
	}
	c.failed = true
	c.cause = cause
	for id, ch := range c.pending {
		delete(c.pending, id)
		close(ch)
	}
	c.mu.Unlock()
	close(c.done)
}

// terminalErr returns the recorded failure cause (always non-nil once the
// client has failed).
func (c *ServiceClient) terminalErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cause != nil {
		return c.cause
	}
	return ErrServiceClosed
}

// Close stops the demultiplexer and fails all in-flight requests. The
// underlying connection is left open (it may be shared with other traffic on
// the send side).
func (c *ServiceClient) Close() error {
	c.closeOnce.Do(func() {
		c.stopRecv()
		<-c.loopDone
	})
	return nil
}

// register allocates a request ID and its response channel.
func (c *ServiceClient) register() (uint64, chan *serviceWire, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failed {
		return 0, nil, c.cause
	}
	c.nextID++
	ch := make(chan *serviceWire, 1)
	c.pending[c.nextID] = ch
	return c.nextID, ch, nil
}

// unregister abandons an in-flight request (send failure or caller
// cancellation); a response arriving later is dropped by the demultiplexer.
func (c *ServiceClient) unregister(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// Classify sends one target-space record and blocks for its label. It is
// safe to call from many goroutines concurrently.
func (c *ServiceClient) Classify(ctx context.Context, features []float64) (int, error) {
	labels, err := c.ClassifyBatch(ctx, [][]float64{features})
	if err != nil {
		return 0, err
	}
	return labels[0], nil
}

// ClassifyBatch sends a whole batch of target-space records in one frame and
// blocks for their labels, which arrive in one response frame — a single
// round trip regardless of batch size. A busy rejection (the group's
// prediction queue was full) is retried under the client's Backoff policy
// before ErrBusy is surfaced. It is safe to call from many goroutines
// concurrently; cancelling ctx abandons only this request.
func (c *ServiceClient) ClassifyBatch(ctx context.Context, batch [][]float64) ([]int, error) {
	return c.ClassifyBatchAt(ctx, c.miner, c.group, batch)
}

// ClassifyBatchAt is ClassifyBatch addressed to an explicit miner endpoint
// and serving group, overriding the client's defaults for this call only.
// The cluster client uses it to fan classify traffic out across nodes over
// one connection and one demultiplexer.
func (c *ServiceClient) ClassifyBatchAt(ctx context.Context, miner, group string, batch [][]float64) ([]int, error) {
	if len(batch) == 0 {
		return nil, fmt.Errorf("%w: empty batch", ErrBadQuery)
	}
	var labels []int
	err := c.retryBusy(ctx, func() error {
		var opErr error
		labels, opErr = c.classifyBatchOnce(ctx, miner, group, batch)
		return opErr
	})
	return labels, err
}

// classifyBatchOnce is one classify round trip, busy rejections included.
func (c *ServiceClient) classifyBatchOnce(ctx context.Context, miner, group string, batch [][]float64) ([]int, error) {
	id, ch, err := c.register()
	if err != nil {
		return nil, err
	}
	payload, err := encodeServiceFrame(
		&serviceWire{ID: id, Group: group, View: c.view, Batch: batch, Accept: c.acceptMask()},
		c.frameOptsFor(miner))
	if err != nil {
		c.unregister(id)
		return nil, err
	}
	if err := c.conn.Send(ctx, miner, payload); err != nil {
		c.unregister(id)
		return nil, fmt.Errorf("%w: %v", ErrServiceClosed, err)
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			return nil, c.terminalErr()
		}
		return decodeServiceResponse(resp, len(batch))
	case <-ctx.Done():
		c.unregister(id)
		return nil, ctx.Err()
	case <-c.done:
		return nil, c.terminalErr()
	}
}

// roundTrip sends one request frame to a peer and blocks for its response
// frame: the ID is allocated and stamped here, as is the client's capability
// advertisement. Callers own mapping the response's code to a typed error.
func (c *ServiceClient) roundTrip(ctx context.Context, to string, w *serviceWire) (*serviceWire, error) {
	id, ch, err := c.register()
	if err != nil {
		return nil, err
	}
	w.ID = id
	w.Accept = c.acceptMask()
	payload, err := encodeServiceFrame(w, c.frameOptsFor(to))
	if err != nil {
		c.unregister(id)
		return nil, err
	}
	if err := c.conn.Send(ctx, to, payload); err != nil {
		c.unregister(id)
		return nil, fmt.Errorf("%w: %v", ErrServiceClosed, err)
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			return nil, c.terminalErr()
		}
		return resp, nil
	case <-ctx.Done():
		c.unregister(id)
		return nil, ctx.Err()
	case <-c.done:
		return nil, c.terminalErr()
	}
}

// Routes asks the client's miner for the cluster routing table. Standalone
// services answer with an empty table.
func (c *ServiceClient) Routes(ctx context.Context) ([]RouteEntry, error) {
	return c.RoutesAt(ctx, c.miner)
}

// RoutesAt is Routes addressed to an explicit node — discovery may bootstrap
// from any cluster member, and a route miss re-fetches from whichever node
// is reachable.
func (c *ServiceClient) RoutesAt(ctx context.Context, node string) ([]RouteEntry, error) {
	entries, _, err := c.TableAt(ctx, node)
	return entries, err
}

// TableAt is RoutesAt plus the table's epoch: failover bumps the epoch when
// it promotes a replacement leader, and clients prefer the highest epoch
// among the answers they collect (a stale node cannot roll a client back).
func (c *ServiceClient) TableAt(ctx context.Context, node string) ([]RouteEntry, uint64, error) {
	id, ch, err := c.register()
	if err != nil {
		return nil, 0, err
	}
	payload, err := encodeServiceFrame(
		&serviceWire{ID: id, Kind: kindRoutes, Accept: c.acceptMask()},
		c.frameOptsFor(node))
	if err != nil {
		c.unregister(id)
		return nil, 0, err
	}
	if err := c.conn.Send(ctx, node, payload); err != nil {
		c.unregister(id)
		return nil, 0, fmt.Errorf("%w: %v", ErrServiceClosed, err)
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			return nil, 0, c.terminalErr()
		}
		if err := responseErr(resp); err != nil {
			return nil, 0, err
		}
		return resp.Routes, resp.Epoch, nil
	case <-ctx.Done():
		c.unregister(id)
		return nil, 0, ctx.Err()
	case <-c.done:
		return nil, 0, c.terminalErr()
	}
}

// PushChunk streams one chunk of perturbed, target-space training records
// (with their labels) into the serving miner, which folds them into the
// client's group's training set and refits on the group's configured
// cadence. It returns the group's total training-set size after the chunk
// was folded in. An ErrRefit error still carries a non-zero accepted count:
// the chunk landed but a background model refresh failed, so the caller must
// not re-push it. A busy rejection (the group's ingest queue was full — the
// chunk did NOT land) is retried under the client's Backoff policy before
// ErrBusy is surfaced. Like ClassifyBatch it costs one round trip and is
// safe for concurrent use.
func (c *ServiceClient) PushChunk(ctx context.Context, batch [][]float64, labels []int) (int, error) {
	return c.PushChunkAt(ctx, c.miner, c.group, batch, labels)
}

// PushChunkAt is PushChunk addressed to an explicit miner endpoint and
// serving group, overriding the client's defaults for this call only. The
// cluster client uses it to route each group's ingest to its leader node.
func (c *ServiceClient) PushChunkAt(ctx context.Context, miner, group string, batch [][]float64, labels []int) (int, error) {
	if len(batch) == 0 {
		return 0, fmt.Errorf("%w: empty chunk", ErrBadChunk)
	}
	if len(labels) != len(batch) {
		return 0, fmt.Errorf("%w: %d labels for %d records", ErrBadChunk, len(labels), len(batch))
	}
	var accepted int
	err := c.retryBusy(ctx, func() error {
		var opErr error
		accepted, opErr = c.pushChunkOnce(ctx, miner, group, batch, labels)
		return opErr
	})
	return accepted, err
}

// pushChunkOnce is one ingest round trip, busy rejections included.
func (c *ServiceClient) pushChunkOnce(ctx context.Context, miner, group string, batch [][]float64, labels []int) (int, error) {
	id, ch, err := c.register()
	if err != nil {
		return 0, err
	}
	payload, err := encodeServiceFrame(&serviceWire{
		ID: id, Kind: kindIngest, Group: group, View: c.view, Batch: batch,
		Labels: labels, Accept: c.acceptMask()}, c.frameOptsFor(miner))
	if err != nil {
		c.unregister(id)
		return 0, err
	}
	if err := c.conn.Send(ctx, miner, payload); err != nil {
		c.unregister(id)
		return 0, fmt.Errorf("%w: %v", ErrServiceClosed, err)
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			return 0, c.terminalErr()
		}
		// Accepted is returned even alongside an error: an ErrRefit
		// response means the chunk WAS folded in (do not re-push) but the
		// refreshed model is not live.
		return resp.Accepted, responseErr(resp)
	case <-ctx.Done():
		c.unregister(id)
		return 0, ctx.Err()
	case <-c.done:
		return 0, c.terminalErr()
	}
}

// responseErr maps a response frame's code to a typed error (nil on codeOK).
func responseErr(resp *serviceWire) error {
	switch resp.Code {
	case codeOK:
		return nil
	case codeBadQuery:
		return fmt.Errorf("%w: %s", ErrBadQuery, resp.Err)
	case codeBadChunk:
		return fmt.Errorf("%w: %s", ErrBadChunk, resp.Err)
	case codeRefit:
		return fmt.Errorf("%w: %s", ErrRefit, resp.Err)
	case codeBatchTooLarge:
		return fmt.Errorf("%w: %s", ErrBatchTooLarge, resp.Err)
	case codeWireVersion:
		return fmt.Errorf("%w: %s", ErrWireVersion, resp.Err)
	case codeUnknownGroup:
		return fmt.Errorf("%w: %s", ErrUnknownGroup, resp.Err)
	case codeNotMember:
		return fmt.Errorf("%w: %s", ErrNotMember, resp.Err)
	case codeBusy:
		return fmt.Errorf("%w: %s", ErrBusy, resp.Err)
	case codeNotLeader:
		return fmt.Errorf("%w: %s", ErrNotLeader, resp.Err)
	case codeQuota:
		return fmt.Errorf("%w: %s", ErrQuota, resp.Err)
	case codeAdminDenied:
		return fmt.Errorf("%w: %s", ErrAdminDenied, resp.Err)
	case codeGroupExists:
		return fmt.Errorf("%w: %s", ErrGroupExists, resp.Err)
	case codeUnknownView:
		return fmt.Errorf("%w: %s", ErrUnknownView, resp.Err)
	default:
		return fmt.Errorf("%w: %s", ErrServiceClosed, resp.Err)
	}
}

// FrameOpts selects the negotiated wire features for one outbound
// fire-and-forget frame (SendModelSync, SendSyncHello, SendSyncState). The
// zero value emits classic plain frames. Obtain non-zero options from
// MiningService.FrameOptsFor, which intersects the service's own
// configuration with what the target peer has advertised — hand-rolled
// options toward an unverified peer can produce frames it cannot decode.
type FrameOpts struct {
	// Compress DEFLATE-compresses the frame body (v7 framing).
	Compress bool
	// Float32 reports that the target accepts float32 payloads; the frame
	// batch (if any) packs to float32 and callers may select float32 model
	// blobs (classify.EncodeModelFloat32).
	Float32 bool
	// accept is the sender's own capability mask, stamped on the frame so
	// fire-and-forget gossip teaches the receiver the sender's capabilities
	// even though no response will flow back.
	accept uint8
}

// SendModelSync streams one encoded classifier (classify.EncodeModel format)
// to a follower node as a fire-and-forget kindModelSync frame: ID 0 tells
// the follower to send no response, so a downed or slow follower costs the
// sender one failed send, never a blocked wait. seq must increase per group;
// the follower ignores frames at or below its last installed sequence per
// view, which makes re-sends and reordering idempotent. view names the trust
// level the blob installs to (0 installs to the group's primary view, which
// is the only view single-level groups have). covered is the leader ingest
// count the model's fit covers, installed alongside it so staleness can be
// measured in records. The cluster layer's replication publisher is the
// intended caller.
func SendModelSync(ctx context.Context, conn transport.Conn, to, group string, view int, seq uint64, covered int64, model []byte, opts FrameOpts) error {
	if group == "" {
		return fmt.Errorf("%w: model sync without a group", ErrBadConfig)
	}
	if len(model) == 0 {
		return fmt.Errorf("%w: model sync without a model", ErrBadConfig)
	}
	payload, err := encodeServiceFrame(&serviceWire{
		Kind: kindModelSync, Group: group, View: view, Seq: seq, Covered: covered,
		Model: model, Accept: opts.accept}, frameOpts{deflate: opts.Compress})
	if err != nil {
		return err
	}
	return conn.Send(ctx, to, payload)
}

// SendSyncHello announces a leader's durability state for one group to a
// replica: its published sequence, table epoch, ingest coverage and current
// routing-table row. Fire-and-forget (ID 0); the replica's answer, if any,
// arrives as an independent kindSyncState frame.
func SendSyncHello(ctx context.Context, conn transport.Conn, to, group string, seq, epoch uint64, covered int64, row RouteEntry, opts FrameOpts) error {
	return sendSyncGossip(ctx, conn, to, kindSyncHello, group, seq, epoch, covered, row, opts)
}

// SendSyncState answers a replica's durability state for one group to its
// leader: the last installed sequence, the replica's table epoch and row.
// Fire-and-forget (ID 0).
func SendSyncState(ctx context.Context, conn transport.Conn, to, group string, seq, epoch uint64, covered int64, row RouteEntry, opts FrameOpts) error {
	return sendSyncGossip(ctx, conn, to, kindSyncState, group, seq, epoch, covered, row, opts)
}

func sendSyncGossip(ctx context.Context, conn transport.Conn, to string, kind uint8, group string, seq, epoch uint64, covered int64, row RouteEntry, opts FrameOpts) error {
	if group == "" {
		return fmt.Errorf("%w: sync gossip without a group", ErrBadConfig)
	}
	payload, err := encodeServiceFrame(&serviceWire{
		Kind: kind, Group: group, Seq: seq, Epoch: epoch, Covered: covered,
		Routes: []RouteEntry{row}, Accept: opts.accept},
		frameOpts{deflate: opts.Compress})
	if err != nil {
		return err
	}
	return conn.Send(ctx, to, payload)
}

// FrameInfo is the routing header of one service frame, exposed for frame
// inspectors (InspectFrame).
type FrameInfo struct {
	Version  uint8
	ID       uint64
	Kind     uint8
	Group    string
	View     int
	Seq      uint64
	Epoch    uint64
	Response bool
}

// InspectFrame decodes the routing header of a raw service-frame payload
// without interpreting its body. It reports false for payloads that are not
// decodable service frames. The faultnet test harness uses it to match sync
// traffic inside its drop/duplicate/reorder hooks.
func InspectFrame(payload []byte) (FrameInfo, bool) {
	w, err := decodeServiceWire(payload)
	if w == nil || err != nil {
		return FrameInfo{}, false
	}
	return FrameInfo{
		Version:  payload[1],
		ID:       w.ID,
		Kind:     w.Kind,
		Group:    w.Group,
		View:     w.View,
		Seq:      w.Seq,
		Epoch:    w.Epoch,
		Response: w.Response,
	}, true
}

// decodeServiceResponse maps a classify response frame to labels or a typed
// error.
func decodeServiceResponse(resp *serviceWire, want int) ([]int, error) {
	if err := responseErr(resp); err != nil {
		return nil, err
	}
	if len(resp.Labels) != want {
		return nil, fmt.Errorf("%w: %d labels for %d records", ErrBadMessage, len(resp.Labels), want)
	}
	return resp.Labels, nil
}
