package protocol

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/dataset"
	"repro/internal/perturb"
	"repro/internal/transport"
)

// PartyInput is one data provider's local state entering a SAP run.
type PartyInput struct {
	// Name is the party's transport endpoint name.
	Name string
	// Data is the party's local normalized dataset.
	Data *dataset.Dataset
	// Perturbation is the party's locally optimized G_i.
	Perturbation *perturb.Perturbation
}

// SessionConfig describes a full SAP run.
type SessionConfig struct {
	// Parties lists all k data providers. The last entry acts as the
	// coordinator DP_k (matching the paper's "without loss of generality").
	Parties []PartyInput
	// MinerName is the mining service provider's endpoint name (default
	// "miner").
	MinerName string
	// Seed drives all protocol randomness (target selection, permutation,
	// redirect, per-party noise draws).
	Seed int64
	// Audit optionally records every role's protocol events into one
	// shared log (nil disables).
	Audit *AuditLog
}

// SessionResult is the outcome of a local SAP run.
type SessionResult struct {
	// Unified is the miner's merged training set in the target space.
	Unified *dataset.Dataset
	// Target is the unified target perturbation G_t.
	Target *perturb.Perturbation
	// Plan is the coordinator's exchange plan (exposed for audit and
	// tests; in a real deployment it never leaves the coordinator).
	Plan *ExchangePlan
	// Submissions maps slot IDs to the forwarding endpoint the miner saw.
	Submissions map[uint64]string
}

// RunLocal executes a complete SAP session over an in-memory network, one
// goroutine per party, and returns the miner's result. It is the backbone
// of the experiment harness and of the public facade.
func RunLocal(ctx context.Context, cfg SessionConfig) (*SessionResult, error) {
	k := len(cfg.Parties)
	if k < 3 {
		return nil, fmt.Errorf("%w: k=%d", ErrTooFewParty, k)
	}
	minerName := cfg.MinerName
	if minerName == "" {
		minerName = "miner"
	}
	names := make(map[string]bool, k+1)
	names[minerName] = true
	dim := -1
	for _, p := range cfg.Parties {
		if p.Name == "" || names[p.Name] {
			return nil, fmt.Errorf("%w: duplicate or empty party name %q", ErrBadConfig, p.Name)
		}
		names[p.Name] = true
		if p.Data == nil || p.Data.Len() == 0 {
			return nil, fmt.Errorf("%w: party %q has no data", ErrBadConfig, p.Name)
		}
		if dim == -1 {
			dim = p.Data.Dim()
		} else if p.Data.Dim() != dim {
			return nil, fmt.Errorf("%w: party %q has dim %d, want %d", ErrDimMismatch, p.Name, p.Data.Dim(), dim)
		}
	}

	net := transport.NewMemNetwork()
	conns := make(map[string]transport.Conn, k+1)
	for _, p := range cfg.Parties {
		conn, err := net.Endpoint(p.Name)
		if err != nil {
			return nil, err
		}
		defer conn.Close()
		conns[p.Name] = conn
	}
	minerConn, err := net.Endpoint(minerName)
	if err != nil {
		return nil, err
	}
	defer minerConn.Close()

	coordInput := cfg.Parties[k-1]
	providerNames := make([]string, 0, k-1)
	for _, p := range cfg.Parties[:k-1] {
		providerNames = append(providerNames, p.Name)
	}

	seedBase := cfg.Seed
	coord, err := NewCoordinator(conns[coordInput.Name], CoordinatorConfig{
		Providers:    providerNames,
		Miner:        minerName,
		Data:         coordInput.Data,
		Perturbation: coordInput.Perturbation,
		Rng:          rand.New(rand.NewSource(seedBase)),
		Audit:        cfg.Audit,
	})
	if err != nil {
		return nil, err
	}
	miner, err := NewMiner(minerConn, MinerConfig{
		Coordinator: coordInput.Name,
		Parties:     k,
		Audit:       cfg.Audit,
	})
	if err != nil {
		return nil, err
	}
	providers := make([]*Provider, 0, k-1)
	for i, p := range cfg.Parties[:k-1] {
		prov, err := NewProvider(conns[p.Name], ProviderConfig{
			Coordinator:  coordInput.Name,
			Miner:        minerName,
			Data:         p.Data,
			Perturbation: p.Perturbation,
			Rng:          rand.New(rand.NewSource(seedBase + int64(i) + 1)),
			Audit:        cfg.Audit,
		})
		if err != nil {
			return nil, err
		}
		providers = append(providers, prov)
	}

	// Run every role concurrently; collect the first error.
	errCh := make(chan error, k)
	var wg sync.WaitGroup
	for _, prov := range providers {
		wg.Add(1)
		go func(p *Provider) {
			defer wg.Done()
			if err := p.Run(ctx); err != nil {
				errCh <- err
			}
		}(prov)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := coord.Run(ctx); err != nil {
			errCh <- err
		}
	}()

	result, minerErr := miner.Run(ctx)
	wg.Wait()
	close(errCh)
	if minerErr != nil {
		return nil, minerErr
	}
	for err := range errCh {
		if err != nil {
			return nil, err
		}
	}

	plan := coord.Plan()
	return &SessionResult{
		Unified:     result.Unified,
		Target:      plan.Target,
		Plan:        plan,
		Submissions: result.Submissions,
	}, nil
}
