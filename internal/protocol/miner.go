package protocol

import (
	"context"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/transport"
)

// MinerConfig configures the mining service provider.
type MinerConfig struct {
	// Coordinator is the coordinator's endpoint name (the only party
	// allowed to send the adaptor map).
	Coordinator string
	// Parties is the total number of data providers k (including the
	// coordinator); the miner expects exactly k submissions.
	Parties int
	// Audit optionally records protocol events (nil disables).
	Audit *AuditLog
}

// MinerResult is what the miner ends a run with.
type MinerResult struct {
	// Unified is the merged training set in the target space.
	Unified *dataset.Dataset
	// Submissions records which transport endpoint forwarded each slot —
	// all the miner ever learns about data provenance.
	Submissions map[uint64]string
}

// Miner runs the mining service provider: collect k anonymous submissions
// plus the coordinator's adaptor map, adapt every submission into the target
// space and merge.
type Miner struct {
	cfg  MinerConfig
	conn transport.Conn
}

// NewMiner validates the configuration and binds the miner to a transport
// endpoint.
func NewMiner(conn transport.Conn, cfg MinerConfig) (*Miner, error) {
	if cfg.Parties < 3 {
		return nil, fmt.Errorf("%w: k=%d", ErrTooFewParty, cfg.Parties)
	}
	if cfg.Coordinator == "" {
		return nil, fmt.Errorf("%w: missing coordinator endpoint", ErrBadConfig)
	}
	return &Miner{cfg: cfg, conn: conn}, nil
}

// Run executes the miner's side of SAP and returns the unified dataset.
func (m *Miner) Run(ctx context.Context) (*MinerResult, error) {
	type submission struct {
		data *dataset.Dataset
		from string
	}
	subs := make(map[uint64]submission, m.cfg.Parties)
	var slots []SlotAdaptor

	for len(subs) < m.cfg.Parties || slots == nil {
		env, err := m.conn.Recv(ctx)
		if err != nil {
			return nil, fmt.Errorf("%w: miner: %v", ErrMissingPiece, err)
		}
		w, err := decodeWire(env.Payload)
		if err != nil {
			return nil, err
		}
		switch w.Kind {
		case MsgSubmission:
			if env.From == m.cfg.Coordinator {
				return nil, fmt.Errorf("%w: coordinator submitted a dataset", ErrViolation)
			}
			if _, dup := subs[w.DataSlot]; dup {
				return nil, fmt.Errorf("%w: duplicate slot %d", ErrViolation, w.DataSlot)
			}
			d, err := decodeDatasetPayload(w.Features, w.Labels, fmt.Sprintf("slot-%d", w.DataSlot))
			if err != nil {
				return nil, fmt.Errorf("submission from %q: %w", env.From, err)
			}
			subs[w.DataSlot] = submission{data: d, from: env.From}
			m.cfg.Audit.Record(m.conn.Name(), EventSubmissionReceived, env.From,
				fmt.Sprintf("slot=%d records=%d", w.DataSlot, d.Len()))
		case MsgAdaptorMap:
			if env.From != m.cfg.Coordinator {
				return nil, fmt.Errorf("%w: adaptor map from %q", ErrViolation, env.From)
			}
			if slots != nil {
				return nil, fmt.Errorf("%w: duplicate adaptor map", ErrViolation)
			}
			if len(w.Slots) != m.cfg.Parties {
				return nil, fmt.Errorf("%w: adaptor map covers %d slots, want %d",
					ErrViolation, len(w.Slots), m.cfg.Parties)
			}
			slots = w.Slots
		default:
			return nil, fmt.Errorf("%w: unexpected %v from %q", ErrViolation, w.Kind, env.From)
		}
	}

	// Adapt each submission into the target space and merge.
	parts := make([]*dataset.Dataset, 0, m.cfg.Parties)
	submissions := make(map[uint64]string, m.cfg.Parties)
	for _, sa := range slots {
		sub, ok := subs[sa.SlotID]
		if !ok {
			return nil, fmt.Errorf("%w: adaptor for unknown slot %d", ErrViolation, sa.SlotID)
		}
		adaptor, err := decodeAdaptor(sa.Adaptor)
		if err != nil {
			return nil, err
		}
		if adaptor.Dim() != sub.data.Dim() {
			return nil, fmt.Errorf("%w: adaptor dim %d vs data dim %d",
				ErrDimMismatch, adaptor.Dim(), sub.data.Dim())
		}
		adapted, err := adaptor.Apply(sub.data.FeaturesT())
		if err != nil {
			return nil, fmt.Errorf("protocol: adapt slot %d: %w", sa.SlotID, err)
		}
		out := sub.data.Clone()
		if err := out.ReplaceFeaturesT(adapted); err != nil {
			return nil, err
		}
		parts = append(parts, out)
		submissions[sa.SlotID] = sub.from
	}
	unified, err := dataset.Merge(parts...)
	if err != nil {
		return nil, fmt.Errorf("protocol: merge: %w", err)
	}
	unified.Name = "unified"
	m.cfg.Audit.Record(m.conn.Name(), EventUnified, "", fmt.Sprintf("records=%d", unified.Len()))
	return &MinerResult{Unified: unified, Submissions: submissions}, nil
}
